package dmps_test

import (
	"testing"
	"time"

	"dmps"
)

// TestPublicAPIQuickstart exercises the facade end to end the way the
// README shows it.
func TestPublicAPIQuickstart(t *testing.T) {
	lab, err := dmps.NewLab(dmps.LabOptions{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	teacher, err := lab.NewClient("Teacher", "chair", 5)
	if err != nil {
		t.Fatal(err)
	}
	student, err := lab.NewClient("Student", "participant", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := teacher.Join("class"); err != nil {
		t.Fatal(err)
	}
	if err := student.Join("class"); err != nil {
		t.Fatal(err)
	}
	dec, err := teacher.RequestFloor("class", dmps.EqualControl, "")
	if err != nil || !dec.Granted {
		t.Fatalf("floor: %+v %v", dec, err)
	}
	if err := teacher.Chat("class", "hello"); err != nil {
		t.Fatal(err)
	}
	if err := teacher.PassToken("class", student.MemberID()); err != nil {
		t.Fatal(err)
	}
	if err := student.Chat("class", "thanks"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for student.Board("class").Seq() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if student.Board("class").Seq() != 2 {
		t.Errorf("board seq = %d", student.Board("class").Seq())
	}
}

// TestPublicAPIPresentationPipeline runs relations → timeline → net →
// simulation through the facade only.
func TestPublicAPIPresentationPipeline(t *testing.T) {
	tl, err := dmps.Solve(dmps.Spec{
		Objects: []dmps.MediaObject{
			{ID: "a", Kind: dmps.Image, Duration: 2 * time.Second},
			{ID: "b", Kind: dmps.Audio, Duration: 2 * time.Second, Rate: 50},
			{ID: "c", Kind: dmps.Video, Duration: 1 * time.Second, Rate: 30},
		},
		Constraints: []dmps.Constraint{
			{A: "a", B: "b", Rel: dmps.Equals},
			{A: "a", B: "c", Rel: dmps.Meets},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := dmps.Compile(tl)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
	res, err := dmps.SimulateWith(dmps.SimConfig{
		Timeline: tl,
		Sites: []dmps.SimSite{
			{Name: "x", ControlDelay: time.Millisecond, SyncErr: time.Millisecond},
			{Name: "y", ControlDelay: 30 * time.Millisecond, Drift: 50e-6},
		},
		Mode:         dmps.GlobalClock,
		PrioritySkip: true,
	}, []dmps.Interaction{
		{At: 500 * time.Millisecond, Site: "x", Kind: dmps.SkipInteraction},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Error("simulation unfinished")
	}
	if res.InteractionLatency[0] > 100*time.Millisecond {
		t.Errorf("skip latency = %v", res.InteractionLatency[0])
	}
}

// TestPublicAPIBaselineComparison checks the three clock disciplines are
// all reachable through the facade and ordered as the paper claims.
func TestPublicAPIBaselineComparison(t *testing.T) {
	tl, err := dmps.Solve(dmps.Spec{
		Objects: []dmps.MediaObject{
			{ID: "long", Kind: dmps.Video, Duration: 30 * time.Second, Rate: 30},
			{ID: "tail", Kind: dmps.Audio, Duration: 5 * time.Second, Rate: 50},
		},
		Constraints: []dmps.Constraint{{A: "long", B: "tail", Rel: dmps.Meets}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sites := []dmps.SimSite{
		{Name: "p", Offset: 50 * time.Millisecond, Drift: 200e-6, SyncErr: time.Millisecond, ControlDelay: 5 * time.Millisecond},
		{Name: "q", Offset: -50 * time.Millisecond, Drift: -200e-6, SyncErr: -time.Millisecond, ControlDelay: 45 * time.Millisecond},
	}
	run := func(mode dmps.SimConfig) time.Duration {
		res, err := dmps.Simulate(mode)
		if err != nil {
			t.Fatal(err)
		}
		return res.Meter.MaxInterSiteSkew()
	}
	global := run(dmps.SimConfig{Timeline: tl, Sites: sites, Mode: dmps.GlobalClock})
	naive := run(dmps.SimConfig{Timeline: tl, Sites: sites, Mode: dmps.NaiveClock})
	if global >= naive {
		t.Errorf("global skew %v should beat naive %v", global, naive)
	}
}

// TestPublicAPIStandaloneTCP exercises the facade's standalone-deployment
// surface: NewServer + Dial over real sockets.
func TestPublicAPIStandaloneTCP(t *testing.T) {
	srv, err := dmps.NewServer(dmps.ServerConfig{
		Network: dmps.TCP{},
		Addr:    "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()
	c, err := dmps.Dial(dmps.ClientConfig{
		Network:  dmps.TCP{},
		Addr:     srv.Addr(),
		Name:     "standalone",
		Role:     "chair",
		Priority: 5,
		Timeout:  3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Join("g"); err != nil {
		t.Fatal(err)
	}
	dec, err := c.RequestFloor("g", dmps.GroupDiscussion, "")
	if err != nil || !dec.Granted {
		t.Fatalf("floor: %+v %v", dec, err)
	}
	// Presentation monitor through the facade.
	tl := dmps.Timeline{Items: []dmps.ScheduledObject{
		{Object: dmps.MediaObject{ID: "x", Kind: dmps.Image, Duration: time.Second}},
	}}
	net, err := dmps.Compile(tl)
	if err != nil {
		t.Fatal(err)
	}
	mon := dmps.NewPresentationMonitor(net, time.Now(), time.Second)
	if !mon.Conformant() {
		t.Error("fresh monitor should be conformant")
	}
}

// TestPublicAPIModeratedSubscription exercises the PR-1 surface through
// the facade: the ModeratedQueue mode, chair approval, and the event
// subscription API.
func TestPublicAPIModeratedSubscription(t *testing.T) {
	lab, err := dmps.NewLab(dmps.LabOptions{Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	teacher, err := lab.NewClient("Teacher", "chair", 5)
	if err != nil {
		t.Fatal(err)
	}
	student, err := lab.NewClient("Student", "participant", 2)
	if err != nil {
		t.Fatal(err)
	}
	events := student.Subscribe(dmps.FloorEvents)
	if err := teacher.Join("seminar"); err != nil {
		t.Fatal(err)
	}
	if err := student.Join("seminar"); err != nil {
		t.Fatal(err)
	}

	if mode, ok := dmps.ParseFloorMode("moderated"); !ok || mode != dmps.ModeratedQueue {
		t.Fatalf("ParseFloorMode = %v, %v", mode, ok)
	}
	dec, err := student.RequestFloor("seminar", dmps.ModeratedQueue, "")
	if err != nil || dec.Granted || dec.QueuePosition != 1 {
		t.Fatalf("request: %+v %v", dec, err)
	}
	if _, err := teacher.ApproveFloor("seminar", student.MemberID()); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev.Floor.Event == "granted" && ev.Floor.Holder == student.MemberID() {
				return
			}
		case <-deadline:
			t.Fatal("no grant event through the facade subscription")
		}
	}
}
