package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// Ack-table tuning. A tracked forward waits ackTimeoutBase before its
// first resend, doubling per attempt up to ackTimeoutMax; after
// ackMaxAttempts unanswered sends the entry is dropped and counted
// lost (the peer is presumed dead — the router's failover machinery,
// not the ack table, handles that). The table itself is bounded:
// admitting an entry past ackTableCap evicts the oldest in-flight
// forward as lost, so a long peer outage degrades replication
// coverage instead of growing memory without bound.
const (
	ackTableCap    = 4096
	ackTimeoutBase = 200 * time.Millisecond
	ackTimeoutMax  = 2 * time.Second
	ackMaxAttempts = 5
)

// Resend is one overdue replication forward the ack table hands back
// for another send: the peer still pending and the original wire bytes
// (the receiver dedups by GSeq, so at-least-once delivery is safe).
type Resend struct {
	// Peer is the peer address whose ack is overdue.
	Peer string
	// Wire is the forward's original wire bytes, resent verbatim.
	Wire []byte
}

// inflight is one tracked forward: the wire bytes, the peers whose
// acks are still pending, and the resend schedule.
type inflight struct {
	id       int64
	wire     []byte
	pending  map[string]bool
	sentAt   time.Time
	attempts int
	nextDue  time.Time
	// tid is the forward's sampled trace ID (0 = untraced); when set,
	// the full ack fires the traceAck callback with the round trip.
	tid uint64
}

// AckTable tracks replication forwards awaiting peer acknowledgement:
// the sender registers each identified forward with the peer list it
// was shipped to, receivers echo ForwardAck, and a periodic Due sweep
// hands back overdue entries for resend with exponential backoff. The
// table is bounded (oldest in-flight evicted as lost) and safe for
// concurrent use. It takes only its own lock, so registration may run
// inside a log-append deliver callback.
type AckTable struct {
	mu      sync.Mutex
	entries map[int64]*inflight
	order   []int64 // insertion order, for cap eviction
	nextID  atomic.Int64
	resends atomic.Int64
	lost    atomic.Int64
	acked   atomic.Int64
	// observe, when set, receives the ack round-trip in seconds each
	// time an entry fully acks — the replication ack-latency histogram.
	observe func(seconds float64)
	// traceAck, when set, receives each fully-acked traced forward's
	// trace ID, send time and round trip — the repl_ack span hook the
	// tracing plane installs without this package importing it.
	traceAck func(tid uint64, sentAt time.Time, rtt time.Duration)
}

// NewAckTable returns an empty ack table. observe (optional) receives
// each fully-acked forward's round-trip latency in seconds.
func NewAckTable(observe func(seconds float64)) *AckTable {
	return &AckTable{entries: make(map[int64]*inflight), observe: observe}
}

// NextID mints the next forward ID (per-sender monotonic, starting at 1
// so 0 stays the fire-and-forget sentinel).
func (t *AckTable) NextID() int64 { return t.nextID.Add(1) }

// OnTraceAck installs the callback fired (outside the table's lock)
// when a traced forward fully acks — the tracing plane's repl_ack span
// source. Install before traffic flows; the last installation wins.
func (t *AckTable) OnTraceAck(fn func(tid uint64, sentAt time.Time, rtt time.Duration)) {
	t.mu.Lock()
	t.traceAck = fn
	t.mu.Unlock()
}

// TrackTrace attaches a sampled trace ID to an already-tracked forward,
// so its eventual full ack records a repl_ack span. A no-op for IDs the
// table no longer holds (already acked, or evicted).
func (t *AckTable) TrackTrace(id int64, tid uint64) {
	if id == 0 || tid == 0 {
		return
	}
	t.mu.Lock()
	if e, ok := t.entries[id]; ok {
		e.tid = tid
	}
	t.mu.Unlock()
}

// Track registers a forward shipped to the given peers. When the table
// is full the oldest in-flight entry is evicted and counted lost.
func (t *AckTable) Track(id int64, peers []string, wire []byte) {
	if id == 0 || len(peers) == 0 {
		return
	}
	now := time.Now()
	pending := make(map[string]bool, len(peers))
	for _, p := range peers {
		pending[p] = true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.order) >= ackTableCap {
		oldest := t.order[0]
		t.order = t.order[1:]
		if _, ok := t.entries[oldest]; ok {
			delete(t.entries, oldest)
			t.lost.Add(1)
		}
	}
	t.entries[id] = &inflight{
		id: id, wire: wire, pending: pending,
		sentAt: now, nextDue: now.Add(ackTimeoutBase),
	}
	t.order = append(t.order, id)
}

// Ack records peer's acknowledgement of forward id. When the last
// pending peer acks, the entry clears and its round trip is observed.
func (t *AckTable) Ack(peer string, id int64) {
	t.mu.Lock()
	e, ok := t.entries[id]
	if !ok || !e.pending[peer] {
		t.mu.Unlock()
		return
	}
	delete(e.pending, peer)
	done := len(e.pending) == 0
	var rtt time.Duration
	traceAck := t.traceAck
	if done {
		delete(t.entries, id)
		rtt = time.Since(e.sentAt)
	}
	t.mu.Unlock()
	if done {
		t.acked.Add(1)
		if t.observe != nil {
			t.observe(rtt.Seconds())
		}
		if e.tid != 0 && traceAck != nil {
			traceAck(e.tid, e.sentAt, rtt)
		}
	}
}

// Due sweeps the table for overdue entries: each one past its resend
// deadline is handed back (once per still-pending peer) with its
// backoff doubled, and entries past ackMaxAttempts are dropped and
// counted lost. The caller resends each Resend over the pool.
func (t *AckTable) Due(now time.Time) []Resend {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Resend
	for id, e := range t.entries {
		if now.Before(e.nextDue) {
			continue
		}
		e.attempts++
		if e.attempts >= ackMaxAttempts {
			delete(t.entries, id)
			t.lost.Add(1)
			continue
		}
		backoff := ackTimeoutBase << e.attempts
		if backoff > ackTimeoutMax {
			backoff = ackTimeoutMax
		}
		e.nextDue = now.Add(backoff)
		for peer := range e.pending {
			out = append(out, Resend{Peer: peer, Wire: e.wire})
			t.resends.Add(1)
		}
	}
	return out
}

// Pending returns the number of in-flight (not yet fully acked)
// forwards — the unacked-append gauge.
func (t *AckTable) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Resends returns the cumulative resend count.
func (t *AckTable) Resends() int64 { return t.resends.Load() }

// Lost returns the number of forwards abandoned unacked (resend budget
// exhausted or table eviction).
func (t *AckTable) Lost() int64 { return t.lost.Load() }

// Acked returns the number of forwards fully acknowledged.
func (t *AckTable) Acked() int64 { return t.acked.Load() }
