// Cross-partition end-to-end tests: a 1-router + N-node cluster on the
// simulated network, driven through the ordinary client library — the
// whole point being that clients cannot tell a cluster from the
// standalone server.
package cluster_test

import (
	"fmt"
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/cluster"
	"dmps/internal/core"
	"dmps/internal/floor"
)

// waitFor polls until ok or the deadline.
func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// pickKey finds a key with the given primary owner under the lab
// cluster's partition map.
func pickKey(t *testing.T, nodes int, prefix string, owner int) string {
	t.Helper()
	addrs := make([]string, nodes)
	for i := range addrs {
		addrs[i] = core.NodeAddr(i)
	}
	m := cluster.NewMap(addrs)
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("%s%d", prefix, i)
		if m.Primary(key) == owner {
			return key
		}
	}
	t.Fatalf("no %q key owned by node %d", prefix, owner)
	return ""
}

// TestClusterCrossPartition drives the acceptance flow on netsim: two
// members homed on different nodes, two groups owned by different
// nodes, joins and floor arbitration across the partition boundary, a
// whiteboard that converges for both, and an invitation whose invitee's
// home is not the group's owner.
func TestClusterCrossPartition(t *testing.T) {
	cl, err := core.StartCluster(core.ClusterOptions{Options: core.Options{Seed: 7}, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Two members homed on different nodes (names hash to their homes).
	aliceName := pickKey(t, 2, "user-a", 0)
	bobName := pickKey(t, 2, "user-b", 1)
	alice, err := cl.NewClientOn("hostA", aliceName, "chair", 5)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := cl.NewClientOn("hostB", bobName, "participant", 3)
	if err != nil {
		t.Fatal(err)
	}

	// Two groups owned by different nodes; both members join both.
	g0 := pickKey(t, 2, "class-x", 0)
	g1 := pickKey(t, 2, "class-y", 1)
	for _, c := range []*client.Client{alice, bob} {
		for _, g := range []string{g0, g1} {
			if err := c.Join(g); err != nil {
				t.Fatalf("%s join %s: %v", c.MemberID(), g, err)
			}
		}
	}

	// Floor arbitration in the group owned by the member's non-home
	// node, with the queue crossing the boundary too.
	dec, err := alice.RequestFloor(g1, floor.EqualControl, "")
	if err != nil {
		t.Fatalf("alice floor in %s: %v", g1, err)
	}
	if !dec.Granted {
		t.Fatalf("alice not granted in %s: %+v", g1, dec)
	}
	if dec, err = bob.RequestFloor(g1, floor.EqualControl, ""); err != nil {
		t.Fatalf("bob queued request: %v", err)
	}
	if dec.Granted || dec.QueuePosition != 1 {
		t.Fatalf("bob should queue behind alice at position 1, got %+v", dec)
	}
	waitFor(t, "floor event at bob", func() bool { return bob.Holder(g1) == alice.MemberID() })

	// Whiteboard across the boundary, coalescing included.
	for i := 0; i < 5; i++ {
		if err := alice.Chat(g1, fmt.Sprintf("line %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "board convergence across nodes", func() bool {
		return bob.Board(g1).Seq() == 5 && alice.Board(g1).Seq() == 5
	})

	// Release passes the floor to the queued cross-node member.
	if err := alice.ReleaseFloor(g1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "promotion after release", func() bool { return bob.Holder(g1) == bob.MemberID() })

	// Invitation across partitions: the breakout group is owned by node
	// 0, the invitee's home is node 1 — the invite event crosses a typed
	// forward to bob's home node and lands in his member log.
	breakout := pickKey(t, 2, "breakout", 0)
	if err := alice.Join(breakout); err != nil {
		t.Fatal(err)
	}
	inviteID, err := alice.Invite(breakout, bob.MemberID())
	if err != nil {
		t.Fatalf("cross-node invite: %v", err)
	}
	waitFor(t, "invite delivery via home node", func() bool {
		return len(bob.PendingInvites()) == 1
	})
	if err := bob.ReplyInvite(inviteID, true); err != nil {
		t.Fatalf("accept across nodes: %v", err)
	}
	if err := bob.Chat(breakout, "made it"); err != nil {
		t.Fatalf("chat in breakout after cross-node accept: %v", err)
	}
	waitFor(t, "breakout board at alice", func() bool { return alice.Board(breakout).Seq() == 1 })

	// Lights: each node reports the members it homes; the client's
	// merged table names both.
	waitFor(t, "merged lights", func() bool {
		lights := alice.Lights()
		return lights[alice.MemberID()] == "green" && lights[bob.MemberID()] == "green"
	})
}
