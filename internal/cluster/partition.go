// Package cluster is the multi-process plane of DMPS: it partitions
// groups across N server processes ("group-partition nodes") behind a
// thin routing tier, reusing the existing wire protocol end-to-end. The
// same FNV-1a hash that stripes state inside a process (internal/shard)
// assigns every group — and every member's home — to a node, so the
// per-group invariants the in-process planes proved (per-group locks,
// per-group event logs, encode-once fan-out) carry across process
// boundaries unchanged: a group's entire state still lives under exactly
// one lock, it is just a lock in one of N processes now.
//
// Three pieces live here. The partition Map is the static-then-
// rebalanceable assignment of hash space to nodes, with a down-set so a
// dead node's partitions fail over to ring successors deterministically
// (which is also where the replication plane put their state). The Pool
// is the pooled inter-node transport: one connection per peer node,
// drained by a writer goroutine, carrying typed TForward messages
// (invitations to home nodes, logged-event replication to successors).
// The Router terminates client connections, consults the map, and
// proxies each session's traffic to the owning nodes — the member's
// home node for cross-cutting state (directory, session token, member
// log, lights), the group's owner for everything group-scoped.
package cluster

import (
	"strings"
	"sync"
)

// fnv1a matches internal/shard's key hash: the cluster partitions by
// the same function that stripes locks in-process, so a group's shard
// affinity and node affinity derive from one number.
func fnv1a(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// HomeKey derives the placement key of a member from their member ID:
// the sanitized-name prefix ("alice" from "alice#7"). Member IDs are
// minted by the home node as sanitized-name + "#" + counter, so every
// node — and the router, hashing the sanitized hello name before any ID
// exists — computes the same home from either form. Members whose names
// sanitize equal share a home node (and its ID counter), which is what
// keeps IDs globally unique across the cluster.
func HomeKey(memberID string) string {
	if i := strings.LastIndexByte(memberID, '#'); i >= 0 {
		return memberID[:i]
	}
	return memberID
}

// Map is the partition map: the ordered node list every cluster piece
// shares, plus the router's down-set. Ownership is primary-first with
// deterministic ring failover: a key's primary is hash(key) mod N, and
// while the primary is marked down the key is served by the next up
// node in ring order — exactly the node the replication plane ships the
// partition's state to, so a failover lands where the replica already
// is. Marking a node up again restores the static assignment
// ("static-then-rebalanceable"). Map is safe for concurrent use.
type Map struct {
	mu      sync.RWMutex
	nodes   []string
	down    []bool
	version int
	epoch   int64
}

// NewMap builds a partition map over the given node addresses, in ring
// order. The order is part of the cluster's identity: every node and
// router must be configured with the same list.
func NewMap(nodes []string) *Map {
	m := &Map{nodes: make([]string, len(nodes)), down: make([]bool, len(nodes))}
	copy(m.nodes, nodes)
	return m
}

// Len returns the node count.
func (m *Map) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.nodes)
}

// Nodes returns a copy of the node address list, in ring order.
func (m *Map) Nodes() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, len(m.nodes))
	copy(out, m.nodes)
	return out
}

// Addr returns the address of node idx.
func (m *Map) Addr(idx int) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.nodes[idx]
}

// Primary returns the static owner of a key — hash mod N, ignoring the
// down-set. Nodes use it to decide which partitions are natively
// theirs; replication ships a partition's state to the primary's ring
// successor.
func (m *Map) Primary(key string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int(fnv1a(key)) & 0x7fffffff % len(m.nodes)
}

// Successor returns the node after idx in ring order — the replication
// target for partitions whose primary is idx.
func (m *Map) Successor(idx int) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return (idx + 1) % len(m.nodes)
}

// Successors returns the r distinct nodes after idx in ring order — the
// replication target list of a partition whose primary is idx under
// replication factor r+1. With fewer than r other nodes it returns them
// all (the cluster cannot hold more copies than it has nodes).
func (m *Map) Successors(idx, r int) []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := len(m.nodes)
	if r > n-1 {
		r = n - 1
	}
	out := make([]int, 0, r)
	for i := 1; i <= r; i++ {
		out = append(out, (idx+i)%n)
	}
	return out
}

// Owner returns the node currently serving a key: the primary, or —
// while the primary is marked down — the first up node after it in ring
// order. With every node down it falls back to the primary (the caller
// will observe the dial failure itself).
func (m *Map) Owner(key string) (idx int, addr string) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := len(m.nodes)
	primary := int(fnv1a(key)) & 0x7fffffff % n
	for i := 0; i < n; i++ {
		cand := (primary + i) % n
		if !m.down[cand] {
			return cand, m.nodes[cand]
		}
	}
	return primary, m.nodes[primary]
}

// MarkDown records that a node is unreachable: its partitions fail over
// to ring successors until MarkUp. It bumps the map version.
func (m *Map) MarkDown(idx int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.down[idx] {
		m.down[idx] = true
		m.version++
	}
}

// MarkUp restores a node to the map, reverting its partitions to the
// static assignment. It bumps the map version. MarkUp alone is NOT a
// safe recovery path for a node that missed writes while down — the
// live state of its partitions accumulated on the ring successors — so
// cluster recovery routes through Router.Recover, which migrates the
// adopted state back under a new epoch before calling MarkUp.
func (m *Map) MarkUp(idx int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down[idx] {
		m.down[idx] = false
		m.version++
	}
}

// Down reports whether a node is currently marked down.
func (m *Map) Down(idx int) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.down[idx]
}

// Version counts rebalances (MarkDown/MarkUp transitions) — a cheap way
// for callers to notice the map changed under them.
func (m *Map) Version() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.version
}

// Epoch returns the map's migration epoch: a monotonic counter bumped
// by every coordinated live migration (node recovery, replacement,
// resharding). Takeover packages are stamped with the epoch that
// shipped them, and receivers discard packages from epochs older than
// the newest they have installed — the rule that makes concurrent or
// repeated migrations converge instead of resurrecting stale state.
func (m *Map) Epoch() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// NextEpoch bumps the migration epoch and returns the new value — the
// coordinator calls it once per migration, before shipping packages.
func (m *Map) NextEpoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epoch++
	return m.epoch
}

// AdvanceEpoch raises the epoch to at least e (monotonic max): nodes
// observing a migration stamped with a newer epoch than their own map's
// adopt it, so every map in the cluster converges on the coordinator's
// count.
func (m *Map) AdvanceEpoch(e int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e > m.epoch {
		m.epoch = e
	}
}
