package cluster_test

import (
	"fmt"
	"net"
	"testing"

	"dmps/internal/client"
	"dmps/internal/cluster"
	"dmps/internal/floor"
	"dmps/internal/resource"
	"dmps/internal/server"
	"dmps/internal/transport"
)

// freePorts reserves n distinct localhost TCP addresses. The listeners
// are closed before use — the tiny reuse race is irrelevant in CI.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
		_ = l.Close()
	}
	return addrs
}

// pickKeyFor finds a key with the given primary owner under an explicit
// address list.
func pickKeyFor(t *testing.T, addrs []string, prefix string, owner int) string {
	t.Helper()
	m := cluster.NewMap(addrs)
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("%s%d", prefix, i)
		if m.Primary(key) == owner {
			return key
		}
	}
	t.Fatalf("no %q key owned by node %d", prefix, owner)
	return ""
}

// TestClusterTCPE2E boots 1 router + 2 nodes on real localhost sockets
// and runs the acceptance flow across the partition boundary: join,
// floor arbitration, a cross-node invitation, and a client reconnect
// after a node handoff.
func TestClusterTCPE2E(t *testing.T) {
	addrs := freePorts(t, 3)
	nodeAddrs, routerAddr := addrs[:2], addrs[2]

	nodes := make([]*server.Server, 2)
	for i := range nodes {
		mon, err := resource.New(resource.MinBound, resource.DefaultThresholds())
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Network: transport.TCP{},
			Addr:    nodeAddrs[i],
			Monitor: mon,
			Cluster: &server.ClusterConfig{Nodes: nodeAddrs, Self: i},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		nodes[i] = srv
		t.Cleanup(srv.Close)
	}
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Network: transport.TCP{}, Addr: routerAddr, Nodes: nodeAddrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	router.Start()
	t.Cleanup(router.Close)

	dial := func(name, role string, prio int) *client.Client {
		t.Helper()
		c, err := client.Dial(client.Config{
			Network: transport.TCP{}, Addr: routerAddr,
			Name: name, Role: role, Priority: prio,
		})
		if err != nil {
			t.Fatalf("dial %s: %v", name, err)
		}
		t.Cleanup(c.Close)
		return c
	}
	// Members homed on node 0 (so the session survives killing node 1);
	// the arbitration group owned by node 1, the breakout by node 0.
	alice := dial(pickKeyFor(t, nodeAddrs, "tcp-a", 0), "chair", 5)
	bob := dial(pickKeyFor(t, nodeAddrs, "tcp-b", 0), "participant", 3)
	g1 := pickKeyFor(t, nodeAddrs, "tcp-class", 1)
	breakout := pickKeyFor(t, nodeAddrs, "tcp-breakout", 0)

	for _, c := range []*client.Client{alice, bob} {
		if err := c.Join(g1); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := alice.RequestFloor(g1, floor.EqualControl, "")
	if err != nil || !dec.Granted {
		t.Fatalf("grant over TCP: dec=%+v err=%v", dec, err)
	}
	waitFor(t, "floor event over TCP", func() bool { return bob.Holder(g1) == alice.MemberID() })
	if err := alice.Chat(g1, "over real sockets"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "board over TCP", func() bool { return bob.Board(g1).Seq() == 1 })

	// Invitation across the partition boundary.
	if err := alice.Join(breakout); err != nil {
		t.Fatal(err)
	}
	inviteID, err := alice.Invite(breakout, bob.MemberID())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cross-node invite over TCP", func() bool { return len(bob.PendingInvites()) == 1 })
	if err := bob.ReplyInvite(inviteID, true); err != nil {
		t.Fatal(err)
	}

	// Handoff: let the replica land, kill the owner, and reconnect a
	// dropped client across the handoff — the PR 3 resume path must
	// converge it on the adopted partition.
	waitFor(t, "replication before kill", func() bool { return nodes[0].ReplicaHead(g1) >= 1 })
	bob.Drop()
	nodes[1].Close()
	waitFor(t, "successor restores the held floor", func() bool {
		_, holder, _, _, _ := nodes[0].FloorController().StateSnapshot(g1)
		return string(holder) == alice.MemberID()
	})
	if err := bob.Reconnect(); err != nil {
		t.Fatalf("reconnect after handoff: %v", err)
	}
	if err := alice.Chat(g1, "after the handoff"); err != nil {
		t.Fatalf("chat after handoff: %v", err)
	}
	waitFor(t, "reconnected client converges on the new owner", func() bool {
		return bob.Holder(g1) == alice.MemberID() && bob.Board(g1).Seq() == 2
	})
}
