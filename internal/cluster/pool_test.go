package cluster_test

import (
	"testing"

	"dmps/internal/cluster"
	"dmps/internal/netsim"
)

// TestPoolBackoffAndCircuitBreaker exercises the inter-node pool's
// failure ladder directly: a dead peer runs the bounded dial-retry
// ladder (counted in Redials), then opens the circuit so further sends
// fast-fail as drops without burning dials; a live peer delivers with
// a quiet ladder and a closed circuit.
func TestPoolBackoffAndCircuitBreaker(t *testing.T) {
	net := netsim.New(31)
	p := cluster.NewPool(net.From("sender"))
	defer p.Close()

	// Nothing listens at dead:1. The first send queues (the link buffers
	// while the ladder runs); when every dial attempt fails, the circuit
	// opens and the backlog is counted as drops.
	if !p.Send("dead:1", []byte(`{"probe":1}`)) {
		t.Fatal("first send must queue while the dial ladder runs")
	}
	waitFor(t, "dial ladder exhausts and the circuit opens", func() bool {
		st := p.PeerStats()["dead:1"]
		return st.CircuitOpen && st.Redials >= 1 && st.Drops >= 1
	})

	// While the circuit is open, sends fast-fail as counted drops and
	// never re-run the ladder.
	before := p.PeerStats()["dead:1"]
	if p.Send("dead:1", []byte(`{"probe":2}`)) {
		t.Fatal("send during an open circuit must be dropped")
	}
	after := p.PeerStats()["dead:1"]
	if after.Drops != before.Drops+1 {
		t.Errorf("open-circuit send: drops %d -> %d, want +1", before.Drops, after.Drops)
	}
	if after.Redials != before.Redials {
		t.Errorf("open-circuit send dialed anyway: redials %d -> %d", before.Redials, after.Redials)
	}

	// A live peer: delivery with no retries and a closed circuit.
	ln, err := net.Listen("live:1")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			if _, err := ln.Accept(); err != nil {
				return
			}
		}
	}()
	if !p.Send("live:1", []byte(`{"probe":3}`)) {
		t.Fatal("send to a live peer must queue")
	}
	waitFor(t, "live peer counters settle", func() bool {
		st := p.PeerStats()["live:1"]
		return st.Sent == 1 && st.Drops == 0 && st.Redials == 0 && !st.CircuitOpen
	})
}
