package cluster_test

import (
	"testing"

	"dmps/internal/client"
	"dmps/internal/cluster"
	"dmps/internal/floor"
	"dmps/internal/resource"
	"dmps/internal/server"
	"dmps/internal/trace"
	"dmps/internal/transport"
)

// stagesByTrace folds one plane's flight recorder (completed rings plus
// still-pending assemblies) into trace ID → set of recorded stage
// names.
func stagesByTrace(p *trace.Plane) map[uint64]map[string]bool {
	page := p.Snapshot(0)
	out := map[uint64]map[string]bool{}
	pool := func(ops []*trace.OpTrace) {
		for _, op := range ops {
			for _, s := range op.Spans {
				m := out[op.Trace]
				if m == nil {
					m = map[string]bool{}
					out[op.Trace] = m
				}
				m[s.Stage] = true
			}
		}
	}
	pool(page.Recent)
	pool(page.Slow)
	pool(page.Pending)
	return out
}

// TestTraceCrossesThreeProcessesTCPE2E drives traced floor grants over
// a real TCP deployment — 1 router + 2 cluster nodes — from a
// JSON-framed client and a binary-framed client in the SAME group, and
// requires that each framing yields at least one assembled trace whose
// spans cross all three processes: the router's relay span, the owner
// node's dispatch pipeline, and the replica node's replication ack —
// with at least 5 distinct named stages in the union. This is the
// tentpole's end-to-end claim: one wire-propagated trace ID stitches
// the whole request path together, whichever framing carried it.
func TestTraceCrossesThreeProcessesTCPE2E(t *testing.T) {
	addrs := freePorts(t, 3)
	nodeAddrs, routerAddr := addrs[:2], addrs[2]

	nodes := make([]*server.Server, 2)
	for i := range nodes {
		mon, err := resource.New(resource.MinBound, resource.DefaultThresholds())
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Network: transport.TCP{},
			Addr:    nodeAddrs[i],
			Monitor: mon,
			Cluster: &server.ClusterConfig{Nodes: nodeAddrs, Self: i},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		nodes[i] = srv
		t.Cleanup(srv.Close)
	}
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Network: transport.TCP{}, Addr: routerAddr, Nodes: nodeAddrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	router.Start()
	t.Cleanup(router.Close)

	dial := func(name string, wireJSON bool) *client.Client {
		t.Helper()
		c, err := client.Dial(client.Config{
			Network: transport.TCP{}, Addr: routerAddr,
			Name: name, Role: "participant", Priority: 5,
			WireJSON: wireJSON,
			Trace:    true,
		})
		if err != nil {
			t.Fatalf("dial %s: %v", name, err)
		}
		t.Cleanup(c.Close)
		return c
	}

	// The group is owned by node 1, so node 0 is its replica — every
	// logged event's trace must cross to it through the forward path.
	legacy := dial(pickKeyFor(t, nodeAddrs, "trace-json", 0), true)
	modern := dial(pickKeyFor(t, nodeAddrs, "trace-bin", 1), false)
	group := pickKeyFor(t, nodeAddrs, "trace-class", 1)
	for _, c := range []*client.Client{legacy, modern} {
		if err := c.Join(group); err != nil {
			t.Fatal(err)
		}
	}

	// qualifying lists the trace IDs whose spans landed on ALL three
	// processes with ≥ 5 distinct stage names in the union.
	qualifying := func() map[uint64]bool {
		viaRouter := stagesByTrace(router.TracePlane())
		viaOwner := stagesByTrace(nodes[1].TracePlane())
		viaReplica := stagesByTrace(nodes[0].TracePlane())
		ok := map[uint64]bool{}
		for id, ownerStages := range viaOwner {
			routerStages, onRouter := viaRouter[id]
			replicaStages, onReplica := viaReplica[id]
			if !onRouter || !onReplica {
				continue
			}
			union := map[string]bool{}
			for _, stages := range []map[string]bool{ownerStages, routerStages, replicaStages} {
				for s := range stages {
					union[s] = true
				}
			}
			if len(union) >= 5 {
				ok[id] = true
			}
		}
		return ok
	}

	// Grant on the binary framing first.
	if dec, err := modern.RequestFloor(group, floor.EqualControl, ""); err != nil || !dec.Granted {
		t.Fatalf("binary-side grant: dec=%+v err=%v", dec, err)
	}
	waitFor(t, "a binary-framed trace crosses router, owner and replica", func() bool {
		return len(qualifying()) >= 1
	})
	fromBinary := qualifying()

	// Hand the floor across and grant on the JSON framing: its trace
	// must qualify too, as a NEW trace ID (JSON carries the context as
	// optional envelope fields rather than the binary frame extension).
	if err := modern.ReleaseFloor(group); err != nil {
		t.Fatal(err)
	}
	if dec, err := legacy.RequestFloor(group, floor.EqualControl, ""); err != nil || !dec.Granted {
		t.Fatalf("JSON-side grant: dec=%+v err=%v", dec, err)
	}
	waitFor(t, "a JSON-framed trace crosses router, owner and replica", func() bool {
		for id := range qualifying() {
			if !fromBinary[id] {
				return true
			}
		}
		return false
	})

	// The qualifying traces really assembled ≥ 5 named spans: re-check
	// one explicitly and require the relay and repl_ack endpoints of the
	// path by name, so the qualification can't be satisfied by a lopsided
	// trace that never left one process.
	viaRouter := stagesByTrace(router.TracePlane())
	viaReplica := stagesByTrace(nodes[0].TracePlane())
	for id := range qualifying() {
		if !viaRouter[id][trace.StageRelay] {
			t.Fatalf("trace %x crossed the router without a relay span", id)
		}
		if !viaReplica[id][trace.StageReplAck] {
			t.Fatalf("trace %x reached the replica without a repl_ack span", id)
		}
	}
}
