// Durability drills for the replicated cluster plane: what RF buys
// (and what it does not), write-ahead-log replay across a full-cluster
// restart, and the migration that brings a recovered node's partitions
// home under a new epoch. All run the real router + node servers on
// the simulated network through the ordinary client library.
package cluster_test

import (
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/core"
	"dmps/internal/floor"
	"dmps/internal/group"
)

// reconnect rides a client across a dead home node: Drop severs the
// session, then Reconnect retries until the token resume lands on a
// live ring successor (the routing tier needs a probe cycle or two to
// notice the death first).
func reconnect(t *testing.T, c *client.Client) {
	t.Helper()
	c.Drop()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := c.Reconnect()
		if err == nil {
			return
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("reconnect: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// reinstate drives the router's recovery for any node it marked down
// until the whole ring is up again — the in-test stand-in for the
// production router's -recover prober.
func reinstate(t *testing.T, cl *core.Cluster) {
	t.Helper()
	waitFor(t, "router reinstates the ring", func() bool {
		up := true
		for i := range cl.Nodes {
			if cl.Router.Map().Down(i) {
				_ = cl.Router.Recover(i)
				up = false
			}
		}
		return up
	})
}

// TestDoubleFailureRF2FailsLoudly kills both replicas of a partition
// under the default RF=2: the group's primary and its ring successor.
// The surviving node holds no replica, so it must answer node_moved —
// clients see loud errors — and must never fabricate floor or log
// state for a partition it cannot restore.
func TestDoubleFailureRF2FailsLoudly(t *testing.T) {
	cl, err := core.StartCluster(core.ClusterOptions{Options: core.Options{Seed: 13}, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	alice, err := cl.NewClientOn("hostA", pickKey(t, 3, "survivorhome", 0), "chair", 5)
	if err != nil {
		t.Fatal(err)
	}
	g := pickKey(t, 3, "doomedtwice", 1)
	if err := alice.Join(g); err != nil {
		t.Fatal(err)
	}
	dec, err := alice.RequestFloor(g, floor.EqualControl, "")
	if err != nil || !dec.Granted {
		t.Fatalf("grant: dec=%+v err=%v", dec, err)
	}
	if err := alice.Chat(g, "before the blast"); err != nil {
		t.Fatal(err)
	}
	// RF=2 puts the only replica on the ring successor (node 2); the
	// surviving node 0 must hold nothing for g.
	waitFor(t, "replica at the successor", func() bool {
		return cl.Nodes[2].ReplicaHead(g) >= 1
	})
	if head := cl.Nodes[0].ReplicaHead(g); head != 0 {
		t.Fatalf("RF=2 replicated to node 0 (head %d); the drill needs it blind", head)
	}

	cl.KillNode(1)
	cl.KillNode(2)

	// Both copies are gone: partition traffic must start failing loudly
	// once the router notices, and must keep failing.
	waitFor(t, "ops against the lost partition fail", func() bool {
		return alice.Chat(g, "anyone there?") != nil
	})
	charlie, err := cl.NewClientOn("hostC", pickKey(t, 3, "lateobserver", 0), "participant", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := charlie.Join(g); err == nil {
		t.Error("join of a fully lost partition succeeded; it must be refused, not re-created empty")
	}

	// The surviving node answered node_moved throughout: no adopted
	// holder, no adopted queue, no invented log.
	_, holder, queue, _, _ := cl.Nodes[0].FloorController().StateSnapshot(g)
	if string(holder) != "" || len(queue) != 0 {
		t.Errorf("node 0 fabricated floor state for a partition it never replicated: holder=%q queue=%v", holder, queue)
	}
	if head := cl.Nodes[0].ReplicaHead(g); head != 0 {
		t.Errorf("node 0 fabricated log state: replica head %d", head)
	}
}

// TestRF3SurvivesDoubleFailure runs the acceptance drill: with RF=3 on
// a 3-node ring, killing any two nodes mid-floor-hold loses zero
// logged events and produces zero duplicate grants. Here the two dead
// nodes are the group's primary and first successor AND the home nodes
// of both the holder and the queued member, so the one survivor must
// restore the partition and adopt both member homes from its replicas.
func TestRF3SurvivesDoubleFailure(t *testing.T) {
	cl, err := core.StartCluster(core.ClusterOptions{
		Options: core.Options{Seed: 17}, Nodes: 3, ReplicationFactor: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	watcher, err := cl.NewClientOn("hostW", pickKey(t, 3, "watchhome", 0), "participant", 1)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := cl.NewClientOn("hostA", pickKey(t, 3, "holderhome", 1), "chair", 5)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := cl.NewClientOn("hostB", pickKey(t, 3, "queuedhome", 2), "participant", 3)
	if err != nil {
		t.Fatal(err)
	}
	g := pickKey(t, 3, "hardygroup", 1)

	// Count grants the surviving watcher observes across the whole
	// drill: exactly one (alice's), never a re-grant from the restore.
	var aliceGrants, bobGrants int
	events := watcher.Subscribe(client.FloorEvents)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			if ev.Group == g && ev.Floor.Event == "granted" {
				if ev.Floor.Member == alice.MemberID() || ev.Floor.Holder == alice.MemberID() {
					aliceGrants++
				}
				if ev.Floor.Member == bob.MemberID() {
					bobGrants++
				}
			}
		}
	}()

	for _, c := range []*client.Client{watcher, alice, bob} {
		if err := c.Join(g); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := alice.RequestFloor(g, floor.EqualControl, "")
	if err != nil || !dec.Granted {
		t.Fatalf("alice grant: dec=%+v err=%v", dec, err)
	}
	if dec, err = bob.RequestFloor(g, floor.EqualControl, ""); err != nil || dec.Granted || dec.QueuePosition != 1 {
		t.Fatalf("bob queue: dec=%+v err=%v", dec, err)
	}
	if err := alice.Chat(g, "logged before the failures"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pre-kill convergence at the watcher", func() bool {
		return watcher.Board(g).Seq() == 1 && watcher.Holder(g) == alice.MemberID()
	})
	// Let every append reach its full replica set before the kills: a
	// drained ack table on each node means RF acks landed.
	waitFor(t, "replication drained at RF=3", func() bool {
		for _, n := range cl.Nodes {
			if n.ReplicationPending() != 0 {
				return false
			}
		}
		return cl.Nodes[0].ReplicaHead(g) >= 1
	})

	cl.KillNode(1)
	cl.KillNode(2)

	// Both clients' home nodes died with the group's primary: the token
	// resume must fail over to the survivor's adopted member homes.
	reconnect(t, alice)
	reconnect(t, bob)

	waitFor(t, "survivor restores holder and queue", func() bool {
		_, holder, queue, _, _ := cl.Nodes[0].FloorController().StateSnapshot(g)
		return string(holder) == alice.MemberID() &&
			len(queue) == 1 && queue[0] == group.MemberID(bob.MemberID())
	})
	waitFor(t, "clients converge on the survivor", func() bool {
		return alice.Holder(g) == alice.MemberID() && bob.Holder(g) == alice.MemberID()
	})
	// Zero logged events lost: the pre-kill chat is still the board
	// head, and the next append continues the sequence rather than
	// re-minting it.
	if seq := watcher.Board(g).Seq(); seq != 1 {
		t.Fatalf("watcher board seq = %d after the failures, want 1", seq)
	}
	if err := alice.Chat(g, "logged after the failures"); err != nil {
		t.Fatalf("chat after failover: %v", err)
	}
	waitFor(t, "post-failure append continues the board sequence", func() bool {
		return watcher.Board(g).Seq() == 2 && bob.Board(g).Seq() == 2
	})

	// The queue survived: a release promotes bob (a "released" event
	// with a new holder — any "granted" for bob would be a duplicate).
	if err := alice.ReleaseFloor(g); err != nil {
		t.Fatalf("release after failover: %v", err)
	}
	waitFor(t, "bob promoted from the restored queue", func() bool {
		return bob.Holder(g) == bob.MemberID()
	})

	time.Sleep(200 * time.Millisecond)
	watcher.Close()
	<-done
	if aliceGrants != 1 {
		t.Errorf("watcher observed %d grants for alice; the restore must never re-grant", aliceGrants)
	}
	if bobGrants != 0 {
		t.Errorf("watcher observed %d spurious grants for bob across the failover", bobGrants)
	}
}

// TestWALReplayResumesCursorsAfterFullRestart kills the WHOLE cluster
// and restarts every node on its own WAL dir: replay must resume the
// log cursors exactly where they stopped — the next append continues
// the pre-restart board sequence on every client — and restore floor
// holders and resume tokens, so pre-restart clients reconnect into
// their old sessions.
func TestWALReplayResumesCursorsAfterFullRestart(t *testing.T) {
	cl, err := core.StartCluster(core.ClusterOptions{
		Options: core.Options{Seed: 19}, Nodes: 2, WALDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	alice, err := cl.NewClientOn("hostA", pickKey(t, 2, "walchair", 0), "chair", 5)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := cl.NewClientOn("hostB", pickKey(t, 2, "walpart", 1), "participant", 3)
	if err != nil {
		t.Fatal(err)
	}
	g0 := pickKey(t, 2, "walclass", 0)
	g1 := pickKey(t, 2, "wallab", 1)
	for _, g := range []string{g0, g1} {
		if err := alice.Join(g); err != nil {
			t.Fatal(err)
		}
		if err := bob.Join(g); err != nil {
			t.Fatal(err)
		}
	}
	if dec, err := alice.RequestFloor(g0, floor.EqualControl, ""); err != nil || !dec.Granted {
		t.Fatalf("alice grant: dec=%+v err=%v", dec, err)
	}
	if dec, err := bob.RequestFloor(g1, floor.EqualControl, ""); err != nil || !dec.Granted {
		t.Fatalf("bob grant: dec=%+v err=%v", dec, err)
	}
	for _, line := range []string{"first", "second"} {
		if err := alice.Chat(g0, line); err != nil {
			t.Fatal(err)
		}
	}
	if err := bob.Chat(g1, "only"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pre-restart convergence", func() bool {
		return bob.Board(g0).Seq() == 2 && alice.Board(g1).Seq() == 1
	})

	// Full-cluster restart: no survivor holds anything in memory — the
	// journals are the only copy of the world.
	cl.KillNode(0)
	cl.KillNode(1)
	if err := cl.RestartNode(0); err != nil {
		t.Fatal(err)
	}
	if err := cl.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	reinstate(t, cl)

	// The resume tokens were journalled: the old sessions come back.
	reconnect(t, alice)
	reconnect(t, bob)
	waitFor(t, "replayed floor state reaches the clients", func() bool {
		return alice.Holder(g0) == alice.MemberID() && bob.Holder(g1) == bob.MemberID()
	})

	// The cursor check: appends after replay continue the exact
	// pre-restart sequences. A cluster that replayed short (or re-minted
	// from 1) can never produce seq 3 here.
	if err := alice.Chat(g0, "third"); err != nil {
		t.Fatalf("chat after replay: %v", err)
	}
	if err := bob.Chat(g1, "second"); err != nil {
		t.Fatalf("chat after replay: %v", err)
	}
	waitFor(t, "post-replay appends continue the old cursors", func() bool {
		return bob.Board(g0).Seq() == 3 && alice.Board(g1).Seq() == 2
	})
}

// TestRecoveredNodeMigratesPartitionsHomeUnderNewEpoch runs the
// node-replacement cycle: kill a partition's owner, let the successor
// adopt it under load, restart the owner on its WAL dir, and drive the
// router's recovery — the partition must migrate home with holder and
// board intact, under a bumped partition-map epoch.
func TestRecoveredNodeMigratesPartitionsHomeUnderNewEpoch(t *testing.T) {
	cl, err := core.StartCluster(core.ClusterOptions{
		Options: core.Options{Seed: 23}, Nodes: 2, WALDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	alice, err := cl.NewClientOn("hostA", pickKey(t, 2, "epochchair", 0), "chair", 5)
	if err != nil {
		t.Fatal(err)
	}
	g := pickKey(t, 2, "roundtrip", 1)
	if err := alice.Join(g); err != nil {
		t.Fatal(err)
	}
	if dec, err := alice.RequestFloor(g, floor.EqualControl, ""); err != nil || !dec.Granted {
		t.Fatalf("grant: dec=%+v err=%v", dec, err)
	}
	if err := alice.Chat(g, "born on the owner"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replica at the successor", func() bool {
		return cl.Nodes[0].ReplicaHead(g) >= 1
	})
	epoch0 := cl.Router.Map().Epoch()

	cl.KillNode(1)
	waitFor(t, "successor adopts under load", func() bool {
		_, holder, _, _, _ := cl.Nodes[0].FloorController().StateSnapshot(g)
		return string(holder) == alice.MemberID()
	})
	waitFor(t, "client converges on the adopter", func() bool {
		return alice.Holder(g) == alice.MemberID()
	})
	if err := alice.Chat(g, "appended on the adopter"); err != nil {
		t.Fatalf("chat during failover: %v", err)
	}
	waitFor(t, "failover append converges", func() bool {
		return alice.Board(g).Seq() == 2
	})

	if err := cl.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	reinstate(t, cl)
	if epoch := cl.Router.Map().Epoch(); epoch <= epoch0 {
		t.Errorf("recovery left the map epoch at %d (was %d); migration must version the new assignment", epoch, epoch0)
	}
	waitFor(t, "partition served home with its state", func() bool {
		_, holder, _, _, _ := cl.Nodes[1].FloorController().StateSnapshot(g)
		return string(holder) == alice.MemberID()
	})

	// The homebound partition keeps serving: one more append continues
	// the sequence that crossed two nodes and one migration.
	if err := alice.Chat(g, "appended back home"); err != nil {
		t.Fatalf("chat after migration home: %v", err)
	}
	waitFor(t, "post-migration append converges", func() bool {
		return alice.Board(g).Seq() == 3
	})
	if err := alice.ReleaseFloor(g); err != nil {
		t.Fatalf("release after migration: %v", err)
	}
}
