package cluster

import "testing"

func TestMapOwnershipAndFailover(t *testing.T) {
	m := NewMap([]string{"a:1", "b:1", "c:1"})
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	// Ownership is deterministic and stable.
	for _, key := range []string{"physics", "math", "g0", "g1", "g2"} {
		p := m.Primary(key)
		idx, addr := m.Owner(key)
		if idx != p {
			t.Errorf("Owner(%q) = %d, Primary = %d with nothing down", key, idx, p)
		}
		if addr != m.Addr(idx) {
			t.Errorf("Owner(%q) addr %q != Addr(%d) %q", key, addr, idx, m.Addr(idx))
		}
	}
	// Failover: a down primary's keys land on the ring successor, and
	// recover when the node comes back.
	key := "physics"
	p := m.Primary(key)
	m.MarkDown(p)
	idx, _ := m.Owner(key)
	if idx != (p+1)%3 {
		t.Errorf("failover owner = %d, want successor %d", idx, (p+1)%3)
	}
	if m.Primary(key) != p {
		t.Error("Primary must ignore the down-set")
	}
	m.MarkDown((p + 1) % 3)
	idx, _ = m.Owner(key)
	if idx != (p+2)%3 {
		t.Errorf("double failover owner = %d, want %d", idx, (p+2)%3)
	}
	m.MarkUp(p)
	idx, _ = m.Owner(key)
	if idx != p {
		t.Errorf("recovered owner = %d, want primary %d", idx, p)
	}
	if m.Version() != 3 {
		t.Errorf("Version = %d after 3 transitions", m.Version())
	}
}

func TestHomeKey(t *testing.T) {
	for in, want := range map[string]string{
		"alice#7":    "alice",
		"alice":      "alice",
		"a#b#9":      "a#b",
		"member#12":  "member",
		"bob-x#1234": "bob-x",
	} {
		if got := HomeKey(in); got != want {
			t.Errorf("HomeKey(%q) = %q, want %q", in, got, want)
		}
	}
}
