package cluster

import (
	"sync"

	"dmps/internal/protocol"
)

// ReplicaEvent is one replicated logged event: the stamped wire bytes
// exactly as the owner fanned them out, plus the sequence fields parsed
// back out so a takeover can install them into the adopting node's log
// plane with the original numbering (clients' cursors keep counting).
type ReplicaEvent struct {
	GSeq  int64
	CSeq  int64
	Class string
	State bool
	Wire  []byte
}

// GroupReplica is the takeover package for one group partition: the
// retained logged-event suffix, the latest floor-state blob (mode,
// holder, the queue the redacted wire bytes cannot carry, suspensions,
// pin), and the membership roster with its chair.
type GroupReplica struct {
	Events  []ReplicaEvent
	Floor   *protocol.FloorReplicaBody
	Members []protocol.NodeMemberInfo
	Chair   string
	Head    int64
	// BoardHead is the highest board operation sequence the owner was
	// known to have issued. The adopting node advances its board past it
	// even when the retained event suffix is incomplete (trimmed by the
	// cap, or a dropped best-effort forward), so a takeover can never
	// re-mint board sequence numbers clients already applied.
	BoardHead int64
}

// ReplicaStore holds the group replicas a node keeps on behalf of its
// ring predecessor: ForwardReplica and ForwardMembers forwards
// accumulate here, and a takeover drains one group's package into the
// live planes. Retention is bounded per group (at least cap events,
// trimmed amortized at 2×cap, FIFO) — a client older than the retained
// suffix converges through the snapshot fallback, same as with the
// in-process log ring. Safe for concurrent use.
type ReplicaStore struct {
	mu      sync.Mutex
	cap     int
	groups  map[string]*GroupReplica
	members map[string]*MemberHome
	// epochs records, per key, the newest migration epoch whose takeover
	// package this store (or its node) has installed; packages stamped
	// older are stale and discarded.
	epochs map[string]int64
}

// MemberHome is a member's replicated home-node state: the directory
// row and the session-resume token. The home's successor holds it so a
// resume presented after home-node death can be adopted instead of
// expiring the session.
type MemberHome struct {
	Info  protocol.NodeMemberInfo
	Token string
}

// NewReplicaStore returns an empty store retaining up to cap events per
// group (cap <= 0 means 512, matching the log plane's default).
func NewReplicaStore(cap int) *ReplicaStore {
	if cap <= 0 {
		cap = 512
	}
	return &ReplicaStore{
		cap: cap, groups: make(map[string]*GroupReplica),
		members: make(map[string]*MemberHome), epochs: make(map[string]int64),
	}
}

func (s *ReplicaStore) group(id string) *GroupReplica {
	g, ok := s.groups[id]
	if !ok {
		g = &GroupReplica{}
		s.groups[id] = g
	}
	return g
}

// ApplyEvent records one replicated logged event for a group. The wire
// bytes are the owner's stamped fan-out bytes in either framing; their
// envelope is parsed here (off the owner's hot path) to recover the
// sequence fields. An optional floor blob replaces the group's takeover
// floor state.
func (s *ReplicaStore) ApplyEvent(groupID string, wire []byte, floor *protocol.FloorReplicaBody) {
	env, err := protocol.DecodeAny(wire)
	if err != nil || env.GSeq == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.group(groupID)
	// Forwards ride FIFO per-peer queues, so duplicates cannot happen but
	// a re-dial after a pool hiccup can replay nothing; only advance.
	if env.GSeq <= g.Head {
		return
	}
	g.Head = env.GSeq
	g.Events = append(g.Events, ReplicaEvent{
		GSeq: env.GSeq, CSeq: env.CSeq, Class: env.Class, State: env.State, Wire: wire,
	})
	if env.Class == protocol.ClassBoard {
		// Track the owner's board head across the whole coalesced burst,
		// so takeover knows where sequence minting must resume even if
		// earlier board events were trimmed from the retained suffix.
		var body protocol.SequencedBody
		if env.Into(&body) == nil {
			if body.Seq > g.BoardHead {
				g.BoardHead = body.Seq
			}
			for _, op := range body.More {
				if op.Seq > g.BoardHead {
					g.BoardHead = op.Seq
				}
			}
		}
	}
	if len(g.Events) >= 2*s.cap {
		// Amortized trim: compacting on every event past the cap would
		// copy the whole window per append — O(cap) on the replication
		// hot path. Letting the slice run to 2×cap and then cutting
		// back to cap copies cap events once per cap appends, so the
		// steady-state cost is one event-copy per event. Takeover only
		// needs the retained suffix, so briefly holding up to 2×cap-1
		// events is extra safety margin, never staleness.
		g.Events = append(g.Events[:0:0], g.Events[len(g.Events)-s.cap:]...)
	}
	if floor != nil {
		g.Floor = floor
	}
}

// ApplyMembers records a group's replicated membership roster and chair.
func (s *ReplicaStore) ApplyMembers(groupID, chair string, members []protocol.NodeMemberInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.group(groupID)
	g.Chair = chair
	g.Members = members
}

// Has reports whether the store holds any replica state for a group —
// the adoption test: a node asked to serve a partition it does not
// primarily own adopts it exactly when a replica is present.
func (s *ReplicaStore) Has(groupID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.groups[groupID]
	return ok
}

// Head returns the highest replicated GSeq for a group (0 when none) —
// what tests wait on to know replication caught up before a kill.
func (s *ReplicaStore) Head(groupID string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.groups[groupID]; ok {
		return g.Head
	}
	return 0
}

// Take removes and returns a group's replica package for takeover. The
// removal is what makes adoption idempotent: the second caller finds
// nothing and treats the group as already live.
func (s *ReplicaStore) Take(groupID string) (GroupReplica, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[groupID]
	if !ok {
		return GroupReplica{}, false
	}
	delete(s.groups, groupID)
	return *g, true
}

// GroupKeys lists the keys the store holds replica packages for —
// migration's enumeration of what a recovering node may be owed.
func (s *ReplicaStore) GroupKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.groups))
	for k := range s.groups {
		out = append(out, k)
	}
	return out
}

// MemberIDs lists the member IDs the store holds replicated homes for.
func (s *ReplicaStore) MemberIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.members))
	for id := range s.members {
		out = append(out, id)
	}
	return out
}

// ApplyMemberHome records a member's replicated home state (directory
// row + resume token), keyed by member ID.
func (s *ReplicaStore) ApplyMemberHome(info protocol.NodeMemberInfo, token string) {
	if info.ID == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.members[info.ID] = &MemberHome{Info: info, Token: token}
}

// DropMemberHome retracts a replicated member home — the home node
// expired the session, so the replica must not adopt it back to life.
func (s *ReplicaStore) DropMemberHome(memberID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.members, memberID)
}

// MemberByToken finds the replicated member home holding the given
// resume token — the lookup a successor runs when a resume arrives for
// a token it never minted.
func (s *ReplicaStore) MemberByToken(token string) (MemberHome, bool) {
	if token == "" {
		return MemberHome{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, mh := range s.members {
		if mh.Token == token {
			return *mh, true
		}
	}
	return MemberHome{}, false
}

// TakeMember removes and returns a member's replicated home for
// adoption — delete-on-read idempotency, like Take.
func (s *ReplicaStore) TakeMember(memberID string) (MemberHome, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mh, ok := s.members[memberID]
	if !ok {
		return MemberHome{}, false
	}
	delete(s.members, memberID)
	return *mh, true
}

// AdmitEpoch checks a takeover package's epoch against the newest this
// store has seen for the key, recording it when newer. It reports false
// for a stale package (epoch older than one already installed) — the
// rule that keeps repeated or racing migrations from resurrecting old
// state.
func (s *ReplicaStore) AdmitEpoch(key string, epoch int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch < s.epochs[key] {
		return false
	}
	s.epochs[key] = epoch
	return true
}

// Install replaces a group's replica package wholesale — how a
// takeover package shipped by a migration lands on a node that does not
// natively own the key (it becomes replica state for a later failover).
func (s *ReplicaStore) Install(groupID string, rep GroupReplica) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := rep
	cp.Events = append([]ReplicaEvent(nil), rep.Events...)
	s.groups[groupID] = &cp
}
