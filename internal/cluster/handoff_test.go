package cluster_test

import (
	"sync/atomic"
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/core"
	"dmps/internal/floor"
	"dmps/internal/group"
)

// TestPartitionHandoffMidFloorHold kills a node while a member holds
// the floor of one of its groups, with another member queued behind.
// The ring successor must restore holder AND queue from the replicated
// state — the canonical wire events redact queue membership, so this
// exercises the floor blob — and both clients must converge through the
// router's node_moved push with zero duplicate grants.
func TestPartitionHandoffMidFloorHold(t *testing.T) {
	cl, err := core.StartCluster(core.ClusterOptions{Options: core.Options{Seed: 11}, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Both members homed on node 0, the group owned by node 1 — killing
	// node 1 moves the partition while the members' home sessions (and
	// tokens, and member logs) survive on node 0.
	alice, err := cl.NewClientOn("hostA", pickKey(t, 2, "holder", 0), "chair", 5)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := cl.NewClientOn("hostB", pickKey(t, 2, "queued", 0), "participant", 3)
	if err != nil {
		t.Fatal(err)
	}
	g := pickKey(t, 2, "doomed", 1)

	// Count floor grants bob observes; exactly one per actual grant.
	var aliceGrants, bobGrants atomic.Int64
	events := bob.Subscribe(client.FloorEvents)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			if ev.Group == g && ev.Floor.Event == "granted" {
				if ev.Floor.Member == alice.MemberID() || ev.Floor.Holder == alice.MemberID() {
					aliceGrants.Add(1)
				}
				if ev.Floor.Member == bob.MemberID() {
					bobGrants.Add(1)
				}
			}
		}
	}()

	for _, c := range []*client.Client{alice, bob} {
		if err := c.Join(g); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := alice.RequestFloor(g, floor.EqualControl, "")
	if err != nil || !dec.Granted {
		t.Fatalf("alice grant: dec=%+v err=%v", dec, err)
	}
	if dec, err = bob.RequestFloor(g, floor.EqualControl, ""); err != nil || dec.Granted || dec.QueuePosition != 1 {
		t.Fatalf("bob queue: dec=%+v err=%v", dec, err)
	}
	waitFor(t, "bob sees alice's grant", func() bool { return bob.Holder(g) == alice.MemberID() })

	// Let replication land on the successor before the kill: the grant
	// and the queued event at least.
	waitFor(t, "replication at successor", func() bool {
		return cl.Nodes[0].ReplicaHead(g) >= 2
	})

	cl.KillNode(1)

	// The router notices, pushes node_moved, the clients backfill, the
	// successor adopts: holder and queue must be restored — not re-run.
	waitFor(t, "successor restores holder and queue", func() bool {
		_, holder, queue, _, _ := cl.Nodes[0].FloorController().StateSnapshot(g)
		return string(holder) == alice.MemberID() &&
			len(queue) == 1 && queue[0] == group.MemberID(bob.MemberID())
	})
	waitFor(t, "clients converge on the surviving node", func() bool {
		return bob.Holder(g) == alice.MemberID() && alice.Holder(g) == alice.MemberID()
	})

	// The queue survived the handoff: a release on the new owner
	// promotes bob, proving queue state (which the wire events redact)
	// crossed through the floor blob.
	if err := alice.ReleaseFloor(g); err != nil {
		t.Fatalf("release after handoff: %v", err)
	}
	waitFor(t, "bob promoted after handoff release", func() bool {
		return bob.Holder(g) == bob.MemberID()
	})

	// Board traffic works against the adopted partition too.
	if err := bob.Chat(g, "post-handoff"); err != nil {
		t.Fatalf("chat after handoff: %v", err)
	}
	waitFor(t, "post-handoff board convergence", func() bool {
		return alice.Board(g).Seq() == 1
	})

	// Give any stray re-deliveries a moment, then assert zero duplicate
	// grants: one for alice (the original), one for bob (the promotion).
	time.Sleep(200 * time.Millisecond)
	bob.Close()
	<-done
	if got := aliceGrants.Load(); got != 1 {
		t.Errorf("bob observed %d grants for alice; the handoff must restore, not re-grant", got)
	}
	// Bob's promotion rides the "released" event (new holder), never a
	// fresh grant: any "granted" for bob would be a duplicate the
	// handoff invented.
	if got := bobGrants.Load(); got != 0 {
		t.Errorf("bob observed %d spurious grants for himself across the handoff", got)
	}
}
