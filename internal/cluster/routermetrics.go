package cluster

import (
	"fmt"

	"dmps/internal/metrics"
)

// RegisterMetrics wires the router's observability series into reg.
// Everything is read at scrape time from state the router already
// maintains — the session table, the routed/relayed counters, the
// shared partition map — so the routing hot path carries no extra
// bookkeeping beyond its two throughput atomics.
//
// Exported series:
//
//	dmps_router_sessions            live proxied client sessions
//	dmps_router_routed_total        client messages forwarded to nodes
//	dmps_router_relayed_total       node messages relayed to clients
//	dmps_cluster_map_version        partition map change counter
//	dmps_cluster_node_down{node}    1 when the node is in the down-set
func (r *Router) RegisterMetrics(reg *metrics.Registry) {
	// The tracing plane (dmps_stage_seconds{stage="relay"}, span/trace
	// counters, /debug/traces) and the runtime health gauges ride the
	// same registry as the routing counters.
	r.plane.RegisterMetrics(reg)
	metrics.RegisterRuntime(reg)
	reg.GaugeFunc("dmps_router_sessions", "Live proxied client sessions.", func() []metrics.Sample {
		return []metrics.Sample{{Value: float64(r.Sessions())}}
	})
	reg.CounterFunc("dmps_router_routed_total", "Client messages forwarded up to cluster nodes.", func() []metrics.Sample {
		return []metrics.Sample{{Value: float64(r.routed.Load())}}
	})
	reg.CounterFunc("dmps_router_relayed_total", "Node messages relayed back down to clients.", func() []metrics.Sample {
		return []metrics.Sample{{Value: float64(r.relayed.Load())}}
	})
	RegisterMapMetrics(reg, r.pmap)
}

// RegisterMapMetrics exports a partition map's version and down-set.
// Shared by the router and by cluster nodes (both hold a map; each
// exports its own view, which is exactly what an operator comparing
// their disagreement wants).
func RegisterMapMetrics(reg *metrics.Registry, pmap *Map) {
	reg.GaugeFunc("dmps_cluster_map_version", "Partition map version (bumps on every down/up mark).", func() []metrics.Sample {
		return []metrics.Sample{{Value: float64(pmap.Version())}}
	})
	reg.GaugeFunc("dmps_cluster_map_epoch", "Partition map migration epoch (bumps on every coordinated recovery).", func() []metrics.Sample {
		return []metrics.Sample{{Value: float64(pmap.Epoch())}}
	})
	reg.GaugeFunc("dmps_cluster_node_down", "1 when the node is marked down in the partition map.", func() []metrics.Sample {
		out := make([]metrics.Sample, pmap.Len())
		for i := range out {
			v := 0.0
			if pmap.Down(i) {
				v = 1
			}
			out[i] = metrics.Sample{LabelKey: "node", LabelValue: fmt.Sprintf("n%d", i), Value: v}
		}
		return out
	})
}
