package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dmps/internal/group"
	"dmps/internal/protocol"
	"dmps/internal/trace"
	"dmps/internal/transport"
)

// tokenPrefix tags session-resume tokens with the home node they were
// minted on ("n3:<token>"), so a resume hello routes to the node that
// actually holds the token without the router keeping per-member state.
func tokenPrefix(idx int, token string) string {
	return "n" + strconv.Itoa(idx) + ":" + token
}

// parseTokenPrefix splits a router-tagged token back into home node
// index and the node's own token.
func parseTokenPrefix(token string) (idx int, raw string, ok bool) {
	if !strings.HasPrefix(token, "n") {
		return 0, "", false
	}
	head, rest, found := strings.Cut(token[1:], ":")
	if !found {
		return 0, "", false
	}
	n, err := strconv.Atoi(head)
	if err != nil || n < 0 {
		return 0, "", false
	}
	return n, rest, true
}

// RouterConfig configures a Router.
type RouterConfig struct {
	// Network provides the client-facing listener and the node dialer
	// (TCP or netsim).
	Network transport.Network
	// Addr is the router's listen address — the one address clients see.
	Addr string
	// Nodes lists the cluster's node addresses in ring order. Every node
	// must be configured with the same list (its own position via the
	// node's Self index).
	Nodes []string
	// RecoverInterval, when positive, runs a background prober that
	// re-dials down nodes on this cadence and returns any that answer
	// to service through Recover — the epoch-versioned live migration.
	// Zero leaves recovery to explicit Recover calls (tests, admin
	// tooling).
	RecoverInterval time.Duration
	// WireJSON, when set, strips the binary-framing ask from every
	// client hello before it reaches the home node, pinning the whole
	// cluster's client traffic to JSON — the same debugging escape
	// hatch as server.Config.WireJSON, applied at the routing tier.
	WireJSON bool
}

// Router is the thin routing tier in front of a node cluster: it
// terminates client connections, admits each session at the member's
// home node (the plain hello travels there, so the home node mints the
// member ID, the session token and the member event log), and proxies
// group-scoped traffic to each group's owning node over per-session
// upstream connections opened with TNodeHello. Replies and events relay
// back verbatim — the router re-encodes nothing on the hot path (the
// one exception is the welcome, whose token it tags with the home node
// index so a later resume routes straight back).
//
// The router is also the failure detector: when an upstream connection
// dies it marks the node down in the shared partition map, pushes a
// TNodeMoved naming the groups that were flowing through it, and routes
// their next traffic to the ring successor — where the replication
// plane already delivered the partition's takeover state. The client
// converges through its ordinary backfill path, like a reconnect.
type Router struct {
	cfg      RouterConfig
	pmap     *Map
	listener transport.Listener
	// plane records the routing tier's relay spans for sampled
	// operations — the first hop of every end-to-end trace.
	plane *trace.Plane

	mu       sync.Mutex
	sessions map[*routerSession]bool

	// routed counts client messages forwarded up to nodes, relayed the
	// node messages relayed back down — the routing tier's throughput
	// counters, exported by RegisterMetrics.
	routed  atomic.Int64
	relayed atomic.Int64

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// Sessions returns the number of live proxied client sessions.
func (r *Router) Sessions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Routed reports messages forwarded up to nodes and relayed back down
// since the router started.
func (r *Router) Routed() (up, down int64) { return r.routed.Load(), r.relayed.Load() }

// NewRouter creates a router and starts listening. Call Serve (or
// Start) to accept clients, Close to shut down.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Network == nil {
		return nil, errors.New("cluster: RouterConfig.Network is required")
	}
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: RouterConfig.Nodes is required")
	}
	l, err := cfg.Network.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: router: %w", err)
	}
	r := &Router{
		cfg:      cfg,
		pmap:     NewMap(cfg.Nodes),
		listener: l,
		plane:    trace.NewPlane("router@"+l.Addr(), trace.RouterStages, 0),
		sessions: make(map[*routerSession]bool),
		closed:   make(chan struct{}),
	}
	if cfg.RecoverInterval > 0 {
		r.wg.Add(1)
		go r.recoverLoop(cfg.RecoverInterval)
	}
	return r, nil
}

// recoverLoop is the router's self-healing prober: every interval it
// re-dials each down node and, for any that answer, runs the full
// Recover migration. Recover itself probes first, so a still-dead node
// costs one failed dial and changes nothing.
func (r *Router) recoverLoop(interval time.Duration) {
	defer r.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.closed:
			return
		case <-t.C:
			for i := 0; i < r.pmap.Len(); i++ {
				if r.pmap.Down(i) {
					_ = r.Recover(i)
				}
			}
		}
	}
}

// Addr returns the router's listen address.
func (r *Router) Addr() string { return r.listener.Addr() }

// Map exposes the shared partition map (tests mark nodes down/up
// through it; the router updates it when it detects failures).
func (r *Router) Map() *Map { return r.pmap }

// Serve accepts clients until Close. It returns nil after a clean Close.
func (r *Router) Serve() error {
	for {
		conn, err := r.listener.Accept()
		if err != nil {
			select {
			case <-r.closed:
				return nil
			default:
				return fmt.Errorf("cluster: router accept: %w", err)
			}
		}
		rs := &routerSession{r: r, client: conn, ups: make(map[int]*upstream)}
		r.mu.Lock()
		r.sessions[rs] = true
		r.mu.Unlock()
		r.wg.Add(1)
		go rs.run()
	}
}

// Start runs Serve on a goroutine.
func (r *Router) Start() { go func() { _ = r.Serve() }() }

// Close shuts the router down: the listener stops, every client and
// upstream connection closes, and the goroutines are waited for.
func (r *Router) Close() {
	r.closeOnce.Do(func() {
		close(r.closed)
		_ = r.listener.Close()
		r.mu.Lock()
		for rs := range r.sessions {
			rs.teardown()
		}
		r.mu.Unlock()
	})
	r.wg.Wait()
	r.plane.Close()
}

// TracePlane exposes the router's tracing plane (for tests and the
// metrics registration path).
func (r *Router) TracePlane() *trace.Plane { return r.plane }

// routerSession is one proxied client: the client connection, the
// member identity captured at admission, and the per-node upstream
// connections the session's traffic fans across.
type routerSession struct {
	r      *Router
	client transport.Conn
	cmu    sync.Mutex // serializes writes to the client connection

	mu       sync.Mutex
	identity protocol.NodeHelloBody
	homeIdx  int
	ups      map[int]*upstream
	done     bool
}

// upstream is one node-side connection of a session, with the groups
// currently routed through it (the TNodeMoved payload if it dies).
type upstream struct {
	idx    int
	conn   transport.Conn
	groups map[string]bool
}

// sendClient writes one message to the client connection.
func (rs *routerSession) sendClient(wire []byte) error {
	rs.cmu.Lock()
	defer rs.cmu.Unlock()
	return rs.client.Send(wire)
}

// run drives one proxied session: admission at the home node, then the
// relay loop.
func (rs *routerSession) run() {
	defer rs.r.wg.Done()
	defer rs.retire()
	if err := rs.admit(); err != nil {
		return
	}
	for {
		wire, err := rs.client.Recv()
		if err != nil {
			return
		}
		msg, err := protocol.DecodeAny(wire)
		if err != nil {
			continue
		}
		// The relay span costs nothing extra on the hot path: the frame
		// was already decoded above, and the clock is read only for
		// sampled operations.
		var t0 time.Time
		sampled := msg.Sampled()
		if sampled {
			t0 = time.Now()
		}
		rs.route(msg, wire)
		if sampled {
			rs.r.plane.Span(msg.TraceID, msg.TraceParent, trace.StageRelay, t0)
		}
		if msg.Type == protocol.TBye {
			return
		}
	}
}

// admit reads the client's hello, routes it to the member's home node —
// chosen by the same hash that partitions groups, over the sanitized
// name (fresh session) or the token's node tag (resume) — and relays
// the welcome back with the token tagged for the next resume.
func (rs *routerSession) admit() error {
	wire, err := rs.client.Recv()
	if err != nil {
		return err
	}
	msg, err := protocol.Decode(wire)
	if err != nil || msg.Type != protocol.THello {
		return fmt.Errorf("cluster: router: first message %v (%w)", msg.Type, transport.ErrClosed)
	}
	var hello protocol.HelloBody
	if err := msg.Into(&hello); err != nil {
		return err
	}
	if rs.r.cfg.WireJSON {
		hello.WireVersion = 0
	}
	homeIdx := -1
	if hello.Token != "" {
		idx, raw, ok := parseTokenPrefix(hello.Token)
		if !ok || idx >= rs.r.pmap.Len() {
			rs.reject(msg.Seq, "session_expired", "unrecognized session token")
			return transport.ErrClosed
		}
		homeIdx = idx
		hello.Token = raw
	} else {
		// Always the PRIMARY home, ignoring the down-set: member state
		// (directory, tokens, member logs) lives only there, and a
		// successor would just bounce the hello with a redirect. The
		// dial doubles as the liveness probe — a recovered home serves
		// new members again without any un-mark step, while group
		// partitions stay failed over (the successor holds their
		// adopted state; routing them back to a blank primary would
		// reset them).
		homeIdx = rs.r.pmap.Primary(HomeKey(group.SanitizeName(hello.Name)))
	}
	conn, err := rs.r.cfg.Network.Dial(rs.r.pmap.Addr(homeIdx))
	if err != nil {
		rs.r.pmap.MarkDown(homeIdx)
		if hello.Token == "" {
			rs.reject(msg.Seq, "node_down", "home node unreachable")
			return err
		}
		// Resume failover: the token's minting node is gone, but its ring
		// successors hold the member's replicated home state (directory
		// row, token, member log). Route the resume to the first reachable
		// successor — it verifies the home really is dead and adopts the
		// member — and tag the welcome token with the serving node so the
		// NEXT resume goes straight there.
		for _, j := range rs.r.pmap.Successors(homeIdx, rs.r.pmap.Len()-1) {
			c, derr := rs.r.cfg.Network.Dial(rs.r.pmap.Addr(j))
			if derr != nil {
				rs.r.pmap.MarkDown(j)
				continue
			}
			conn, homeIdx, err = c, j, nil
			break
		}
		if err != nil {
			rs.reject(msg.Seq, "node_down", "home node unreachable")
			return err
		}
	}
	fwd := protocol.MustNew(protocol.THello, hello)
	fwd.Seq = msg.Seq
	fwdWire, err := protocol.Encode(fwd)
	if err != nil {
		_ = conn.Close()
		return err
	}
	if err := conn.Send(fwdWire); err != nil {
		_ = conn.Close()
		return err
	}
	replyWire, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return err
	}
	reply, err := protocol.Decode(replyWire)
	if err != nil {
		_ = conn.Close()
		return err
	}
	if reply.Type != protocol.TWelcome {
		// A typed rejection (session_expired and friends) passes through
		// verbatim: the client's handshake knows how to read it.
		_ = rs.sendClient(replyWire)
		_ = conn.Close()
		return transport.ErrClosed
	}
	var welcome protocol.WelcomeBody
	if err := reply.Into(&welcome); err != nil {
		_ = conn.Close()
		return err
	}
	rs.mu.Lock()
	rs.homeIdx = homeIdx
	rs.identity = protocol.NodeHelloBody{
		MemberID: welcome.MemberID,
		Name:     hello.Name,
		Role:     hello.Role,
		Priority: hello.Priority,
		Classes:  hello.Classes,
		// The home node's welcome fixes the session's wire version; the
		// identity carries it so every later upstream speaks the same
		// format to this client without renegotiating.
		WireVersion: welcome.WireVersion,
	}
	up := &upstream{idx: homeIdx, conn: conn, groups: make(map[string]bool)}
	rs.ups[homeIdx] = up
	rs.mu.Unlock()
	if welcome.Token != "" {
		welcome.Token = tokenPrefix(homeIdx, welcome.Token)
	}
	tagged := protocol.MustNew(protocol.TWelcome, welcome)
	tagged.Seq = reply.Seq
	taggedWire, err := protocol.Encode(tagged)
	if err != nil {
		return err
	}
	if err := rs.sendClient(taggedWire); err != nil {
		return err
	}
	rs.r.wg.Add(1)
	go rs.relay(up)
	return nil
}

// reject answers the client handshake with a typed error and gives up.
func (rs *routerSession) reject(seq int64, code, detail string) {
	msg := protocol.MustNew(protocol.TErr, protocol.ErrBody{Code: code, Detail: detail})
	msg.Seq = seq
	if wire, err := protocol.Encode(msg); err == nil {
		_ = rs.sendClient(wire)
	}
}

// route forwards one client message to the owning node: group-scoped
// traffic to the group's owner, probe answers and subscription changes
// to every upstream (each node tracks its own session liveness and
// filter mask), everything else to the member's home node.
func (rs *routerSession) route(msg protocol.Message, wire []byte) {
	rs.r.routed.Add(1)
	switch msg.Type {
	case protocol.TStatusReport, protocol.TBye:
		rs.eachUpstream(func(up *upstream) { _ = up.conn.Send(wire) })
		return
	case protocol.TSubscribe:
		var body protocol.SubscribeBody
		if len(msg.Body) > 0 && msg.Into(&body) == nil {
			rs.mu.Lock()
			rs.identity.Classes = body.Classes
			rs.mu.Unlock()
		}
		rs.eachUpstream(func(up *upstream) { _ = up.conn.Send(wire) })
		return
	}
	gid := protocol.RequestGroup(msg)
	for attempt := 0; attempt < rs.r.pmap.Len(); attempt++ {
		idx := rs.homeIdxLocked()
		if gid != "" {
			idx, _ = rs.r.pmap.Owner(gid)
		}
		up, err := rs.ensureUpstream(idx)
		if err != nil {
			if rs.closing() {
				// The session (or router) is tearing down: the failure is
				// ours, not the node's — never poison the shared map.
				return
			}
			rs.r.pmap.MarkDown(idx)
			if gid == "" {
				return // the home node is gone; the session cannot continue
			}
			continue
		}
		if gid != "" {
			rs.mu.Lock()
			up.groups[gid] = true
			rs.mu.Unlock()
		}
		if err := up.conn.Send(wire); err != nil {
			rs.upstreamDown(up)
			continue
		}
		return
	}
}

func (rs *routerSession) homeIdxLocked() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.homeIdx
}

// closing reports whether the session or its router is tearing down.
func (rs *routerSession) closing() bool {
	select {
	case <-rs.r.closed:
		return true
	default:
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.done
}

// eachUpstream runs fn over a snapshot of the session's live upstreams.
func (rs *routerSession) eachUpstream(fn func(*upstream)) {
	rs.mu.Lock()
	ups := make([]*upstream, 0, len(rs.ups))
	for _, up := range rs.ups {
		ups = append(ups, up)
	}
	rs.mu.Unlock()
	for _, up := range ups {
		fn(up)
	}
}

// ensureUpstream returns the session's connection to node idx, opening
// it — dial plus a TNodeHello binding the member identity — on first
// use.
func (rs *routerSession) ensureUpstream(idx int) (*upstream, error) {
	rs.mu.Lock()
	if up, ok := rs.ups[idx]; ok {
		rs.mu.Unlock()
		return up, nil
	}
	identity := rs.identity
	rs.mu.Unlock()
	conn, err := rs.r.cfg.Network.Dial(rs.r.pmap.Addr(idx))
	if err != nil {
		return nil, err
	}
	hello := protocol.MustNew(protocol.TNodeHello, identity)
	helloWire, err := protocol.Encode(hello)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	if err := conn.Send(helloWire); err != nil {
		_ = conn.Close()
		return nil, err
	}
	replyWire, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	reply, err := protocol.Decode(replyWire)
	if err != nil || reply.Type != protocol.TWelcome {
		_ = conn.Close()
		return nil, fmt.Errorf("cluster: node %d refused node hello (%v)", idx, reply.Type)
	}
	up := &upstream{idx: idx, conn: conn, groups: make(map[string]bool)}
	rs.mu.Lock()
	if rs.done {
		rs.mu.Unlock()
		_ = conn.Close()
		return nil, transport.ErrClosed
	}
	if prior, ok := rs.ups[idx]; ok {
		// A concurrent open won; keep theirs.
		rs.mu.Unlock()
		_ = conn.Close()
		return prior, nil
	}
	rs.ups[idx] = up
	rs.mu.Unlock()
	rs.r.wg.Add(1)
	go rs.relay(up)
	return up, nil
}

// relay pumps one upstream's traffic back to the client verbatim. When
// the upstream dies (and the session does not), the node is marked down
// and the client is told which groups moved.
func (rs *routerSession) relay(up *upstream) {
	defer rs.r.wg.Done()
	for {
		wire, err := up.conn.Recv()
		if err != nil {
			rs.upstreamDown(up)
			return
		}
		if err := rs.sendClient(wire); err != nil {
			return
		}
		rs.r.relayed.Add(1)
	}
}

// upstreamDown handles a dead node-side connection. One session's
// upstream dying is not node death — the node may have closed just
// this connection (a session reaped for silence, displaced by a
// resume, or torn down by the slow-consumer policy) — so the node is
// probed with a fresh dial first and only an unreachable node is
// marked down in the shared map. Either way the client receives a
// TNodeMoved naming the groups that were flowing through the dead
// upstream — its cue to backfill each one, which re-opens an upstream
// to wherever the map now points (the same node when it was alive, the
// ring successor when it was not).
func (rs *routerSession) upstreamDown(up *upstream) {
	_ = up.conn.Close()
	rs.mu.Lock()
	if rs.done || rs.ups[up.idx] != up {
		rs.mu.Unlock()
		return
	}
	delete(rs.ups, up.idx)
	home := up.idx == rs.homeIdx
	groups := make([]string, 0, len(up.groups))
	for g := range up.groups {
		groups = append(groups, g)
	}
	rs.mu.Unlock()
	select {
	case <-rs.r.closed:
		return
	default:
	}
	alive := false
	if probe, err := rs.r.cfg.Network.Dial(rs.r.pmap.Addr(up.idx)); err == nil {
		_ = probe.Close()
		alive = true
	}
	if !alive {
		rs.r.pmap.MarkDown(up.idx)
	}
	if home {
		// The home node carried the session's identity and token: there
		// is nothing to transparently move it to. Severing the client
		// connection hands the decision to its reconnect logic.
		rs.teardown()
		return
	}
	moved := protocol.NodeMovedBody{Groups: groups, Epoch: rs.r.pmap.Epoch()}
	if !alive {
		// Name the dead node's lights shard so clients can flip its
		// members red: their home stopped reporting, and a frozen last
		// value would read as a healthy connection forever.
		moved.Origin = fmt.Sprintf("n%d", up.idx)
	}
	note := protocol.MustNew(protocol.TNodeMoved, moved)
	if wire, err := protocol.Encode(note); err == nil {
		_ = rs.sendClient(wire)
	}
}

// Recover returns a recovered node (restarted, replaced, or newly
// reachable again) to service through a coordinated, epoch-versioned
// live migration — the safe form of what a bare Map.MarkUp used to
// split-brain: the state the node's partitions accumulated elsewhere
// while it was down (adopted live state and never-adopted standby
// replicas alike) is shipped back and installed BEFORE the partition
// map points traffic at it.
//
// The sequence: probe the node (unreachable → error, nothing changes);
// bump the map epoch; ask every other up node to migrate what it holds
// for the recovering node (ForwardMigrate → the node ships epoch-
// stamped takeover packages and answers ForwardMigrated once its
// receiver confirmed the installs); only then MarkUp, and push one
// TNodeMoved naming the migrated groups and the new epoch to every
// proxied client — their cue to backfill, exactly like a failover.
// A peer that cannot be reached keeps its adopted state and keeps
// serving it (the map still routes those partitions to it until a
// later Recover completes); epoch staleness makes retries converge.
func (r *Router) Recover(idx int) error {
	if idx < 0 || idx >= r.pmap.Len() {
		return fmt.Errorf("cluster: recover: node %d out of range", idx)
	}
	addr := r.pmap.Addr(idx)
	probe, err := r.cfg.Network.Dial(addr)
	if err != nil {
		return fmt.Errorf("cluster: recover: node %d unreachable: %w", idx, err)
	}
	_ = probe.Close()
	epoch := r.pmap.NextEpoch()
	var moved []string
	for j := 0; j < r.pmap.Len(); j++ {
		if j == idx || r.pmap.Down(j) {
			continue
		}
		groups, err := r.askMigrate(j, idx, addr, epoch)
		if err != nil {
			// This peer keeps its claim; a later Recover retries under a
			// newer epoch and the staleness rule discards the older ship.
			continue
		}
		moved = append(moved, groups...)
	}
	r.pmap.MarkUp(idx)
	if wire, err := protocol.Encode(protocol.MustNew(protocol.TNodeMoved, protocol.NodeMovedBody{
		Groups: moved, Epoch: epoch,
	})); err == nil {
		r.mu.Lock()
		sessions := make([]*routerSession, 0, len(r.sessions))
		for rs := range r.sessions {
			sessions = append(sessions, rs)
		}
		r.mu.Unlock()
		for _, rs := range sessions {
			_ = rs.sendClient(wire)
		}
	}
	return nil
}

// askMigrate asks node j to migrate everything it holds for the
// recovering node, blocking until its ForwardMigrated confirmation. It
// returns the group/member-log keys the node reported shipped.
func (r *Router) askMigrate(j, node int, addr string, epoch int64) ([]string, error) {
	conn, err := r.cfg.Network.Dial(r.pmap.Addr(j))
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	wire := WrapForward(protocol.ForwardBody{
		Kind: protocol.ForwardMigrate, Node: node, Addr: addr, Epoch: epoch,
	})
	if wire == nil {
		return nil, errors.New("cluster: recover: encode migrate")
	}
	if err := conn.Send(wire); err != nil {
		return nil, err
	}
	for {
		reply, err := conn.Recv()
		if err != nil {
			return nil, err
		}
		msg, err := protocol.Decode(reply)
		if err != nil || msg.Type != protocol.TForward {
			continue
		}
		var body protocol.ForwardBody
		if msg.Into(&body) == nil && body.Kind == protocol.ForwardMigrated {
			return body.Groups, nil
		}
	}
}

// teardown severs the client and every upstream connection.
func (rs *routerSession) teardown() {
	rs.mu.Lock()
	rs.done = true
	ups := make([]*upstream, 0, len(rs.ups))
	for _, up := range rs.ups {
		ups = append(ups, up)
	}
	rs.ups = make(map[int]*upstream)
	rs.mu.Unlock()
	_ = rs.client.Close()
	for _, up := range ups {
		_ = up.conn.Close()
	}
}

// retire removes the session from the router's table on exit.
func (rs *routerSession) retire() {
	rs.teardown()
	rs.r.mu.Lock()
	delete(rs.r.sessions, rs)
	rs.r.mu.Unlock()
}
