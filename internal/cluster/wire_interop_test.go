package cluster_test

import (
	"fmt"
	"testing"

	"dmps/internal/client"
	"dmps/internal/cluster"
	"dmps/internal/floor"
	"dmps/internal/resource"
	"dmps/internal/server"
	"dmps/internal/transport"
)

// TestMixedWireVersionTCPE2E runs a JSON-framed client and a
// binary-framed client in the SAME group over a real TCP cluster
// (1 router + 2 nodes) and requires full convergence: floor grants
// observed across the version boundary, board backfill for a late
// joiner of each framing, and reconnect-resume for both — the
// mixed-fleet upgrade scenario, where old clients must keep working
// verbatim while new ones speak the binary wire.
func TestMixedWireVersionTCPE2E(t *testing.T) {
	addrs := freePorts(t, 3)
	nodeAddrs, routerAddr := addrs[:2], addrs[2]

	nodes := make([]*server.Server, 2)
	for i := range nodes {
		mon, err := resource.New(resource.MinBound, resource.DefaultThresholds())
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Network: transport.TCP{},
			Addr:    nodeAddrs[i],
			Monitor: mon,
			Cluster: &server.ClusterConfig{Nodes: nodeAddrs, Self: i},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		nodes[i] = srv
		t.Cleanup(srv.Close)
	}
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Network: transport.TCP{}, Addr: routerAddr, Nodes: nodeAddrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	router.Start()
	t.Cleanup(router.Close)

	dial := func(name string, wireJSON bool) *client.Client {
		t.Helper()
		c, err := client.Dial(client.Config{
			Network: transport.TCP{}, Addr: routerAddr,
			Name: name, Role: "participant", Priority: 5,
			WireJSON: wireJSON,
		})
		if err != nil {
			t.Fatalf("dial %s: %v", name, err)
		}
		t.Cleanup(c.Close)
		return c
	}

	// One member of each framing, homed on different nodes so the
	// version negotiation crosses the routing tier both ways; the
	// group owned by node 1 exercises the forwarded path too.
	legacy := dial(pickKeyFor(t, nodeAddrs, "wire-json", 0), true)
	modern := dial(pickKeyFor(t, nodeAddrs, "wire-bin", 1), false)
	if v := legacy.WireVersion(); v != 0 {
		t.Fatalf("JSON client negotiated wire version %d, want 0", v)
	}
	// Version 2 is the trace-capable binary framing — the current ask.
	if v := modern.WireVersion(); v != 2 {
		t.Fatalf("binary client negotiated wire version %d, want 2", v)
	}
	group := pickKeyFor(t, nodeAddrs, "wire-class", 1)

	for _, c := range []*client.Client{legacy, modern} {
		if err := c.Join(group); err != nil {
			t.Fatal(err)
		}
	}

	// Grant on the binary side, observed on the JSON side.
	dec, err := modern.RequestFloor(group, floor.EqualControl, "")
	if err != nil || !dec.Granted {
		t.Fatalf("binary-side grant: dec=%+v err=%v", dec, err)
	}
	waitFor(t, "JSON client sees the binary holder", func() bool {
		return legacy.Holder(group) == modern.MemberID()
	})
	if err := modern.Chat(group, "binary line"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "chat crosses binary→JSON", func() bool {
		return legacy.Board(group).Seq() == 1
	})

	// Hand the floor across the version boundary and chat back.
	if err := modern.ReleaseFloor(group); err != nil {
		t.Fatal(err)
	}
	dec, err = legacy.RequestFloor(group, floor.EqualControl, "")
	if err != nil || !dec.Granted {
		t.Fatalf("JSON-side grant: dec=%+v err=%v", dec, err)
	}
	waitFor(t, "binary client sees the JSON holder", func() bool {
		return modern.Holder(group) == legacy.MemberID()
	})
	if err := legacy.Chat(group, "json line"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "chat crosses JSON→binary", func() bool {
		return modern.Board(group).Seq() == 2
	})

	// Late joiners of each framing must backfill the same history.
	for i, wireJSON := range []bool{true, false} {
		late := dial(pickKeyFor(t, nodeAddrs, fmt.Sprintf("wire-late%d", i), 0), wireJSON)
		if err := late.Join(group); err != nil {
			t.Fatal(err)
		}
		waitFor(t, fmt.Sprintf("late joiner %d backfills the board", i), func() bool {
			return late.Board(group).Seq() == 2
		})
	}

	// Reconnect-resume on both sides of the version boundary: each
	// client drops, misses a line chatted by the floor holder on the
	// other side, and must converge through the resume backfill under
	// its own framing. Equal control lets only the holder speak, so
	// the floor crosses the boundary before each drop.
	if err := legacy.ReleaseFloor(group); err != nil {
		t.Fatal(err)
	}
	if dec, err := modern.RequestFloor(group, floor.EqualControl, ""); err != nil || !dec.Granted {
		t.Fatalf("re-grant to binary side: dec=%+v err=%v", dec, err)
	}
	legacy.Drop()
	if err := modern.Chat(group, "missed by the JSON client"); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Reconnect(); err != nil {
		t.Fatalf("JSON reconnect: %v", err)
	}
	waitFor(t, "JSON client resumes and converges", func() bool {
		return legacy.Board(group).Seq() == 3
	})

	if err := modern.ReleaseFloor(group); err != nil {
		t.Fatal(err)
	}
	if dec, err := legacy.RequestFloor(group, floor.EqualControl, ""); err != nil || !dec.Granted {
		t.Fatalf("re-grant to JSON side: dec=%+v err=%v", dec, err)
	}
	modern.Drop()
	if err := legacy.Chat(group, "missed by the binary client"); err != nil {
		t.Fatal(err)
	}
	if err := modern.Reconnect(); err != nil {
		t.Fatalf("binary reconnect: %v", err)
	}
	waitFor(t, "binary client resumes and converges", func() bool {
		return modern.Board(group).Seq() == 4
	})
	if v := modern.WireVersion(); v != 2 {
		t.Fatalf("binary client lost its framing across resume: version %d", v)
	}
	if v := legacy.WireVersion(); v != 0 {
		t.Fatalf("JSON client gained a framing it never asked for: version %d", v)
	}
}
