package cluster

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"dmps/internal/protocol"
	"dmps/internal/transport"
)

// peerQueueCap bounds each peer link's outbound queue. Forwards are
// best-effort by design — a lost replica narrows takeover reach, a lost
// invitation is re-derived from the registry on the next member-log
// backfill — so overflow drops (counted) rather than blocking the
// group's append path on a slow peer.
const peerQueueCap = 1024

// Dial-retry and circuit-breaker tuning. A fresh link retries its dial
// with exponential backoff before giving up (queued forwards wait in
// the link's buffer, so a peer restarting under the sender loses
// nothing); only when every attempt fails does the peer's circuit open,
// and sends during the cooloff fast-fail as counted drops instead of
// burning a dial each. The first Send after the cooloff is the
// half-open probe: it re-creates the link and the retry ladder runs
// again.
const (
	dialAttempts    = 6
	dialBackoffBase = 5 * time.Millisecond
	dialBackoffMax  = 160 * time.Millisecond
	circuitCooloff  = time.Second
)

// Pool is the pooled inter-node transport: one connection per peer
// node, dialed lazily, drained by a dedicated writer goroutine per
// peer. Sends never block the caller: a full queue or a dead peer drops
// the forward (counted in Drops), and the next send after a connection
// failure re-dials. Pool is safe for concurrent use.
type Pool struct {
	network transport.Network
	mu      sync.Mutex
	peers   map[string]*peerLink
	// stats persists per-peer send/drop counters across link
	// retirements: a link that dies and re-dials keeps accumulating
	// into the same addr's counters, so the metrics endpoint reads a
	// peer's whole history, not its current connection's.
	stats  map[string]*peerStat
	closed bool
	drops  atomic.Int64
	sent   atomic.Int64
	wg     sync.WaitGroup
}

// PeerStats is one peer's cumulative forward counters.
type PeerStats struct {
	// Sent counts forwards queued to this peer.
	Sent int64
	// Drops counts forwards dropped for this peer (full queue, dead
	// link backlog, dial failure, open circuit).
	Drops int64
	// Redials counts dial retries for this peer — every dial attempt
	// beyond a link's first. A non-zero Redials with a quiet CircuitOpen
	// reads as "flapping but reachable"; a climbing Redials is the
	// backoff ladder running.
	Redials int64
	// CircuitOpen reports whether the peer's circuit is currently open:
	// every dial attempt of the last link failed, and sends fast-fail
	// until the cooloff expires (after which the next send half-opens
	// the circuit with a fresh dial).
	CircuitOpen bool
}

// peerStat is the live, atomically updated form of PeerStats.
type peerStat struct {
	sent    atomic.Int64
	drops   atomic.Int64
	redials atomic.Int64
	// circuitUntil is the unix-nano deadline of an open circuit (0 =
	// closed); sends before it fast-fail without a link.
	circuitUntil atomic.Int64
}

type peerLink struct {
	addr  string
	queue chan []byte
	down  chan struct{}
	once  sync.Once
	stat  *peerStat
}

// NewPool returns a pool that dials peers over the given network.
func NewPool(network transport.Network) *Pool {
	return &Pool{network: network, peers: make(map[string]*peerLink), stats: make(map[string]*peerStat)}
}

// WrapForward encodes a TForward envelope around the body with plain
// json.Marshal, deliberately outside protocol.Encode: replication rides
// the broadcast hot path (one forward per logged append), and the
// encode-once gate counts protocol.Encode calls per broadcast — the
// per-RECIPIENT cost. The forward is per-append, reuses the already-
// encoded event bytes verbatim (ForwardBody.Msg is raw JSON), and must
// not read as fan-out amplification.
func WrapForward(body protocol.ForwardBody) []byte {
	return WrapForwardTrace(body, 0, 0)
}

// WrapForwardTrace is WrapForward with a trace context stamped on the
// envelope: the receiving peer records its replica-apply span under the
// originating operation's trace ID. Forward envelopes are always JSON
// (peer links never negotiate framing), so the fields ride freely and a
// zero tid produces bytes identical to the untraced form.
func WrapForwardTrace(body protocol.ForwardBody, tid uint64, flags uint8) []byte {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil
	}
	env := protocol.Message{Type: protocol.TForward, Body: raw}
	if tid != 0 {
		env.TraceID, env.TraceParent, env.TraceFlags = tid, tid, flags
	}
	wire, err := json.Marshal(env)
	if err != nil {
		return nil
	}
	return wire
}

// Send queues pre-encoded wire bytes for the peer at addr, dialing the
// link on first use. It reports false when the forward was dropped (a
// nil wire, a closed pool, or a full queue).
func (p *Pool) Send(addr string, wire []byte) bool {
	if wire == nil {
		return false
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	link, ok := p.peers[addr]
	if !ok {
		st := p.stats[addr]
		if st == nil {
			st = &peerStat{}
			p.stats[addr] = st
		}
		if until := st.circuitUntil.Load(); until > time.Now().UnixNano() {
			// Circuit open: the last link exhausted its dial ladder.
			// Fast-fail instead of re-dialing on every send.
			p.mu.Unlock()
			p.drops.Add(1)
			st.drops.Add(1)
			return false
		}
		st.circuitUntil.Store(0) // half-open: this link is the probe
		link = &peerLink{addr: addr, queue: make(chan []byte, peerQueueCap), down: make(chan struct{}), stat: st}
		p.peers[addr] = link
		p.wg.Add(1)
		go p.drain(link)
	}
	p.mu.Unlock()
	select {
	case link.queue <- wire:
		p.sent.Add(1)
		link.stat.sent.Add(1)
		return true
	default:
		p.drops.Add(1)
		link.stat.drops.Add(1)
		return false
	}
}

// drain is the per-peer writer: it dials (with the bounded backoff
// ladder) and pushes queued forwards until the connection fails or the
// pool closes. While the ladder runs, queued forwards wait in the
// link's buffer — a peer restarting under the sender loses nothing.
// When every dial attempt fails the peer's circuit opens and the link
// is retired (backlog counted as drops); a mid-stream send failure just
// retires the link, and the next Send re-dials.
func (p *Pool) drain(link *peerLink) {
	defer p.wg.Done()
	conn := p.dialWithBackoff(link)
	if conn == nil {
		link.stat.circuitUntil.Store(time.Now().Add(circuitCooloff).UnixNano())
		p.retire(link)
		return
	}
	defer conn.Close()
	for {
		select {
		case wire := <-link.queue:
			if err := conn.Send(wire); err != nil {
				p.retire(link)
				return
			}
		case <-link.down:
			return
		}
	}
}

// dialWithBackoff runs the link's dial ladder: dialAttempts tries with
// exponential backoff between them, counting every retry into the
// peer's Redials. It returns nil when every attempt failed or the link
// went down while waiting.
func (p *Pool) dialWithBackoff(link *peerLink) transport.Conn {
	backoff := dialBackoffBase
	for attempt := 0; attempt < dialAttempts; attempt++ {
		if attempt > 0 {
			link.stat.redials.Add(1)
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-link.down:
				timer.Stop()
				return nil
			}
			if backoff *= 2; backoff > dialBackoffMax {
				backoff = dialBackoffMax
			}
		}
		conn, err := p.network.Dial(link.addr)
		if err == nil {
			return conn
		}
	}
	return nil
}

// retire removes a failed link so future sends re-dial, and counts its
// queued backlog as drops.
func (p *Pool) retire(link *peerLink) {
	link.once.Do(func() { close(link.down) })
	p.mu.Lock()
	if p.peers[link.addr] == link {
		delete(p.peers, link.addr)
	}
	p.mu.Unlock()
	for {
		select {
		case <-link.queue:
			p.drops.Add(1)
			link.stat.drops.Add(1)
		default:
			return
		}
	}
}

// Stats reports forwards sent and dropped since the pool started.
func (p *Pool) Stats() (sent, drops int64) { return p.sent.Load(), p.drops.Load() }

// PeerStats snapshots the per-peer forward counters, keyed by peer
// address. Counters persist across link retirement and re-dial, so a
// flapping peer's history accumulates rather than resetting.
func (p *Pool) PeerStats() map[string]PeerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]PeerStats, len(p.stats))
	now := time.Now().UnixNano()
	for addr, st := range p.stats {
		out[addr] = PeerStats{
			Sent:        st.sent.Load(),
			Drops:       st.drops.Load(),
			Redials:     st.redials.Load(),
			CircuitOpen: st.circuitUntil.Load() > now,
		}
	}
	return out
}

// Close tears every peer link down and waits for the writers.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	links := make([]*peerLink, 0, len(p.peers))
	for _, l := range p.peers {
		links = append(links, l)
	}
	p.peers = make(map[string]*peerLink)
	p.mu.Unlock()
	for _, l := range links {
		l.once.Do(func() { close(l.down) })
	}
	p.wg.Wait()
}
