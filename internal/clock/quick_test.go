package clock

import (
	"math/rand"
	"testing"
	"time"
)

// TestQuickEstimatorErrorWithinHalfRTT: for any combination of true
// offset and asymmetric network delays, the estimator's offset error is
// bounded by half the round-trip time of its best sample — the classic
// Cristian bound.
func TestQuickEstimatorErrorWithinHalfRTT(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 500; iter++ {
		trueOffset := time.Duration(rng.Intn(2000)-1000) * time.Millisecond
		base := NewSim(origin)
		local := NewDrift(base, -trueOffset, 0) // local = global − offset
		est := NewEstimator(local, 8)
		// Simulated exchanges with asymmetric up/down delays.
		for s := 0; s < 1+rng.Intn(5); s++ {
			up := time.Duration(rng.Intn(50)) * time.Millisecond
			down := time.Duration(rng.Intn(50)) * time.Millisecond
			sent := local.Now()
			base.Advance(up)
			master := base.Now()
			base.Advance(down)
			recv := local.Now()
			est.AddSample(Sample{SentLocal: sent, MasterTime: master, RecvLocal: recv})
		}
		got, err := est.Offset()
		if err != nil {
			t.Fatal(err)
		}
		bound, err := est.ErrorBound()
		if err != nil {
			t.Fatal(err)
		}
		diff := got - trueOffset
		if diff < 0 {
			diff = -diff
		}
		if diff > bound {
			t.Fatalf("iter %d: offset error %v exceeds half-RTT bound %v", iter, diff, bound)
		}
	}
}

// TestQuickDisciplineNeverNegative: the wait returned by Discipline is
// never negative and is exactly the schedule gap when in the future.
func TestQuickDisciplineNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 1000; iter++ {
		gap := time.Duration(rng.Intn(20000)-10000) * time.Millisecond
		now := origin.Add(time.Duration(rng.Intn(10000)) * time.Millisecond)
		sched := now.Add(gap)
		wait := Discipline(now, sched)
		if wait < 0 {
			t.Fatalf("negative wait %v", wait)
		}
		if gap > 0 && wait != gap {
			t.Fatalf("wait = %v, want %v", wait, gap)
		}
		if gap <= 0 && wait != 0 {
			t.Fatalf("overdue wait = %v, want 0", wait)
		}
	}
}

// TestQuickDriftRoundTrip: converting a duration through a drifted clock
// and back is identity to within rounding.
func TestQuickDriftRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 500; iter++ {
		rate := float64(rng.Intn(2000)-1000) * 1e-6
		base := NewSim(origin)
		d := NewDrift(base, 0, rate)
		advance := time.Duration(1+rng.Intn(3600)) * time.Second
		base.Advance(advance)
		elapsedDrifted := d.Now().Sub(origin)
		// Invert: drifted elapsed / (1+rate) should recover base elapsed.
		back := time.Duration(float64(elapsedDrifted) / (1 + rate))
		diff := back - advance
		if diff < 0 {
			diff = -diff
		}
		if diff > time.Microsecond {
			t.Fatalf("iter %d: round trip off by %v", iter, diff)
		}
	}
}
