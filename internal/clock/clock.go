// Package clock implements the DMPS global clock: an authoritative master
// time source on the server, drifting local clocks on clients, a
// Cristian-style synchronization estimator, and the paper's firing
// admission rule ("if the clock in the client side is faster than the
// global clock, the current transition will not fire until the global
// clock arrives; if the local clock is slower, the transition fires
// without delay").
//
// The package also provides the Clock abstraction (real and simulated)
// used throughout the repository so that time-dependent behaviour is
// deterministic under test.
package clock

import (
	"sync"
	"time"
)

// Clock abstracts the passage of time. Production code uses Real; tests
// and simulations use Sim.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
}

// Real is the wall-clock implementation of Clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

var _ Clock = Real{}

// Sim is a manually-advanced simulated clock. Goroutines blocked in After
// or Sleep are released when Advance moves the clock past their deadline.
// The zero value is not usable; construct with NewSim.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*simWaiter
}

type simWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewSim returns a simulated clock starting at origin.
func NewSim(origin time.Time) *Sim {
	return &Sim{now: origin}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// After implements Clock. The returned channel has capacity 1 so Advance
// never blocks delivering.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan time.Time, 1)
	deadline := s.now.Add(d)
	if d <= 0 {
		ch <- s.now
		return ch
	}
	s.waiters = append(s.waiters, &simWaiter{deadline: deadline, ch: ch})
	return ch
}

// Sleep implements Clock; it blocks until Advance passes the deadline.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-s.After(d)
}

// Advance moves simulated time forward by d, waking every waiter whose
// deadline has been reached.
func (s *Sim) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	s.mu.Lock()
	s.now = s.now.Add(d)
	now := s.now
	remaining := s.waiters[:0]
	var due []*simWaiter
	for _, w := range s.waiters {
		if !w.deadline.After(now) {
			due = append(due, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	s.waiters = remaining
	s.mu.Unlock()
	for _, w := range due {
		w.ch <- now
	}
}

// Waiters reports how many goroutines are currently blocked on the clock;
// tests use it to synchronize before calling Advance.
func (s *Sim) Waiters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

var _ Clock = (*Sim)(nil)

// Drift wraps a base Clock and skews it: the drifted clock reads
// base.Now() scaled by (1+rate) around its creation instant, plus a fixed
// offset. It models a client machine whose oscillator runs fast (rate > 0)
// or slow (rate < 0) relative to the reference, as in the paper's
// "client clock faster/slower than global clock" scenarios.
type Drift struct {
	base   Clock
	start  time.Time
	offset time.Duration
	rate   float64
}

// NewDrift returns a drifting view of base with the given fixed offset and
// fractional rate (e.g. 50e-6 is +50 ppm).
func NewDrift(base Clock, offset time.Duration, rate float64) *Drift {
	return &Drift{base: base, start: base.Now(), offset: offset, rate: rate}
}

// Now implements Clock.
func (d *Drift) Now() time.Time {
	elapsed := d.base.Now().Sub(d.start)
	skewed := time.Duration(float64(elapsed) * (1 + d.rate))
	return d.start.Add(skewed).Add(d.offset)
}

// After implements Clock. The duration is interpreted in drifted time and
// converted to base time.
func (d *Drift) After(dur time.Duration) <-chan time.Time {
	baseDur := time.Duration(float64(dur) / (1 + d.rate))
	return d.base.After(baseDur)
}

// Sleep implements Clock.
func (d *Drift) Sleep(dur time.Duration) {
	baseDur := time.Duration(float64(dur) / (1 + d.rate))
	d.base.Sleep(baseDur)
}

var _ Clock = (*Drift)(nil)
