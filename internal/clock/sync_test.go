package clock

import (
	"errors"
	"testing"
	"time"
)

func TestSampleOffsetSymmetric(t *testing.T) {
	// Client 10s behind master, 100ms RTT split evenly.
	sent := origin
	master := origin.Add(10*time.Second + 50*time.Millisecond)
	recv := origin.Add(100 * time.Millisecond)
	s := Sample{SentLocal: sent, MasterTime: master, RecvLocal: recv}
	if got := s.RTT(); got != 100*time.Millisecond {
		t.Errorf("RTT = %v", got)
	}
	if got := s.Offset(); got != 10*time.Second {
		t.Errorf("Offset = %v, want 10s", got)
	}
}

func TestEstimatorNoSamples(t *testing.T) {
	e := NewEstimator(NewSim(origin), 4)
	if _, err := e.Offset(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("Offset err = %v", err)
	}
	if _, err := e.GlobalNow(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("GlobalNow err = %v", err)
	}
	if _, err := e.ErrorBound(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("ErrorBound err = %v", err)
	}
	if e.Synced() {
		t.Error("Synced should be false")
	}
}

func TestEstimatorPrefersMinRTT(t *testing.T) {
	e := NewEstimator(NewSim(origin), 8)
	// Noisy sample: big RTT, offset polluted by asymmetry.
	e.AddSample(Sample{
		SentLocal:  origin,
		MasterTime: origin.Add(5 * time.Second),
		RecvLocal:  origin.Add(400 * time.Millisecond),
	})
	// Clean sample: tiny RTT, true offset 5s.
	e.AddSample(Sample{
		SentLocal:  origin.Add(time.Second),
		MasterTime: origin.Add(6*time.Second + time.Millisecond),
		RecvLocal:  origin.Add(time.Second + 2*time.Millisecond),
	})
	offset, err := e.Offset()
	if err != nil {
		t.Fatal(err)
	}
	if offset != 5*time.Second {
		t.Errorf("offset = %v, want 5s (min-RTT sample)", offset)
	}
	bound, err := e.ErrorBound()
	if err != nil {
		t.Fatal(err)
	}
	if bound != time.Millisecond {
		t.Errorf("bound = %v, want 1ms", bound)
	}
}

func TestEstimatorWindowEviction(t *testing.T) {
	e := NewEstimator(NewSim(origin), 2)
	mk := func(base time.Duration, rtt time.Duration, offset time.Duration) Sample {
		sent := origin.Add(base)
		return Sample{
			SentLocal:  sent,
			MasterTime: sent.Add(offset + rtt/2),
			RecvLocal:  sent.Add(rtt),
		}
	}
	e.AddSample(mk(0, time.Millisecond, 3*time.Second)) // best, but will be evicted
	e.AddSample(mk(time.Second, 50*time.Millisecond, 7*time.Second))
	e.AddSample(mk(2*time.Second, 20*time.Millisecond, 9*time.Second))
	offset, err := e.Offset()
	if err != nil {
		t.Fatal(err)
	}
	if offset != 9*time.Second {
		t.Errorf("offset = %v, want 9s (1ms sample evicted by window=2)", offset)
	}
}

func TestSyncDirectConverges(t *testing.T) {
	base := NewSim(origin)
	master := NewMaster(base)
	// Client is 30s behind the global clock.
	local := NewDrift(base, -30*time.Second, 0)
	e := NewEstimator(local, 4)
	e.SyncDirect(master)
	offset, err := e.Offset()
	if err != nil {
		t.Fatal(err)
	}
	if offset != 30*time.Second {
		t.Errorf("offset = %v, want 30s", offset)
	}
	globalNow, err := e.GlobalNow()
	if err != nil {
		t.Fatal(err)
	}
	if !globalNow.Equal(master.GlobalNow()) {
		t.Errorf("GlobalNow = %v, master = %v", globalNow, master.GlobalNow())
	}
}

func TestDisciplineFastClientWaits(t *testing.T) {
	// Global time has NOT reached the schedule: wait the difference.
	globalNow := origin
	sched := origin.Add(2 * time.Second)
	if got := Discipline(globalNow, sched); got != 2*time.Second {
		t.Errorf("wait = %v, want 2s", got)
	}
}

func TestDisciplineSlowClientFiresImmediately(t *testing.T) {
	// Global time already passed the schedule: fire without delay.
	globalNow := origin.Add(5 * time.Second)
	sched := origin
	if got := Discipline(globalNow, sched); got != 0 {
		t.Errorf("wait = %v, want 0", got)
	}
	if got := Discipline(origin, origin); got != 0 {
		t.Errorf("exact deadline wait = %v, want 0", got)
	}
}

func TestWaitUntilGlobalImmediate(t *testing.T) {
	base := NewSim(origin)
	master := NewMaster(base)
	local := NewDrift(base, time.Minute, 0) // client runs a minute ahead
	e := NewEstimator(local, 4)
	e.SyncDirect(master)
	// Deadline already passed in global time: returns without sleeping.
	resid, err := e.waitNoSleep(master, origin.Add(-time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if resid < 0 {
		t.Errorf("residual = %v", resid)
	}
}

// waitNoSleep calls WaitUntilGlobal only when it will not block (deadline
// in the past), keeping the test free of clock-advancing goroutines.
func (e *Estimator) waitNoSleep(m *Master, deadline time.Time) (time.Duration, error) {
	return WaitUntilGlobal(e, deadline)
}

func TestWaitUntilGlobalBlocksUntilAdvance(t *testing.T) {
	base := NewSim(origin)
	master := NewMaster(base)
	local := NewDrift(base, 0, 0)
	e := NewEstimator(local, 4)
	e.SyncDirect(master)
	deadline := origin.Add(3 * time.Second)
	done := make(chan time.Duration, 1)
	go func() {
		resid, err := WaitUntilGlobal(e, deadline)
		if err != nil {
			t.Errorf("WaitUntilGlobal: %v", err)
		}
		done <- resid
	}()
	for base.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("returned before global deadline")
	default:
	}
	base.Advance(3 * time.Second)
	select {
	case resid := <-done:
		if resid != 0 {
			t.Errorf("residual = %v, want 0", resid)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitUntilGlobal never returned")
	}
}

func TestWaitUntilGlobalUnsynced(t *testing.T) {
	e := NewEstimator(NewSim(origin), 4)
	if _, err := WaitUntilGlobal(e, origin); !errors.Is(err, ErrNoSamples) {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
}
