package clock

import (
	"errors"
	"sync"
	"time"
)

// ErrNoSamples is returned by estimator queries before any sync exchange.
var ErrNoSamples = errors.New("clock: no synchronization samples yet")

// Master is the DMPS server's authoritative global clock. The server
// builds the communication group and initializes the global clock; all
// admission control is centralized on it (paper §3).
type Master struct {
	base Clock
}

// NewMaster returns a master clock over base.
func NewMaster(base Clock) *Master {
	return &Master{base: base}
}

// GlobalNow returns the authoritative global time.
func (m *Master) GlobalNow() time.Time { return m.base.Now() }

// Sample is one Cristian-style synchronization exchange measured by a
// client: the request left at SentLocal (client clock), the master stamped
// MasterTime, and the response arrived at RecvLocal (client clock).
type Sample struct {
	SentLocal  time.Time
	MasterTime time.Time
	RecvLocal  time.Time
}

// RTT returns the round-trip time observed by the client.
func (s Sample) RTT() time.Duration { return s.RecvLocal.Sub(s.SentLocal) }

// Offset estimates master − local at RecvLocal, assuming symmetric paths:
// the master's clock read happened RTT/2 before RecvLocal.
func (s Sample) Offset() time.Duration {
	midpointMaster := s.MasterTime.Add(s.RTT() / 2)
	return midpointMaster.Sub(s.RecvLocal)
}

// Estimator is a client-side global-time estimator. It keeps the
// minimum-RTT sample within a sliding window (minimum-delay filtering, the
// standard defence against asymmetric queueing delay) and exposes the
// estimated global time. It is safe for concurrent use.
type Estimator struct {
	local  Clock
	window int

	mu      sync.Mutex
	samples []Sample
	best    Sample
	haveFix bool
}

// NewEstimator returns an estimator over the client's local clock keeping
// at most window samples (window ≤ 0 defaults to 8).
func NewEstimator(local Clock, window int) *Estimator {
	if window <= 0 {
		window = 8
	}
	return &Estimator{local: local, window: window}
}

// AddSample records one sync exchange and re-selects the minimum-RTT
// sample in the window.
func (e *Estimator) AddSample(s Sample) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.samples = append(e.samples, s)
	if len(e.samples) > e.window {
		e.samples = e.samples[len(e.samples)-e.window:]
	}
	e.best = e.samples[0]
	for _, c := range e.samples[1:] {
		if c.RTT() < e.best.RTT() {
			e.best = c
		}
	}
	e.haveFix = true
}

// Offset returns the current estimate of master − local.
func (e *Estimator) Offset() (time.Duration, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.haveFix {
		return 0, ErrNoSamples
	}
	return e.best.Offset(), nil
}

// ErrorBound returns the half-RTT of the selected sample, the worst-case
// error of the offset estimate under asymmetric delay.
func (e *Estimator) ErrorBound() (time.Duration, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.haveFix {
		return 0, ErrNoSamples
	}
	return e.best.RTT() / 2, nil
}

// GlobalNow returns the estimated global time (local now + offset).
func (e *Estimator) GlobalNow() (time.Time, error) {
	offset, err := e.Offset()
	if err != nil {
		return time.Time{}, err
	}
	return e.local.Now().Add(offset), nil
}

// Synced reports whether at least one sample has been recorded.
func (e *Estimator) Synced() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.haveFix
}

// SyncDirect performs one synchronization exchange against an in-process
// master (no network). Tests and single-process simulations use it; the
// networked client performs the same exchange over the protocol and feeds
// AddSample itself.
func (e *Estimator) SyncDirect(m *Master) Sample {
	sent := e.local.Now()
	master := m.GlobalNow()
	recv := e.local.Now()
	s := Sample{SentLocal: sent, MasterTime: master, RecvLocal: recv}
	e.AddSample(s)
	return s
}

// Discipline applies the paper's firing admission rule for a scheduled
// global fire time. Given the estimated global now:
//
//   - estimated global time already at/past the deadline (the local clock
//     is "slower than the global clock"): fire without delay — wait 0;
//   - estimated global time before the deadline (the local clock "is
//     faster than the global clock"): the transition must not fire until
//     the global clock arrives — wait the remaining global time.
//
// It returns how long the caller must wait on its local clock before
// firing.
func Discipline(globalNow, scheduledGlobal time.Time) time.Duration {
	if !globalNow.Before(scheduledGlobal) {
		return 0
	}
	return scheduledGlobal.Sub(globalNow)
}

// WaitUntilGlobal blocks on the client's local clock until the estimated
// global time reaches scheduledGlobal, re-checking after each wait so that
// estimator updates (from concurrent sync exchanges) are honoured. It
// returns the residual error (estimated global time minus the deadline at
// wake-up, ≥ 0 barring estimator regressions).
func WaitUntilGlobal(e *Estimator, scheduledGlobal time.Time) (time.Duration, error) {
	for {
		now, err := e.GlobalNow()
		if err != nil {
			return 0, err
		}
		wait := Discipline(now, scheduledGlobal)
		if wait == 0 {
			return now.Sub(scheduledGlobal), nil
		}
		e.local.Sleep(wait)
	}
}
