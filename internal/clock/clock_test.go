package clock

import (
	"sync"
	"testing"
	"time"
)

var origin = time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)

func TestSimNowAdvance(t *testing.T) {
	s := NewSim(origin)
	if !s.Now().Equal(origin) {
		t.Errorf("Now = %v", s.Now())
	}
	s.Advance(3 * time.Second)
	if got := s.Now(); !got.Equal(origin.Add(3 * time.Second)) {
		t.Errorf("Now = %v", got)
	}
	s.Advance(-time.Second) // negative is ignored
	if got := s.Now(); !got.Equal(origin.Add(3 * time.Second)) {
		t.Errorf("negative Advance moved clock: %v", got)
	}
}

func TestSimAfterFiresOnAdvance(t *testing.T) {
	s := NewSim(origin)
	ch := s.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired early")
	default:
	}
	s.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired at 9s, deadline 10s")
	default:
	}
	s.Advance(time.Second)
	select {
	case at := <-ch:
		if !at.Equal(origin.Add(10 * time.Second)) {
			t.Errorf("fired at %v", at)
		}
	default:
		t.Fatal("did not fire at deadline")
	}
}

func TestSimAfterNonPositive(t *testing.T) {
	s := NewSim(origin)
	select {
	case <-s.After(0):
	default:
		t.Error("After(0) should fire immediately")
	}
	select {
	case <-s.After(-time.Second):
	default:
		t.Error("After(negative) should fire immediately")
	}
}

func TestSimSleepWakesGoroutine(t *testing.T) {
	s := NewSim(origin)
	var wg sync.WaitGroup
	woke := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Sleep(5 * time.Second)
		close(woke)
	}()
	// Wait for the goroutine to register.
	for s.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	s.Advance(5 * time.Second)
	select {
	case <-woke:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep never woke")
	}
	wg.Wait()
}

func TestSimMultipleWaitersWakeInOneAdvance(t *testing.T) {
	s := NewSim(origin)
	a := s.After(time.Second)
	b := s.After(2 * time.Second)
	c := s.After(10 * time.Second)
	s.Advance(5 * time.Second)
	for name, ch := range map[string]<-chan time.Time{"a": a, "b": b} {
		select {
		case <-ch:
		default:
			t.Errorf("%s did not fire", name)
		}
	}
	select {
	case <-c:
		t.Error("c fired too early")
	default:
	}
	if s.Waiters() != 1 {
		t.Errorf("Waiters = %d", s.Waiters())
	}
}

func TestRealClockMonotoneEnough(t *testing.T) {
	var r Real
	a := r.Now()
	r.Sleep(time.Millisecond)
	b := r.Now()
	if !b.After(a) {
		t.Errorf("Real clock did not advance: %v then %v", a, b)
	}
	select {
	case <-r.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Error("Real After never fired")
	}
}

func TestDriftOffsetOnly(t *testing.T) {
	base := NewSim(origin)
	d := NewDrift(base, 2*time.Second, 0)
	if got := d.Now(); !got.Equal(origin.Add(2 * time.Second)) {
		t.Errorf("Now = %v", got)
	}
	base.Advance(10 * time.Second)
	if got := d.Now(); !got.Equal(origin.Add(12 * time.Second)) {
		t.Errorf("Now after advance = %v", got)
	}
}

func TestDriftRate(t *testing.T) {
	base := NewSim(origin)
	fast := NewDrift(base, 0, 0.10) // +10%
	slow := NewDrift(base, 0, -0.10)
	base.Advance(10 * time.Second)
	if got := fast.Now().Sub(origin); got != 11*time.Second {
		t.Errorf("fast elapsed = %v, want 11s", got)
	}
	if got := slow.Now().Sub(origin); got != 9*time.Second {
		t.Errorf("slow elapsed = %v, want 9s", got)
	}
}

func TestDriftAfterConvertsDuration(t *testing.T) {
	base := NewSim(origin)
	fast := NewDrift(base, 0, 1.0) // runs at double speed
	ch := fast.After(10 * time.Second)
	// 10s of drifted time is 5s of base time.
	base.Advance(5 * time.Second)
	select {
	case <-ch:
	default:
		t.Error("drifted After should fire after 5s of base time")
	}
}
