package netsim

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"dmps/internal/transport"
)

func pair(t *testing.T, n *Net) (client, server transport.Conn, cleanup func()) {
	t.Helper()
	l, err := n.Listen("server:1")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	cc, err := n.DialFrom("alice", "server:1")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	sc, err := l.Accept()
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	return cc, sc, func() {
		cc.Close()
		sc.Close()
		l.Close()
	}
}

func TestRoundTrip(t *testing.T) {
	n := New(1)
	client, server, cleanup := pair(t, n)
	defer cleanup()
	if err := client.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("ping")) {
		t.Errorf("got %q", got)
	}
	if err := server.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if got, _ := client.Recv(); string(got) != "pong" {
		t.Errorf("reverse got %q", got)
	}
}

func TestHost(t *testing.T) {
	if Host("a:1") != "a" || Host("plain") != "plain" || Host("x:y:z") != "x" {
		t.Error("Host parsing")
	}
}

// TestPayloadSharedUncopied pins the transport's zero-copy contract: a
// buffer handed to Send is delivered as-is (the mailbox does not copy),
// which is why callers must treat sent buffers as immutable.
func TestPayloadSharedUncopied(t *testing.T) {
	n := New(1)
	client, server, cleanup := pair(t, n)
	defer cleanup()
	buf := []byte("immutable")
	if err := client.Send(buf); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "immutable" {
		t.Errorf("payload corrupted: %q", got)
	}
	if len(got) == len(buf) && &got[0] != &buf[0] {
		t.Errorf("payload was copied: delivery should share the sent buffer")
	}
}

func TestDelayApplied(t *testing.T) {
	n := New(1)
	n.SetLink("alice", "server", LinkConfig{Delay: 30 * time.Millisecond})
	client, server, cleanup := pair(t, n)
	defer cleanup()
	start := time.Now()
	if err := client.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("delivered in %v, want >= ~30ms", elapsed)
	}
}

func TestFIFOUnderJitter(t *testing.T) {
	n := New(42)
	n.SetLink("alice", "server", LinkConfig{Delay: time.Millisecond, Jitter: 5 * time.Millisecond})
	client, server, cleanup := pair(t, n)
	defer cleanup()
	const count = 100
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < count; i++ {
			if err := client.Send([]byte{byte(i)}); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
	}()
	for i := 0; i < count; i++ {
		got, err := server.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("reordered at %d: got %d", i, got[0])
		}
	}
	wg.Wait()
}

func TestLossDropsSilently(t *testing.T) {
	n := New(7)
	n.SetLink("alice", "server", LinkConfig{Loss: 1.0})
	client, server, cleanup := pair(t, n)
	defer cleanup()
	if err := client.Send([]byte("vanishes")); err != nil {
		t.Fatalf("Send over lossy link must not error: %v", err)
	}
	// Nothing should arrive; close to unblock.
	go func() {
		time.Sleep(20 * time.Millisecond)
		client.Close()
	}()
	if _, err := server.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Recv = %v, want ErrClosed after silence", err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(7)
	client, server, cleanup := pair(t, n)
	defer cleanup()
	n.Partition("alice", "server", true)
	if err := client.Send([]byte("dropped")); err != nil {
		t.Fatal(err)
	}
	n.Partition("alice", "server", false)
	if err := client.Send([]byte("arrives")); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "arrives" {
		t.Errorf("got %q, partitioned message should be gone", got)
	}
}

func TestCloseDrainsThenErrClosed(t *testing.T) {
	n := New(1)
	client, server, cleanup := pair(t, n)
	defer cleanup()
	if err := client.Send([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	client.Close()
	got, err := server.Recv()
	if err != nil {
		t.Fatalf("in-flight message should drain: %v", err)
	}
	if string(got) != "last words" {
		t.Errorf("got %q", got)
	}
	if _, err := server.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("after drain: %v", err)
	}
}

func TestDropSimulatesCrash(t *testing.T) {
	n := New(1)
	client, server, cleanup := pair(t, n)
	defer cleanup()
	if !Drop(client) {
		t.Fatal("Drop should recognize netsim conns")
	}
	if err := client.Send([]byte("into the void")); err != nil {
		t.Fatalf("crashed sender errors: %v", err)
	}
	// The peer hears nothing — no close signal either.
	done := make(chan struct{})
	go func() {
		server.Recv()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("peer should not be notified of a crash")
	case <-time.After(30 * time.Millisecond):
	}
	server.Close() // cleanup unblocks the goroutine
	<-done
}

func TestDialUnknownAddress(t *testing.T) {
	n := New(1)
	if _, err := n.Dial("nowhere:1"); !errors.Is(err, transport.ErrUnknownAddress) {
		t.Errorf("err = %v", err)
	}
}

func TestListenDuplicateAddress(t *testing.T) {
	n := New(1)
	if _, err := n.Listen("a:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a:1"); err == nil {
		t.Error("duplicate listen should fail")
	}
}

func TestListenerCloseUnblocksAcceptAndFreesAddr(t *testing.T) {
	n := New(1)
	l, err := n.Listen("a:1")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	if err := <-done; !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Accept = %v", err)
	}
	if _, err := n.Listen("a:1"); err != nil {
		t.Errorf("address should be free after close: %v", err)
	}
}

func TestDefaultLinkApplies(t *testing.T) {
	n := New(3)
	n.SetDefaultLink(LinkConfig{Delay: 20 * time.Millisecond})
	client, server, cleanup := pair(t, n)
	defer cleanup()
	start := time.Now()
	client.Send([]byte("x"))
	server.Recv()
	if time.Since(start) < 15*time.Millisecond {
		t.Error("default link delay not applied")
	}
}

func TestSeededJitterDeterministic(t *testing.T) {
	run := func(seed int64) time.Duration {
		n := New(seed)
		n.SetLink("alice", "server", LinkConfig{Delay: time.Millisecond, Jitter: 10 * time.Millisecond})
		client, server, cleanup := pair(t, n)
		defer cleanup()
		start := time.Now()
		client.Send([]byte("x"))
		server.Recv()
		return time.Since(start)
	}
	a, b := run(99), run(99)
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > 8*time.Millisecond {
		t.Errorf("same seed, very different delays: %v vs %v", a, b)
	}
}

func TestAddrs(t *testing.T) {
	n := New(1)
	client, server, cleanup := pair(t, n)
	defer cleanup()
	if client.RemoteAddr() != "server:1" {
		t.Errorf("client remote = %q", client.RemoteAddr())
	}
	if server.LocalAddr() != "server:1" {
		t.Errorf("server local = %q", server.LocalAddr())
	}
	if Host(client.LocalAddr()) != "alice" {
		t.Errorf("client local = %q", client.LocalAddr())
	}
}

func TestStallBlocksSendUntilReleased(t *testing.T) {
	n := New(1)
	client, server, cleanup := pair(t, n)
	defer cleanup()
	n.Stall("alice", "server", true)
	sent := make(chan error, 1)
	go func() {
		sent <- client.Send([]byte("held"))
	}()
	select {
	case err := <-sent:
		t.Fatalf("Send returned %v while stalled", err)
	case <-time.After(30 * time.Millisecond):
	}
	n.Stall("alice", "server", false)
	select {
	case err := <-sent:
		if err != nil {
			t.Fatalf("Send after release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Send still blocked after release")
	}
	got, err := server.Recv()
	if err != nil || !bytes.Equal(got, []byte("held")) {
		t.Fatalf("Recv = %q, %v", got, err)
	}
}

func TestStallReleasedByClose(t *testing.T) {
	n := New(1)
	client, _, cleanup := pair(t, n)
	defer cleanup()
	n.Stall("alice", "server", true)
	defer n.Stall("alice", "server", false)
	sent := make(chan error, 1)
	go func() {
		sent <- client.Send([]byte("doomed"))
	}()
	time.Sleep(10 * time.Millisecond)
	client.Close()
	select {
	case err := <-sent:
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("Send on closed stalled conn = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Send still blocked after close")
	}
}
