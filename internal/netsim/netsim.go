// Package netsim is an in-memory implementation of transport.Network with
// a configurable link model: per-host-pair one-way delay, jitter, loss and
// partitions. It stands in for the campus LAN / Internet between the
// paper's client sites (see the DESIGN.md substitution table) while
// keeping tests fast and deterministic (seeded jitter).
package netsim

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"dmps/internal/transport"
)

// LinkConfig shapes traffic between two hosts.
type LinkConfig struct {
	// Delay is the fixed one-way latency.
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter].
	Jitter time.Duration
	// Loss is the probability in [0, 1] that a message is silently
	// dropped.
	Loss float64
}

// Net is a simulated network. It is safe for concurrent use.
type Net struct {
	mu         sync.Mutex
	rng        *rand.Rand
	listeners  map[string]*listener
	links      map[[2]string]LinkConfig
	partitions map[[2]string]bool
	stalls     map[[2]string]chan struct{}
	defaultCfg LinkConfig
}

var _ transport.Network = (*Net)(nil)

// New returns a simulated network with no default delay. Jitter and loss
// draw from a private RNG seeded with seed.
func New(seed int64) *Net {
	return &Net{
		rng:        rand.New(rand.NewSource(seed)),
		listeners:  make(map[string]*listener),
		links:      make(map[[2]string]LinkConfig),
		partitions: make(map[[2]string]bool),
		stalls:     make(map[[2]string]chan struct{}),
	}
}

// Host extracts the host part of an address ("host:port" → "host").
func Host(addr string) string {
	if i := strings.IndexByte(addr, ':'); i >= 0 {
		return addr[:i]
	}
	return addr
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// SetDefaultLink sets the config for host pairs without a specific link.
func (n *Net) SetDefaultLink(cfg LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaultCfg = cfg
}

// SetLink configures the link between two hosts (both directions).
func (n *Net) SetLink(hostA, hostB string, cfg LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[pairKey(hostA, hostB)] = cfg
}

// Partition cuts (or heals) connectivity between two hosts. While
// partitioned every message between them is dropped.
func (n *Net) Partition(hostA, hostB string, cut bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cut {
		n.partitions[pairKey(hostA, hostB)] = true
	} else {
		delete(n.partitions, pairKey(hostA, hostB))
	}
}

func (n *Net) linkFor(a, b string) LinkConfig {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cfg, ok := n.links[pairKey(a, b)]; ok {
		return cfg
	}
	return n.defaultCfg
}

func (n *Net) partitioned(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitions[pairKey(a, b)]
}

// Stall freezes (or releases) sends between two hosts: while stalled,
// Send blocks until the stall is lifted or the sending connection
// closes. It is the deterministic stand-in for a peer that stops
// reading until the sender's kernel socket buffer fills — the
// slow-consumer scenario the server's bounded per-session queues exist
// for. (Partition drops silently; Stall blocks, like real TCP
// backpressure.)
func (n *Net) Stall(hostA, hostB string, stall bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := pairKey(hostA, hostB)
	gate, stalled := n.stalls[key]
	switch {
	case stall && !stalled:
		n.stalls[key] = make(chan struct{})
	case !stall && stalled:
		close(gate)
		delete(n.stalls, key)
	}
}

// stallGate returns the release channel for a stalled pair (nil when
// not stalled).
func (n *Net) stallGate(a, b string) chan struct{} {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stalls[pairKey(a, b)]
}

// sample draws the delivery delay and loss verdict for one message.
func (n *Net) sample(cfg LinkConfig) (time.Duration, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delay := cfg.Delay
	if cfg.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(cfg.Jitter) + 1))
	}
	lost := cfg.Loss > 0 && n.rng.Float64() < cfg.Loss
	return delay, lost
}

// Listen implements transport.Network.
func (n *Net) Listen(addr string) (transport.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("netsim: address %q in use (%w)", addr, transport.ErrUnknownAddress)
	}
	l := &listener{net: n, addr: addr, backlog: make(chan *conn, 64)}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements transport.Network.
func (n *Net) Dial(addr string) (transport.Conn, error) {
	return n.DialFrom("client", addr)
}

// From returns a transport.Network whose outbound connections originate
// at the named simulated host, so per-host link configs, partitions and
// stalls apply. Listen is unchanged.
func (n *Net) From(host string) transport.Network {
	return hostNetwork{net: n, host: host}
}

type hostNetwork struct {
	net  *Net
	host string
}

func (h hostNetwork) Dial(addr string) (transport.Conn, error) {
	return h.net.DialFrom(h.host, addr)
}

func (h hostNetwork) Listen(addr string) (transport.Listener, error) {
	return h.net.Listen(addr)
}

// DialFrom dials addr with an explicit local host name, so per-host link
// configs apply. Plain Dial uses the host name "client".
func (n *Net) DialFrom(localHost, addr string) (transport.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("netsim: %q: %w", addr, transport.ErrUnknownAddress)
	}
	client, server := newPair(n, localHost, addr)
	select {
	case l.backlog <- server:
		return client, nil
	default:
		return nil, fmt.Errorf("netsim: %q backlog full (%w)", addr, transport.ErrUnknownAddress)
	}
}

type listener struct {
	net     *Net
	addr    string
	backlog chan *conn
	closeMu sync.Mutex
	closed  bool
}

func (l *listener) Accept() (transport.Conn, error) {
	c, ok := <-l.backlog
	if !ok {
		return nil, transport.ErrClosed
	}
	return c, nil
}

func (l *listener) Close() error {
	l.closeMu.Lock()
	defer l.closeMu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.net.mu.Lock()
	delete(l.net.listeners, l.addr)
	l.net.mu.Unlock()
	close(l.backlog)
	return nil
}

func (l *listener) Addr() string { return l.addr }

// item is one in-flight message.
type item struct {
	payload   []byte
	deliverAt time.Time
}

// mailbox is a FIFO of delayed messages with close semantics: readers
// drain remaining items after close, then get ErrClosed.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	// items plus head form a FIFO that reuses its backing array: pop
	// advances head instead of reslicing (a bare items[1:] strands the
	// array start, so every push past cap would reallocate), and push
	// compacts the live tail down before growing. Steady-state traffic
	// allocates nothing per message.
	items  []item
	head   int
	closed bool
	// lastAt enforces FIFO: a later message never overtakes an earlier
	// one even if it sampled a smaller jitter.
	lastAt time.Time
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(payload []byte, deliverAt time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	if deliverAt.Before(m.lastAt) {
		deliverAt = m.lastAt
	}
	m.lastAt = deliverAt
	if m.head > 0 && len(m.items) == cap(m.items) {
		// About to grow: slide the live tail down and reuse the array.
		n := copy(m.items, m.items[m.head:])
		clearTail := m.items[n:len(m.items)]
		for i := range clearTail {
			clearTail[i] = item{}
		}
		m.items = m.items[:n]
		m.head = 0
	}
	// The payload is enqueued without copying: the transport contract
	// says a buffer handed to Send is immutable from then on, so one
	// encoded fan-out buffer can sit in every recipient's mailbox.
	m.items = append(m.items, item{payload: payload, deliverAt: deliverAt})
	m.cond.Broadcast()
}

func (m *mailbox) pop() ([]byte, error) {
	m.mu.Lock()
	for {
		if m.head < len(m.items) {
			head := m.items[m.head]
			now := time.Now()
			if wait := head.deliverAt.Sub(now); wait > 0 {
				// Release the lock while the message is "in flight".
				m.mu.Unlock()
				time.Sleep(wait)
				m.mu.Lock()
				continue
			}
			m.items[m.head] = item{} // release the payload reference
			m.head++
			if m.head == len(m.items) {
				m.items = m.items[:0]
				m.head = 0
			}
			m.mu.Unlock()
			return head.payload, nil
		}
		if m.closed {
			m.mu.Unlock()
			return nil, transport.ErrClosed
		}
		m.cond.Wait()
	}
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// conn is one endpoint of a simulated connection.
type conn struct {
	net        *Net
	localHost  string
	remoteHost string
	localAddr  string
	remoteAddr string
	inbox      *mailbox
	peer       *conn
	closeOnce  sync.Once
	done       chan struct{}
	dropMu     sync.Mutex
	dropped    bool
}

var _ transport.Conn = (*conn)(nil)

func newPair(n *Net, clientHost, serverAddr string) (clientEnd, serverEnd *conn) {
	serverHost := Host(serverAddr)
	clientAddr := clientHost + ":ephemeral"
	c := &conn{
		net: n, localHost: clientHost, remoteHost: serverHost,
		localAddr: clientAddr, remoteAddr: serverAddr,
		inbox: newMailbox(), done: make(chan struct{}),
	}
	s := &conn{
		net: n, localHost: serverHost, remoteHost: clientHost,
		localAddr: serverAddr, remoteAddr: clientAddr,
		inbox: newMailbox(), done: make(chan struct{}),
	}
	c.peer, s.peer = s, c
	return c, s
}

// Send implements transport.Conn.
func (c *conn) Send(payload []byte) error {
	if len(payload) > transport.MaxMessageSize {
		return fmt.Errorf("%w: %d bytes", transport.ErrTooLarge, len(payload))
	}
	// A stalled link blocks the sender (TCP-buffer-full semantics) until
	// released or this endpoint closes.
	for {
		gate := c.net.stallGate(c.localHost, c.remoteHost)
		if gate == nil {
			break
		}
		select {
		case <-gate:
		case <-c.done:
			return transport.ErrClosed
		}
	}
	c.dropMu.Lock()
	dropped := c.dropped
	c.dropMu.Unlock()
	if dropped {
		// A crashed host's packets go nowhere, but Send does not error:
		// the application only notices via silence (heartbeat timeout).
		return nil
	}
	if c.net.partitioned(c.localHost, c.remoteHost) {
		return nil // silently dropped, like a partition
	}
	cfg := c.net.linkFor(c.localHost, c.remoteHost)
	delay, lost := c.net.sample(cfg)
	if lost {
		return nil
	}
	c.peer.inbox.push(payload, time.Now().Add(delay))
	return nil
}

// Recv implements transport.Conn.
func (c *conn) Recv() ([]byte, error) { return c.inbox.pop() }

// Close implements transport.Conn: both directions shut down; the peer
// drains in-flight messages then sees ErrClosed.
func (c *conn) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		c.inbox.close()
		c.peer.inbox.close()
	})
	return nil
}

// Drop simulates a crash or cable pull on this endpoint: outbound messages
// vanish and nothing signals the peer. Detection is left to heartbeats,
// exactly the scenario of the paper's Figure 3(c) red status light.
func (c *conn) Drop() {
	c.dropMu.Lock()
	c.dropped = true
	c.dropMu.Unlock()
}

// Drop exposes the crash simulation on a transport.Conn created by this
// package; it reports false when the conn is not a netsim conn.
func Drop(tc transport.Conn) bool {
	c, ok := tc.(*conn)
	if !ok {
		return false
	}
	c.Drop()
	return true
}

func (c *conn) LocalAddr() string  { return c.localAddr }
func (c *conn) RemoteAddr() string { return c.remoteAddr }
