// Package scenario parses presentation scenario files: a small JSON
// format describing media objects and Allen-relation constraints, used
// by cmd/dmps-sim to run arbitrary presentations. Example:
//
//	{
//	  "objects": [
//	    {"id": "slide", "kind": "image", "duration": "10s"},
//	    {"id": "narration", "kind": "audio", "duration": "10s", "rate": 50},
//	    {"id": "clip", "kind": "video", "duration": "5s", "rate": 30}
//	  ],
//	  "constraints": [
//	    {"a": "slide", "rel": "equals", "b": "narration"},
//	    {"a": "slide", "rel": "meets", "b": "clip"}
//	  ],
//	  "anchor": "slide"
//	}
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"dmps/internal/media"
	"dmps/internal/ocpn"
)

// ErrParse is returned for malformed scenario files.
var ErrParse = errors.New("scenario: parse error")

// fileSpec is the on-disk shape.
type fileSpec struct {
	Objects     []objectSpec     `json:"objects"`
	Constraints []constraintSpec `json:"constraints"`
	Anchor      string           `json:"anchor,omitempty"`
}

type objectSpec struct {
	ID       string  `json:"id"`
	Kind     string  `json:"kind"`
	Duration string  `json:"duration"`
	Rate     float64 `json:"rate,omitempty"`
	Bytes    int     `json:"unit_bytes,omitempty"`
}

type constraintSpec struct {
	A   string `json:"a"`
	Rel string `json:"rel"`
	B   string `json:"b"`
	Gap string `json:"gap,omitempty"`
}

var kinds = map[string]media.Kind{
	"text":       media.Text,
	"image":      media.Image,
	"audio":      media.Audio,
	"video":      media.Video,
	"annotation": media.Annotation,
}

var relations = map[string]ocpn.Relation{
	"equals":   ocpn.Equals,
	"before":   ocpn.Before,
	"meets":    ocpn.Meets,
	"overlaps": ocpn.Overlaps,
	"during":   ocpn.During,
	"starts":   ocpn.Starts,
	"finishes": ocpn.Finishes,
}

// Parse converts scenario JSON into an Allen specification.
func Parse(data []byte) (ocpn.Spec, error) {
	var fs fileSpec
	if err := json.Unmarshal(data, &fs); err != nil {
		return ocpn.Spec{}, fmt.Errorf("%w: %v", ErrParse, err)
	}
	if len(fs.Objects) == 0 {
		return ocpn.Spec{}, fmt.Errorf("%w: no objects", ErrParse)
	}
	spec := ocpn.Spec{Anchor: fs.Anchor}
	for _, o := range fs.Objects {
		kind, ok := kinds[o.Kind]
		if !ok {
			return ocpn.Spec{}, fmt.Errorf("%w: object %q has unknown kind %q", ErrParse, o.ID, o.Kind)
		}
		dur, err := time.ParseDuration(o.Duration)
		if err != nil {
			return ocpn.Spec{}, fmt.Errorf("%w: object %q duration: %v", ErrParse, o.ID, err)
		}
		obj := media.Object{ID: o.ID, Kind: kind, Duration: dur, Rate: o.Rate, UnitBytes: o.Bytes}
		if kind.Continuous() && obj.Rate == 0 {
			obj.Rate = 10 // sensible default for continuous media
		}
		spec.Objects = append(spec.Objects, obj)
	}
	for _, c := range fs.Constraints {
		rel, ok := relations[c.Rel]
		if !ok {
			return ocpn.Spec{}, fmt.Errorf("%w: unknown relation %q", ErrParse, c.Rel)
		}
		gap := time.Duration(0)
		if c.Gap != "" {
			var err error
			gap, err = time.ParseDuration(c.Gap)
			if err != nil {
				return ocpn.Spec{}, fmt.Errorf("%w: constraint gap: %v", ErrParse, err)
			}
		}
		spec.Constraints = append(spec.Constraints, ocpn.Constraint{A: c.A, B: c.B, Rel: rel, Gap: gap})
	}
	return spec, nil
}

// Load reads and parses a scenario file.
func Load(path string) (ocpn.Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ocpn.Spec{}, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data)
}

// Render serializes a specification back to scenario JSON (for tooling
// round trips and documentation generation).
func Render(spec ocpn.Spec) ([]byte, error) {
	fs := fileSpec{Anchor: spec.Anchor}
	kindNames := make(map[media.Kind]string, len(kinds))
	for name, k := range kinds {
		kindNames[k] = name
	}
	relNames := make(map[ocpn.Relation]string, len(relations))
	for name, r := range relations {
		relNames[r] = name
	}
	for _, o := range spec.Objects {
		name, ok := kindNames[o.Kind]
		if !ok {
			return nil, fmt.Errorf("%w: unrenderable kind %v", ErrParse, o.Kind)
		}
		fs.Objects = append(fs.Objects, objectSpec{
			ID: o.ID, Kind: name, Duration: o.Duration.String(), Rate: o.Rate, Bytes: o.UnitBytes,
		})
	}
	for _, c := range spec.Constraints {
		name, ok := relNames[c.Rel]
		if !ok {
			return nil, fmt.Errorf("%w: unrenderable relation %v", ErrParse, c.Rel)
		}
		cs := constraintSpec{A: c.A, Rel: name, B: c.B}
		if c.Gap != 0 {
			cs.Gap = c.Gap.String()
		}
		fs.Constraints = append(fs.Constraints, cs)
	}
	return json.MarshalIndent(fs, "", "  ")
}
