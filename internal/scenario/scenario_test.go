package scenario

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dmps/internal/ocpn"
)

const lectureJSON = `{
  "objects": [
    {"id": "slide", "kind": "image", "duration": "10s"},
    {"id": "narration", "kind": "audio", "duration": "10s", "rate": 50},
    {"id": "clip", "kind": "video", "duration": "5s", "rate": 30}
  ],
  "constraints": [
    {"a": "slide", "rel": "equals", "b": "narration"},
    {"a": "slide", "rel": "meets", "b": "clip"}
  ],
  "anchor": "slide"
}`

func TestParseLecture(t *testing.T) {
	spec, err := Parse([]byte(lectureJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Objects) != 3 || len(spec.Constraints) != 2 || spec.Anchor != "slide" {
		t.Fatalf("spec = %+v", spec)
	}
	tl, err := ocpn.Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	net, err := ocpn.Compile(tl)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
	if net.DeriveSchedule().Total != 15*time.Second {
		t.Errorf("total = %v", net.DeriveSchedule().Total)
	}
}

func TestParseDefaultsContinuousRate(t *testing.T) {
	spec, err := Parse([]byte(`{"objects":[{"id":"v","kind":"video","duration":"1s"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Objects[0].Rate != 10 {
		t.Errorf("default rate = %v", spec.Objects[0].Rate)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`{not json`,
		`{"objects":[]}`,
		`{"objects":[{"id":"x","kind":"hologram","duration":"1s"}]}`,
		`{"objects":[{"id":"x","kind":"text","duration":"soon"}]}`,
		`{"objects":[{"id":"x","kind":"text","duration":"1s"}],"constraints":[{"a":"x","rel":"eventually","b":"x"}]}`,
		`{"objects":[{"id":"x","kind":"text","duration":"1s"}],"constraints":[{"a":"x","rel":"before","b":"x","gap":"later"}]}`,
	}
	for i, c := range cases {
		if _, err := Parse([]byte(c)); !errors.Is(err, ErrParse) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lecture.json")
	if err := os.WriteFile(path, []byte(lectureJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Objects) != 3 {
		t.Errorf("objects = %d", len(spec.Objects))
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	spec, err := Parse([]byte(lectureJSON))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Render(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if len(spec2.Objects) != len(spec.Objects) || len(spec2.Constraints) != len(spec.Constraints) {
		t.Errorf("round trip lost entries")
	}
	tl1, err := ocpn.Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	tl2, err := ocpn.Solve(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if tl1.End() != tl2.End() {
		t.Errorf("round trip changed semantics: %v vs %v", tl1.End(), tl2.End())
	}
}

func TestRenderWithGap(t *testing.T) {
	spec, err := Parse([]byte(`{
		"objects":[
			{"id":"a","kind":"text","duration":"2s"},
			{"id":"b","kind":"text","duration":"2s"}
		],
		"constraints":[{"a":"a","rel":"before","b":"b","gap":"500ms"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Render(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if spec2.Constraints[0].Gap != 500*time.Millisecond {
		t.Errorf("gap = %v", spec2.Constraints[0].Gap)
	}
}
