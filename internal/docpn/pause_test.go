package docpn

import (
	"testing"
	"time"
)

func TestPauseResumeShiftsSchedule(t *testing.T) {
	sites := []SiteSpec{{Name: "a", ControlDelay: time.Millisecond}}
	// Pause at 2s, resume at 5s: 3s of frozen time. t1 (nominal 10s)
	// should fire at ≈13s.
	res, err := RunWith(
		Config{Timeline: lecture(), Sites: sites, Mode: GlobalClock},
		[]Interaction{
			{At: 2 * time.Second, Site: "a", Kind: Pause},
			{At: 5 * time.Second, Site: "a", Kind: Resume},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("not finished")
	}
	origin := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	t1 := res.FireAt["a"][1].Sub(origin)
	if t1 < 12900*time.Millisecond || t1 > 13100*time.Millisecond {
		t.Errorf("t1 fired at %v, want ≈13s (10s + 3s pause)", t1)
	}
	// And the end shifts equally: t2 nominal 15s → ≈18s.
	t2 := res.FireAt["a"][2].Sub(origin)
	if t2 < 17900*time.Millisecond || t2 > 18100*time.Millisecond {
		t.Errorf("t2 fired at %v, want ≈18s", t2)
	}
}

func TestPauseKeepsSitesTogether(t *testing.T) {
	sites := []SiteSpec{
		{Name: "a", ControlDelay: 5 * time.Millisecond},
		{Name: "b", ControlDelay: 5 * time.Millisecond},
	}
	res, err := RunWith(
		Config{Timeline: lecture(), Sites: sites, Mode: GlobalClock},
		[]Interaction{
			{At: time.Second, Site: "a", Kind: Pause},
			{At: 3 * time.Second, Site: "b", Kind: Resume},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("not finished")
	}
	// Equal downlink delays ⇒ equal shifts ⇒ sites stay aligned.
	d := res.FireAt["a"][1].Sub(res.FireAt["b"][1])
	if d < 0 {
		d = -d
	}
	if d > time.Millisecond {
		t.Errorf("post-pause divergence = %v", d)
	}
}

func TestResumeWithoutPauseIgnored(t *testing.T) {
	sites := []SiteSpec{{Name: "a"}}
	res, err := RunWith(
		Config{Timeline: lecture(), Sites: sites, Mode: GlobalClock},
		[]Interaction{{At: time.Second, Site: "a", Kind: Resume}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("not finished")
	}
	origin := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	t1 := res.FireAt["a"][1].Sub(origin)
	if t1 != 10*time.Second {
		t.Errorf("t1 = %v, schedule must be unaffected", t1)
	}
}

func TestDoublePauseIgnored(t *testing.T) {
	sites := []SiteSpec{{Name: "a"}}
	res, err := RunWith(
		Config{Timeline: lecture(), Sites: sites, Mode: GlobalClock},
		[]Interaction{
			{At: time.Second, Site: "a", Kind: Pause},
			{At: 2 * time.Second, Site: "a", Kind: Pause}, // no-op
			{At: 4 * time.Second, Site: "a", Kind: Resume},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	origin := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	// Paused 1s→4s: 3s shift measured from the FIRST pause.
	t1 := res.FireAt["a"][1].Sub(origin)
	if t1 < 12900*time.Millisecond || t1 > 13100*time.Millisecond {
		t.Errorf("t1 = %v, want ≈13s", t1)
	}
}

func TestSkipDuringPauseIgnored(t *testing.T) {
	sites := []SiteSpec{{Name: "a"}}
	res, err := RunWith(
		Config{Timeline: lecture(), Sites: sites, Mode: GlobalClock, PrioritySkip: true},
		[]Interaction{
			{At: time.Second, Site: "a", Kind: Pause},
			{At: 2 * time.Second, Site: "a", Kind: Skip}, // frozen: ignored
			{At: 3 * time.Second, Site: "a", Kind: Resume},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	origin := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	// Pause 1s→3s shifts by 2s; the skip must not have fired t1 early.
	t1 := res.FireAt["a"][1].Sub(origin)
	if t1 < 11900*time.Millisecond || t1 > 12100*time.Millisecond {
		t.Errorf("t1 = %v, want ≈12s (skip ignored)", t1)
	}
}

func TestPauseBeforeStartDelaysStart(t *testing.T) {
	sites := []SiteSpec{{Name: "a", ControlDelay: 500 * time.Millisecond}}
	// Pause lands (at ≈1s, after uplink+downlink) before... actually the
	// start fires at 500ms, so pause at 1s lands mid-first-segment; use a
	// larger start delay to pause before t0.
	sites[0].ControlDelay = 2 * time.Second
	res, err := RunWith(
		Config{Timeline: lecture(), Sites: sites, Mode: GlobalClock},
		[]Interaction{
			// Uplink 2s + downlink 2s: applies at ~4.5s... the start
			// fires at 2s, so to pause before t0 the user acts at
			// once: apply at 0.5+2+2 > 2s — cannot beat the start.
			// Instead verify pausing right after start still works.
			{At: 500 * time.Millisecond, Site: "a", Kind: Pause},
			{At: 6 * time.Second, Site: "a", Kind: Resume},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Error("not finished")
	}
	if res.InteractionLatency[0] <= 0 || res.InteractionLatency[1] <= 0 {
		t.Errorf("latencies = %v", res.InteractionLatency)
	}
}

func TestInteractionKindString(t *testing.T) {
	if Skip.String() != "skip" || Pause.String() != "pause" || Resume.String() != "resume" {
		t.Error("kind strings")
	}
	if InteractionKind(9).String() != "InteractionKind(9)" {
		t.Error("unknown kind")
	}
}
