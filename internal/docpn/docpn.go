// Package docpn implements the paper's Distributed Object Composition
// Petri Net: OCPN extended with (1) priority input arcs from the
// prioritized Petri net model of Guan, Yu & Yang, (2) a centralized global
// clock that disciplines transition firing across distributed sites, and
// (3) user interactions injected as priority events.
//
// The engine executes one compiled OCPN at several sites simultaneously
// inside a deterministic discrete-event simulation (package eventq). Each
// site runs its own copy of the net — extended with an interaction place
// wired to every synchronization transition through priority arcs — under
// its own drifting local clock. In GlobalClock mode each transition is
// admitted by the paper's rule: a site whose estimated global time has not
// reached the transition's scheduled global time waits; a site that is
// already late fires without delay. In LocalClock mode (the OCPN baseline)
// sites free-run on their local clocks, so skew accumulates with network
// delay and drift — the comparison the experiments quantify.
package docpn

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dmps/internal/eventq"
	"dmps/internal/media"
	"dmps/internal/ocpn"
	"dmps/internal/petri"
)

// ClockMode selects the firing discipline.
type ClockMode int

const (
	// GlobalClock is the paper's DOCPN discipline: firing is admitted
	// against the centralized global clock (synchronized estimate).
	GlobalClock ClockMode = iota + 1
	// LocalClock is the OCPN baseline: sites anchor at the start message
	// and free-run on their local clocks (delay spread and drift
	// accumulate into skew).
	LocalClock
	// NaiveClock schedules against the announced global timetable but
	// reads the raw, unsynchronized local clock as if it were global
	// time — the failure mode motivating the paper's clock sync: the
	// full clock offset lands in the firing error.
	NaiveClock
)

// String implements fmt.Stringer.
func (m ClockMode) String() string {
	switch m {
	case GlobalClock:
		return "global-clock"
	case LocalClock:
		return "local-clock"
	case NaiveClock:
		return "naive-clock"
	default:
		return fmt.Sprintf("ClockMode(%d)", int(m))
	}
}

// InteractionKind classifies a user interaction.
type InteractionKind int

const (
	// Skip forces the next synchronization transition to fire, cutting the
	// remainder of the currently playing segments.
	Skip InteractionKind = iota + 1
	// Pause freezes the presentation: the next synchronization transition
	// is withheld until a Resume arrives; the rest of the schedule shifts
	// by the paused duration.
	Pause
	// Resume releases a Pause.
	Resume
)

// String implements fmt.Stringer.
func (k InteractionKind) String() string {
	switch k {
	case Skip:
		return "skip"
	case Pause:
		return "pause"
	case Resume:
		return "resume"
	default:
		return fmt.Sprintf("InteractionKind(%d)", int(k))
	}
}

// Interaction is one user action during the presentation.
type Interaction struct {
	// At is the true-time offset from presentation start when the user
	// acts at their site.
	At time.Duration
	// Site is the acting site's name.
	Site string
	// Kind is the action.
	Kind InteractionKind
}

// SiteSpec describes one participating site.
type SiteSpec struct {
	// Name identifies the site.
	Name string
	// Offset is the initial error of the site's local clock against true
	// (global) time.
	Offset time.Duration
	// Drift is the local oscillator's fractional rate error (50e-6 = +50
	// ppm).
	Drift float64
	// SyncErr is the residual error of the site's global-time estimate
	// after clock synchronization (within ± the estimator's half-RTT
	// bound). Zero means a perfect estimate.
	SyncErr time.Duration
	// ControlDelay is the one-way network delay between the DMPS server
	// and this site for control messages (start, skip broadcast).
	ControlDelay time.Duration
}

// Config configures one distributed run.
type Config struct {
	// Timeline is the presentation to play (compiled per site).
	Timeline ocpn.Timeline
	// Sites are the participants; at least one is required.
	Sites []SiteSpec
	// Mode selects the DOCPN global-clock discipline or the OCPN
	// baseline.
	Mode ClockMode
	// PrioritySkip selects whether user interactions use the priority
	// arcs (the DOCPN behaviour). When false, a skip waits until the
	// current segments complete naturally (plain-net baseline).
	PrioritySkip bool
	// Origin anchors the simulation's true-time axis; zero means a fixed
	// reference epoch.
	Origin time.Time
}

// Configuration errors.
var (
	// ErrNoSites is returned when Config.Sites is empty.
	ErrNoSites = errors.New("docpn: at least one site required")
	// ErrUnknownSite is returned when an interaction names a site that is
	// not configured.
	ErrUnknownSite = errors.New("docpn: unknown site")
)

// interactPlace is the per-site place feeding priority arcs into every
// synchronization transition.
const interactPlace petri.PlaceID = "p_interact"

// Result is the outcome of one distributed run.
type Result struct {
	// Meter holds every playout record; skew statistics come from it.
	Meter media.SkewMeter
	// FireAt[site][i] is the true time transition i fired at the site.
	FireAt map[string][]time.Time
	// InteractionLatency has, per interaction, the worst-case latency from
	// the user's action to the last site applying it.
	InteractionLatency []time.Duration
	// Finished reports whether every site completed the presentation.
	Finished bool
	// Mode echoes the configured discipline.
	Mode ClockMode
}

// MaxFiringError returns the largest absolute difference between actual
// and nominal (schedule) firing times across sites and transitions, where
// nominal is origin + schedule offset shifted by any skips. For runs
// without interactions this is the firing discipline error E2 measures.
func (r *Result) MaxFiringError(origin time.Time, sched ocpn.Schedule) time.Duration {
	var max time.Duration
	for _, fires := range r.FireAt {
		for i, at := range fires {
			if at.IsZero() || i >= len(sched.FireAt) {
				continue
			}
			nominal := origin.Add(sched.FireAt[i])
			err := at.Sub(nominal)
			if err < 0 {
				err = -err
			}
			if err > max {
				max = err
			}
		}
	}
	return max
}

// site is the per-site runtime state.
type site struct {
	spec    SiteSpec
	net     *ocpn.Net
	base    *petri.Net
	marking petri.Marking
	sched   ocpn.Schedule
	next    int // index of the next unfired transition
	version int // bumped to invalidate scheduled fire events
	// shift accumulates schedule displacement from skips (negative =
	// earlier).
	shift time.Duration
	// pendingSkips holds the request times of non-priority skips waiting
	// for the next natural firing (for latency accounting), with the
	// matching interaction indices in pendingSkipIdxs.
	pendingSkips    []time.Time
	pendingSkipIdxs []int
	// pause state: while paused the scheduled firing is withheld; Resume
	// re-schedules it displaced by the paused duration.
	paused        bool
	pausedAt      time.Time
	pendingFireAt time.Time
	done          bool
}

// localDur converts a duration measured on the site's local clock to true
// time (a fast clock, rate > 0, finishes a local duration early).
func (s *site) localDur(d time.Duration) time.Duration {
	return time.Duration(float64(d) / (1 + s.spec.Drift))
}

// engine drives all sites over one event queue.
type engine struct {
	cfg    Config
	q      *eventq.Queue
	origin time.Time
	sites  map[string]*site
	order  []string
	result *Result
	err    error
}

// Run executes the distributed presentation and returns the result.
func Run(cfg Config) (*Result, error) { return RunWith(cfg, nil) }

// RunWith executes the distributed presentation with user interactions.
func RunWith(cfg Config, interactions []Interaction) (*Result, error) {
	if len(cfg.Sites) == 0 {
		return nil, ErrNoSites
	}
	if cfg.Mode == 0 {
		cfg.Mode = GlobalClock
	}
	origin := cfg.Origin
	if origin.IsZero() {
		origin = time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	}
	e := &engine{
		cfg:    cfg,
		q:      eventq.New(origin),
		origin: origin,
		sites:  make(map[string]*site),
		result: &Result{FireAt: make(map[string][]time.Time), Mode: cfg.Mode},
	}
	names := make(map[string]bool)
	for _, spec := range cfg.Sites {
		if names[spec.Name] {
			return nil, fmt.Errorf("docpn: duplicate site %q", spec.Name)
		}
		names[spec.Name] = true
		st, err := newSite(spec, cfg.Timeline)
		if err != nil {
			return nil, err
		}
		e.sites[spec.Name] = st
		e.order = append(e.order, spec.Name)
		e.result.FireAt[spec.Name] = make([]time.Time, len(st.net.Transitions))
	}
	for _, ia := range interactions {
		if _, ok := e.sites[ia.Site]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownSite, ia.Site)
		}
	}
	e.result.InteractionLatency = make([]time.Duration, len(interactions))

	// The server broadcasts "start": each site receives its initial token
	// after its control delay.
	for _, name := range e.order {
		st := e.sites[name]
		st.pendingFireAt = origin.Add(st.spec.ControlDelay)
		e.q.After(st.spec.ControlDelay, func() { e.tryFire(st, st.version) })
	}
	// Schedule the interactions: user acts at site → server stamps after
	// the site's uplink delay → broadcast applies at every site after its
	// downlink delay.
	for idx, ia := range interactions {
		idx, ia := idx, ia
		from := e.sites[ia.Site]
		e.q.After(ia.At+from.spec.ControlDelay, func() {
			// Server stamps and broadcasts.
			requested := e.origin.Add(ia.At)
			for _, name := range e.order {
				st := e.sites[name]
				e.q.After(st.spec.ControlDelay, func() {
					switch ia.Kind {
					case Pause:
						e.applyPause(st, requested, idx)
					case Resume:
						e.applyResume(st, requested, idx)
					default:
						e.applySkip(st, requested, idx)
					}
				})
			}
		})
	}
	e.q.Drain()
	if e.err != nil {
		return nil, e.err
	}
	e.result.Finished = true
	for _, name := range e.order {
		if !e.sites[name].done {
			e.result.Finished = false
		}
	}
	return e.result, nil
}

func newSite(spec SiteSpec, tl ocpn.Timeline) (*site, error) {
	net, err := ocpn.Compile(tl)
	if err != nil {
		return nil, fmt.Errorf("docpn: site %q: %w", spec.Name, err)
	}
	// Extend with the interaction place: priority arcs into every
	// transition after t0 (skipping into the un-started presentation is
	// meaningless). A bare interaction arc would let a *later* transition
	// pre-empt before its predecessors fired, so each transition's
	// priority input is the pair {interaction, position}: t_{i-1} emits a
	// position token for t_i, and the paper's AND rule for equal-priority
	// events makes the skip fire exactly the current boundary. This keeps
	// the extended net 1-safe (see TestExtendedNetRemainsSafe).
	if err := net.Base.AddPlace(interactPlace, "user interaction"); err != nil {
		return nil, fmt.Errorf("docpn: %w", err)
	}
	for i, t := range net.Transitions {
		if i == 0 {
			continue
		}
		pos := petri.PlaceID(fmt.Sprintf("p_pos_%d", i))
		if err := net.Base.AddPlace(pos, fmt.Sprintf("position before t%d", i)); err != nil {
			return nil, fmt.Errorf("docpn: %w", err)
		}
		if err := net.Base.AddOutput(net.Transitions[i-1], pos, 1); err != nil {
			return nil, fmt.Errorf("docpn: %w", err)
		}
		if err := net.Base.AddPriorityInput(pos, t, 1); err != nil {
			return nil, fmt.Errorf("docpn: %w", err)
		}
		if err := net.Base.AddPriorityInput(interactPlace, t, 1); err != nil {
			return nil, fmt.Errorf("docpn: %w", err)
		}
	}
	return &site{
		spec:    spec,
		net:     net,
		base:    net.Base,
		marking: net.InitialMarking(),
		sched:   net.DeriveSchedule(),
	}, nil
}

// tryFire attempts to fire the site's next transition, honouring segment
// locks and, in GlobalClock mode, the clock discipline. Stale events
// (version mismatch) and paused sites are ignored.
func (e *engine) tryFire(st *site, version int) {
	if e.err != nil || st.done || st.paused || version != st.version {
		return
	}
	t := st.net.Transitions[st.next]
	if !st.base.Enabled(st.marking, t) {
		e.err = fmt.Errorf("docpn: site %q: %s not enabled in %s", st.spec.Name, t, st.marking)
		return
	}
	e.fire(st)
}

// fire fires the next transition now, records playouts, and schedules the
// successor's firing.
func (e *engine) fire(st *site) {
	t := st.net.Transitions[st.next]
	ev, err := st.base.Fire(st.marking, t)
	if err != nil {
		e.err = fmt.Errorf("docpn: site %q: %w", st.spec.Name, err)
		return
	}
	now := e.q.Now()
	e.result.FireAt[st.spec.Name][st.next] = now
	// Resolve pending (non-priority) skip latencies at this natural fire.
	for k, reqAt := range st.pendingSkips {
		e.noteInteractionLatency(st.pendingSkipIdxs[k], now.Sub(reqAt))
	}
	st.pendingSkips = st.pendingSkips[:0]
	st.pendingSkipIdxs = st.pendingSkipIdxs[:0]
	// Record playout starts for media segments beginning now.
	var maxLock time.Duration
	for _, pid := range ev.Produced.Places() {
		info := st.net.Places[pid]
		if info == nil {
			continue
		}
		if lock := st.localDur(info.Duration); lock > maxLock {
			maxLock = lock
		}
		if info.IsMedia() {
			e.result.Meter.Add(media.PlayoutRecord{
				Site:      st.spec.Name,
				ObjectID:  info.Object.ID,
				Seq:       info.Segment,
				MediaTime: info.Offset,
				PlayedAt:  now,
			})
		}
	}
	st.next++
	if st.next >= len(st.net.Transitions) {
		st.done = true
		return
	}
	// All inputs of the next transition are outputs of this one (OCPN
	// chains), ready when the longest local lock expires.
	readyAt := now.Add(maxLock)
	var fireAt time.Time
	switch e.cfg.Mode {
	case GlobalClock:
		// The global clock is the highest-priority input (paper §3): the
		// site fires when its *estimate* of global time reaches the
		// scheduled time (shifted by skips) — with estimate error ε that
		// is true time nominal−ε. A site whose local clock runs fast
		// therefore waits; a site already past the schedule fires without
		// delay, truncating laggard segments via the priority rule.
		nominal := e.origin.Add(st.sched.FireAt[st.next] + st.shift)
		fireAt = nominal.Add(-st.spec.SyncErr)
		if fireAt.Before(now) {
			fireAt = now
		}
	case NaiveClock:
		// The site believes its raw local clock is global time: it fires
		// when L(t) = origin + S, with L(t) = t + Offset + Drift·(t−origin),
		// i.e. at true time t = origin + (S − Offset)/(1 + Drift).
		s := st.sched.FireAt[st.next] + st.shift
		trueOffset := time.Duration(float64(s-st.spec.Offset) / (1 + st.spec.Drift))
		fireAt = e.origin.Add(trueOffset)
		if fireAt.Before(now) {
			fireAt = now
		}
	default:
		// OCPN baseline: wait for every input token to unlock locally.
		fireAt = readyAt
	}
	st.pendingFireAt = fireAt
	version := st.version
	e.q.At(fireAt, func() { e.tryFire(st, version) })
}

// applyPause freezes the site: the scheduled firing is invalidated and
// the pause instant remembered so Resume can displace the schedule.
func (e *engine) applyPause(st *site, requested time.Time, idx int) {
	if e.err != nil || st.done || st.paused {
		return
	}
	st.paused = true
	st.pausedAt = e.q.Now()
	st.version++ // cancel the scheduled firing
	e.noteInteractionLatency(idx, e.q.Now().Sub(requested))
}

// applyResume releases a pause: the remaining wait before the next
// firing is preserved and the rest of the schedule shifts by the paused
// duration.
func (e *engine) applyResume(st *site, requested time.Time, idx int) {
	if e.err != nil || st.done || !st.paused {
		return
	}
	now := e.q.Now()
	pausedFor := now.Sub(st.pausedAt)
	remaining := st.pendingFireAt.Sub(st.pausedAt)
	if remaining < 0 {
		remaining = 0
	}
	st.paused = false
	st.shift += pausedFor
	st.pendingFireAt = now.Add(remaining)
	version := st.version
	e.q.At(st.pendingFireAt, func() { e.tryFire(st, version) })
	e.noteInteractionLatency(idx, now.Sub(requested))
}

// applySkip handles a skip broadcast arriving at a site. Skips during a
// pause are ignored (the presentation is frozen).
func (e *engine) applySkip(st *site, requested time.Time, idx int) {
	if e.err != nil || st.done || st.paused {
		return
	}
	now := e.q.Now()
	if e.cfg.PrioritySkip {
		// Inject the interaction token and fire the next transition under
		// the priority rule, preempting in-progress segments.
		st.version++ // cancel the scheduled natural firing
		st.marking.AddBag(petri.NewBag(interactPlace))
		t := st.net.Transitions[st.next]
		if !st.base.Enabled(st.marking, t) {
			e.err = fmt.Errorf("docpn: site %q: skip target %s not enabled", st.spec.Name, t)
			return
		}
		// The schedule shifts earlier by the time the skip saved.
		nominal := e.origin.Add(st.sched.FireAt[st.next] + st.shift)
		if saved := nominal.Sub(now); saved > 0 {
			st.shift -= saved
		}
		e.fire(st)
		e.noteInteractionLatency(idx, now.Sub(requested))
		return
	}
	// Baseline: the skip waits for the natural firing; remember it for
	// latency accounting.
	st.pendingSkips = append(st.pendingSkips, requested)
	st.pendingSkipIdxs = append(st.pendingSkipIdxs, idx)
}

func (e *engine) noteInteractionLatency(idx int, lat time.Duration) {
	if idx < 0 || idx >= len(e.result.InteractionLatency) {
		return
	}
	if lat > e.result.InteractionLatency[idx] {
		e.result.InteractionLatency[idx] = lat
	}
}

// Sites returns the configured site names in order (test helper).
func (r *Result) Sites() []string {
	out := make([]string, 0, len(r.FireAt))
	for name := range r.FireAt {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
