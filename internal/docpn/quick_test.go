package docpn

import (
	"math/rand"
	"testing"
	"time"

	"dmps/internal/media"
	"dmps/internal/ocpn"
)

func randomTimeline(rng *rand.Rand) ocpn.Timeline {
	n := 1 + rng.Intn(4)
	var tl ocpn.Timeline
	for i := 0; i < n; i++ {
		obj := media.Object{
			ID:       string(rune('a' + i)),
			Kind:     media.Video,
			Duration: time.Duration(1+rng.Intn(20)) * 500 * time.Millisecond,
			Rate:     10,
		}
		tl.Items = append(tl.Items, ocpn.ScheduledObject{
			Object: obj,
			Start:  time.Duration(rng.Intn(10)) * 500 * time.Millisecond,
		})
	}
	return tl
}

func randomSites(rng *rand.Rand) []SiteSpec {
	n := 1 + rng.Intn(4)
	names := []string{"s0", "s1", "s2", "s3"}
	var out []SiteSpec
	for i := 0; i < n; i++ {
		out = append(out, SiteSpec{
			Name:         names[i],
			Offset:       time.Duration(rng.Intn(100)-50) * time.Millisecond,
			Drift:        float64(rng.Intn(400)-200) * 1e-6,
			SyncErr:      time.Duration(rng.Intn(10)-5) * time.Millisecond,
			ControlDelay: time.Duration(rng.Intn(100)) * time.Millisecond,
		})
	}
	return out
}

// TestQuickSimulationAlwaysFinishes: every valid (timeline, sites, mode)
// combination runs to completion with a full set of playout records.
func TestQuickSimulationAlwaysFinishes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	modes := []ClockMode{GlobalClock, LocalClock, NaiveClock}
	for iter := 0; iter < 150; iter++ {
		tl := randomTimeline(rng)
		sites := randomSites(rng)
		mode := modes[rng.Intn(len(modes))]
		res, err := Run(Config{Timeline: tl, Sites: sites, Mode: mode})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !res.Finished {
			t.Fatalf("iter %d: unfinished (%v)", iter, mode)
		}
		net, err := ocpn.Compile(tl)
		if err != nil {
			t.Fatal(err)
		}
		wantRecords := len(net.MediaPlaces()) * len(sites)
		if res.Meter.Len() != wantRecords {
			t.Fatalf("iter %d: records = %d, want %d", iter, res.Meter.Len(), wantRecords)
		}
	}
}

// TestQuickGlobalModeSkewBounded: under the global clock, steady-state
// firing spread between sites never exceeds the sync-error spread plus a
// small constant — regardless of delays, offsets and drift.
func TestQuickGlobalModeSkewBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for iter := 0; iter < 100; iter++ {
		tl := randomTimeline(rng)
		sites := randomSites(rng)
		if len(sites) < 2 {
			continue
		}
		res, err := Run(Config{Timeline: tl, Sites: sites, Mode: GlobalClock})
		if err != nil {
			t.Fatal(err)
		}
		var minErr, maxErr time.Duration
		for i, s := range sites {
			if i == 0 || s.SyncErr < minErr {
				minErr = s.SyncErr
			}
			if i == 0 || s.SyncErr > maxErr {
				maxErr = s.SyncErr
			}
		}
		bound := (maxErr - minErr) + 5*time.Millisecond
		// Check spread of every transition after t0.
		nTrans := 0
		for _, fires := range res.FireAt {
			if len(fires) > nTrans {
				nTrans = len(fires)
			}
		}
		for ti := 1; ti < nTrans; ti++ {
			var lo, hi time.Time
			first := true
			for _, fires := range res.FireAt {
				if ti >= len(fires) || fires[ti].IsZero() {
					continue
				}
				if first {
					lo, hi, first = fires[ti], fires[ti], false
					continue
				}
				if fires[ti].Before(lo) {
					lo = fires[ti]
				}
				if fires[ti].After(hi) {
					hi = fires[ti]
				}
			}
			if !first && hi.Sub(lo) > bound {
				t.Fatalf("iter %d: t%d spread %v exceeds bound %v", iter, ti, hi.Sub(lo), bound)
			}
		}
	}
}

// TestQuickSkipNeverBreaksCompletion: a skip at any instant, priority or
// not, still lets every site finish.
func TestQuickSkipNeverBreaksCompletion(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 100; iter++ {
		tl := randomTimeline(rng)
		sites := randomSites(rng)
		skipAt := time.Duration(rng.Intn(int(tl.End()/time.Millisecond))) * time.Millisecond
		res, err := RunWith(
			Config{Timeline: tl, Sites: sites, Mode: GlobalClock, PrioritySkip: rng.Intn(2) == 0},
			[]Interaction{{At: skipAt, Site: sites[0].Name, Kind: Skip}},
		)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !res.Finished {
			t.Fatalf("iter %d: skip at %v broke completion", iter, skipAt)
		}
	}
}
