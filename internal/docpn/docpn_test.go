package docpn

import (
	"errors"
	"testing"
	"time"

	"dmps/internal/media"
	"dmps/internal/ocpn"
	"dmps/internal/petri"
)

func obj(id string, kind media.Kind, dur time.Duration) media.Object {
	o := media.Object{ID: id, Kind: kind, Duration: dur, UnitBytes: 100}
	if kind.Continuous() {
		o.Rate = 10
	}
	return o
}

func lecture() ocpn.Timeline {
	return ocpn.Timeline{Items: []ocpn.ScheduledObject{
		{Object: obj("slide", media.Image, 10*time.Second), Start: 0},
		{Object: obj("narration", media.Audio, 10*time.Second), Start: 0},
		{Object: obj("clip", media.Video, 5*time.Second), Start: 10 * time.Second},
	}}
}

func perfectSites(n int) []SiteSpec {
	specs := make([]SiteSpec, n)
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := range specs {
		specs[i] = SiteSpec{Name: names[i%len(names)]}
	}
	return specs
}

func TestRunRequiresSites(t *testing.T) {
	_, err := Run(Config{Timeline: lecture()})
	if !errors.Is(err, ErrNoSites) {
		t.Errorf("err = %v", err)
	}
}

func TestRunRejectsDuplicateSites(t *testing.T) {
	_, err := Run(Config{Timeline: lecture(), Sites: []SiteSpec{{Name: "a"}, {Name: "a"}}})
	if err == nil {
		t.Error("duplicate sites should be rejected")
	}
}

func TestRunRejectsUnknownInteractionSite(t *testing.T) {
	_, err := RunWith(
		Config{Timeline: lecture(), Sites: perfectSites(1)},
		[]Interaction{{At: time.Second, Site: "ghost", Kind: Skip}},
	)
	if !errors.Is(err, ErrUnknownSite) {
		t.Errorf("err = %v", err)
	}
}

func TestPerfectSitesPerfectSync(t *testing.T) {
	res, err := Run(Config{Timeline: lecture(), Sites: perfectSites(3), Mode: GlobalClock})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Error("not finished")
	}
	if skew := res.Meter.MaxInterSiteSkew(); skew != 0 {
		t.Errorf("skew = %v, want 0 for ideal sites", skew)
	}
	// 3 sites × 3 media segments each.
	if res.Meter.Len() != 9 {
		t.Errorf("playout records = %d, want 9", res.Meter.Len())
	}
}

func TestGlobalClockBoundsSkewUnderDelayAndDrift(t *testing.T) {
	sites := []SiteSpec{
		{Name: "campus", ControlDelay: time.Millisecond, SyncErr: 2 * time.Millisecond, Drift: 40e-6},
		{Name: "home", ControlDelay: 80 * time.Millisecond, SyncErr: -3 * time.Millisecond, Drift: -60e-6},
		{Name: "abroad", ControlDelay: 200 * time.Millisecond, SyncErr: 5 * time.Millisecond, Drift: 100e-6},
	}
	res, err := Run(Config{Timeline: lecture(), Sites: sites, Mode: GlobalClock})
	if err != nil {
		t.Fatal(err)
	}
	skew := res.Meter.MaxInterSiteSkew()
	// Bounded by start-delay spread for t0 only; later transitions are
	// clock-disciplined, so skew at t1/t2 is bounded by sync errors
	// (≤ 8ms spread). The t0 record includes the 200ms delay spread, so
	// check per-transition: drop seq-0 records via inter-media skew on
	// the clip (starts at t1).
	if skew > 250*time.Millisecond {
		t.Errorf("overall skew = %v, absurd", skew)
	}
	// Every site must fire t1 within its sync error of the 10s schedule
	// point and t2 within it of 15s — the clock-discipline bound.
	origin := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	for site, fires := range res.FireAt {
		for i, want := range []time.Duration{10 * time.Second, 15 * time.Second} {
			got := fires[i+1].Sub(origin)
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			if diff > 10*time.Millisecond {
				t.Errorf("site %s t%d fired at %v, want %v ± 10ms", site, i+1, got, want)
			}
		}
	}
}

func TestLocalClockBaselineAccumulatesSkew(t *testing.T) {
	sites := []SiteSpec{
		{Name: "campus", ControlDelay: time.Millisecond},
		{Name: "abroad", ControlDelay: 150 * time.Millisecond},
	}
	resLocal, err := Run(Config{Timeline: lecture(), Sites: sites, Mode: LocalClock})
	if err != nil {
		t.Fatal(err)
	}
	resGlobal, err := Run(Config{Timeline: lecture(), Sites: sites, Mode: GlobalClock})
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: the start-delay difference persists through every
	// transition (≈149ms at every sync point). DOCPN: only t0 differs;
	// later transitions line up.
	localSkew := resLocal.Meter.MaxInterSiteSkew()
	if localSkew < 140*time.Millisecond {
		t.Errorf("local-clock skew = %v, want ≈149ms", localSkew)
	}
	// Compare skew on the clip object (starts at t1, past the start-up
	// transient): global mode should be ~0, local mode ~149ms.
	globalClip := clipSkew(resGlobal)
	localClip := clipSkew(resLocal)
	if globalClip > 5*time.Millisecond {
		t.Errorf("global-clock clip skew = %v, want ~0", globalClip)
	}
	if localClip < 140*time.Millisecond {
		t.Errorf("local-clock clip skew = %v, want ≈149ms", localClip)
	}
}

// clipSkew measures the inter-site spread of transition t1's firing
// instants — the clip's start — past the start-up transient.
func clipSkew(res *Result) time.Duration {
	var times []time.Time
	for _, fires := range res.FireAt {
		if len(fires) > 1 {
			times = append(times, fires[1])
		}
	}
	if len(times) < 2 {
		return 0
	}
	lo, hi := times[0], times[0]
	for _, x := range times[1:] {
		if x.Before(lo) {
			lo = x
		}
		if x.After(hi) {
			hi = x
		}
	}
	return hi.Sub(lo)
}

func TestDriftAloneDivergesWithoutGlobalClock(t *testing.T) {
	// Same delays, different drifts: the local-clock baseline diverges as
	// the presentation progresses; DOCPN holds sites together.
	tl := ocpn.Timeline{Items: []ocpn.ScheduledObject{
		{Object: obj("long", media.Video, 100*time.Second), Start: 0},
		{Object: obj("tail", media.Audio, 10*time.Second), Start: 100 * time.Second},
	}}
	sites := []SiteSpec{
		{Name: "fast", Drift: 500e-6},  // +500 ppm
		{Name: "slow", Drift: -500e-6}, // −500 ppm
	}
	resLocal, err := Run(Config{Timeline: tl, Sites: sites, Mode: LocalClock})
	if err != nil {
		t.Fatal(err)
	}
	resGlobal, err := Run(Config{Timeline: tl, Sites: sites, Mode: GlobalClock})
	if err != nil {
		t.Fatal(err)
	}
	// After 100s, ±500ppm ⇒ ±50ms, so ~100ms spread at t1 locally.
	local := clipSkew(resLocal)
	global := clipSkew(resGlobal)
	if local < 80*time.Millisecond {
		t.Errorf("local drift skew = %v, want ≈100ms", local)
	}
	if global > time.Millisecond {
		t.Errorf("global drift skew = %v, want ~0", global)
	}
}

func TestPrioritySkipFiresImmediately(t *testing.T) {
	sites := []SiteSpec{{Name: "a", ControlDelay: 5 * time.Millisecond}}
	// Skip at 2s into a 10s segment.
	res, err := RunWith(
		Config{Timeline: lecture(), Sites: sites, Mode: GlobalClock, PrioritySkip: true},
		[]Interaction{{At: 2 * time.Second, Site: "a", Kind: Skip}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Error("not finished")
	}
	if len(res.InteractionLatency) != 1 {
		t.Fatalf("latencies = %v", res.InteractionLatency)
	}
	// Latency = uplink + downlink = 10ms, far below the 8s remaining.
	if got := res.InteractionLatency[0]; got > 50*time.Millisecond {
		t.Errorf("priority skip latency = %v, want ~10ms", got)
	}
	// The clip (at t1) must start early: ≈2s+10ms instead of 10s.
	origin := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	t1 := res.FireAt["a"][1].Sub(origin)
	if t1 > 3*time.Second {
		t.Errorf("t1 fired at %v, skip should pull it to ≈2.01s", t1)
	}
	// And the remaining schedule shifts with it: t2 ≈ t1 + 5s.
	t2 := res.FireAt["a"][2].Sub(origin)
	if d := t2 - t1; d < 4900*time.Millisecond || d > 5100*time.Millisecond {
		t.Errorf("t2-t1 = %v, want ≈5s", d)
	}
}

func TestNonPrioritySkipWaitsForSegmentEnd(t *testing.T) {
	sites := []SiteSpec{{Name: "a", ControlDelay: 5 * time.Millisecond}}
	res, err := RunWith(
		Config{Timeline: lecture(), Sites: sites, Mode: GlobalClock, PrioritySkip: false},
		[]Interaction{{At: 2 * time.Second, Site: "a", Kind: Skip}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// The baseline waits out the remaining ~8s of the current segment.
	if got := res.InteractionLatency[0]; got < 7*time.Second {
		t.Errorf("baseline skip latency = %v, want ≈8s", got)
	}
	origin := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	t1 := res.FireAt["a"][1].Sub(origin)
	if t1 < 9*time.Second {
		t.Errorf("t1 fired at %v, baseline must wait for the schedule", t1)
	}
}

func TestPrioritySkipKeepsSitesSynchronized(t *testing.T) {
	sites := []SiteSpec{
		{Name: "a", ControlDelay: 5 * time.Millisecond},
		{Name: "b", ControlDelay: 30 * time.Millisecond},
	}
	res, err := RunWith(
		Config{Timeline: lecture(), Sites: sites, Mode: GlobalClock, PrioritySkip: true},
		[]Interaction{{At: 2 * time.Second, Site: "a", Kind: Skip}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Both sites skip; their t1 instants differ only by downlink spread.
	d := res.FireAt["a"][1].Sub(res.FireAt["b"][1])
	if d < 0 {
		d = -d
	}
	if d > 60*time.Millisecond {
		t.Errorf("post-skip divergence = %v", d)
	}
	if !res.Finished {
		t.Error("not finished")
	}
}

func TestMaxFiringError(t *testing.T) {
	sites := []SiteSpec{{Name: "a", SyncErr: 3 * time.Millisecond}}
	res, err := Run(Config{Timeline: lecture(), Sites: sites, Mode: GlobalClock})
	if err != nil {
		t.Fatal(err)
	}
	net, err := ocpn.Compile(lecture())
	if err != nil {
		t.Fatal(err)
	}
	origin := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	maxErr := res.MaxFiringError(origin, net.DeriveSchedule())
	if maxErr > 4*time.Millisecond {
		t.Errorf("firing error = %v, want ≤ syncErr", maxErr)
	}
}

func TestClockModeString(t *testing.T) {
	if GlobalClock.String() != "global-clock" || LocalClock.String() != "local-clock" {
		t.Error("mode strings")
	}
	if ClockMode(9).String() != "ClockMode(9)" {
		t.Error("unknown mode string")
	}
}

func TestResultSites(t *testing.T) {
	res, err := Run(Config{Timeline: lecture(), Sites: perfectSites(2)})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sites()
	if len(s) != 2 || s[0] != "alpha" || s[1] != "beta" {
		t.Errorf("Sites = %v", s)
	}
}

// TestExtendedNetRemainsSafe analyzes the per-site net after the engine
// wires the interaction place: the presentation must stay 1-safe and
// complete both with and without an injected interaction token.
func TestExtendedNetRemainsSafe(t *testing.T) {
	st, err := newSite(SiteSpec{Name: "x"}, lecture())
	if err != nil {
		t.Fatal(err)
	}
	// Without an interaction token: classic run to the end.
	g, err := st.base.Reachability(st.net.InitialMarking(), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsSafe() {
		t.Error("extended net must stay 1-safe")
	}
	if !g.Reaches(st.net.Finished) {
		t.Error("end unreachable in extended net")
	}
	// With an interaction token present from the start: the priority arcs
	// add early-firing paths but never deadlock or duplicate tokens.
	m2 := st.net.InitialMarking()
	m2.AddBag(markingBag())
	g2, err := st.base.Reachability(m2, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Reaches(st.net.Finished) {
		t.Error("end unreachable with interaction token")
	}
	for key, mk := range g2.States {
		for p, tokens := range mk {
			if p != interactPlace && tokens > 1 {
				t.Fatalf("place %s holds %d tokens in state %s", p, tokens, key)
			}
		}
	}
}

// markingBag builds the single-interaction-token bag.
func markingBag() petri.Bag { return petri.NewBag(interactPlace) }
