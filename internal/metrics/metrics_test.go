package metrics

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dmps_test_total", "test counter")
	g := r.Gauge("dmps_test_depth", "test gauge")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(3.5)
	g.Add(-1)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dmps_test_total counter",
		"dmps_test_total 5",
		"# TYPE dmps_test_depth gauge",
		"dmps_test_depth 2.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram should report NaN quantile")
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.005) // all in the (0.001, 0.01] bucket
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0.001 || p50 > 0.01 {
		t.Fatalf("p50 = %g, want within (0.001, 0.01]", p50)
	}
	h.Observe(100) // overflow bucket
	if got := h.Count(); got != 101 {
		t.Fatalf("count = %d, want 101", got)
	}
	// A quantile landing in +Inf floors at the top finite bound.
	if got := h.Quantile(0.9999); got != 1 {
		t.Fatalf("overflow quantile = %g, want 1", got)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dmps_test_latency_seconds", "test latency", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dmps_test_latency_seconds histogram",
		`dmps_test_latency_seconds_bucket{le="0.01"} 1`,
		`dmps_test_latency_seconds_bucket{le="0.1"} 2`,
		`dmps_test_latency_seconds_bucket{le="+Inf"} 3`,
		"dmps_test_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCollectorSamples(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("dmps_test_peers", "per-peer sends", func() []Sample {
		return []Sample{
			{LabelKey: "peer", LabelValue: "a:1", Value: 7},
			{LabelKey: "peer", LabelValue: "b:2", Value: 9},
		}
	})
	r.CounterFunc("dmps_test_flat", "bare collected total", func() []Sample {
		return []Sample{{Value: 42}}
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`dmps_test_peers{peer="a:1"} 7`,
		`dmps_test_peers{peer="b:2"} 9`,
		"dmps_test_flat 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dmps_dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	r.Counter("dmps_dup", "second")
}

// TestConcurrentScrape hammers every instrument kind from writer
// goroutines while scraping continuously — the -race witness that a
// scrape never tears or blocks an update.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dmps_race_total", "race counter")
	g := r.Gauge("dmps_race_depth", "race gauge")
	h := r.Histogram("dmps_race_latency_seconds", "race latency", nil)
	var depth Gauge
	r.GaugeFunc("dmps_race_collected", "race collector", func() []Sample {
		return []Sample{{LabelKey: "node", LabelValue: "n0", Value: depth.Value()}}
	})
	const writers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				depth.Set(float64(seed*iters + i))
				h.Observe(float64(i%37) / 1000)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for scraping := true; scraping; {
		select {
		case <-done:
			scraping = false
		default:
		}
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Value(); got != writers*iters {
		t.Fatalf("counter = %d, want %d", got, writers*iters)
	}
	if got := h.Count(); got != writers*iters {
		t.Fatalf("histogram count = %d, want %d", got, writers*iters)
	}
}

// TestServeEndpoint boots the HTTP endpoint on a loopback port and
// scrapes it the way cmd/dmps-smoke does.
func TestServeEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("dmps_http_total", "served counter").Add(3)
	ln, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "dmps_http_total 3") {
		t.Fatalf("scrape missing served counter:\n%s", body)
	}
}

// TestQuantileEdgeCases pins the estimator's boundary behaviour: an
// empty histogram and out-of-range q report NaN, a single-bucket
// population interpolates inside that bucket, and samples past the last
// finite bound report the highest bound as a floor rather than a guess.
func TestQuantileEdgeCases(t *testing.T) {
	empty := NewHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0.001, 0.5, 0.999} {
		if v := empty.Quantile(q); !math.IsNaN(v) {
			t.Fatalf("empty Quantile(%v) = %v, want NaN", q, v)
		}
	}

	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(1.5) // all ten samples land in the (1, 2] bucket
	}
	for _, q := range []float64{0, 1, -0.5, 1.5} {
		if v := h.Quantile(q); !math.IsNaN(v) {
			t.Fatalf("Quantile(%v) = %v, want NaN at/out of the 0/1 boundaries", q, v)
		}
	}
	if v := h.Quantile(0.5); !(v > 1 && v <= 2) {
		t.Fatalf("one-bucket Quantile(0.5) = %v, want within (1, 2]", v)
	}

	over := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		over.Observe(100) // overflow: above the last finite bound
	}
	if v := over.Quantile(0.99); v != 4 {
		t.Fatalf("overflow Quantile(0.99) = %v, want last bound 4", v)
	}
}

// TestSnapshotRoundTrip exports a histogram, rebuilds it, and checks
// the rebuilt copy reports identical counts, sum and quantiles — the
// shard-report serialization path, including the JSON hop.
func TestSnapshotRoundTrip(t *testing.T) {
	h := NewHistogram(nil)
	for i := 0; i < 500; i++ {
		h.Observe(0.0001 * float64(i+1))
	}
	h.Observe(100) // one overflow sample
	data, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var s HistogramSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	back, err := FromSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() {
		t.Fatalf("count %d != %d", back.Count(), h.Count())
	}
	if math.Abs(back.Sum()-h.Sum()) > 1e-9 {
		t.Fatalf("sum %v != %v", back.Sum(), h.Sum())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if a, b := back.Quantile(q), h.Quantile(q); a != b {
			t.Fatalf("Quantile(%v): %v != %v", q, a, b)
		}
	}
}

// TestMergeShardsEquivalentToSingle splits one sample population across
// four shard histograms, merges their snapshots, and checks the result
// is indistinguishable from a single histogram fed every sample — the
// property the multi-process SLO merge rests on.
func TestMergeShardsEquivalentToSingle(t *testing.T) {
	single := NewHistogram(nil)
	shards := make([]*Histogram, 4)
	for i := range shards {
		shards[i] = NewHistogram(nil)
	}
	for i := 0; i < 1000; i++ {
		v := 0.0002 * float64(i%317+1)
		single.Observe(v)
		shards[i%4].Observe(v)
	}
	merged := NewHistogram(nil)
	for _, sh := range shards {
		if err := merged.Merge(sh.Snapshot()); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != single.Count() {
		t.Fatalf("count %d != %d", merged.Count(), single.Count())
	}
	if math.Abs(merged.Sum()-single.Sum()) > 1e-9 {
		t.Fatalf("sum %v != %v", merged.Sum(), single.Sum())
	}
	ms, ss := merged.Snapshot(), single.Snapshot()
	for i := range ms.Counts {
		if ms.Counts[i] != ss.Counts[i] {
			t.Fatalf("bucket %d: %d != %d", i, ms.Counts[i], ss.Counts[i])
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if a, b := merged.Quantile(q), single.Quantile(q); a != b {
			t.Fatalf("Quantile(%v): merged %v != single %v", q, a, b)
		}
	}
}

// TestMergeRejectsMismatch pins the merge error paths: different bucket
// layouts, truncated counts, and a count that disagrees with the bucket
// total must all refuse rather than silently misplace samples.
func TestMergeRejectsMismatch(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if err := h.Merge(NewHistogram([]float64{1, 2, 8}).Snapshot()); err == nil {
		t.Fatal("merge across different bounds must error")
	}
	if err := h.Merge(NewHistogram([]float64{1, 2}).Snapshot()); err == nil {
		t.Fatal("merge across different bucket counts must error")
	}
	bad := NewHistogram([]float64{1, 2, 4}).Snapshot()
	bad.Count = 7 // no samples were observed: the total lies
	if err := h.Merge(bad); err == nil {
		t.Fatal("merge of an inconsistent snapshot must error")
	}
	if _, err := FromSnapshot(HistogramSnapshot{}); err == nil {
		t.Fatal("FromSnapshot of an empty snapshot must error")
	}
	if h.Count() != 0 {
		t.Fatalf("rejected merges must not mutate: count = %d", h.Count())
	}
}
