// Package metrics is the fleet observability plane's instrument
// registry: a small, dependency-free set of counters, gauges and
// fixed-bucket histograms exposed in the Prometheus text exposition
// format. The server and the router register their existing counters
// behind scrape-time collectors — SessionStats, CoalesceStats,
// BoardStormStats, the grouplog occupancy/compaction counters, the
// cluster pool's per-peer forward counters, the partition map's
// down-set — so a scrape reads the numbers the system already computes
// and nothing is sampled twice. The swarm harness (internal/swarm)
// records its floor-grant and event-propagation latencies into the same
// Histogram type, so swarm runs and production operators read one
// gauge vocabulary.
//
// Instruments are safe for concurrent use: counters and gauges are
// atomics, histograms use per-bucket atomic counters, and a scrape
// (WritePrometheus) never blocks an Observe. Label support is deliberately
// minimal — one optional label pair per sample, rendered inline — which
// covers the per-peer and per-node series the cluster plane needs
// without growing a label-set engine.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (negative deltas are ignored:
// counters only go up).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultLatencyBuckets are the fixed export buckets latency histograms
// use when the caller does not choose their own: 250µs to ~32s in
// powers of two, in seconds. The range covers a sub-millisecond
// in-process grant as well as a reconnect storm riding out a multi-
// second failover, with enough resolution between to read a p999.
var DefaultLatencyBuckets = func() []float64 {
	out := make([]float64, 0, 18)
	for b := 0.00025; b < 40; b *= 2 {
		out = append(out, b)
	}
	return out
}()

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is ≥ the value, plus a cumulative sum and
// count, matching the Prometheus histogram exposition. Buckets are
// fixed at construction so a scrape is a lock-free read of atomics.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64
	inf    atomic.Int64
	sum    Gauge
	n      atomic.Int64
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds (DefaultLatencyBuckets when nil).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	sort.Float64s(cp)
	return &Histogram{bounds: cp, counts: make([]atomic.Int64, len(cp))}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx < len(h.counts) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the observation total.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// HistogramSnapshot is a histogram's serializable state: the bucket
// bounds and counts, the overflow-bucket count, and the running
// sum/count. It is how a process exports a histogram for another
// process to fold in — the multi-process swarm driver writes one per
// latency histogram into its shard report, and the merge step adds
// shards bucket-wise before computing quantiles. The snapshot is taken
// with atomic per-field reads, not a consistent cut: take it after the
// writers have quiesced (or accept a sample of skew) the way a
// Prometheus scrape does.
type HistogramSnapshot struct {
	// Bounds are the ascending finite bucket upper bounds.
	Bounds []float64 `json:"bounds"`
	// Counts holds one observation count per finite bucket.
	Counts []int64 `json:"counts"`
	// Inf counts observations above the last finite bound.
	Inf int64 `json:"inf,omitempty"`
	// Sum is the observation total.
	Sum float64 `json:"sum"`
	// Count is the number of observations.
	Count int64 `json:"count"`
}

// Snapshot exports the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Inf:    h.inf.Load(),
		Sum:    h.sum.Value(),
		Count:  h.n.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// FromSnapshot rebuilds a histogram from an exported snapshot, so a
// merge process can fold further shards in with Merge and then read
// quantiles. The snapshot must be internally consistent: one count per
// bound, and a total matching the bucket counts.
func FromSnapshot(s HistogramSnapshot) (*Histogram, error) {
	if len(s.Bounds) == 0 {
		return nil, fmt.Errorf("metrics: snapshot has no buckets")
	}
	if len(s.Counts) != len(s.Bounds) {
		return nil, fmt.Errorf("metrics: snapshot has %d counts for %d bounds", len(s.Counts), len(s.Bounds))
	}
	h := NewHistogram(s.Bounds)
	if err := h.Merge(s); err != nil {
		return nil, err
	}
	return h, nil
}

// Merge folds an exported shard snapshot into h: bucket-wise count
// addition plus the sum and count totals. The snapshot's bounds must
// match h's exactly — merging histograms with different bucket layouts
// would silently misplace every sample, so it is an error instead.
func (h *Histogram) Merge(s HistogramSnapshot) error {
	if len(s.Bounds) != len(h.bounds) {
		return fmt.Errorf("metrics: merge bounds mismatch: %d buckets vs %d", len(s.Bounds), len(h.bounds))
	}
	for i, b := range s.Bounds {
		if b != h.bounds[i] {
			return fmt.Errorf("metrics: merge bounds mismatch at bucket %d: %g vs %g", i, b, h.bounds[i])
		}
	}
	if len(s.Counts) != len(s.Bounds) {
		return fmt.Errorf("metrics: snapshot has %d counts for %d bounds", len(s.Counts), len(s.Bounds))
	}
	var total int64
	for i, c := range s.Counts {
		if c < 0 {
			return fmt.Errorf("metrics: negative count %d in bucket %d", c, i)
		}
		total += c
	}
	if s.Inf < 0 || total+s.Inf != s.Count {
		return fmt.Errorf("metrics: snapshot count %d does not match bucket total %d", s.Count, total+s.Inf)
	}
	for i, c := range s.Counts {
		h.counts[i].Add(c)
	}
	h.inf.Add(s.Inf)
	h.sum.Add(s.Sum)
	h.n.Add(s.Count)
	return nil
}

// Quantile estimates the q-quantile (0 < q < 1) by linear
// interpolation within the containing bucket — the same estimate a
// Prometheus histogram_quantile would report from these buckets. It
// returns NaN on an empty histogram; an estimate landing in the
// overflow bucket reports the highest finite bound (a floor, not a
// guess).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.n.Load()
	if total == 0 || q <= 0 || q >= 1 {
		return math.NaN()
	}
	rank := q * float64(total)
	var seen int64
	lower := 0.0
	for i := range h.counts {
		c := h.counts[i].Load()
		if float64(seen+c) >= rank && c > 0 {
			within := (rank - float64(seen)) / float64(c)
			return lower + (h.bounds[i]-lower)*within
		}
		seen += c
		lower = h.bounds[i]
	}
	return h.bounds[len(h.bounds)-1]
}

// Sample is one exported time series value: an optional single label
// pair qualifying the metric name.
type Sample struct {
	// LabelKey/LabelValue qualify the sample ("peer"/"10.0.0.2:4321");
	// both empty means the bare metric.
	LabelKey   string
	LabelValue string
	// Value is the sample's value.
	Value float64
}

// metricKind is the exposition TYPE line of a registered metric.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// metric is one registered instrument or collector.
type metric struct {
	name    string
	help    string
	kind    metricKind
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	histVec *HistogramVec
	collect func() []Sample
}

// HistogramVec is a family of histograms sharing one metric name,
// distinguished by a single label — the labelled-histogram shape the
// per-stage latency plane needs (dmps_stage_seconds{stage="dispatch"})
// without growing a general label-set engine. Children share one bucket
// layout so family members stay mergeable; With is get-or-create and
// safe for concurrent use (a read-lock fast path for the steady state,
// where every child already exists).
type HistogramVec struct {
	labelKey string
	bounds   []float64
	mu       sync.RWMutex
	children map[string]*Histogram
	order    []string
}

// With returns the child histogram for one label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h := v.children[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.children[value]; h != nil {
		return h
	}
	h = NewHistogram(v.bounds)
	v.children[value] = h
	v.order = append(v.order, value)
	return h
}

// Labels returns the family's label values in registration order.
func (v *HistogramVec) Labels() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return append([]string(nil), v.order...)
}

// Registry holds named instruments and renders them in the Prometheus
// text exposition format. Registration is typically done once at
// startup; scrapes run concurrently with updates.
type Registry struct {
	mu       sync.RWMutex
	metrics  []*metric
	names    map[string]bool
	handlers map[string]http.Handler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// register appends a metric, panicking on a duplicate name — metric
// names are a public interface, and two writers racing for one name is
// a programming error worth failing loudly at startup.
func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name] {
		panic(fmt.Sprintf("metrics: duplicate metric %q", m.name))
	}
	r.names[m.name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// Histogram registers and returns a fixed-bucket histogram
// (DefaultLatencyBuckets when bounds is nil).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// HistogramVec registers and returns a single-label histogram family:
// every child shares the metric name and bucket layout and is rendered
// with its label pair next to le ({stage="dispatch",le="0.001"}).
func (r *Registry) HistogramVec(name, help, labelKey string, bounds []float64) *HistogramVec {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	sort.Float64s(cp)
	v := &HistogramVec{labelKey: labelKey, bounds: cp, children: make(map[string]*Histogram)}
	r.register(&metric{name: name, help: help, kind: kindHistogram, histVec: v})
	return v
}

// Has reports whether a metric name is already registered — the guard
// shared helpers (RegisterRuntime) use to stay idempotent when a test
// registers several components into one registry.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.names[name]
}

// RegisterHistogram registers a histogram the caller already owns and
// observes into — how a subsystem that records latencies for its own
// purposes (the replication ack table, the swarm harness) exports them
// without double bookkeeping. Panics on a duplicate name, like every
// registration.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
}

// GaugeFunc registers a scrape-time gauge collector: collect runs on
// every scrape and returns the samples to export (one bare sample, or
// several distinguished by a label pair). This is how the server and
// router export the counters they already keep — SessionStats,
// CoalesceStats, pool and partition state — without double bookkeeping.
func (r *Registry) GaugeFunc(name, help string, collect func() []Sample) {
	r.register(&metric{name: name, help: help, kind: kindGauge, collect: collect})
}

// CounterFunc is GaugeFunc with counter semantics: the collected
// samples are cumulative totals the underlying system already counts.
func (r *Registry) CounterFunc(name, help string, collect func() []Sample) {
	r.register(&metric{name: name, help: help, kind: kindCounter, collect: collect})
}

// fmtValue renders a float the way the exposition format expects.
func fmtValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Collectors run inline; instrument
// reads are atomic, so a scrape observes each series at one instant
// without pausing writers.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.RUnlock()
	var b strings.Builder
	for _, m := range ms {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind)
		switch {
		case m.collect != nil:
			for _, s := range m.collect() {
				if s.LabelKey == "" {
					fmt.Fprintf(&b, "%s %s\n", m.name, fmtValue(s.Value))
				} else {
					fmt.Fprintf(&b, "%s{%s=%q} %s\n", m.name, s.LabelKey, escapeLabel(s.LabelValue), fmtValue(s.Value))
				}
			}
		case m.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Value())
		case m.gauge != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, fmtValue(m.gauge.Value()))
		case m.hist != nil:
			writeHistogram(&b, m.name, "", m.hist)
		case m.histVec != nil:
			vec := m.histVec
			vec.mu.RLock()
			labels := append([]string(nil), vec.order...)
			vec.mu.RUnlock()
			sort.Strings(labels)
			for _, lv := range labels {
				pair := fmt.Sprintf("%s=%q,", vec.labelKey, escapeLabel(lv))
				writeHistogram(&b, m.name, pair, vec.With(lv))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram's exposition lines. labelPrefix
// is empty for a bare histogram, or a rendered `key="value",` pair that
// rides ahead of le in every bucket (and alone on _sum/_count) for a
// HistogramVec child.
func writeHistogram(b *strings.Builder, name, labelPrefix string, h *Histogram) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", name, labelPrefix, fmtValue(bound), cum)
	}
	cum += h.inf.Load()
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labelPrefix, cum)
	if labelPrefix == "" {
		fmt.Fprintf(b, "%s_sum %s\n%s_count %d\n", name, fmtValue(h.Sum()), name, h.Count())
		return
	}
	pair := strings.TrimSuffix(labelPrefix, ",")
	fmt.Fprintf(b, "%s_sum{%s} %s\n%s_count{%s} %d\n", name, pair, fmtValue(h.Sum()), name, pair, h.Count())
}
