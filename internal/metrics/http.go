package metrics

import (
	"net"
	"net/http"
)

// Handler returns an http.Handler serving the registry in the
// Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Serve listens on addr and serves the registry at /metrics until the
// process exits, returning the bound listener so callers can learn the
// port (addr may end in ":0") and close it on shutdown. The scrape
// endpoint is opt-in — cmd/dmps-server and cmd/dmps-router only call
// this when the operator passes -metrics.
func (r *Registry) Serve(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}
