package metrics

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry in the
// Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Handle mounts an extra endpoint on the registry's HTTP listener
// (Serve) — how a subsystem registering its metrics hangs its debug
// surface (/debug/traces) off the same -metrics listener without the
// cmd mains learning about it. Patterns follow http.ServeMux rules;
// registering the same pattern twice keeps the first handler.
func (r *Registry) Handle(pattern string, h http.Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.handlers == nil {
		r.handlers = map[string]http.Handler{}
	}
	if _, ok := r.handlers[pattern]; !ok {
		r.handlers[pattern] = h
	}
}

// Serve listens on addr and serves the registry at /metrics — plus the
// Go profiling surface under /debug/pprof/ and every endpoint mounted
// with Handle — until the process exits, returning the bound listener
// so callers can learn the port (addr may end in ":0") and close it on
// shutdown. The scrape endpoint is opt-in — cmd/dmps-server and
// cmd/dmps-router only call this when the operator passes -metrics.
func (r *Registry) Serve(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	r.mu.RLock()
	for pattern, h := range r.handlers {
		mux.Handle(pattern, h)
	}
	r.mu.RUnlock()
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}
