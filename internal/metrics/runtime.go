package metrics

import "runtime"

// RegisterRuntime registers the Go runtime health gauges every process
// in the fleet exports next to its own plane: goroutine count, live
// heap bytes, and the cumulative GC pause total. Values are read at
// scrape time (GaugeFunc/CounterFunc), so nothing is sampled between
// scrapes. Idempotent per registry — a test wiring several components
// into one registry calls it more than once.
func RegisterRuntime(r *Registry) {
	if r.Has("dmps_goroutines") {
		return
	}
	r.GaugeFunc("dmps_goroutines",
		"Number of live goroutines in this process.",
		func() []Sample {
			return []Sample{{Value: float64(runtime.NumGoroutine())}}
		})
	r.GaugeFunc("dmps_heap_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() []Sample {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return []Sample{{Value: float64(ms.HeapAlloc)}}
		})
	r.CounterFunc("dmps_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time since process start.",
		func() []Sample {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return []Sample{{Value: float64(ms.PauseTotalNs) / 1e9}}
		})
}
