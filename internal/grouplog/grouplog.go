// Package grouplog is the server's sequenced event-log plane: one
// bounded, compacting log of encoded state events per key, where a key
// is a group ID (floor grants/releases/queueing, suspend/resume, board
// operations, mode switches) or a member's private event log
// (invitations). Every state broadcast is appended here first — the
// append assigns the event its per-key GSeq and its per-(key, class)
// CSeq, which the caller stamps into the wire bytes — and the same
// bytes are fanned out and retained for replay. A client that took
// drops, or reconnects with its last-seen sequence numbers, asks for
// the missing suffix of the classes it subscribes to.
//
// Retention is class-keyed, not FIFO: when the log exceeds its
// capacity, entries superseded by a later state-bearing event of the
// same class are dropped first (a state-bearing event fully restates
// its class's state, so everything older than it is redundant for
// catch-up), and only then does the plain suffix shrink from the
// front. Each class's latest state-bearing event is never evicted. The
// payoff is reach: a client stalled past what a FIFO ring would retain
// usually still finds a connectable suffix — the latest floor and
// suspend restatements plus the recent board ops — instead of needing
// a full snapshot.
//
// Logs are sharded behind the lock-striped shard.Map, so appends in one
// group never contend with appends in another — the same partitioning
// discipline as the floor controller and the group registry.
package grouplog

import (
	"sync"

	"dmps/internal/shard"
)

// DefaultCap is the per-key retained-entry capacity when the caller
// does not choose one. 512 events rides out multi-second stalls at
// classroom event rates while bounding retained memory per group; a
// client the retained suffix can no longer connect converges through a
// snapshot instead, so the capacity trades replay reach against
// memory, never correctness.
const DefaultCap = 512

// MemberKey returns the log key of a member's private event log. The
// "~" prefix cannot collide with group IDs that reach the server
// through Join/CreateGroup message bodies only; group logs use the
// group ID itself as the key.
func MemberKey(memberID string) string { return "~" + memberID }

// Plane is the set of per-key logs, sharded for concurrency.
type Plane struct {
	cap  int
	logs *shard.Map[*Log]
}

// NewPlane returns an empty plane whose logs hold cap entries each
// (DefaultCap when cap <= 0).
func NewPlane(cap int) *Plane {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Plane{cap: cap, logs: shard.NewMap[*Log]()}
}

// Cap returns the per-key retained-entry capacity.
func (p *Plane) Cap() int { return p.cap }

// Get returns (creating) the log for a key.
func (p *Plane) Get(key string) *Log {
	return p.logs.GetOrCreate(key, func() *Log { return newLog(p.cap) })
}

// Peek returns the log for a key without creating it.
func (p *Plane) Peek(key string) (*Log, bool) { return p.logs.Get(key) }

// Drop discards a key's log entirely — the reap path for members whose
// session and directory entry have expired.
func (p *Plane) Drop(key string) { p.logs.Delete(key) }

// ClassHeads returns, for every log with at least one assigned
// sequence, its per-class head CSeqs. It is the digest the server
// broadcasts with the connection lights so clients can detect that
// they are behind even when the group has gone quiet — filtered per
// recipient to their groups and subscribed classes before it leaves
// the server.
func (p *Plane) ClassHeads() map[string]map[string]int64 {
	keys := p.logs.Keys()
	out := make(map[string]map[string]int64, len(keys))
	for _, key := range keys {
		if lg, ok := p.logs.Get(key); ok {
			if heads := lg.ClassHeads(); len(heads) > 0 {
				out[key] = heads
			}
		}
	}
	return out
}

// Stats is the plane-wide occupancy and compaction digest the metrics
// endpoint exports: how many logs exist, how many entries they retain
// between them, and the cumulative compaction-run and evicted-entry
// counts. The counters live on the logs themselves — Stats only sums
// what appends already maintain, so scraping adds no bookkeeping to the
// broadcast hot path.
type Stats struct {
	// Logs is the number of live per-key logs.
	Logs int
	// Entries is the total retained entries across all logs.
	Entries int
	// Compactions is the cumulative number of compaction runs.
	Compactions int64
	// Evicted is the cumulative number of entries dropped by compaction.
	Evicted int64
}

// Stats sums the plane's occupancy and compaction counters.
func (p *Plane) Stats() Stats {
	var st Stats
	for _, key := range p.logs.Keys() {
		lg, ok := p.logs.Get(key)
		if !ok {
			continue
		}
		lg.mu.Lock()
		st.Logs++
		st.Entries += len(lg.live())
		st.Compactions += lg.compactions
		st.Evicted += lg.evicted
		lg.mu.Unlock()
	}
	return st
}

// entry is one retained event: its log-wide GSeq, per-class CSeq, the
// class, whether it is state-bearing (a full restatement of its
// class's state) and the encoded wire bytes.
type entry struct {
	gseq  int64
	cseq  int64
	class string
	state bool
	wire  []byte
}

// Log is one key's compacting sequence of encoded events. GSeq numbers
// are 1-based and dense at append time; CSeq numbers are 1-based and
// dense within each class. Compaction may thin the retained set, but
// it never drops a class's latest state-bearing event.
//
// The retained window is entries[start:]; dropping the oldest entry is
// a start++ with storage reclaimed in bulk, so steady-state churn on a
// full log (the broadcast hot path) costs O(1) amortized — the O(n)
// sweep runs only when superseded entries actually exist.
type Log struct {
	mu      sync.Mutex
	cap     int
	entries []entry
	start   int              // entries[start:] is the live window
	head    int64            // highest assigned GSeq (0 when empty)
	cheads  map[string]int64 // class → highest assigned CSeq
	// latestState tracks, per class, the GSeq of the newest
	// state-bearing entry: everything older of the same class is
	// superseded and is compaction's first prey. fresh counts each
	// class's retained not-superseded entries, and superseded the total
	// retained superseded entries — bookkeeping that lets the compactor
	// skip its sweep when there is nothing to sweep.
	latestState map[string]int64
	fresh       map[string]int
	superseded  int
	// compactions counts compactLocked runs and evicted the entries
	// those runs dropped (superseded sweeps and front trims alike) —
	// the observability plane's view of retention pressure: a log whose
	// evicted counter climbs is outliving its replay window.
	compactions int64
	evicted     int64
}

func newLog(cap int) *Log {
	return &Log{
		cap:         cap,
		cheads:      make(map[string]int64),
		latestState: make(map[string]int64),
		fresh:       make(map[string]int),
	}
}

// live returns the retained window. Requires l.mu.
func (l *Log) live() []entry { return l.entries[l.start:] }

// Append assigns the event's sequence numbers, calls encode(gseq, cseq)
// to produce the wire bytes with them stamped in, retains the entry
// (compacting under capacity pressure) and hands the bytes to deliver
// (which may be nil). The lock is held across encode, store and
// deliver so fan-out order equals log order — two concurrent appends
// can never reach a recipient's queue inverted, which is what lets
// clients apply events strictly in sequence. deliver must therefore
// never block (the server's per-session queues drop rather than wait).
// An encode error leaves the log untouched.
func (l *Log) Append(class string, state bool, encode func(gseq, cseq int64) ([]byte, error), deliver func(wire []byte)) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	gseq := l.head + 1
	cseq := l.cheads[class] + 1
	wire, err := encode(gseq, cseq)
	if err != nil {
		return 0, err
	}
	l.head = gseq
	l.cheads[class] = cseq
	if state {
		l.superseded += l.fresh[class]
		l.fresh[class] = 0
		l.latestState[class] = gseq
	}
	l.fresh[class]++
	l.entries = append(l.entries, entry{gseq: gseq, cseq: cseq, class: class, state: state, wire: wire})
	if len(l.live()) > l.cap {
		l.compactLocked()
	}
	if deliver != nil {
		deliver(wire)
	}
	return gseq, nil
}

// AppendRaw installs an already-stamped event — the cluster takeover
// path, where an adopting node replays a partition's replicated log
// suffix into its own plane so clients' per-class cursors keep counting
// across the handoff. The sequence numbers come from the original
// owner's append; entries must arrive in GSeq order (out-of-order or
// duplicate installs are dropped). Nothing is delivered: adoption
// restores retention and heads, and clients pull what they miss through
// the ordinary backfill path.
func (l *Log) AppendRaw(gseq, cseq int64, class string, state bool, wire []byte) {
	if gseq <= 0 || class == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if gseq <= l.head {
		return
	}
	l.head = gseq
	if cseq > l.cheads[class] {
		l.cheads[class] = cseq
	}
	if state {
		l.superseded += l.fresh[class]
		l.fresh[class] = 0
		l.latestState[class] = gseq
	}
	l.fresh[class]++
	l.entries = append(l.entries, entry{gseq: gseq, cseq: cseq, class: class, state: state, wire: wire})
	if len(l.live()) > l.cap {
		l.compactLocked()
	}
}

// compactLocked brings the retained window back under capacity: first
// it drops every entry superseded by a later state-bearing entry of
// the same class (skipped outright when the superseded counter says
// there are none — the broadcast hot path must not pay a sweep per
// append), then — if still over — trims from the front, skipping each
// class's latest state-bearing entry (those are the anchors a
// far-behind client converges from). Requires l.mu.
func (l *Log) compactLocked() {
	l.compactions++
	before := len(l.live())
	defer func() { l.evicted += int64(before - len(l.live())) }()
	if l.superseded > 0 {
		prev := l.entries
		kept := l.entries[:0]
		for _, e := range l.live() {
			if e.gseq < l.latestState[e.class] {
				continue // superseded: a newer full restatement exists
			}
			kept = append(kept, e)
		}
		// Zero the dropped tail so the evicted wire bytes are released
		// now, not when a future append happens to overwrite the slot.
		for i := len(kept); i < len(prev); i++ {
			prev[i] = entry{}
		}
		l.entries = kept
		l.start = 0
		l.superseded = 0
	}
	for len(l.live()) > l.cap {
		// Evict the oldest non-anchor entry. It is almost always at (or
		// within a few anchors of) the front, so this is a start bump,
		// not a rebuild. No superseded entries exist here (swept above),
		// so every eviction debits fresh.
		idx := -1
		for i, e := range l.live() {
			if !(e.state && e.gseq == l.latestState[e.class]) {
				idx = i
				break
			}
		}
		if idx < 0 {
			// Only anchors remain: keep them all — the bound is soft by
			// at most the number of classes.
			return
		}
		l.fresh[l.live()[idx].class]--
		// Shift the idx leading anchors right one slot (idx is bounded
		// by the number of classes) and bump start: the eviction is
		// O(classes), never a rebuild.
		at := l.start + idx
		copy(l.entries[l.start+1:at+1], l.entries[l.start:at])
		l.entries[l.start] = entry{} // release the wire bytes
		l.start++
	}
	// Reclaim the dead prefix in bulk once it dominates the backing
	// array: one copy per ~cap front drops keeps eviction O(1) amortized
	// without the slice growing forever.
	if l.start > l.cap {
		n := copy(l.entries, l.entries[l.start:])
		l.entries = l.entries[:n]
		l.start = 0
	}
}

// Len returns the number of retained entries — the log's ring
// occupancy, at most Cap plus the soft anchor overhang.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.live())
}

// Head returns the highest assigned GSeq (0 when empty).
func (l *Log) Head() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// ClassHeads returns the highest assigned CSeq per class.
func (l *Log) ClassHeads() map[string]int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64, len(l.cheads))
	for c, h := range l.cheads {
		out[c] = h
	}
	return out
}

// Entry is one retained event in export form: the sequence coordinates
// and wire bytes a migration takeover package or a WAL checkpoint needs
// to re-install the event elsewhere with AppendRaw.
type Entry struct {
	GSeq  int64
	CSeq  int64
	Class string
	State bool
	Wire  []byte
}

// Dump exports the retained window in log order — the live-state source
// for an epoch-versioned migration's takeover package and for WAL
// checkpoints. The wire byte slices are shared, not copied; callers
// must treat them as read-only (every producer in this plane already
// does).
func (l *Log) Dump() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, 0, len(l.live()))
	for _, e := range l.live() {
		out = append(out, Entry{GSeq: e.gseq, CSeq: e.cseq, Class: e.class, State: e.state, Wire: e.wire})
	}
	return out
}

// Keys lists the plane's live log keys.
func (p *Plane) Keys() []string { return p.logs.Keys() }

// Replay emits, in log order, every retained event whose class passes
// the want filter and whose CSeq is beyond the caller's position in
// afters (a class absent from afters counts as position 0). It reports
// the per-class heads and whether the emitted suffix lets the caller
// converge.
//
// Convergence is judged by simulating the client's admission rule over
// the retained entries: a cursor at position p admits an entry with
// CSeq p+1 (exact continuation) or any state-bearing entry beyond p (a
// full restatement the client jumps its cursor onto). A wanted class
// whose simulated cursor cannot reach its head — the connecting
// entries were compacted or trimmed away without a state-bearing
// anchor to jump to — makes the whole replay incomplete: nothing is
// emitted and the caller must send a snapshot instead.
//
// The lock is held across the emits so a concurrent Append cannot fan
// out between (or ahead of) replayed entries; like Append's deliver,
// emit must not block.
func (l *Log) Replay(afters map[string]int64, want func(class string) bool, emit func(wire []byte)) (heads map[string]int64, complete bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	heads = make(map[string]int64, len(l.cheads))
	for c, h := range l.cheads {
		heads[c] = h
	}
	// Entries older than the newest state-bearing entry of their class
	// within the needed suffix are superseded by it — replaying them
	// would only re-derive what that one restatement already says, and
	// a long suffix of restatements could flood the very queue whose
	// drops the caller is repairing. Skip them.
	lastSB := make(map[string]int64)
	for _, e := range l.live() {
		if e.state && want(e.class) && e.cseq > afters[e.class] && e.cseq > lastSB[e.class] {
			lastSB[e.class] = e.cseq
		}
	}
	// walk runs the admission simulation; with emit set it re-sends
	// exactly the entries an in-order client will admit.
	walk := func(emit func(wire []byte)) map[string]int64 {
		cur := make(map[string]int64, len(afters))
		for c, a := range afters {
			cur[c] = a
		}
		for _, e := range l.live() {
			if !want(e.class) || e.cseq <= cur[e.class] || e.cseq < lastSB[e.class] {
				continue
			}
			if e.cseq == cur[e.class]+1 || e.state {
				cur[e.class] = e.cseq
				if emit != nil {
					emit(e.wire)
				}
			}
		}
		return cur
	}
	cur := walk(nil)
	for c, h := range l.cheads {
		if want(c) && cur[c] < h {
			return heads, false
		}
	}
	walk(emit)
	return heads, true
}
