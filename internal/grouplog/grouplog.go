// Package grouplog is the server's sequenced event-log plane: one
// bounded ring log of encoded state events per key, where a key is a
// group ID (floor grants/releases/queueing, suspend/resume, board
// operations, mode switches) or a member's private event log
// (invitations). Every state broadcast is appended here first — the
// append assigns the event its per-key sequence number, which is
// stamped into the wire bytes — and the same bytes are fanned out and
// retained for replay. A client that took drops, or reconnects with its
// last-seen sequence numbers, asks for the missing suffix; when the
// ring has wrapped past the requested position the caller falls back to
// a compact state snapshot instead.
//
// Logs are sharded behind the lock-striped shard.Map, so appends in one
// group never contend with appends in another — the same partitioning
// discipline as the floor controller and the group registry.
package grouplog

import (
	"sync"

	"dmps/internal/shard"
)

// DefaultCap is the per-key ring capacity when the caller does not
// choose one. 512 events rides out multi-second stalls at classroom
// event rates while bounding retained memory per group; a client behind
// by more than the ring converges through a snapshot instead of a
// replay, so the capacity trades replay reach against memory, never
// correctness.
const DefaultCap = 512

// MemberKey returns the log key of a member's private event log. The
// "~" prefix cannot collide with group IDs that reach the server
// through Join/CreateGroup message bodies only; group logs use the
// group ID itself as the key.
func MemberKey(memberID string) string { return "~" + memberID }

// Plane is the set of per-key logs, sharded for concurrency.
type Plane struct {
	cap  int
	logs *shard.Map[*Log]
}

// NewPlane returns an empty plane whose logs hold cap entries each
// (DefaultCap when cap <= 0).
func NewPlane(cap int) *Plane {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Plane{cap: cap, logs: shard.NewMap[*Log]()}
}

// Cap returns the per-key ring capacity.
func (p *Plane) Cap() int { return p.cap }

// Get returns (creating) the log for a key.
func (p *Plane) Get(key string) *Log {
	return p.logs.GetOrCreate(key, func() *Log { return newLog(p.cap) })
}

// Peek returns the log for a key without creating it.
func (p *Plane) Peek(key string) (*Log, bool) { return p.logs.Get(key) }

// Heads returns the head sequence number of every non-empty log, keyed
// as the plane is. It is the digest the server broadcasts with the
// connection lights so clients can detect that they are behind even
// when the group has gone quiet — the repair path that used to need
// per-class server-side bookkeeping.
func (p *Plane) Heads() map[string]int64 {
	keys := p.logs.Keys()
	out := make(map[string]int64, len(keys))
	for _, key := range keys {
		if lg, ok := p.logs.Get(key); ok {
			if head := lg.Head(); head > 0 {
				out[key] = head
			}
		}
	}
	return out
}

// Log is one key's ring of sequenced, already-encoded events. Sequence
// numbers are 1-based and dense; the ring retains the most recent cap
// of them.
type Log struct {
	mu   sync.Mutex
	ring [][]byte // slot (seq-1) % cap holds the event with that seq
	head int64    // highest assigned sequence number (0 when empty)
}

func newLog(cap int) *Log { return &Log{ring: make([][]byte, cap)} }

// Append assigns the next sequence number, calls encode(seq) to produce
// the wire bytes with that number stamped in, stores them in the ring
// and hands them to deliver (which may be nil). The lock is held across
// encode, store and deliver so fan-out order equals log order — two
// concurrent appends can never reach a recipient's queue inverted,
// which is what lets clients apply events strictly in sequence. deliver
// must therefore never block (the server's per-session queues drop
// rather than wait). An encode error leaves the log untouched.
func (l *Log) Append(encode func(seq int64) ([]byte, error), deliver func(seq int64, wire []byte)) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.head + 1
	wire, err := encode(seq)
	if err != nil {
		return 0, err
	}
	l.ring[(seq-1)%int64(len(l.ring))] = wire
	l.head = seq
	if deliver != nil {
		deliver(seq, wire)
	}
	return seq, nil
}

// Head returns the highest assigned sequence number (0 when empty).
func (l *Log) Head() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// Replay emits every retained event with sequence number > after, in
// order, and reports the current head and whether the suffix was
// complete. complete == false means the ring has wrapped past after+1 —
// the oldest retained event no longer connects to the caller's position
// — and nothing is emitted: the caller must send a snapshot instead.
// The lock is held across the emits so a concurrent Append cannot fan
// out between (or ahead of) replayed entries; like Append's deliver,
// emit must not block.
func (l *Log) Replay(after int64, emit func(seq int64, wire []byte)) (head int64, complete bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after >= l.head {
		return l.head, true
	}
	oldest := l.head - int64(len(l.ring)) + 1
	if oldest < 1 {
		oldest = 1
	}
	if after+1 < oldest {
		return l.head, false
	}
	for seq := after + 1; seq <= l.head; seq++ {
		emit(seq, l.ring[(seq-1)%int64(len(l.ring))])
	}
	return l.head, true
}
