package grouplog

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
)

// all is the class filter that wants everything.
func all(string) bool { return true }

// only wants a single class.
func only(class string) func(string) bool {
	return func(c string) bool { return c == class }
}

// appendClass appends n events of one class whose wire bytes are
// "class:cseq", so replays can be checked for order and density. state
// marks them state-bearing.
func appendClass(t testing.TB, lg *Log, class string, state bool, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := lg.Append(class, state, func(_, cseq int64) ([]byte, error) {
			return []byte(class + ":" + strconv.FormatInt(cseq, 10)), nil
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAppendAssignsDenseSeqsAndDelivers(t *testing.T) {
	lg := newLog(4)
	var delivered []string
	for i := 1; i <= 3; i++ {
		gseq, err := lg.Append("board", false, func(gseq, cseq int64) ([]byte, error) {
			if gseq != int64(i) || cseq != int64(i) {
				t.Errorf("append %d numbered (%d, %d)", i, gseq, cseq)
			}
			return []byte(strconv.FormatInt(cseq, 10)), nil
		}, func(wire []byte) {
			delivered = append(delivered, string(wire))
		})
		if err != nil {
			t.Fatal(err)
		}
		if gseq != int64(i) {
			t.Fatalf("gseq = %d, want %d", gseq, i)
		}
	}
	if lg.Head() != 3 || len(delivered) != 3 {
		t.Fatalf("head = %d, delivered = %v", lg.Head(), delivered)
	}
	if heads := lg.ClassHeads(); heads["board"] != 3 {
		t.Fatalf("class heads = %v", heads)
	}
	// GSeq is log-wide, CSeq per class: a second class starts at 1.
	if _, err := lg.Append("floor", true, func(gseq, cseq int64) ([]byte, error) {
		if gseq != 4 || cseq != 1 {
			t.Errorf("cross-class append numbered (%d, %d), want (4, 1)", gseq, cseq)
		}
		return []byte("f"), nil
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendEncodeErrorLeavesLogUntouched(t *testing.T) {
	lg := newLog(4)
	appendClass(t, lg, "board", false, 2)
	if _, err := lg.Append("board", false, func(int64, int64) ([]byte, error) {
		return nil, fmt.Errorf("boom")
	}, nil); err == nil {
		t.Fatal("encode error not surfaced")
	}
	if lg.Head() != 2 || lg.ClassHeads()["board"] != 2 {
		t.Fatalf("log moved after failed append: head %d, cheads %v", lg.Head(), lg.ClassHeads())
	}
	appendClass(t, lg, "board", false, 1)
	if lg.Head() != 3 {
		t.Fatalf("head = %d after recovery append", lg.Head())
	}
}

func TestReplaySuffixAndTrim(t *testing.T) {
	lg := newLog(4)
	appendClass(t, lg, "board", false, 10) // retains board 7..10

	// Caught-up caller: nothing to emit, complete.
	heads, complete := lg.Replay(map[string]int64{"board": 10}, all,
		func([]byte) { t.Error("emitted at head") })
	if heads["board"] != 10 || !complete {
		t.Fatalf("at-head replay = (%v, %v)", heads, complete)
	}

	// In-window suffix replays in order.
	var got []string
	_, complete = lg.Replay(map[string]int64{"board": 7}, all, func(wire []byte) {
		got = append(got, string(wire))
	})
	if !complete {
		t.Fatal("suffix replay incomplete")
	}
	if want := []string{"board:8", "board:9", "board:10"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}

	// The oldest retained event is 7: after=6 still connects…
	if _, complete = lg.Replay(map[string]int64{"board": 6}, all, func([]byte) {}); !complete {
		t.Fatal("after=6 should still connect")
	}
	// …but after=5 was trimmed out; nothing may be emitted.
	if _, complete = lg.Replay(map[string]int64{"board": 5}, all,
		func([]byte) { t.Error("emitted past trim") }); complete {
		t.Fatal("trimmed replay should be incomplete")
	}
}

// TestCompactionRetainsLatestStatePerClass: under capacity pressure the
// log drops events superseded by a newer state-bearing event of their
// class, and keeps each class's latest state-bearing event no matter
// how old — so a client far behind still connects by jumping onto it.
func TestCompactionRetainsLatestStatePerClass(t *testing.T) {
	lg := newLog(6)
	appendClass(t, lg, "floor", true, 5)   // floor 1..5, each a restatement
	appendClass(t, lg, "suspend", true, 2) // suspend 1..2
	appendClass(t, lg, "board", false, 10) // board churn forces compaction

	// Superseded floor/suspend events are gone; the latest restatement
	// of each class survives, plus the trimmed board suffix. A client
	// current through board op 6 connects everything: the state classes
	// by jumping onto their anchors, the board by exact continuation.
	var got []string
	_, complete := lg.Replay(map[string]int64{"board": 6}, all, func(wire []byte) {
		got = append(got, string(wire))
	})
	if !complete {
		t.Fatalf("replay should connect via state anchors; retained %v", got)
	}
	want := []string{"floor:5", "suspend:2", "board:7", "board:8", "board:9", "board:10"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("retained %v, want %v", got, want)
	}

	// A client current on board but stale on floor converges from the
	// floor anchor alone.
	got = nil
	_, complete = lg.Replay(map[string]int64{"floor": 1, "board": 10}, only("floor"), func(wire []byte) {
		got = append(got, string(wire))
	})
	if !complete || fmt.Sprint(got) != fmt.Sprint([]string{"floor:5"}) {
		t.Fatalf("floor catch-up = (%v, %v)", got, complete)
	}

	// Board ops are not state-bearing: a client whose board cursor
	// predates the retained suffix cannot connect and must snapshot.
	if _, complete = lg.Replay(map[string]int64{"board": 2}, only("board"), func([]byte) {}); complete {
		t.Fatal("board gap must force the snapshot fallback")
	}
}

// TestClassFilterSkipsUnwantedClasses: replay emits only wanted
// classes, unwanted classes never affect completeness, and a run of
// state-bearing restatements collapses to its newest member — replaying
// superseded restatements would only flood the queue being repaired.
func TestClassFilterSkipsUnwantedClasses(t *testing.T) {
	lg := newLog(16)
	appendClass(t, lg, "board", false, 4)
	appendClass(t, lg, "floor", true, 2)
	var got []string
	_, complete := lg.Replay(map[string]int64{}, only("floor"), func(wire []byte) {
		got = append(got, string(wire))
	})
	if !complete || fmt.Sprint(got) != fmt.Sprint([]string{"floor:2"}) {
		t.Fatalf("filtered replay = (%v, %v)", got, complete)
	}
}

func TestPlaneKeysAndClassHeads(t *testing.T) {
	p := NewPlane(8)
	if p.Cap() != 8 {
		t.Fatalf("cap = %d", p.Cap())
	}
	appendClass(t, p.Get("class"), "board", false, 3)
	appendClass(t, p.Get(MemberKey("alice#1")), "invite", false, 1)
	p.Get("idle") // created but empty: must not appear in the digest
	heads := p.ClassHeads()
	if len(heads) != 2 || heads["class"]["board"] != 3 || heads[MemberKey("alice#1")]["invite"] != 1 {
		t.Fatalf("heads = %v", heads)
	}
	if _, ok := p.Peek("never"); ok {
		t.Fatal("Peek created a log")
	}
	p.Drop("class")
	if _, ok := p.Peek("class"); ok {
		t.Fatal("Drop left the log behind")
	}
	if NewPlane(0).Cap() != DefaultCap {
		t.Fatalf("default cap = %d", NewPlane(0).Cap())
	}
}

// TestConcurrentAppendBackfillChurn is the -race witness for the log
// plane: writers append to a handful of keys while readers replay
// suffixes and poll heads. Every complete replay must observe an
// admissible, in-order suffix — the lock held across append+deliver
// and across replay emits is exactly what makes that true.
func TestConcurrentAppendBackfillChurn(t *testing.T) {
	p := NewPlane(32)
	keys := []string{"g1", "g2", MemberKey("m#1")}
	const writers, perWriter = 4, 200

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		for _, key := range keys {
			writersWG.Add(1)
			go func(key string) {
				defer writersWG.Done()
				lg := p.Get(key)
				for i := 0; i < perWriter; i++ {
					if _, err := lg.Append("board", false, func(_, cseq int64) ([]byte, error) {
						return []byte(strconv.FormatInt(cseq, 10)), nil
					}, func([]byte) {}); err != nil {
						t.Error(err)
						return
					}
				}
			}(key)
		}
	}
	stop := make(chan struct{})
	var readersWG sync.WaitGroup
	for r := 0; r < 3; r++ {
		readersWG.Add(1)
		go func(r int) {
			defer readersWG.Done()
			key := keys[r%len(keys)]
			lg := p.Get(key)
			after := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				last := after
				heads, complete := lg.Replay(map[string]int64{"board": after}, all, func(wire []byte) {
					got, _ := strconv.ParseInt(string(wire), 10, 64)
					if got != last+1 {
						t.Errorf("replay gap: %d after %d", got, last)
					}
					last = got
				})
				if complete {
					after = last
					if after != heads["board"] {
						t.Errorf("complete replay stopped at %d, head %d", last, heads["board"])
					}
				} else {
					after = heads["board"] // snapshot fallback: jump to head
				}
				_ = p.ClassHeads()
			}
		}(r)
	}
	writersWG.Wait()
	close(stop)
	readersWG.Wait()
	for _, key := range keys {
		if head := p.Get(key).Head(); head != int64(writers*perWriter) {
			t.Errorf("%s head = %d, want %d", key, head, writers*perWriter)
		}
	}
}
