package grouplog

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
)

// appendN appends n numbered events whose wire bytes are their decimal
// sequence numbers, so replays can be checked for order and density.
func appendN(t testing.TB, lg *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := lg.Append(func(seq int64) ([]byte, error) {
			return []byte(strconv.FormatInt(seq, 10)), nil
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAppendAssignsDenseSeqsAndDelivers(t *testing.T) {
	lg := newLog(4)
	var delivered []int64
	for i := 1; i <= 3; i++ {
		seq, err := lg.Append(func(seq int64) ([]byte, error) {
			return []byte(strconv.FormatInt(seq, 10)), nil
		}, func(seq int64, wire []byte) {
			if string(wire) != strconv.FormatInt(seq, 10) {
				t.Errorf("deliver got wire %q for seq %d", wire, seq)
			}
			delivered = append(delivered, seq)
		})
		if err != nil {
			t.Fatal(err)
		}
		if seq != int64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if lg.Head() != 3 || len(delivered) != 3 {
		t.Fatalf("head = %d, delivered = %v", lg.Head(), delivered)
	}
}

func TestAppendEncodeErrorLeavesLogUntouched(t *testing.T) {
	lg := newLog(4)
	appendN(t, lg, 2)
	if _, err := lg.Append(func(int64) ([]byte, error) {
		return nil, fmt.Errorf("boom")
	}, nil); err == nil {
		t.Fatal("encode error not surfaced")
	}
	if lg.Head() != 2 {
		t.Fatalf("head moved to %d after failed append", lg.Head())
	}
	appendN(t, lg, 1)
	if lg.Head() != 3 {
		t.Fatalf("head = %d after recovery append", lg.Head())
	}
}

func TestReplaySuffixAndWrap(t *testing.T) {
	lg := newLog(4)
	appendN(t, lg, 10) // ring retains 7..10

	// Caught-up caller: nothing to emit, complete.
	head, complete := lg.Replay(10, func(int64, []byte) { t.Error("emitted at head") })
	if head != 10 || !complete {
		t.Fatalf("at-head replay = (%d, %v)", head, complete)
	}

	// In-window suffix replays in order.
	var got []string
	head, complete = lg.Replay(7, func(seq int64, wire []byte) {
		got = append(got, string(wire))
	})
	if head != 10 || !complete {
		t.Fatalf("suffix replay = (%d, %v)", head, complete)
	}
	if want := []string{"8", "9", "10"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}

	// The oldest retained event is 7: after=6 still connects…
	if _, complete = lg.Replay(6, func(int64, []byte) {}); !complete {
		t.Fatal("after=6 should still be within the ring")
	}
	// …but after=5 has wrapped out; nothing may be emitted.
	head, complete = lg.Replay(5, func(int64, []byte) { t.Error("emitted past wrap") })
	if head != 10 || complete {
		t.Fatalf("wrapped replay = (%d, %v), want (10, false)", head, complete)
	}
}

func TestPlaneKeysAndHeads(t *testing.T) {
	p := NewPlane(8)
	if p.Cap() != 8 {
		t.Fatalf("cap = %d", p.Cap())
	}
	appendN(t, p.Get("class"), 3)
	appendN(t, p.Get(MemberKey("alice#1")), 1)
	p.Get("idle") // created but empty: must not appear in Heads
	heads := p.Heads()
	if len(heads) != 2 || heads["class"] != 3 || heads[MemberKey("alice#1")] != 1 {
		t.Fatalf("heads = %v", heads)
	}
	if _, ok := p.Peek("never"); ok {
		t.Fatal("Peek created a log")
	}
	if NewPlane(0).Cap() != DefaultCap {
		t.Fatalf("default cap = %d", NewPlane(0).Cap())
	}
}

// TestConcurrentAppendBackfillChurn is the -race witness for the log
// plane: writers append to a handful of keys while readers replay
// suffixes and poll heads. Every replay must observe a dense, in-order
// suffix — the lock held across append+deliver and across replay emits
// is exactly what makes that true.
func TestConcurrentAppendBackfillChurn(t *testing.T) {
	p := NewPlane(32)
	keys := []string{"g1", "g2", MemberKey("m#1")}
	const writers, perWriter = 4, 200

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		for _, key := range keys {
			writersWG.Add(1)
			go func(key string) {
				defer writersWG.Done()
				lg := p.Get(key)
				for i := 0; i < perWriter; i++ {
					if _, err := lg.Append(func(seq int64) ([]byte, error) {
						return []byte(strconv.FormatInt(seq, 10)), nil
					}, func(int64, []byte) {}); err != nil {
						t.Error(err)
						return
					}
				}
			}(key)
		}
	}
	stop := make(chan struct{})
	var readersWG sync.WaitGroup
	for r := 0; r < 3; r++ {
		readersWG.Add(1)
		go func(r int) {
			defer readersWG.Done()
			key := keys[r%len(keys)]
			lg := p.Get(key)
			after := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				last := after
				head, complete := lg.Replay(after, func(seq int64, wire []byte) {
					if seq != last+1 {
						t.Errorf("replay gap: %d after %d", seq, last)
					}
					if got, _ := strconv.ParseInt(string(wire), 10, 64); got != seq {
						t.Errorf("slot %d holds wire %q", seq, wire)
					}
					last = seq
				})
				if complete {
					after = last
					if after != head {
						t.Errorf("complete replay stopped at %d, head %d", last, head)
					}
				} else {
					after = head // snapshot fallback: jump to head
				}
				_ = p.Heads()
			}
		}(r)
	}
	writersWG.Wait()
	close(stop)
	readersWG.Wait()
	for _, key := range keys {
		if head := p.Get(key).Head(); head != int64(writers*perWriter) {
			t.Errorf("%s head = %d, want %d", key, head, writers*perWriter)
		}
	}
}
