package grouplog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DefaultSegmentBytes is the WAL segment rotation threshold when the
// caller does not choose one: small enough that a checkpoint reclaims
// space promptly, large enough that rotation stays off the append path
// at classroom event rates.
const DefaultSegmentBytes = 1 << 20

// WAL record kinds. An "event" record is one logged append (the stamped
// wire bytes plus sequence coordinates, replayed via AppendRaw so
// GSeq/CSeq survive a restart exactly); the state kinds carry the
// non-log state a node needs to serve again — rosters, floor blobs,
// member homes, board heads, the ID counter — written on every change
// and restated wholesale by checkpoints.
const (
	WALEvent      = "event"
	WALGroup      = "group"
	WALFloor      = "floor"
	WALMember     = "member"
	WALMemberDrop = "member_drop"
	WALBoardHead  = "board_head"
	WALNextID     = "next_id"
)

// WALRecord is one write-ahead log line. Kind selects the shape:
// WALEvent uses Key/GSeq/CSeq/Class/State/Wire; WALBoardHead and
// WALNextID reuse GSeq as the value; the remaining kinds carry their
// payload in Data (shape owned by the writer, opaque here).
type WALRecord struct {
	Kind  string          `json:"kind"`
	Key   string          `json:"key,omitempty"`
	GSeq  int64           `json:"gseq,omitempty"`
	CSeq  int64           `json:"cseq,omitempty"`
	Class string          `json:"class,omitempty"`
	State bool            `json:"state,omitempty"`
	Wire  json.RawMessage `json:"wire,omitempty"`
	// WireB carries binary-framed wire bytes (base64 on disk): a binary
	// frame is not valid JSON, so it cannot ride the Wire field's raw
	// embedding. Writers use SetWire to route by framing; readers use
	// WireBytes. Exactly one of Wire/WireB is set per event record.
	WireB []byte          `json:"wire_b,omitempty"`
	Data  json.RawMessage `json:"data,omitempty"`
}

// SetWire stores stamped wire bytes in the field matching their framing:
// JSON frames embed raw (human-greppable segments), binary frames go to
// the base64 twin.
func (r *WALRecord) SetWire(wire []byte) {
	if len(wire) > 0 && wire[0] != '{' {
		r.WireB = wire
		r.Wire = nil
		return
	}
	r.Wire = wire
	r.WireB = nil
}

// WireBytes returns the record's wire bytes whichever field carries them.
func (r *WALRecord) WireBytes() []byte {
	if len(r.WireB) > 0 {
		return r.WireB
	}
	return r.Wire
}

// WALStats is the segment store's occupancy digest for the metrics
// endpoint: live segment count and their total bytes.
type WALStats struct {
	Segments int
	Bytes    int64
}

// WAL is an append-only segment store: JSON-line records in numbered
// segment files, rotated at a size threshold, truncated by state
// checkpoints. Appends flush to the OS on every record and fsync on
// rotation and checkpoint — a process crash loses nothing, a host
// crash at most the records since the last sync (the documented
// durability point; replication to R-1 peers covers the gap). Safe for
// concurrent use.
type WAL struct {
	dir      string
	segBytes int64

	mu       sync.Mutex
	file     *os.File
	w        *bufio.Writer
	segIdx   int
	curBytes int64
	oldBytes int64 // completed older segments' total
	segments int
	closed   bool
}

// segName formats a segment file name; segment order is the numeric
// order of these names.
func segName(idx int) string { return fmt.Sprintf("wal-%08d.log", idx) }

// listSegments returns the WAL segment indexes present in dir,
// ascending.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(name, "wal-%08d.log", &idx); err == nil {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out, nil
}

// OpenWAL opens (creating) the segment store in dir. Existing segments
// are preserved — call Replay to install their records — and new
// appends go to a fresh segment after the last. segBytes <= 0 means
// DefaultSegmentBytes.
func OpenWAL(dir string, segBytes int64) (*WAL, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("grouplog: wal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("grouplog: wal: %w", err)
	}
	w := &WAL{dir: dir, segBytes: segBytes, segIdx: -1}
	for _, idx := range segs {
		if fi, err := os.Stat(filepath.Join(dir, segName(idx))); err == nil {
			w.oldBytes += fi.Size()
		}
		w.segments++
		w.segIdx = idx
	}
	return w, nil
}

// Replay reads every record of every live segment, in write order, and
// hands each to fn. A torn final line (a crash mid-append) is skipped;
// a decode error elsewhere aborts. Replay before the first Append.
func (w *WAL) Replay(fn func(WALRecord) error) error {
	w.mu.Lock()
	segs, err := listSegments(w.dir)
	w.mu.Unlock()
	if err != nil {
		return fmt.Errorf("grouplog: wal replay: %w", err)
	}
	for _, idx := range segs {
		f, err := os.Open(filepath.Join(w.dir, segName(idx)))
		if err != nil {
			return fmt.Errorf("grouplog: wal replay: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec WALRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				// A torn tail from a crash mid-write is expected; stop
				// replaying this segment there.
				break
			}
			if err := fn(rec); err != nil {
				f.Close()
				return err
			}
		}
		f.Close()
	}
	return nil
}

// Append writes one record, rotating to a fresh segment past the size
// threshold. The record is flushed to the OS before Append returns.
func (w *WAL) Append(rec WALRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("grouplog: wal append: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("grouplog: wal append: closed")
	}
	if w.file == nil || w.curBytes >= w.segBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := w.w.Write(append(line, '\n'))
	if err == nil {
		err = w.w.Flush()
	}
	if err != nil {
		return fmt.Errorf("grouplog: wal append: %w", err)
	}
	w.curBytes += int64(n)
	return nil
}

// rotateLocked syncs and closes the current segment and opens the next.
// Requires w.mu.
func (w *WAL) rotateLocked() error {
	if w.file != nil {
		w.w.Flush()
		w.file.Sync()
		w.file.Close()
		w.oldBytes += w.curBytes
		w.curBytes = 0
	}
	w.segIdx++
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.segIdx)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("grouplog: wal rotate: %w", err)
	}
	w.file = f
	w.w = bufio.NewWriter(f)
	w.segments++
	return nil
}

// Checkpoint writes the given full-state records into a fresh segment,
// fsyncs it, and deletes every older segment — the periodic snapshot
// that bounds replay work and disk. The records must restate everything
// replay needs (the caller dumps its live planes); appends racing the
// checkpoint land in the new segment after the snapshot, which replay
// applies idempotently on top.
func (w *WAL) Checkpoint(records []WALRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("grouplog: wal checkpoint: closed")
	}
	old, err := listSegments(w.dir)
	if err != nil {
		return fmt.Errorf("grouplog: wal checkpoint: %w", err)
	}
	if err := w.rotateLocked(); err != nil {
		return err
	}
	for _, rec := range records {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("grouplog: wal checkpoint: %w", err)
		}
		n, err := w.w.Write(append(line, '\n'))
		if err != nil {
			return fmt.Errorf("grouplog: wal checkpoint: %w", err)
		}
		w.curBytes += int64(n)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("grouplog: wal checkpoint: %w", err)
	}
	if err := w.file.Sync(); err != nil {
		return fmt.Errorf("grouplog: wal checkpoint: %w", err)
	}
	w.oldBytes = 0
	w.segments = 1
	for _, idx := range old {
		if idx == w.segIdx {
			continue
		}
		os.Remove(filepath.Join(w.dir, segName(idx)))
	}
	return nil
}

// Stats reports the live segment count and total bytes.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{Segments: w.segments, Bytes: w.oldBytes + w.curBytes}
}

// Close flushes, fsyncs and closes the current segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.file != nil {
		w.w.Flush()
		w.file.Sync()
		return w.file.Close()
	}
	return nil
}
