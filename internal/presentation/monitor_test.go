package presentation

import (
	"context"
	"strings"
	"testing"
	"time"

	"dmps/internal/clock"
	"dmps/internal/media"
	"dmps/internal/ocpn"
)

func monitorNet(t *testing.T) *ocpn.Net {
	t.Helper()
	net, err := ocpn.Compile(timeline())
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestMonitorConformantPlayout(t *testing.T) {
	net := monitorNet(t)
	start := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	m := NewMonitor(net, start, 5*time.Millisecond)
	records := []media.PlayoutRecord{
		{Site: "a", ObjectID: "slide", Seq: 0, PlayedAt: start.Add(time.Millisecond)},
		{Site: "a", ObjectID: "clip", Seq: 0, PlayedAt: start.Add(21 * time.Millisecond)},
	}
	m.ObserveAll(records)
	if !m.Conformant() {
		t.Errorf("violations = %v", m.Violations())
	}
	if m.Checked() != 2 {
		t.Errorf("Checked = %d", m.Checked())
	}
}

func TestMonitorFlagsLateStart(t *testing.T) {
	net := monitorNet(t)
	start := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	m := NewMonitor(net, start, 5*time.Millisecond)
	m.Observe(media.PlayoutRecord{
		Site: "b", ObjectID: "clip", Seq: 0,
		PlayedAt: start.Add(80 * time.Millisecond), // scheduled at 20ms
	})
	if m.Conformant() {
		t.Fatal("late start should violate")
	}
	v := m.Violations()[0]
	if v.Delta != 60*time.Millisecond {
		t.Errorf("Delta = %v", v.Delta)
	}
	if !strings.Contains(v.String(), "clip[0]") {
		t.Errorf("String = %q", v.String())
	}
}

func TestMonitorFlagsEarlyStart(t *testing.T) {
	net := monitorNet(t)
	start := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	m := NewMonitor(net, start, time.Millisecond)
	m.Observe(media.PlayoutRecord{
		Site: "a", ObjectID: "clip", Seq: 0,
		PlayedAt: start.Add(10 * time.Millisecond), // 10ms early
	})
	if m.Conformant() {
		t.Fatal("early start should violate")
	}
	if m.Violations()[0].Delta != -10*time.Millisecond {
		t.Errorf("Delta = %v", m.Violations()[0].Delta)
	}
}

func TestMonitorUnknownSegment(t *testing.T) {
	net := monitorNet(t)
	m := NewMonitor(net, time.Now(), time.Second)
	m.Observe(media.PlayoutRecord{Site: "a", ObjectID: "ghost", Seq: 0, PlayedAt: time.Now()})
	if m.Conformant() {
		t.Error("unknown segment should violate")
	}
}

func TestMonitorViolationsSortedBySeverity(t *testing.T) {
	net := monitorNet(t)
	start := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	m := NewMonitor(net, start, 0)
	m.Observe(media.PlayoutRecord{Site: "a", ObjectID: "slide", Seq: 0, PlayedAt: start.Add(3 * time.Millisecond)})
	m.Observe(media.PlayoutRecord{Site: "a", ObjectID: "clip", Seq: 0, PlayedAt: start.Add(20*time.Millisecond - 9*time.Millisecond)})
	vs := m.Violations()
	if len(vs) != 2 {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].ObjectID != "clip" { // |−9ms| > |3ms|
		t.Errorf("order: %v", vs)
	}
}

func TestMonitorCoverage(t *testing.T) {
	net := monitorNet(t)
	start := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	m := NewMonitor(net, start, time.Second)
	records := []media.PlayoutRecord{
		{Site: "a", ObjectID: "slide", Seq: 0, PlayedAt: start},
		{Site: "b", ObjectID: "slide", Seq: 0, PlayedAt: start},
		{Site: "a", ObjectID: "clip", Seq: 0, PlayedAt: start.Add(20 * time.Millisecond)},
		// clip missing at site b
	}
	missing := m.Coverage(records, 2)
	if len(missing) != 1 || missing[0] != "clip[0]" {
		t.Errorf("missing = %v", missing)
	}
	if got := m.Coverage(records, 1); len(got) != 0 {
		t.Errorf("1-site coverage should hold: %v", got)
	}
}

func TestMonitorEndToEndWithPlayer(t *testing.T) {
	net := monitorNet(t)
	est := syncedEstimator(clockReal{})
	p := Player{Site: "mon", Estimator: est}
	start := time.Now().Add(5 * time.Millisecond)
	records, err := p.Play(contextBG(), timeline(), start)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(net, start, 50*time.Millisecond)
	m.ObserveAll(records)
	if !m.Conformant() {
		t.Errorf("live playout should conform: %v", m.Violations())
	}
	if missing := m.Coverage(records, 1); len(missing) != 0 {
		t.Errorf("missing coverage: %v", missing)
	}
}

// clockReal and contextBG keep the end-to-end test terse.
type clockReal = clock.Real

func contextBG() context.Context { return context.Background() }
