package presentation

import (
	"fmt"
	"sort"
	"time"

	"dmps/internal/media"
	"dmps/internal/ocpn"
)

// Violation is one conformance breach observed during playout.
type Violation struct {
	// Site and ObjectID locate the offending segment start.
	Site     string
	ObjectID string
	Segment  int
	// Expected and Actual are the scheduled and observed instants.
	Expected time.Time
	Actual   time.Time
	// Delta = Actual − Expected (positive = late).
	Delta time.Duration
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s/%s[%d]: %+v off schedule", v.Site, v.ObjectID, v.Segment, v.Delta)
}

// Monitor verifies playout records against a derived schedule at run
// time — the paper's "users can dynamically modify and verify different
// kinds of conditions during the presentation". Feed it every
// PlayoutRecord; it flags segment starts that deviate from the schedule
// beyond the tolerance. The zero value is not usable; construct with
// NewMonitor. Monitor is not safe for concurrent use.
type Monitor struct {
	sched      ocpn.Schedule
	placeByKey map[segKey]time.Duration
	start      time.Time
	tolerance  time.Duration
	violations []Violation
	checked    int
}

type segKey struct {
	object  string
	segment int
}

// NewMonitor builds a monitor for a compiled net, the presentation's
// global start instant, and a conformance tolerance.
func NewMonitor(net *ocpn.Net, start time.Time, tolerance time.Duration) *Monitor {
	sched := net.DeriveSchedule()
	byKey := make(map[segKey]time.Duration)
	for _, p := range net.MediaPlaces() {
		byKey[segKey{p.Object.ID, p.Segment}] = sched.SegmentStart[string(p.ID)]
	}
	if tolerance < 0 {
		tolerance = 0
	}
	return &Monitor{
		sched:      sched,
		placeByKey: byKey,
		start:      start,
		tolerance:  tolerance,
	}
}

// Observe checks one playout record. Unknown segments are violations
// with zero Expected (the presentation never scheduled them).
func (m *Monitor) Observe(r media.PlayoutRecord) {
	m.checked++
	offset, ok := m.placeByKey[segKey{r.ObjectID, r.Seq}]
	if !ok {
		m.violations = append(m.violations, Violation{
			Site: r.Site, ObjectID: r.ObjectID, Segment: r.Seq,
			Actual: r.PlayedAt,
		})
		return
	}
	expected := m.start.Add(offset)
	delta := r.PlayedAt.Sub(expected)
	abs := delta
	if abs < 0 {
		abs = -abs
	}
	if abs > m.tolerance {
		m.violations = append(m.violations, Violation{
			Site: r.Site, ObjectID: r.ObjectID, Segment: r.Seq,
			Expected: expected, Actual: r.PlayedAt, Delta: delta,
		})
	}
}

// ObserveAll feeds a batch of records.
func (m *Monitor) ObserveAll(records []media.PlayoutRecord) {
	for _, r := range records {
		m.Observe(r)
	}
}

// Checked reports how many records were observed.
func (m *Monitor) Checked() int { return m.checked }

// Conformant reports whether no violations were observed.
func (m *Monitor) Conformant() bool { return len(m.violations) == 0 }

// Violations returns the breaches sorted by severity (largest |Delta|
// first).
func (m *Monitor) Violations() []Violation {
	out := make([]Violation, len(m.violations))
	copy(out, m.violations)
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].Delta, out[j].Delta
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		return ai > aj
	})
	return out
}

// Coverage reports whether every scheduled media segment was observed at
// least once per expected site count; it returns the missing segment
// keys as "object[segment]" strings for nSites sites.
func (m *Monitor) Coverage(records []media.PlayoutRecord, nSites int) []string {
	counts := make(map[segKey]int)
	for _, r := range records {
		counts[segKey{r.ObjectID, r.Seq}]++
	}
	var missing []string
	for key := range m.placeByKey {
		if counts[key] < nSites {
			missing = append(missing, fmt.Sprintf("%s[%d]", key.object, key.segment))
		}
	}
	sort.Strings(missing)
	return missing
}
