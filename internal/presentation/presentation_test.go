package presentation

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dmps/internal/clock"
	"dmps/internal/media"
	"dmps/internal/ocpn"
	"dmps/internal/protocol"
)

func timeline() ocpn.Timeline {
	return ocpn.Timeline{Items: []ocpn.ScheduledObject{
		{Object: media.Object{ID: "slide", Kind: media.Image, Duration: 20 * time.Millisecond}, Start: 0},
		{Object: media.Object{ID: "clip", Kind: media.Video, Duration: 10 * time.Millisecond, Rate: 30}, Start: 20 * time.Millisecond},
	}}
}

func TestWireRoundTrip(t *testing.T) {
	start := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	body := ToWire(timeline(), start)
	tl, gotStart, err := FromWire(body)
	if err != nil {
		t.Fatal(err)
	}
	if !gotStart.Equal(start) {
		t.Errorf("start = %v", gotStart)
	}
	if len(tl.Items) != 2 || tl.Items[0].Object.ID != "slide" {
		t.Errorf("timeline = %+v", tl)
	}
	if tl.Items[1].Start != 20*time.Millisecond || tl.Items[1].Object.Rate != 30 {
		t.Errorf("clip = %+v", tl.Items[1])
	}
}

func TestFromWireRejectsBadKind(t *testing.T) {
	body := protocol.PresentBody{Objects: []protocol.PresentObject{
		{ID: "x", Kind: "hologram", DurationNanos: 1000},
	}}
	if _, _, err := FromWire(body); !errors.Is(err, ErrBadWire) {
		t.Errorf("err = %v", err)
	}
}

func TestFromWireRejectsInvalidTimeline(t *testing.T) {
	body := protocol.PresentBody{Objects: []protocol.PresentObject{
		{ID: "x", Kind: "image", DurationNanos: 0}, // zero duration
	}}
	if _, _, err := FromWire(body); !errors.Is(err, ErrBadWire) {
		t.Errorf("err = %v", err)
	}
}

// syncedEstimator builds an estimator over base with a perfect sample.
func syncedEstimator(base clock.Clock) *clock.Estimator {
	est := clock.NewEstimator(base, 4)
	est.SyncDirect(clock.NewMaster(base))
	return est
}

func TestPlayerRecordsSegmentsInOrder(t *testing.T) {
	base := clock.Real{}
	p := Player{Site: "alpha", Estimator: syncedEstimator(base)}
	start := base.Now().Add(5 * time.Millisecond)
	var mu sync.Mutex
	var seen []string
	p.OnSegment = func(r media.PlayoutRecord) {
		mu.Lock()
		seen = append(seen, r.ObjectID)
		mu.Unlock()
	}
	records, err := p.Play(context.Background(), timeline(), start)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("records = %+v", records)
	}
	if records[0].ObjectID != "slide" || records[1].ObjectID != "clip" {
		t.Errorf("order: %+v", records)
	}
	gap := records[1].PlayedAt.Sub(records[0].PlayedAt)
	if gap < 15*time.Millisecond || gap > 100*time.Millisecond {
		t.Errorf("clip started %v after slide, want ≈20ms", gap)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Errorf("OnSegment calls = %v", seen)
	}
}

func TestPlayerLateStartFiresImmediately(t *testing.T) {
	base := clock.Real{}
	p := Player{Site: "late", Estimator: syncedEstimator(base)}
	// The global start was 10s ago: every transition is overdue, so the
	// player catches up instantly (the "slower clock fires without
	// delay" rule).
	start := base.Now().Add(-10 * time.Second)
	began := time.Now()
	records, err := p.Play(context.Background(), timeline(), start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(began); elapsed > time.Second {
		t.Errorf("late playout took %v, should catch up immediately", elapsed)
	}
	if len(records) != 2 {
		t.Errorf("records = %d", len(records))
	}
}

func TestPlayerRequiresSync(t *testing.T) {
	p := Player{Site: "x", Estimator: clock.NewEstimator(clock.Real{}, 4)}
	_, err := p.Play(context.Background(), timeline(), time.Now())
	if !errors.Is(err, clock.ErrNoSamples) {
		t.Errorf("err = %v", err)
	}
}

func TestPlayerSkewedClocksConverge(t *testing.T) {
	// Two players with ±20ms-offset local clocks, both synced against the
	// same master: their playout instants in true time should agree to
	// within a few ms (bounded by the sync error, here ~0).
	master := clock.NewMaster(clock.Real{})
	fast := clock.NewDrift(clock.Real{}, 20*time.Millisecond, 0)
	slow := clock.NewDrift(clock.Real{}, -20*time.Millisecond, 0)
	estFast := clock.NewEstimator(fast, 4)
	estFast.SyncDirect(master)
	estSlow := clock.NewEstimator(slow, 4)
	estSlow.SyncDirect(master)

	start := time.Now().Add(10 * time.Millisecond)
	var wg sync.WaitGroup
	results := make([][]media.PlayoutRecord, 2)
	var errs [2]error
	for i, p := range []Player{
		{Site: "fast", Estimator: estFast},
		{Site: "slow", Estimator: estSlow},
	} {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = p.Play(context.Background(), timeline(), start)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("player %d: %v", i, err)
		}
	}
	var meter media.SkewMeter
	for _, recs := range results {
		for _, r := range recs {
			meter.Add(r)
		}
	}
	if skew := meter.MaxInterSiteSkew(); skew > 25*time.Millisecond {
		t.Errorf("inter-site skew = %v despite ±20ms clock offsets", skew)
	}
}

func TestPlayerCancellation(t *testing.T) {
	p := Player{Site: "x", Estimator: syncedEstimator(clock.Real{})}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	long := ocpn.Timeline{Items: []ocpn.ScheduledObject{
		{Object: media.Object{ID: "movie", Kind: media.Image, Duration: time.Hour}, Start: 0},
	}}
	if _, err := p.Play(ctx, long, time.Now().Add(time.Hour)); err == nil {
		t.Error("cancelled Play should error")
	}
}
