// Package presentation orchestrates synchronized multimedia playout over
// the live DMPS stack: the chair compiles a timeline, broadcasts it with
// a global start instant (TPresent), and every client plays it through an
// OCPN player whose synchronization transitions are admitted by the
// estimated global clock — the paper's firing rule applied end to end.
package presentation

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dmps/internal/clock"
	"dmps/internal/media"
	"dmps/internal/ocpn"
	"dmps/internal/protocol"
)

// Conversion errors.
var (
	// ErrBadWire is returned when a PresentBody cannot be converted back
	// to a timeline.
	ErrBadWire = errors.New("presentation: invalid wire body")
)

// ToWire converts a timeline and global start instant into the protocol
// body broadcast by the server.
func ToWire(tl ocpn.Timeline, startGlobal time.Time) protocol.PresentBody {
	body := protocol.PresentBody{StartGlobalNanos: protocol.Nanos(startGlobal)}
	for _, it := range tl.Items {
		body.Objects = append(body.Objects, protocol.PresentObject{
			ID:            it.Object.ID,
			Kind:          it.Object.Kind.String(),
			StartNanos:    int64(it.Start),
			DurationNanos: int64(it.Object.Duration),
			Rate:          it.Object.Rate,
		})
	}
	return body
}

// FromWire converts a received presentation body back into a timeline and
// start instant.
func FromWire(body protocol.PresentBody) (ocpn.Timeline, time.Time, error) {
	var tl ocpn.Timeline
	for _, o := range body.Objects {
		kind, ok := parseKind(o.Kind)
		if !ok {
			return ocpn.Timeline{}, time.Time{}, fmt.Errorf("%w: kind %q", ErrBadWire, o.Kind)
		}
		tl.Items = append(tl.Items, ocpn.ScheduledObject{
			Object: media.Object{
				ID:       o.ID,
				Kind:     kind,
				Duration: time.Duration(o.DurationNanos),
				Rate:     o.Rate,
			},
			Start: time.Duration(o.StartNanos),
		})
	}
	if err := tl.Validate(); err != nil {
		return ocpn.Timeline{}, time.Time{}, fmt.Errorf("%w: %v", ErrBadWire, err)
	}
	return tl, protocol.FromNanos(body.StartGlobalNanos), nil
}

func parseKind(s string) (media.Kind, bool) {
	for _, k := range []media.Kind{media.Text, media.Image, media.Audio, media.Video, media.Annotation, media.Control} {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Player plays a timeline at one site under global-clock discipline.
type Player struct {
	// Site names the player in playout records.
	Site string
	// Estimator supplies the estimated global time (must be synced).
	Estimator *clock.Estimator
	// OnSegment, when set, observes each segment start synchronously.
	OnSegment func(media.PlayoutRecord)
}

// Play compiles the timeline and fires each synchronization transition
// when the estimated global clock reaches its scheduled instant,
// returning the playout records. It honours the paper's admission rule:
// early sites wait for the global clock; late sites fire immediately.
// Cancellation is observed between synchronization transitions, not
// inside a wait — callers needing sharper cancellation should bound their
// boundary gaps.
func (p *Player) Play(ctx context.Context, tl ocpn.Timeline, startGlobal time.Time) ([]media.PlayoutRecord, error) {
	if p.Estimator == nil || !p.Estimator.Synced() {
		return nil, clock.ErrNoSamples
	}
	net, err := ocpn.Compile(tl)
	if err != nil {
		return nil, err
	}
	sched := net.DeriveSchedule()
	marking := net.InitialMarking()
	var records []media.PlayoutRecord
	for i, t := range net.Transitions {
		if err := ctx.Err(); err != nil {
			return records, fmt.Errorf("presentation: cancelled before %s: %w", t, err)
		}
		deadline := startGlobal.Add(sched.FireAt[i])
		if _, err := clock.WaitUntilGlobal(p.Estimator, deadline); err != nil {
			return records, err
		}
		ev, err := net.Base.Fire(marking, t)
		if err != nil {
			return records, fmt.Errorf("presentation: %w", err)
		}
		now, err := p.Estimator.GlobalNow()
		if err != nil {
			return records, err
		}
		for _, pid := range ev.Produced.Places() {
			info := net.Places[pid]
			if info == nil || !info.IsMedia() {
				continue
			}
			rec := media.PlayoutRecord{
				Site:      p.Site,
				ObjectID:  info.Object.ID,
				Seq:       info.Segment,
				MediaTime: info.Offset,
				PlayedAt:  now,
			}
			records = append(records, rec)
			if p.OnSegment != nil {
				p.OnSegment(rec)
			}
		}
	}
	if !net.Finished(marking) {
		return records, fmt.Errorf("presentation: did not reach the end place")
	}
	return records, nil
}
