package client_test

import (
	"errors"
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/floor"
	"dmps/internal/media"
	"dmps/internal/netsim"
	"dmps/internal/protocol"
	"dmps/internal/resource"
	"dmps/internal/server"
)

// fullLab builds a real server over netsim for client-API flow tests.
func fullLab(t *testing.T) (*netsim.Net, *server.Server, *resource.Monitor) {
	t.Helper()
	n := netsim.New(77)
	mon, err := resource.New(resource.MinBound, resource.Thresholds{Alpha: 0.5, Beta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Network:       n,
		Addr:          "srv:1",
		Monitor:       mon,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Close)
	return n, srv, mon
}

func dialTo(t *testing.T, n *netsim.Net, name, role string, prio int) *client.Client {
	t.Helper()
	c, err := client.Dial(client.Config{
		Network: n, Addr: "srv:1", Name: name, Role: role, Priority: prio,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out: %s", what)
}

// TestClientFullSessionFlow drives the entire client API surface through
// a live server: groups, floor modes, token passing, invitations,
// private windows, boards, media streaming, clock sync, suspension
// notices, lights and presentations.
func TestClientFullSessionFlow(t *testing.T) {
	n, srv, mon := fullLab(t)
	teacher := dialTo(t, n, "Teacher", "chair", 5)
	alice := dialTo(t, n, "Alice", "participant", 2)
	carol := dialTo(t, n, "Carol", "participant", 1)

	// Membership.
	for _, c := range []*client.Client{teacher, alice, carol} {
		if err := c.Join("class"); err != nil {
			t.Fatal(err)
		}
	}
	if err := alice.Leave("class"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Join("class"); err != nil {
		t.Fatal(err)
	}

	// Whiteboard + message window.
	if err := teacher.Annotate("class", "draw", "axes"); err != nil {
		t.Fatal(err)
	}
	if err := teacher.Annotate("class", "text", "note"); err != nil {
		t.Fatal(err)
	}
	if err := teacher.Annotate("class", "clear", ""); err != nil {
		t.Fatal(err)
	}
	if err := teacher.Chat("class", "welcome"); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "board sync", func() bool { return alice.Board("class").Seq() == 4 })
	if got := len(alice.Board("class").Strokes()); got != 0 {
		t.Errorf("strokes after clear = %d", got)
	}

	// Equal control + pass + release.
	if _, err := teacher.RequestFloor("class", floor.EqualControl, ""); err != nil {
		t.Fatal(err)
	}
	if err := teacher.PassToken("class", alice.MemberID()); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "holder event", func() bool { return alice.Holder("class") == alice.MemberID() })
	if err := alice.ReleaseFloor("class"); err != nil {
		t.Fatal(err)
	}

	// Back to free access so everyone can send again.
	if _, err := teacher.RequestFloor("class", floor.FreeAccess, ""); err != nil {
		t.Fatal(err)
	}

	// Invitation into a breakout.
	if err := alice.Join("breakout"); err != nil {
		t.Fatal(err)
	}
	invID, err := alice.Invite("breakout", teacher.MemberID())
	if err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "invite event", func() bool { return len(teacher.PendingInvites()) == 1 })
	if err := teacher.ReplyInvite(invID, true); err != nil {
		t.Fatal(err)
	}

	// Direct contact + private window.
	if _, err := alice.RequestFloor("class", floor.DirectContact, teacher.MemberID()); err != nil {
		t.Fatal(err)
	}
	if err := alice.ChatPrivate("class", teacher.MemberID(), "psst"); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "private window", func() bool { return len(teacher.PrivateMessages()) == 1 })

	// Media streaming.
	src, err := media.NewSyntheticSource(media.Object{
		ID: "cam", Kind: media.Video, Duration: 300 * time.Millisecond, Rate: 10, UnitBytes: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent, err := teacher.StreamSource("class", src, false)
	if err != nil || sent != 3 {
		t.Fatalf("stream: sent=%d err=%v", sent, err)
	}
	pollUntil(t, "media stats", func() bool {
		return alice.MediaStats("class")["cam"].Units == 3
	})

	// Clock sync + global now.
	if _, err := teacher.SyncClock(); err != nil {
		t.Fatal(err)
	}
	if _, err := teacher.GlobalNow(); err != nil {
		t.Fatal(err)
	}
	if teacher.Clock() == nil || teacher.Estimator() == nil {
		t.Error("accessors")
	}

	// Degradation: carol (priority 1) gets suspended; she notices.
	mon.Set(resource.Vector{Network: 0.3, CPU: 0.3, Memory: 0.3})
	if _, err := teacher.RequestFloor("class", floor.FreeAccess, ""); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "suspend notice", func() bool { return len(carol.SuspendNotices()) >= 1 })
	if err := carol.Chat("class", "muted?"); !errors.Is(err, client.ErrDenied) {
		t.Errorf("suspended chat: %v", err)
	}
	mon.Set(resource.Vector{Network: 1, CPU: 1, Memory: 1})
	pollUntil(t, "reinstated", func() bool { return carol.Chat("class", "back") == nil })

	// Presentation broadcast (chair only).
	body := srvPresentation()
	if err := teacher.StartPresentation("class", body); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "presentation", func() bool { return alice.Presentation() != nil })
	if got := alice.Presentation(); len(got.Objects) != 1 {
		t.Errorf("presentation = %+v", got)
	}

	// Replay after the fact.
	if err := alice.Replay("class", 0); err != nil {
		t.Fatal(err)
	}

	// Lights.
	pollUntil(t, "lights", func() bool { return len(teacher.Lights()) >= 3 })
	_ = srv
}

func srvPresentation() (b presentationBody) {
	b.StartGlobalNanos = 1
	b.Objects = append(b.Objects, presentationObject{
		ID: "slide", Kind: "image", DurationNanos: int64(time.Second),
	})
	return b
}

// presentationBody aliases the wire types for the helper above.
type presentationBody = protocol.PresentBody

type presentationObject = protocol.PresentObject
