package client_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/floor"
	"dmps/internal/netsim"
	"dmps/internal/server"
	"dmps/internal/transport"
)

// subscribeHarness boots a netsim server and dials n participants (the
// first is a chair), all joined into "class".
func subscribeHarness(t *testing.T, seed int64, n int) []*client.Client {
	t.Helper()
	net := netsim.New(seed)
	// Probes parked out of the way; queue restatements still coalesce on
	// a fast tick of their own so position pushes stay testable.
	srv, err := server.New(server.Config{
		Network: net, Addr: "srv:1",
		ProbeInterval:    time.Hour,
		CoalesceInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Close)
	clients := make([]*client.Client, 0, n)
	for i := 0; i < n; i++ {
		role := "participant"
		if i == 0 {
			role = "chair"
		}
		c, err := client.Dial(client.Config{
			Network: net, Addr: "srv:1",
			Name: fmt.Sprintf("m%d", i), Role: role, Priority: 2,
			Timeout: 3 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		if err := c.Join("class"); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	return clients
}

// drain collects want events from ch, failing the test on timeout.
func drain(t *testing.T, ch <-chan client.Event, want int) []client.Event {
	t.Helper()
	out := make([]client.Event, 0, want)
	deadline := time.After(5 * time.Second)
	for len(out) < want {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("channel closed after %d/%d events", len(out), want)
			}
			out = append(out, ev)
		case <-deadline:
			t.Fatalf("timed out after %d/%d events", len(out), want)
		}
	}
	return out
}

// TestSubscribeOrderingUnderConcurrentGrants asserts that two
// subscriptions on the same client observe an identical event order while
// several peers are granted the floor concurrently.
func TestSubscribeOrderingUnderConcurrentGrants(t *testing.T) {
	clients := subscribeHarness(t, 11, 4)
	watcher, requesters := clients[0], clients[1:]
	chA := watcher.Subscribe(client.FloorEvents)
	chB := watcher.Subscribe() // all kinds; floor events must agree with chA

	const perClient = 5
	var wg sync.WaitGroup
	for _, c := range requesters {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				if _, err := c.RequestFloor("class", floor.FreeAccess, ""); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	want := len(requesters) * perClient
	evsA := drain(t, chA, want)
	key := func(ev client.Event) string {
		return ev.Floor.Member + "/" + ev.Floor.Event
	}
	// chB sees every kind; keep only floor events.
	var evsB []client.Event
	for _, ev := range drain(t, chB, want) {
		if ev.Kind == client.FloorEvents {
			evsB = append(evsB, ev)
		}
	}
	for len(evsB) < want {
		ev := <-chB
		if ev.Kind == client.FloorEvents {
			evsB = append(evsB, ev)
		}
	}
	for i := range evsA {
		if ev := evsA[i]; ev.Kind != client.FloorEvents || ev.Group != "class" || ev.Floor.Event != "granted" {
			t.Fatalf("event %d = %+v", i, ev)
		}
		if key(evsA[i]) != key(evsB[i]) {
			t.Fatalf("subscriber order diverged at %d: %q vs %q", i, key(evsA[i]), key(evsB[i]))
		}
	}
	watcher.Unsubscribe(chA)
	if _, ok := <-chA; ok {
		t.Error("Unsubscribe should close the channel")
	}
}

// TestSubscribeQueuePositions tracks a queued member's pushed position
// updates through grant, queueing and release promotion.
func TestSubscribeQueuePositions(t *testing.T) {
	clients := subscribeHarness(t, 12, 3)
	a, b, c := clients[0], clients[1], clients[2]
	events := c.Subscribe(client.FloorEvents)

	if dec, err := a.RequestFloor("class", floor.EqualControl, ""); err != nil || !dec.Granted {
		t.Fatalf("a: %+v %v", dec, err)
	}
	if dec, err := b.RequestFloor("class", floor.EqualControl, ""); err != nil || dec.QueuePosition != 1 {
		t.Fatalf("b: %+v %v", dec, err)
	}
	if dec, err := c.RequestFloor("class", floor.EqualControl, ""); err != nil || dec.QueuePosition != 2 {
		t.Fatalf("c: %+v %v", dec, err)
	}

	// c observes: a's grant, b's... (queued events go only to the queuer),
	// its own queued at 2, then after a's release: the release broadcast
	// and its promotion to position 1.
	waitFor(t, func() bool { return c.QueuePosition("class") == 2 })
	if err := a.ReleaseFloor("class"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.QueuePosition("class") == 1 })
	if err := b.ReleaseFloor("class"); err != nil {
		t.Fatal(err)
	}
	// c becomes holder via promotion: slot clears without a "granted".
	waitFor(t, func() bool { return c.QueuePosition("class") == 0 })
	waitFor(t, func() bool { return c.Holder("class") == c.MemberID() })

	// The pushed positions for c must be monotonically non-increasing.
	got := []int{}
	timeout := time.After(2 * time.Second)
	for done := false; !done; {
		select {
		case ev := <-events:
			if ev.Floor.Member == c.MemberID() && (ev.Floor.Event == "queued" || ev.Floor.Event == "queue_position") {
				got = append(got, ev.Floor.QueuePosition)
			}
			if ev.Floor.Event == "released" && ev.Floor.Holder == c.MemberID() {
				done = true
			}
		case <-timeout:
			t.Fatalf("positions so far: %v", got)
		}
	}
	if len(got) < 2 || got[0] != 2 || got[len(got)-1] != 1 {
		t.Errorf("positions = %v, want 2 … 1", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] > got[i-1] {
			t.Errorf("positions increased: %v", got)
		}
	}
}

// TestSubscribeDeniedEvent: a denied floor request is pushed to the
// requester's event stream as a "denied" event, not only returned as the
// request error — subscribers watching FloorEvents see every outcome.
func TestSubscribeDeniedEvent(t *testing.T) {
	net := netsim.New(15)
	srv, err := server.New(server.Config{Network: net, Addr: "srv:1", ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Close)
	// Priority 1 is below the token modes' requirement, so the request
	// below is denied outright (neither granted nor queued).
	weak, err := client.Dial(client.Config{
		Network: net, Addr: "srv:1",
		Name: "weak", Role: "participant", Priority: 1,
		Timeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(weak.Close)
	if err := weak.Join("class"); err != nil {
		t.Fatal(err)
	}
	events := weak.Subscribe(client.FloorEvents)
	if _, err := weak.RequestFloor("class", floor.EqualControl, ""); err == nil {
		t.Fatal("low-priority request should be denied")
	}
	ev := drain(t, events, 1)[0]
	if ev.Floor.Event != "denied" || ev.Floor.Member != weak.MemberID() || ev.Group != "class" {
		t.Fatalf("event = %+v, want a denied event for this member", ev)
	}
}

// TestDirectContactGrantKeepsHolderView: a Direct Contact grant runs
// concurrently with the prevailing mode and its broadcast carries no
// holder — it must not clear the other clients' cached floor holder.
func TestDirectContactGrantKeepsHolderView(t *testing.T) {
	clients := subscribeHarness(t, 17, 3)
	a, b, c := clients[0], clients[1], clients[2]
	events := a.Subscribe(client.FloorEvents)
	if dec, err := a.RequestFloor("class", floor.EqualControl, ""); err != nil || !dec.Granted {
		t.Fatalf("a: %+v, %v", dec, err)
	}
	waitFor(t, func() bool { return a.Holder("class") == a.MemberID() })
	if dec, err := b.RequestFloor("class", floor.DirectContact, c.MemberID()); err != nil || !dec.Granted {
		t.Fatalf("b: %+v, %v", dec, err)
	}
	// Wait until a has seen b's direct-contact grant broadcast.
	for {
		if ev := drain(t, events, 1)[0]; ev.Floor.Event == "granted" && ev.Floor.Member == b.MemberID() {
			break
		}
	}
	if got := a.Holder("class"); got != a.MemberID() {
		t.Errorf("holder view = %q, want %q (direct-contact grant must not clobber it)", got, a.MemberID())
	}
}

// TestUnsubscribeDuringEventFlow churns Subscribe/Unsubscribe while the
// read loop is delivering events. Under -race this guards the publish/
// Unsubscribe exclusion: closing a channel mid-fan-out used to panic the
// read loop with a send on a closed channel.
func TestUnsubscribeDuringEventFlow(t *testing.T) {
	clients := subscribeHarness(t, 16, 2)
	watcher, requester := clients[0], clients[1]
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			if _, err := requester.RequestFloor("class", floor.FreeAccess, ""); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for churning := true; churning; {
		ch := watcher.Subscribe(client.FloorEvents)
		watcher.Unsubscribe(ch)
		select {
		case <-done:
			churning = false
		default:
		}
	}
	// The bus still works after the churn.
	ch := watcher.Subscribe(client.FloorEvents)
	if _, err := requester.RequestFloor("class", floor.FreeAccess, ""); err != nil {
		t.Fatal(err)
	}
	if ev := drain(t, ch, 1)[0]; ev.Floor.Event != "granted" {
		t.Fatalf("event = %+v, want granted", ev)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDialTimesOutWithoutWelcome covers the handshake half of the
// request timeout: a server that accepts but never answers hello must
// not block Dial forever.
func TestDialTimesOutWithoutWelcome(t *testing.T) {
	n := netsim.New(13)
	fakeServer(t, n, func(conn transport.Conn) {
		_, _ = conn.Recv() // swallow hello, never answer
		select {}
	})
	start := time.Now()
	_, err := client.Dial(client.Config{
		Network: n, Addr: "fake:1", Name: "x",
		Timeout: 50 * time.Millisecond,
	})
	if !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Dial blocked %v", elapsed)
	}
}
