package client

import (
	"dmps/internal/protocol"
)

// EventKind selects a class of server-pushed events for Subscribe.
type EventKind int

const (
	// FloorEvents: grants, denials, queue-position updates, releases,
	// passes, chair approvals and mode switches (TFloorEvent), plus one
	// synthesized "snapshot" event whenever a catch-up snapshot restates
	// the group floor (Event.Type == TSnapshot).
	FloorEvents EventKind = iota + 1
	// SuspendEvents: Media-Suspend and resume notices (TSuspend/TResume).
	SuspendEvents
	// InviteEvents: sub-group invitations (TInviteEvent).
	InviteEvents
	// LightEvents: connection-light transitions (TLights; delivered only
	// when the table actually changes).
	LightEvents
)

// Event is one server-pushed notification delivered through Subscribe.
// Exactly one of the payload fields matching Kind is set.
type Event struct {
	// Kind classifies the event.
	Kind EventKind
	// Type is the raw protocol message type (distinguishes TSuspend from
	// TResume within SuspendEvents).
	Type protocol.Type
	// Group scopes the event ("" for connection-wide events like lights).
	Group string

	// Floor is set for FloorEvents.
	Floor protocol.FloorEventBody
	// Suspend is set for SuspendEvents.
	Suspend protocol.SuspendBody
	// Invite is set for InviteEvents.
	Invite protocol.InviteEventBody
	// Lights is set for LightEvents: member → "green"/"red".
	Lights map[string]string
}

// subscriberBuffer bounds each subscription channel. The read loop never
// blocks on a slow subscriber: events beyond the buffer are dropped and
// counted (SubscriberStats).
const subscriberBuffer = 256

type subscriber struct {
	ch    chan Event
	kinds map[EventKind]bool // nil means all kinds
	// delivered / dropped count fan-out outcomes, under Client.mu.
	delivered int64
	dropped   int64
}

func (s *subscriber) wants(k EventKind) bool {
	return s.kinds == nil || s.kinds[k]
}

// SubscriberStats is one subscription channel's backpressure snapshot.
type SubscriberStats struct {
	// Kinds are the subscribed event kinds (nil means every kind).
	Kinds []EventKind
	// Delivered counts events handed to the channel; Dropped counts
	// events discarded because the buffer was full.
	Delivered int64
	Dropped   int64
	// Buffered is the number of events waiting in the channel right now;
	// Cap is the channel's capacity.
	Buffered int
	Cap      int
}

// SubscriberStats returns per-subscription backpressure counters, in
// subscription order — the client-side mirror of the server's
// SessionStats. A subscriber that stops draining loses events locally
// (drop-on-full), and those local drops are invisible to the log
// plane's gap detection by construction: sequence admission runs in the
// read loop against the wire stream before fan-out, so a lazy consumer
// can never trigger a TBackfill, only grow its Dropped counter.
func (c *Client) SubscriberStats() []SubscriberStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SubscriberStats, 0, len(c.subs))
	for _, sub := range c.subs {
		st := SubscriberStats{
			Delivered: sub.delivered,
			Dropped:   sub.dropped,
			Buffered:  len(sub.ch),
			Cap:       cap(sub.ch),
		}
		for k := range sub.kinds {
			st.Kinds = append(st.Kinds, k)
		}
		out = append(out, st)
	}
	return out
}

// classOfKind maps a subscription kind to the wire event class its
// events ride on (LightEvents are transient, not logged: no class).
func classOfKind(k EventKind) (string, bool) {
	switch k {
	case FloorEvents:
		return protocol.ClassFloor, true
	case SuspendEvents:
		return protocol.ClassSuspend, true
	case InviteEvents:
		return protocol.ClassInvite, true
	default:
		return "", false
	}
}

// SetEventClasses replaces the session's server-side event-class mask:
// the server stops queuing logged events of classes outside it (zero
// bytes for an unsubscribed class, even under churn), and the polling
// accessors backed by a dropped class go stale. With no arguments the
// mask resets to every class; protocol.ClassNone alone subscribes to
// none. Re-admitting a class converges like a late join: the client
// backfills (or jumps onto the class's next state-bearing restatement).
func (c *Client) SetEventClasses(classes ...string) error {
	msg := protocol.MustNew(protocol.TSubscribe, protocol.SubscribeBody{Classes: classes})
	if _, err := c.request(msg); err != nil {
		return err
	}
	c.mu.Lock()
	c.classes = protocol.ClassMask(classes)
	c.mu.Unlock()
	return nil
}

// widenMask grows the server-side mask to cover the given kinds when
// the current mask excludes any of them (a Subscribe on a class the
// server filters would otherwise wait on a silent channel). Fired from
// Subscribe without blocking on the ack: the mask only ever widens, so
// the races are benign.
func (c *Client) widenMask(kinds []EventKind) {
	c.mu.Lock()
	if c.classes == nil { // already everything
		c.mu.Unlock()
		return
	}
	widened := false
	mask := make(map[string]bool, len(c.classes)+len(kinds))
	for class := range c.classes {
		mask[class] = true
	}
	grow := func(class string) {
		if !mask[class] {
			mask[class] = true
			widened = true
		}
	}
	if len(kinds) == 0 { // subscribe-to-all: the mask must be everything
		for _, class := range protocol.AllClasses {
			grow(class)
		}
	}
	for _, k := range kinds {
		if class, ok := classOfKind(k); ok {
			grow(class)
		}
	}
	if !widened {
		c.mu.Unlock()
		return
	}
	c.classes = mask
	classes := make([]string, 0, len(mask))
	for class := range mask {
		classes = append(classes, class)
	}
	c.mu.Unlock()
	_ = c.send(protocol.MustNew(protocol.TSubscribe, protocol.SubscribeBody{Classes: classes}))
}

// Subscribe returns a channel of server-pushed events. With no arguments
// it delivers every kind; otherwise only the listed kinds. Events are
// delivered in server order. The channel is buffered (256 events); a
// subscriber that stops draining loses the overflow rather than stalling
// the connection's read loop. The channel is closed when the client
// closes or the connection drops. The existing accessors (Holder,
// Lights, PendingInvites, …) remain thin views over the same state.
//
// When the client runs with a narrowed event-class mask (EventClasses /
// SetEventClasses), subscribing to a kind whose class the mask excludes
// widens the mask automatically — the server starts pushing that class
// again and the client converges on it like a late joiner.
func (c *Client) Subscribe(kinds ...EventKind) <-chan Event {
	c.widenMask(kinds)
	sub := &subscriber{ch: make(chan Event, subscriberBuffer)}
	if len(kinds) > 0 {
		sub.kinds = make(map[EventKind]bool, len(kinds))
		for _, k := range kinds {
			sub.kinds[k] = true
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		close(sub.ch)
		return sub.ch
	}
	c.subs = append(c.subs, sub)
	return sub.ch
}

// Unsubscribe detaches a channel obtained from Subscribe and closes it.
// Unknown channels are ignored.
func (c *Client) Unsubscribe(ch <-chan Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, sub := range c.subs {
		if sub.ch == ch {
			c.subs = append(c.subs[:i], c.subs[i+1:]...)
			close(sub.ch)
			return
		}
	}
}

// publish fans an event out to the matching subscribers. It runs on the
// read loop, so delivery order equals server order for every subscriber.
// The whole fan-out holds c.mu: sends are non-blocking, and the lock is
// what makes a concurrent Unsubscribe/closeSubscribers close safe — a
// channel is only ever closed by whoever removes it from c.subs, and
// never while a send is in flight.
func (c *Client) publish(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sub := range c.subs {
		if !sub.wants(ev.Kind) {
			continue
		}
		select {
		case sub.ch <- ev:
			sub.delivered++
		default:
			// Slow subscriber: drop rather than stall the read loop. The
			// drop is counted, and it is purely local — the log cursors
			// already advanced in the read loop, so gap detection never
			// mistakes it for a delivery hole.
			sub.dropped++
		}
	}
}

// closeSubscribers closes every subscription channel; called once when
// the read loop exits. Closing under c.mu excludes a concurrent publish.
func (c *Client) closeSubscribers() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sub := range c.subs {
		close(sub.ch)
	}
	c.subs = nil
}

// QueuePosition returns the client's last known 1-based queue slot in
// the group's floor queue (0 when not queued or already granted). It is
// maintained from pushed floor events.
func (c *Client) QueuePosition(groupID string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queuePos[groupID]
}
