package client_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/floor"
	"dmps/internal/netsim"
	"dmps/internal/protocol"
	"dmps/internal/server"
	"dmps/internal/transport"
)

func TestDialRequiresNetwork(t *testing.T) {
	if _, err := client.Dial(client.Config{}); err == nil {
		t.Error("nil network should fail")
	}
}

func TestDialUnknownAddress(t *testing.T) {
	n := netsim.New(1)
	_, err := client.Dial(client.Config{Network: n, Addr: "nowhere:1", Name: "x"})
	if !errors.Is(err, transport.ErrUnknownAddress) {
		t.Errorf("err = %v", err)
	}
}

// fakeServer accepts one connection and drives it with fn.
func fakeServer(t *testing.T, n *netsim.Net, fn func(transport.Conn)) {
	t.Helper()
	l, err := n.Listen("fake:1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		fn(conn)
	}()
}

func TestDialRejectsGarbageHandshake(t *testing.T) {
	n := netsim.New(2)
	fakeServer(t, n, func(conn transport.Conn) {
		_, _ = conn.Recv()                  // swallow hello
		_ = conn.Send([]byte("not json {")) // garbage welcome
	})
	if _, err := client.Dial(client.Config{Network: n, Addr: "fake:1", Name: "x"}); err == nil {
		t.Error("garbage handshake should fail")
	}
}

func TestDialRejectsWrongWelcomeType(t *testing.T) {
	n := netsim.New(3)
	fakeServer(t, n, func(conn transport.Conn) {
		_, _ = conn.Recv()
		msg := protocol.MustNew(protocol.TChat, protocol.ChatBody{Text: "hi"})
		wire, _ := protocol.Encode(msg)
		_ = conn.Send(wire)
	})
	if _, err := client.Dial(client.Config{Network: n, Addr: "fake:1", Name: "x"}); err == nil {
		t.Error("non-welcome reply should fail")
	}
}

func TestDialServerClosesEarly(t *testing.T) {
	n := netsim.New(4)
	fakeServer(t, n, func(conn transport.Conn) {
		conn.Close()
	})
	if _, err := client.Dial(client.Config{Network: n, Addr: "fake:1", Name: "x"}); err == nil {
		t.Error("closed-before-welcome should fail")
	}
}

// silentServer completes the handshake then ignores every request.
func silentServer(t *testing.T, n *netsim.Net) {
	fakeServer(t, n, func(conn transport.Conn) {
		wire, err := conn.Recv()
		if err != nil {
			return
		}
		msg, err := protocol.Decode(wire)
		if err != nil {
			return
		}
		welcome := protocol.MustNew(protocol.TWelcome, protocol.WelcomeBody{MemberID: "m#1"})
		welcome.Seq = msg.Seq
		out, _ := protocol.Encode(welcome)
		_ = conn.Send(out)
		for {
			if _, err := conn.Recv(); err != nil {
				return
			}
		}
	})
}

func TestRequestTimesOutAgainstSilentServer(t *testing.T) {
	n := netsim.New(5)
	silentServer(t, n)
	c, err := client.Dial(client.Config{
		Network: n, Addr: "fake:1", Name: "x",
		Timeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Join("class"); !errors.Is(err, client.ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestRequestAfterCloseFails(t *testing.T) {
	n := netsim.New(6)
	silentServer(t, n)
	c, err := client.Dial(client.Config{Network: n, Addr: "fake:1", Name: "x", Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
	if err := c.Join("class"); !errors.Is(err, client.ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestRequestUnblocksWhenServerDies(t *testing.T) {
	n := netsim.New(7)
	srv, err := server.New(server.Config{Network: n, Addr: "real:1", ProbeInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	c, err := client.Dial(client.Config{Network: n, Addr: "real:1", Name: "x", Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Kill the server mid-session: in-flight requests must not hang.
	done := make(chan error, 1)
	go func() {
		time.Sleep(10 * time.Millisecond)
		srv.Close()
	}()
	go func() {
		for i := 0; i < 100; i++ {
			if err := c.Join("class"); err != nil {
				done <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Log("server closed after the join loop finished (acceptable)")
		} else if !errors.Is(err, client.ErrClosed) && !errors.Is(err, client.ErrTimeout) && !errors.Is(err, client.ErrDenied) {
			t.Errorf("unexpected error shape: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("request hung after server death")
	}
}

func TestOnEventObservesBroadcasts(t *testing.T) {
	n := netsim.New(8)
	srv, err := server.New(server.Config{Network: n, Addr: "real:1", ProbeInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()

	var mu sync.Mutex
	seen := make(map[protocol.Type]int)
	c, err := client.Dial(client.Config{
		Network: n, Addr: "real:1", Name: "observer",
		OnEvent: func(msg protocol.Message) {
			mu.Lock()
			seen[msg.Type]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Join("class"); err != nil {
		t.Fatal(err)
	}
	if err := c.Chat("class", "hello"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		chats, lights := seen[protocol.TChatEvent], seen[protocol.TLights]
		mu.Unlock()
		if chats >= 1 && lights >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("events not observed: %v", seen)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFloorRequestDecisionFields(t *testing.T) {
	n := netsim.New(9)
	srv, err := server.New(server.Config{Network: n, Addr: "real:1", ProbeInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()
	a, err := client.Dial(client.Config{Network: n, Addr: "real:1", Name: "a", Priority: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.Dial(client.Config{Network: n, Addr: "real:1", Name: "b", Priority: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_ = a.Join("g")
	_ = b.Join("g")
	dec, err := a.RequestFloor("g", floor.EqualControl, "")
	if err != nil || !dec.Granted {
		t.Fatalf("grant: %+v %v", dec, err)
	}
	dec2, err := b.RequestFloor("g", floor.EqualControl, "")
	if err != nil {
		t.Fatalf("queued request should ack: %v", err)
	}
	if dec2.Granted || dec2.QueuePosition != 1 || dec2.Holder != a.MemberID() {
		t.Errorf("dec2 = %+v", dec2)
	}
	if dec2.Reason == "" {
		t.Error("queued decision should carry the busy reason")
	}
}
