package client_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/floor"
	"dmps/internal/netsim"
	"dmps/internal/protocol"
	"dmps/internal/server"
)

// TestSubscriberBackpressureStats drives more floor events at a lazy
// subscriber than its buffer holds: the overflow must be counted in
// SubscriberStats, the events must keep flowing to a diligent
// subscriber, and — the log-plane invariant — the local drops must not
// be mistaken for delivery gaps: no snapshot (the gap repair's
// signature beyond the join-time one) may be triggered.
func TestSubscriberBackpressureStats(t *testing.T) {
	n := netsim.New(31)
	srv, err := server.New(server.Config{Network: n, Addr: "srv:1", ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Close)

	var mu sync.Mutex
	snapshots := 0
	lazyOwner, err := client.Dial(client.Config{
		Network: n, Addr: "srv:1", Name: "watcher", Role: "chair", Priority: 5,
		Timeout: 3 * time.Second,
		OnEvent: func(msg protocol.Message) {
			if msg.Type == protocol.TSnapshot {
				mu.Lock()
				snapshots++
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lazyOwner.Close)
	requester, err := client.Dial(client.Config{
		Network: n, Addr: "srv:1", Name: "req", Role: "participant", Priority: 2,
		Timeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(requester.Close)
	for _, c := range []*client.Client{lazyOwner, requester} {
		if err := c.Join("class"); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	joinSnapshots := snapshots
	mu.Unlock()

	lazy := lazyOwner.Subscribe(client.FloorEvents) // never drained
	diligent := lazyOwner.Subscribe(client.FloorEvents)
	go func() {
		for range diligent {
		}
	}()

	// Each grant/release cycle publishes two floor events; push well
	// past the lazy channel's 256-slot buffer, ending on a grant so the
	// holder cache has a definite final value.
	const grants = 301
	for i := 0; i < grants/2; i++ {
		if _, err := requester.RequestFloor("class", floor.EqualControl, ""); err != nil {
			t.Fatal(err)
		}
		if err := requester.ReleaseFloor("class"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := requester.RequestFloor("class", floor.EqualControl, ""); err != nil {
		t.Fatal(err)
	}
	// Delivery is asynchronous: wait until every event reached the bus.
	waitLong(t, func() bool {
		stats := lazyOwner.SubscriberStats()
		return len(stats) == 2 &&
			stats[0].Delivered+stats[0].Dropped >= grants &&
			stats[1].Delivered+stats[1].Dropped >= grants
	})

	stats := lazyOwner.SubscriberStats()
	lazyStats, diligentStats := stats[0], stats[1]
	if lazyStats.Cap != 256 || lazyStats.Buffered != 256 {
		t.Errorf("lazy subscriber buffer = %d/%d, want full at 256", lazyStats.Buffered, lazyStats.Cap)
	}
	if lazyStats.Delivered != 256 {
		t.Errorf("lazy Delivered = %d, want 256", lazyStats.Delivered)
	}
	if got := lazyStats.Delivered + lazyStats.Dropped; got < grants {
		t.Errorf("lazy delivered+dropped = %d, want ≥ %d", got, grants)
	}
	if diligentStats.Dropped != 0 || diligentStats.Delivered < grants {
		t.Errorf("diligent stats = %+v, want zero drops and ≥ %d delivered", diligentStats, grants)
	}
	if len(lazyStats.Kinds) != 1 || lazyStats.Kinds[0] != client.FloorEvents {
		t.Errorf("kinds = %v", lazyStats.Kinds)
	}

	// The read loop stayed in sequence throughout (holder cache is the
	// last grant), and the local drops triggered no gap repair.
	waitLong(t, func() bool { return lazyOwner.Holder("class") == requester.MemberID() })
	mu.Lock()
	extra := snapshots - joinSnapshots
	mu.Unlock()
	if extra != 0 {
		t.Errorf("%d snapshots after local subscriber drops: gap detection was fooled", extra)
	}
	_ = lazy
}

// waitLong polls a condition with a CI-friendly deadline: this file's
// tests push hundreds of round trips, so the 3s default is too tight
// under a loaded runner.
func waitLong(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReconnectRequiresConnectionLoss: a live client refuses to
// reconnect, and a Closed one stays closed.
func TestReconnectRequiresConnectionLoss(t *testing.T) {
	n := netsim.New(32)
	srv, err := server.New(server.Config{Network: n, Addr: "srv:1", ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Close)
	c, err := client.Dial(client.Config{Network: n, Addr: "srv:1", Name: "x", Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Reconnect(); err == nil {
		t.Error("reconnect while connected should fail")
	}
	c.Close()
	if err := c.Reconnect(); !errors.Is(err, client.ErrClosed) {
		t.Errorf("reconnect after Close: %v, want ErrClosed", err)
	}
}
