// Package client implements the DMPS client library: the programmatic
// counterpart of the paper's communication window (Figure 2). A Client
// connects to the DMPS server, joins groups, requests the floor, posts to
// the message window and whiteboard, maintains a clock-sync estimator
// against the server's global clock, and mirrors the connection lights
// the teacher's window shows (Figure 3).
package client

import (
	"errors"
	"fmt"
	"maps"
	"sync"
	"time"

	"dmps/internal/clock"
	"dmps/internal/floor"
	"dmps/internal/media"
	"dmps/internal/protocol"
	"dmps/internal/transport"
	"dmps/internal/whiteboard"
)

// Client errors.
var (
	// ErrTimeout is returned when the server does not answer a request in
	// time.
	ErrTimeout = errors.New("client: request timed out")
	// ErrDenied wraps a TErr reply.
	ErrDenied = errors.New("client: request denied")
	// ErrClosed is returned after Close or connection loss.
	ErrClosed = errors.New("client: closed")
)

// Config configures a client.
type Config struct {
	// Network and Addr locate the server.
	Network transport.Network
	Addr    string
	// Name, Role ("chair"/"participant") and Priority describe the member.
	Name     string
	Role     string
	Priority int
	// Clock is the client's local clock (defaults to the real clock).
	// Tests inject drifting clocks here.
	Clock clock.Clock
	// Timeout bounds each request/response exchange (default 5s).
	Timeout time.Duration
	// OnEvent, when set, observes every server-initiated event
	// synchronously from the read loop: keep it fast and non-blocking.
	OnEvent func(protocol.Message)
}

// Client is a connected DMPS client.
type Client struct {
	cfg  Config
	conn transport.Conn
	est  *clock.Estimator

	sendMu sync.Mutex

	mu          sync.Mutex
	memberID    string
	seq         int64
	pending     map[int64]chan protocol.Message
	boards      map[string]*whiteboard.Board
	lights      map[string]string
	backpress   map[string]protocol.BackpressureBody
	holders     map[string]string // group → token holder
	queuePos    map[string]int    // group → last pushed queue position
	invites     []protocol.InviteEventBody
	privates    []protocol.SequencedBody // received direct-contact lines
	suspends    []protocol.SuspendBody
	// suspendedNow tracks which members the client currently believes
	// suspended, per group. The server's backpressure repair re-states
	// suspension status at least once, so redundant TSuspend/TResume
	// deliveries must be filtered or SuspendNotices and SuspendEvents
	// would report transitions that never happened.
	suspendedNow map[string]map[string]bool
	present     *protocol.PresentBody // last presentation start received
	replayAsked map[string]replayAsk  // group → last replay request (dedup + retry pacing)
	mediaStats  map[string]map[string]MediaStat
	subs        []*subscriber // Subscribe event channels
	closed      bool

	readerDone chan struct{}
}

// Dial connects and performs the hello/welcome handshake.
func Dial(cfg Config) (*Client, error) {
	if cfg.Network == nil {
		return nil, errors.New("client: Config.Network is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	conn, err := cfg.Network.Dial(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	c := &Client{
		cfg:        cfg,
		conn:       conn,
		est:        clock.NewEstimator(cfg.Clock, 8),
		pending:    make(map[int64]chan protocol.Message),
		boards:     make(map[string]*whiteboard.Board),
		lights:     make(map[string]string),
		holders:    make(map[string]string),
		queuePos:   make(map[string]int),
		readerDone: make(chan struct{}),
	}
	hello := protocol.MustNew(protocol.THello, protocol.HelloBody{
		Name: cfg.Name, Role: cfg.Role, Priority: cfg.Priority,
	})
	hello.Seq = 1
	c.mu.Lock()
	c.seq = 1
	c.mu.Unlock()
	if err := c.send(hello); err != nil {
		_ = conn.Close()
		return nil, err
	}
	wire, err := recvDeadline(conn, cfg.Clock, cfg.Timeout)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("client: handshake recv: %w", err)
	}
	msg, err := protocol.Decode(wire)
	if err != nil || msg.Type != protocol.TWelcome {
		_ = conn.Close()
		return nil, fmt.Errorf("client: unexpected handshake reply %q (%v)", msg.Type, err)
	}
	var welcome protocol.WelcomeBody
	if err := msg.Into(&welcome); err != nil {
		_ = conn.Close()
		return nil, err
	}
	c.mu.Lock()
	c.memberID = welcome.MemberID
	c.mu.Unlock()
	go c.readLoop()
	return c, nil
}

// recvDeadline bounds one Recv by the configured timeout, so a server
// that accepts the connection but never answers the handshake cannot
// block Dial forever. On timeout the connection is left to the caller to
// close (which also unblocks the pending Recv).
func recvDeadline(conn transport.Conn, clk clock.Clock, timeout time.Duration) ([]byte, error) {
	type result struct {
		wire []byte
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		wire, err := conn.Recv()
		ch <- result{wire, err}
	}()
	select {
	case r := <-ch:
		return r.wire, r.err
	case <-clk.After(timeout):
		return nil, fmt.Errorf("%w: handshake after %v", ErrTimeout, timeout)
	}
}

// MemberID returns the server-assigned member ID.
func (c *Client) MemberID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memberID
}

// Estimator exposes the clock-sync estimator (for presentation playout).
func (c *Client) Estimator() *clock.Estimator { return c.est }

// Clock returns the client's local clock.
func (c *Client) Clock() clock.Clock { return c.cfg.Clock }

func (c *Client) send(msg protocol.Message) error {
	wire, err := protocol.Encode(msg)
	if err != nil {
		return err
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return c.conn.Send(wire)
}

// request sends a message and waits for the matching TAck/TErr/TClockSync
// reply.
func (c *Client) request(msg protocol.Message) (protocol.Message, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return protocol.Message{}, ErrClosed
	}
	c.seq++
	msg.Seq = c.seq
	ch := make(chan protocol.Message, 1)
	c.pending[msg.Seq] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, msg.Seq)
		c.mu.Unlock()
	}()
	if err := c.send(msg); err != nil {
		return protocol.Message{}, err
	}
	select {
	case reply := <-ch:
		if reply.Type == protocol.TErr {
			var body protocol.ErrBody
			_ = reply.Into(&body)
			return reply, fmt.Errorf("%w: %s: %s", ErrDenied, body.Code, body.Detail)
		}
		return reply, nil
	case <-c.cfg.Clock.After(c.cfg.Timeout):
		return protocol.Message{}, fmt.Errorf("%w: %s", ErrTimeout, msg.Type)
	case <-c.readerDone:
		return protocol.Message{}, ErrClosed
	}
}

// readLoop dispatches replies and server events until the connection
// drops.
func (c *Client) readLoop() {
	defer c.closeSubscribers()
	defer close(c.readerDone)
	for {
		wire, err := c.conn.Recv()
		if err != nil {
			c.mu.Lock()
			c.closed = true
			c.mu.Unlock()
			return
		}
		msg, err := protocol.Decode(wire)
		if err != nil {
			continue
		}
		c.handle(msg)
	}
}

func (c *Client) handle(msg protocol.Message) {
	switch msg.Type {
	case protocol.TAck, protocol.TErr, protocol.TClockSync:
		c.mu.Lock()
		ch, ok := c.pending[msg.Seq]
		c.mu.Unlock()
		if ok {
			ch <- msg
		}
	case protocol.TStatusProbe:
		report := protocol.MustNew(protocol.TStatusReport, nil)
		_ = c.send(report)
	case protocol.TLights:
		var body protocol.LightsBody
		if msg.Into(&body) == nil {
			c.mu.Lock()
			changed := !maps.Equal(c.lights, body.Lights)
			c.lights = body.Lights
			c.backpress = body.Backpressure
			c.mu.Unlock()
			// Only transitions reach subscribers; the steady-state
			// rebroadcast every probe tick would drown them.
			if changed {
				c.publish(Event{Kind: LightEvents, Type: msg.Type, Lights: body.Lights})
			}
		}
	case protocol.TChatEvent, protocol.TAnnotateEvent:
		var body protocol.SequencedBody
		if msg.Into(&body) == nil {
			if body.Kind == "private" {
				c.mu.Lock()
				c.privates = append(c.privates, body)
				c.mu.Unlock()
			} else {
				kind := whiteboard.Text
				switch body.Kind {
				case "draw":
					kind = whiteboard.Draw
				case "clear":
					kind = whiteboard.Clear
				}
				board := c.boardLocked(msg.Group)
				err := board.Apply(whiteboard.Op{
					Seq: body.Seq, Author: body.Author, Kind: kind, Data: body.Data,
				})
				if errors.Is(err, whiteboard.ErrGap) {
					c.askReplay(msg.Group, board.Seq())
				}
			}
		}
	case protocol.TFloorEvent:
		var body protocol.FloorEventBody
		if msg.Into(&body) == nil {
			c.mu.Lock()
			// Only events that report the group floor update the cached
			// holder. A Direct Contact grant runs concurrently with the
			// prevailing mode and carries no holder, and denied and
			// invite_* outcomes change nothing — taking their empty
			// Holder would clobber the real one.
			switch body.Event {
			case "granted", "released", "passed", "queued", "approved", "queue_position", "resync":
				if !(body.Event == "granted" && body.Mode == floor.DirectContact.String()) {
					c.holders[msg.Group] = body.Holder
				}
			}
			// Track this member's own queue movement. Becoming holder —
			// whether granted directly or promoted on a release/pass —
			// always clears the slot.
			if body.Member == c.memberID {
				switch body.Event {
				case "queued", "queue_position", "approved":
					c.queuePos[msg.Group] = body.QueuePosition
				case "granted":
					delete(c.queuePos, msg.Group)
				case "resync":
					// The refresh carries the authoritative slot: 0 means
					// not queued (any stale position is cleared).
					if body.QueuePosition > 0 {
						c.queuePos[msg.Group] = body.QueuePosition
					} else {
						delete(c.queuePos, msg.Group)
					}
				}
			}
			if body.Holder == c.memberID {
				delete(c.queuePos, msg.Group)
			}
			c.mu.Unlock()
			c.publish(Event{Kind: FloorEvents, Type: msg.Type, Group: msg.Group, Floor: body})
		}
	case protocol.TInviteEvent:
		var body protocol.InviteEventBody
		if msg.Into(&body) == nil {
			// The backpressure repair re-pushes pending invitations
			// at-least-once; an ID already seen is not a new invitation.
			c.mu.Lock()
			dup := false
			for _, inv := range c.invites {
				if inv.InviteID == body.InviteID {
					dup = true
					break
				}
			}
			if !dup {
				c.invites = append(c.invites, body)
			}
			c.mu.Unlock()
			if !dup {
				c.publish(Event{Kind: InviteEvents, Type: msg.Type, Group: body.Group, Invite: body})
			}
		}
	case protocol.TSuspend, protocol.TResume:
		var body protocol.SuspendBody
		if msg.Into(&body) == nil {
			// Only genuine transitions count: the repair path re-states
			// current suspension status, so a TSuspend for a member
			// already believed suspended — or a TResume for one never
			// suspended — is a redundant re-delivery, not a change.
			suspending := msg.Type == protocol.TSuspend
			c.mu.Lock()
			if c.suspendedNow == nil {
				c.suspendedNow = make(map[string]map[string]bool)
			}
			inGroup := c.suspendedNow[msg.Group]
			changed := suspending != inGroup[body.Member]
			if changed {
				if inGroup == nil {
					inGroup = make(map[string]bool)
					c.suspendedNow[msg.Group] = inGroup
				}
				inGroup[body.Member] = suspending
				c.suspends = append(c.suspends, body)
			}
			c.mu.Unlock()
			if changed {
				c.publish(Event{Kind: SuspendEvents, Type: msg.Type, Group: msg.Group, Suspend: body})
			}
		}
	case protocol.TPresent:
		var body protocol.PresentBody
		if msg.Into(&body) == nil {
			c.mu.Lock()
			c.present = &body
			c.mu.Unlock()
		}
	case protocol.TMediaUnit:
		var body protocol.MediaUnitBody
		if msg.Into(&body) == nil {
			c.mu.Lock()
			if c.mediaStats == nil {
				c.mediaStats = make(map[string]map[string]MediaStat)
			}
			perObj := c.mediaStats[msg.Group]
			if perObj == nil {
				perObj = make(map[string]MediaStat)
				c.mediaStats[msg.Group] = perObj
			}
			stat := perObj[body.Object]
			stat.Units++
			stat.Bytes += body.Bytes
			stat.LastSeq = body.Seq
			perObj[body.Object] = stat
			c.mu.Unlock()
		}
	}
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(msg)
	}
}

// replayAsk records one replay request, for dedup and retry pacing.
type replayAsk struct {
	after int64
	at    time.Time
}

// replayRetry is how long a repeated gap at the same board position
// waits before re-asking: the server may have dropped (part of) the
// previous replay under backpressure, so the request must eventually
// repeat or the replica would wedge, but not on every received event.
const replayRetry = time.Second

// askReplay fire-and-forgets a replay request when a sequence gap is
// detected. It must not block the read loop, so it bypasses the
// request/response machinery; at most one request per observed board
// position per retry interval keeps reconnect storms bounded while
// still converging when a replay itself was dropped by the server's
// slow-consumer policy.
func (c *Client) askReplay(groupID string, after int64) {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	if c.replayAsked == nil {
		c.replayAsked = make(map[string]replayAsk)
	}
	if last, ok := c.replayAsked[groupID]; ok && last.after == after && now.Sub(last.at) < replayRetry {
		c.mu.Unlock()
		return
	}
	c.replayAsked[groupID] = replayAsk{after: after, at: now}
	c.mu.Unlock()
	msg := protocol.MustNew(protocol.TReplay, protocol.ReplayBody{After: after})
	msg.Group = groupID
	_ = c.send(msg)
}

func (c *Client) boardLocked(groupID string) *whiteboard.Board {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.boards[groupID]
	if !ok {
		b = whiteboard.NewBoard()
		c.boards[groupID] = b
	}
	return b
}

// Join joins (auto-creating) a group.
func (c *Client) Join(groupID string) error {
	msg := protocol.MustNew(protocol.TJoin, protocol.GroupBody{Group: groupID})
	_, err := c.request(msg)
	return err
}

// Leave leaves a group.
func (c *Client) Leave(groupID string) error {
	msg := protocol.MustNew(protocol.TLeave, protocol.GroupBody{Group: groupID})
	_, err := c.request(msg)
	return err
}

// RequestFloor runs FCM-Arbitrate on the server for the given mode.
func (c *Client) RequestFloor(groupID string, mode floor.Mode, target string) (protocol.FloorDecisionBody, error) {
	msg := protocol.MustNew(protocol.TFloorRequest, protocol.FloorRequestBody{
		Mode: mode.String(), Target: target,
	})
	msg.Group = groupID
	reply, err := c.request(msg)
	if err != nil {
		return protocol.FloorDecisionBody{}, err
	}
	var dec protocol.FloorDecisionBody
	if err := reply.Into(&dec); err != nil {
		return protocol.FloorDecisionBody{}, err
	}
	return dec, nil
}

// ApproveFloor (session chair only) clears a queued floor request in a
// moderated mode; the member is granted immediately if the floor is
// free, or promoted at the next release otherwise.
func (c *Client) ApproveFloor(groupID, member string) (protocol.FloorDecisionBody, error) {
	msg := protocol.MustNew(protocol.TFloorApprove, protocol.FloorApproveBody{Member: member})
	msg.Group = groupID
	reply, err := c.request(msg)
	if err != nil {
		return protocol.FloorDecisionBody{}, err
	}
	var dec protocol.FloorDecisionBody
	if err := reply.Into(&dec); err != nil {
		return protocol.FloorDecisionBody{}, err
	}
	return dec, nil
}

// ReleaseFloor gives the Equal Control floor back.
func (c *Client) ReleaseFloor(groupID string) error {
	msg := protocol.MustNew(protocol.TFloorRelease, nil)
	msg.Group = groupID
	_, err := c.request(msg)
	return err
}

// PassToken hands the Equal Control token to another member.
func (c *Client) PassToken(groupID, to string) error {
	msg := protocol.MustNew(protocol.TTokenPass, protocol.TokenPassBody{To: to})
	msg.Group = groupID
	_, err := c.request(msg)
	return err
}

// Chat posts a message-window line to the group.
func (c *Client) Chat(groupID, text string) error {
	msg := protocol.MustNew(protocol.TChat, protocol.ChatBody{Text: text})
	msg.Group = groupID
	_, err := c.request(msg)
	return err
}

// ChatPrivate posts into the direct-contact private window with peer.
func (c *Client) ChatPrivate(groupID, peer, text string) error {
	msg := protocol.MustNew(protocol.TChat, protocol.ChatBody{Text: text})
	msg.Group = groupID
	msg.To = peer
	_, err := c.request(msg)
	return err
}

// Annotate posts a whiteboard operation ("draw", "text", "clear").
func (c *Client) Annotate(groupID, kind, data string) error {
	msg := protocol.MustNew(protocol.TAnnotate, protocol.AnnotateBody{Kind: kind, Data: data})
	msg.Group = groupID
	_, err := c.request(msg)
	return err
}

// Invite asks the server to invite a member into a group; it returns the
// invitation ID.
func (c *Client) Invite(groupID, to string) (int64, error) {
	msg := protocol.MustNew(protocol.TInvite, protocol.InviteBody{Group: groupID, To: to})
	reply, err := c.request(msg)
	if err != nil {
		return 0, err
	}
	var body protocol.InviteEventBody
	if err := reply.Into(&body); err != nil {
		return 0, err
	}
	return body.InviteID, nil
}

// ReplyInvite answers an invitation.
func (c *Client) ReplyInvite(inviteID int64, accept bool) error {
	msg := protocol.MustNew(protocol.TInviteReply, protocol.InviteReplyBody{InviteID: inviteID, Accept: accept})
	_, err := c.request(msg)
	return err
}

// Replay requests board operations after the given sequence number.
func (c *Client) Replay(groupID string, after int64) error {
	msg := protocol.MustNew(protocol.TReplay, protocol.ReplayBody{After: after})
	msg.Group = groupID
	_, err := c.request(msg)
	return err
}

// MediaStat accumulates received media units for one object.
type MediaStat struct {
	// Units is the number of received units; Bytes their payload total.
	Units int
	Bytes int
	// LastSeq is the sequence number of the latest unit.
	LastSeq int
}

// SendMediaUnit streams one media unit into the group. With ack=false it
// is fire-and-forget (a muted sender's units vanish silently, like a cut
// microphone); with ack=true the server confirms or denies.
func (c *Client) SendMediaUnit(groupID string, unit media.Unit, ack bool) error {
	body := protocol.MediaUnitBody{
		Object:         unit.ObjectID,
		Kind:           unit.Kind.String(),
		Seq:            unit.Seq,
		MediaTimeNanos: int64(unit.MediaTime),
		Bytes:          unit.Bytes,
	}
	msg := protocol.MustNew(protocol.TMediaUnit, body)
	msg.Group = groupID
	if !ack {
		return c.send(msg)
	}
	_, err := c.request(msg)
	return err
}

// StreamSource sends every remaining unit of a source into the group,
// fire-and-forget, pacing by the object's unit interval on the client's
// clock when pace is true (false blasts as fast as possible).
func (c *Client) StreamSource(groupID string, src media.Source, pace bool) (int, error) {
	interval := src.Object().UnitInterval()
	sent := 0
	for {
		unit, err := src.Next()
		if errors.Is(err, media.ErrExhausted) {
			return sent, nil
		}
		if err != nil {
			return sent, err
		}
		if err := c.SendMediaUnit(groupID, unit, false); err != nil {
			return sent, err
		}
		sent++
		if pace && src.Remaining() > 0 {
			c.cfg.Clock.Sleep(interval)
		}
	}
}

// MediaStats returns the received-unit statistics for a group, keyed by
// object ID.
func (c *Client) MediaStats(groupID string) map[string]MediaStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]MediaStat)
	for obj, stat := range c.mediaStats[groupID] {
		out[obj] = stat
	}
	return out
}

// SyncClock performs one Cristian exchange against the server's global
// clock and feeds the estimator. It returns the updated offset estimate.
func (c *Client) SyncClock() (time.Duration, error) {
	sent := c.cfg.Clock.Now()
	msg := protocol.MustNew(protocol.TClockSync, protocol.ClockSyncBody{
		ClientSendNanos: protocol.Nanos(sent),
	})
	reply, err := c.request(msg)
	if err != nil {
		return 0, err
	}
	recv := c.cfg.Clock.Now()
	var body protocol.ClockSyncBody
	if err := reply.Into(&body); err != nil {
		return 0, err
	}
	c.est.AddSample(clock.Sample{
		SentLocal:  sent,
		MasterTime: protocol.FromNanos(body.MasterNanos),
		RecvLocal:  recv,
	})
	return c.est.Offset()
}

// GlobalNow returns the estimated global time (requires a prior
// SyncClock).
func (c *Client) GlobalNow() (time.Time, error) { return c.est.GlobalNow() }

// Board returns the client's replica of a group board.
func (c *Client) Board(groupID string) *whiteboard.Board { return c.boardLocked(groupID) }

// Lights returns the last received connection-light table.
func (c *Client) Lights() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.lights))
	for k, v := range c.lights {
		out[k] = v
	}
	return out
}

// Backpressure returns the last received per-member backpressure table
// (outbound queue depth and drop counts at the server), keyed by member
// ID. It rides the lights broadcast, so it is as fresh as Lights.
func (c *Client) Backpressure() map[string]protocol.BackpressureBody {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]protocol.BackpressureBody, len(c.backpress))
	for k, v := range c.backpress {
		out[k] = v
	}
	return out
}

// Holder returns the last known Equal Control holder for a group.
func (c *Client) Holder(groupID string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.holders[groupID]
}

// PendingInvites returns invitations received so far.
func (c *Client) PendingInvites() []protocol.InviteEventBody {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]protocol.InviteEventBody, len(c.invites))
	copy(out, c.invites)
	return out
}

// PrivateMessages returns direct-contact lines received so far.
func (c *Client) PrivateMessages() []protocol.SequencedBody {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]protocol.SequencedBody, len(c.privates))
	copy(out, c.privates)
	return out
}

// SuspendNotices returns Media-Suspend/Resume notices received so far.
func (c *Client) SuspendNotices() []protocol.SuspendBody {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]protocol.SuspendBody, len(c.suspends))
	copy(out, c.suspends)
	return out
}

// Presentation returns the last presentation start received, or nil.
func (c *Client) Presentation() *protocol.PresentBody {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.present == nil {
		return nil
	}
	cp := *c.present
	return &cp
}

// StartPresentation (chair only) broadcasts a synchronized presentation
// start to the group.
func (c *Client) StartPresentation(groupID string, body protocol.PresentBody) error {
	msg := protocol.MustNew(protocol.TPresent, body)
	msg.Group = groupID
	_, err := c.request(msg)
	return err
}

// Close says goodbye and tears the connection down.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	bye := protocol.MustNew(protocol.TBye, nil)
	_ = c.send(bye)
	_ = c.conn.Close()
	<-c.readerDone
}

// Drop abandons the connection without a goodbye — the crash of Figure
// 3(c). Only meaningful over netsim transports; returns false otherwise.
func (c *Client) Drop() bool {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	type dropper interface{ Drop() }
	if d, ok := c.conn.(dropper); ok {
		d.Drop()
		return true
	}
	return false
}
