// Package client implements the DMPS client library: the programmatic
// counterpart of the paper's communication window (Figure 2). A Client
// connects to the DMPS server, joins groups, requests the floor, posts to
// the message window and whiteboard, maintains a clock-sync estimator
// against the server's global clock, and mirrors the connection lights
// the teacher's window shows (Figure 3).
//
// State events arrive on the sequenced event-log plane: every logged
// broadcast carries its log's per-class sequence (Message.Class/CSeq),
// and the read loop applies each class strictly in sequence — with
// state-bearing restatements (Message.State) admissible across holes,
// since they carry everything the missed events did to their class. A
// hole on a non-restating event — or a digest head in the lights
// broadcast beyond the client's cursor — means the server dropped
// something on this client's queue; the client asks TBackfill (paced
// by a jittered exponential backoff) and converges from the replayed
// compacted suffix, or from a compact snapshot when the log no longer
// connects. The same machinery powers Reconnect: a client that lost
// its connection dials again with its session token and resumes — same
// member identity, same subscriptions, no re-joining. Sessions may
// run with a server-side event-class mask (Config.EventClasses,
// SetEventClasses): unsubscribed classes are filtered before they ever
// reach this client's delivery queue.
package client

import (
	"errors"
	"fmt"
	"maps"
	"math/rand"
	"sync"
	"time"

	"dmps/internal/clock"
	"dmps/internal/floor"
	"dmps/internal/grouplog"
	"dmps/internal/media"
	"dmps/internal/protocol"
	"dmps/internal/transport"
	"dmps/internal/whiteboard"
)

// Client errors.
var (
	// ErrTimeout is returned when the server does not answer a request in
	// time.
	ErrTimeout = errors.New("client: request timed out")
	// ErrDenied wraps a TErr reply.
	ErrDenied = errors.New("client: request denied")
	// ErrClosed is returned after Close or connection loss.
	ErrClosed = errors.New("client: closed")
	// ErrSessionExpired is returned by Reconnect when the server no
	// longer recognizes the session token — the member was reaped after
	// being gone longer than the server's session TTL. The session
	// cannot be resumed; dial a fresh client instead.
	ErrSessionExpired = errors.New("client: session expired")
)

// Config configures a client.
type Config struct {
	// Network and Addr locate the server.
	Network transport.Network
	Addr    string
	// Name, Role ("chair"/"participant") and Priority describe the member.
	Name     string
	Role     string
	Priority int
	// Clock is the client's local clock (defaults to the real clock).
	// Tests inject drifting clocks here.
	Clock clock.Clock
	// Timeout bounds each request/response exchange (default 5s).
	Timeout time.Duration
	// EventClasses is the session's initial event-class mask: the logged
	// event classes (protocol.ClassFloor, ClassSuspend, ClassBoard,
	// ClassInvite) this client wants pushed. Filtering runs server-side
	// — an unsubscribed class costs this client zero bytes under churn —
	// at the price of the matching polling accessors going stale. Nil or
	// empty means every class; protocol.ClassNone alone means none.
	// SetEventClasses changes it later, and Subscribe widens it
	// automatically when a subscription needs a class the mask excludes.
	EventClasses []string
	// OnEvent, when set, observes every server-initiated event
	// synchronously from the read loop: keep it fast and non-blocking.
	OnEvent func(protocol.Message)
	// WireJSON keeps this client's sends on the JSON wire framing instead
	// of requesting the binary framing in the hello. Inbound frames of
	// either framing are always understood; the knob only pins what this
	// client asks for and emits — the debugging escape hatch, and the
	// interop test's way of staging a mixed-version group.
	WireJSON bool
	// Trace stamps a sampled trace context (a fresh random trace ID plus
	// the sampled bit) onto every request this client sends, asking each
	// hop — router relay, owner dispatch, replication, fan-out — to
	// record named spans for the op. On the JSON framing the context
	// always rides; on the binary framing it is sent only when the
	// session negotiated wire version ≥ 2 (older binary peers would
	// misparse the extension), so enabling Trace never breaks interop.
	Trace bool
}

// cursorKey addresses one admission cursor: a log (group ID, or the
// member-log key) and an event class within it. Logged events are
// sequenced densely per (log, class), which is what lets the server
// filter whole classes per recipient without the survivors looking like
// holes.
type cursorKey struct {
	log   string
	class string
}

// Client is a connected DMPS client.
type Client struct {
	cfg Config
	est *clock.Estimator

	sendMu sync.Mutex

	mu       sync.Mutex
	conn     transport.Conn // replaced by Reconnect
	memberID string
	token    string // session-resume credential from the welcome
	seq      int64
	pending  map[int64]chan protocol.Message
	boards   map[string]*whiteboard.Board
	joined   map[string]bool // groups this client has joined
	// Lights arrive sharded by origin (one table per cluster node,
	// covering the members it homes; origin "" is a standalone server's
	// whole table): each push replaces its origin's table — pruning
	// members that left it — and the merged view is rebuilt for the
	// accessors.
	lightsByOrigin    map[string]map[string]string
	backpressByOrigin map[string]map[string]protocol.BackpressureBody
	lights            map[string]string
	backpress         map[string]protocol.BackpressureBody
	holders           map[string]string // group → token holder
	queuePos          map[string]int    // group → last pushed queue position
	invites           []protocol.InviteEventBody
	privates          []protocol.SequencedBody // received direct-contact lines
	suspends          []protocol.SuspendBody
	// suspendedNow tracks which members the client currently believes
	// suspended, per group. Snapshots re-state (and reconcile) the
	// suspension set, so redundant TSuspend/TResume deliveries must be
	// filtered or SuspendNotices and SuspendEvents would report
	// transitions that never happened.
	suspendedNow map[string]map[string]bool
	// lastSeq is the highest applied CSeq per (event log, class). Logged
	// events apply strictly in per-class sequence: a duplicate is
	// dropped, a hole triggers a TBackfill — unless the event is
	// state-bearing (a full restatement of its class), which may be
	// admitted across the hole, jumping the cursor.
	lastSeq map[cursorKey]int64
	// classes is the session's current event-class mask (nil = all),
	// mirrored at the server, which filters before enqueuing.
	classes map[string]bool
	// repairs paces backfill/replay re-asks per log: jittered
	// exponential backoff so a fleet of behind replicas cannot stampede
	// the server in lockstep.
	repairs      map[string]*repairAsk
	present      *protocol.PresentBody // last presentation start received
	mediaStats   map[string]map[string]MediaStat
	subs         []*subscriber // Subscribe event channels
	closed       bool          // user called Close: the session is over
	connDown     bool          // connection lost; Reconnect can resume
	reconnecting bool          // a Reconnect is in flight (at most one)
	// wireVer is the wire framing the server granted in the welcome (0 =
	// JSON, 1 = binary): what this client's sends encode to. Renegotiated
	// on every Reconnect — a resume through an older server downgrades
	// gracefully to JSON.
	wireVer int

	readerDone chan struct{} // replaced by Reconnect; read under mu
}

// redirectError carries a cluster node's node_moved redirect: the
// member is homed on (or the session belongs to) another node.
type redirectError struct{ addr string }

func (e *redirectError) Error() string { return "client: redirected to " + e.addr }

// maxRedirects bounds the node_moved redirect chain a Dial follows —
// one hop resolves any consistent partition map; the bound only guards
// against a misconfigured cluster bouncing a hello in a cycle.
const maxRedirects = 3

// Dial connects and performs the hello/welcome handshake. Against a
// cluster it follows node_moved redirects transparently: a node that
// does not home this member answers with the owning node's address, and
// the dial is retried there.
func Dial(cfg Config) (*Client, error) {
	if cfg.Network == nil {
		return nil, errors.New("client: Config.Network is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	conn, err := cfg.Network.Dial(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	c := &Client{
		cfg:               cfg,
		conn:              conn,
		est:               clock.NewEstimator(cfg.Clock, 8),
		pending:           make(map[int64]chan protocol.Message),
		boards:            make(map[string]*whiteboard.Board),
		joined:            make(map[string]bool),
		lights:            make(map[string]string),
		lightsByOrigin:    make(map[string]map[string]string),
		backpressByOrigin: make(map[string]map[string]protocol.BackpressureBody),
		holders:           make(map[string]string),
		queuePos:          make(map[string]int),
		lastSeq:           make(map[cursorKey]int64),
		classes:           protocol.ClassMask(cfg.EventClasses),
		readerDone:        make(chan struct{}),
	}
	c.mu.Lock()
	c.seq = 1
	c.mu.Unlock()
	hello := protocol.HelloBody{
		Name: cfg.Name, Role: cfg.Role, Priority: cfg.Priority,
		Classes:     cfg.EventClasses,
		WireVersion: wireAsk(cfg),
	}
	welcome, err := handshake(conn, cfg, hello, 1)
	for hops := 0; err != nil && hops < maxRedirects; hops++ {
		var redirect *redirectError
		if !errors.As(err, &redirect) {
			break
		}
		_ = conn.Close()
		if conn, err = cfg.Network.Dial(redirect.addr); err != nil {
			return nil, fmt.Errorf("client: redirect: %w", err)
		}
		// The redirect target is the session's real home: remember it so
		// a later Reconnect resumes there, not at the node that bounced
		// us (which would not recognize the token).
		cfg.Addr = redirect.addr
		c.cfg.Addr = redirect.addr
		c.mu.Lock()
		c.conn = conn
		c.mu.Unlock()
		welcome, err = handshake(conn, cfg, hello, 1)
	}
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	c.mu.Lock()
	c.memberID = welcome.MemberID
	c.token = welcome.Token
	c.wireVer = welcome.WireVersion
	c.mu.Unlock()
	go c.readLoop()
	return c, nil
}

// wireAsk is the wire version the hello requests: binary with the
// trace-context extension unless pinned to JSON. The server echoes the
// granted version in the welcome — an older server omits the field and
// the session stays on JSON; a binary-only server answers 1 and the
// client keeps trace context off its binary frames.
func wireAsk(cfg Config) int {
	if cfg.WireJSON {
		return 0
	}
	return 2
}

// newTraceID draws a fresh nonzero trace ID for a sampled request.
func newTraceID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// wantsClassLocked reports whether the current mask admits a class.
// Requires c.mu.
func (c *Client) wantsClassLocked(class string) bool {
	return c.classes == nil || c.classes[class]
}

// groupClassesLocked lists the event classes this client tracks on a
// group log — the classes its mask admits. Requires c.mu.
func (c *Client) groupClassesLocked() []string {
	var out []string
	for _, class := range []string{protocol.ClassFloor, protocol.ClassSuspend, protocol.ClassBoard} {
		if c.wantsClassLocked(class) {
			out = append(out, class)
		}
	}
	return out
}

// handshake performs one hello/welcome exchange on a fresh connection.
func handshake(conn transport.Conn, cfg Config, hello protocol.HelloBody, seq int64) (protocol.WelcomeBody, error) {
	msg := protocol.MustNew(protocol.THello, hello)
	msg.Seq = seq
	wire, err := protocol.Encode(msg)
	if err != nil {
		return protocol.WelcomeBody{}, err
	}
	if err := conn.Send(wire); err != nil {
		return protocol.WelcomeBody{}, err
	}
	reply, err := recvDeadline(conn, cfg.Clock, cfg.Timeout)
	if err != nil {
		return protocol.WelcomeBody{}, fmt.Errorf("client: handshake recv: %w", err)
	}
	got, err := protocol.Decode(reply)
	if err == nil && got.Type == protocol.TErr {
		var body protocol.ErrBody
		_ = got.Into(&body)
		if body.Code == "session_expired" {
			return protocol.WelcomeBody{}, fmt.Errorf("%w: %s", ErrSessionExpired, body.Detail)
		}
		if body.Code == protocol.CodeNodeMoved && body.Detail != "" {
			// A cluster node that does not home this member redirects to
			// the one that does; Dial follows transparently.
			return protocol.WelcomeBody{}, &redirectError{addr: body.Detail}
		}
		return protocol.WelcomeBody{}, fmt.Errorf("%w: %s: %s", ErrDenied, body.Code, body.Detail)
	}
	if err != nil || got.Type != protocol.TWelcome {
		return protocol.WelcomeBody{}, fmt.Errorf("client: unexpected handshake reply %q (%v)", got.Type, err)
	}
	var welcome protocol.WelcomeBody
	if err := got.Into(&welcome); err != nil {
		return protocol.WelcomeBody{}, err
	}
	return welcome, nil
}

// recvDeadline bounds one Recv by the configured timeout, so a server
// that accepts the connection but never answers the handshake cannot
// block Dial forever. On timeout the connection is left to the caller to
// close (which also unblocks the pending Recv).
func recvDeadline(conn transport.Conn, clk clock.Clock, timeout time.Duration) ([]byte, error) {
	type result struct {
		wire []byte
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		wire, err := conn.Recv()
		ch <- result{wire, err}
	}()
	select {
	case r := <-ch:
		return r.wire, r.err
	case <-clk.After(timeout):
		return nil, fmt.Errorf("%w: handshake after %v", ErrTimeout, timeout)
	}
}

// MemberID returns the server-assigned member ID.
func (c *Client) MemberID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memberID
}

// Estimator exposes the clock-sync estimator (for presentation playout).
func (c *Client) Estimator() *clock.Estimator { return c.est }

// Clock returns the client's local clock.
func (c *Client) Clock() clock.Clock { return c.cfg.Clock }

// WireVersion reports the wire framing the server granted in the
// welcome: 0 is the JSON framing, 1 the length-prefixed binary framing,
// 2 binary with the trace-context extension. It can change across
// Reconnect (a -wire-json server demotes the session to JSON).
func (c *Client) WireVersion() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wireVer
}

func (c *Client) send(msg protocol.Message) error {
	c.mu.Lock()
	conn := c.conn
	ver := c.wireVer
	c.mu.Unlock()
	if ver == 1 {
		// Binary without the trace extension: an older peer would read
		// the trace bytes as body, so the context must not be framed.
		msg.TraceID, msg.TraceParent, msg.TraceFlags = 0, 0, 0
	}
	var wire []byte
	var err error
	if ver >= 1 {
		wire, err = protocol.EncodeBinary(msg)
	} else {
		wire, err = protocol.Encode(msg)
	}
	if err != nil {
		return err
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return conn.Send(wire)
}

// request sends a message and waits for the matching TAck/TErr/TClockSync
// reply.
func (c *Client) request(msg protocol.Message) (protocol.Message, error) {
	c.mu.Lock()
	if c.closed || c.connDown {
		c.mu.Unlock()
		return protocol.Message{}, ErrClosed
	}
	c.seq++
	msg.Seq = c.seq
	if c.cfg.Trace && msg.TraceID == 0 {
		msg.TraceID = newTraceID()
		msg.TraceFlags = protocol.TraceSampled
	}
	ch := make(chan protocol.Message, 1)
	c.pending[msg.Seq] = ch
	done := c.readerDone
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, msg.Seq)
		c.mu.Unlock()
	}()
	if err := c.send(msg); err != nil {
		return protocol.Message{}, err
	}
	select {
	case reply := <-ch:
		if reply.Type == protocol.TErr {
			var body protocol.ErrBody
			_ = reply.Into(&body)
			return reply, fmt.Errorf("%w: %s: %s", ErrDenied, body.Code, body.Detail)
		}
		return reply, nil
	case <-c.cfg.Clock.After(c.cfg.Timeout):
		return protocol.Message{}, fmt.Errorf("%w: %s", ErrTimeout, msg.Type)
	case <-done:
		return protocol.Message{}, ErrClosed
	}
}

// readLoop dispatches replies and server events until the connection
// drops. Losing the connection does not end the session: subscriptions
// stay attached (Reconnect resumes them) and are closed only when the
// client itself is Closed.
func (c *Client) readLoop() {
	c.mu.Lock()
	conn, done := c.conn, c.readerDone
	c.mu.Unlock()
	defer close(done)
	for {
		wire, err := conn.Recv()
		if err != nil {
			c.mu.Lock()
			c.connDown = true
			userClosed := c.closed
			c.mu.Unlock()
			if userClosed {
				c.closeSubscribers()
			}
			return
		}
		msg, err := protocol.DecodeAny(wire)
		if err != nil {
			continue
		}
		c.handle(msg)
	}
}

// handle processes one server message: logged state events pass the
// in-order admission first (duplicates dropped, holes answered with a
// backfill ask), then apply; everything else applies directly. The
// OnEvent tap observes every received message either way.
func (c *Client) handle(msg protocol.Message) {
	if c.admit(msg) {
		c.apply(msg)
	}
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(msg)
	}
}

// admit enforces per-class sequence order for logged state events. An
// event at exactly lastSeq+1 for its (log, class) cursor advances it
// and applies; a duplicate (CSeq ≤ lastSeq) is discarded — backfills
// and live delivery may overlap, and every logged event is idempotent
// to re-deliver but cheaper to drop. A hole (CSeq > lastSeq+1) proves
// the server dropped — or compacted away — something in this class:
// when the event is state-bearing it is admitted ANYWAY and the cursor
// jumps to it, because a state-bearing event fully restates its class's
// state and the missing prefix has nothing left to say; otherwise the
// event is not applied and a paced TBackfill ask goes out. Unlogged
// messages (CSeq 0) always admit.
//
// Admission runs in the read loop against the wire stream, so a slow
// local subscriber dropping events off its own buffered channel can
// never be mistaken for a delivery gap.
func (c *Client) admit(msg protocol.Message) bool {
	if msg.CSeq == 0 {
		return true
	}
	log := msg.Group
	c.mu.Lock()
	if msg.Type == protocol.TInviteEvent {
		log = grouplog.MemberKey(c.memberID)
	}
	key := cursorKey{log: log, class: msg.Class}
	last := c.lastSeq[key]
	switch {
	case msg.CSeq <= last:
		c.mu.Unlock()
		return false
	case msg.CSeq == last+1 || msg.State:
		c.lastSeq[key] = msg.CSeq
		c.mu.Unlock()
		return true
	default:
		c.mu.Unlock()
		c.askBackfill(log)
		return false
	}
}

func (c *Client) apply(msg protocol.Message) {
	switch msg.Type {
	case protocol.TAck, protocol.TErr, protocol.TClockSync:
		c.mu.Lock()
		ch, ok := c.pending[msg.Seq]
		c.mu.Unlock()
		if ok {
			ch <- msg
		}
	case protocol.TStatusProbe:
		report := protocol.MustNew(protocol.TStatusReport, nil)
		_ = c.send(report)
	case protocol.TNodeMoved:
		// A partition handoff: the routing tier names the groups that
		// moved. Converge each exactly like a reconnect — one backfill
		// from the last applied sequence numbers; the new owner's restored
		// log replays with the same CSeqs, so nothing applies twice. A
		// named Origin is a dead node's lights shard: its members' lights
		// flip red (their home will push no more updates; the last pushed
		// value would otherwise read healthy forever).
		var body protocol.NodeMovedBody
		if msg.Into(&body) == nil {
			if body.Origin != "" {
				var changed bool
				c.mu.Lock()
				shard := c.lightsByOrigin[body.Origin]
				for id, light := range shard {
					if light != "red" {
						shard[id] = "red"
						c.lights[id] = "red"
						changed = true
					}
				}
				lights := make(map[string]string, len(c.lights))
				for k, v := range c.lights {
					lights[k] = v
				}
				c.mu.Unlock()
				if changed {
					c.publish(Event{Kind: LightEvents, Type: msg.Type, Lights: lights})
				}
			}
			for _, g := range body.Groups {
				c.askBackfill(g)
			}
		}
	case protocol.TLights:
		var body protocol.LightsBody
		if msg.Into(&body) == nil {
			c.mu.Lock()
			// Replace per origin shard, then rebuild the merged view: in
			// a cluster each node pushes the members it homes, so a member
			// absent from their own node's next push is pruned while other
			// nodes' entries stand; a standalone push (origin "") replaces
			// the whole table, exactly as before the cluster plane.
			c.lightsByOrigin[body.Origin] = body.Lights
			c.backpressByOrigin[body.Origin] = body.Backpressure
			merged := make(map[string]string)
			for _, shard := range c.lightsByOrigin {
				for id, light := range shard {
					merged[id] = light
				}
			}
			changed := !maps.Equal(c.lights, merged)
			c.lights = merged
			// Publish a private copy: c.lights keeps being mutated under
			// the lock (later pushes, dead-shard reddening) while
			// subscribers hold theirs.
			published := make(map[string]string, len(merged))
			for k, v := range merged {
				published[k] = v
			}
			mergedBP := make(map[string]protocol.BackpressureBody)
			for _, shard := range c.backpressByOrigin {
				for id, bp := range shard {
					mergedBP[id] = bp
				}
			}
			c.backpress = mergedBP
			behind := c.behindLogsLocked(body.Heads)
			c.mu.Unlock()
			// The heads digest is the quiet-tail repair trigger: any log
			// whose head is past our cursor dropped something for us that
			// no later event will expose. Ask for each (paced).
			for _, key := range behind {
				c.askBackfill(key)
			}
			// Only transitions reach subscribers; the steady-state
			// rebroadcast every probe tick would drown them. Publish the
			// MERGED view, not the pushing shard: subscribers read
			// Event.Lights as the whole member table, whichever node's
			// push moved it.
			if changed {
				c.publish(Event{Kind: LightEvents, Type: msg.Type, Lights: published})
			}
		}
	case protocol.TSnapshot:
		var body protocol.SnapshotBody
		if msg.Into(&body) == nil {
			c.applySnapshot(msg.Group, body)
		}
	case protocol.TChatEvent, protocol.TAnnotateEvent:
		var body protocol.SequencedBody
		if msg.Into(&body) == nil {
			if body.Kind == "private" {
				c.mu.Lock()
				c.privates = append(c.privates, body)
				c.mu.Unlock()
			} else {
				// A coalesced event carries a burst: the first operation
				// on the top-level fields, the rest in More, in board
				// order — apply them exactly as if they arrived singly.
				// The first op applies straight off the body so the
				// common single-op event allocates nothing here.
				board := c.boardLocked(msg.Group)
				op := &body
				for i := 0; ; i++ {
					kind := whiteboard.Text
					switch op.Kind {
					case "draw":
						kind = whiteboard.Draw
					case "clear":
						kind = whiteboard.Clear
					}
					err := board.Apply(whiteboard.Op{
						Seq: op.Seq, Author: op.Author, Kind: kind, Data: op.Data,
					})
					if errors.Is(err, whiteboard.ErrGap) {
						// Board ops ride the log in board order, so an
						// in-sequence event can only gap when the board's
						// prefix predates what the log ring still holds (a
						// lost join snapshot): ask for a fresh one.
						c.askBoardReplay(msg.Group, board.Seq())
						break
					}
					if i >= len(body.More) {
						break
					}
					op = &body.More[i]
				}
			}
		}
	case protocol.TFloorEvent:
		var body protocol.FloorEventBody
		if msg.Into(&body) == nil {
			c.mu.Lock()
			// Only events that report the group floor update the cached
			// holder. A Direct Contact grant runs concurrently with the
			// prevailing mode and carries no holder, and denied and
			// invite_* outcomes change nothing — taking their empty
			// Holder would clobber the real one.
			switch body.Event {
			case "granted", "released", "passed", "queued", "approved", "queue_position", "queue", "mode_switch":
				if !(body.Event == "granted" && body.Mode == floor.DirectContact.String()) {
					c.holders[msg.Group] = body.Holder
				}
			}
			// Track this member's own queue movement. Becoming holder —
			// whether granted directly or promoted on a release/pass —
			// always clears the slot, a mode switch resets the whole
			// floor (queue included), and a "queue" restatement is
			// authoritative either way: queue slots are private, so the
			// server personalizes the copy a queued member receives
			// (QueuePosition > 0) while everyone else's copy carries 0 —
			// meaning "you are not queued", never "here is the queue".
			selfPos := -1 // ≥ 0: this member's slot changed (0 = dequeued)
			switch {
			case body.Event == "mode_switch":
				delete(c.queuePos, msg.Group)
			case body.Event == "queue":
				pos := body.QueuePosition
				if pos != c.queuePos[msg.Group] {
					selfPos = pos
				}
				if pos > 0 {
					c.queuePos[msg.Group] = pos
				} else {
					delete(c.queuePos, msg.Group)
				}
			case body.Member == c.memberID:
				switch body.Event {
				case "queued", "queue_position", "approved":
					c.queuePos[msg.Group] = body.QueuePosition
				case "granted":
					delete(c.queuePos, msg.Group)
				}
			}
			if body.Holder == c.memberID {
				delete(c.queuePos, msg.Group)
			}
			me := c.memberID
			c.mu.Unlock()
			if body.Event == "queue" {
				// The raw restatement is a transport detail; subscribers
				// get the member-facing rendering — their own movement —
				// exactly as a directed push would have delivered it.
				if selfPos > 0 {
					c.publish(Event{Kind: FloorEvents, Type: msg.Type, Group: msg.Group, Floor: protocol.FloorEventBody{
						Mode:          body.Mode,
						Holder:        body.Holder,
						Member:        me,
						Event:         "queue_position",
						QueuePosition: selfPos,
					}})
				}
			} else {
				c.publish(Event{Kind: FloorEvents, Type: msg.Type, Group: msg.Group, Floor: body})
			}
		}
	case protocol.TInviteEvent:
		var body protocol.InviteEventBody
		if msg.Into(&body) == nil {
			// Backfill can re-deliver invitations at-least-once across
			// reconnects; an ID already seen is not a new invitation.
			c.mu.Lock()
			fresh := c.addInviteLocked(body)
			c.mu.Unlock()
			if fresh {
				c.publish(Event{Kind: InviteEvents, Type: msg.Type, Group: body.Group, Invite: body})
			}
		}
	case protocol.TSuspend, protocol.TResume:
		var body protocol.SuspendBody
		if msg.Into(&body) == nil {
			// Only genuine transitions count: snapshots and state-bearing
			// notices re-state current suspension status, so a TSuspend
			// for a member already believed suspended — or a TResume for
			// one never suspended — is a redundant re-delivery, not a
			// change. A state-bearing notice (msg.State) carries the whole
			// suspended set, so reconcile everyone, both directions — a
			// recipient that missed earlier transitions converges from
			// whichever notice it sees next.
			suspending := msg.Type == protocol.TSuspend
			var events []Event
			c.mu.Lock()
			if c.setSuspendedLocked(msg.Group, body, suspending) {
				events = append(events, Event{Kind: SuspendEvents, Type: msg.Type, Group: msg.Group, Suspend: body})
			}
			if msg.State {
				events = append(events, c.reconcileSuspendedLocked(msg.Group, body.Suspended, body.Level)...)
			}
			c.mu.Unlock()
			for _, ev := range events {
				c.publish(ev)
			}
		}
	case protocol.TPresent:
		var body protocol.PresentBody
		if msg.Into(&body) == nil {
			c.mu.Lock()
			c.present = &body
			c.mu.Unlock()
		}
	case protocol.TMediaUnit:
		var body protocol.MediaUnitBody
		if msg.Into(&body) == nil {
			c.mu.Lock()
			if c.mediaStats == nil {
				c.mediaStats = make(map[string]map[string]MediaStat)
			}
			perObj := c.mediaStats[msg.Group]
			if perObj == nil {
				perObj = make(map[string]MediaStat)
				c.mediaStats[msg.Group] = perObj
			}
			stat := perObj[body.Object]
			stat.Units++
			stat.Bytes += body.Bytes
			stat.LastSeq = body.Seq
			perObj[body.Object] = stat
			c.mu.Unlock()
		}
	}
}

// addInviteLocked records an invitation unless its ID is already known,
// reporting whether it was new. Requires c.mu.
func (c *Client) addInviteLocked(body protocol.InviteEventBody) bool {
	for _, inv := range c.invites {
		if inv.InviteID == body.InviteID {
			return false
		}
	}
	c.invites = append(c.invites, body)
	return true
}

// setSuspendedLocked updates the believed suspension state of one
// member, reporting whether it was a genuine transition. Requires c.mu.
func (c *Client) setSuspendedLocked(groupID string, body protocol.SuspendBody, suspending bool) bool {
	if c.suspendedNow == nil {
		c.suspendedNow = make(map[string]map[string]bool)
	}
	inGroup := c.suspendedNow[groupID]
	if suspending == inGroup[body.Member] {
		return false
	}
	if inGroup == nil {
		inGroup = make(map[string]bool)
		c.suspendedNow[groupID] = inGroup
	}
	inGroup[body.Member] = suspending
	c.suspends = append(c.suspends, body)
	return true
}

// reconcileSuspendedLocked converges the believed suspension set of one
// group on an authoritative restatement (from a snapshot or a
// state-bearing suspend notice): members the set lists transition in,
// members believed suspended but absent transition out. It returns the
// events for the genuine transitions. Requires c.mu.
func (c *Client) reconcileSuspendedLocked(groupID string, suspended []string, level string) []Event {
	var events []Event
	inSet := make(map[string]bool, len(suspended))
	for _, m := range suspended {
		inSet[m] = true
	}
	for m := range c.suspendedNow[groupID] {
		if c.suspendedNow[groupID][m] && !inSet[m] {
			note := protocol.SuspendBody{Member: m, Level: level}
			c.setSuspendedLocked(groupID, note, false)
			events = append(events, Event{Kind: SuspendEvents, Type: protocol.TResume, Group: groupID, Suspend: note})
		}
	}
	for _, m := range suspended {
		note := protocol.SuspendBody{Member: m, Level: level}
		if c.setSuspendedLocked(groupID, note, true) {
			events = append(events, Event{Kind: SuspendEvents, Type: protocol.TSuspend, Group: groupID, Suspend: note})
		}
	}
	return events
}

// behindLogsLocked compares the server's per-class heads digest against
// the client's applied cursors and returns the log keys this client is
// behind on: its joined groups and its own member log — other members'
// logs in the digest are not ours to fetch, and classes outside the
// mask are not ours to chase. Requires c.mu.
func (c *Client) behindLogsLocked(heads map[string]map[string]int64) []string {
	if len(heads) == 0 {
		return nil
	}
	behindOn := func(log string) bool {
		for class, head := range heads[log] {
			if c.wantsClassLocked(class) && head > c.lastSeq[cursorKey{log: log, class: class}] {
				return true
			}
		}
		return false
	}
	var behind []string
	for g := range c.joined {
		if behindOn(g) {
			behind = append(behind, g)
		}
	}
	if mk := grouplog.MemberKey(c.memberID); behindOn(mk) {
		behind = append(behind, mk)
	}
	return behind
}

// applySnapshot reconciles one log's authoritative state: the floor
// caches, the believed suspension set (publishing only genuine
// transitions), the board suffix and pending invitations, then advances
// the per-class log cursors to the snapshot's ClassSeqs so live events
// continue from them.
func (c *Client) applySnapshot(groupID string, body protocol.SnapshotBody) {
	var events []Event
	c.mu.Lock()
	log := groupID
	if log == "" {
		log = grouplog.MemberKey(c.memberID)
	}
	// A snapshot older than an applied cursor must not rewrite that
	// class's state caches: the server reads the log heads before the
	// floor state, so a transition logged (and applied here) after the
	// head read but before the snapshot was queued would be clobbered by
	// the snapshot's pre-transition view — with cursor == head, nothing
	// would ever repair it. Staleness is judged per class; board ops and
	// invitations still apply below either way, as both are idempotent
	// and never regress.
	staleFor := func(class string) bool {
		return body.ClassSeqs[class] < c.lastSeq[cursorKey{log: log, class: class}]
	}
	floorStale := staleFor(protocol.ClassFloor)
	suspendStale := staleFor(protocol.ClassSuspend)
	for class, head := range body.ClassSeqs {
		key := cursorKey{log: log, class: class}
		if head > c.lastSeq[key] {
			c.lastSeq[key] = head
		}
	}
	for _, inv := range body.Invites {
		if c.addInviteLocked(inv) {
			events = append(events, Event{Kind: InviteEvents, Type: protocol.TInviteEvent, Group: inv.Group, Invite: inv})
		}
	}
	if groupID != "" && !floorStale {
		c.holders[groupID] = body.Holder
		// QueuePos is personalized by the server: this recipient's own
		// slot, or 0 when not queued (other members' slots never arrive).
		if body.QueuePos > 0 && body.Holder != c.memberID {
			c.queuePos[groupID] = body.QueuePos
		} else {
			delete(c.queuePos, groupID)
		}
	}
	if groupID != "" && !suspendStale {
		events = append(events, c.reconcileSuspendedLocked(groupID, body.Suspended, body.Level)...)
	}
	stale := floorStale
	c.mu.Unlock()

	if groupID != "" {
		board := c.boardLocked(groupID)
		for _, op := range body.Board {
			if kind, ok := whiteboard.ParseOpKind(op.Kind); ok {
				// Converge, not Apply: the snapshot is the server's own
				// board, so a leading sequence jump is authoritative
				// history the retention window (or a cluster takeover)
				// no longer holds — never a loss to re-request.
				_ = board.Converge(whiteboard.Op{Seq: op.Seq, Author: op.Author, Kind: kind, Data: op.Data})
			}
		}
		if !stale {
			// One floor event tells subscribers the snapshot's last word
			// on the group floor (holder/mode may have changed while
			// behind).
			events = append(events, Event{Kind: FloorEvents, Type: protocol.TSnapshot, Group: groupID, Floor: protocol.FloorEventBody{
				Mode:   body.Mode,
				Holder: body.Holder,
				Event:  "snapshot",
			}})
		}
	}
	for _, ev := range events {
		c.publish(ev)
	}
}

// repairAsk paces one log's backfill/replay re-asks.
type repairAsk struct {
	after int64         // cursor position of the last ask
	at    time.Time     // when it fired
	delay time.Duration // current backoff step
	wait  time.Duration // jittered wait before the same ask may repeat
}

const (
	// repairRetryBase is the first re-ask delay after an unanswered
	// repair request; repairRetryCap bounds the exponential backoff. The
	// jitter decorrelates replicas that wedged on the same wrapped ring,
	// so a loaded server sees a spread of re-asks instead of a stampede.
	repairRetryBase = 250 * time.Millisecond
	repairRetryCap  = 5 * time.Second
)

// jitter spreads a delay uniformly over [d/2, d].
func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// paceRepair reports whether a repair ask for the key at cursor
// position after may fire now. The first ask — and any ask after the
// cursor moved forward — fires immediately and restarts the backoff;
// repeats at the same position wait out a jittered exponential delay
// capped at repairRetryCap.
func (c *Client) paceRepair(key string, after int64) bool {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.repairs == nil {
		c.repairs = make(map[string]*repairAsk)
	}
	st, ok := c.repairs[key]
	if !ok || after > st.after {
		c.repairs[key] = &repairAsk{after: after, at: now, delay: repairRetryBase, wait: jitter(repairRetryBase)}
		return true
	}
	if now.Sub(st.at) < st.wait {
		return false
	}
	if st.delay < repairRetryCap {
		st.delay *= 2
		if st.delay > repairRetryCap {
			st.delay = repairRetryCap
		}
	}
	st.wait = jitter(st.delay)
	st.at = now
	return true
}

// askBackfill fire-and-forgets a TBackfill for one event log (a group,
// or the member log) from the client's current per-class cursors. It
// runs on the read loop, so it bypasses the request/response machinery;
// pacing via paceRepair keeps a wedged replica from flooding the server
// while still converging when the backfill itself was dropped under
// backpressure.
func (c *Client) askBackfill(key string) {
	c.mu.Lock()
	afters, boardSeq, group := c.aftersLocked(key)
	c.mu.Unlock()
	var pace int64
	for _, a := range afters {
		pace += a
	}
	if !c.paceRepair("log:"+key, pace) {
		return
	}
	msg := protocol.MustNew(protocol.TBackfill, protocol.BackfillBody{
		Group: group, Afters: afters, BoardSeq: boardSeq,
	})
	_ = c.send(msg)
}

// aftersLocked assembles the per-class cursor positions for one log's
// backfill ask, with the board replica's position and the wire Group
// ("" for the member log). Requires c.mu.
func (c *Client) aftersLocked(key string) (afters map[string]int64, boardSeq int64, group string) {
	afters = make(map[string]int64)
	group = key
	if key == grouplog.MemberKey(c.memberID) {
		group = ""
		afters[protocol.ClassInvite] = c.lastSeq[cursorKey{log: key, class: protocol.ClassInvite}]
		return afters, 0, group
	}
	for _, class := range c.groupClassesLocked() {
		afters[class] = c.lastSeq[cursorKey{log: key, class: class}]
	}
	if b, ok := c.boards[key]; ok {
		boardSeq = b.Seq()
	}
	return afters, boardSeq, group
}

// askBoardReplay fire-and-forgets a TReplay when the board replica
// itself is behind what the event log can still replay (a lost join
// snapshot); the server answers with a fresh snapshot.
func (c *Client) askBoardReplay(groupID string, after int64) {
	if !c.paceRepair("board:"+groupID, after) {
		return
	}
	msg := protocol.MustNew(protocol.TReplay, protocol.ReplayBody{After: after})
	msg.Group = groupID
	_ = c.send(msg)
}

func (c *Client) boardLocked(groupID string) *whiteboard.Board {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.boards[groupID]
	if !ok {
		b = whiteboard.NewBoard()
		c.boards[groupID] = b
	}
	return b
}

// Join joins (auto-creating) a group.
func (c *Client) Join(groupID string) error {
	msg := protocol.MustNew(protocol.TJoin, protocol.GroupBody{Group: groupID})
	if _, err := c.request(msg); err != nil {
		return err
	}
	c.mu.Lock()
	c.joined[groupID] = true
	c.mu.Unlock()
	return nil
}

// Leave leaves a group.
func (c *Client) Leave(groupID string) error {
	msg := protocol.MustNew(protocol.TLeave, protocol.GroupBody{Group: groupID})
	if _, err := c.request(msg); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.joined, groupID)
	c.mu.Unlock()
	return nil
}

// SwitchMode sets the group's floor mode explicitly, resetting the
// floor (holder, queue, approvals). With pin (session chair only) the
// policy is chair-pinned: no other member may move the group to a
// different mode — by SwitchMode or by requesting one — until the chair
// switches again without pin. On a pinned group SwitchMode from anyone
// but the chair is denied.
func (c *Client) SwitchMode(groupID string, mode floor.Mode, pin bool) error {
	msg := protocol.MustNew(protocol.TModeSwitch, protocol.ModeSwitchBody{Mode: mode.String(), Pin: pin})
	msg.Group = groupID
	_, err := c.request(msg)
	return err
}

// RequestFloor runs FCM-Arbitrate on the server for the given mode.
func (c *Client) RequestFloor(groupID string, mode floor.Mode, target string) (protocol.FloorDecisionBody, error) {
	msg := protocol.MustNew(protocol.TFloorRequest, protocol.FloorRequestBody{
		Mode: mode.String(), Target: target,
	})
	msg.Group = groupID
	reply, err := c.request(msg)
	if err != nil {
		return protocol.FloorDecisionBody{}, err
	}
	var dec protocol.FloorDecisionBody
	if err := reply.Into(&dec); err != nil {
		return protocol.FloorDecisionBody{}, err
	}
	return dec, nil
}

// ApproveFloor (session chair only) clears a queued floor request in a
// moderated mode; the member is granted immediately if the floor is
// free, or promoted at the next release otherwise.
func (c *Client) ApproveFloor(groupID, member string) (protocol.FloorDecisionBody, error) {
	msg := protocol.MustNew(protocol.TFloorApprove, protocol.FloorApproveBody{Member: member})
	msg.Group = groupID
	reply, err := c.request(msg)
	if err != nil {
		return protocol.FloorDecisionBody{}, err
	}
	var dec protocol.FloorDecisionBody
	if err := reply.Into(&dec); err != nil {
		return protocol.FloorDecisionBody{}, err
	}
	return dec, nil
}

// ReleaseFloor gives the Equal Control floor back.
func (c *Client) ReleaseFloor(groupID string) error {
	msg := protocol.MustNew(protocol.TFloorRelease, nil)
	msg.Group = groupID
	_, err := c.request(msg)
	return err
}

// PassToken hands the Equal Control token to another member.
func (c *Client) PassToken(groupID, to string) error {
	msg := protocol.MustNew(protocol.TTokenPass, protocol.TokenPassBody{To: to})
	msg.Group = groupID
	_, err := c.request(msg)
	return err
}

// Chat posts a message-window line to the group.
func (c *Client) Chat(groupID, text string) error {
	msg := protocol.MustNew(protocol.TChat, protocol.ChatBody{Text: text})
	msg.Group = groupID
	_, err := c.request(msg)
	return err
}

// ChatPrivate posts into the direct-contact private window with peer.
func (c *Client) ChatPrivate(groupID, peer, text string) error {
	msg := protocol.MustNew(protocol.TChat, protocol.ChatBody{Text: text})
	msg.Group = groupID
	msg.To = peer
	_, err := c.request(msg)
	return err
}

// Annotate posts a whiteboard operation ("draw", "text", "clear").
func (c *Client) Annotate(groupID, kind, data string) error {
	msg := protocol.MustNew(protocol.TAnnotate, protocol.AnnotateBody{Kind: kind, Data: data})
	msg.Group = groupID
	_, err := c.request(msg)
	return err
}

// Invite asks the server to invite a member into a group; it returns the
// invitation ID.
func (c *Client) Invite(groupID, to string) (int64, error) {
	msg := protocol.MustNew(protocol.TInvite, protocol.InviteBody{Group: groupID, To: to})
	reply, err := c.request(msg)
	if err != nil {
		return 0, err
	}
	var body protocol.InviteEventBody
	if err := reply.Into(&body); err != nil {
		return 0, err
	}
	return body.InviteID, nil
}

// ReplyInvite answers an invitation. Accepting joins the invited group.
// The reply is scoped to the invitation's group (when the invitation is
// known) so a cluster's routing tier can steer it to the node holding
// the invite record — the group's owner.
func (c *Client) ReplyInvite(inviteID int64, accept bool) error {
	msg := protocol.MustNew(protocol.TInviteReply, protocol.InviteReplyBody{InviteID: inviteID, Accept: accept})
	c.mu.Lock()
	for _, inv := range c.invites {
		if inv.InviteID == inviteID {
			msg.Group = inv.Group
			break
		}
	}
	c.mu.Unlock()
	if _, err := c.request(msg); err != nil {
		return err
	}
	if accept {
		c.mu.Lock()
		for _, inv := range c.invites {
			if inv.InviteID == inviteID {
				c.joined[inv.Group] = true
				break
			}
		}
		c.mu.Unlock()
	}
	return nil
}

// Replay requests board operations after the given sequence number.
func (c *Client) Replay(groupID string, after int64) error {
	msg := protocol.MustNew(protocol.TReplay, protocol.ReplayBody{After: after})
	msg.Group = groupID
	_, err := c.request(msg)
	return err
}

// MediaStat accumulates received media units for one object.
type MediaStat struct {
	// Units is the number of received units; Bytes their payload total.
	Units int
	Bytes int
	// LastSeq is the sequence number of the latest unit.
	LastSeq int
}

// SendMediaUnit streams one media unit into the group. With ack=false it
// is fire-and-forget (a muted sender's units vanish silently, like a cut
// microphone); with ack=true the server confirms or denies.
func (c *Client) SendMediaUnit(groupID string, unit media.Unit, ack bool) error {
	body := protocol.MediaUnitBody{
		Object:         unit.ObjectID,
		Kind:           unit.Kind.String(),
		Seq:            unit.Seq,
		MediaTimeNanos: int64(unit.MediaTime),
		Bytes:          unit.Bytes,
	}
	msg := protocol.MustNew(protocol.TMediaUnit, body)
	msg.Group = groupID
	if !ack {
		return c.send(msg)
	}
	_, err := c.request(msg)
	return err
}

// StreamSource sends every remaining unit of a source into the group,
// fire-and-forget, pacing by the object's unit interval on the client's
// clock when pace is true (false blasts as fast as possible).
func (c *Client) StreamSource(groupID string, src media.Source, pace bool) (int, error) {
	interval := src.Object().UnitInterval()
	sent := 0
	for {
		unit, err := src.Next()
		if errors.Is(err, media.ErrExhausted) {
			return sent, nil
		}
		if err != nil {
			return sent, err
		}
		if err := c.SendMediaUnit(groupID, unit, false); err != nil {
			return sent, err
		}
		sent++
		if pace && src.Remaining() > 0 {
			c.cfg.Clock.Sleep(interval)
		}
	}
}

// MediaStats returns the received-unit statistics for a group, keyed by
// object ID.
func (c *Client) MediaStats(groupID string) map[string]MediaStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]MediaStat)
	for obj, stat := range c.mediaStats[groupID] {
		out[obj] = stat
	}
	return out
}

// SyncClock performs one Cristian exchange against the server's global
// clock and feeds the estimator. It returns the updated offset estimate.
func (c *Client) SyncClock() (time.Duration, error) {
	sent := c.cfg.Clock.Now()
	msg := protocol.MustNew(protocol.TClockSync, protocol.ClockSyncBody{
		ClientSendNanos: protocol.Nanos(sent),
	})
	reply, err := c.request(msg)
	if err != nil {
		return 0, err
	}
	recv := c.cfg.Clock.Now()
	var body protocol.ClockSyncBody
	if err := reply.Into(&body); err != nil {
		return 0, err
	}
	c.est.AddSample(clock.Sample{
		SentLocal:  sent,
		MasterTime: protocol.FromNanos(body.MasterNanos),
		RecvLocal:  recv,
	})
	return c.est.Offset()
}

// GlobalNow returns the estimated global time (requires a prior
// SyncClock).
func (c *Client) GlobalNow() (time.Time, error) { return c.est.GlobalNow() }

// Board returns the client's replica of a group board.
func (c *Client) Board(groupID string) *whiteboard.Board { return c.boardLocked(groupID) }

// Lights returns the last received connection-light table.
func (c *Client) Lights() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.lights))
	for k, v := range c.lights {
		out[k] = v
	}
	return out
}

// Backpressure returns the last received per-member backpressure table
// (outbound queue depth and drop counts at the server), keyed by member
// ID. It rides the lights broadcast, so it is as fresh as Lights.
func (c *Client) Backpressure() map[string]protocol.BackpressureBody {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]protocol.BackpressureBody, len(c.backpress))
	for k, v := range c.backpress {
		out[k] = v
	}
	return out
}

// Holder returns the last known Equal Control holder for a group.
func (c *Client) Holder(groupID string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.holders[groupID]
}

// PendingInvites returns invitations received so far.
func (c *Client) PendingInvites() []protocol.InviteEventBody {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]protocol.InviteEventBody, len(c.invites))
	copy(out, c.invites)
	return out
}

// PrivateMessages returns direct-contact lines received so far.
func (c *Client) PrivateMessages() []protocol.SequencedBody {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]protocol.SequencedBody, len(c.privates))
	copy(out, c.privates)
	return out
}

// SuspendNotices returns Media-Suspend/Resume notices received so far.
func (c *Client) SuspendNotices() []protocol.SuspendBody {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]protocol.SuspendBody, len(c.suspends))
	copy(out, c.suspends)
	return out
}

// Presentation returns the last presentation start received, or nil.
func (c *Client) Presentation() *protocol.PresentBody {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.present == nil {
		return nil
	}
	cp := *c.present
	return &cp
}

// StartPresentation (chair only) broadcasts a synchronized presentation
// start to the group.
func (c *Client) StartPresentation(groupID string, body protocol.PresentBody) error {
	msg := protocol.MustNew(protocol.TPresent, body)
	msg.Group = groupID
	_, err := c.request(msg)
	return err
}

// Close says goodbye and tears the connection down for good:
// subscription channels close and the session cannot be resumed.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conn := c.conn
	done := c.readerDone
	c.mu.Unlock()
	bye := protocol.MustNew(protocol.TBye, nil)
	_ = c.send(bye)
	_ = conn.Close()
	<-done
	// The read loop closes the subscribers when it observes the closed
	// flag, but it may already have exited on a connection error before
	// Close was called; closing here too covers that path (idempotent).
	c.closeSubscribers()
}

// Drop abandons the connection without a goodbye — the crash of Figure
// 3(c). Over netsim the outbound packets silently vanish (the server
// notices only through heartbeat silence); over other transports the
// connection is severed abruptly. Unlike Close, Drop does not end the
// session: subscriptions stay attached and Reconnect can resume it.
func (c *Client) Drop() bool {
	c.mu.Lock()
	c.connDown = true
	conn := c.conn
	c.mu.Unlock()
	type dropper interface{ Drop() }
	if d, ok := conn.(dropper); ok {
		d.Drop()
		return true
	}
	_ = conn.Close()
	return true
}

// Reconnect resumes a session whose connection was lost (Drop, a
// network failure, or a server-side disconnect): it dials the server
// again, presents the session token from the original welcome, and
// converges every joined group — floor, suspensions, board, queue — and
// the invitation log through TBackfill from the last applied sequence
// numbers. The member identity is unchanged, groups stay joined, and
// Subscribe channels keep delivering across the gap. A Closed client
// cannot reconnect.
func (c *Client) Reconnect() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("%w: session closed", ErrClosed)
	}
	if !c.connDown {
		c.mu.Unlock()
		return errors.New("client: still connected")
	}
	if c.reconnecting {
		c.mu.Unlock()
		return errors.New("client: reconnect already in flight")
	}
	c.reconnecting = true
	token := c.token
	oldConn := c.conn
	done := c.readerDone
	c.seq++
	helloSeq := c.seq
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.reconnecting = false
		c.mu.Unlock()
	}()
	if token == "" {
		return errors.New("client: server issued no session token")
	}
	// Make sure the old read loop is fully parked before swapping the
	// connection underneath it.
	_ = oldConn.Close()
	<-done

	conn, err := c.cfg.Network.Dial(c.cfg.Addr)
	if err != nil {
		return fmt.Errorf("client: reconnect: %w", err)
	}
	c.mu.Lock()
	var classes []string
	for class := range c.classes {
		classes = append(classes, class)
	}
	if c.classes != nil && len(classes) == 0 {
		classes = []string{protocol.ClassNone}
	}
	c.mu.Unlock()
	welcome, err := handshake(conn, c.cfg, protocol.HelloBody{
		Name: c.cfg.Name, Role: c.cfg.Role, Priority: c.cfg.Priority, Token: token,
		Classes:     classes,
		WireVersion: wireAsk(c.cfg),
	}, helloSeq)
	if err != nil {
		_ = conn.Close()
		return fmt.Errorf("client: reconnect: %w", err)
	}

	type resumeAsk struct {
		group    string
		afters   map[string]int64
		boardSeq int64
	}
	var asks []resumeAsk
	c.mu.Lock()
	if c.closed {
		// Close ran while we were handshaking: the session is over and
		// the new connection must not outlive it.
		c.mu.Unlock()
		_ = conn.Close()
		return fmt.Errorf("%w: session closed", ErrClosed)
	}
	c.conn = conn
	c.connDown = false
	c.memberID = welcome.MemberID
	c.token = welcome.Token
	c.wireVer = welcome.WireVersion
	c.readerDone = make(chan struct{})
	c.repairs = nil // fresh connection, fresh pacing
	for g := range c.joined {
		afters, boardSeq, _ := c.aftersLocked(g)
		asks = append(asks, resumeAsk{group: g, afters: afters, boardSeq: boardSeq})
	}
	mk := grouplog.MemberKey(c.memberID)
	memberAfters, _, _ := c.aftersLocked(mk)
	asks = append(asks, resumeAsk{group: "", afters: memberAfters})
	c.mu.Unlock()

	go c.readLoop()
	for _, ask := range asks {
		msg := protocol.MustNew(protocol.TBackfill, protocol.BackfillBody{
			Group: ask.group, Afters: ask.afters, BoardSeq: ask.boardSeq,
		})
		_ = c.send(msg)
	}
	return nil
}
