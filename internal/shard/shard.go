// Package shard provides a lock-striped string-keyed map: the state
// partitioning substrate behind the per-group floor and group-admin
// sharding. Keys hash (FNV-1a) onto a fixed set of shards, each guarded
// by its own RWMutex, so operations on different keys contend only when
// they collide on a shard — and then only for the map access itself.
// Values that need exclusion across calls carry their own lock; the
// shard lock is never held while caller code runs.
package shard

import "sync"

// NumShards is the stripe count. 64 keeps collision probability low for
// thousands of groups while staying cache-friendly; it must be a power
// of two so the hash reduces with a mask.
const NumShards = 64

// Map is a sharded map from string keys to values of type V. The zero
// value is not usable; call NewMap.
type Map[V any] struct {
	shards [NumShards]mapShard[V]
}

type mapShard[V any] struct {
	mu sync.RWMutex
	m  map[string]V
}

// NewMap returns an empty sharded map.
func NewMap[V any]() *Map[V] {
	sm := &Map[V]{}
	for i := range sm.shards {
		sm.shards[i].m = make(map[string]V)
	}
	return sm
}

// fnv1a is a tiny inlined FNV-1a over the key; the stdlib hash/fnv costs
// an allocation per call via the hash.Hash interface.
func fnv1a(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

func (sm *Map[V]) shard(key string) *mapShard[V] {
	return &sm.shards[fnv1a(key)&(NumShards-1)]
}

// Get returns the value for key.
func (sm *Map[V]) Get(key string) (V, bool) {
	s := sm.shard(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// GetOrCreate returns the value for key, calling create (at most once
// per insertion) to make it when absent. Concurrent callers for the same
// absent key race to the shard's write lock; exactly one create value is
// kept and every caller observes it.
func (sm *Map[V]) GetOrCreate(key string, create func() V) V {
	s := sm.shard(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		return v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok = s.m[key]; ok {
		return v
	}
	v = create()
	s.m[key] = v
	return v
}

// Set stores the value for key unconditionally.
func (sm *Map[V]) Set(key string, v V) {
	s := sm.shard(key)
	s.mu.Lock()
	s.m[key] = v
	s.mu.Unlock()
}

// SetIfAbsent stores v only when the key is absent, reporting whether it
// stored (true) or the key already existed (false).
func (sm *Map[V]) SetIfAbsent(key string, v V) bool {
	s := sm.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.m[key]; exists {
		return false
	}
	s.m[key] = v
	return true
}

// Delete removes the key.
func (sm *Map[V]) Delete(key string) {
	s := sm.shard(key)
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
}

// Len counts entries across every shard.
func (sm *Map[V]) Len() int {
	n := 0
	for i := range sm.shards {
		s := &sm.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Keys returns every key, in shard order (unsorted).
func (sm *Map[V]) Keys() []string {
	out := make([]string, 0, sm.Len())
	for i := range sm.shards {
		s := &sm.shards[i]
		s.mu.RLock()
		for k := range s.m {
			out = append(out, k)
		}
		s.mu.RUnlock()
	}
	return out
}
