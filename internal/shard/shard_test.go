package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapBasics(t *testing.T) {
	m := NewMap[int]()
	if _, ok := m.Get("a"); ok {
		t.Fatal("empty map reported a key")
	}
	m.Set("a", 1)
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if m.SetIfAbsent("a", 2) {
		t.Fatal("SetIfAbsent overwrote an existing key")
	}
	if !m.SetIfAbsent("b", 2) {
		t.Fatal("SetIfAbsent failed on an absent key")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	m.Delete("a")
	if _, ok := m.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestMapGetOrCreateSingleWinner(t *testing.T) {
	m := NewMap[*int]()
	var created atomic.Int64
	const workers = 16
	results := make([]*int, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = m.GetOrCreate("key", func() *int {
				created.Add(1)
				v := new(int)
				return v
			})
		}()
	}
	wg.Wait()
	if created.Load() != 1 {
		t.Fatalf("create ran %d times", created.Load())
	}
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Fatal("workers observed different values")
		}
	}
}

func TestMapKeys(t *testing.T) {
	m := NewMap[int]()
	want := map[string]int{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("group-%d", i)
		m.Set(k, i)
		want[k] = i
	}
	keys := m.Keys()
	if len(keys) != 200 {
		t.Fatalf("Keys len = %d", len(keys))
	}
	for _, k := range keys {
		v, ok := m.Get(k)
		if !ok || v != want[k] {
			t.Fatalf("Get(%s) = %d, %v; want %d", k, v, ok, want[k])
		}
		delete(want, k)
	}
	if len(want) != 0 {
		t.Fatalf("Keys missed %d entries", len(want))
	}
}

func TestMapConcurrentDisjointKeys(t *testing.T) {
	m := NewMap[int]()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i)
				m.Set(k, i)
				if v, ok := m.Get(k); !ok || v != i {
					t.Errorf("lost %s", k)
					return
				}
				if i%2 == 0 {
					m.Delete(k)
				}
			}
		}()
	}
	wg.Wait()
	if got := m.Len(); got != 8*250 {
		t.Fatalf("Len = %d, want %d", got, 8*250)
	}
}
