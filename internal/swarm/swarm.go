// Package swarm is the fleet load harness: an open-loop generator that
// drives scripted workload mixes against a running DMPS deployment and
// measures the latencies the paper's floor-control loop promises to
// keep small — how long a member waits for a floor grant, and how long
// a posted event takes to reach every listener.
//
// Open-loop means arrival-rate driven: every operation fires at its
// pre-computed Poisson offset in its own goroutine, regardless of how
// long earlier operations are taking. A system that slows down under
// load therefore accumulates in-flight work and its tail latencies
// blow up in the report — exactly the signal a closed-loop generator
// (which politely waits for each response before sending the next
// request) would hide.
//
// Five mixes script the scenarios the system is built for:
//
//   - lecture: one holder chats to N listeners — steady fan-out;
//     measures event propagation plus periodic release/re-acquire
//     grant cycles.
//   - flash-crowd: members dial in at Poisson offsets and immediately
//     contend for a round-robin floor — join-storm admission plus
//     grant rotation under contention.
//   - moderated-churn: a moderated queue whose chair auto-approves;
//     members churn through request → approve → grant → release.
//   - reconnect-storm: established members drop and resume their
//     sessions at Poisson offsets (optionally after a node kill);
//     measures time back to service and post-resume propagation.
//   - chaos: the durability drill — a chair holds the floor and chats
//     while the Chaos hooks fell the group's owner node mid-flow
//     (and, at replication factor ≥ 3, its first successor too), then
//     optionally restart it for the WAL-replay leg. Operations ride
//     out the failover with bounded reconnect retries, so a clean
//     convergence reports zero errors and lost state fails loudly.
//
// The same engine drives a netsim lab (tests, determinism) and a real
// TCP cluster (cmd/dmps-swarm) through the Dialer seam.
package swarm

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dmps/internal/client"
	"dmps/internal/floor"
	"dmps/internal/metrics"
	"dmps/internal/protocol"
	"dmps/internal/workload"
)

// Dialer connects one swarm member to the system under test. The swarm
// fills the identity fields (Name, Role, Priority) and its measurement
// tap (OnEvent); the dialer overlays transport — Network and Addr for
// a TCP router, a lab's simulated network for tests — and dials.
// Dial errors are counted as mix errors, not fatal: a swarm keeps
// going when one member cannot get in.
type Dialer func(cfg client.Config) (*client.Client, error)

// Options configure a swarm run.
type Options struct {
	// Dial connects members (required).
	Dial Dialer
	// Seed feeds the Poisson arrival schedule; same seed, same offsets.
	Seed int64
	// Members is the listener/contender pool size per mix (default 8).
	Members int
	// Ops is the number of scheduled operations per mix (default 50).
	Ops int
	// Mean is the mean inter-arrival gap between operations — the
	// open-loop rate knob (default 10ms ≈ 100 ops/s).
	Mean time.Duration
	// Settle bounds how long a mix waits after its last scheduled
	// operation for in-flight grants and propagations to land
	// (default 2s).
	Settle time.Duration
	// Kill, when set, is invoked once at the start of the
	// reconnect-storm mix — the node-failure injection hook
	// (e.g. Cluster.KillNode).
	Kill func()
	// Chaos arms the chaos mix's failure injections. Nil (or a nil
	// KillOwner) runs the mix as steady load with no injection — what
	// a deployment the harness cannot reach into gets.
	Chaos *Chaos
	// NodeFor maps a group ID to the cluster node that owns it, for
	// per-node throughput attribution in the report. Nil means a
	// single-node deployment: everything lands on "server".
	NodeFor func(group string) string

	// Shards and Shard split one seeded schedule across N generator
	// processes: every process derives the identical global op sequence
	// from the same seed, and this process fires only the ops whose
	// global index ≡ Shard (mod Shards), driving its own disjoint
	// member range (global member index ≡ Shard mod Shards). Mixes that
	// need a chair (lecture, moderated-churn, chaos) run one chair and
	// group per shard; the chairless mixes (flash-crowd,
	// reconnect-storm) share one group across the whole fleet, so the
	// merged invariant check spans processes. Shards ≤ 1 means the
	// classic single-process run. Ops and the schedule are GLOBAL: a
	// 4-shard run of 200 ops fires 200 ops fleet-wide, ~50 per process.
	// Members stays per-shard: the fleet is Shards × Members strong.
	Shards int
	Shard  int
	// Prealloc dials each mix's whole fleet before its schedule starts,
	// so the schedule measures the server rather than the generator's
	// own dial churn. The one mix whose POINT is arrival — flash-crowd
	// — pre-dials its members but still joins them on schedule: the
	// join storm stays a scenario while the dial storm stops being an
	// accident.
	Prealloc bool
	// Barrier, when set, runs after a mix's fleet is in place and
	// before its schedule's t0 — the multi-process start gate. Shards
	// block here until the coordinator releases them (cmd/dmps-swarm
	// implements this as a ready-file/barrier-file handshake), so every
	// process's t0 lands together and the merged timeline is one
	// schedule, not N staggered ones. An error aborts the mix.
	Barrier func(mix string) error
	// Soak, when > 0, overrides Ops: each mix holds the offered rate
	// (one op per Mean) for the whole duration — the long-soak mode.
	// Pair it with a Scraper so the report correlates SLOs with the
	// servers' own gauges over the same window.
	Soak time.Duration
	// Trace stamps a sampled trace context on every request the swarm's
	// members send, so the fleet's tracing planes record per-stage spans
	// for the run's operations. Collect the resulting flight recorders
	// with CollectStages and fold them into the report with
	// AddStageBreakdown.
	Trace bool
}

// fleetSize is the global member pool across every shard.
func (o Options) fleetSize() int { return o.Shards * o.Members }

// memberName returns the globally unique name for a shard-scoped
// singleton role (a mix's chair). Single-process runs keep the classic
// name; sharded runs suffix the shard so two processes never collide in
// the fleet-wide member directory.
func (o Options) memberName(role string) string {
	if o.Shards <= 1 {
		return role
	}
	return fmt.Sprintf("%s-s%d", role, o.Shard)
}

// shardSlots returns this shard's slice of the mix's global schedule.
func (o Options) shardSlots(seed int64, ops int) []workload.Slot {
	return workload.ShardArrivals(seed, ops, o.Mean, o.Shards, o.Shard)
}

// syncStart runs the multi-process start barrier, if armed.
func (o Options) syncStart(mix string) error {
	if o.Barrier == nil {
		return nil
	}
	return o.Barrier(mix)
}

// Chaos configures the chaos mix's failure injections. Every hook
// receives the mix's group ID so the injector can target the node that
// owns it (e.g. via cluster.Map.Owner). Hooks run one at a time, with
// client load held off until the post-kill recovery completes, so the
// mix measures convergence rather than raced requests.
type Chaos struct {
	// KillOwner fells the node owning the group — the mid-flow
	// owner-kill drill. Required for any injection to happen.
	KillOwner func(group string)
	// KillSuccessor, when set, fells the group's first live ring
	// successor immediately after the owner — the double-failure
	// drill, survivable only at replication factor ≥ 3.
	KillSuccessor func(group string)
	// Restart, when set, brings the felled node(s) back later in the
	// mix (e.g. Cluster.RestartNode + Router.Recover): the WAL-replay
	// and live-migration leg. Load keeps flowing across the epoch bump.
	Restart func(group string)
}

// Mixes lists the scripted workload mixes in canonical run order.
var Mixes = []string{"lecture", "flash-crowd", "moderated-churn", "reconnect-storm", "chaos"}

// MixResult is one mix's measured outcome. Grant holds floor-grant (or
// time-back-to-service, for reconnects) latencies in seconds; Prop
// holds event-propagation latencies in seconds. Ops and Errors are
// this process's share of the global schedule; Floor carries the floor
// transitions the shard's members observed (deduplicated per group and
// log sequence) and FloorConflicts any in-run disagreements between
// members about what a given log position said — the invariant
// checker's raw material.
type MixResult struct {
	Mix            string
	Group          string
	Ops            int
	Errors         int
	Wall           time.Duration
	Grant          *metrics.Histogram
	Prop           *metrics.Histogram
	Floor          []FloorEvent
	FloorConflicts []string
	// Crashes counts the crash recoveries the mix itself injected (the
	// chaos mix's kill legs). The felled node's successor restores the
	// floor still-held, so the holder's recovery re-request logs a
	// second granted event with no release in between — a surplus
	// same-member grant per crash, which CheckFloor excuses exactly
	// that many of, and no more.
	Crashes int
}

// chairMix reports whether a mix runs a single chair, and therefore
// gets a group (and chair) per shard in a sharded run; the chairless
// mixes share one group fleet-wide so contention and the invariant
// check genuinely cross process boundaries.
func chairMix(mix string) bool {
	switch mix {
	case "lecture", "moderated-churn", "chaos":
		return true
	}
	return false
}

// mixGroup names the group a mix runs in — one group per mix, so a
// partitioned cluster spreads the mixes across nodes. The run seed is
// part of the name: against a long-lived deployment, a re-run with a
// fresh seed gets fresh groups (and a fresh chair) instead of
// inheriting the previous run's. Sharded runs of a chair mix get a
// group per shard (two processes cannot share one chair's floor);
// chairless mixes keep one group across every shard.
func mixGroup(mix string, seed int64, shards, shard int) string {
	base := fmt.Sprintf("swarm-%s-%d", mix, seed)
	if shards > 1 && chairMix(mix) {
		return fmt.Sprintf("%s-s%d", base, shard)
	}
	return base
}

// Run executes the named mixes in order and returns their results.
// Unknown mix names are an error before anything dials.
func Run(opts Options, mixes ...string) ([]MixResult, error) {
	if opts.Dial == nil {
		return nil, fmt.Errorf("swarm: Options.Dial is required")
	}
	if opts.Members <= 0 {
		opts.Members = 8
	}
	if opts.Ops <= 0 {
		opts.Ops = 50
	}
	if opts.Mean <= 0 {
		opts.Mean = 10 * time.Millisecond
	}
	if opts.Settle <= 0 {
		opts.Settle = 2 * time.Second
	}
	if opts.Shards <= 1 {
		opts.Shards, opts.Shard = 1, 0
	}
	if opts.Shard < 0 || opts.Shard >= opts.Shards {
		return nil, fmt.Errorf("swarm: shard %d outside [0, %d)", opts.Shard, opts.Shards)
	}
	if opts.Soak > 0 {
		// Long-soak mode: hold the offered rate for the duration. Ops
		// derives from the window so the schedule spans exactly Soak.
		opts.Ops = int(opts.Soak / opts.Mean)
		if opts.Ops < 1 {
			opts.Ops = 1
		}
	}
	if len(mixes) == 0 {
		mixes = Mixes
	}
	for _, m := range mixes {
		if !knownMix(m) {
			return nil, fmt.Errorf("swarm: unknown mix %q (have %s)", m, strings.Join(Mixes, ", "))
		}
	}
	var out []MixResult
	for i, m := range mixes {
		r, err := runMix(opts, m, opts.Seed+int64(i)*7919)
		if err != nil {
			return out, fmt.Errorf("swarm: mix %s: %w", m, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func knownMix(m string) bool {
	for _, k := range Mixes {
		if m == k {
			return true
		}
	}
	return false
}

func runMix(opts Options, mix string, seed int64) (MixResult, error) {
	res := MixResult{
		Mix:   mix,
		Group: mixGroup(mix, opts.Seed, opts.Shards, opts.Shard),
		Grant: metrics.NewHistogram(nil),
		Prop:  metrics.NewHistogram(nil),
	}
	// Every client this mix dials feeds the floor-transition recorder —
	// the in-run invariant checker's tap — alongside whatever
	// measurement tap the mix installs itself.
	rec := newFloorRecorder()
	dial := opts.Dial
	opts.Dial = func(cfg client.Config) (*client.Client, error) {
		if opts.Trace {
			cfg.Trace = true
		}
		next := cfg.OnEvent
		cfg.OnEvent = func(msg protocol.Message) {
			rec.tap(msg)
			if next != nil {
				next(msg)
			}
		}
		return dial(cfg)
	}
	start := time.Now()
	var err error
	switch mix {
	case "lecture":
		err = runLecture(opts, seed, &res)
	case "flash-crowd":
		err = runFlashCrowd(opts, seed, &res)
	case "moderated-churn":
		err = runModeratedChurn(opts, seed, &res)
	case "reconnect-storm":
		err = runReconnectStorm(opts, seed, &res)
	case "chaos":
		err = runChaos(opts, seed, &res)
	}
	res.Wall = time.Since(start)
	res.Floor, res.FloorConflicts = rec.drain()
	return res, err
}

// tickPrefix marks timestamped swarm chat lines: "swarm-tick <nanos>".
// Listeners parse the send time back out to measure propagation.
const tickPrefix = "swarm-tick "

// tickLine embeds the send instant in a chat line.
func tickLine() string {
	return tickPrefix + strconv.FormatInt(time.Now().UnixNano(), 10)
}

// observeTick records the propagation delay of a timestamped line, if
// it is one. Sender and listeners share one process clock, so the
// difference is a true one-way delay (plus scheduler noise).
func observeTick(h *metrics.Histogram, text string) {
	nanos, ok := strings.CutPrefix(text, tickPrefix)
	if !ok {
		return
	}
	sent, err := strconv.ParseInt(nanos, 10, 64)
	if err != nil {
		return
	}
	if d := time.Now().UnixNano() - sent; d >= 0 {
		h.Observe(float64(d) / 1e9)
	}
}

// propTap is an OnEvent hook recording chat-propagation samples into
// h. It runs synchronously in the client read loop, so it parses and
// observes without blocking work of its own.
func propTap(h *metrics.Histogram) func(protocol.Message) {
	return func(msg protocol.Message) {
		if msg.Type != protocol.TChatEvent {
			return
		}
		var body protocol.SequencedBody
		if msg.Into(&body) != nil {
			return
		}
		observeTick(h, body.Data)
		for _, more := range body.More {
			observeTick(h, more.Data)
		}
	}
}

// errCounter counts failures without failing the swarm: open-loop load
// keeps arriving whatever an individual operation did.
type errCounter struct{ n atomic.Int64 }

func (e *errCounter) note(err error) {
	if err != nil {
		if os.Getenv("SWARM_DEBUG") != "" {
			fmt.Fprintln(os.Stderr, "swarm debug:", err)
		}
		e.n.Add(1)
	}
}

// fireAt runs fn(slot.Index) in its own goroutine at each slot's offset
// past start — the open-loop dispatcher. fn receives the op's GLOBAL
// schedule index, so a shard firing every Nth op still interprets op
// semantics (who acts, whether it is a probe) exactly like a
// single-process run. The returned WaitGroup lets the caller wait for
// every scheduled operation to return.
func fireAt(start time.Time, slots []workload.Slot, fn func(i int)) *sync.WaitGroup {
	var wg sync.WaitGroup
	wg.Add(len(slots))
	for _, s := range slots {
		go func(s workload.Slot) {
			defer wg.Done()
			if d := time.Until(start.Add(s.At)); d > 0 {
				time.Sleep(d)
			}
			fn(s.Index)
		}(s)
	}
	return &wg
}

// settle waits (bounded by Settle) for in-flight measurements to land:
// until the histogram reaches the expected sample count or stops
// growing between polls.
func settle(opts Options, h *metrics.Histogram, want int64) {
	deadline := time.Now().Add(opts.Settle)
	for time.Now().Before(deadline) {
		n := h.Count()
		if n >= want {
			return
		}
		time.Sleep(25 * time.Millisecond)
		if h.Count() == n && n > 0 {
			return // drained: nothing new arrived during the poll gap
		}
	}
}

// runLecture drives the one-holder/N-listener fan-out mix: a chair
// holds an equal-control floor and posts timestamped chat lines at
// Poisson offsets; every listener's read-loop tap measures how long
// each line took to arrive. Every tenth operation the chair releases
// and re-acquires the floor, sampling uncontended grant latency.
func runLecture(opts Options, seed int64, res *MixResult) error {
	var errs errCounter
	chair, err := opts.Dial(client.Config{Name: opts.memberName("lecturer"), Role: "chair", Priority: 10})
	if err != nil {
		return err
	}
	defer chair.Close()
	if err := chair.Join(res.Group); err != nil {
		return err
	}
	var listeners []*client.Client
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	for i := 0; i < opts.Members; i++ {
		l, err := opts.Dial(client.Config{
			Name: fmt.Sprintf("listener-%d", opts.Shard+i*opts.Shards), Role: "participant", Priority: 3,
			OnEvent: propTap(res.Prop),
		})
		if err != nil {
			errs.note(err)
			continue
		}
		if err := l.Join(res.Group); err != nil {
			errs.note(err)
			l.Close()
			continue
		}
		listeners = append(listeners, l)
	}
	if err := opts.syncStart(res.Mix); err != nil {
		return err
	}
	t0 := time.Now()
	if _, err := chair.RequestFloor(res.Group, floor.EqualControl, ""); err != nil {
		return err
	}
	res.Grant.Observe(time.Since(t0).Seconds())

	// Chat ops run concurrently with each other, but never inside the
	// release→re-grant window: an equal-control chair holds no floor
	// there, and the resulting denials would be mix artifacts, not
	// system failures. The RWMutex keeps chats open-loop among
	// themselves while excluding only the probe.
	var floorMu sync.RWMutex
	slots := opts.shardSlots(seed, opts.Ops)
	chats := 0
	for _, s := range slots {
		if s.Index%10 != 9 {
			chats++
		}
	}
	fireAt(time.Now(), slots, func(i int) {
		if i%10 == 9 {
			// Release/re-acquire cycle: the grant-latency probe.
			floorMu.Lock()
			defer floorMu.Unlock()
			if err := chair.ReleaseFloor(res.Group); err != nil {
				errs.note(err)
				return
			}
			t0 := time.Now()
			dec, err := chair.RequestFloor(res.Group, floor.EqualControl, "")
			if err != nil || !dec.Granted {
				errs.note(fmt.Errorf("re-grant: granted=%v err=%v", dec.Granted, err))
				return
			}
			res.Grant.Observe(time.Since(t0).Seconds())
			return
		}
		floorMu.RLock()
		defer floorMu.RUnlock()
		errs.note(chair.Chat(res.Group, tickLine()))
	}).Wait()
	// Each of this shard's chat lines should reach every local listener
	// (sharded lectures run a group per shard, so remote shards' lines
	// land in their own groups).
	settle(opts, res.Prop, int64(len(listeners))*int64(chats))
	res.Ops = len(slots)
	res.Errors = int(errs.n.Load())
	return nil
}

// granted resolves each pending floor request exactly once: either the
// synchronous decision already granted, or a read-loop tap resolves it
// when the member's "granted" push arrives.
type granted struct {
	mu      sync.Mutex
	pending map[string]pendingGrant // member ID → request state
}

type pendingGrant struct {
	t0   time.Time
	done func(latency time.Duration)
}

func newGranted() *granted {
	return &granted{pending: make(map[string]pendingGrant)}
}

func (g *granted) arm(member string, t0 time.Time, done func(time.Duration)) {
	g.mu.Lock()
	g.pending[member] = pendingGrant{t0: t0, done: done}
	g.mu.Unlock()
}

// resolve fires the member's pending callback, if armed.
func (g *granted) resolve(member string) {
	g.mu.Lock()
	p, ok := g.pending[member]
	if ok {
		delete(g.pending, member)
	}
	g.mu.Unlock()
	if ok {
		p.done(time.Since(p.t0))
	}
}

// cancel disarms a pending request whose grant will never come.
func (g *granted) cancel(member string) {
	g.mu.Lock()
	delete(g.pending, member)
	g.mu.Unlock()
}

// grantTap is an OnEvent hook resolving pending grants when the server
// pushes a floor event that hands the watched member the floor.
func grantTap(g *granted) func(protocol.Message) {
	return func(msg protocol.Message) {
		if msg.Type != protocol.TFloorEvent {
			return
		}
		var body protocol.FloorEventBody
		if msg.Into(&body) != nil {
			return
		}
		switch body.Event {
		case "granted", "passed", "approved":
			if body.Holder != "" {
				g.resolve(body.Holder)
			}
		}
	}
}

// contend requests the floor for c and records the grant latency: the
// synchronous decision if immediate, else the later pushed grant
// resolved through g. On grant the member releases (asynchronously —
// the tap must not block the read loop), keeping the floor moving.
func contend(c *client.Client, group string, mode floor.Mode, g *granted, res *MixResult, errs *errCounter) {
	me := c.MemberID()
	g.arm(me, time.Now(), func(d time.Duration) {
		res.Grant.Observe(d.Seconds())
		go func() {
			err := c.ReleaseFloor(group)
			// A member re-requesting while still holding is granted
			// immediately and releases again; if the first release is
			// still in flight, the second finds the floor already moved
			// on — an open-loop collision, not a system failure.
			if err != nil && !strings.Contains(err.Error(), "not the floor holder") {
				errs.note(err)
			}
		}()
	})
	dec, err := c.RequestFloor(group, mode, "")
	switch {
	case err == nil && dec.Granted:
		g.resolve(me)
	case err == nil && dec.QueuePosition > 0:
		// Parked: the grant arrives as a push and the tap resolves it.
	default:
		g.cancel(me)
		errs.note(fmt.Errorf("request: %v", err))
	}
}

// runFlashCrowd drives the join-storm mix: fresh members dial in at
// Poisson offsets, join, and immediately contend for a round-robin
// floor. Whoever is granted releases at once, so the floor rotates
// through the crowd while it is still arriving. Ops beyond the global
// member pool are re-requests from already-admitted members — members
// asking again after their turn. Sharded runs share ONE group: every
// process's members contend for the same round-robin floor, so the
// merged invariant check watches one floor cross-process. With
// Prealloc the shard dials its members up front (behind the barrier)
// and the scheduled op only joins — the join storm stays a scenario
// while the dial storm stops being generator fd churn.
func runFlashCrowd(opts Options, seed int64, res *MixResult) error {
	var errs errCounter
	g := newGranted()
	var mu sync.Mutex
	var crowd []*client.Client
	prealloced := map[int]*client.Client{}
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range crowd {
			c.Close()
		}
		for _, c := range prealloced {
			c.Close()
		}
	}()
	fleet := opts.fleetSize()
	dialMember := func(global int) (*client.Client, error) {
		return opts.Dial(client.Config{
			Name: fmt.Sprintf("crowd-%d", global), Role: "participant", Priority: 3,
			OnEvent: grantTap(g),
		})
	}
	if opts.Prealloc {
		for i := 0; i < opts.Members; i++ {
			global := opts.Shard + i*opts.Shards
			c, err := dialMember(global)
			if err != nil {
				errs.note(err)
				continue
			}
			prealloced[global] = c
		}
	}
	if err := opts.syncStart(res.Mix); err != nil {
		return err
	}
	slots := opts.shardSlots(seed, opts.Ops)
	fireAt(time.Now(), slots, func(i int) {
		var c *client.Client
		if i < fleet {
			// Op i admits global member i — owned by this shard, since
			// both ops and members partition round-robin by the same
			// modulus.
			mu.Lock()
			fresh := prealloced[i]
			delete(prealloced, i)
			mu.Unlock()
			if fresh == nil {
				var err error
				if fresh, err = dialMember(i); err != nil {
					errs.note(err)
					return
				}
			}
			if err := fresh.Join(res.Group); err != nil {
				errs.note(err)
				fresh.Close()
				return
			}
			mu.Lock()
			crowd = append(crowd, fresh)
			mu.Unlock()
			c = fresh
		} else {
			mu.Lock()
			if len(crowd) > 0 {
				c = crowd[i%len(crowd)]
			}
			mu.Unlock()
			if c == nil {
				errs.note(fmt.Errorf("no admitted members yet"))
				return
			}
		}
		contend(c, res.Group, floor.RoundRobin, g, res, &errs)
	}).Wait()
	settle(opts, res.Grant, int64(len(slots)))
	res.Ops = len(slots)
	res.Errors = int(errs.n.Load())
	return nil
}

// runModeratedChurn drives the moderated-queue mix: a chair holds the
// approval duty and auto-approves every "queued" push its read loop
// sees; members churn through request → approval → grant → release at
// Poisson offsets. Grant latency spans the member's request to its
// granted push — it includes the chair's approval hop, which is the
// point of the mix.
func runModeratedChurn(opts Options, seed int64, res *MixResult) error {
	var errs errCounter
	g := newGranted()
	var chair *client.Client
	approve := func(msg protocol.Message) {
		if msg.Type != protocol.TFloorEvent {
			return
		}
		var body protocol.FloorEventBody
		if msg.Into(&body) != nil {
			return
		}
		if body.Event == "queued" && body.Member != "" {
			member := body.Member
			go func() {
				_, err := chair.ApproveFloor(res.Group, member)
				// A member's approval persists across grant cycles, so a
				// re-queued member may be promoted by a release before
				// this (redundant) approval lands — benign, not an error.
				if err != nil && !strings.Contains(err.Error(), "no pending request") {
					errs.note(err)
				}
			}()
		}
	}
	chair, err := opts.Dial(client.Config{
		Name: opts.memberName("moderator"), Role: "chair", Priority: 10, OnEvent: approve,
	})
	if err != nil {
		return err
	}
	defer chair.Close()
	if err := chair.Join(res.Group); err != nil {
		return err
	}
	if err := chair.SwitchMode(res.Group, floor.ModeratedQueue, false); err != nil {
		return err
	}
	var members []*client.Client
	defer func() {
		for _, m := range members {
			m.Close()
		}
	}()
	for i := 0; i < opts.Members; i++ {
		m, err := opts.Dial(client.Config{
			Name: fmt.Sprintf("churn-%d", opts.Shard+i*opts.Shards), Role: "participant", Priority: 3,
			OnEvent: grantTap(g),
		})
		if err != nil {
			errs.note(err)
			continue
		}
		if err := m.Join(res.Group); err != nil {
			errs.note(err)
			m.Close()
			continue
		}
		members = append(members, m)
	}
	if len(members) == 0 {
		return fmt.Errorf("no members admitted")
	}
	if err := opts.syncStart(res.Mix); err != nil {
		return err
	}
	slots := opts.shardSlots(seed, opts.Ops)
	fireAt(time.Now(), slots, func(i int) {
		contend(members[i%len(members)], res.Group, floor.ModeratedQueue, g, res, &errs)
	}).Wait()
	settle(opts, res.Grant, int64(len(slots)))
	res.Ops = len(slots)
	res.Errors = int(errs.n.Load())
	return nil
}

// runReconnectStorm drives the session-resume mix: an established
// fleet drops and resumes its sessions at Poisson offsets — after the
// optional Kill hook fells a node, for the full failover drill. The
// grant histogram here records time back to service (Drop to Reconnect
// returning), and each resumed member posts a timestamped line so the
// propagation histogram shows the post-resume fan-out is live.
func runReconnectStorm(opts Options, seed int64, res *MixResult) error {
	var errs errCounter
	// fleet[k] is global member Shard+k*Shards: members and ops
	// partition round-robin by the same modulus, so the op for global
	// member i always fires on the shard that owns the session.
	var fleet []*client.Client
	defer func() {
		for _, c := range fleet {
			c.Close()
		}
	}()
	for i := 0; i < opts.Members; i++ {
		c, err := opts.Dial(client.Config{
			Name: fmt.Sprintf("storm-%d", opts.Shard+i*opts.Shards), Role: "participant", Priority: 3,
			OnEvent: propTap(res.Prop),
		})
		if err != nil {
			errs.note(err)
			continue
		}
		if err := c.Join(res.Group); err != nil {
			errs.note(err)
			c.Close()
			continue
		}
		fleet = append(fleet, c)
	}
	if len(fleet) == 0 {
		return fmt.Errorf("no members admitted")
	}
	if err := opts.syncStart(res.Mix); err != nil {
		return err
	}
	if opts.Kill != nil {
		opts.Kill()
	}
	ops := opts.Ops
	if ops > opts.fleetSize() {
		ops = opts.fleetSize() // each member storms at most once
	}
	var ticks atomic.Int64
	slots := opts.shardSlots(seed, ops)
	fireAt(time.Now(), slots, func(i int) {
		k := i / opts.Shards // local index of global member i
		if k >= len(fleet) {
			errs.note(fmt.Errorf("member %d never admitted", i))
			return
		}
		c := fleet[k]
		t0 := time.Now()
		if !c.Drop() {
			errs.note(fmt.Errorf("drop %d failed", i))
			return
		}
		if err := c.Reconnect(); err != nil {
			errs.note(err)
			return
		}
		res.Grant.Observe(time.Since(t0).Seconds())
		if err := c.Chat(res.Group, tickLine()); err != nil {
			errs.note(err)
			return
		}
		ticks.Add(1)
	}).Wait()
	// Each of this shard's post-resume lines should reach at least the
	// local fleet (in a sharded run the shared group also fans them out
	// to every other shard's members — a lower bound, not an equality).
	settle(opts, res.Prop, ticks.Load()*int64(len(fleet)))
	res.Ops = len(slots)
	res.Errors = int(errs.n.Load())
	return nil
}

// rideOut forces c through a session resume, retrying with a short
// backoff until deadline: a failover takes real time — the probe loop
// must notice the dead node, the successor must adopt its partitions
// from the replicated logs, the router must re-route — and a single
// dial would race all of it. Drop is unconditional (a half-dead
// connection resumes the same as a live one), and the retry loop makes
// the chaos mix's error count mean "the cluster never converged", not
// "the client asked too early".
func rideOut(c *client.Client, deadline time.Time) error {
	c.Drop()
	for {
		err := c.Reconnect()
		switch {
		case err == nil:
			return nil
		case strings.Contains(err.Error(), "still connected"):
			// A racing recovery already brought the session back
			// between our Drop and this attempt: mission accomplished.
			return nil
		}
		if !time.Now().Before(deadline) {
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runChaos drives the durability drill: a chair holds an equal-control
// floor and chats timestamped lines to listeners while the Chaos hooks
// fell the group's owner node mid-flow — and, when armed, its first
// ring successor (the RF≥3 double kill) and later a restart (the
// WAL-replay leg). The kill runs behind the same write lock the chat
// load reads, so operations pause for the recovery window instead of
// racing it; any chat that still lands on a dead session resumes and
// retries once. The grant histogram records the initial grant, the
// kill-to-floor-restored interval — the service-restoration SLO — and
// an uncontended release/re-acquire probe every tenth operation, so
// the p99 gate rests on a real sample population; the propagation
// histogram shows fan-out is live on both sides of the failure. Zero errors therefore means the replicas really converged:
// holder restored, no state fabricated, every retried line delivered.
func runChaos(opts Options, seed int64, res *MixResult) error {
	var errs errCounter
	chair, err := opts.Dial(client.Config{Name: opts.memberName("chaos-chair"), Role: "chair", Priority: 10})
	if err != nil {
		return err
	}
	defer chair.Close()
	if err := chair.Join(res.Group); err != nil {
		return err
	}
	var listeners []*client.Client
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	for i := 0; i < opts.Members; i++ {
		l, err := opts.Dial(client.Config{
			Name: fmt.Sprintf("chaos-%d", opts.Shard+i*opts.Shards), Role: "participant", Priority: 3,
			OnEvent: propTap(res.Prop),
		})
		if err != nil {
			errs.note(err)
			continue
		}
		if err := l.Join(res.Group); err != nil {
			errs.note(err)
			l.Close()
			continue
		}
		listeners = append(listeners, l)
	}
	if err := opts.syncStart(res.Mix); err != nil {
		return err
	}
	t0 := time.Now()
	if _, err := chair.RequestFloor(res.Group, floor.EqualControl, ""); err != nil {
		return err
	}
	res.Grant.Observe(time.Since(t0).Seconds())

	// Chats share the read side; each injection holds the write side
	// through its recovery, so load pauses for the window instead of
	// piling errors into it.
	var floorMu sync.RWMutex
	var ticks atomic.Int64
	var chaosWG sync.WaitGroup
	span := opts.Mean * time.Duration(opts.Ops)
	if ch := opts.Chaos; ch != nil && ch.KillOwner != nil {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			time.Sleep(span / 3) // mid-flow: the floor is held, chats are in flight
			floorMu.Lock()
			defer floorMu.Unlock()
			ch.KillOwner(res.Group)
			if ch.KillSuccessor != nil {
				ch.KillSuccessor(res.Group)
			}
			killed := time.Now()
			deadline := killed.Add(opts.Settle)
			if err := rideOut(chair, deadline); err != nil {
				errs.note(fmt.Errorf("chair resume after kill: %w", err))
				return
			}
			for {
				dec, err := chair.RequestFloor(res.Group, floor.EqualControl, "")
				if err == nil && dec.Granted {
					res.Grant.Observe(time.Since(killed).Seconds())
					// The floor was restored still-held, so this
					// re-request logged a surplus grant the invariant
					// checker must excuse — exactly one.
					res.Crashes++
					break
				}
				if !time.Now().Before(deadline) {
					errs.note(fmt.Errorf("floor not restored after kill: granted=%v err=%v", dec.Granted, err))
					break
				}
				time.Sleep(100 * time.Millisecond)
			}
			for _, l := range listeners {
				if err := rideOut(l, deadline); err != nil {
					errs.note(fmt.Errorf("listener resume after kill: %w", err))
				}
			}
		}()
		if ch.Restart != nil {
			chaosWG.Add(1)
			go func() {
				defer chaosWG.Done()
				time.Sleep(2 * span / 3)
				floorMu.Lock()
				defer floorMu.Unlock()
				ch.Restart(res.Group)
			}()
		}
	}
	// resumeMu single-flights the chat fallback's session recovery:
	// open-loop chats fail in bursts when the chair's connection dies,
	// and N concurrent fallbacks each Dropping the connection the
	// previous one just restored would cascade a one-off failure into
	// a permanently churning session. The loser of the race re-probes
	// with a plain chat under the lock and usually finds the session
	// already healthy.
	var resumeMu sync.Mutex
	slots := opts.shardSlots(seed, opts.Ops)
	fireAt(time.Now(), slots, func(i int) {
		if i%10 == 9 {
			// Release/re-acquire under the write lock — the same
			// uncontended grant probe runLecture runs. Without it the
			// chaos histogram held exactly two samples (the initial
			// grant and the post-kill restore), so its p99 gate was
			// two-sample noise. Holding the write side excludes the
			// kill window, but a probe can still land just as the
			// owner's TCP peer dies, so one failure rides out the
			// session resume and retries before counting as an error.
			floorMu.Lock()
			defer floorMu.Unlock()
			probe := func() error {
				if err := chair.ReleaseFloor(res.Group); err != nil {
					return err
				}
				t0 := time.Now()
				dec, err := chair.RequestFloor(res.Group, floor.EqualControl, "")
				if err != nil {
					return err
				}
				if !dec.Granted {
					return fmt.Errorf("re-grant denied")
				}
				res.Grant.Observe(time.Since(t0).Seconds())
				return nil
			}
			if err := probe(); err != nil {
				if err := rideOut(chair, time.Now().Add(opts.Settle)); err != nil {
					errs.note(fmt.Errorf("grant probe resume: %w", err))
					return
				}
				if err := probe(); err != nil {
					errs.note(fmt.Errorf("grant probe: %w", err))
				}
			}
			return
		}
		floorMu.RLock()
		defer floorMu.RUnlock()
		if err := chair.Chat(res.Group, tickLine()); err == nil {
			ticks.Add(1)
			return
		}
		// The chat raced a failure the recovery window did not cover
		// (or none was armed): resume the session and retry until the
		// cluster converges or the settle budget runs out.
		resumeMu.Lock()
		defer resumeMu.Unlock()
		if err := chair.Chat(res.Group, tickLine()); err == nil {
			ticks.Add(1) // a racing fallback already recovered the session
			return
		}
		deadline := time.Now().Add(opts.Settle)
		if err := rideOut(chair, deadline); err != nil {
			errs.note(fmt.Errorf("chat resume: %w", err))
			return
		}
		for {
			err := chair.Chat(res.Group, tickLine())
			if err == nil {
				ticks.Add(1)
				return
			}
			if !time.Now().Before(deadline) {
				errs.note(fmt.Errorf("chat retry: %w", err))
				return
			}
			time.Sleep(100 * time.Millisecond)
		}
	}).Wait()
	chaosWG.Wait()
	// Every delivered line should reach every listener — including the
	// lines listeners missed while dead, which the resume replay owes.
	settle(opts, res.Prop, ticks.Load()*int64(len(listeners)))
	res.Ops = len(slots)
	res.Errors = int(errs.n.Load())
	return nil
}

// Report renders mix results as a BENCH_*.json-compatible document:
// "_meta" plus one "Swarm/<mix>" entry per mix carrying the SLO
// quantiles in milliseconds, one "SwarmNode/<node>" entry per cluster
// node attributing mix throughput to the node owning the mix's group,
// and one "Scrape/<endpoint>" entry per scraped /metrics endpoint.
// Every Swarm entry also carries its mergeable state — the latency
// histograms as bucket snapshots and the recorded floor transitions —
// plus the invariant checker's verdict over them, so a shard report, a
// merged fleet report and a single-process report share one schema.
func Report(results []MixResult, scrapes []ScrapeSeries, opts Options, note, goos, goarch string) map[string]map[string]any {
	if opts.Shards <= 1 {
		opts.Shards, opts.Shard = 1, 0
	}
	doc := map[string]map[string]any{
		"_meta": {
			"goos":    goos,
			"goarch":  goarch,
			"note":    note,
			"seed":    opts.Seed,
			"members": opts.Members,
			"ops":     opts.Ops,
			"shards":  opts.Shards,
			"shard":   opts.Shard,
		},
	}
	type nodeLoad struct {
		ops  int
		wall time.Duration
	}
	nodes := map[string]*nodeLoad{}
	for _, r := range results {
		doc["Swarm/"+r.Mix] = mixEntry(r)
		node := "server"
		if opts.NodeFor != nil {
			node = opts.NodeFor(r.Group)
		}
		nl := nodes[node]
		if nl == nil {
			nl = &nodeLoad{}
			nodes[node] = nl
		}
		nl.ops += r.Ops
		nl.wall += r.Wall
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		nl := nodes[n]
		perSec := 0.0
		if nl.wall > 0 {
			perSec = float64(nl.ops) / nl.wall.Seconds()
		}
		doc["SwarmNode/"+n] = map[string]any{
			"ops":       nl.ops,
			"ops_per_s": round3(perSec),
		}
	}
	for _, ss := range scrapes {
		doc["Scrape/"+ss.Endpoint] = scrapeEntry(ss)
	}
	return doc
}

// mixEntry renders one mix's measured outcome as a report entry — the
// per-mix schema shared by shard reports, single-process reports and
// MergeReports' output.
func mixEntry(r MixResult) map[string]any {
	check := CheckFloor(r.Floor, r.FloorConflicts, r.Crashes)
	if check.Violations == nil {
		check.Violations = []string{}
	}
	entry := map[string]any{
		"ops":                  r.Ops,
		"errors":               r.Errors,
		"crashes":              r.Crashes,
		"crash_excused":        check.Excused,
		"wall_ms":              round3(r.Wall.Seconds() * 1e3),
		"grant_samples":        r.Grant.Count(),
		"prop_samples":         r.Prop.Count(),
		"grant_hist":           r.Grant.Snapshot(),
		"prop_hist":            r.Prop.Snapshot(),
		"floor_events":         floorEventsOrEmpty(r.Floor),
		"floor_groups":         check.Groups,
		"floor_gaps":           check.Gaps,
		"invariant_violations": len(check.Violations),
		"violations":           check.Violations,
	}
	for _, q := range []struct {
		key string
		q   float64
	}{{"p50", 0.5}, {"p99", 0.99}, {"p999", 0.999}} {
		entry["grant_"+q.key+"_ms"] = round3(r.Grant.Quantile(q.q) * 1e3)
		entry["prop_"+q.key+"_ms"] = round3(r.Prop.Quantile(q.q) * 1e3)
	}
	return entry
}

// scrapeEntry renders one endpoint's scraped timeline as a report entry.
func scrapeEntry(ss ScrapeSeries) map[string]any {
	return map[string]any{
		"samples": len(ss.AtMS),
		"at_ms":   ss.AtMS,
		"series":  ss.Series,
		"errors":  ss.Errors,
	}
}

// round3 trims a float to 3 decimals for the JSON report — the report
// is milliseconds, so this keeps microsecond resolution. NaN (an empty
// histogram's quantile) renders as 0 rather than invalid JSON.
func round3(v float64) float64 {
	if v != v {
		return 0
	}
	return float64(int64(v*1000+0.5)) / 1000
}
