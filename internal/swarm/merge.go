package swarm

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"dmps/internal/metrics"
)

// MergeReports folds N shard reports into one fleet report with the
// same schema as a single-process run: histograms merge bucket-wise
// (quantiles recomputed over the union — never averaged), ops and
// errors sum, wall is the slowest shard (the shards ran concurrently),
// node throughput adds up, and every shard's recorded floor
// transitions pool into one timeline per group over which the
// floor-exclusivity invariant is re-checked — the step that turns N
// partial views into a fleet-wide verdict. Shard-level violations are
// carried through, so merging can add findings but never lose them.
func MergeReports(docs []map[string]map[string]any) (map[string]map[string]any, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("merge: no reports")
	}

	type mixAgg struct {
		res   MixResult
		seen  map[string]bool // dedup of carried violation strings
		hists [2]*metrics.Histogram
	}
	mixes := map[string]*mixAgg{}
	type nodeAgg struct {
		ops     int
		opsPerS float64
	}
	nodes := map[string]*nodeAgg{}
	stages := map[string]*StageSample{}
	out := map[string]map[string]any{}

	for i, doc := range docs {
		keys := make([]string, 0, len(doc))
		for k := range doc {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			entry := doc[key]
			switch {
			case key == "_meta":
				if out["_meta"] == nil {
					meta := map[string]any{}
					for k, v := range entry {
						meta[k] = v
					}
					// The merged document speaks for every shard at once.
					meta["shard"] = -1
					out["_meta"] = meta
				}
			case strings.HasPrefix(key, "Swarm/"):
				agg := mixes[key]
				if agg == nil {
					agg = &mixAgg{seen: map[string]bool{}}
					agg.res.Mix = strings.TrimPrefix(key, "Swarm/")
					mixes[key] = agg
				}
				if err := mergeMixEntry(agg.seen, &agg.res, &agg.hists, entry); err != nil {
					return nil, fmt.Errorf("merge: report %d, %s: %w", i, key, err)
				}
			case strings.HasPrefix(key, "SwarmNode/"):
				agg := nodes[key]
				if agg == nil {
					agg = &nodeAgg{}
					nodes[key] = agg
				}
				agg.ops += int(asFloat(entry["ops"]))
				agg.opsPerS += asFloat(entry["ops_per_s"])
			case strings.HasPrefix(key, "Stage/"):
				if err := mergeStageEntry(stages, key, entry); err != nil {
					return nil, fmt.Errorf("merge: report %d, %s: %w", i, key, err)
				}
			default:
				// Scrape/<endpoint> and anything future: shards scrape
				// disjoint endpoint sets by convention; a collision keeps
				// both under a disambiguated key rather than dropping one.
				k := key
				for n := 2; out[k] != nil; n++ {
					k = fmt.Sprintf("%s#%d", key, n)
				}
				out[k] = entry
			}
		}
	}

	for key, agg := range mixes {
		agg.res.Floor = dedupeFloorEvents(agg.res.Floor)
		agg.res.Grant, agg.res.Prop = agg.hists[0], agg.hists[1]
		if agg.res.Grant == nil {
			agg.res.Grant = metrics.NewHistogram(nil)
		}
		if agg.res.Prop == nil {
			agg.res.Prop = metrics.NewHistogram(nil)
		}
		out[key] = mixEntry(agg.res)
	}
	for key, agg := range nodes {
		out[key] = map[string]any{
			"ops":       agg.ops,
			"ops_per_s": round3(agg.opsPerS),
		}
	}
	for key, agg := range stages {
		out[key] = stageEntry(*agg)
	}
	return out, nil
}

// mergeStageEntry folds one shard's Stage/<stage> breakdown into the
// running aggregate: spans sum, histograms merge bucket-wise (quantiles
// recomputed over the union), and origins takes the max — shards pool
// the same fleet's flight recorders, so summing would double-count the
// processes every shard visited.
func mergeStageEntry(stages map[string]*StageSample, key string, entry map[string]any) error {
	var snap metrics.HistogramSnapshot
	if err := reencode(entry["hist"], &snap); err != nil {
		return fmt.Errorf("hist: %w", err)
	}
	agg := stages[key]
	if agg == nil {
		h, err := metrics.FromSnapshot(snap)
		if err != nil {
			return fmt.Errorf("hist: %w", err)
		}
		agg = &StageSample{Stage: strings.TrimPrefix(key, "Stage/"), Hist: h}
		stages[key] = agg
	} else if err := agg.Hist.Merge(snap); err != nil {
		return fmt.Errorf("hist: %w", err)
	}
	agg.Spans += int(asFloat(entry["spans"]))
	if o := int(asFloat(entry["origins"])); o > agg.Origins {
		agg.Origins = o
	}
	return nil
}

// mergeMixEntry folds one shard's Swarm/<mix> entry into the running
// aggregate: counters sum, wall maxes, histograms merge, floor
// transitions and violations pool.
func mergeMixEntry(seen map[string]bool, res *MixResult, hists *[2]*metrics.Histogram, entry map[string]any) error {
	res.Ops += int(asFloat(entry["ops"]))
	res.Errors += int(asFloat(entry["errors"]))
	res.Crashes += int(asFloat(entry["crashes"]))
	if wall := time.Duration(asFloat(entry["wall_ms"]) * float64(time.Millisecond)); wall > res.Wall {
		res.Wall = wall
	}
	for i, key := range []string{"grant_hist", "prop_hist"} {
		var snap metrics.HistogramSnapshot
		if err := reencode(entry[key], &snap); err != nil {
			return fmt.Errorf("%s: %w", key, err)
		}
		if hists[i] == nil {
			h, err := metrics.FromSnapshot(snap)
			if err != nil {
				return fmt.Errorf("%s: %w", key, err)
			}
			hists[i] = h
		} else if err := hists[i].Merge(snap); err != nil {
			return fmt.Errorf("%s: %w", key, err)
		}
	}
	var evs []FloorEvent
	if err := reencode(entry["floor_events"], &evs); err != nil {
		return fmt.Errorf("floor_events: %w", err)
	}
	res.Floor = append(res.Floor, evs...)
	var carried []string
	if err := reencode(entry["violations"], &carried); err != nil {
		return fmt.Errorf("violations: %w", err)
	}
	for _, v := range carried {
		if !seen[v] {
			seen[v] = true
			res.FloorConflicts = append(res.FloorConflicts, v)
		}
	}
	return nil
}

// dedupeFloorEvents sorts pooled shard timelines by (group, cseq) and
// drops exact duplicates — shards watching a shared group each recorded
// the same log. Distinct records at the same position both survive:
// they are the split-brain evidence CheckFloor reports.
func dedupeFloorEvents(evs []FloorEvent) []FloorEvent {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Group != evs[j].Group {
			return evs[i].Group < evs[j].Group
		}
		return evs[i].CSeq < evs[j].CSeq
	})
	out := evs[:0]
	seen := map[FloorEvent]bool{}
	for _, ev := range evs {
		if !seen[ev] {
			seen[ev] = true
			out = append(out, ev)
		}
	}
	return out
}

// reencode converts a decoded-JSON (or native) value into a typed one
// via a JSON hop — the merge reads reports both freshly built by Report
// and loaded back from disk.
func reencode(v, into any) error {
	if v == nil {
		return fmt.Errorf("missing value")
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, into)
}

// asFloat reads a report number whatever form it took: float64 from a
// JSON decode, or a native integer from a freshly built document.
func asFloat(v any) float64 {
	switch n := v.(type) {
	case float64:
		return n
	case int:
		return float64(n)
	case int64:
		return float64(n)
	case json.Number:
		f, _ := n.Float64()
		return f
	}
	return 0
}
