package swarm

import (
	"fmt"
	"sort"
	"sync"

	"dmps/internal/floor"
	"dmps/internal/protocol"
)

// FloorEvent is one logged floor transition as a swarm member observed
// it: the fields of the server's authoritative log entry that every
// recipient must agree on. QueuePosition is deliberately absent — the
// server personalizes it per recipient, so two members legitimately see
// different copies of the same log position there.
type FloorEvent struct {
	Group  string `json:"group"`
	CSeq   int64  `json:"cseq"`
	GSeq   int64  `json:"gseq"`
	Event  string `json:"event"`
	Mode   string `json:"mode,omitempty"`
	Holder string `json:"holder,omitempty"`
	Member string `json:"member,omitempty"`
}

// floorRecorder taps every message a mix's clients receive and keeps
// one record per (group, log position). Members of a group all receive
// the same logged floor events, so the recorder deduplicates — and any
// two members disagreeing about what a log position said is itself a
// finding (a split-brain symptom), noted as a conflict.
type floorRecorder struct {
	mu        sync.Mutex
	seen      map[string]FloorEvent
	conflicts []string
}

func newFloorRecorder() *floorRecorder {
	return &floorRecorder{seen: make(map[string]FloorEvent)}
}

// tap records msg if it is a logged floor event. It runs synchronously
// in client read loops, so it filters cheaply and never blocks.
func (r *floorRecorder) tap(msg protocol.Message) {
	if msg.Type != protocol.TFloorEvent || msg.GSeq == 0 || msg.Group == "" {
		return
	}
	var body protocol.FloorEventBody
	if msg.Into(&body) != nil {
		return
	}
	ev := FloorEvent{
		Group:  msg.Group,
		CSeq:   msg.CSeq,
		GSeq:   msg.GSeq,
		Event:  body.Event,
		Mode:   body.Mode,
		Holder: body.Holder,
		Member: body.Member,
	}
	key := fmt.Sprintf("%s\x00%d", ev.Group, ev.CSeq)
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, ok := r.seen[key]
	if !ok {
		r.seen[key] = ev
		return
	}
	if prev != ev {
		r.conflicts = append(r.conflicts, fmt.Sprintf(
			"conflict: group %s cseq %d observed as %s member=%s holder=%s gseq=%d and as %s member=%s holder=%s gseq=%d",
			ev.Group, ev.CSeq,
			prev.Event, prev.Member, prev.Holder, prev.GSeq,
			ev.Event, ev.Member, ev.Holder, ev.GSeq))
	}
}

// drain returns the recorded transitions sorted by (group, cseq) plus
// any in-run conflicts, and resets nothing — a mix drains exactly once.
func (r *floorRecorder) drain() ([]FloorEvent, []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FloorEvent, 0, len(r.seen))
	for _, ev := range r.seen {
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Group != out[j].Group {
			return out[i].Group < out[j].Group
		}
		return out[i].CSeq < out[j].CSeq
	})
	return out, r.conflicts
}

// FloorCheck is the invariant checker's verdict over a set of recorded
// floor transitions.
type FloorCheck struct {
	// Groups is how many groups the events span.
	Groups int
	// Gaps counts breaks in per-group CSeq density — positions the
	// recorders never saw (compaction, late joins). Accounting stops at
	// the first gap rather than guessing across it, so gaps bound the
	// checker's reach; they are not violations.
	Gaps int
	// Violations are the exclusivity breaches, deduplicated.
	Violations []string
	// Excused counts surplus same-member grants written off against
	// the caller's crash budget instead of flagged.
	Excused int
}

// CheckFloor runs the floor-exclusivity invariant over recorded
// transitions: at most one holder per group at any instant, and no
// duplicate grants. conflicts (a recorder's or a prior shard report's
// findings) are carried into the verdict verbatim.
//
// The server logs every floor event with Mode/Holder re-read from the
// authoritative floor state inside the log append, but acks the caller
// BEFORE the append — so adjacent event kinds can legitimately appear
// reordered within a one-round-trip race window, and a release's
// re-read Holder can already name the NEXT grantee (whose own granted
// event follows). The checker therefore never judges adjacent ordering
// and never lets a Holder field prove an acquisition; it runs
// order-insensitive per-member accounting over each group's dense CSeq
// prefix:
//
//	grants(X) = granted(Member=X) + approved(Member=X, Holder=X:
//	            approval of a free floor grants at once)
//	promos(X) = released(Holder=X≠Member) + passed(Holder=X) —
//	            a promotion hands X the floor with no granted event,
//	            but the mark is racy, so it only EXCUSES releases
//	rels(X)   = released(Member=X) + passed(Member=X)
//
// grants(X) − rels(X) above 1 proves a grant was issued while X
// already held with no release in between — a duplicate grant (grants
// and releases are counted from event kinds alone, which the reorder
// race never changes). rels(X) above grants(X) + promos(X) proves a
// release the log never granted. More than one member with
// grants − rels positive proves two holders at once. Direct Contact
// grants are exempt (they run beside the group floor and carry no
// claim on it), and a mode_switch resets the books (switching resets
// the whole floor). Accounting only runs on the CSeq window anchored
// at 1 and stops at the first gap: a partial view cannot know who held
// before it started watching.
//
// crashes is the mix's injected-crash budget: each crash the generator
// itself inflicted (the chaos mix's kill legs) can leave exactly one
// surplus same-member grant in the log — the recovered floor is
// restored still-held, so the recovery re-request logs a second
// granted event with no release in between. The checker writes off up
// to crashes such surpluses (counted in Excused) and flags everything
// beyond the budget; a crash excuses only the same-member double
// grant, never a second holder or a stray release.
func CheckFloor(events []FloorEvent, conflicts []string, crashes int) FloorCheck {
	check := FloorCheck{}
	violations := append([]string{}, conflicts...)

	byKey := make(map[string]FloorEvent, len(events))
	groups := map[string][]FloorEvent{}
	for _, ev := range events {
		key := fmt.Sprintf("%s\x00%d", ev.Group, ev.CSeq)
		prev, ok := byKey[key]
		if !ok {
			byKey[key] = ev
			groups[ev.Group] = append(groups[ev.Group], ev)
			continue
		}
		if prev != ev {
			violations = append(violations, fmt.Sprintf(
				"split-brain: group %s cseq %d recorded as %s member=%s holder=%s gseq=%d and as %s member=%s holder=%s gseq=%d",
				ev.Group, ev.CSeq,
				prev.Event, prev.Member, prev.Holder, prev.GSeq,
				ev.Event, ev.Member, ev.Holder, ev.GSeq))
		}
	}
	check.Groups = len(groups)

	names := make([]string, 0, len(groups))
	for g := range groups {
		names = append(names, g)
	}
	sort.Strings(names)
	directContact := floor.DirectContact.String()
	for _, g := range names {
		evs := groups[g]
		sort.Slice(evs, func(i, j int) bool { return evs[i].CSeq < evs[j].CSeq })
		dense := len(evs)
		for i := 1; i < len(evs); i++ {
			if evs[i].CSeq != evs[i-1].CSeq+1 {
				check.Gaps++
				if i < dense {
					dense = i
				}
			}
		}
		if len(evs) == 0 || evs[0].CSeq != 1 {
			continue // never saw the group's genesis: no holder baseline
		}
		grants, promos, rels := map[string]int{}, map[string]int{}, map[string]int{}
		flush := func() {
			seen := map[string]bool{}
			members := []string{}
			for _, counts := range []map[string]int{grants, promos, rels} {
				for m := range counts {
					if !seen[m] {
						seen[m] = true
						members = append(members, m)
					}
				}
			}
			sort.Strings(members)
			holders := []string{}
			for _, m := range members {
				if surplus := grants[m] - rels[m] - 1; surplus > 0 {
					if excuse := min(surplus, crashes); excuse > 0 {
						crashes -= excuse
						check.Excused += excuse
						surplus -= excuse
					}
					if surplus > 0 {
						violations = append(violations, fmt.Sprintf(
							"duplicate grant: group %s member %s granted %d, released %d",
							g, m, grants[m], rels[m]))
					}
				}
				if rels[m] > grants[m]+promos[m] {
					violations = append(violations, fmt.Sprintf(
						"release without grant: group %s member %s granted %d, promoted %d, released %d",
						g, m, grants[m], promos[m], rels[m]))
				}
				if grants[m]-rels[m] > 0 {
					holders = append(holders, m)
				}
			}
			if len(holders) > 1 {
				violations = append(violations, fmt.Sprintf(
					"multiple holders: group %s held by %v at once", g, holders))
			}
			grants, promos, rels = map[string]int{}, map[string]int{}, map[string]int{}
		}
		for _, ev := range evs[:dense] {
			if ev.Event == "mode_switch" {
				flush() // switching modes resets the whole floor
				continue
			}
			if ev.Event == "granted" && ev.Mode == directContact {
				continue // a private window, not the group floor
			}
			switch ev.Event {
			case "granted":
				grants[ev.Member]++
			case "passed":
				rels[ev.Member]++
				if ev.Holder != "" {
					promos[ev.Holder]++
				}
			case "released":
				rels[ev.Member]++
				if ev.Holder != "" && ev.Holder != ev.Member {
					promos[ev.Holder]++ // a release promotes the next in queue
				}
			case "approved":
				if ev.Holder != "" && ev.Holder == ev.Member {
					grants[ev.Member]++ // approval of a free floor grants at once
				}
			}
		}
		flush()
	}

	seen := map[string]bool{}
	for _, v := range violations {
		if !seen[v] {
			seen[v] = true
			check.Violations = append(check.Violations, v)
		}
	}
	return check
}

// floorEventsOrEmpty keeps the report's floor_events key a JSON array
// even when a mix recorded nothing.
func floorEventsOrEmpty(evs []FloorEvent) []FloorEvent {
	if evs == nil {
		return []FloorEvent{}
	}
	return evs
}
