package swarm

import (
	"net/http/httptest"
	"testing"
	"time"

	"dmps/internal/trace"
)

// TestCollectStagesAndMerge drives the report's stage-breakdown path
// end to end in-process: spans recorded into a real tracing plane,
// served over its /debug/traces handler, pooled by CollectStages,
// rendered by AddStageBreakdown, and folded shard-wise by MergeReports
// — spans summing, origins maxing, quantiles recomputed off the merged
// buckets.
func TestCollectStagesAndMerge(t *testing.T) {
	p := trace.NewPlane("node-a", nil, 0)
	defer p.Close()
	now := time.Now()
	p.SpanDur(1, 1, trace.StageDispatch, now, 2*time.Millisecond)
	p.SpanDur(1, 1, trace.StageArbitrate, now, time.Millisecond)
	p.SpanDur(2, 2, trace.StageDispatch, now, 4*time.Millisecond)
	// Finalize: first sweep drains, second finds the traces quiet.
	p.Sweep()
	p.Sweep()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	stages, err := CollectStages([]string{srv.URL})
	if err != nil {
		t.Fatalf("CollectStages: %v", err)
	}
	byName := map[string]StageSample{}
	for _, s := range stages {
		byName[s.Stage] = s
	}
	if s := byName[trace.StageDispatch]; s.Spans != 2 || s.Origins != 1 {
		t.Fatalf("dispatch stage = %+v, want 2 spans from 1 origin", s)
	}
	if s := byName[trace.StageArbitrate]; s.Spans != 1 {
		t.Fatalf("arbitrate stage = %+v, want 1 span", s)
	}

	// Two shards pooled the same fleet: spans sum (the double count is
	// the documented shard-overlap semantics), origins max.
	doc1 := map[string]map[string]any{}
	AddStageBreakdown(doc1, stages)
	doc2 := map[string]map[string]any{}
	AddStageBreakdown(doc2, stages)
	merged, err := MergeReports([]map[string]map[string]any{doc1, doc2})
	if err != nil {
		t.Fatalf("MergeReports: %v", err)
	}
	entry := merged["Stage/"+trace.StageDispatch]
	if entry == nil {
		t.Fatalf("merged report lost the dispatch stage: %v", merged)
	}
	if got := entry["spans"]; got != 4 {
		t.Errorf("merged dispatch spans = %v, want 4", got)
	}
	if got := entry["origins"]; got != 1 {
		t.Errorf("merged dispatch origins = %v, want 1 (max, not sum)", got)
	}
	p50, _ := entry["p50_ms"].(float64)
	if !(p50 > 0) {
		t.Errorf("merged dispatch p50_ms = %v, want > 0", entry["p50_ms"])
	}
}

// TestCollectStagesUnreachable pins the partial-failure contract: a
// dead endpoint yields a loud error but does not discard what the
// reachable ones returned.
func TestCollectStagesUnreachable(t *testing.T) {
	p := trace.NewPlane("node-b", nil, 0)
	defer p.Close()
	p.SpanDur(3, 3, trace.StageRelay, time.Now(), time.Millisecond)
	p.Sweep()
	p.Sweep()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	stages, err := CollectStages([]string{srv.URL, "127.0.0.1:1"})
	if err == nil {
		t.Fatal("no error for unreachable endpoint")
	}
	if len(stages) == 0 || stages[0].Stage != trace.StageRelay {
		t.Fatalf("reachable endpoint's stages lost: %+v", stages)
	}
}
