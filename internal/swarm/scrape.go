package swarm

import (
	"bufio"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ScrapeSeries is one endpoint's sampled gauge/counter timeline over a
// swarm run: AtMS[k] is the k-th scrape's offset from the scraper's
// start, and every series holds one value per scrape (0-padded where a
// series was absent), so a merged report correlates the generator's
// SLOs with the servers' own instruments on one clock.
type ScrapeSeries struct {
	Endpoint string               `json:"endpoint"`
	AtMS     []float64            `json:"at_ms"`
	Series   map[string][]float64 `json:"series"`
	Errors   int                  `json:"errors"`
}

// Scraper polls Prometheus /metrics endpoints on an interval while a
// swarm run is in flight, keeping every dmps_ series except histogram
// buckets (the report already carries the swarm's own histograms; the
// point here is the servers' gauges and totals). Start scrapes once
// immediately and Stop scrapes once more before returning, so even the
// shortest soak yields two correlated samples per endpoint.
type Scraper struct {
	endpoints []string
	interval  time.Duration
	client    *http.Client

	mu     sync.Mutex
	t0     time.Time
	series []*ScrapeSeries
	stop   chan struct{}
	done   chan struct{}
}

// NewScraper builds a scraper over endpoints ("host:port" or a full
// URL). interval ≤ 0 defaults to 1s.
func NewScraper(endpoints []string, interval time.Duration) *Scraper {
	if interval <= 0 {
		interval = time.Second
	}
	s := &Scraper{
		endpoints: endpoints,
		interval:  interval,
		client:    &http.Client{Timeout: 2 * time.Second},
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, ep := range endpoints {
		s.series = append(s.series, &ScrapeSeries{
			Endpoint: ep,
			Series:   map[string][]float64{},
		})
	}
	return s
}

// Start begins polling. A Scraper starts once.
func (s *Scraper) Start() {
	s.t0 = time.Now()
	s.sweep()
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				s.sweep()
			}
		}
	}()
}

// Stop halts polling, takes one final sample, and returns the
// collected timelines with every series padded to the sample count.
func (s *Scraper) Stop() []ScrapeSeries {
	close(s.stop)
	<-s.done
	s.sweep()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ScrapeSeries, 0, len(s.series))
	for _, ss := range s.series {
		for name, vals := range ss.Series {
			for len(vals) < len(ss.AtMS) {
				vals = append(vals, 0)
			}
			ss.Series[name] = vals
		}
		out = append(out, *ss)
	}
	return out
}

// sweep samples every endpoint once.
func (s *Scraper) sweep() {
	at := time.Since(s.t0).Seconds() * 1e3
	for _, ss := range s.series {
		samples, err := s.scrapeOne(ss.Endpoint)
		s.mu.Lock()
		k := len(ss.AtMS)
		ss.AtMS = append(ss.AtMS, round3(at))
		if err != nil {
			ss.Errors++
		}
		for name, v := range samples {
			vals := ss.Series[name]
			for len(vals) < k {
				vals = append(vals, 0) // series appeared mid-run: backfill
			}
			ss.Series[name] = append(vals, v)
		}
		s.mu.Unlock()
	}
}

// scrapeOne fetches and parses one endpoint's exposition.
func (s *Scraper) scrapeOne(endpoint string) (map[string]float64, error) {
	url := endpoint
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url + "/metrics"
	}
	resp, err := s.client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		name, value, ok := parseMetricLine(sc.Text())
		if ok {
			out[name] = value
		}
	}
	return out, sc.Err()
}

// parseMetricLine extracts one Prometheus text-format sample, keeping
// only dmps_ series and dropping histogram buckets.
func parseMetricLine(line string) (string, float64, bool) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "dmps_") {
		return "", 0, false
	}
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", 0, false
	}
	name, raw := line[:sp], line[sp+1:]
	if base, _, _ := strings.Cut(name, "{"); strings.HasSuffix(base, "_bucket") {
		return "", 0, false
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return "", 0, false
	}
	return name, v, true
}

// sortedSeriesNames lists a ScrapeSeries' series names, ordered.
func sortedSeriesNames(ss ScrapeSeries) []string {
	names := make([]string, 0, len(ss.Series))
	for n := range ss.Series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
