package swarm

import (
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/cluster"
	"dmps/internal/core"
	"dmps/internal/metrics"
)

// labOptions keeps the fleet tiny and the probes fast: the point is
// that every mix produces measurements, not throughput.
func labOptions(t *testing.T) (Options, *core.Cluster) {
	t.Helper()
	lab, err := core.StartCluster(core.ClusterOptions{
		Options: core.Options{Seed: 7},
		Nodes:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lab.Close)
	host := 0
	return Options{
		Dial: func(cfg client.Config) (*client.Client, error) {
			// Each member gets its own simulated host, like real fleets.
			host++
			cfg.Network = lab.Net.From(cfg.Name)
			cfg.Addr = core.RouterAddr
			cfg.Timeout = 5 * time.Second
			return client.Dial(cfg)
		},
		Seed:    42,
		Members: 3,
		Ops:     12,
		Mean:    2 * time.Millisecond,
		Settle:  3 * time.Second,
	}, lab
}

// TestSwarmMixesProduceHistograms runs every scripted mix against a
// two-node netsim cluster and checks each yields the measurements its
// SLO report is built from: grant samples for every mix, propagation
// samples for the fan-out mixes, and no errors — deterministically,
// with no real network involved.
func TestSwarmMixesProduceHistograms(t *testing.T) {
	opts, _ := labOptions(t)
	results, err := Run(opts, Mixes...)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Mixes) {
		t.Fatalf("got %d results, want %d", len(results), len(Mixes))
	}
	for _, r := range results {
		if r.Errors > 0 {
			t.Errorf("%s: %d errors", r.Mix, r.Errors)
		}
		if r.Grant.Count() == 0 {
			t.Errorf("%s: empty grant histogram", r.Mix)
		}
		if q := r.Grant.Quantile(0.99); !(q > 0) {
			t.Errorf("%s: grant p99 = %v, want > 0", r.Mix, q)
		}
		switch r.Mix {
		case "lecture", "reconnect-storm":
			if r.Prop.Count() == 0 {
				t.Errorf("%s: empty propagation histogram", r.Mix)
			}
		}
	}
}

// TestSwarmReconnectStormSurvivesKill wires the Kill hook to a node
// kill: the storm reconnects through the failover and still measures
// time back to service for every member.
func TestSwarmReconnectStormSurvivesKill(t *testing.T) {
	opts, lab := labOptions(t)
	opts.Kill = func() { lab.KillNode(1) }
	opts.Settle = 5 * time.Second
	results, err := Run(opts, "reconnect-storm")
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Grant.Count() == 0 {
		t.Fatalf("no reconnects measured (errors=%d)", r.Errors)
	}
}

// TestSwarmChaosOwnerKillAndRestart arms the chaos mix's full drill on
// a three-node WAL-backed cluster: the group's owner is felled
// mid-floor-hold, load rides out the failover onto the replica, and the
// restart leg brings the node back (WAL replay) and migrates its
// partitions home through Router.Recover — all with zero errors, which
// is the mix's definition of "no logged state was lost".
func TestSwarmChaosOwnerKillAndRestart(t *testing.T) {
	lab, err := core.StartCluster(core.ClusterOptions{
		Options:           core.Options{Seed: 7},
		Nodes:             3,
		ReplicationFactor: 2,
		WALDir:            t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lab.Close)
	opts := Options{
		Dial: func(cfg client.Config) (*client.Client, error) {
			cfg.Network = lab.Net.From(cfg.Name)
			cfg.Addr = core.RouterAddr
			cfg.Timeout = 5 * time.Second
			return client.Dial(cfg)
		},
		Seed:    42,
		Members: 3,
		Ops:     12,
		Mean:    2 * time.Millisecond,
		Settle:  8 * time.Second,
	}
	addrs := make([]string, 3)
	for i := range addrs {
		addrs[i] = core.NodeAddr(i)
	}
	pmap := cluster.NewMap(addrs)
	killed := -1 // written and read under the mix's injection lock
	opts.Chaos = &Chaos{
		KillOwner: func(group string) {
			killed, _ = pmap.Owner(group)
			lab.KillNode(killed)
		},
		Restart: func(group string) {
			if killed < 0 {
				return
			}
			if err := lab.RestartNode(killed); err != nil {
				t.Error(err)
				return
			}
			if err := lab.Router.Recover(killed); err != nil {
				t.Error(err)
			}
		},
	}
	results, err := Run(opts, "chaos")
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Errors > 0 {
		t.Errorf("chaos: %d errors, want 0 (clean convergence)", r.Errors)
	}
	if killed < 0 {
		t.Fatal("kill hook never fired")
	}
	if r.Grant.Count() < 2 {
		t.Errorf("grant samples = %d, want initial grant + post-kill restoration", r.Grant.Count())
	}
	if r.Prop.Count() == 0 {
		t.Error("no propagation samples across the failure")
	}
}

// TestSwarmReport renders results into the BENCH_*.json-compatible
// shape: _meta, one Swarm/<mix> entry with the quantile units, and
// per-node throughput attribution through NodeFor.
func TestSwarmReport(t *testing.T) {
	h := metrics.NewHistogram(nil)
	for i := 0; i < 100; i++ {
		h.Observe(0.001 * float64(i+1))
	}
	res := []MixResult{{
		Mix: "lecture", Group: "swarm-lecture",
		Ops: 100, Wall: time.Second, Grant: h, Prop: metrics.NewHistogram(nil),
	}}
	opts := Options{Members: 3, Ops: 100, NodeFor: func(string) string { return "node0" }}
	doc := Report(res, opts, "test", "linux", "amd64")
	meta := doc["_meta"]
	if meta["goos"] != "linux" || meta["note"] != "test" {
		t.Fatalf("_meta = %v", meta)
	}
	entry := doc["Swarm/lecture"]
	if entry == nil {
		t.Fatal("missing Swarm/lecture entry")
	}
	p99, ok := entry["grant_p99_ms"].(float64)
	if !ok || !(p99 > 0) {
		t.Fatalf("grant_p99_ms = %v", entry["grant_p99_ms"])
	}
	// Empty propagation histogram must render as 0, not NaN (invalid JSON).
	if v := entry["prop_p99_ms"].(float64); v != 0 {
		t.Fatalf("prop_p99_ms = %v, want 0 for empty histogram", v)
	}
	node := doc["SwarmNode/node0"]
	if node == nil || node["ops"].(int) != 100 {
		t.Fatalf("SwarmNode/node0 = %v", node)
	}
}

// TestSwarmUnknownMix fails fast, before anything dials.
func TestSwarmUnknownMix(t *testing.T) {
	_, err := Run(Options{Dial: func(client.Config) (*client.Client, error) {
		t.Fatal("dialed for an unknown mix")
		return nil, nil
	}}, "rave")
	if err == nil {
		t.Fatal("want error for unknown mix")
	}
}
