package swarm

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/cluster"
	"dmps/internal/core"
	"dmps/internal/metrics"
	"dmps/internal/protocol"
	"dmps/internal/workload"
)

// labOptions keeps the fleet tiny and the probes fast: the point is
// that every mix produces measurements, not throughput.
func labOptions(t *testing.T) (Options, *core.Cluster) {
	t.Helper()
	lab, err := core.StartCluster(core.ClusterOptions{
		Options: core.Options{Seed: 7},
		Nodes:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lab.Close)
	return Options{
		Dial: func(cfg client.Config) (*client.Client, error) {
			// Each member gets its own simulated host, like real fleets.
			cfg.Network = lab.Net.From(cfg.Name)
			cfg.Addr = core.RouterAddr
			cfg.Timeout = 5 * time.Second
			return client.Dial(cfg)
		},
		Seed:    42,
		Members: 3,
		Ops:     12,
		Mean:    2 * time.Millisecond,
		Settle:  3 * time.Second,
	}, lab
}

// TestSwarmMixesProduceHistograms runs every scripted mix against a
// two-node netsim cluster and checks each yields the measurements its
// SLO report is built from: grant samples for every mix, propagation
// samples for the fan-out mixes, and no errors — deterministically,
// with no real network involved.
func TestSwarmMixesProduceHistograms(t *testing.T) {
	opts, _ := labOptions(t)
	results, err := Run(opts, Mixes...)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Mixes) {
		t.Fatalf("got %d results, want %d", len(results), len(Mixes))
	}
	for _, r := range results {
		if r.Errors > 0 {
			t.Errorf("%s: %d errors", r.Mix, r.Errors)
		}
		if r.Grant.Count() == 0 {
			t.Errorf("%s: empty grant histogram", r.Mix)
		}
		if q := r.Grant.Quantile(0.99); !(q > 0) {
			t.Errorf("%s: grant p99 = %v, want > 0", r.Mix, q)
		}
		switch r.Mix {
		case "lecture", "reconnect-storm":
			if r.Prop.Count() == 0 {
				t.Errorf("%s: empty propagation histogram", r.Mix)
			}
		}
	}
}

// TestSwarmReconnectStormSurvivesKill wires the Kill hook to a node
// kill: the storm reconnects through the failover and still measures
// time back to service for every member.
func TestSwarmReconnectStormSurvivesKill(t *testing.T) {
	opts, lab := labOptions(t)
	opts.Kill = func() { lab.KillNode(1) }
	opts.Settle = 5 * time.Second
	results, err := Run(opts, "reconnect-storm")
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Grant.Count() == 0 {
		t.Fatalf("no reconnects measured (errors=%d)", r.Errors)
	}
}

// TestSwarmChaosOwnerKillAndRestart arms the chaos mix's full drill on
// a three-node WAL-backed cluster: the group's owner is felled
// mid-floor-hold, load rides out the failover onto the replica, and the
// restart leg brings the node back (WAL replay) and migrates its
// partitions home through Router.Recover — all with zero errors, which
// is the mix's definition of "no logged state was lost".
func TestSwarmChaosOwnerKillAndRestart(t *testing.T) {
	lab, err := core.StartCluster(core.ClusterOptions{
		Options:           core.Options{Seed: 7},
		Nodes:             3,
		ReplicationFactor: 2,
		WALDir:            t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lab.Close)
	opts := Options{
		Dial: func(cfg client.Config) (*client.Client, error) {
			cfg.Network = lab.Net.From(cfg.Name)
			cfg.Addr = core.RouterAddr
			cfg.Timeout = 5 * time.Second
			return client.Dial(cfg)
		},
		Seed:    42,
		Members: 3,
		Ops:     12,
		Mean:    2 * time.Millisecond,
		Settle:  8 * time.Second,
	}
	addrs := make([]string, 3)
	for i := range addrs {
		addrs[i] = core.NodeAddr(i)
	}
	pmap := cluster.NewMap(addrs)
	killed := -1 // written and read under the mix's injection lock
	opts.Chaos = &Chaos{
		KillOwner: func(group string) {
			killed, _ = pmap.Owner(group)
			lab.KillNode(killed)
		},
		Restart: func(group string) {
			if killed < 0 {
				return
			}
			if err := lab.RestartNode(killed); err != nil {
				t.Error(err)
				return
			}
			if err := lab.Router.Recover(killed); err != nil {
				t.Error(err)
			}
		},
	}
	results, err := Run(opts, "chaos")
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Errors > 0 {
		t.Errorf("chaos: %d errors, want 0 (clean convergence)", r.Errors)
	}
	if killed < 0 {
		t.Fatal("kill hook never fired")
	}
	if r.Grant.Count() < 2 {
		t.Errorf("grant samples = %d, want initial grant + post-kill restoration", r.Grant.Count())
	}
	if r.Prop.Count() == 0 {
		t.Error("no propagation samples across the failure")
	}
	// The recovery re-request logs one surplus same-member grant (the
	// successor restored the floor still-held); the mix must count the
	// crash so the invariant checker excuses exactly that — and the
	// rendered report must come out violation-free.
	if r.Crashes != 1 {
		t.Errorf("crashes = %d, want 1 recorded recovery", r.Crashes)
	}
	check := CheckFloor(r.Floor, r.FloorConflicts, r.Crashes)
	if len(check.Violations) != 0 {
		t.Errorf("chaos run violations: %v", check.Violations)
	}
}

// TestSwarmReport renders results into the BENCH_*.json-compatible
// shape: _meta, one Swarm/<mix> entry with the quantile units, and
// per-node throughput attribution through NodeFor.
func TestSwarmReport(t *testing.T) {
	h := metrics.NewHistogram(nil)
	for i := 0; i < 100; i++ {
		h.Observe(0.001 * float64(i+1))
	}
	res := []MixResult{{
		Mix: "lecture", Group: "swarm-lecture",
		Ops: 100, Wall: time.Second, Grant: h, Prop: metrics.NewHistogram(nil),
	}}
	opts := Options{Members: 3, Ops: 100, NodeFor: func(string) string { return "node0" }}
	doc := Report(res, nil, opts, "test", "linux", "amd64")
	meta := doc["_meta"]
	if meta["goos"] != "linux" || meta["note"] != "test" {
		t.Fatalf("_meta = %v", meta)
	}
	// A single-process run reports itself as the whole fleet.
	if meta["shards"] != 1 || meta["shard"] != 0 {
		t.Fatalf("_meta shards/shard = %v/%v, want 1/0", meta["shards"], meta["shard"])
	}
	entry := doc["Swarm/lecture"]
	if entry == nil {
		t.Fatal("missing Swarm/lecture entry")
	}
	// The schema the merge path and the CI gates rely on: every key
	// present whatever the mix measured.
	for _, key := range []string{
		"ops", "errors", "wall_ms", "grant_samples", "prop_samples",
		"grant_p50_ms", "grant_p99_ms", "grant_p999_ms",
		"prop_p50_ms", "prop_p99_ms", "prop_p999_ms",
		"grant_hist", "prop_hist", "floor_events", "floor_groups",
		"floor_gaps", "invariant_violations", "violations",
		"crashes", "crash_excused",
	} {
		if _, ok := entry[key]; !ok {
			t.Errorf("Swarm/lecture missing key %q", key)
		}
	}
	p99, ok := entry["grant_p99_ms"].(float64)
	if !ok || !(p99 > 0) {
		t.Fatalf("grant_p99_ms = %v", entry["grant_p99_ms"])
	}
	// Empty propagation histogram must render as 0, not NaN (invalid JSON).
	if v := entry["prop_p99_ms"].(float64); v != 0 {
		t.Fatalf("prop_p99_ms = %v, want 0 for empty histogram", v)
	}
	if entry["invariant_violations"].(int) != 0 {
		t.Fatalf("invariant_violations = %v for an empty event set", entry["invariant_violations"])
	}
	node := doc["SwarmNode/node0"]
	if node == nil || node["ops"].(int) != 100 {
		t.Fatalf("SwarmNode/node0 = %v", node)
	}
	// The whole document must survive the disk hop shard reports take.
	if _, err := json.Marshal(doc); err != nil {
		t.Fatalf("report not JSON-encodable: %v", err)
	}
}

// TestSwarmUnknownMix fails fast, before anything dials.
func TestSwarmUnknownMix(t *testing.T) {
	_, err := Run(Options{Dial: func(client.Config) (*client.Client, error) {
		t.Fatal("dialed for an unknown mix")
		return nil, nil
	}}, "rave")
	if err == nil {
		t.Fatal("want error for unknown mix")
	}
}

// TestSwarmBadShard rejects a shard index outside the fleet before
// anything dials.
func TestSwarmBadShard(t *testing.T) {
	_, err := Run(Options{
		Dial: func(client.Config) (*client.Client, error) {
			t.Fatal("dialed with a bad shard index")
			return nil, nil
		},
		Shards: 4, Shard: 4,
	}, "lecture")
	if err == nil {
		t.Fatal("want error for shard outside [0, shards)")
	}
}

// TestFireAt pins the open-loop dispatcher: every slot fires exactly
// once, with its GLOBAL schedule index, and the WaitGroup completes.
func TestFireAt(t *testing.T) {
	slots := []workload.Slot{
		{Index: 3, At: 0},
		{Index: 7, At: time.Millisecond},
		{Index: 11, At: 2 * time.Millisecond},
	}
	var mu sync.Mutex
	fired := map[int]int{}
	fireAt(time.Now(), slots, func(i int) {
		mu.Lock()
		fired[i]++
		mu.Unlock()
	}).Wait()
	if len(fired) != len(slots) {
		t.Fatalf("fired %v, want one call per slot", fired)
	}
	for _, s := range slots {
		if fired[s.Index] != 1 {
			t.Fatalf("slot index %d fired %d times", s.Index, fired[s.Index])
		}
	}
}

// TestSettle pins the settle loop's three exits: immediate return when
// the histogram already holds the expected samples, early drain when
// the count stops growing, and budget expiry when nothing ever arrives.
func TestSettle(t *testing.T) {
	opts := Options{Settle: 150 * time.Millisecond}

	full := metrics.NewHistogram(nil)
	full.Observe(1)
	full.Observe(2)
	start := time.Now()
	settle(opts, full, 2)
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("settle with the count reached took %v", d)
	}

	drained := metrics.NewHistogram(nil)
	drained.Observe(1) // one sample, then silence: the early-drain exit
	start = time.Now()
	settle(opts, drained, 100)
	if d := time.Since(start); d >= opts.Settle {
		t.Fatalf("settle did not drain early: %v", d)
	}

	empty := metrics.NewHistogram(nil)
	start = time.Now()
	settle(opts, empty, 1)
	if d := time.Since(start); d < opts.Settle {
		t.Fatalf("settle on an empty histogram returned after %v, want the full %v budget", d, opts.Settle)
	}
}

// TestErrCounter counts non-nil errors only.
func TestErrCounter(t *testing.T) {
	var e errCounter
	e.note(nil)
	e.note(fmt.Errorf("one"))
	e.note(nil)
	e.note(fmt.Errorf("two"))
	if got := e.n.Load(); got != 2 {
		t.Fatalf("errCounter = %d, want 2", got)
	}
}

// TestMixGroup pins the group-naming contract: seed-scoped (re-runs
// get fresh groups), per-shard for the chair mixes in sharded runs, and
// shared fleet-wide for the chairless ones.
func TestMixGroup(t *testing.T) {
	if g := mixGroup("lecture", 42, 1, 0); g != "swarm-lecture-42" {
		t.Fatalf("single-process group = %q", g)
	}
	if a, b := mixGroup("lecture", 1, 1, 0), mixGroup("lecture", 2, 1, 0); a == b {
		t.Fatalf("seed not scoped: %q == %q", a, b)
	}
	if g := mixGroup("lecture", 42, 4, 2); g != "swarm-lecture-42-s2" {
		t.Fatalf("sharded chair-mix group = %q, want per-shard", g)
	}
	if g := mixGroup("flash-crowd", 42, 4, 2); g != "swarm-flash-crowd-42" {
		t.Fatalf("sharded flash-crowd group = %q, want shared fleet-wide", g)
	}
	if g := mixGroup("reconnect-storm", 42, 4, 1); g != "swarm-reconnect-storm-42" {
		t.Fatalf("sharded reconnect-storm group = %q, want shared fleet-wide", g)
	}
}

// fe builds a FloorEvent for checker tests.
func fe(cseq int64, event, member, holder string) FloorEvent {
	return FloorEvent{Group: "g", CSeq: cseq, GSeq: cseq, Event: event, Member: member, Holder: holder}
}

// TestCheckFloorClean runs the checker over legitimate timelines: grant
// cycles, promotion on release, explicit passes, approvals that grant
// at once, a Direct Contact window beside a held floor, and a
// mode_switch reset — none may be flagged.
func TestCheckFloorClean(t *testing.T) {
	cases := map[string][]FloorEvent{
		"grant cycles": {
			fe(1, "granted", "a", "a"), fe(2, "released", "a", ""),
			fe(3, "granted", "a", "a"), fe(4, "released", "a", ""),
			fe(5, "granted", "a", "a"),
		},
		"promotion on release": {
			fe(1, "granted", "a", "a"), fe(2, "queued", "b", "a"),
			fe(3, "released", "a", "b"), fe(4, "released", "b", ""),
		},
		"explicit pass": {
			fe(1, "granted", "a", "a"), fe(2, "passed", "a", "b"),
			fe(3, "released", "b", ""),
		},
		"approval grants at once": {
			fe(1, "approved", "x", "x"), fe(2, "released", "x", ""),
		},
		"direct contact beside the floor": {
			fe(1, "granted", "a", "a"),
			{Group: "g", CSeq: 2, GSeq: 2, Event: "granted", Member: "b", Holder: "b", Mode: "direct-contact"},
			fe(3, "released", "a", ""),
		},
		"mode switch resets the books": {
			fe(1, "granted", "a", "a"), fe(2, "mode_switch", "", ""),
			fe(3, "granted", "b", "b"),
		},
		"benign ack-before-append reorder": {
			// The server acks before it appends, so a release/re-grant
			// pair may log in swapped order; the multiset still balances.
			fe(1, "granted", "a", "a"), fe(2, "granted", "a", "a"),
			fe(3, "released", "a", "a"),
		},
	}
	for name, evs := range cases {
		check := CheckFloor(evs, nil, 0)
		if len(check.Violations) != 0 {
			t.Errorf("%s: violations %v, want none", name, check.Violations)
		}
		if check.Groups != 1 || check.Gaps != 0 {
			t.Errorf("%s: groups=%d gaps=%d, want 1/0", name, check.Groups, check.Gaps)
		}
	}
}

// TestCheckFloorViolations pins each breach the checker exists for.
func TestCheckFloorViolations(t *testing.T) {
	cases := map[string]struct {
		evs  []FloorEvent
		want string
	}{
		"duplicate grant": {
			evs:  []FloorEvent{fe(1, "granted", "a", "a"), fe(2, "granted", "a", "a"), fe(3, "granted", "a", "a")},
			want: "duplicate grant",
		},
		"release without grant": {
			evs:  []FloorEvent{fe(1, "released", "b", "")},
			want: "release without grant",
		},
		"two holders at once": {
			evs:  []FloorEvent{fe(1, "granted", "a", "a"), fe(2, "granted", "b", "b")},
			want: "multiple holders",
		},
		"split-brain log position": {
			evs:  []FloorEvent{fe(1, "granted", "a", "a"), fe(1, "granted", "b", "b")},
			want: "split-brain",
		},
	}
	for name, tc := range cases {
		check := CheckFloor(tc.evs, nil, 0)
		found := false
		for _, v := range check.Violations {
			if strings.Contains(v, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v, want one containing %q", name, check.Violations, tc.want)
		}
	}
}

// TestCheckFloorGapsAndAnchoring pins the checker's reach limits: a
// CSeq gap suspends accounting past it (counted, not flagged), and a
// view that never saw the group's genesis is not judged at all.
func TestCheckFloorGapsAndAnchoring(t *testing.T) {
	gapped := CheckFloor([]FloorEvent{
		fe(1, "granted", "a", "a"), fe(2, "released", "a", ""),
		fe(5, "released", "b", ""), // would be a violation, but it is past the gap
	}, nil, 0)
	if gapped.Gaps != 1 {
		t.Fatalf("gaps = %d, want 1", gapped.Gaps)
	}
	if len(gapped.Violations) != 0 {
		t.Fatalf("violations past a gap: %v", gapped.Violations)
	}

	unanchored := CheckFloor([]FloorEvent{
		fe(3, "released", "b", ""), fe(4, "released", "c", ""),
	}, nil, 0)
	if len(unanchored.Violations) != 0 {
		t.Fatalf("violations without a genesis baseline: %v", unanchored.Violations)
	}

	carried := CheckFloor(nil, []string{"conflict: prior finding"}, 0)
	if len(carried.Violations) != 1 {
		t.Fatalf("carried conflicts = %v, want preserved", carried.Violations)
	}
}

// TestCheckFloorCrashBudget pins the injected-crash excuse: a chaos
// kill restores the floor still-held, so the holder's recovery
// re-request logs one surplus same-member grant per crash. The budget
// writes off exactly that many — and nothing else.
func TestCheckFloorCrashBudget(t *testing.T) {
	// The chaos shape: grant, release/re-grant probe, then the
	// crash-recovery re-request while already holding.
	recovery := []FloorEvent{
		fe(1, "granted", "a", "a"), fe(2, "released", "a", ""),
		fe(3, "granted", "a", "a"), fe(4, "granted", "a", "a"),
	}
	flagged := CheckFloor(recovery, nil, 0)
	if len(flagged.Violations) != 1 || !strings.Contains(flagged.Violations[0], "duplicate grant") {
		t.Fatalf("without a budget: violations %v, want one duplicate grant", flagged.Violations)
	}
	excused := CheckFloor(recovery, nil, 1)
	if len(excused.Violations) != 0 || excused.Excused != 1 {
		t.Fatalf("with budget 1: violations %v excused %d, want none/1", excused.Violations, excused.Excused)
	}

	// Two surpluses against a budget of one: the second stays flagged.
	double := append(append([]FloorEvent{}, recovery...),
		fe(5, "granted", "a", "a"))
	partial := CheckFloor(double, nil, 1)
	if len(partial.Violations) != 1 || partial.Excused != 1 {
		t.Fatalf("budget 1 vs surplus 2: violations %v excused %d, want 1/1", partial.Violations, partial.Excused)
	}

	// The budget never excuses a second holder or a stray release.
	twoHolders := CheckFloor([]FloorEvent{
		fe(1, "granted", "a", "a"), fe(2, "granted", "b", "b"),
	}, nil, 5)
	if len(twoHolders.Violations) == 0 {
		t.Fatal("crash budget excused a second holder")
	}
	stray := CheckFloor([]FloorEvent{fe(1, "released", "b", "")}, nil, 5)
	if len(stray.Violations) == 0 {
		t.Fatal("crash budget excused a release without grant")
	}
}

// TestFloorRecorderDedupAndConflict feeds the tap duplicate and
// conflicting copies of a log position, as cross-member fan-out does.
func TestFloorRecorderDedupAndConflict(t *testing.T) {
	rec := newFloorRecorder()
	msg := func(cseq int64, holder string) protocol.Message {
		m := protocol.MustNew(protocol.TFloorEvent, protocol.FloorEventBody{
			Event: "granted", Member: holder, Holder: holder,
		})
		m.Group, m.GSeq, m.Class, m.CSeq = "g", cseq, protocol.ClassFloor, cseq
		return m
	}
	rec.tap(msg(1, "a"))
	rec.tap(msg(1, "a")) // another member's identical copy
	rec.tap(msg(2, "b"))
	rec.tap(protocol.MustNew(protocol.TFloorEvent, protocol.FloorEventBody{Event: "granted"})) // unlogged: ignored
	evs, conflicts := rec.drain()
	if len(evs) != 2 || len(conflicts) != 0 {
		t.Fatalf("events=%d conflicts=%v, want 2 deduplicated and none", len(evs), conflicts)
	}
	rec.tap(msg(2, "c")) // same position, different content
	_, conflicts = rec.drain()
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %v, want the disagreement recorded", conflicts)
	}
}

// TestShardedLectureMergeMatchesSingle is the acceptance path: a
// 4-shard lecture run (one Run per shard, same seed) merges into a
// report with the same schema as a single-process run, the global op
// count intact, and zero floor-exclusivity violations. Shard reports
// take the JSON disk hop before merging, exactly like dmps-swarm -merge.
func TestShardedLectureMergeMatchesSingle(t *testing.T) {
	opts, _ := labOptions(t)
	singleRes, err := Run(opts, "lecture")
	if err != nil {
		t.Fatal(err)
	}
	singleDoc := Report(singleRes, nil, opts, "single", "linux", "amd64")

	shardOpts, _ := labOptions(t)
	const shards = 4
	var docs []map[string]map[string]any
	shardOps := 0
	for i := 0; i < shards; i++ {
		o := shardOpts
		o.Shards, o.Shard = shards, i
		results, err := Run(o, "lecture")
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if results[0].Errors > 0 {
			t.Fatalf("shard %d: %d errors", i, results[0].Errors)
		}
		shardOps += results[0].Ops
		data, err := json.Marshal(Report(results, nil, o, "shard", "linux", "amd64"))
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]map[string]any
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		docs = append(docs, doc)
	}
	if shardOps != shardOpts.Ops {
		t.Fatalf("shards fired %d ops, want the global %d", shardOps, shardOpts.Ops)
	}
	merged, err := MergeReports(docs)
	if err != nil {
		t.Fatal(err)
	}

	for key := range singleDoc {
		if merged[key] == nil {
			t.Errorf("merged report missing key %s", key)
		}
	}
	for key := range merged {
		if singleDoc[key] == nil {
			t.Errorf("merged report has extra key %s", key)
		}
	}
	for _, key := range []string{"_meta", "Swarm/lecture"} {
		for unit := range singleDoc[key] {
			if _, ok := merged[key][unit]; !ok {
				t.Errorf("%s: merged entry missing %q", key, unit)
			}
		}
		for unit := range merged[key] {
			if _, ok := singleDoc[key][unit]; !ok {
				t.Errorf("%s: merged entry has extra %q", key, unit)
			}
		}
	}
	entry := merged["Swarm/lecture"]
	if got := entry["ops"].(int); got != shardOpts.Ops {
		t.Errorf("merged ops = %d, want %d", got, shardOpts.Ops)
	}
	if got := entry["invariant_violations"].(int); got != 0 {
		t.Errorf("invariant_violations = %d: %v", got, entry["violations"])
	}
	if got := entry["floor_groups"].(int); got != shards {
		t.Errorf("floor_groups = %d, want one group per shard", got)
	}
	if evs := entry["floor_events"].([]FloorEvent); len(evs) == 0 {
		t.Error("merged report carries no floor events")
	}
	if n := entry["grant_samples"].(int64); n <= 0 {
		t.Errorf("merged grant_samples = %d", n)
	}
}

// TestShardedFlashCrowdSharedGroup runs two shards of the flash-crowd
// mix CONCURRENTLY against one cluster — the chairless mixes share one
// group, so both shards' members contend for the same floor and the
// merged invariant check genuinely spans generator processes. The
// in-process Barrier stands in for the CLI's file handshake, and
// Prealloc exercises the pre-dialed admission path.
func TestShardedFlashCrowdSharedGroup(t *testing.T) {
	opts, _ := labOptions(t)
	// Per-shard crowds admit half as fast as a single process's: keep
	// the open-loop rate gentle enough that re-request ops (past the
	// fleet size) find an admitted member even under -race slowdowns.
	opts.Mean = 10 * time.Millisecond
	var gate sync.WaitGroup
	gate.Add(2)
	barrier := func(mix string) error {
		gate.Done()
		gate.Wait()
		return nil
	}
	var wg sync.WaitGroup
	results := make([][]MixResult, 2)
	errs := make([]error, 2)
	docs := make([]map[string]map[string]any, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := opts
			o.Shards, o.Shard = 2, i
			o.Prealloc = true
			o.Barrier = barrier
			results[i], errs[i] = Run(o, "flash-crowd")
			if errs[i] == nil {
				docs[i] = Report(results[i], nil, o, "shard", "linux", "amd64")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if results[i][0].Errors > 0 {
			t.Fatalf("shard %d: %d errors", i, results[i][0].Errors)
		}
	}
	merged, err := MergeReports(docs)
	if err != nil {
		t.Fatal(err)
	}
	entry := merged["Swarm/flash-crowd"]
	if got := entry["ops"].(int); got != opts.Ops {
		t.Errorf("merged ops = %d, want the global %d", got, opts.Ops)
	}
	if got := entry["floor_groups"].(int); got != 1 {
		t.Errorf("floor_groups = %d, want the one shared group", got)
	}
	if got := entry["invariant_violations"].(int); got != 0 {
		t.Errorf("invariant_violations = %d: %v", got, entry["violations"])
	}
	if n := entry["grant_samples"].(int64); n <= 0 {
		t.Errorf("merged grant_samples = %d", n)
	}
}

// TestScraper boots a real metrics endpoint, scrapes it on a short
// interval, and checks the timeline: at least the start and stop
// samples, every series padded to the sample count, histogram buckets
// excluded, and a dead endpoint counted as errors rather than fatal.
func TestScraper(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Gauge("dmps_scrape_test_depth", "test gauge").Set(4)
	reg.Counter("dmps_scrape_test_total", "test counter").Add(9)
	reg.Histogram("dmps_scrape_test_latency_seconds", "test latency", []float64{0.1}).Observe(0.05)
	ln, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	s := NewScraper([]string{ln.Addr().String()}, 30*time.Millisecond)
	s.Start()
	time.Sleep(80 * time.Millisecond)
	out := s.Stop()
	if len(out) != 1 {
		t.Fatalf("series sets = %d, want 1", len(out))
	}
	ss := out[0]
	if len(ss.AtMS) < 2 {
		t.Fatalf("samples = %d, want ≥ 2 (start + stop)", len(ss.AtMS))
	}
	if ss.Errors != 0 {
		t.Fatalf("scrape errors = %d", ss.Errors)
	}
	depth := ss.Series["dmps_scrape_test_depth"]
	if len(depth) != len(ss.AtMS) {
		t.Fatalf("gauge series has %d samples, want %d (aligned)", len(depth), len(ss.AtMS))
	}
	for _, v := range depth {
		if v != 4 {
			t.Fatalf("gauge series = %v, want all 4", depth)
		}
	}
	for _, name := range sortedSeriesNames(ss) {
		if strings.Contains(name, "_bucket") {
			t.Fatalf("histogram bucket series %q leaked into the scrape", name)
		}
		if len(ss.Series[name]) != len(ss.AtMS) {
			t.Fatalf("series %q has %d samples, want %d", name, len(ss.Series[name]), len(ss.AtMS))
		}
	}
	// _count and _sum of the histogram are regular series and stay.
	if _, ok := ss.Series["dmps_scrape_test_latency_seconds_count"]; !ok {
		t.Error("histogram _count series missing from scrape")
	}

	dead := NewScraper([]string{"127.0.0.1:1"}, 30*time.Millisecond)
	dead.Start()
	deadOut := dead.Stop()
	if deadOut[0].Errors < 2 {
		t.Fatalf("dead endpoint errors = %d, want every sweep counted", deadOut[0].Errors)
	}
	if len(deadOut[0].Series) != 0 {
		t.Fatalf("dead endpoint produced series: %v", deadOut[0].Series)
	}
}

// TestMergeReportsRejectsBadInput pins the merge error paths.
func TestMergeReportsRejectsBadInput(t *testing.T) {
	if _, err := MergeReports(nil); err == nil {
		t.Fatal("merging nothing must error")
	}
	if _, err := MergeReports([]map[string]map[string]any{
		{"Swarm/lecture": {"ops": 1.0}}, // no histograms
	}); err == nil {
		t.Fatal("merging an entry without histograms must error")
	}
}
