package swarm

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"dmps/internal/metrics"
	"dmps/internal/trace"
)

// StageSample pools one pipeline stage's span latencies across every
// /debug/traces flight recorder the collector visited — the raw
// material of the report's per-stage grant decomposition. Spans counts
// pooled spans, Origins the distinct processes (router, nodes) that
// contributed at least one, and Hist carries the latencies on the
// fleet-wide trace.StageBuckets layout so shard reports merge
// bucket-wise like every other histogram in the report.
type StageSample struct {
	Stage   string
	Spans   int
	Origins int
	Hist    *metrics.Histogram
}

// FetchTraces fetches one endpoint's /debug/traces page. endpoint is a
// "host:port" -metrics listener or a full URL; slowMS > 0 applies the
// endpoint's ?slow_ms= filter.
func FetchTraces(endpoint string, slowMS float64) (trace.TracesPage, error) {
	url := endpoint
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url + "/debug/traces"
	}
	if slowMS > 0 {
		url = fmt.Sprintf("%s?slow_ms=%g", url, slowMS)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return trace.TracesPage{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return trace.TracesPage{}, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	var page trace.TracesPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return trace.TracesPage{}, fmt.Errorf("%s: %w", url, err)
	}
	return page, nil
}

// CollectStages fetches every endpoint's flight recorder and pools the
// spans into per-stage samples, ordered by trace.Stages pipeline order.
// Each process's completed rings overlap (a slow op sits in both the
// recent and the slow ring) and its pending table may still hold live
// traces, so ops are deduplicated by trace ID per endpoint before
// pooling. Endpoints that fail are skipped and reported in the joined
// error alongside whatever the reachable ones yielded — a partial
// breakdown with a loud error beats none.
func CollectStages(endpoints []string) ([]StageSample, error) {
	byStage := map[string]*StageSample{}
	var errs []error
	for _, ep := range endpoints {
		page, err := FetchTraces(ep, 0)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		seen := map[uint64]bool{}
		credited := map[string]bool{} // stages this origin already counts toward
		pool := func(ops []*trace.OpTrace) {
			for _, op := range ops {
				if op == nil || seen[op.Trace] {
					continue
				}
				seen[op.Trace] = true
				for _, s := range op.Spans {
					agg := byStage[s.Stage]
					if agg == nil {
						agg = &StageSample{Stage: s.Stage, Hist: metrics.NewHistogram(trace.StageBuckets)}
						byStage[s.Stage] = agg
					}
					agg.Spans++
					agg.Hist.Observe(float64(s.DurNanos) / 1e9)
					if !credited[s.Stage] {
						credited[s.Stage] = true
						agg.Origins++
					}
				}
			}
		}
		pool(page.Recent)
		pool(page.Slow)
		pool(page.Pending)
	}
	out := make([]StageSample, 0, len(byStage))
	for _, stage := range trace.Stages {
		if agg := byStage[stage]; agg != nil {
			out = append(out, *agg)
			delete(byStage, stage)
		}
	}
	// Unknown stage names (a newer fleet) still surface, after the known
	// pipeline, in deterministic order.
	rest := make([]string, 0, len(byStage))
	for stage := range byStage {
		rest = append(rest, stage)
	}
	sort.Strings(rest)
	for _, stage := range rest {
		out = append(out, *byStage[stage])
	}
	return out, errors.Join(errs...)
}

// AddStageBreakdown injects one Stage/<stage> entry per pooled stage
// into a report document — the per-stage decomposition of the grant
// SLO. Entries carry their histogram snapshots, so MergeReports folds
// shard breakdowns bucket-wise exactly like the mix histograms.
func AddStageBreakdown(doc map[string]map[string]any, stages []StageSample) {
	for _, s := range stages {
		doc["Stage/"+s.Stage] = stageEntry(s)
	}
}

// stageEntry renders one stage's pooled samples as a report entry.
func stageEntry(s StageSample) map[string]any {
	entry := map[string]any{
		"spans":   s.Spans,
		"origins": s.Origins,
		"hist":    s.Hist.Snapshot(),
	}
	for _, q := range []struct {
		key string
		q   float64
	}{{"p50", 0.5}, {"p99", 0.99}, {"p999", 0.999}} {
		entry[q.key+"_ms"] = round3(s.Hist.Quantile(q.q) * 1e3)
	}
	return entry
}
