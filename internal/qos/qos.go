// Package qos models the per-media quality-of-service requirements that
// XOCPN channel-setup places carry ("to set up channels according to the
// required QoS of the data", paper §1) and the admission test a channel
// manager runs before a media place may start playing.
package qos

import (
	"errors"
	"fmt"
	"time"

	"dmps/internal/media"
)

// Requirement is the QoS demanded by one media channel.
type Requirement struct {
	// Bandwidth is the sustained requirement in bits per second.
	Bandwidth float64
	// MaxLatency is the largest tolerable one-way delay.
	MaxLatency time.Duration
	// MaxJitter is the largest tolerable delay variation.
	MaxJitter time.Duration
	// LossTolerance is the acceptable fraction of lost units in [0, 1].
	LossTolerance float64
}

// ErrInvalidRequirement is returned for out-of-range requirements.
var ErrInvalidRequirement = errors.New("qos: invalid requirement")

// Validate checks the requirement's ranges.
func (r Requirement) Validate() error {
	if r.Bandwidth < 0 {
		return fmt.Errorf("%w: negative bandwidth", ErrInvalidRequirement)
	}
	if r.MaxLatency < 0 || r.MaxJitter < 0 {
		return fmt.Errorf("%w: negative latency/jitter bound", ErrInvalidRequirement)
	}
	if r.LossTolerance < 0 || r.LossTolerance > 1 {
		return fmt.Errorf("%w: loss tolerance %v outside [0,1]", ErrInvalidRequirement, r.LossTolerance)
	}
	return nil
}

// ForKind returns the default requirement for a media kind, mirroring the
// classes in Little & Ghafoor's synchronization work: interactive audio is
// latency- and jitter-sensitive; video tolerates some loss; text and
// annotations must be lossless but tolerate delay.
func ForKind(k media.Kind) Requirement {
	switch k {
	case media.Audio:
		return Requirement{Bandwidth: 64_000, MaxLatency: 250 * time.Millisecond, MaxJitter: 10 * time.Millisecond, LossTolerance: 0.01}
	case media.Video:
		return Requirement{Bandwidth: 1_500_000, MaxLatency: 300 * time.Millisecond, MaxJitter: 30 * time.Millisecond, LossTolerance: 0.05}
	case media.Image:
		return Requirement{Bandwidth: 200_000, MaxLatency: 2 * time.Second, MaxJitter: time.Second, LossTolerance: 0}
	case media.Annotation:
		return Requirement{Bandwidth: 8_000, MaxLatency: 500 * time.Millisecond, MaxJitter: 100 * time.Millisecond, LossTolerance: 0}
	case media.Control:
		return Requirement{Bandwidth: 1_000, MaxLatency: 100 * time.Millisecond, MaxJitter: 50 * time.Millisecond, LossTolerance: 0}
	default: // media.Text and unknown kinds
		return Requirement{Bandwidth: 2_000, MaxLatency: time.Second, MaxJitter: 500 * time.Millisecond, LossTolerance: 0}
	}
}

// LinkEstimate is the channel manager's current view of a network path.
type LinkEstimate struct {
	// Capacity is the available bandwidth in bits per second.
	Capacity float64
	// Latency is the measured one-way delay.
	Latency time.Duration
	// Jitter is the measured delay variation.
	Jitter time.Duration
	// Loss is the measured loss fraction in [0, 1].
	Loss float64
}

// Satisfies reports whether the link meets the requirement, and if not,
// which dimension failed first (bandwidth, latency, jitter, loss).
func (l LinkEstimate) Satisfies(r Requirement) (bool, string) {
	if l.Capacity < r.Bandwidth {
		return false, "bandwidth"
	}
	if r.MaxLatency > 0 && l.Latency > r.MaxLatency {
		return false, "latency"
	}
	if r.MaxJitter > 0 && l.Jitter > r.MaxJitter {
		return false, "jitter"
	}
	if l.Loss > r.LossTolerance {
		return false, "loss"
	}
	return true, ""
}

// ErrAdmission is returned when a channel cannot be admitted.
var ErrAdmission = errors.New("qos: channel admission denied")

// Channel is one admitted media channel.
type Channel struct {
	ID   string
	Kind media.Kind
	Req  Requirement
}

// Manager performs channel admission against a shared link estimate,
// tracking the bandwidth already committed to admitted channels. It is not
// safe for concurrent use; the DMPS server serializes admissions.
type Manager struct {
	link      LinkEstimate
	committed float64
	channels  map[string]Channel
}

// NewManager returns a manager over the given link estimate.
func NewManager(link LinkEstimate) *Manager {
	return &Manager{link: link, channels: make(map[string]Channel)}
}

// SetLink updates the link estimate (e.g. from a monitoring probe).
func (m *Manager) SetLink(link LinkEstimate) { m.link = link }

// Admitted reports how many channels are currently open.
func (m *Manager) Admitted() int { return len(m.channels) }

// CommittedBandwidth reports the bandwidth reserved by open channels.
func (m *Manager) CommittedBandwidth() float64 { return m.committed }

// Open admits a channel for the media kind, reserving its bandwidth. The
// returned error wraps ErrAdmission with the failing dimension.
func (m *Manager) Open(id string, kind media.Kind) (Channel, error) {
	if _, exists := m.channels[id]; exists {
		return Channel{}, fmt.Errorf("%w: channel %q already open", ErrAdmission, id)
	}
	req := ForKind(kind)
	residual := m.link
	residual.Capacity -= m.committed
	ok, dim := residual.Satisfies(req)
	if !ok {
		return Channel{}, fmt.Errorf("%w: %s for %v channel %q", ErrAdmission, dim, kind, id)
	}
	ch := Channel{ID: id, Kind: kind, Req: req}
	m.channels[id] = ch
	m.committed += req.Bandwidth
	return ch, nil
}

// Close releases an admitted channel's reservation. Closing an unknown
// channel is a no-op so teardown paths can be idempotent.
func (m *Manager) Close(id string) {
	ch, ok := m.channels[id]
	if !ok {
		return
	}
	delete(m.channels, id)
	m.committed -= ch.Req.Bandwidth
	if m.committed < 0 {
		m.committed = 0
	}
}
