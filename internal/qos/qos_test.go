package qos

import (
	"errors"
	"testing"
	"time"

	"dmps/internal/media"
)

func TestRequirementValidate(t *testing.T) {
	good := Requirement{Bandwidth: 1000, MaxLatency: time.Second, MaxJitter: time.Millisecond, LossTolerance: 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("good rejected: %v", err)
	}
	bad := []Requirement{
		{Bandwidth: -1},
		{MaxLatency: -time.Second},
		{MaxJitter: -time.Second},
		{LossTolerance: 1.5},
		{LossTolerance: -0.1},
	}
	for i, r := range bad {
		if err := r.Validate(); !errors.Is(err, ErrInvalidRequirement) {
			t.Errorf("bad[%d] err = %v", i, err)
		}
	}
}

func TestForKindAllValid(t *testing.T) {
	for _, k := range []media.Kind{media.Text, media.Image, media.Audio, media.Video, media.Annotation, media.Control} {
		r := ForKind(k)
		if err := r.Validate(); err != nil {
			t.Errorf("ForKind(%v) invalid: %v", k, err)
		}
		if r.Bandwidth <= 0 {
			t.Errorf("ForKind(%v) zero bandwidth", k)
		}
	}
	// Audio must be stricter than video on jitter (interactive).
	if ForKind(media.Audio).MaxJitter >= ForKind(media.Video).MaxJitter {
		t.Error("audio jitter bound should be tighter than video")
	}
	// Annotations must be lossless.
	if ForKind(media.Annotation).LossTolerance != 0 {
		t.Error("annotation loss tolerance must be 0")
	}
}

func TestSatisfiesDimensions(t *testing.T) {
	req := Requirement{Bandwidth: 1000, MaxLatency: 100 * time.Millisecond, MaxJitter: 10 * time.Millisecond, LossTolerance: 0.01}
	cases := []struct {
		link LinkEstimate
		ok   bool
		dim  string
	}{
		{LinkEstimate{Capacity: 2000, Latency: 50 * time.Millisecond, Jitter: time.Millisecond, Loss: 0}, true, ""},
		{LinkEstimate{Capacity: 500, Latency: 50 * time.Millisecond}, false, "bandwidth"},
		{LinkEstimate{Capacity: 2000, Latency: 200 * time.Millisecond}, false, "latency"},
		{LinkEstimate{Capacity: 2000, Latency: 50 * time.Millisecond, Jitter: 50 * time.Millisecond}, false, "jitter"},
		{LinkEstimate{Capacity: 2000, Latency: 50 * time.Millisecond, Jitter: time.Millisecond, Loss: 0.5}, false, "loss"},
	}
	for i, c := range cases {
		ok, dim := c.link.Satisfies(req)
		if ok != c.ok || dim != c.dim {
			t.Errorf("case %d: (%v, %q), want (%v, %q)", i, ok, dim, c.ok, c.dim)
		}
	}
}

func TestSatisfiesZeroBoundsUnlimited(t *testing.T) {
	// Zero latency/jitter bounds mean "no bound".
	req := Requirement{Bandwidth: 10}
	link := LinkEstimate{Capacity: 100, Latency: time.Hour, Jitter: time.Hour}
	if ok, _ := link.Satisfies(req); !ok {
		t.Error("zero bounds should not constrain")
	}
}

func TestManagerAdmissionAndRelease(t *testing.T) {
	// Link fits exactly one video (1.5 Mbps) plus one audio (64 kbps).
	m := NewManager(LinkEstimate{Capacity: 1_600_000, Latency: 50 * time.Millisecond, Jitter: 5 * time.Millisecond})
	if _, err := m.Open("v1", media.Video); err != nil {
		t.Fatalf("video: %v", err)
	}
	if _, err := m.Open("a1", media.Audio); err != nil {
		t.Fatalf("audio: %v", err)
	}
	if m.Admitted() != 2 {
		t.Errorf("Admitted = %d", m.Admitted())
	}
	// Second video exceeds the residual capacity.
	if _, err := m.Open("v2", media.Video); !errors.Is(err, ErrAdmission) {
		t.Errorf("overcommit err = %v", err)
	}
	m.Close("v1")
	if _, err := m.Open("v2", media.Video); err != nil {
		t.Errorf("after release: %v", err)
	}
}

func TestManagerDuplicateChannel(t *testing.T) {
	m := NewManager(LinkEstimate{Capacity: 1e9})
	if _, err := m.Open("x", media.Text); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("x", media.Text); !errors.Is(err, ErrAdmission) {
		t.Errorf("duplicate err = %v", err)
	}
}

func TestManagerCloseIdempotent(t *testing.T) {
	m := NewManager(LinkEstimate{Capacity: 1e9})
	m.Close("ghost") // must not panic or underflow
	if _, err := m.Open("x", media.Audio); err != nil {
		t.Fatal(err)
	}
	m.Close("x")
	m.Close("x")
	if m.CommittedBandwidth() != 0 {
		t.Errorf("committed = %v", m.CommittedBandwidth())
	}
}

func TestManagerLatencyGateIndependentOfBandwidth(t *testing.T) {
	// Plenty of bandwidth but latency beyond the audio bound.
	m := NewManager(LinkEstimate{Capacity: 1e9, Latency: 5 * time.Second})
	_, err := m.Open("a", media.Audio)
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("err = %v", err)
	}
	if got := err.Error(); !contains(got, "latency") {
		t.Errorf("err should name latency: %q", got)
	}
}

func TestManagerSetLink(t *testing.T) {
	m := NewManager(LinkEstimate{Capacity: 0})
	if _, err := m.Open("t", media.Text); err == nil {
		t.Fatal("zero capacity should deny")
	}
	m.SetLink(LinkEstimate{Capacity: 1e6})
	if _, err := m.Open("t", media.Text); err != nil {
		t.Errorf("after upgrade: %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}
