package floor

import "dmps/internal/group"

// Capability is what a member may do through the DMPS communication
// window in a given floor state — the affordances visible in the paper's
// Figure 2 (teacher vs student windows).
type Capability struct {
	// MessageWindow: may send to the shared message window.
	MessageWindow bool
	// Whiteboard: may draw/annotate on the shared whiteboard.
	Whiteboard bool
	// PrivateWindow: may send in a private (direct-contact) window.
	PrivateWindow bool
	// PassToken: may pass the Equal Control floor token.
	PassToken bool
	// Invite: may invite members into a sub-group.
	Invite bool
}

// CapabilityFor computes the capability matrix entry for a member under
// the group's current floor state:
//
//   - Free Access: everyone sends to the message window and whiteboard
//     ("like general discussion with no privacy and priority").
//   - Equal Control: only the token holder delivers; the holder may pass
//     the token.
//   - Group Discussion: every sub-group member sends; the sub-group chair
//     (its creator) may invite more members. "All participants in the
//     same group can send message together."
//   - Direct Contact: members of a contact pair get the private window,
//     usable concurrently with the other modes.
//   - Moderated Queue: only the approved holder delivers, but the chair
//     (the moderator) always keeps the message window and whiteboard.
func (c *Controller) CapabilityFor(groupID string, member group.MemberID) Capability {
	if !c.registry.IsMember(groupID, member) {
		return Capability{}
	}
	chair, _ := c.registry.Chair(groupID)
	fs := c.state(groupID)
	fs.mu.Lock()
	mode := fs.st.Mode
	holder := fs.st.Holder
	_, inContact := fs.st.Contacts[member]
	fs.mu.Unlock()

	var cap Capability
	switch mode {
	case EqualControl:
		isHolder := holder == member
		cap.MessageWindow = isHolder
		cap.Whiteboard = isHolder
		cap.PassToken = isHolder
	case ModeratedQueue:
		deliver := holder == member || member == chair
		cap.MessageWindow = deliver
		cap.Whiteboard = deliver
		cap.PassToken = holder == member
	case GroupDiscussion:
		cap.MessageWindow = true
		cap.Whiteboard = true
		cap.Invite = member == chair
	default: // FreeAccess (and any unset state defaults to it)
		cap.MessageWindow = true
		cap.Whiteboard = true
	}
	// Direct contact composes with every mode.
	cap.PrivateWindow = inContact
	// The session chair may always invite (create sub-groups).
	if member == chair {
		cap.Invite = true
	}
	return cap
}
