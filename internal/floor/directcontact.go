package floor

import "fmt"

// directContactPolicy implements Direct Contact: two members communicate
// in a private window, concurrently with the other modes (it does not
// change the group's prevailing mode).
type directContactPolicy struct{ tokenSemantics }

func (directContactPolicy) Mode() Mode { return DirectContact }

func (directContactPolicy) Decide(r Roster, st *State, req Request) (Decision, error) {
	if err := checkTokenPriority(req.Requester); err != nil {
		return Decision{}, err
	}
	member, target := req.Requester.ID, req.Target
	if target == "" || target == member {
		return Decision{}, fmt.Errorf("%w: %q", ErrBadTarget, target)
	}
	if !r.IsMember(st.Group, target) {
		return Decision{}, fmt.Errorf("%w: target %q not in %q", ErrBadTarget, target, st.Group)
	}
	peer, err := r.Member(target)
	if err != nil {
		return Decision{}, fmt.Errorf("%w: %v", ErrBadTarget, err)
	}
	if peer.Priority < MinTokenPriority {
		return Decision{}, fmt.Errorf("%w: target priority %d < %d", ErrPriority, peer.Priority, MinTokenPriority)
	}
	st.Contacts[member] = target
	st.Contacts[target] = member
	return Decision{Granted: true, Target: target}, nil
}
