package floor

import (
	"errors"
	"testing"

	"dmps/internal/group"
	"dmps/internal/resource"
)

// classroom builds the standard test fixture: a class group with a
// teacher (priority 5), two token-capable students (priority 2) and one
// low-priority student (priority 1).
func classroom(t *testing.T) (*group.Registry, *resource.Monitor, *Controller) {
	t.Helper()
	reg := group.NewRegistry()
	for _, m := range []group.Member{
		{ID: "teacher", Role: group.Chair, Priority: 5},
		{ID: "alice", Role: group.Participant, Priority: 2},
		{ID: "bob", Role: group.Participant, Priority: 2},
		{ID: "carol", Role: group.Participant, Priority: 1},
	} {
		if err := reg.Register(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.CreateGroup("class", "teacher"); err != nil {
		t.Fatal(err)
	}
	for _, id := range []group.MemberID{"alice", "bob", "carol"} {
		if err := reg.Join("class", id); err != nil {
			t.Fatal(err)
		}
	}
	mon, err := resource.New(resource.MinBound, resource.Thresholds{Alpha: 0.5, Beta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return reg, mon, NewController(reg, mon)
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		FreeAccess: "free-access", EqualControl: "equal-control",
		GroupDiscussion: "group-discussion", DirectContact: "direct-contact",
	} {
		if m.String() != want || !m.Valid() {
			t.Errorf("%d: %q valid=%v", int(m), m.String(), m.Valid())
		}
	}
	if Mode(0).Valid() || Mode(9).Valid() {
		t.Error("invalid modes")
	}
}

func TestFreeAccessGrantsEveryone(t *testing.T) {
	_, _, c := classroom(t)
	for _, id := range []group.MemberID{"teacher", "alice", "carol"} {
		dec, err := c.Arbitrate("class", id, FreeAccess, "")
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !dec.Granted {
			t.Errorf("%s not granted", id)
		}
	}
	// Even priority-1 carol: free access has "no privacy and priority".
	if c.ModeOf("class") != FreeAccess {
		t.Errorf("mode = %v", c.ModeOf("class"))
	}
}

func TestArbitrateRequiresMembership(t *testing.T) {
	reg, _, c := classroom(t)
	if err := reg.Register(group.Member{ID: "outsider", Role: group.Participant, Priority: 9}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Arbitrate("class", "outsider", FreeAccess, "")
	if !errors.Is(err, ErrNotMember) || !errors.Is(err, ErrAborted) {
		t.Errorf("err = %v, want ErrNotMember wrapping ErrAborted", err)
	}
}

func TestEqualControlSingleHolder(t *testing.T) {
	_, _, c := classroom(t)
	dec, err := c.Arbitrate("class", "alice", EqualControl, "")
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Granted || dec.Holder != "alice" {
		t.Errorf("dec = %+v", dec)
	}
	// Re-request by the holder is idempotent.
	dec, err = c.Arbitrate("class", "alice", EqualControl, "")
	if err != nil || !dec.Granted {
		t.Errorf("re-request: %+v %v", dec, err)
	}
	// Bob queues.
	dec, err = c.Arbitrate("class", "bob", EqualControl, "")
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v", err)
	}
	if dec.Granted || dec.QueuePosition != 1 || dec.Holder != "alice" {
		t.Errorf("dec = %+v", dec)
	}
	// Re-request does not duplicate the queue entry.
	dec, _ = c.Arbitrate("class", "bob", EqualControl, "")
	if dec.QueuePosition != 1 {
		t.Errorf("duplicate queue entry: %+v", dec)
	}
	if q := c.Queue("class"); len(q) != 1 || q[0] != "bob" {
		t.Errorf("queue = %v", q)
	}
}

func TestEqualControlPriorityRequirement(t *testing.T) {
	_, _, c := classroom(t)
	_, err := c.Arbitrate("class", "carol", EqualControl, "")
	if !errors.Is(err, ErrPriority) {
		t.Errorf("err = %v (carol has priority 1 < 2)", err)
	}
}

func TestReleasePromotesQueueHead(t *testing.T) {
	_, _, c := classroom(t)
	mustGrant(t, c, "alice", EqualControl, "")
	_, _ = c.Arbitrate("class", "bob", EqualControl, "")
	_, _ = c.Arbitrate("class", "teacher", EqualControl, "")
	next, err := c.Release("class", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if next != "bob" {
		t.Errorf("next = %q, want bob (FIFO)", next)
	}
	if c.Holder("class") != "bob" {
		t.Errorf("holder = %q", c.Holder("class"))
	}
	next, err = c.Release("class", "bob")
	if err != nil || next != "teacher" {
		t.Errorf("next = %q, %v", next, err)
	}
	next, err = c.Release("class", "teacher")
	if err != nil || next != "" {
		t.Errorf("floor should be free, got %q %v", next, err)
	}
}

func TestReleaseByNonHolder(t *testing.T) {
	_, _, c := classroom(t)
	mustGrant(t, c, "alice", EqualControl, "")
	if _, err := c.Release("class", "bob"); !errors.Is(err, ErrNotHolder) {
		t.Errorf("err = %v", err)
	}
}

func TestPassToken(t *testing.T) {
	_, _, c := classroom(t)
	mustGrant(t, c, "alice", EqualControl, "")
	_, _ = c.Arbitrate("class", "bob", EqualControl, "")
	// Holder passes directly to teacher, skipping the queue.
	if err := c.Pass("class", "alice", "teacher"); err != nil {
		t.Fatal(err)
	}
	if c.Holder("class") != "teacher" {
		t.Errorf("holder = %q", c.Holder("class"))
	}
	// Bob is still queued.
	if q := c.Queue("class"); len(q) != 1 || q[0] != "bob" {
		t.Errorf("queue = %v", q)
	}
	// Passing to a queued member removes them from the queue.
	if err := c.Pass("class", "teacher", "bob"); err != nil {
		t.Fatal(err)
	}
	if q := c.Queue("class"); len(q) != 0 {
		t.Errorf("queue = %v", q)
	}
}

func TestPassErrors(t *testing.T) {
	reg, _, c := classroom(t)
	mustGrant(t, c, "alice", EqualControl, "")
	if err := c.Pass("class", "bob", "teacher"); !errors.Is(err, ErrNotHolder) {
		t.Errorf("non-holder pass: %v", err)
	}
	if err := c.Pass("class", "alice", "carol"); !errors.Is(err, ErrPriority) {
		t.Errorf("low-priority recipient: %v", err)
	}
	if err := reg.Register(group.Member{ID: "out", Role: group.Participant, Priority: 5}); err != nil {
		t.Fatal(err)
	}
	if err := c.Pass("class", "alice", "out"); !errors.Is(err, ErrNotMember) {
		t.Errorf("non-member recipient: %v", err)
	}
}

func TestGroupDiscussionGrantsSubgroup(t *testing.T) {
	reg, _, c := classroom(t)
	// Alice creates a breakout and invites bob.
	if err := reg.CreateGroup("breakout", "alice"); err != nil {
		t.Fatal(err)
	}
	inv, err := reg.Invite("breakout", "alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Respond(inv.ID, "bob", true); err != nil {
		t.Fatal(err)
	}
	for _, id := range []group.MemberID{"alice", "bob"} {
		dec, err := c.Arbitrate("breakout", id, GroupDiscussion, "")
		if err != nil || !dec.Granted {
			t.Errorf("%s: %+v %v", id, dec, err)
		}
	}
	// Carol is not in the breakout.
	if _, err := c.Arbitrate("breakout", "carol", GroupDiscussion, ""); !errors.Is(err, ErrNotMember) {
		t.Errorf("err = %v", err)
	}
}

func TestDirectContact(t *testing.T) {
	_, _, c := classroom(t)
	dec, err := c.Arbitrate("class", "alice", DirectContact, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Granted || dec.Target != "bob" {
		t.Errorf("dec = %+v", dec)
	}
	if c.ContactPeer("class", "alice") != "bob" || c.ContactPeer("class", "bob") != "alice" {
		t.Error("contact pair not recorded")
	}
	c.EndContact("class", "bob")
	if c.ContactPeer("class", "alice") != "" || c.ContactPeer("class", "bob") != "" {
		t.Error("EndContact should clear both sides")
	}
	c.EndContact("class", "bob") // idempotent
}

func TestDirectContactValidation(t *testing.T) {
	_, _, c := classroom(t)
	if _, err := c.Arbitrate("class", "alice", DirectContact, ""); !errors.Is(err, ErrBadTarget) {
		t.Errorf("empty target: %v", err)
	}
	if _, err := c.Arbitrate("class", "alice", DirectContact, "alice"); !errors.Is(err, ErrBadTarget) {
		t.Errorf("self target: %v", err)
	}
	if _, err := c.Arbitrate("class", "alice", DirectContact, "ghost"); !errors.Is(err, ErrBadTarget) {
		t.Errorf("unknown target: %v", err)
	}
	if _, err := c.Arbitrate("class", "alice", DirectContact, "carol"); !errors.Is(err, ErrPriority) {
		t.Errorf("low-priority target: %v", err)
	}
	if _, err := c.Arbitrate("class", "carol", DirectContact, "alice"); !errors.Is(err, ErrPriority) {
		t.Errorf("low-priority requester: %v", err)
	}
}

func TestAbortArbitrateBelowBeta(t *testing.T) {
	_, mon, c := classroom(t)
	mon.Set(resource.Vector{Network: 0.1, CPU: 0.1, Memory: 0.1}) // below β=0.2
	_, err := c.Arbitrate("class", "teacher", FreeAccess, "")
	if !errors.Is(err, ErrAborted) {
		t.Errorf("err = %v", err)
	}
}

func TestMediaSuspendInDegradedRegime(t *testing.T) {
	_, mon, c := classroom(t)
	mon.Set(resource.Vector{Network: 0.3, CPU: 0.3, Memory: 0.3}) // in [β, α)
	dec, err := c.Arbitrate("class", "teacher", FreeAccess, "")
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Granted {
		t.Error("degraded regime still grants")
	}
	if dec.Level != resource.Degraded {
		t.Errorf("level = %v", dec.Level)
	}
	// Carol (priority 1) is the lowest-priority member: suspended first.
	if len(dec.Suspended) != 1 || dec.Suspended[0] != "carol" {
		t.Errorf("suspended = %v, want [carol]", dec.Suspended)
	}
	if c.MediaAvailable("class", "carol") {
		t.Error("carol's media should be suspended")
	}
	if !c.MediaAvailable("class", "alice") {
		t.Error("alice unaffected")
	}
	// The next degraded arbitration suspends the next-lowest (alice or
	// bob at priority 2; IDs break ties by map order — accept either).
	dec2, err := c.Arbitrate("class", "teacher", FreeAccess, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(dec2.Suspended) != 1 || dec2.Suspended[0] == "carol" {
		t.Errorf("second suspension = %v", dec2.Suspended)
	}
	if got := c.Suspended("class"); len(got) != 2 {
		t.Errorf("Suspended = %v", got)
	}
	// Recovery lifts suspensions.
	c.Reinstate("class")
	if !c.MediaAvailable("class", "carol") {
		t.Error("Reinstate should restore carol")
	}
}

func TestMediaAvailableNonMember(t *testing.T) {
	_, _, c := classroom(t)
	if c.MediaAvailable("class", "ghost") {
		t.Error("unknown member cannot have media")
	}
}

func TestNilMonitorMeansNormal(t *testing.T) {
	reg := group.NewRegistry()
	_ = reg.Register(group.Member{ID: "m", Role: group.Chair, Priority: 5})
	_ = reg.CreateGroup("g", "m")
	c := NewController(reg, nil)
	dec, err := c.Arbitrate("g", "m", FreeAccess, "")
	if err != nil || !dec.Granted || dec.Level != resource.Normal {
		t.Errorf("dec = %+v err = %v", dec, err)
	}
}

func TestArbitrateInvalidMode(t *testing.T) {
	_, _, c := classroom(t)
	if _, err := c.Arbitrate("class", "alice", Mode(42), ""); !errors.Is(err, ErrAborted) {
		t.Errorf("err = %v", err)
	}
}

func mustGrant(t *testing.T, c *Controller, member group.MemberID, mode Mode, target group.MemberID) Decision {
	t.Helper()
	dec, err := c.Arbitrate("class", member, mode, target)
	if err != nil {
		t.Fatalf("Arbitrate(%s, %v): %v", member, mode, err)
	}
	if !dec.Granted {
		t.Fatalf("not granted: %+v", dec)
	}
	return dec
}
