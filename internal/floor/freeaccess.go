package floor

// freeAccessPolicy implements Free Access: everyone (session chair and
// participants alike) may send to the message window or whiteboard —
// "like general discussion with no privacy and priority".
type freeAccessPolicy struct{ tokenSemantics }

func (freeAccessPolicy) Mode() Mode { return FreeAccess }

func (freeAccessPolicy) Decide(_ Roster, st *State, req Request) (Decision, error) {
	st.Mode = FreeAccess
	st.Holder = ""
	return Decision{Granted: true}, nil
}
