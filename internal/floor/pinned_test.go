package floor

import (
	"errors"
	"testing"

	"dmps/internal/group"
)

func TestSwitchModeResetsFloorState(t *testing.T) {
	_, _, c := classroom(t)
	if _, err := c.Arbitrate("class", "alice", EqualControl, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Arbitrate("class", "bob", EqualControl, ""); !errors.Is(err, ErrBusy) {
		t.Fatalf("bob should queue: %v", err)
	}
	mode, changed, err := c.SwitchMode("class", "teacher", FreeAccess, false)
	if err != nil || mode != FreeAccess || !changed {
		t.Fatalf("switch = (%v, %v, %v)", mode, changed, err)
	}
	if c.ModeOf("class") != FreeAccess {
		t.Errorf("mode = %v", c.ModeOf("class"))
	}
	if h := c.Holder("class"); h != "" {
		t.Errorf("holder survived the switch: %q", h)
	}
	if q := c.Queue("class"); len(q) != 0 {
		t.Errorf("queue survived the switch: %v", q)
	}
}

func TestSwitchModeSameModeIsNoOpOnState(t *testing.T) {
	_, _, c := classroom(t)
	if _, err := c.Arbitrate("class", "alice", EqualControl, ""); err != nil {
		t.Fatal(err)
	}
	if _, changed, err := c.SwitchMode("class", "teacher", EqualControl, true); err != nil || changed {
		t.Fatalf("same-mode pin = (changed=%v, %v), want a pure pin update", changed, err)
	}
	if h := c.Holder("class"); h != "alice" {
		t.Errorf("same-mode switch cleared the holder: %q", h)
	}
	if !c.Pinned("class") {
		t.Error("pin not recorded")
	}
}

func TestPinnedGroupGatesModeEntryBehindChair(t *testing.T) {
	_, _, c := classroom(t)
	if _, _, err := c.SwitchMode("class", "teacher", ModeratedQueue, true); err != nil {
		t.Fatal(err)
	}
	if !c.Pinned("class") {
		t.Fatal("pin not set")
	}
	// A participant can neither switch explicitly…
	if _, _, err := c.SwitchMode("class", "alice", FreeAccess, false); !errors.Is(err, ErrNotChair) {
		t.Errorf("participant switch on pinned group: %v", err)
	}
	// …nor drag the group into another mode by requesting its floor.
	if _, err := c.Arbitrate("class", "alice", FreeAccess, ""); !errors.Is(err, ErrNotChair) {
		t.Errorf("participant mode entry on pinned group: %v", err)
	}
	if c.ModeOf("class") != ModeratedQueue {
		t.Errorf("mode drifted to %v", c.ModeOf("class"))
	}
	// Requests for the pinned mode itself still arbitrate normally.
	if _, err := c.Arbitrate("class", "alice", ModeratedQueue, ""); !errors.Is(err, ErrBusy) {
		t.Errorf("same-mode request: %v", err)
	}
	// Direct Contact runs concurrently and stays exempt from the pin.
	if dec, err := c.Arbitrate("class", "alice", DirectContact, "bob"); err != nil || !dec.Granted {
		t.Errorf("direct contact under pin: %+v %v", dec, err)
	}
	// The chair may switch; switching without pin also unpins.
	if mode, _, err := c.SwitchMode("class", "teacher", FreeAccess, false); err != nil || mode != FreeAccess {
		t.Fatalf("chair switch: (%v, %v)", mode, err)
	}
	if c.Pinned("class") {
		t.Error("chair switch without pin should unpin")
	}
	// Unpinned again: participants may move the group as before.
	if _, err := c.Arbitrate("class", "alice", EqualControl, ""); err != nil {
		t.Errorf("participant entry after unpin: %v", err)
	}
}

func TestSwitchModeChecks(t *testing.T) {
	_, _, c := classroom(t)
	if _, _, err := c.SwitchMode("class", "alice", Mode(99), false); !errors.Is(err, ErrAborted) {
		t.Errorf("unknown mode: %v", err)
	}
	if _, _, err := c.SwitchMode("class", "ghost", FreeAccess, false); !errors.Is(err, ErrNotMember) {
		t.Errorf("non-member: %v", err)
	}
	// Only the chair may pin, even on an unpinned group.
	if _, _, err := c.SwitchMode("class", "alice", EqualControl, true); !errors.Is(err, ErrNotChair) {
		t.Errorf("participant pin: %v", err)
	}
	// A non-chair switch out of a gated mode is vetoed by the ModeGate
	// even without a pin.
	if _, err := c.Arbitrate("class", "alice", ModeratedQueue, ""); !errors.Is(err, ErrBusy) {
		t.Fatal("entry into moderated-queue should park the request")
	}
	if _, _, err := c.SwitchMode("class", "alice", FreeAccess, false); !errors.Is(err, ErrNotChair) {
		t.Errorf("gated exit: %v", err)
	}
}

func TestStateSnapshotIsAtomicView(t *testing.T) {
	_, _, c := classroom(t)
	if _, err := c.Arbitrate("class", "alice", EqualControl, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Arbitrate("class", "bob", EqualControl, ""); !errors.Is(err, ErrBusy) {
		t.Fatal("bob should queue")
	}
	mode, holder, queue, suspended, pinned := c.StateSnapshot("class")
	if mode != EqualControl || holder != "alice" || pinned {
		t.Errorf("snapshot = %v %q pinned=%v", mode, holder, pinned)
	}
	if len(queue) != 1 || queue[0] != group.MemberID("bob") {
		t.Errorf("queue = %v", queue)
	}
	if len(suspended) != 0 {
		t.Errorf("suspended = %v", suspended)
	}
}

func TestOrphanedPinLapsesWhenChairLeaves(t *testing.T) {
	reg, _, c := classroom(t)
	if _, _, err := c.SwitchMode("class", "teacher", FreeAccess, true); err != nil {
		t.Fatal(err)
	}
	// While the chair is present the pin binds.
	if _, _, err := c.SwitchMode("class", "alice", EqualControl, false); !errors.Is(err, ErrNotChair) {
		t.Fatalf("pin should bind while the chair is a member: %v", err)
	}
	if err := reg.Leave("class", "teacher"); err != nil {
		t.Fatal(err)
	}
	// With the chair gone the pin must not lock the group into its mode
	// forever: a remaining member may move it again.
	if mode, changed, err := c.SwitchMode("class", "alice", EqualControl, false); err != nil || mode != EqualControl || !changed {
		t.Fatalf("orphaned pin still binds: (%v, %v, %v)", mode, changed, err)
	}
	if !c.Pinned("class") {
		t.Fatal("pin flag itself should persist (it resumes if the chair rejoins)")
	}
	// The chair rejoining restores enforcement.
	if err := reg.Join("class", "teacher"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.SwitchMode("class", "alice", FreeAccess, false); !errors.Is(err, ErrNotChair) {
		t.Fatalf("pin should resume with the chair back: %v", err)
	}
}
