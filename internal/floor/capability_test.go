package floor

import (
	"testing"

	"dmps/internal/group"
)

// TestCapabilityMatrixFigure2 verifies the capability surface of the
// paper's Figure 2 communication windows across roles and modes.
func TestCapabilityMatrixFigure2(t *testing.T) {
	_, _, c := classroom(t)

	// Default (free access): everyone sends everywhere; only the chair
	// (teacher) may invite.
	for _, id := range []group.MemberID{"teacher", "alice", "carol"} {
		cap := c.CapabilityFor("class", id)
		if !cap.MessageWindow || !cap.Whiteboard {
			t.Errorf("free access %s: %+v", id, cap)
		}
		if cap.PassToken || cap.PrivateWindow {
			t.Errorf("free access %s has token/private: %+v", id, cap)
		}
		if wantInvite := id == "teacher"; cap.Invite != wantInvite {
			t.Errorf("%s invite = %v", id, cap.Invite)
		}
	}

	// Equal control: only the holder delivers and may pass the token.
	mustGrant(t, c, "alice", EqualControl, "")
	holderCap := c.CapabilityFor("class", "alice")
	if !holderCap.MessageWindow || !holderCap.Whiteboard || !holderCap.PassToken {
		t.Errorf("holder capabilities: %+v", holderCap)
	}
	mutedCap := c.CapabilityFor("class", "bob")
	if mutedCap.MessageWindow || mutedCap.Whiteboard || mutedCap.PassToken {
		t.Errorf("non-holder should be muted: %+v", mutedCap)
	}
	// The teacher is muted too (equal control applies to the chair), but
	// retains the invite affordance.
	teacherCap := c.CapabilityFor("class", "teacher")
	if teacherCap.MessageWindow {
		t.Errorf("teacher should be muted in equal control: %+v", teacherCap)
	}
	if !teacherCap.Invite {
		t.Error("chair keeps invite")
	}

	// Direct contact composes: alice+teacher open a private window while
	// equal control is active.
	if _, err := c.Arbitrate("class", "alice", DirectContact, "teacher"); err != nil {
		t.Fatal(err)
	}
	if got := c.CapabilityFor("class", "alice"); !got.PrivateWindow {
		t.Errorf("alice should have the private window: %+v", got)
	}
	if got := c.CapabilityFor("class", "bob"); got.PrivateWindow {
		t.Errorf("bob is not in a contact pair: %+v", got)
	}
}

func TestCapabilityGroupDiscussion(t *testing.T) {
	reg, _, c := classroom(t)
	if err := reg.CreateGroup("breakout", "alice"); err != nil {
		t.Fatal(err)
	}
	inv, err := reg.Invite("breakout", "alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Respond(inv.ID, "bob", true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Arbitrate("breakout", "alice", GroupDiscussion, ""); err != nil {
		t.Fatal(err)
	}
	// Creator (chair of the sub-group) can invite; both can send.
	aliceCap := c.CapabilityFor("breakout", "alice")
	if !aliceCap.MessageWindow || !aliceCap.Invite {
		t.Errorf("creator: %+v", aliceCap)
	}
	bobCap := c.CapabilityFor("breakout", "bob")
	if !bobCap.MessageWindow || bobCap.Invite {
		t.Errorf("invitee: %+v", bobCap)
	}
}

func TestCapabilityNonMember(t *testing.T) {
	_, _, c := classroom(t)
	if got := c.CapabilityFor("class", "ghost"); got != (Capability{}) {
		t.Errorf("non-member capability = %+v", got)
	}
}
