package floor

// groupDiscussionPolicy implements Group Discussion: members of an
// invitation-built sub-group all send together; the creator is the
// sub-group's session chair.
type groupDiscussionPolicy struct{ tokenSemantics }

func (groupDiscussionPolicy) Mode() Mode { return GroupDiscussion }

func (groupDiscussionPolicy) Decide(_ Roster, st *State, req Request) (Decision, error) {
	if err := checkTokenPriority(req.Requester); err != nil {
		return Decision{}, err
	}
	st.Mode = GroupDiscussion
	st.Holder = ""
	return Decision{Granted: true}, nil
}
