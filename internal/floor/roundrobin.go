package floor

import (
	"fmt"

	"dmps/internal/group"
)

// roundRobinPolicy implements Round Robin: Equal Control's token
// discipline, except that a release with contenders waiting re-enqueues
// the releasing holder at the tail. Contenders who keep releasing take
// turns in arrival order forever, without re-requesting — the floor
// rotates through the room, which is what a lecture Q&A or a swarm of
// equally impatient load-generator members wants. A holder who leaves
// the rotation simply stops releasing into a non-empty queue (or is
// evicted, which uses tokenSemantics-style promotion without
// re-enqueueing).
//
// It is the first policy registered through the RegisterPolicy seam
// after the builtins, and doubles as the conformance witness that the
// seam supports modes the paper never named.
type roundRobinPolicy struct{ tokenSemantics }

func (roundRobinPolicy) Mode() Mode { return RoundRobin }

func (roundRobinPolicy) Decide(_ Roster, st *State, req Request) (Decision, error) {
	if err := checkTokenPriority(req.Requester); err != nil {
		return Decision{}, err
	}
	st.Mode = RoundRobin
	member := req.Requester.ID
	if st.Holder == "" || st.Holder == member {
		st.Holder = member
		return Decision{Granted: true, Holder: member}, nil
	}
	pos := st.enqueue(member)
	dec := Decision{Holder: st.Holder, QueuePosition: pos}
	return dec, fmt.Errorf("%w: position %d", ErrBusy, pos)
}

// Release promotes the FIFO queue head like the other token modes, then
// re-enqueues the releaser at the tail — the rotation step. An empty
// queue frees the floor outright: a lone holder releasing does not
// immediately re-grant themself.
func (roundRobinPolicy) Release(_ Roster, st *State, member group.MemberID) (group.MemberID, error) {
	if st.Holder != member {
		return st.Holder, fmt.Errorf("%w: holder is %q", ErrNotHolder, st.Holder)
	}
	if len(st.Queue) == 0 {
		st.Holder = ""
		return "", nil
	}
	st.Holder = st.Queue[0]
	st.Queue = st.Queue[1:]
	delete(st.Approved, st.Holder)
	st.enqueue(member)
	return st.Holder, nil
}

func init() {
	mustRegister("round-robin", roundRobinPolicy{})
}
