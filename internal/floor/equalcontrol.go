package floor

import "fmt"

// equalControlPolicy implements Equal Control: exactly one member
// delivers at a time, holding the floor token until they release it or
// pass it; contenders queue FIFO.
type equalControlPolicy struct{ tokenSemantics }

func (equalControlPolicy) Mode() Mode { return EqualControl }

func (equalControlPolicy) Decide(_ Roster, st *State, req Request) (Decision, error) {
	if err := checkTokenPriority(req.Requester); err != nil {
		return Decision{}, err
	}
	st.Mode = EqualControl
	member := req.Requester.ID
	if st.Holder == "" || st.Holder == member {
		st.Holder = member
		return Decision{Granted: true, Holder: member}, nil
	}
	pos := st.enqueue(member)
	dec := Decision{Holder: st.Holder, QueuePosition: pos}
	return dec, fmt.Errorf("%w: position %d", ErrBusy, pos)
}
