package floor

import (
	"fmt"

	"dmps/internal/group"
)

// tokenSemantics is the shared release/pass/queue behavior of the
// builtin policies: release promotes the FIFO queue head; pass hands the
// token directly to an eligible member ("until the floor control token
// passed by the holder"), removing them from the queue if queued.
type tokenSemantics struct{}

func (tokenSemantics) Release(_ Roster, st *State, member group.MemberID) (group.MemberID, error) {
	if st.Holder != member {
		return st.Holder, fmt.Errorf("%w: holder is %q", ErrNotHolder, st.Holder)
	}
	if len(st.Queue) > 0 {
		st.Holder = st.Queue[0]
		st.Queue = st.Queue[1:]
		delete(st.Approved, st.Holder)
	} else {
		st.Holder = ""
	}
	return st.Holder, nil
}

func (tokenSemantics) Pass(r Roster, st *State, from, to group.MemberID) error {
	if err := checkRecipient(r, st, to); err != nil {
		return err
	}
	if st.Holder != from {
		return fmt.Errorf("%w: holder is %q", ErrNotHolder, st.Holder)
	}
	st.Holder = to
	st.dequeue(to)
	return nil
}

func (tokenSemantics) QueueSnapshot(st *State) []group.MemberID {
	out := make([]group.MemberID, len(st.Queue))
	copy(out, st.Queue)
	return out
}

// checkRecipient validates a pass recipient: a group member with token
// priority. The group is recorded on the state via the policy call site.
func checkRecipient(r Roster, st *State, to group.MemberID) error {
	if !r.IsMember(st.Group, to) {
		return fmt.Errorf("%w: recipient %q not in %q", ErrNotMember, to, st.Group)
	}
	recipient, err := r.Member(to)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrAborted, err)
	}
	if recipient.Priority < MinTokenPriority {
		return fmt.Errorf("%w: recipient priority %d < %d", ErrPriority, recipient.Priority, MinTokenPriority)
	}
	return nil
}

// checkTokenPriority enforces the Z spec's Priority ≥ 2 requirement for
// the token-based modes.
func checkTokenPriority(m group.Member) error {
	if m.Priority < MinTokenPriority {
		return fmt.Errorf("%w: %d < %d", ErrPriority, m.Priority, MinTokenPriority)
	}
	return nil
}
