package floor

import (
	"fmt"

	"dmps/internal/group"
)

// moderatedQueuePolicy is the BFCP-style chair-moderated mode (not in the
// paper; the seam the Policy interface exists to prove). Every request
// joins a FIFO queue; the session chair explicitly approves queued
// members, who then receive the floor as soon as it is free. The chair's
// own request is granted immediately when the floor is free (the chair
// would approve themselves). Release hands the floor to the first
// *approved* member in queue order — unapproved members keep waiting no
// matter how early they queued.
//
// Entry is deliberately open: like the paper's four modes, any eligible
// member's request switches the group in (a student raising their hand
// starts the moderated session without prior chair action). Exit is
// chair-gated (AllowModeChange below), so a participant who dislikes
// moderation cannot dissolve it; the flip side — a participant starting
// moderation the chair didn't want — the chair undoes by switching modes.
type moderatedQueuePolicy struct{ tokenSemantics }

func (moderatedQueuePolicy) Mode() Mode { return ModeratedQueue }

func (moderatedQueuePolicy) Decide(r Roster, st *State, req Request) (Decision, error) {
	if err := checkTokenPriority(req.Requester); err != nil {
		return Decision{}, err
	}
	st.Mode = ModeratedQueue
	member := req.Requester.ID
	if st.Holder == member {
		return Decision{Granted: true, Holder: member}, nil
	}
	chair, _ := r.Chair(st.Group)
	// With the floor free, the chair and already-approved members are
	// granted at once (the chair would approve themselves; an approved
	// member re-requesting — e.g. after a mode switch away and back, which
	// clears Holder but keeps Queue/Approved — was already cleared).
	if st.Holder == "" && (member == chair || st.Approved[member]) {
		st.Holder = member
		st.dequeue(member)
		return Decision{Granted: true, Holder: member}, nil
	}
	pos := st.enqueue(member)
	dec := Decision{Holder: st.Holder, QueuePosition: pos}
	return dec, fmt.Errorf("%w: position %d", ErrPending, pos)
}

// AllowModeChange implements the ModeGate seam: only the session chair
// may take the group out of moderated-queue — otherwise any member could
// request free-access or equal-control and dissolve the moderation.
// Direct Contact is exempt: it runs concurrently and never changes the
// group's prevailing mode.
func (moderatedQueuePolicy) AllowModeChange(r Roster, st *State, req Request) error {
	if req.Mode == DirectContact {
		return nil
	}
	chair, err := r.Chair(st.Group)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrAborted, err)
	}
	if req.Requester.ID != chair {
		return fmt.Errorf("%w: only chair %q may switch %q out of %v", ErrNotChair, chair, st.Group, ModeratedQueue)
	}
	return nil
}

// Pass preserves the chair's authority: the chair may pass to any
// eligible member (a chair handing the floor over is itself an
// approval), but a non-chair holder may only pass to the chair or to a
// member the chair has already approved — otherwise delegation would
// bypass the moderation this mode exists to enforce.
func (moderatedQueuePolicy) Pass(r Roster, st *State, from, to group.MemberID) error {
	if err := checkRecipient(r, st, to); err != nil {
		return err
	}
	if st.Holder != from {
		return fmt.Errorf("%w: holder is %q", ErrNotHolder, st.Holder)
	}
	chair, _ := r.Chair(st.Group)
	if from != chair && to != chair && !st.Approved[to] {
		return fmt.Errorf("%w: %q", ErrUnapproved, to)
	}
	st.Holder = to
	st.dequeue(to)
	return nil
}

// Release promotes the earliest approved queued member; members the
// chair has not cleared stay queued.
func (moderatedQueuePolicy) Release(_ Roster, st *State, member group.MemberID) (group.MemberID, error) {
	if st.Holder != member {
		return st.Holder, fmt.Errorf("%w: holder is %q", ErrNotHolder, st.Holder)
	}
	st.Holder = ""
	for _, q := range st.Queue {
		if st.Approved[q] {
			st.Holder = q
			st.dequeue(q)
			break
		}
	}
	return st.Holder, nil
}

// Approve implements the Approver seam: the chair clears a queued member.
func (moderatedQueuePolicy) Approve(r Roster, st *State, groupID string, approver, member group.MemberID) (Decision, error) {
	chair, err := r.Chair(groupID)
	if err != nil {
		return Decision{}, fmt.Errorf("%w: %v", ErrAborted, err)
	}
	if approver != chair {
		return Decision{}, fmt.Errorf("%w: %q is not the chair of %q", ErrNotChair, approver, groupID)
	}
	pos := st.queuePosition(member)
	if pos == 0 {
		return Decision{}, fmt.Errorf("%w: %q has no pending request in %q", ErrNotQueued, member, groupID)
	}
	if st.Holder == "" {
		st.Holder = member
		st.dequeue(member)
		return Decision{Granted: true, Holder: member}, nil
	}
	if st.Approved == nil {
		st.Approved = make(map[group.MemberID]bool)
	}
	st.Approved[member] = true
	return Decision{Holder: st.Holder, QueuePosition: pos}, nil
}
