// Package floor implements the paper's floor control mechanism as a
// pluggable policy engine. The four control modes (Free Access, Equal
// Control, Group Discussion, Direct Contact) are each one Policy behind a
// slim Controller that owns only what the Z specification centralizes:
// membership checks, the α/β resource thresholds (Abort-Arbitrate below
// β, Media-Suspend in [β, α)), and suspension bookkeeping. A fifth,
// BFCP-style ModeratedQueue policy (chair approves queued requests)
// exercises the seam; RegisterPolicy admits further custom modes.
//
// All floor requests are centralized: the DMPS server owns one Controller
// and routes every client request through it, exactly as the paper's
// group administration does. Granted requests then run "with the same
// highest priority" as the global clock control. Centralized does not
// mean serialized, though: controller state is sharded per group (each
// group's floorState carries its own lock behind a lock-striped map), so
// arbitration in one group never waits on arbitration in another.
package floor

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"dmps/internal/group"
	"dmps/internal/resource"
	"dmps/internal/shard"
)

// Mode names a floor control discipline. The paper's four modes are
// builtin; RegisterPolicy adds more.
type Mode int

const (
	// FreeAccess: everyone (session chair and participants alike) may send
	// to the message window or whiteboard; no privacy, no priority.
	FreeAccess Mode = iota + 1
	// EqualControl: exactly one member delivers at a time, holding the
	// floor token until they pass it.
	EqualControl
	// GroupDiscussion: members of an invitation-built sub-group all send
	// together; the creator is the sub-group's session chair.
	GroupDiscussion
	// DirectContact: two members communicate in a private window,
	// concurrently with the other modes.
	DirectContact
	// ModeratedQueue: BFCP-style chair moderation — requests queue until
	// the session chair approves them (not in the paper).
	ModeratedQueue
	// RoundRobin: Equal Control whose release auto-rotates — the
	// releasing holder rejoins the tail of the queue, so contenders take
	// turns without re-requesting (not in the paper; the first policy
	// registered through the RegisterPolicy seam after the builtins).
	RoundRobin
)

// modeNames maps registered modes to their wire names. It is populated by
// policy registration and guarded by policyMu.
var modeNames = make(map[Mode]string)

// String implements fmt.Stringer.
func (m Mode) String() string {
	policyMu.RLock()
	s, ok := modeNames[m]
	policyMu.RUnlock()
	if ok {
		return s
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Valid reports whether m has a registered policy.
func (m Mode) Valid() bool { _, ok := PolicyFor(m); return ok }

// ParseMode resolves a mode's wire name (e.g. "equal-control") or its
// short alias (the leading word, e.g. "equal") to the mode. It is the
// single parser the server, client library and command-line tools share.
// Full names take precedence over aliases, and RegisterPolicy rejects
// alias collisions, so resolution is deterministic.
func ParseMode(s string) (Mode, bool) {
	s = strings.ToLower(strings.TrimSpace(s))
	policyMu.RLock()
	defer policyMu.RUnlock()
	for m, name := range modeNames {
		if s == name {
			return m, true
		}
	}
	for m, name := range modeNames {
		if a := modeAlias(name); a != "" && s == a {
			return m, true
		}
	}
	return 0, false
}

// modeAlias is a wire name's short form: its leading "-"-separated word
// ("" when the name has no dash, so single-word names get no alias).
func modeAlias(name string) string {
	if head, _, found := strings.Cut(name, "-"); found {
		return head
	}
	return ""
}

// MinTokenPriority is the Z spec's Priority ≥ 2 requirement for the
// token-based modes (Equal Control, Group Discussion, Direct Contact,
// Moderated Queue).
const MinTokenPriority = 2

// Arbitration errors.
var (
	// ErrAborted is Abort-Arbitrate: availability fell below β, or a
	// structural precondition failed.
	ErrAborted = errors.New("floor: arbitration aborted")
	// ErrNotMember is returned when the requester has not joined the
	// group (G ∉ Joined-Groups).
	ErrNotMember = errors.New("floor: requester not in group")
	// ErrPriority is returned when the requester's priority is below the
	// mode's requirement.
	ErrPriority = errors.New("floor: insufficient priority")
	// ErrBusy is returned when another member holds the floor; the
	// request is queued.
	ErrBusy = errors.New("floor: floor busy, request queued")
	// ErrNotHolder is returned when a release/pass comes from a member
	// not holding the floor.
	ErrNotHolder = errors.New("floor: not the floor holder")
	// ErrBadTarget is returned for Direct Contact without a valid target.
	ErrBadTarget = errors.New("floor: invalid direct-contact target")
	// ErrNotChair is returned when a ModeratedQueue approval comes from a
	// member other than the session chair.
	ErrNotChair = errors.New("floor: approver is not the session chair")
	// ErrNotQueued is returned when approving a member with no pending
	// request.
	ErrNotQueued = errors.New("floor: member not queued")
	// ErrUnapproved is returned when a non-chair holder passes the
	// moderated floor to a member the chair has not approved.
	ErrUnapproved = errors.New("floor: recipient not approved by the chair")
	// ErrNoApproval is returned when the group's policy has no chair-
	// approval seam (it does not implement Approver).
	ErrNoApproval = errors.New("floor: mode does not support approval")
)

// ErrPending wraps ErrBusy for requests queued behind a chair decision
// (ModeratedQueue): the request is parked, not failed, and callers that
// treat ErrBusy as "queued" need no special case.
var ErrPending = fmt.Errorf("pending chair approval (%w)", ErrBusy)

// Decision is the outcome of one arbitration.
type Decision struct {
	// Granted reports whether the requester received the floor/media.
	Granted bool
	// Mode echoes the arbitrated mode.
	Mode Mode
	// Holder is the token holder after this arbitration.
	Holder group.MemberID
	// QueuePosition is the requester's 1-based queue slot when not
	// granted (0 when granted).
	QueuePosition int
	// Suspended lists members whose media were suspended by Media-Suspend
	// during this arbitration (degraded regime).
	Suspended []group.MemberID
	// Level is the resource regime the arbitration ran in.
	Level resource.Level
	// Target echoes the Direct Contact peer.
	Target group.MemberID
}

// Controller is the centralized floor control state for all groups. It
// owns membership/threshold/suspension bookkeeping and delegates every
// mode-specific decision to the registered Policy. It is safe for
// concurrent use, and its state is sharded per group: each group's
// floorState carries its own mutex behind a lock-striped map, so
// arbitration in one group never contends with arbitration in another.
type Controller struct {
	registry *group.Registry
	monitor  *resource.Monitor
	floors   *shard.Map[*floorState]
}

// floorState pairs the policy-visible State with the suspension set and
// the pin flag, which are controller bookkeeping no policy may touch.
// Its mutex is the group's arbitration lock: every Controller method
// takes it for exactly one group, so independent groups proceed in
// parallel.
type floorState struct {
	mu        sync.Mutex
	st        State
	suspended map[group.MemberID]bool
	// pinned is the chair-pinned policy flag: while set, only the
	// session chair may move the group to a different mode — whether by
	// an explicit SwitchMode or by requesting a different mode's floor.
	pinned bool
}

// NewController returns a controller over the given group registry and
// resource monitor. A nil monitor means resources are always Normal.
func NewController(reg *group.Registry, mon *resource.Monitor) *Controller {
	return &Controller{
		registry: reg,
		monitor:  mon,
		floors:   shard.NewMap[*floorState](),
	}
}

func (c *Controller) state(groupID string) *floorState {
	return c.floors.GetOrCreate(groupID, func() *floorState {
		return &floorState{
			st: State{
				Group:    groupID,
				Mode:     FreeAccess,
				Contacts: make(map[group.MemberID]group.MemberID),
				Approved: make(map[group.MemberID]bool),
			},
			suspended: make(map[group.MemberID]bool),
		}
	})
}

// level reads the current resource regime.
func (c *Controller) level() resource.Level {
	if c.monitor == nil {
		return resource.Normal
	}
	return c.monitor.Snapshot().Level
}

// policyOf returns the policy governing the group's current mode.
func (c *Controller) policyOf(fs *floorState) (Policy, error) {
	p, ok := PolicyFor(fs.st.Mode)
	if !ok {
		return nil, fmt.Errorf("%w: no policy for mode %d", ErrAborted, int(fs.st.Mode))
	}
	return p, nil
}

// Arbitrate is FCM-Arbitrate: it processes one floor request by member M
// for mode F in group G (with DM the Direct Contact peer when F is
// DirectContact). The controller runs the Z specification's centralized
// steps, then hands the mode rules to the registered policy:
//
//  1. Resource-Available < β            → Abort-Arbitrate.
//  2. G ∉ Joined-Groups(M)              → Abort-Arbitrate (ErrNotMember).
//  3. β ≤ Resource-Available < α        → Media-Suspend the lowest-
//     priority member holding media, then proceed.
//  4. Mode rules                        → Policy.Decide.
func (c *Controller) Arbitrate(groupID string, member group.MemberID, mode Mode, target group.MemberID) (Decision, error) {
	pol, ok := PolicyFor(mode)
	if !ok {
		return Decision{}, fmt.Errorf("%w: unknown mode %d", ErrAborted, int(mode))
	}
	lvl := c.level()
	dec := Decision{Mode: mode, Level: lvl}
	// Step 1: Abort-Arbitrate below β.
	if lvl == resource.Critical {
		return dec, fmt.Errorf("%w: resource availability below β", ErrAborted)
	}
	// Step 2: membership.
	if !c.registry.IsMember(groupID, member) {
		return dec, fmt.Errorf("%w: %q in %q (%w)", ErrNotMember, member, groupID, ErrAborted)
	}
	requester, err := c.registry.Member(member)
	if err != nil {
		return dec, fmt.Errorf("%w: %v", ErrAborted, err)
	}

	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	req := Request{
		Group:     groupID,
		Mode:      mode,
		Requester: requester,
		Target:    target,
		Level:     lvl,
	}
	// A request for a different mode must clear the group's pin (a
	// chair-pinned policy gates mode *entry* behind the chair, not just
	// exit) and then the outgoing policy's gate (if any), so a mode that
	// moderates its group cannot be switched off by an arbitrary member.
	// Both run before Media-Suspend: a rejected request must not suspend
	// an uninvolved member's media. Direct Contact is exempt from the
	// pin, as it is from ModeGates: it runs concurrently and never
	// changes the group's prevailing mode.
	if mode != fs.st.Mode {
		if mode != DirectContact && c.pinEnforcedLocked(groupID, fs, member) {
			return dec, fmt.Errorf("%w: %q policy is pinned by the chair", ErrNotChair, groupID)
		}
		if cur, ok := PolicyFor(fs.st.Mode); ok {
			if gate, ok := cur.(ModeGate); ok {
				if gerr := gate.AllowModeChange(c.registry, &fs.st, req); gerr != nil {
					return dec, gerr
				}
			}
		}
	}
	// Step 3: Media-Suspend in the degraded regime.
	if lvl == resource.Degraded {
		if victim, ok := c.suspendLowestLocked(groupID, fs); ok {
			dec.Suspended = append(dec.Suspended, victim)
		}
	}
	// Step 4: mode rules, delegated to the policy.
	pdec, err := pol.Decide(c.registry, &fs.st, req)
	pdec.Mode = mode
	pdec.Level = lvl
	pdec.Suspended = dec.Suspended
	return pdec, err
}

// suspendLowestLocked implements Media-Suspend: choose the not-yet-
// suspended member of the group with the lowest priority and suspend
// their media. Reports the victim, or false when everyone is suspended.
func (c *Controller) suspendLowestLocked(groupID string, fs *floorState) (group.MemberID, bool) {
	members, err := c.registry.GroupMembers(groupID)
	if err != nil {
		return "", false
	}
	best := -1
	var victim group.MemberID
	for _, m := range members {
		if fs.suspended[m.ID] {
			continue
		}
		if best == -1 || m.Priority < best {
			best = m.Priority
			victim = m.ID
		}
	}
	if best == -1 {
		return "", false
	}
	fs.suspended[victim] = true
	return victim, true
}

// Release gives up the floor under the group's current policy; in the
// token modes the floor passes to the next eligible queued member. It
// returns the new holder ("" when the floor is now free).
func (c *Controller) Release(groupID string, member group.MemberID) (group.MemberID, error) {
	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	pol, err := c.policyOf(fs)
	if err != nil {
		return fs.st.Holder, err
	}
	return pol.Release(c.registry, &fs.st, member)
}

// Pass hands the floor token from its holder directly to another member
// ("until the floor control token passed by the holder"), under the
// group's current policy.
func (c *Controller) Pass(groupID string, from, to group.MemberID) error {
	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	pol, err := c.policyOf(fs)
	if err != nil {
		return err
	}
	return pol.Pass(c.registry, &fs.st, from, to)
}

// Approve lets the session chair clear a queued request in a moderated
// mode. It fails with ErrNoApproval when the group's current policy has
// no approval seam.
func (c *Controller) Approve(groupID string, approver, member group.MemberID) (Decision, error) {
	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	pol, err := c.policyOf(fs)
	if err != nil {
		return Decision{}, err
	}
	appr, ok := pol.(Approver)
	if !ok {
		return Decision{}, fmt.Errorf("%w: %v", ErrNoApproval, fs.st.Mode)
	}
	dec, err := appr.Approve(c.registry, &fs.st, groupID, approver, member)
	dec.Mode = fs.st.Mode
	dec.Level = c.level()
	return dec, err
}

// SwitchMode sets the group's floor mode explicitly, without running an
// arbitration. The switch passes the same gates as mode entry through
// Arbitrate — a pinned group only obeys its session chair, and the
// outgoing policy's ModeGate may veto — and then resets the floor:
// holder, queue and approvals clear, so the new mode starts from an
// empty room. Pin (chair only) records the chair-pinned policy; every
// chair switch rewrites the flag, so a chair switching without pin also
// unpins. It returns the group's resulting mode and whether the mode
// (and with it the floor state) actually changed — a same-mode call is
// a pin update only, and callers must not announce a floor reset that
// never happened.
func (c *Controller) SwitchMode(groupID string, member group.MemberID, mode Mode, pin bool) (Mode, bool, error) {
	if _, ok := PolicyFor(mode); !ok {
		return 0, false, fmt.Errorf("%w: unknown mode %d", ErrAborted, int(mode))
	}
	if !c.registry.IsMember(groupID, member) {
		return 0, false, fmt.Errorf("%w: %q in %q (%w)", ErrNotMember, member, groupID, ErrAborted)
	}
	requester, err := c.registry.Member(member)
	if err != nil {
		return 0, false, fmt.Errorf("%w: %v", ErrAborted, err)
	}
	chair, _ := c.registry.Chair(groupID)
	isChair := member == chair

	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if c.pinEnforcedLocked(groupID, fs, member) {
		return fs.st.Mode, false, fmt.Errorf("%w: %q policy is pinned by the chair", ErrNotChair, groupID)
	}
	if pin && !isChair {
		return fs.st.Mode, false, fmt.Errorf("%w: only chair %q may pin %q", ErrNotChair, chair, groupID)
	}
	changed := mode != fs.st.Mode
	if changed {
		if cur, ok := PolicyFor(fs.st.Mode); ok {
			if gate, ok := cur.(ModeGate); ok {
				req := Request{Group: groupID, Mode: mode, Requester: requester, Level: c.level()}
				if gerr := gate.AllowModeChange(c.registry, &fs.st, req); gerr != nil {
					return fs.st.Mode, false, gerr
				}
			}
		}
		fs.st.Mode = mode
		fs.st.Holder = ""
		fs.st.Queue = nil
		fs.st.Approved = make(map[group.MemberID]bool)
	}
	if isChair {
		fs.pinned = pin
	}
	return fs.st.Mode, changed, nil
}

// Evict removes a member from a group's floor bookkeeping entirely —
// queue slot, chair approval, direct contacts, suspension — and, when
// they hold the floor, releases it under the group's policy (promoting
// the next eligible queued member in the token modes). The server calls
// it when a member is reaped from the directory; a regular leave keeps
// floor state, matching the paper's persistent red-light semantics. It
// reports the holder after eviction and whether the member held the
// floor or occupied a queue slot (the cases that shift other members).
func (c *Controller) Evict(groupID string, member group.MemberID) (holder group.MemberID, wasHolder, wasQueued bool) {
	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st := &fs.st
	for i, q := range st.Queue {
		if q == member {
			st.Queue = append(st.Queue[:i], st.Queue[i+1:]...)
			wasQueued = true
			break
		}
	}
	delete(st.Approved, member)
	delete(fs.suspended, member)
	if peer := st.Contacts[member]; peer != "" {
		delete(st.Contacts, member)
		if st.Contacts[peer] == member {
			delete(st.Contacts, peer)
		}
	}
	if st.Holder == member {
		wasHolder = true
		if pol, err := c.policyOf(fs); err == nil {
			_, _ = pol.Release(c.registry, st, member)
		}
		// A policy's release may have re-queued the releaser (RoundRobin
		// rotates it to the tail); eviction means gone, so scrub again.
		st.dequeue(member)
		if st.Holder == member {
			// The policy declined (or had no release semantics for this
			// mode); the seat must not stay with a reaped member.
			st.Holder = ""
		}
	}
	return st.Holder, wasHolder, wasQueued
}

// Restore installs a group's floor state wholesale — the cluster
// takeover path: when a partition fails over, the adopting node's
// controller receives the mode, holder, pending queue, suspended set
// and pin flag the failed owner last replicated, so arbitration resumes
// mid-hold with zero duplicate grants (the holder keeps the floor; the
// queue keeps its order). Chair approvals are deliberately not carried:
// an approval that was pending at the moment of failover degrades to
// re-queueing, never to an unapproved grant.
func (c *Controller) Restore(groupID string, mode Mode, holder group.MemberID, queue, suspended []group.MemberID, pinned bool) {
	if !mode.Valid() {
		mode = FreeAccess
	}
	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.st.Mode = mode
	fs.st.Holder = holder
	fs.st.Queue = append([]group.MemberID(nil), queue...)
	fs.st.Approved = make(map[group.MemberID]bool)
	fs.st.Contacts = make(map[group.MemberID]group.MemberID)
	fs.suspended = make(map[group.MemberID]bool, len(suspended))
	for _, m := range suspended {
		fs.suspended[m] = true
	}
	fs.pinned = pinned
}

// Pinned reports whether the group's floor policy is chair-pinned.
func (c *Controller) Pinned(groupID string) bool {
	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.pinned
}

// pinEnforcedLocked reports whether the group's pin blocks a mode
// change by member. The pin binds only while its chair is still in the
// group: a chair who leaves would otherwise lock the group into its
// mode forever (the registry never reassigns the chair seat), so an
// orphaned pin lapses — and resumes if the chair rejoins. Requires
// fs.mu.
func (c *Controller) pinEnforcedLocked(groupID string, fs *floorState, member group.MemberID) bool {
	if !fs.pinned {
		return false
	}
	chair, err := c.registry.Chair(groupID)
	if err != nil || member == chair {
		return false
	}
	return c.registry.IsMember(groupID, chair)
}

// StateSnapshot returns the group's mode, holder, queue, suspended set
// (sorted) and pin flag from one lock acquisition — the floor half of
// the catch-up snapshot a behind client converges from, so it can never
// pair a holder from before a concurrent arbitration with a queue from
// after it.
func (c *Controller) StateSnapshot(groupID string) (mode Mode, holder group.MemberID, queue []group.MemberID, suspended []group.MemberID, pinned bool) {
	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	mode, holder, pinned = fs.st.Mode, fs.st.Holder, fs.pinned
	if pol, err := c.policyOf(fs); err == nil {
		queue = pol.QueueSnapshot(&fs.st)
	}
	for id, on := range fs.suspended {
		if on {
			suspended = append(suspended, id)
		}
	}
	sort.Slice(suspended, func(i, j int) bool { return suspended[i] < suspended[j] })
	return mode, holder, queue, suspended, pinned
}

// Holder returns the current token holder ("" when free).
func (c *Controller) Holder(groupID string) group.MemberID {
	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.st.Holder
}

// Queue returns the pending floor requests in order, via the group
// policy's QueueSnapshot.
func (c *Controller) Queue(groupID string) []group.MemberID {
	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	pol, err := c.policyOf(fs)
	if err != nil {
		return nil
	}
	return pol.QueueSnapshot(&fs.st)
}

// HolderAndQueue returns the holder and the pending queue from one lock
// acquisition, so callers pairing the two (e.g. queue-position pushes)
// cannot observe a holder from before a concurrent arbitration and a
// queue from after it.
func (c *Controller) HolderAndQueue(groupID string) (group.MemberID, []group.MemberID) {
	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	pol, err := c.policyOf(fs)
	if err != nil {
		return fs.st.Holder, nil
	}
	return fs.st.Holder, pol.QueueSnapshot(&fs.st)
}

// ModeOf returns the group's current floor mode (FreeAccess by default).
func (c *Controller) ModeOf(groupID string) Mode {
	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.st.Mode
}

// ContactPeer returns the member's Direct Contact peer ("" when none).
func (c *Controller) ContactPeer(groupID string, member group.MemberID) group.MemberID {
	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.st.Contacts[member]
}

// EndContact tears down a direct-contact pair (idempotent).
func (c *Controller) EndContact(groupID string, member group.MemberID) {
	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st := &fs.st
	peer := st.Contacts[member]
	delete(st.Contacts, member)
	if peer != "" && st.Contacts[peer] == member {
		delete(st.Contacts, peer)
	}
}

// MediaAvailable reports the Z spec's Media-Available(G, M): whether the
// member's media are currently granted (not suspended).
func (c *Controller) MediaAvailable(groupID string, member group.MemberID) bool {
	if !c.registry.IsMember(groupID, member) {
		return false
	}
	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return !fs.suspended[member]
}

// Suspended lists the group's suspended members, sorted.
func (c *Controller) Suspended(groupID string) []group.MemberID {
	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]group.MemberID, 0, len(fs.suspended))
	for id, on := range fs.suspended {
		if on {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reinstate lifts all suspensions in a group — the server calls it when
// the resource level returns to Normal.
func (c *Controller) Reinstate(groupID string) {
	fs := c.state(groupID)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.suspended = make(map[group.MemberID]bool)
}
