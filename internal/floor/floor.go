// Package floor implements the paper's floor control mechanism: the four
// control modes (Free Access, Equal Control, Group Discussion, Direct
// Contact), the FCM-Arbitrate algorithm from the Z specification —
// membership check, mode-specific grant rules with the Priority ≥ 2
// requirement, and resource arbitration against the α/β thresholds — plus
// Media-Suspend (suspend the lowest-priority member's media in the
// degraded regime) and Abort-Arbitrate (refuse service below β).
//
// All floor requests are centralized: the DMPS server owns one Controller
// and routes every client request through it, exactly as the paper's
// group administration does. Granted requests then run "with the same
// highest priority" as the global clock control.
package floor

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dmps/internal/group"
	"dmps/internal/resource"
)

// Mode is one of the paper's four floor control modes.
type Mode int

const (
	// FreeAccess: everyone (session chair and participants alike) may send
	// to the message window or whiteboard; no privacy, no priority.
	FreeAccess Mode = iota + 1
	// EqualControl: exactly one member delivers at a time, holding the
	// floor token until they pass it.
	EqualControl
	// GroupDiscussion: members of an invitation-built sub-group all send
	// together; the creator is the sub-group's session chair.
	GroupDiscussion
	// DirectContact: two members communicate in a private window,
	// concurrently with the other modes.
	DirectContact
)

var modeNames = map[Mode]string{
	FreeAccess:      "free-access",
	EqualControl:    "equal-control",
	GroupDiscussion: "group-discussion",
	DirectContact:   "direct-contact",
}

// String implements fmt.Stringer.
func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Valid reports whether m is a defined mode.
func (m Mode) Valid() bool { _, ok := modeNames[m]; return ok }

// MinTokenPriority is the Z spec's Priority ≥ 2 requirement for the
// token-based modes (Equal Control, Group Discussion, Direct Contact).
const MinTokenPriority = 2

// Arbitration errors.
var (
	// ErrAborted is Abort-Arbitrate: availability fell below β, or a
	// structural precondition failed.
	ErrAborted = errors.New("floor: arbitration aborted")
	// ErrNotMember is returned when the requester has not joined the
	// group (G ∉ Joined-Groups).
	ErrNotMember = errors.New("floor: requester not in group")
	// ErrPriority is returned when the requester's priority is below the
	// mode's requirement.
	ErrPriority = errors.New("floor: insufficient priority")
	// ErrBusy is returned in Equal Control when another member holds the
	// floor; the request is queued.
	ErrBusy = errors.New("floor: floor busy, request queued")
	// ErrNotHolder is returned when a release/pass comes from a member
	// not holding the floor.
	ErrNotHolder = errors.New("floor: not the floor holder")
	// ErrBadTarget is returned for Direct Contact without a valid target.
	ErrBadTarget = errors.New("floor: invalid direct-contact target")
)

// Decision is the outcome of one arbitration.
type Decision struct {
	// Granted reports whether the requester received the floor/media.
	Granted bool
	// Mode echoes the arbitrated mode.
	Mode Mode
	// Holder is the Equal Control token holder after this arbitration.
	Holder group.MemberID
	// QueuePosition is the requester's 1-based queue slot when not
	// granted in Equal Control (0 when granted).
	QueuePosition int
	// Suspended lists members whose media were suspended by Media-Suspend
	// during this arbitration (degraded regime).
	Suspended []group.MemberID
	// Level is the resource regime the arbitration ran in.
	Level resource.Level
	// Target echoes the Direct Contact peer.
	Target group.MemberID
}

// Controller is the centralized floor control state for all groups.
// It is safe for concurrent use.
type Controller struct {
	registry *group.Registry
	monitor  *resource.Monitor

	mu     sync.Mutex
	floors map[string]*floorState
}

type floorState struct {
	mode      Mode
	holder    group.MemberID
	queue     []group.MemberID
	suspended map[group.MemberID]bool
	// contacts tracks direct-contact pairs: member → peer.
	contacts map[group.MemberID]group.MemberID
}

// NewController returns a controller over the given group registry and
// resource monitor. A nil monitor means resources are always Normal.
func NewController(reg *group.Registry, mon *resource.Monitor) *Controller {
	return &Controller{
		registry: reg,
		monitor:  mon,
		floors:   make(map[string]*floorState),
	}
}

func (c *Controller) state(groupID string) *floorState {
	st, ok := c.floors[groupID]
	if !ok {
		st = &floorState{
			mode:      FreeAccess,
			suspended: make(map[group.MemberID]bool),
			contacts:  make(map[group.MemberID]group.MemberID),
		}
		c.floors[groupID] = st
	}
	return st
}

// level reads the current resource regime.
func (c *Controller) level() resource.Level {
	if c.monitor == nil {
		return resource.Normal
	}
	return c.monitor.Level()
}

// Arbitrate is FCM-Arbitrate: it processes one floor request by member M
// for mode F in group G (with DM the Direct Contact peer when F is
// DirectContact). The decision procedure follows the Z specification:
//
//  1. Resource-Available < β            → Abort-Arbitrate.
//  2. G ∉ Joined-Groups(M)              → Abort-Arbitrate (ErrNotMember).
//  3. β ≤ Resource-Available < α        → Media-Suspend the lowest-
//     priority member holding media, then proceed.
//  4. Mode rules:
//     Free Access     → Media-Available for every member of G.
//     Equal Control   → requester Priority ≥ 2; single holder; queue
//     when busy.
//     Group Discussion→ requester Priority ≥ 2; all sub-group members
//     may send.
//     Direct Contact  → requester and target Priority ≥ 2; both get a
//     private channel.
func (c *Controller) Arbitrate(groupID string, member group.MemberID, mode Mode, target group.MemberID) (Decision, error) {
	if !mode.Valid() {
		return Decision{}, fmt.Errorf("%w: unknown mode %d", ErrAborted, int(mode))
	}
	lvl := c.level()
	dec := Decision{Mode: mode, Level: lvl}
	// Step 1: Abort-Arbitrate below β.
	if lvl == resource.Critical {
		return dec, fmt.Errorf("%w: resource availability below β", ErrAborted)
	}
	// Step 2: membership.
	if !c.registry.IsMember(groupID, member) {
		return dec, fmt.Errorf("%w: %q in %q (%w)", ErrNotMember, member, groupID, ErrAborted)
	}
	requester, err := c.registry.Member(member)
	if err != nil {
		return dec, fmt.Errorf("%w: %v", ErrAborted, err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(groupID)
	// Step 3: Media-Suspend in the degraded regime.
	if lvl == resource.Degraded {
		if victim, ok := c.suspendLowestLocked(groupID, st); ok {
			dec.Suspended = append(dec.Suspended, victim)
		}
	}
	// Step 4: mode rules.
	switch mode {
	case FreeAccess:
		st.mode = FreeAccess
		st.holder = ""
		dec.Granted = true
		return dec, nil
	case EqualControl:
		if requester.Priority < MinTokenPriority {
			return dec, fmt.Errorf("%w: %d < %d", ErrPriority, requester.Priority, MinTokenPriority)
		}
		st.mode = EqualControl
		switch {
		case st.holder == "" || st.holder == member:
			st.holder = member
			dec.Granted = true
			dec.Holder = member
			return dec, nil
		default:
			// Queue the request; the holder passes the token later.
			for i, q := range st.queue {
				if q == member {
					dec.Holder = st.holder
					dec.QueuePosition = i + 1
					return dec, fmt.Errorf("%w: position %d", ErrBusy, i+1)
				}
			}
			st.queue = append(st.queue, member)
			dec.Holder = st.holder
			dec.QueuePosition = len(st.queue)
			return dec, fmt.Errorf("%w: position %d", ErrBusy, len(st.queue))
		}
	case GroupDiscussion:
		if requester.Priority < MinTokenPriority {
			return dec, fmt.Errorf("%w: %d < %d", ErrPriority, requester.Priority, MinTokenPriority)
		}
		st.mode = GroupDiscussion
		st.holder = ""
		dec.Granted = true
		return dec, nil
	case DirectContact:
		if requester.Priority < MinTokenPriority {
			return dec, fmt.Errorf("%w: %d < %d", ErrPriority, requester.Priority, MinTokenPriority)
		}
		if target == "" || target == member {
			return dec, fmt.Errorf("%w: %q", ErrBadTarget, target)
		}
		if !c.registry.IsMember(groupID, target) {
			return dec, fmt.Errorf("%w: target %q not in %q", ErrBadTarget, target, groupID)
		}
		peer, err := c.registry.Member(target)
		if err != nil {
			return dec, fmt.Errorf("%w: %v", ErrBadTarget, err)
		}
		if peer.Priority < MinTokenPriority {
			return dec, fmt.Errorf("%w: target priority %d < %d", ErrPriority, peer.Priority, MinTokenPriority)
		}
		st.contacts[member] = target
		st.contacts[target] = member
		dec.Granted = true
		dec.Target = target
		return dec, nil
	default:
		return dec, fmt.Errorf("%w: unhandled mode", ErrAborted)
	}
}

// suspendLowestLocked implements Media-Suspend: choose the not-yet-
// suspended member of the group with the lowest priority and suspend
// their media. Reports the victim, or false when everyone is suspended.
func (c *Controller) suspendLowestLocked(groupID string, st *floorState) (group.MemberID, bool) {
	members, err := c.registry.GroupMembers(groupID)
	if err != nil {
		return "", false
	}
	best := -1
	var victim group.MemberID
	for _, m := range members {
		if st.suspended[m.ID] {
			continue
		}
		if best == -1 || m.Priority < best {
			best = m.Priority
			victim = m.ID
		}
	}
	if best == -1 {
		return "", false
	}
	st.suspended[victim] = true
	return victim, true
}

// Release gives up the Equal Control floor; the token passes to the head
// of the queue, if any. It returns the new holder ("" when the floor is
// now free).
func (c *Controller) Release(groupID string, member group.MemberID) (group.MemberID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(groupID)
	if st.holder != member {
		return st.holder, fmt.Errorf("%w: holder is %q", ErrNotHolder, st.holder)
	}
	if len(st.queue) > 0 {
		st.holder = st.queue[0]
		st.queue = st.queue[1:]
	} else {
		st.holder = ""
	}
	return st.holder, nil
}

// Pass hands the Equal Control token from its holder directly to another
// member ("until the floor control token passed by the holder"). The
// recipient must be a group member with sufficient priority; if the
// recipient was queued they are removed from the queue.
func (c *Controller) Pass(groupID string, from, to group.MemberID) error {
	if !c.registry.IsMember(groupID, to) {
		return fmt.Errorf("%w: recipient %q not in %q", ErrNotMember, to, groupID)
	}
	recipient, err := c.registry.Member(to)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrAborted, err)
	}
	if recipient.Priority < MinTokenPriority {
		return fmt.Errorf("%w: recipient priority %d < %d", ErrPriority, recipient.Priority, MinTokenPriority)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(groupID)
	if st.holder != from {
		return fmt.Errorf("%w: holder is %q", ErrNotHolder, st.holder)
	}
	st.holder = to
	for i, q := range st.queue {
		if q == to {
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			break
		}
	}
	return nil
}

// Holder returns the Equal Control token holder ("" when free).
func (c *Controller) Holder(groupID string) group.MemberID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state(groupID).holder
}

// Queue returns the pending Equal Control requests in order.
func (c *Controller) Queue(groupID string) []group.MemberID {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(groupID)
	out := make([]group.MemberID, len(st.queue))
	copy(out, st.queue)
	return out
}

// ModeOf returns the group's current floor mode (FreeAccess by default).
func (c *Controller) ModeOf(groupID string) Mode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state(groupID).mode
}

// ContactPeer returns the member's Direct Contact peer ("" when none).
func (c *Controller) ContactPeer(groupID string, member group.MemberID) group.MemberID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state(groupID).contacts[member]
}

// EndContact tears down a direct-contact pair (idempotent).
func (c *Controller) EndContact(groupID string, member group.MemberID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(groupID)
	peer := st.contacts[member]
	delete(st.contacts, member)
	if peer != "" && st.contacts[peer] == member {
		delete(st.contacts, peer)
	}
}

// MediaAvailable reports the Z spec's Media-Available(G, M): whether the
// member's media are currently granted (not suspended).
func (c *Controller) MediaAvailable(groupID string, member group.MemberID) bool {
	if !c.registry.IsMember(groupID, member) {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.state(groupID).suspended[member]
}

// Suspended lists the group's suspended members, sorted.
func (c *Controller) Suspended(groupID string) []group.MemberID {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(groupID)
	out := make([]group.MemberID, 0, len(st.suspended))
	for id, on := range st.suspended {
		if on {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reinstate lifts all suspensions in a group — the server calls it when
// the resource level returns to Normal.
func (c *Controller) Reinstate(groupID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(groupID)
	st.suspended = make(map[group.MemberID]bool)
}
