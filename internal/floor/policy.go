package floor

import (
	"fmt"
	"sync"

	"dmps/internal/group"
	"dmps/internal/resource"
)

// Roster is the membership view a Policy consults: who is in the group,
// what priority they carry, and who chairs it. *group.Registry satisfies
// it; tests may substitute fakes.
type Roster interface {
	IsMember(groupID string, member group.MemberID) bool
	Member(id group.MemberID) (group.Member, error)
	Chair(groupID string) (group.MemberID, error)
}

var _ Roster = (*group.Registry)(nil)

// Request is one floor request as seen by a Policy. The Controller has
// already verified membership and the resource regime (Abort-Arbitrate
// and Media-Suspend are controller bookkeeping, not policy decisions).
type Request struct {
	// Group is the group the floor is requested in.
	Group string
	// Mode is the requested floor mode.
	Mode Mode
	// Requester is the resolved member record (priority included).
	Requester group.Member
	// Target is the Direct Contact peer ("" for the other modes).
	Target group.MemberID
	// Level is the resource regime the arbitration runs in.
	Level resource.Level
}

// State is one group's floor bookkeeping. The Controller owns it and
// hands it to the active Policy under the controller's lock; policies
// mutate it directly and must not retain it across calls.
type State struct {
	// Group is the group this state belongs to (set by the Controller).
	Group string
	// Mode is the group's current floor mode.
	Mode Mode
	// Holder is the current token holder ("" when the floor is free).
	Holder group.MemberID
	// Queue holds pending requests in FIFO order.
	Queue []group.MemberID
	// Contacts tracks direct-contact pairs: member → peer.
	Contacts map[group.MemberID]group.MemberID
	// Approved marks queued members the chair has cleared to receive the
	// floor on the next release (ModeratedQueue).
	Approved map[group.MemberID]bool
}

// queuePosition returns the member's 1-based slot in the queue (0 when
// absent).
func (st *State) queuePosition(member group.MemberID) int {
	for i, q := range st.Queue {
		if q == member {
			return i + 1
		}
	}
	return 0
}

// enqueue appends the member unless already queued and returns their
// 1-based position.
func (st *State) enqueue(member group.MemberID) int {
	if pos := st.queuePosition(member); pos != 0 {
		return pos
	}
	st.Queue = append(st.Queue, member)
	return len(st.Queue)
}

// dequeue removes the member from the queue and approval set.
func (st *State) dequeue(member group.MemberID) {
	for i, q := range st.Queue {
		if q == member {
			st.Queue = append(st.Queue[:i], st.Queue[i+1:]...)
			break
		}
	}
	delete(st.Approved, member)
}

// Policy is one pluggable floor-control discipline. Each of the paper's
// four modes is a Policy; new moderation styles implement this interface
// and register with RegisterPolicy. All methods run under the owning
// Controller's lock, after membership and resource checks have passed.
type Policy interface {
	// Mode is the mode this policy arbitrates.
	Mode() Mode
	// Decide processes one floor request against the group state. A nil
	// error means the request was granted; ErrBusy-wrapped errors mean it
	// was queued (the Decision carries the position); anything else is a
	// denial.
	Decide(r Roster, st *State, req Request) (Decision, error)
	// Release gives the floor up, returning the next holder ("" when the
	// floor is now free).
	Release(r Roster, st *State, member group.MemberID) (group.MemberID, error)
	// Pass hands the floor from its holder directly to another member.
	Pass(r Roster, st *State, from, to group.MemberID) error
	// QueueSnapshot returns the pending requests in order.
	QueueSnapshot(st *State) []group.MemberID
}

// ModeGate is implemented by policies that restrict switching the group
// away from their mode. Before the Controller hands a request for a
// *different* mode to that mode's policy, it asks the outgoing policy's
// gate; a non-nil error denies the request without touching the state.
// Without this, any eligible member could flip a chair-moderated group
// into free-access or equal-control and bypass moderation entirely.
type ModeGate interface {
	// AllowModeChange reports whether the request (for req.Mode) may take
	// the group out of this policy's mode. Runs under the controller's
	// lock, after membership and resource checks.
	AllowModeChange(r Roster, st *State, req Request) error
}

// Approver is implemented by policies whose queued requests need an
// explicit chair decision (ModeratedQueue). Approve runs under the
// controller's lock.
type Approver interface {
	// Approve lets approver clear a queued member. The Decision reports
	// whether the member received the floor immediately (Granted) or
	// stays queued-but-approved (QueuePosition set).
	Approve(r Roster, st *State, groupID string, approver, member group.MemberID) (Decision, error)
}

// The package-level policy registry. Builtins are registered at init;
// RegisterPolicy adds custom modes.
var (
	policyMu sync.RWMutex
	policies = make(map[Mode]Policy)
)

// RegisterPolicy makes a policy (and its mode's string name) available to
// every Controller. Registering an already-registered mode fails, so
// builtins cannot be displaced.
func RegisterPolicy(name string, p Policy) error {
	policyMu.Lock()
	defer policyMu.Unlock()
	m := p.Mode()
	if _, dup := policies[m]; dup {
		return fmt.Errorf("floor: mode %d already registered", int(m))
	}
	for existing, n := range modeNames {
		// A new name may not collide with an existing name or alias in
		// either direction, or ParseMode would become nondeterministic.
		// (int form: Mode.String would re-enter policyMu.)
		if n == name || modeAlias(n) == name {
			return fmt.Errorf("floor: mode name %q already names mode %d", name, int(existing))
		}
		if a := modeAlias(name); a != "" && (a == n || a == modeAlias(n)) {
			return fmt.Errorf("floor: alias %q of %q already names mode %d", a, name, int(existing))
		}
	}
	policies[m] = p
	modeNames[m] = name
	return nil
}

// PolicyFor returns the registered policy for a mode.
func PolicyFor(mode Mode) (Policy, bool) {
	policyMu.RLock()
	defer policyMu.RUnlock()
	p, ok := policies[mode]
	return p, ok
}

// Modes lists every registered mode (builtin and custom), unordered.
func Modes() []Mode {
	policyMu.RLock()
	defer policyMu.RUnlock()
	out := make([]Mode, 0, len(policies))
	for m := range policies {
		out = append(out, m)
	}
	return out
}

func mustRegister(name string, p Policy) {
	if err := RegisterPolicy(name, p); err != nil {
		panic(err)
	}
}

func init() {
	mustRegister("free-access", freeAccessPolicy{})
	mustRegister("equal-control", equalControlPolicy{})
	mustRegister("group-discussion", groupDiscussionPolicy{})
	mustRegister("direct-contact", directContactPolicy{})
	mustRegister("moderated-queue", moderatedQueuePolicy{})
}
