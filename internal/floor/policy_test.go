package floor

import (
	"errors"
	"testing"

	"dmps/internal/group"
	"dmps/internal/resource"
)

// conformanceModes describes every registered policy's shared contract:
// the four paper modes plus ModeratedQueue all run behind the same
// controller bookkeeping (membership, thresholds, Media-Suspend) and
// must agree on it even though their grant rules differ.
var conformanceModes = []struct {
	mode          Mode
	name          string
	needsPriority bool // MinTokenPriority enforced on the requester
	target        group.MemberID
	firstGranted  bool // first eligible requester granted immediately
	exclusive     bool // a second requester queues instead of sending
}{
	{FreeAccess, "free-access", false, "", true, false},
	{EqualControl, "equal-control", true, "", true, true},
	{GroupDiscussion, "group-discussion", true, "", true, false},
	{DirectContact, "direct-contact", true, "bob", true, false},
	{ModeratedQueue, "moderated-queue", true, "", false, true},
	{RoundRobin, "round-robin", true, "", true, true},
}

// TestPolicyConformance runs the shared contract against every
// registered policy — the paper's four modes, ModeratedQueue, and the
// post-seed RoundRobin rotation.
func TestPolicyConformance(t *testing.T) {
	for _, tc := range conformanceModes {
		t.Run(tc.name, func(t *testing.T) {
			t.Run("registered", func(t *testing.T) {
				p, ok := PolicyFor(tc.mode)
				if !ok {
					t.Fatalf("no policy for %v", tc.mode)
				}
				if p.Mode() != tc.mode {
					t.Errorf("Mode() = %v", p.Mode())
				}
				if tc.mode.String() != tc.name {
					t.Errorf("String() = %q, want %q", tc.mode, tc.name)
				}
				if got, ok := ParseMode(tc.name); !ok || got != tc.mode {
					t.Errorf("ParseMode(%q) = %v, %v", tc.name, got, ok)
				}
			})

			t.Run("membership required", func(t *testing.T) {
				reg, _, c := classroom(t)
				if err := reg.Register(group.Member{ID: "outsider", Role: group.Participant, Priority: 9}); err != nil {
					t.Fatal(err)
				}
				_, err := c.Arbitrate("class", "outsider", tc.mode, tc.target)
				if !errors.Is(err, ErrNotMember) || !errors.Is(err, ErrAborted) {
					t.Errorf("err = %v, want ErrNotMember wrapping ErrAborted", err)
				}
			})

			t.Run("abort below beta", func(t *testing.T) {
				_, mon, c := classroom(t)
				mon.Set(resource.Vector{Network: 0.1, CPU: 0.1, Memory: 0.1})
				if _, err := c.Arbitrate("class", "alice", tc.mode, tc.target); !errors.Is(err, ErrAborted) {
					t.Errorf("err = %v, want ErrAborted", err)
				}
			})

			t.Run("media-suspend in degraded regime", func(t *testing.T) {
				_, mon, c := classroom(t)
				mon.Set(resource.Vector{Network: 0.3, CPU: 0.3, Memory: 0.3})
				dec, err := c.Arbitrate("class", "alice", tc.mode, tc.target)
				if err != nil && !errors.Is(err, ErrBusy) {
					t.Fatalf("err = %v", err)
				}
				if dec.Level != resource.Degraded {
					t.Errorf("level = %v", dec.Level)
				}
				// Carol (priority 1) is the lowest-priority member and the
				// Media-Suspend victim regardless of policy.
				if len(dec.Suspended) != 1 || dec.Suspended[0] != "carol" {
					t.Errorf("suspended = %v, want [carol]", dec.Suspended)
				}
			})

			t.Run("priority rule", func(t *testing.T) {
				_, _, c := classroom(t)
				_, err := c.Arbitrate("class", "carol", tc.mode, tc.target)
				if tc.needsPriority && !errors.Is(err, ErrPriority) {
					t.Errorf("err = %v, want ErrPriority (carol has priority 1)", err)
				}
				if !tc.needsPriority && err != nil {
					t.Errorf("err = %v, want grant without priority", err)
				}
			})

			t.Run("first request", func(t *testing.T) {
				_, _, c := classroom(t)
				dec, err := c.Arbitrate("class", "alice", tc.mode, tc.target)
				if tc.firstGranted {
					if err != nil || !dec.Granted {
						t.Fatalf("dec = %+v, err = %v", dec, err)
					}
				} else {
					if !errors.Is(err, ErrBusy) || dec.Granted || dec.QueuePosition != 1 {
						t.Fatalf("dec = %+v, err = %v, want queued at 1", dec, err)
					}
				}
				if tc.mode != DirectContact && c.ModeOf("class") != tc.mode {
					t.Errorf("mode = %v, want %v", c.ModeOf("class"), tc.mode)
				}
			})

			t.Run("second requester and queue snapshot", func(t *testing.T) {
				_, _, c := classroom(t)
				_, _ = c.Arbitrate("class", "alice", tc.mode, tc.target)
				secondTarget := tc.target
				if secondTarget == "bob" {
					secondTarget = "teacher" // bob cannot contact himself
				}
				dec, err := c.Arbitrate("class", "bob", tc.mode, secondTarget)
				if !tc.exclusive {
					if err != nil || !dec.Granted {
						t.Fatalf("dec = %+v, err = %v, want concurrent grant", dec, err)
					}
					if q := c.Queue("class"); len(q) != 0 {
						t.Errorf("queue = %v, want empty", q)
					}
					return
				}
				if !errors.Is(err, ErrBusy) || dec.Granted {
					t.Fatalf("dec = %+v, err = %v, want queued", dec, err)
				}
				// Re-request keeps the same slot (no duplicates).
				again, _ := c.Arbitrate("class", "bob", tc.mode, tc.target)
				if again.QueuePosition != dec.QueuePosition {
					t.Errorf("re-request moved: %d → %d", dec.QueuePosition, again.QueuePosition)
				}
				q := c.Queue("class")
				if len(q) == 0 || q[len(q)-1] != "bob" {
					t.Fatalf("queue = %v, want bob last", q)
				}
				// The snapshot is a copy: mutating it must not leak in.
				q[len(q)-1] = "mallory"
				if got := c.Queue("class"); got[len(got)-1] != "bob" {
					t.Error("QueueSnapshot aliases internal state")
				}
			})
		})
	}
}

func moderatedClassroom(t *testing.T) (*group.Registry, *Controller) {
	t.Helper()
	reg, _, c := classroom(t)
	// Teacher (the chair) takes the floor; alice and bob queue.
	if dec, err := c.Arbitrate("class", "teacher", ModeratedQueue, ""); err != nil || !dec.Granted {
		t.Fatalf("chair request: %+v %v", dec, err)
	}
	if _, err := c.Arbitrate("class", "alice", ModeratedQueue, ""); !errors.Is(err, ErrPending) {
		t.Fatalf("alice should be pending: %v", err)
	}
	if _, err := c.Arbitrate("class", "bob", ModeratedQueue, ""); !errors.Is(err, ErrPending) {
		t.Fatalf("bob should be pending: %v", err)
	}
	return reg, c
}

func TestModeratedChairGrantedWhenFree(t *testing.T) {
	_, c := moderatedClassroom(t)
	if c.Holder("class") != "teacher" {
		t.Errorf("holder = %q", c.Holder("class"))
	}
	if q := c.Queue("class"); len(q) != 2 || q[0] != "alice" || q[1] != "bob" {
		t.Errorf("queue = %v", q)
	}
}

func TestModeratedApprovalFlow(t *testing.T) {
	_, c := moderatedClassroom(t)
	// Approving bob while the floor is busy parks him as approved.
	dec, err := c.Approve("class", "teacher", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if dec.Granted || dec.QueuePosition != 2 {
		t.Errorf("dec = %+v, want approved-but-queued at 2", dec)
	}
	// Release promotes bob — approved — over alice, who queued first but
	// was never cleared by the chair.
	next, err := c.Release("class", "teacher")
	if err != nil {
		t.Fatal(err)
	}
	if next != "bob" {
		t.Errorf("next = %q, want bob (approved beats FIFO)", next)
	}
	if q := c.Queue("class"); len(q) != 1 || q[0] != "alice" {
		t.Errorf("queue = %v, want [alice]", q)
	}
	// With the floor busy again and alice unapproved, release frees it.
	next, err = c.Release("class", "bob")
	if err != nil || next != "" {
		t.Errorf("next = %q, %v, want free floor", next, err)
	}
	// Approving alice with a free floor grants immediately.
	dec, err = c.Approve("class", "teacher", "alice")
	if err != nil || !dec.Granted || dec.Holder != "alice" {
		t.Errorf("dec = %+v, err = %v", dec, err)
	}
	if q := c.Queue("class"); len(q) != 0 {
		t.Errorf("queue = %v", q)
	}
}

func TestModeratedApproveErrors(t *testing.T) {
	_, c := moderatedClassroom(t)
	if _, err := c.Approve("class", "alice", "bob"); !errors.Is(err, ErrNotChair) {
		t.Errorf("non-chair approve: %v", err)
	}
	if _, err := c.Approve("class", "teacher", "carol"); !errors.Is(err, ErrNotQueued) {
		t.Errorf("approve non-queued: %v", err)
	}
}

func TestApproveUnsupportedOutsideModeratedMode(t *testing.T) {
	_, _, c := classroom(t)
	mustGrant(t, c, "alice", EqualControl, "")
	if _, err := c.Approve("class", "teacher", "alice"); !errors.Is(err, ErrNoApproval) {
		t.Errorf("err = %v, want ErrNoApproval", err)
	}
}

func TestModeratedPassDelegates(t *testing.T) {
	_, c := moderatedClassroom(t)
	// The chair handing the floor over is itself an approval; the
	// recipient leaves the queue.
	if err := c.Pass("class", "teacher", "alice"); err != nil {
		t.Fatal(err)
	}
	if c.Holder("class") != "alice" {
		t.Errorf("holder = %q", c.Holder("class"))
	}
	if q := c.Queue("class"); len(q) != 1 || q[0] != "bob" {
		t.Errorf("queue = %v", q)
	}
	// A non-chair holder may NOT pass to an unapproved member — that
	// would bypass the chair's moderation entirely.
	if err := c.Pass("class", "alice", "bob"); !errors.Is(err, ErrUnapproved) {
		t.Errorf("unapproved pass: err = %v, want ErrUnapproved", err)
	}
	// Passing back to the chair is always fine.
	if err := c.Pass("class", "alice", "teacher"); err != nil {
		t.Fatal(err)
	}
	// Once the chair approves bob, the next holder may pass to him.
	if _, err := c.Approve("class", "teacher", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := c.Pass("class", "teacher", "bob"); err != nil {
		t.Fatal(err)
	}
	if c.Holder("class") != "bob" {
		t.Errorf("holder = %q", c.Holder("class"))
	}
}

// TestModeratedModeChangeRequiresChair covers the ModeGate seam: a
// participant must not be able to flip a moderated group into another
// mode (that would dissolve the moderation without chair consent), while
// the chair may, and Direct Contact — which never changes the prevailing
// mode — stays available to everyone.
func TestModeratedModeChangeRequiresChair(t *testing.T) {
	_, c := moderatedClassroom(t)
	for _, mode := range []Mode{FreeAccess, EqualControl, GroupDiscussion} {
		if _, err := c.Arbitrate("class", "alice", mode, ""); !errors.Is(err, ErrNotChair) {
			t.Errorf("%v: err = %v, want ErrNotChair", mode, err)
		}
	}
	// The denied attempts leave mode, holder and queue untouched.
	if c.ModeOf("class") != ModeratedQueue {
		t.Errorf("mode = %v, want ModeratedQueue", c.ModeOf("class"))
	}
	if c.Holder("class") != "teacher" {
		t.Errorf("holder = %q, want teacher", c.Holder("class"))
	}
	if q := c.Queue("class"); len(q) != 2 {
		t.Errorf("queue = %v, want 2 pending", q)
	}
	// Direct Contact is concurrent: not gated even in a moderated group.
	if dec, err := c.Arbitrate("class", "alice", DirectContact, "bob"); err != nil || !dec.Granted {
		t.Errorf("direct contact: %+v, %v", dec, err)
	}
	if c.ModeOf("class") != ModeratedQueue {
		t.Errorf("direct contact changed mode to %v", c.ModeOf("class"))
	}
	// The chair may switch the group away.
	if dec, err := c.Arbitrate("class", "teacher", FreeAccess, ""); err != nil || !dec.Granted {
		t.Errorf("chair switch: %+v, %v", dec, err)
	}
	if c.ModeOf("class") != FreeAccess {
		t.Errorf("mode = %v, want FreeAccess", c.ModeOf("class"))
	}
}

// TestModeGateDeniedRequestDoesNotSuspend: the gate runs before the
// Media-Suspend step, so a rejected mode switch in the degraded regime
// must not suspend an uninvolved member's media.
func TestModeGateDeniedRequestDoesNotSuspend(t *testing.T) {
	_, mon, c := classroom(t)
	if dec, err := c.Arbitrate("class", "teacher", ModeratedQueue, ""); err != nil || !dec.Granted {
		t.Fatalf("chair request: %+v, %v", dec, err)
	}
	mon.Set(resource.Vector{Network: 0.3, CPU: 0.3, Memory: 0.3})
	dec, err := c.Arbitrate("class", "alice", FreeAccess, "")
	if !errors.Is(err, ErrNotChair) {
		t.Fatalf("err = %v, want ErrNotChair", err)
	}
	if len(dec.Suspended) != 0 {
		t.Errorf("decision suspended %v, want none for a gate-denied request", dec.Suspended)
	}
	if got := c.Suspended("class"); len(got) != 0 {
		t.Errorf("suspended = %v, want none", got)
	}
}

// TestModeratedApprovedRerequestWhileFree: an approved member who
// re-requests while the floor is free (reachable after a mode switch
// away, which clears the holder but keeps queue and approvals) is
// granted, mirroring Release's approved-first promotion.
func TestModeratedApprovedRerequestWhileFree(t *testing.T) {
	_, c := moderatedClassroom(t)
	if _, err := c.Approve("class", "teacher", "alice"); err != nil {
		t.Fatal(err)
	}
	if dec, err := c.Arbitrate("class", "teacher", FreeAccess, ""); err != nil || !dec.Granted {
		t.Fatalf("chair switch: %+v, %v", dec, err)
	}
	dec, err := c.Arbitrate("class", "alice", ModeratedQueue, "")
	if err != nil || !dec.Granted || dec.Holder != "alice" {
		t.Fatalf("approved re-request: %+v, %v, want immediate grant", dec, err)
	}
	if q := c.Queue("class"); len(q) != 1 || q[0] != "bob" {
		t.Errorf("queue = %v, want [bob]", q)
	}
}

func TestRegisterPolicyRejectsAliasCollision(t *testing.T) {
	// "group-chat" would make the alias "group" ambiguous with the
	// builtin group-discussion.
	if err := RegisterPolicy("group-chat", fakeMode201{}); err == nil {
		t.Error("alias collision should be rejected")
	}
	// A bare name equal to a builtin alias is just as ambiguous.
	if err := RegisterPolicy("equal", fakeMode201{}); err == nil {
		t.Error("name shadowing an alias should be rejected")
	}
}

type fakeMode201 struct{ tokenSemantics }

func (fakeMode201) Mode() Mode { return Mode(201) }
func (fakeMode201) Decide(_ Roster, st *State, req Request) (Decision, error) {
	return Decision{Granted: true}, nil
}

func TestModeratedCapabilities(t *testing.T) {
	_, c := moderatedClassroom(t)
	// Holder (the chair here) and chair both deliver; queued members not.
	if cap := c.CapabilityFor("class", "teacher"); !cap.MessageWindow || !cap.Whiteboard {
		t.Errorf("chair capability = %+v", cap)
	}
	if cap := c.CapabilityFor("class", "alice"); cap.MessageWindow || cap.Whiteboard {
		t.Errorf("queued member capability = %+v", cap)
	}
	// After a pass, the new holder delivers and the chair retains the
	// moderator's own window.
	if err := c.Pass("class", "teacher", "alice"); err != nil {
		t.Fatal(err)
	}
	if cap := c.CapabilityFor("class", "alice"); !cap.MessageWindow || !cap.PassToken {
		t.Errorf("holder capability = %+v", cap)
	}
	if cap := c.CapabilityFor("class", "teacher"); !cap.MessageWindow {
		t.Errorf("chair lost the moderator window: %+v", cap)
	}
}

func TestParseModeAliases(t *testing.T) {
	cases := map[string]Mode{
		"free-access":      FreeAccess,
		"free":             FreeAccess,
		"equal-control":    EqualControl,
		"equal":            EqualControl,
		"group-discussion": GroupDiscussion,
		"group":            GroupDiscussion,
		"direct-contact":   DirectContact,
		"direct":           DirectContact,
		"moderated-queue":  ModeratedQueue,
		"moderated":        ModeratedQueue,
		" Equal-Control ":  EqualControl, // trimmed, case-folded
	}
	for s, want := range cases {
		if got, ok := ParseMode(s); !ok || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, ok, want)
		}
	}
	if _, ok := ParseMode("anarchy"); ok {
		t.Error("unknown mode parsed")
	}
	// A single-word custom mode has no alias; in particular the empty
	// string must never resolve to it.
	if err := RegisterPolicy("lecture", fakeMode202{}); err != nil {
		t.Fatal(err)
	}
	if got, ok := ParseMode("lecture"); !ok || got != Mode(202) {
		t.Errorf("ParseMode(lecture) = %v, %v", got, ok)
	}
	for _, s := range []string{"", "   "} {
		if got, ok := ParseMode(s); ok {
			t.Errorf("ParseMode(%q) = %v, want no match", s, got)
		}
	}
}

type fakeMode202 struct{ tokenSemantics }

func (fakeMode202) Mode() Mode { return Mode(202) }
func (fakeMode202) Decide(_ Roster, st *State, req Request) (Decision, error) {
	return Decision{Granted: true}, nil
}

func TestRegisterPolicyRejectsDuplicates(t *testing.T) {
	if err := RegisterPolicy("equal-control-again", equalControlPolicy{}); err == nil {
		t.Error("duplicate mode registration should fail")
	}
	if err := RegisterPolicy("equal-control", fakeMode200{}); err == nil {
		t.Error("duplicate name registration should fail")
	}
}

// fakeMode200 is a minimal custom policy used to exercise registration.
type fakeMode200 struct{ tokenSemantics }

func (fakeMode200) Mode() Mode { return Mode(200) }
func (fakeMode200) Decide(_ Roster, st *State, req Request) (Decision, error) {
	st.Mode = Mode(200)
	return Decision{Granted: true}, nil
}

func TestRegisterCustomPolicy(t *testing.T) {
	if err := RegisterPolicy("always-yes", fakeMode200{}); err != nil {
		t.Fatal(err)
	}
	if got, ok := ParseMode("always-yes"); !ok || got != Mode(200) {
		t.Fatalf("ParseMode = %v, %v", got, ok)
	}
	if Mode(200).String() != "always-yes" {
		t.Errorf("String = %q", Mode(200))
	}
	_, _, c := classroom(t)
	dec, err := c.Arbitrate("class", "carol", Mode(200), "")
	if err != nil || !dec.Granted {
		t.Errorf("custom policy: %+v %v", dec, err)
	}
	if c.ModeOf("class") != Mode(200) {
		t.Errorf("mode = %v", c.ModeOf("class"))
	}
}
