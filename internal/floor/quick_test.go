package floor

import (
	"errors"
	"math/rand"
	"testing"

	"dmps/internal/group"
	"dmps/internal/resource"
)

// TestQuickEqualControlInvariants drives random request/release/pass
// sequences and checks the structural invariants of the token protocol:
// at most one holder; the holder is always a member with sufficient
// priority; the queue never contains the holder or duplicates.
func TestQuickEqualControlInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 100; iter++ {
		reg := group.NewRegistry()
		n := 3 + rng.Intn(6)
		ids := make([]group.MemberID, n)
		for i := 0; i < n; i++ {
			ids[i] = group.MemberID(string(rune('a' + i)))
			prio := 1 + rng.Intn(3) // some below the token threshold
			if err := reg.Register(group.Member{ID: ids[i], Role: group.Participant, Priority: prio}); err != nil {
				t.Fatal(err)
			}
		}
		if err := reg.CreateGroup("g", ids[0]); err != nil {
			t.Fatal(err)
		}
		for _, id := range ids[1:] {
			if err := reg.Join("g", id); err != nil {
				t.Fatal(err)
			}
		}
		ctl := NewController(reg, nil)
		for op := 0; op < 60; op++ {
			actor := ids[rng.Intn(n)]
			switch rng.Intn(3) {
			case 0:
				_, err := ctl.Arbitrate("g", actor, EqualControl, "")
				if err != nil && !errors.Is(err, ErrBusy) && !errors.Is(err, ErrPriority) {
					t.Fatalf("iter %d: unexpected arbitrate error %v", iter, err)
				}
			case 1:
				_, _ = ctl.Release("g", actor)
			case 2:
				_ = ctl.Pass("g", actor, ids[rng.Intn(n)])
			}
			// Invariants.
			holder := ctl.Holder("g")
			queue := ctl.Queue("g")
			if holder != "" {
				m, err := reg.Member(holder)
				if err != nil {
					t.Fatalf("iter %d: holder %q not registered", iter, holder)
				}
				if m.Priority < MinTokenPriority {
					t.Fatalf("iter %d: holder %q has priority %d", iter, holder, m.Priority)
				}
			}
			seen := make(map[group.MemberID]bool)
			for _, q := range queue {
				if q == holder {
					t.Fatalf("iter %d: holder %q also queued", iter, holder)
				}
				if seen[q] {
					t.Fatalf("iter %d: duplicate queue entry %q", iter, q)
				}
				seen[q] = true
			}
		}
	}
}

// TestQuickSuspensionsMonotoneUnderDegradation: in the degraded regime,
// repeated arbitrations suspend strictly more members (until exhausted),
// always lowest-priority-first among the unsuspended.
func TestQuickSuspensionsMonotoneUnderDegradation(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for iter := 0; iter < 50; iter++ {
		reg := group.NewRegistry()
		n := 3 + rng.Intn(5)
		prios := make(map[group.MemberID]int, n)
		ids := make([]group.MemberID, n)
		for i := 0; i < n; i++ {
			ids[i] = group.MemberID(string(rune('a' + i)))
			prios[ids[i]] = 1 + rng.Intn(9)
			if err := reg.Register(group.Member{ID: ids[i], Role: group.Participant, Priority: prios[ids[i]]}); err != nil {
				t.Fatal(err)
			}
		}
		if err := reg.CreateGroup("g", ids[0]); err != nil {
			t.Fatal(err)
		}
		for _, id := range ids[1:] {
			_ = reg.Join("g", id)
		}
		mon, err := resource.New(resource.MinBound, resource.Thresholds{Alpha: 0.5, Beta: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		mon.Set(resource.Vector{Network: 0.3, CPU: 0.3, Memory: 0.3})
		ctl := NewController(reg, mon)
		lastCount := 0
		for round := 0; round < n+2; round++ {
			dec, err := ctl.Arbitrate("g", ids[0], FreeAccess, "")
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			count := len(ctl.Suspended("g"))
			if count < lastCount {
				t.Fatalf("iter %d: suspensions shrank %d → %d", iter, lastCount, count)
			}
			if round < n && count != lastCount+1 {
				t.Fatalf("iter %d round %d: expected one new suspension, got %d → %d", iter, round, lastCount, count)
			}
			// The new victim must have had minimal priority among the
			// previously unsuspended members.
			if len(dec.Suspended) == 1 {
				victim := dec.Suspended[0]
				vp := prios[victim]
				for _, id := range ids {
					if id == victim {
						continue
					}
					suspendedBefore := false
					for _, s := range ctl.Suspended("g") {
						if s == id && s != victim {
							suspendedBefore = true
						}
					}
					if !suspendedBefore && prios[id] < vp {
						t.Fatalf("iter %d: suspended %q (prio %d) while %q (prio %d) still active",
							iter, victim, vp, id, prios[id])
					}
				}
			}
			lastCount = count
		}
	}
}
