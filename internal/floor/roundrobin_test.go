package floor

import (
	"errors"
	"testing"

	"dmps/internal/group"
)

// TestRoundRobinRotation: releases rotate the floor through the
// contenders in arrival order, with each releaser rejoining the tail —
// after a full cycle the original holder has the floor back.
func TestRoundRobinRotation(t *testing.T) {
	_, _, c := classroom(t)
	mustGrant(t, c, "alice", RoundRobin, "")
	if _, err := c.Arbitrate("class", "bob", RoundRobin, ""); !errors.Is(err, ErrBusy) {
		t.Fatalf("bob: %v, want queued", err)
	}
	if _, err := c.Arbitrate("class", "teacher", RoundRobin, ""); !errors.Is(err, ErrBusy) {
		t.Fatalf("teacher: %v, want queued", err)
	}
	order := []string{"bob", "teacher", "alice", "bob", "teacher", "alice"}
	holder := "alice"
	for turn, want := range order {
		next, err := c.Release("class", group.MemberID(holder))
		if err != nil {
			t.Fatalf("turn %d: release(%s): %v", turn, holder, err)
		}
		if string(next) != want {
			t.Fatalf("turn %d: holder = %q, want %q", turn, next, want)
		}
		holder = want
	}
	// The rotation never grows or shrinks: two waiting at all times.
	if q := c.Queue("class"); len(q) != 2 {
		t.Errorf("queue = %v, want 2 rotating members", q)
	}
}

// TestRoundRobinLoneHolderRelease: with an empty queue the release
// frees the floor instead of re-granting the releaser to themself.
func TestRoundRobinLoneHolderRelease(t *testing.T) {
	_, _, c := classroom(t)
	mustGrant(t, c, "alice", RoundRobin, "")
	next, err := c.Release("class", "alice")
	if err != nil || next != "" {
		t.Fatalf("release = %q, %v, want free floor", next, err)
	}
	if q := c.Queue("class"); len(q) != 0 {
		t.Errorf("queue = %v, want empty", q)
	}
}

// TestRoundRobinEvictLeavesRotation: evicting the holder promotes the
// next member but must NOT rotate the evicted member back into the
// queue — eviction means gone.
func TestRoundRobinEvictLeavesRotation(t *testing.T) {
	_, _, c := classroom(t)
	mustGrant(t, c, "alice", RoundRobin, "")
	if _, err := c.Arbitrate("class", "bob", RoundRobin, ""); !errors.Is(err, ErrBusy) {
		t.Fatalf("bob: %v, want queued", err)
	}
	holder, wasHolder, _ := c.Evict("class", "alice")
	if !wasHolder || holder != "bob" {
		t.Fatalf("evict: holder = %q (wasHolder=%v), want bob", holder, wasHolder)
	}
	if q := c.Queue("class"); len(q) != 0 {
		t.Errorf("queue = %v, want empty (evicted member must not rotate back in)", q)
	}
}
