package trace

import (
	"sync"
	"testing"
	"time"

	"dmps/internal/metrics"
)

// TestFlightRecorderChurn hammers one plane from concurrent writers
// while a reader snapshots it — the -race exercise for the lock-free
// span buffer, the sweeper, and the ring maintenance — and checks the
// recorder's retention contracts hold under churn: the span counter is
// exact (the buffer may drop span CONTENT under overrun, never counts),
// the recent ring stays bounded, and a slow-op trace recorded before
// the flood is still retained after tens of thousands of fast ops that
// wrapped the buffer and churned the recent ring many times over.
func TestFlightRecorderChurn(t *testing.T) {
	p := NewPlane("churn-test", nil, 5*time.Millisecond)
	defer p.Close()
	reg := metrics.NewRegistry()
	p.RegisterMetrics(reg)

	// One slow op, finalized deterministically: the first sweep drains
	// its span, the second finds the trace quiet and assembles it.
	const slowID = uint64(0xdeadbeef)
	p.SpanDur(slowID, slowID, StageDispatch, time.Now(), 50*time.Millisecond)
	p.Sweep()
	p.Sweep()
	if page := p.Snapshot(0); len(page.Slow) != 1 || page.Slow[0].Trace != slowID {
		t.Fatalf("slow op not retained before churn: %+v", page.Slow)
	}

	const writers = 8
	const perWriter = 4096 // writers*perWriter wraps the span buffer 4×
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			page := p.Snapshot(0)
			if len(page.Recent) > recentRing {
				t.Errorf("recent ring overflowed: %d > %d", len(page.Recent), recentRing)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(w*perWriter + i + 1)
				p.SpanDur(id, id, Stages[i%len(Stages)], time.Now(), time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if got, want := p.SpansRecorded(), int64(writers*perWriter+1); got != want {
		t.Errorf("SpansRecorded = %d, want %d", got, want)
	}
	page := p.Snapshot(0)
	if page.Traces <= 0 {
		t.Errorf("no traces assembled after churn")
	}
	if len(page.Recent) > recentRing {
		t.Errorf("recent ring overflowed: %d > %d", len(page.Recent), recentRing)
	}
	found := false
	for _, op := range page.Slow {
		if op.Trace == slowID {
			found = true
		}
	}
	if !found {
		t.Fatalf("slow-op trace evicted by fast churn (%d slow entries)", len(page.Slow))
	}
}

// TestPlaneUnsampledNoOp pins the zero-overhead contract's API half: a
// zero trace ID records nothing — no slot claim, no counter bump, no
// histogram sample — so call sites may pass straight through for
// unsampled traffic.
func TestPlaneUnsampledNoOp(t *testing.T) {
	p := NewPlane("noop-test", nil, 0)
	defer p.Close()
	p.SpanDur(0, 0, StageDispatch, time.Now(), time.Millisecond)
	p.SpanDur(7, 7, StageDispatch, time.Now(), -time.Millisecond)
	if n := p.SpansRecorded(); n != 0 {
		t.Fatalf("unsampled/negative spans recorded: %d", n)
	}
}
