// Runtime tracing plane. The rest of this package is the experiment
// recorder the offline harness uses; this file is the production side:
// every process (router, cluster node) owns one Plane into which its
// hops record named spans for sampled operations — router "relay",
// server "dispatch"/"arbitrate"/"log_append"/"repl_ack"/"queue_wait"/
// "encode"/"flush" — keyed by the wire-propagated trace ID
// (protocol.Message.TraceID). A background sweeper assembles each
// trace's spans into a completed op trace and retains it in two
// bounded flight-recorder rings: a recent ring, and a slow ring whose
// entries (wall time over the slow threshold) a flood of fast ops can
// never evict. The plane surfaces itself as per-stage latency
// histograms (dmps_stage_seconds{stage=...}), a span counter, and the
// /debug/traces JSON endpoint with its ?slow_ms= filter.
//
// The recording path is lock-free — a span claims a slot in a
// fixed-size buffer with one atomic add and one atomic pointer store —
// and is only ever entered for sampled traces: an unsampled op takes
// no clock readings, allocates nothing and touches no shared state,
// the zero-overhead invariant the encode-once benchmarks gate.
package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dmps/internal/metrics"
)

// Stage names recorded by the fleet's hops, in pipeline order. The
// swarm report and the smoke gates key off these exact strings.
const (
	StageRelay     = "relay"      // router: upstream routing of one client frame
	StageDispatch  = "dispatch"   // server: full request dispatch
	StageArbitrate = "arbitrate"  // server: floor-control arbitration
	StageLogAppend = "log_append" // server: event-log append + fan-out
	StageReplAck   = "repl_ack"   // server: replication round trip to last ack
	StageQueueWait = "queue_wait" // server: delivery-queue residency
	StageEncode    = "encode"     // server: wire encode of a logged event
	StageFlush     = "flush"      // server: transport flush of a write batch
)

// Stages lists every stage name, pipeline-ordered.
var Stages = []string{
	StageRelay, StageDispatch, StageArbitrate, StageLogAppend,
	StageReplAck, StageQueueWait, StageEncode, StageFlush,
}

// StageBuckets are the dmps_stage_seconds bucket bounds: 1µs to ~8s in
// powers of two. Stages run well under the 250µs floor of the default
// latency buckets (an encode is microseconds), so the stage plane needs
// its own finer layout; every process uses the same one so per-stage
// histograms merge across the fleet.
var StageBuckets = func() []float64 {
	out := make([]float64, 0, 24)
	for b := 1e-6; b < 10; b *= 2 {
		out = append(out, b)
	}
	return out
}()

// Span is one named, timed stage of a traced operation, recorded by
// the process that executed it.
type Span struct {
	// Trace is the operation's wire-propagated trace ID; Parent is the
	// parent span context the triggering frame carried (0 at the root).
	Trace  uint64 `json:"trace"`
	Parent uint64 `json:"parent,omitempty"`
	// Stage names the span (one of Stages).
	Stage string `json:"stage"`
	// StartNanos is the span's start on the local wall clock; DurNanos
	// its duration.
	StartNanos int64 `json:"start_unix_nanos"`
	DurNanos   int64 `json:"dur_ns"`
}

// OpTrace is one completed operation's assembled spans on one process —
// a flight-recorder entry. Origin names the process (the node or router
// identity its Plane was built with); a cross-process consumer joins
// entries from several /debug/traces endpoints on Trace.
type OpTrace struct {
	Trace  uint64 `json:"trace"`
	Origin string `json:"origin,omitempty"`
	// StartNanos is the earliest span start; WallMS the spread from it
	// to the latest span end — the op's wall time as seen by this
	// process.
	StartNanos int64   `json:"start_unix_nanos"`
	WallMS     float64 `json:"wall_ms"`
	Spans      []Span  `json:"spans"`
}

// Plane buffer and ring sizes.
const (
	spanSlots  = 8192 // lock-free span buffer (power of two)
	recentRing = 256  // completed-trace flight recorder
	slowRing   = 128  // slow-op traces, evicted only by slower/newer slow ops
)

// DefaultSlowThreshold is the wall time past which a completed trace is
// retained in the slow ring regardless of recent-ring churn.
const DefaultSlowThreshold = 50 * time.Millisecond

// sweepEvery is the sweeper cadence; a trace idle for one full sweep is
// considered complete and moves to the flight recorder.
const sweepEvery = 250 * time.Millisecond

// Plane is one process's runtime tracing plane. Create it with
// NewPlane, record spans with Span, and surface it with
// RegisterMetrics/Handler. The zero Plane is not usable.
type Plane struct {
	origin string
	stages []string
	slow   time.Duration

	slots []atomic.Pointer[Span]
	pos   atomic.Uint64

	spansTotal  atomic.Int64
	tracesTotal atomic.Int64
	stageHists  atomic.Pointer[metrics.HistogramVec]

	mu      sync.Mutex
	pending map[uint64]*pendingTrace
	recent  []*OpTrace // newest last
	slowOps []*OpTrace // newest last

	stop chan struct{}
	done chan struct{}
}

// pendingTrace accumulates a live trace's spans between sweeps.
type pendingTrace struct {
	spans []Span
	// quiet counts consecutive sweeps that added no span; the trace
	// finalizes after one full quiet sweep.
	quiet int
}

// NewPlane builds a running plane. origin names this process in every
// exported trace (a node address, "router"); stages lists the stage
// series this process records, pre-created at registration so they
// exist from the first scrape (all of Stages when nil); slowThreshold
// selects which completed traces the slow ring retains
// (DefaultSlowThreshold when 0). Close stops the sweeper.
func NewPlane(origin string, stages []string, slowThreshold time.Duration) *Plane {
	if slowThreshold <= 0 {
		slowThreshold = DefaultSlowThreshold
	}
	if len(stages) == 0 {
		stages = Stages
	}
	p := &Plane{
		origin:  origin,
		stages:  stages,
		slow:    slowThreshold,
		slots:   make([]atomic.Pointer[Span], spanSlots),
		pending: map[uint64]*pendingTrace{},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go p.sweeper()
	return p
}

// Close stops the plane's sweeper. Spans recorded after Close still
// land in the buffer but are only assembled by explicit Handler calls.
func (p *Plane) Close() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
		<-p.done
	}
}

// Span records one completed stage of a sampled trace: started at
// start, ended now. The caller guards the clock reads — take start
// only when the operation's message is sampled, so unsampled ops pay
// nothing.
func (p *Plane) Span(traceID, parent uint64, stage string, start time.Time) {
	p.SpanDur(traceID, parent, stage, start, time.Since(start))
}

// SpanDur records a stage with an explicit duration — for spans whose
// endpoints were captured apart (queue residency, replication RTT).
func (p *Plane) SpanDur(traceID, parent uint64, stage string, start time.Time, d time.Duration) {
	if traceID == 0 || d < 0 {
		return
	}
	s := &Span{
		Trace:      traceID,
		Parent:     parent,
		Stage:      stage,
		StartNanos: start.UnixNano(),
		DurNanos:   int64(d),
	}
	i := p.pos.Add(1) - 1
	p.slots[i&(spanSlots-1)].Store(s)
	p.spansTotal.Add(1)
	if vec := p.stageHists.Load(); vec != nil {
		vec.With(stage).Observe(d.Seconds())
	}
}

// SpansRecorded reports the number of spans recorded since start — the
// dmps_trace_spans_total reading.
func (p *Plane) SpansRecorded() int64 { return p.spansTotal.Load() }

// sweeper periodically drains the span buffer and finalizes quiet
// traces into the flight recorder.
func (p *Plane) sweeper() {
	defer close(p.done)
	t := time.NewTicker(sweepEvery)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			p.Sweep()
			return
		case <-t.C:
			p.Sweep()
		}
	}
}

// Sweep drains the span buffer into the pending table and finalizes
// every trace that has been quiet for a full sweep. The sweeper calls
// it on a timer; Handler calls it inline so a scrape observes the
// freshest assembly.
func (p *Plane) Sweep() {
	p.mu.Lock()
	defer p.mu.Unlock()
	touched := map[uint64]bool{}
	for i := range p.slots {
		s := p.slots[i].Swap(nil)
		if s == nil {
			continue
		}
		pt := p.pending[s.Trace]
		if pt == nil {
			pt = &pendingTrace{}
			p.pending[s.Trace] = pt
		}
		pt.spans = append(pt.spans, *s)
		touched[s.Trace] = true
	}
	for id, pt := range p.pending {
		if touched[id] {
			pt.quiet = 0
			continue
		}
		pt.quiet++
		if pt.quiet >= 1 {
			p.finalize(id, pt)
			delete(p.pending, id)
		}
	}
}

// finalize assembles a pending trace into an OpTrace and retains it.
// Caller holds p.mu.
func (p *Plane) finalize(id uint64, pt *pendingTrace) {
	op := assemble(id, p.origin, pt.spans)
	p.tracesTotal.Add(1)
	p.recent = append(p.recent, op)
	if len(p.recent) > recentRing {
		p.recent = p.recent[len(p.recent)-recentRing:]
	}
	if time.Duration(op.WallMS*float64(time.Millisecond)) >= p.slow {
		p.slowOps = append(p.slowOps, op)
		if len(p.slowOps) > slowRing {
			p.slowOps = p.slowOps[len(p.slowOps)-slowRing:]
		}
	}
}

// assemble orders a trace's spans by start time and computes its wall
// spread.
func assemble(id uint64, origin string, spans []Span) *OpTrace {
	sort.Slice(spans, func(i, j int) bool { return spans[i].StartNanos < spans[j].StartNanos })
	op := &OpTrace{Trace: id, Origin: origin, Spans: spans}
	if len(spans) > 0 {
		op.StartNanos = spans[0].StartNanos
		var end int64
		for _, s := range spans {
			if e := s.StartNanos + s.DurNanos; e > end {
				end = e
			}
		}
		op.WallMS = float64(end-op.StartNanos) / float64(time.Millisecond)
	}
	return op
}

// TracesPage is the /debug/traces response document.
type TracesPage struct {
	// Origin names the serving process; SlowMS echoes the applied
	// ?slow_ms= filter (0 = none).
	Origin string  `json:"origin"`
	SlowMS float64 `json:"slow_ms,omitempty"`
	// Spans and Traces count recording activity since process start
	// (traces counts completed assemblies).
	Spans  int64 `json:"spans_total"`
	Traces int64 `json:"traces_total"`
	// Recent is the completed-trace flight recorder (newest last) and
	// Slow the always-retained slow-op ring; both respect the filter.
	// Pending lists still-live traces assembled as of this request.
	Recent  []*OpTrace `json:"recent"`
	Slow    []*OpTrace `json:"slow"`
	Pending []*OpTrace `json:"pending,omitempty"`
}

// Snapshot returns the flight recorder's current page, filtered to
// traces with wall time ≥ slowMS when slowMS > 0.
func (p *Plane) Snapshot(slowMS float64) TracesPage {
	p.Sweep()
	p.mu.Lock()
	defer p.mu.Unlock()
	page := TracesPage{
		Origin: p.origin,
		SlowMS: slowMS,
		Spans:  p.spansTotal.Load(),
		Traces: p.tracesTotal.Load(),
		Recent: filterOps(p.recent, slowMS),
		Slow:   filterOps(p.slowOps, slowMS),
	}
	for id, pt := range p.pending {
		spans := append([]Span(nil), pt.spans...)
		op := assemble(id, p.origin, spans)
		if slowMS <= 0 || op.WallMS >= slowMS {
			page.Pending = append(page.Pending, op)
		}
	}
	sort.Slice(page.Pending, func(i, j int) bool {
		return page.Pending[i].StartNanos < page.Pending[j].StartNanos
	})
	return page
}

// filterOps copies ops with wall time ≥ slowMS (all of them when
// slowMS ≤ 0). The copy keeps ring mutation out of marshalled pages.
func filterOps(ops []*OpTrace, slowMS float64) []*OpTrace {
	out := make([]*OpTrace, 0, len(ops))
	for _, op := range ops {
		if slowMS <= 0 || op.WallMS >= slowMS {
			out = append(out, op)
		}
	}
	return out
}

// Handler serves the flight recorder as JSON — the /debug/traces
// endpoint. ?slow_ms=N filters every section to traces at least that
// slow.
func (p *Plane) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var slowMS float64
		if s := req.URL.Query().Get("slow_ms"); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil || v < 0 {
				http.Error(w, "bad slow_ms", http.StatusBadRequest)
				return
			}
			slowMS = v
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(p.Snapshot(slowMS))
	})
}

// RegisterMetrics exports the plane into a registry: the per-stage
// latency family dmps_stage_seconds{stage=...}, the span counter, and
// the /debug/traces endpoint on the registry's listener. Idempotent
// against a registry that already carries a tracing plane (one process,
// one plane).
func (p *Plane) RegisterMetrics(reg *metrics.Registry) {
	if !reg.Has("dmps_stage_seconds") {
		vec := reg.HistogramVec("dmps_stage_seconds",
			"Per-stage latency of traced operations, by pipeline stage.",
			"stage", StageBuckets)
		// Pre-create this process's stages so the series exist from the
		// first scrape, before any sampled op arrives.
		for _, s := range p.stages {
			vec.With(s)
		}
		p.stageHists.Store(vec)
		reg.CounterFunc("dmps_trace_spans_total",
			"Named spans recorded by the tracing plane.",
			func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(p.spansTotal.Load())}}
			})
		reg.CounterFunc("dmps_traces_total",
			"Completed op traces assembled into the flight recorder.",
			func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(p.tracesTotal.Load())}}
			})
	}
	reg.Handle("/debug/traces", p.Handler())
}

// ServerStages are the stage series a group-partition node records.
var ServerStages = []string{
	StageDispatch, StageArbitrate, StageLogAppend,
	StageReplAck, StageQueueWait, StageEncode, StageFlush,
}

// RouterStages are the stage series the routing tier records.
var RouterStages = []string{StageRelay}
