// Package trace provides lightweight event recording and the statistics
// used by the experiment harness: latency distributions, throughput
// counters, timelines and the Jain fairness index.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is a timestamped observation.
type Event struct {
	At       time.Time
	Category string
	Name     string
	Value    float64
}

// Recorder accumulates events. It is safe for concurrent use.
// The zero value is ready to use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Record appends an event.
func (r *Recorder) Record(at time.Time, category, name string, value float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, Event{At: at, Category: category, Name: name, Value: value})
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of all events, ordered as recorded.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// ByCategory returns a copy of the events in the given category.
func (r *Recorder) ByCategory(category string) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.Category == category {
			out = append(out, e)
		}
	}
	return out
}

// Reset discards all events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
}

// Timeline renders events in order as "t+<offset> category/name value".
func (r *Recorder) Timeline() string {
	events := r.Events()
	if len(events) == 0 {
		return "(empty timeline)"
	}
	t0 := events[0].At
	var sb strings.Builder
	for _, e := range events {
		fmt.Fprintf(&sb, "t+%-12s %s/%s", e.At.Sub(t0), e.Category, e.Name)
		if e.Value != 0 {
			fmt.Fprintf(&sb, " %.3f", e.Value)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// LatencyStats is an online collection of duration samples.
// The zero value is ready to use; it is safe for concurrent use.
type LatencyStats struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Add records one sample.
func (s *LatencyStats) Add(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = append(s.samples, d)
}

// N reports the sample count.
func (s *LatencyStats) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Percentile returns the p-th percentile (0 < p ≤ 100) by
// nearest-rank on the sorted samples; zero when empty.
func (s *LatencyStats) Percentile(p float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(s.samples))
	copy(sorted, s.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Mean returns the arithmetic mean; zero when empty.
func (s *LatencyStats) Mean() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range s.samples {
		total += d
	}
	return total / time.Duration(len(s.samples))
}

// Max returns the largest sample; zero when empty.
func (s *LatencyStats) Max() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max time.Duration
	for _, d := range s.samples {
		if d > max {
			max = d
		}
	}
	return max
}

// Min returns the smallest sample; zero when empty.
func (s *LatencyStats) Min() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	min := s.samples[0]
	for _, d := range s.samples[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// Summary renders "n=… mean=… p50=… p95=… p99=… max=…".
func (s *LatencyStats) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.N(), s.Mean().Round(time.Microsecond),
		s.Percentile(50).Round(time.Microsecond),
		s.Percentile(95).Round(time.Microsecond),
		s.Percentile(99).Round(time.Microsecond),
		s.Max().Round(time.Microsecond))
}

// JainIndex computes the Jain fairness index of the shares:
// (Σx)² / (n·Σx²). It is 1.0 for perfectly equal shares and approaches
// 1/n under total unfairness. Returns 0 for empty or all-zero input.
func JainIndex(shares []float64) float64 {
	if len(shares) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range shares {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(shares)) * sumSq)
}

// Counter is a concurrent monotone counter.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Inc adds one and returns the new value.
func (c *Counter) Inc() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// Add adds delta.
func (c *Counter) Add(delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
