package trace

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	var r Recorder
	t0 := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	r.Record(t0, "floor", "grant", 1)
	r.Record(t0.Add(time.Second), "media", "unit", 2)
	r.Record(t0.Add(2*time.Second), "floor", "release", 0)
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
	floor := r.ByCategory("floor")
	if len(floor) != 2 || floor[0].Name != "grant" || floor[1].Name != "release" {
		t.Errorf("ByCategory = %v", floor)
	}
	tl := r.Timeline()
	for _, want := range []string{"t+0s", "floor/grant", "media/unit", "t+2s"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
	r.Reset()
	if r.Len() != 0 {
		t.Error("Reset should clear")
	}
	if r.Timeline() != "(empty timeline)" {
		t.Errorf("empty timeline = %q", r.Timeline())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Record(time.Now(), "cat", "n", 1)
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("Len = %d, want 800", r.Len())
	}
}

func TestRecorderEventsIsCopy(t *testing.T) {
	var r Recorder
	r.Record(time.Now(), "a", "b", 1)
	events := r.Events()
	events[0].Name = "mutated"
	if r.Events()[0].Name == "mutated" {
		t.Error("Events must return a copy")
	}
}

func TestLatencyStatsPercentiles(t *testing.T) {
	var s LatencyStats
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if got := s.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(95); got != 95*time.Millisecond {
		t.Errorf("p95 = %v", got)
	}
	if got := s.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Percentile(0); got != time.Millisecond {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Mean(); got != 50500*time.Microsecond {
		t.Errorf("mean = %v", got)
	}
	if got := s.Min(); got != time.Millisecond {
		t.Errorf("min = %v", got)
	}
	if got := s.Max(); got != 100*time.Millisecond {
		t.Errorf("max = %v", got)
	}
	if s.N() != 100 {
		t.Errorf("N = %d", s.N())
	}
}

func TestLatencyStatsEmpty(t *testing.T) {
	var s LatencyStats
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Error("empty stats should be all zero")
	}
	if !strings.Contains(s.Summary(), "n=0") {
		t.Errorf("Summary = %q", s.Summary())
	}
}

func TestLatencyStatsSingle(t *testing.T) {
	var s LatencyStats
	s.Add(7 * time.Millisecond)
	for _, p := range []float64{1, 50, 99, 100} {
		if got := s.Percentile(p); got != 7*time.Millisecond {
			t.Errorf("p%.0f = %v", p, got)
		}
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("equal shares: %v", got)
	}
	// One user hogging everything among n: index = 1/n.
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("hog: %v", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty: %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Errorf("all zero: %v", got)
	}
	// Scale invariance.
	a := JainIndex([]float64{1, 2, 3})
	b := JainIndex([]float64{10, 20, 30})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("scale variance: %v vs %v", a, b)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 10000 {
		t.Errorf("Value = %d", c.Value())
	}
	c.Add(-10000)
	if c.Value() != 0 {
		t.Errorf("after Add: %d", c.Value())
	}
}
