package experiments

import (
	"fmt"
	"sync"
	"time"

	"dmps/internal/client"
	"dmps/internal/core"
	"dmps/internal/floor"
	"dmps/internal/media"
)

// RunE9 measures live media-stream relay under floor control: the Equal
// Control holder streams synthetic video at full rate while every other
// member's units are cut (the muted microphone); receivers count
// delivered units. Expected shape: holder units fan out to all members;
// zero muted units leak; relay rate scales with group size until the
// central relay saturates.
func RunE9(sizes []int) (*Table, error) {
	if len(sizes) == 0 {
		sizes = []int{2, 8, 16}
	}
	t := &Table{
		ID:     "E9",
		Title:  "media streaming under equal control (holder speaks, rest muted)",
		Header: []string{"members", "units sent", "units delivered", "leaked (muted)", "deliveries/s"},
	}
	for _, n := range sizes {
		lab, err := core.NewLab(core.Options{Seed: int64(n) * 13})
		if err != nil {
			return nil, err
		}
		clients := make([]*client.Client, 0, n)
		for i := 0; i < n; i++ {
			c, err := lab.NewClient(fmt.Sprintf("m%d", i), "participant", 2)
			if err != nil {
				lab.Close()
				return nil, err
			}
			if err := c.Join("class"); err != nil {
				lab.Close()
				return nil, err
			}
			clients = append(clients, c)
		}
		holder := clients[0]
		if _, err := holder.RequestFloor("class", floor.EqualControl, ""); err != nil {
			lab.Close()
			return nil, err
		}
		const units = 200
		src, err := media.NewSyntheticSource(media.Object{
			ID: "cam", Kind: media.Video, Duration: units * 100 * time.Millisecond,
			Rate: 10, UnitBytes: 1400,
		})
		if err != nil {
			lab.Close()
			return nil, err
		}
		start := time.Now()
		var wg sync.WaitGroup
		var sent int
		var sendErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			sent, sendErr = holder.StreamSource("class", src, false)
		}()
		// Everyone else tries to stream too; their units must vanish.
		for _, muted := range clients[1:] {
			muted := muted
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < 20; k++ {
					_ = muted.SendMediaUnit("class", media.Unit{
						ObjectID: "pirate-" + muted.MemberID(), Kind: media.Audio, Seq: k, Bytes: 160,
					}, false)
				}
			}()
		}
		wg.Wait()
		if sendErr != nil {
			lab.Close()
			return nil, sendErr
		}
		// Wait for the fan-out to land everywhere.
		for _, c := range clients {
			c := c
			if err := waitUntil(10*time.Second, func() bool {
				return c.MediaStats("class")["cam"].Units == sent
			}); err != nil {
				lab.Close()
				return nil, fmt.Errorf("E9 fan-out (n=%d): %w", n, err)
			}
		}
		elapsed := time.Since(start)
		delivered := sent * n
		leaked := 0
		for _, c := range clients {
			for obj, stat := range c.MediaStats("class") {
				if obj != "cam" {
					leaked += stat.Units
				}
			}
		}
		t.AddRow(n, sent, delivered, leaked,
			fmt.Sprintf("%.0f", float64(delivered)/elapsed.Seconds()))
		lab.Close()
	}
	t.Note("floor gating is enforced on the media path itself: muted members' units are dropped at the server, exactly like a cut microphone")
	return t, nil
}
