package experiments

import (
	"fmt"
	"strings"
	"time"

	"dmps/internal/core"
	"dmps/internal/docpn"
	"dmps/internal/floor"
	"dmps/internal/media"
	"dmps/internal/netsim"
	"dmps/internal/ocpn"
)

// LectureTimeline is the Figure-1 style presentation used throughout: a
// slide with narration (equals), followed by a video clip (meets).
func LectureTimeline() (ocpn.Timeline, error) {
	return ocpn.Solve(ocpn.Spec{
		Objects: []media.Object{
			{ID: "slide", Kind: media.Image, Duration: 10 * time.Second},
			{ID: "narration", Kind: media.Audio, Duration: 10 * time.Second, Rate: 50},
			{ID: "clip", Kind: media.Video, Duration: 5 * time.Second, Rate: 30},
		},
		Constraints: []ocpn.Constraint{
			{A: "slide", B: "narration", Rel: ocpn.Equals},
			{A: "slide", B: "clip", Rel: ocpn.Meets},
		},
	})
}

// RunF1 reproduces Figure 1: the overview DMPS presentation Petri net.
// It compiles the lecture scenario, analyzes the net (safeness, liveness,
// reachability of the end place), derives the firing timetable and the
// synchronous sets, and executes it across three distributed sites under
// the global clock.
func RunF1() (*Table, error) {
	tl, err := LectureTimeline()
	if err != nil {
		return nil, err
	}
	net, err := ocpn.Compile(tl)
	if err != nil {
		return nil, err
	}
	if err := net.Verify(); err != nil {
		return nil, err
	}
	g, err := net.Base.Reachability(net.InitialMarking(), 100_000)
	if err != nil {
		return nil, err
	}
	sched := net.DeriveSchedule()
	t := &Table{
		ID:     "F1",
		Title:  "overview presentation Petri net (lecture scenario)",
		Header: []string{"property", "value"},
	}
	stats := net.Base.Stats()
	t.AddRow("places", stats.Places)
	t.AddRow("transitions", stats.Transitions)
	t.AddRow("safe (1-bounded)", g.IsSafe())
	t.AddRow("dead transitions", len(g.DeadTransitions(net.Base)))
	t.AddRow("end reachable", g.Reaches(net.Finished))
	t.AddRow("presentation length", sched.Total)
	for _, set := range sched.SyncSets() {
		t.AddRow(fmt.Sprintf("sync set @%v", set.At), strings.Join(set.Objects, ", "))
	}
	// Distributed execution: 3 sites, global clock.
	res, err := docpn.Run(docpn.Config{
		Timeline: tl,
		Sites: []docpn.SiteSpec{
			{Name: "server-room", ControlDelay: time.Millisecond, SyncErr: time.Millisecond},
			{Name: "lab", ControlDelay: 20 * time.Millisecond, SyncErr: 2 * time.Millisecond},
			{Name: "dorm", ControlDelay: 60 * time.Millisecond, SyncErr: 4 * time.Millisecond, Drift: 80e-6},
		},
		Mode: docpn.GlobalClock,
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("3-site run finished", res.Finished)
	t.AddRow("steady-state inter-site skew", steadySkew(res))
	t.Note("paper's Figure 1 is structural; the net above reproduces its shape and executes synchronously across sites")
	return t, nil
}

// steadySkew measures inter-site firing spread past the start-up
// transient (transitions after t0).
func steadySkew(res *docpn.Result) time.Duration {
	var max time.Duration
	nTrans := 0
	for _, fires := range res.FireAt {
		if len(fires) > nTrans {
			nTrans = len(fires)
		}
	}
	for i := 1; i < nTrans; i++ {
		var lo, hi time.Time
		first := true
		for _, fires := range res.FireAt {
			if i >= len(fires) || fires[i].IsZero() {
				continue
			}
			if first {
				lo, hi = fires[i], fires[i]
				first = false
				continue
			}
			if fires[i].Before(lo) {
				lo = fires[i]
			}
			if fires[i].After(hi) {
				hi = fires[i]
			}
		}
		if !first {
			if d := hi.Sub(lo); d > max {
				max = d
			}
		}
	}
	return max
}

// RunF2 reproduces Figure 2: the student and teacher communication
// windows, as the capability matrix per (role × mode). It drives a live
// lab through all four modes and reads each member's capabilities.
func RunF2() (*Table, error) {
	lab, err := core.NewLab(core.Options{Seed: 21})
	if err != nil {
		return nil, err
	}
	defer lab.Close()
	teacher, err := lab.NewClient("Teacher", "chair", 5)
	if err != nil {
		return nil, err
	}
	student, err := lab.NewClient("Student", "participant", 2)
	if err != nil {
		return nil, err
	}
	if err := teacher.Join("class"); err != nil {
		return nil, err
	}
	if err := student.Join("class"); err != nil {
		return nil, err
	}
	ctl := lab.Server.FloorController()
	t := &Table{
		ID:     "F2",
		Title:  "communication-window capabilities (teacher vs student)",
		Header: []string{"mode", "member", "msg-window", "whiteboard", "private", "pass-token", "invite"},
	}
	addRows := func(mode string) {
		for _, m := range []struct {
			label string
			id    string
		}{{"teacher", teacher.MemberID()}, {"student", student.MemberID()}} {
			cap := ctl.CapabilityFor("class", memberID(m.id))
			t.AddRow(mode, m.label, cap.MessageWindow, cap.Whiteboard, cap.PrivateWindow, cap.PassToken, cap.Invite)
		}
	}
	// Free access.
	if _, err := teacher.RequestFloor("class", floor.FreeAccess, ""); err != nil {
		return nil, err
	}
	addRows("free-access")
	// Equal control: teacher holds.
	if _, err := teacher.RequestFloor("class", floor.EqualControl, ""); err != nil {
		return nil, err
	}
	addRows("equal-control(teacher holds)")
	// Pass to student.
	if err := teacher.PassToken("class", student.MemberID()); err != nil {
		return nil, err
	}
	addRows("equal-control(student holds)")
	// Direct contact between the two.
	if _, err := student.RequestFloor("class", floor.DirectContact, teacher.MemberID()); err != nil {
		return nil, err
	}
	addRows("(+direct-contact)")
	t.Note("matches Figure 2: the student window exposes sending only when holding the floor; the teacher window additionally exposes invitations")
	return t, nil
}

// RunF3 reproduces Figure 3: annotation delivery, green lights, and a
// disconnected client turning its light red within the probe timeout.
func RunF3() (*Table, error) {
	lab, err := core.NewLab(core.Options{
		Seed:          31,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  60 * time.Millisecond,
		Link:          netsim.LinkConfig{Delay: time.Millisecond},
	})
	if err != nil {
		return nil, err
	}
	defer lab.Close()
	teacher, err := lab.NewClient("Teacher", "chair", 5)
	if err != nil {
		return nil, err
	}
	students := make([]*labClient, 0, 3)
	for i := 0; i < 3; i++ {
		c, err := lab.NewClient(fmt.Sprintf("Student%d", i), "participant", 2)
		if err != nil {
			return nil, err
		}
		students = append(students, &labClient{c})
	}
	if err := teacher.Join("class"); err != nil {
		return nil, err
	}
	for _, s := range students {
		if err := s.Join("class"); err != nil {
			return nil, err
		}
	}
	t := &Table{
		ID:     "F3",
		Title:  "annotation delivery and connection lights",
		Header: []string{"event", "result"},
	}
	// 3(a): the teacher's annotation reaches every student.
	annStart := time.Now()
	if err := teacher.Annotate("class", "draw", "circle around formula"); err != nil {
		return nil, err
	}
	for _, s := range students {
		if err := waitUntil(3*time.Second, func() bool { return s.Board("class").Seq() >= 1 }); err != nil {
			return nil, fmt.Errorf("annotation delivery: %w", err)
		}
	}
	t.AddRow("annotation broadcast to 3 students", time.Since(annStart).Round(time.Millisecond))
	// 3(b): all lights green.
	if err := waitUntil(3*time.Second, func() bool {
		lights := teacher.Lights()
		green := 0
		for _, l := range lights {
			if l == "green" {
				green++
			}
		}
		return green == 4
	}); err != nil {
		return nil, fmt.Errorf("green lights: %w", err)
	}
	t.AddRow("all lights green", true)
	// 3(c): a student crashes; the teacher's light turns red.
	crashAt := time.Now()
	students[1].Drop()
	victim := students[1].MemberID()
	if err := waitUntil(3*time.Second, func() bool {
		return teacher.Lights()[victim] == "red"
	}); err != nil {
		return nil, fmt.Errorf("red light: %w", err)
	}
	t.AddRow("crash detected (light red) after", time.Since(crashAt).Round(time.Millisecond))
	t.AddRow("other lights still green", teacher.Lights()[students[0].MemberID()] == "green")
	t.Note("detection latency is bounded by probe timeout (60ms) plus probe interval (20ms)")
	return t, nil
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(limit time.Duration, cond func() bool) error {
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("experiments: condition not met within %v", limit)
}
