// Package experiments implements the reproduction harness: one runner per
// figure (F1–F3) and per quantitative claim (E1–E8) of DESIGN.md §4.
// Each runner returns a Table whose rows are what EXPERIMENTS.md records;
// bench_test.go wraps the same runners as testing.B benchmarks and
// cmd/dmps-bench prints them.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's printable result.
type Table struct {
	// ID is the experiment identifier (e.g. "F1", "E3").
	ID string
	// Title describes what the table shows.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data rows, already formatted.
	Rows [][]string
	// Notes carry free-form observations (e.g. the expected shape and
	// whether it held).
	Notes []string
}

// AddRow appends a row of stringable cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Note appends an observation.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
