package experiments

import (
	"dmps/internal/client"
	"dmps/internal/group"
)

// memberID converts a wire member ID into the registry key type.
func memberID(s string) group.MemberID { return group.MemberID(s) }

// labClient embeds a lab client; experiments use it where they need the
// crash simulation alongside the ordinary client API.
type labClient struct {
	*client.Client
}

// registryAlias shortens the registry type in fixture signatures.
type registryAlias = group.Registry

// newRegistry builds an empty group registry.
func newRegistry() *group.Registry { return group.NewRegistry() }

// registerMember registers an experiment member; "teacher" gets the chair
// role, everyone else participates.
func registerMember(r *group.Registry, id string, priority int) error {
	role := group.Participant
	if id == "teacher" {
		role = group.Chair
	}
	return r.Register(group.Member{ID: group.MemberID(id), Name: id, Role: role, Priority: priority})
}
