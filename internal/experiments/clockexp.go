package experiments

import (
	"fmt"
	"time"

	"dmps/internal/docpn"
	"dmps/internal/ocpn"
)

// RunE2 measures the firing discipline: how far transitions fire from
// their nominal schedule under clock offset/drift, as a function of the
// sync-estimate error, with the global clock on (DOCPN) and off (OCPN
// baseline). Expected shape: DOCPN's error tracks the sync error; the
// baseline's error tracks the raw clock offsets regardless of sync.
func RunE2() (*Table, error) {
	tl, err := LectureTimeline()
	if err != nil {
		return nil, err
	}
	net, err := ocpn.Compile(tl)
	if err != nil {
		return nil, err
	}
	sched := net.DeriveSchedule()
	origin := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	t := &Table{
		ID:     "E2",
		Title:  "firing error vs clock-sync error (offsets ±40ms, drift ±100ppm)",
		Header: []string{"sync error", "synced global clock", "naive local-as-global", "anchored local (OCPN)"},
	}
	for _, syncErr := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
		sites := func() []docpn.SiteSpec {
			return []docpn.SiteSpec{
				{Name: "a", Offset: 40 * time.Millisecond, Drift: 100e-6, SyncErr: syncErr, ControlDelay: time.Millisecond},
				{Name: "b", Offset: -40 * time.Millisecond, Drift: -100e-6, SyncErr: -syncErr, ControlDelay: time.Millisecond},
			}
		}
		var errs []time.Duration
		for _, mode := range []docpn.ClockMode{docpn.GlobalClock, docpn.NaiveClock, docpn.LocalClock} {
			res, err := docpn.Run(docpn.Config{Timeline: tl, Sites: sites(), Mode: mode, Origin: origin})
			if err != nil {
				return nil, err
			}
			errs = append(errs, res.MaxFiringError(origin, sched).Round(100*time.Microsecond))
		}
		t.AddRow(syncErr, errs[0], errs[1], errs[2])
	}
	t.Note("synced error ≈ sync error (fast sites wait, slow sites fire immediately); naive scheduling eats the full ±40ms clock offset; the anchored baseline hides offsets but drifts apart and ignores the global timetable entirely")
	return t, nil
}

// RunE3 measures inter-site playout skew versus network delay spread:
// DOCPN with the global clock versus the OCPN baseline without it.
// Expected shape: DOCPN stays flat at the sync-error level; the baseline
// grows linearly with the delay spread; the crossover sits where the
// delay spread equals the sync error.
func RunE3() (*Table, error) {
	tl, err := LectureTimeline()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E3",
		Title:  "steady-state inter-site skew vs control-delay spread (3 sites, sync error 2ms)",
		Header: []string{"delay spread", "skew DOCPN", "skew OCPN baseline", "winner"},
	}
	for _, spread := range []time.Duration{0, 10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond} {
		sites := func() []docpn.SiteSpec {
			return []docpn.SiteSpec{
				{Name: "near", ControlDelay: 2 * time.Millisecond, SyncErr: 2 * time.Millisecond},
				{Name: "mid", ControlDelay: 2*time.Millisecond + spread/2, SyncErr: -time.Millisecond},
				{Name: "far", ControlDelay: 2*time.Millisecond + spread, SyncErr: 2 * time.Millisecond, Drift: 50e-6},
			}
		}
		resGlobal, err := docpn.Run(docpn.Config{Timeline: tl, Sites: sites(), Mode: docpn.GlobalClock})
		if err != nil {
			return nil, err
		}
		resLocal, err := docpn.Run(docpn.Config{Timeline: tl, Sites: sites(), Mode: docpn.LocalClock})
		if err != nil {
			return nil, err
		}
		g, l := steadySkew(resGlobal), steadySkew(resLocal)
		winner := "DOCPN"
		if l < g {
			winner = "baseline"
		} else if l == g {
			winner = "tie"
		}
		t.AddRow(spread, g.Round(100*time.Microsecond), l.Round(100*time.Microsecond), winner)
	}
	t.Note("shape check: DOCPN flat (bounded by sync error); baseline grows with the delay spread; crossover where spread ≈ sync error")
	return t, nil
}

// RunE4 measures user-interaction response: a skip issued mid-segment,
// with priority arcs (DOCPN) versus waiting for the segment to end (plain
// timed net). Expected shape: priority latency ≈ network round trip,
// independent of remaining segment time; baseline latency ≈ remaining
// segment time.
func RunE4() (*Table, error) {
	tl, err := LectureTimeline()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E4",
		Title:  "skip-interaction latency: priority arcs vs plain net (first segment ends at 10s)",
		Header: []string{"skip at", "latency (priority)", "latency (plain)", "speedup"},
	}
	for _, at := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second, 9 * time.Second} {
		sites := []docpn.SiteSpec{{Name: "site", ControlDelay: 5 * time.Millisecond, SyncErr: time.Millisecond}}
		ia := []docpn.Interaction{{At: at, Site: "site", Kind: docpn.Skip}}
		resPrio, err := docpn.RunWith(docpn.Config{Timeline: tl, Sites: sites, Mode: docpn.GlobalClock, PrioritySkip: true}, ia)
		if err != nil {
			return nil, err
		}
		resPlain, err := docpn.RunWith(docpn.Config{Timeline: tl, Sites: sites, Mode: docpn.GlobalClock, PrioritySkip: false}, ia)
		if err != nil {
			return nil, err
		}
		p, q := resPrio.InteractionLatency[0], resPlain.InteractionLatency[0]
		speedup := "n/a"
		if p > 0 {
			speedup = fmt.Sprintf("%.0fx", float64(q)/float64(p))
		}
		t.AddRow(at, p.Round(time.Millisecond), q.Round(time.Millisecond), speedup)
	}
	t.Note("priority latency is one network round trip regardless of when the user acts; the plain net waits out the remaining segment")
	return t, nil
}
