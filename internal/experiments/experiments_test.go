package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTableString(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow(1, "two")
	tab.Note("shape held: %v", true)
	out := tab.String()
	for _, want := range []string{"== X: demo ==", "a", "bb", "two", "note: shape held: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunF1(t *testing.T) {
	tab, err := RunF1()
	if err != nil {
		t.Fatal(err)
	}
	got := tab.String()
	for _, want := range []string{"safe (1-bounded)", "true", "sync set @0s", "narration, slide", "clip"} {
		if !strings.Contains(got, want) {
			t.Errorf("F1 missing %q:\n%s", want, got)
		}
	}
	// Steady skew must be small (clock-disciplined).
	if !strings.Contains(got, "3-site run finished") {
		t.Errorf("F1:\n%s", got)
	}
}

func TestRunF2CapabilityMatrix(t *testing.T) {
	tab, err := RunF2()
	if err != nil {
		t.Fatal(err)
	}
	// 4 snapshots × 2 members.
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab.String())
	}
	// Free access: both can send.
	if tab.Rows[0][2] != "true" || tab.Rows[1][2] != "true" {
		t.Errorf("free access row: %v %v", tab.Rows[0], tab.Rows[1])
	}
	// Equal control (teacher holds): student muted.
	if tab.Rows[2][2] != "true" || tab.Rows[3][2] != "false" {
		t.Errorf("equal control rows: %v %v", tab.Rows[2], tab.Rows[3])
	}
	// After pass: student speaks, teacher muted.
	if tab.Rows[4][2] != "false" || tab.Rows[5][2] != "true" {
		t.Errorf("after pass rows: %v %v", tab.Rows[4], tab.Rows[5])
	}
	// Direct contact: both have the private window.
	if tab.Rows[6][4] != "true" || tab.Rows[7][4] != "true" {
		t.Errorf("direct contact rows: %v %v", tab.Rows[6], tab.Rows[7])
	}
	// The teacher's invite column is always true.
	for i := 0; i < 8; i += 2 {
		if tab.Rows[i][6] != "true" {
			t.Errorf("teacher row %d invite = %v", i, tab.Rows[i])
		}
	}
}

func TestRunF3DetectsCrash(t *testing.T) {
	tab, err := RunF3()
	if err != nil {
		t.Fatal(err)
	}
	got := tab.String()
	for _, want := range []string{"annotation broadcast", "all lights green", "crash detected"} {
		if !strings.Contains(got, want) {
			t.Errorf("F3 missing %q:\n%s", want, got)
		}
	}
	for _, row := range tab.Rows {
		if row[0] == "other lights still green" && row[1] != "true" {
			t.Errorf("other lights: %v", row)
		}
	}
}

func TestRunE2ShapeHolds(t *testing.T) {
	tab, err := RunE2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// With zero sync error, global-clock firing error must be far below
	// the naive baseline's (which carries the ±40ms offsets).
	zeroRow := tab.Rows[0]
	g, err1 := time.ParseDuration(zeroRow[1])
	naive, err2 := time.ParseDuration(zeroRow[2])
	if err1 != nil || err2 != nil {
		t.Fatalf("row parse: %v %v (%v)", err1, err2, zeroRow)
	}
	if g >= naive {
		t.Errorf("global error %v should beat naive %v", g, naive)
	}
	if g > time.Millisecond {
		t.Errorf("perfect-sync global error = %v, want ~0", g)
	}
	if naive < 30*time.Millisecond {
		t.Errorf("naive error = %v, should carry the ±40ms offset", naive)
	}
}

func TestRunE3ShapeHolds(t *testing.T) {
	tab, err := RunE3()
	if err != nil {
		t.Fatal(err)
	}
	// Baseline skew must grow with the spread; DOCPN must stay bounded.
	firstBase, err := time.ParseDuration(tab.Rows[0][2])
	if err != nil {
		t.Fatal(err)
	}
	lastBase, err := time.ParseDuration(tab.Rows[len(tab.Rows)-1][2])
	if err != nil {
		t.Fatal(err)
	}
	if lastBase <= firstBase {
		t.Errorf("baseline skew should grow: %v → %v", firstBase, lastBase)
	}
	lastGlobal, err := time.ParseDuration(tab.Rows[len(tab.Rows)-1][1])
	if err != nil {
		t.Fatal(err)
	}
	if lastGlobal > 10*time.Millisecond {
		t.Errorf("DOCPN skew at 100ms spread = %v, want bounded by sync error", lastGlobal)
	}
	// DOCPN must win at the largest spread.
	if tab.Rows[len(tab.Rows)-1][3] != "DOCPN" {
		t.Errorf("winner = %s", tab.Rows[len(tab.Rows)-1][3])
	}
}

func TestRunE4ShapeHolds(t *testing.T) {
	tab, err := RunE4()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		p, err1 := time.ParseDuration(row[1])
		q, err2 := time.ParseDuration(row[2])
		if err1 != nil || err2 != nil {
			t.Fatalf("parse: %v", row)
		}
		if p >= q {
			t.Errorf("priority %v should beat plain %v (row %v)", p, q, row)
		}
		if p > 100*time.Millisecond {
			t.Errorf("priority latency = %v, want ~10ms", p)
		}
	}
}

func TestRunE1SmallSweep(t *testing.T) {
	tab, err := RunE1([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 { // 2 sizes × 4 modes
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab.String())
	}
	for _, row := range tab.Rows {
		n, err := strconv.Atoi(row[2])
		if err != nil || n <= 0 {
			t.Errorf("bad request count in %v", row)
		}
	}
}

func TestRunE5Regimes(t *testing.T) {
	tab, err := RunE5()
	if err != nil {
		t.Fatal(err)
	}
	// Expect: normal rows keep 4 active; degraded rows suspend; the 0.05
	// row aborts.
	var sawNormal, sawDegraded, sawAbort bool
	for _, row := range tab.Rows {
		switch row[1] {
		case "normal":
			sawNormal = true
			if row[3] != "4" {
				t.Errorf("normal row active = %v", row)
			}
		case "degraded":
			sawDegraded = true
			if row[2] == "0" {
				t.Errorf("degraded row should suspend someone: %v", row)
			}
		case "critical":
			sawAbort = true
			if row[5] != "true" {
				t.Errorf("critical row should abort: %v", row)
			}
		}
		// The baseline never sheds anyone.
		if row[4] != "4" {
			t.Errorf("baseline active = %v", row)
		}
	}
	if !sawNormal || !sawDegraded || !sawAbort {
		t.Errorf("missing regimes: normal=%v degraded=%v abort=%v\n%s", sawNormal, sawDegraded, sawAbort, tab.String())
	}
}

func TestRunE6Fairness(t *testing.T) {
	tab, err := RunE6([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	jain, err := strconv.ParseFloat(tab.Rows[0][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	if jain < 0.95 {
		t.Errorf("Jain = %v, want ≈ 1 for round-robin", jain)
	}
}

func TestRunE7Isolation(t *testing.T) {
	tab, err := RunE7(2)
	if err != nil {
		t.Fatal(err)
	}
	got := tab.String()
	if !strings.Contains(got, "isolation violations     0") && !strings.Contains(got, "isolation violations") {
		t.Errorf("E7:\n%s", got)
	}
	for _, row := range tab.Rows {
		if row[0] == "isolation violations" && row[1] != "0" {
			t.Errorf("violations = %s", row[1])
		}
	}
}

func TestRunE8Throughput(t *testing.T) {
	tab, err := RunE8([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		rate, err := strconv.ParseFloat(row[4], 64)
		if err != nil || rate <= 0 {
			t.Errorf("bad rate in %v", row)
		}
	}
}

func TestRunE9GatingHolds(t *testing.T) {
	tab, err := RunE9([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[3] != "0" {
			t.Errorf("muted units leaked: %v", row)
		}
		rate, err := strconv.ParseFloat(row[4], 64)
		if err != nil || rate <= 0 {
			t.Errorf("bad delivery rate: %v", row)
		}
	}
}

func TestRunA1OrderingAblation(t *testing.T) {
	tab, err := RunA1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		// Server sequencing never inverts and always converges.
		if row[3] != "0" || row[4] != "true" {
			t.Errorf("row %d: server policy broken: %v", i, row)
		}
	}
	// Zero skew: no timestamp inversions. Large skew: many.
	if tab.Rows[0][2] != "0" {
		t.Errorf("no-skew timestamps inverted: %v", tab.Rows[0])
	}
	big, err := strconv.Atoi(tab.Rows[3][2])
	if err != nil || big == 0 {
		t.Errorf("300ms skew should invert plenty: %v", tab.Rows[3])
	}
}

func TestRunE10ModeratedQueue(t *testing.T) {
	tab, err := RunE10([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[4] != "approval-order" {
			t.Errorf("approval order violated: %v", row)
		}
	}
}

func TestRunE11Scalability(t *testing.T) {
	tab, err := RunE11([]int{2, 4}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Broadcast rows must hold the encode-once invariant exactly: the
	// probe loop is parked, so the only encodes are the broadcasts.
	for _, row := range tab.Rows[:2] {
		enc, err := strconv.ParseFloat(row[5], 64)
		if err != nil || enc != 1.0 {
			t.Errorf("encodes/op = %q, want exactly 1.00: %v", row[5], row)
		}
	}
	for _, row := range tab.Rows[2:] {
		if row[0] != "arbitration" || row[5] != "-" {
			t.Errorf("unexpected arbitration row: %v", row)
		}
	}
}

func TestRunE12ClusterScaleOut(t *testing.T) {
	tab, err := RunE12([]int{1, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Every round completes the full routed op count, whatever the node
	// count — correctness first, scaling is the multi-core story.
	for _, row := range tab.Rows {
		if row[2] != "80" {
			t.Errorf("ops = %v, want 80: %v", row[2], row)
		}
	}
}
