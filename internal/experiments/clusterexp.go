package experiments

import (
	"fmt"
	"sync"
	"time"

	"dmps/internal/client"
	"dmps/internal/core"
	"dmps/internal/floor"
)

// RunE12 measures the cluster plane: aggregate floor-arbitration
// throughput as group partitions spread across more nodes. Each round
// boots a 1-router + N-node in-memory cluster, joins one client per
// group through the router (groups hash across the nodes), and runs the
// workers concurrently — every request crosses the router to its
// group's owning node, so the ops/s column is end-to-end routed
// throughput. Groups on different nodes share no locks and no process;
// on multi-core hardware the aggregate rate is what scales with the
// node count (a single-core host serializes all processes and shows
// the routing overhead instead).
func RunE12(nodeCounts []int, cycles int) (*Table, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1, 2, 4}
	}
	if cycles <= 0 {
		cycles = 100
	}
	t := &Table{
		ID:     "E12",
		Title:  "cluster scale-out: routed arbitration throughput vs node count",
		Header: []string{"nodes", "groups", "ops", "elapsed", "ops/s"},
	}
	for _, n := range nodeCounts {
		row, err := clusterRound(n, cycles)
		if err != nil {
			return nil, fmt.Errorf("E12 nodes=%d: %w", n, err)
		}
		t.AddRow(row...)
	}
	t.Note("every request crosses the router to the group's owning node; per-group state never crosses a process. multi-core hardware is the intended witness for node-count scaling")
	return t, nil
}

// clusterRound drives one pinned worker per group against an n-node
// cluster through the router.
func clusterRound(nodes, cycles int) ([]any, error) {
	cl, err := core.StartCluster(core.ClusterOptions{
		Options: core.Options{Seed: int64(nodes) * 31, ProbeInterval: time.Hour},
		Nodes:   nodes,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	const groups = 8
	workers := make([]*client.Client, 0, groups)
	for i := 0; i < groups; i++ {
		c, err := cl.NewClient(fmt.Sprintf("e12w%d", i), "participant", 2)
		if err != nil {
			return nil, err
		}
		if err := c.Join(fmt.Sprintf("e12g%d", i)); err != nil {
			return nil, err
		}
		workers = append(workers, c)
	}
	errCh := make(chan error, groups)
	start := time.Now()
	var wg sync.WaitGroup
	for i, w := range workers {
		gid := fmt.Sprintf("e12g%d", i)
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < cycles; k++ {
				if _, err := w.RequestFloor(gid, floor.FreeAccess, ""); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	ops := groups * cycles
	return []any{
		nodes, groups, ops, elapsed.Round(time.Millisecond),
		fmt.Sprintf("%.0f", float64(ops)/elapsed.Seconds()),
	}, nil
}
