package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"dmps/internal/whiteboard"
)

// RunA1 is the whiteboard-ordering ablation (DESIGN.md §5): the DMPS
// server assigns every board operation a sequence number, so all
// replicas converge on one order. The ablated design orders by the
// *author's local timestamp* instead. With skewed client clocks,
// timestamp ordering inverts causally-dependent messages (a reply sorts
// before its question); server sequencing never does.
func RunA1() (*Table, error) {
	t := &Table{
		ID:     "A1",
		Title:  "whiteboard ordering: server sequencing vs client timestamps (±80ms clock skew)",
		Header: []string{"clock skew", "messages", "causal inversions (timestamps)", "causal inversions (server seq)", "replicas converge"},
	}
	for _, skew := range []time.Duration{0, 20 * time.Millisecond, 80 * time.Millisecond, 300 * time.Millisecond} {
		invTS, invSeq, converged, total := orderingTrial(skew, 400)
		t.AddRow(skew, total, invTS, invSeq, converged)
	}
	t.Note("every board op is a causal reply to the previous one; a timestamp inversion renders a reply above its question — the server's sequence numbers make that impossible by construction")
	return t, nil
}

// orderingTrial simulates a causally-chained conversation between two
// authors whose clocks are skewed by ±skew, and measures inversions
// under each ordering policy plus replica convergence under server
// sequencing.
func orderingTrial(skew time.Duration, messages int) (inversionsTS, inversionsSeq int, converged bool, total int) {
	rng := rand.New(rand.NewSource(int64(skew) + 7))
	type op struct {
		trueOrder int
		author    string
		stamp     time.Time // author's local clock at post time
	}
	base := time.Date(2001, 4, 16, 9, 0, 0, 0, time.UTC)
	offsets := map[string]time.Duration{"fast": skew, "slow": -skew}
	server := whiteboard.NewBoard()
	var ops []op
	now := base
	for i := 0; i < messages; i++ {
		// Strict alternation: each message causally answers the previous.
		author := "fast"
		if i%2 == 1 {
			author = "slow"
		}
		now = now.Add(time.Duration(1+rng.Intn(40)) * time.Millisecond)
		ops = append(ops, op{trueOrder: i, author: author, stamp: now.Add(offsets[author])})
		if _, err := server.Append(author, whiteboard.Text, fmt.Sprintf("m%d", i)); err != nil {
			return 0, 0, false, 0
		}
	}
	// Timestamp policy: sort by the author-local stamps.
	byStamp := make([]op, len(ops))
	copy(byStamp, ops)
	sort.SliceStable(byStamp, func(i, j int) bool { return byStamp[i].stamp.Before(byStamp[j].stamp) })
	for i := 1; i < len(byStamp); i++ {
		if byStamp[i].trueOrder < byStamp[i-1].trueOrder {
			inversionsTS++
		}
	}
	// Server policy: sequence numbers are assigned in true order, so
	// inversions are zero by construction; verify anyway via the board.
	seqOps := server.Ops()
	for i := 1; i < len(seqOps); i++ {
		if seqOps[i].Seq < seqOps[i-1].Seq {
			inversionsSeq++
		}
	}
	// Replica convergence under duplicate-laden delivery.
	replica := whiteboard.NewBoard()
	for _, o := range seqOps {
		if err := replica.Apply(o); err != nil {
			return inversionsTS, inversionsSeq, false, len(ops)
		}
		if rng.Intn(4) == 0 {
			_ = replica.Apply(o) // duplicate
		}
	}
	return inversionsTS, inversionsSeq, replica.Equal(server), len(ops)
}
