package experiments

import (
	"fmt"
	"sync"
	"time"

	"dmps/internal/client"
	"dmps/internal/core"
	"dmps/internal/floor"
	"dmps/internal/resource"
	"dmps/internal/trace"
	"dmps/internal/workload"
)

// E1Sizes are the default group sizes for the arbitration sweep.
var E1Sizes = []int{2, 8, 24}

// RunE1 measures centralized floor-arbitration latency and throughput for
// each of the four modes across group sizes, on the live server stack.
func RunE1(sizes []int) (*Table, error) {
	if len(sizes) == 0 {
		sizes = E1Sizes
	}
	t := &Table{
		ID:     "E1",
		Title:  "floor arbitration latency/throughput by mode and group size",
		Header: []string{"mode", "members", "requests", "p50", "p95", "req/s"},
	}
	for _, n := range sizes {
		for _, mode := range []floor.Mode{floor.FreeAccess, floor.EqualControl, floor.GroupDiscussion, floor.DirectContact} {
			stats, reqs, elapsed, err := arbitrationRound(n, mode)
			if err != nil {
				return nil, fmt.Errorf("E1 %v n=%d: %w", mode, n, err)
			}
			t.AddRow(mode, n, reqs,
				stats.Percentile(50).Round(10*time.Microsecond),
				stats.Percentile(95).Round(10*time.Microsecond),
				fmt.Sprintf("%.0f", float64(reqs)/elapsed.Seconds()))
		}
	}
	t.Note("all arbitration is centralized at the server (paper §4); equal-control rows include request+release per member")
	return t, nil
}

// arbitrationRound drives one (mode, size) cell.
func arbitrationRound(n int, mode floor.Mode) (*trace.LatencyStats, int, time.Duration, error) {
	lab, err := core.NewLab(core.Options{Seed: int64(n) * 17})
	if err != nil {
		return nil, 0, 0, err
	}
	defer lab.Close()
	clients := make([]*client.Client, 0, n)
	for i := 0; i < n; i++ {
		c, err := lab.NewClient(fmt.Sprintf("m%d", i), "participant", 2)
		if err != nil {
			return nil, 0, 0, err
		}
		if err := c.Join("class"); err != nil {
			return nil, 0, 0, err
		}
		clients = append(clients, c)
	}
	stats := &trace.LatencyStats{}
	const perClient = 5
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i, c := range clients {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				target := ""
				if mode == floor.DirectContact {
					target = clients[(i+1)%n].MemberID()
				}
				t0 := time.Now()
				_, err := c.RequestFloor("class", mode, target)
				stats.Add(time.Since(t0))
				if err != nil {
					// Equal-control busy answers are normal outcomes.
					if mode == floor.EqualControl {
						continue
					}
					errCh <- err
					return
				}
				if mode == floor.EqualControl {
					_ = c.ReleaseFloor("class")
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, 0, 0, err
		}
	}
	return stats, stats.N(), time.Since(start), nil
}

// RunE5 measures graceful degradation: a load ramp crossing α then β,
// with Media-Suspend on (the paper's mechanism) versus off (baseline).
// Expected shape: above α everyone keeps media; in [β, α) exactly the
// lowest-priority members lose media one per arbitration; below β
// arbitration aborts. The baseline keeps every member active regardless,
// overcommitting the host.
func RunE5() (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "resource degradation: Media-Suspend vs no-suspend baseline (α=0.5, β=0.2, 4 members)",
		Header: []string{"availability", "level", "suspended (FCM)", "active (FCM)", "active (baseline)", "aborted"},
	}
	reg, ctl, err := floorFixture()
	if err != nil {
		return nil, err
	}
	mon, err := resource.New(resource.MinBound, resource.Thresholds{Alpha: 0.5, Beta: 0.2})
	if err != nil {
		return nil, err
	}
	fcm := floor.NewController(reg, mon)
	_ = ctl
	baseline := floor.NewController(reg, nil) // no resource coupling
	members := []string{"teacher", "alice", "bob", "carol"}
	for _, avail := range []float64{1.0, 0.8, 0.6, 0.45, 0.35, 0.25, 0.15, 0.05} {
		mon.Set(resource.Vector{Network: avail, CPU: avail, Memory: avail})
		_, errF := fcm.Arbitrate("class", "teacher", floor.FreeAccess, "")
		_, errB := baseline.Arbitrate("class", "teacher", floor.FreeAccess, "")
		if errB != nil {
			return nil, fmt.Errorf("baseline should never abort: %w", errB)
		}
		aborted := errF != nil
		activeF := 0
		for _, m := range members {
			if fcm.MediaAvailable("class", memberID(m)) {
				activeF++
			}
		}
		level := mon.Level()
		t.AddRow(fmt.Sprintf("%.2f", avail), level, len(fcm.Suspended("class")), activeF, len(members), aborted)
		if level == resource.Normal {
			fcm.Reinstate("class") // recovery between normal steps
		}
	}
	t.Note("suspension victims are chosen lowest-priority-first (carol=1 before alice/bob=2 before teacher=5)")
	return t, nil
}

// floorFixture builds the 4-member class used by the floor experiments.
func floorFixture() (reg *registryAlias, ctl *floor.Controller, err error) {
	r := newRegistry()
	for _, m := range []memberSpec{
		{"teacher", 5}, {"alice", 2}, {"bob", 2}, {"carol", 1},
	} {
		if err := registerMember(r, m.id, m.priority); err != nil {
			return nil, nil, err
		}
	}
	if err := r.CreateGroup("class", "teacher"); err != nil {
		return nil, nil, err
	}
	for _, id := range []string{"alice", "bob", "carol"} {
		if err := r.Join("class", memberID(id)); err != nil {
			return nil, nil, err
		}
	}
	return r, floor.NewController(r, nil), nil
}

type memberSpec struct {
	id       string
	priority int
}

// RunE6 measures Equal Control fairness and token-handoff latency: the
// token is passed round-robin; every member should hold it equally often
// (Jain index → 1).
func RunE6(sizes []int) (*Table, error) {
	if len(sizes) == 0 {
		sizes = []int{4, 8, 16}
	}
	t := &Table{
		ID:     "E6",
		Title:  "equal-control token passing: fairness and handoff latency",
		Header: []string{"members", "passes", "Jain index", "handoff p50", "handoff p95"},
	}
	for _, n := range sizes {
		lab, err := core.NewLab(core.Options{Seed: int64(n)})
		if err != nil {
			return nil, err
		}
		clients := make([]*client.Client, 0, n)
		for i := 0; i < n; i++ {
			c, err := lab.NewClient(fmt.Sprintf("m%d", i), "participant", 2)
			if err != nil {
				lab.Close()
				return nil, err
			}
			if err := c.Join("class"); err != nil {
				lab.Close()
				return nil, err
			}
			clients = append(clients, c)
		}
		ids := make([]string, n)
		for i, c := range clients {
			ids[i] = c.MemberID()
		}
		if _, err := clients[0].RequestFloor("class", floor.EqualControl, ""); err != nil {
			lab.Close()
			return nil, err
		}
		holds := make(map[string]float64)
		holds[ids[0]]++
		stats := &trace.LatencyStats{}
		passes := workload.RoundRobinPasses(ids, 4*n)
		holder := 0
		for range passes {
			next := (holder + 1) % n
			t0 := time.Now()
			if err := clients[holder].PassToken("class", ids[next]); err != nil {
				lab.Close()
				return nil, err
			}
			stats.Add(time.Since(t0))
			holds[ids[next]]++
			holder = next
		}
		shares := make([]float64, 0, n)
		for _, id := range ids {
			shares = append(shares, holds[id])
		}
		t.AddRow(n, len(passes),
			fmt.Sprintf("%.4f", trace.JainIndex(shares)),
			stats.Percentile(50).Round(10*time.Microsecond),
			stats.Percentile(95).Round(10*time.Microsecond))
		lab.Close()
	}
	t.Note("holder-passing round-robin yields Jain ≈ 1 (perfect fairness); handoff is one server round trip")
	return t, nil
}

// RunE7 exercises Group Discussion and Direct Contact concurrently:
// K sub-groups built by invitation, all chatting at once, plus private
// direct-contact pairs; checks isolation (no cross-group leakage) and
// reports invitation latency.
func RunE7(k int) (*Table, error) {
	if k <= 0 {
		k = 3
	}
	const membersTotal = 12
	lab, err := core.NewLab(core.Options{Seed: int64(k) * 7})
	if err != nil {
		return nil, err
	}
	defer lab.Close()
	clients := make([]*client.Client, 0, membersTotal)
	for i := 0; i < membersTotal; i++ {
		c, err := lab.NewClient(fmt.Sprintf("m%d", i), "participant", 2)
		if err != nil {
			return nil, err
		}
		if err := c.Join("plenary"); err != nil {
			return nil, err
		}
		clients = append(clients, c)
	}
	ids := make([]string, membersTotal)
	byID := make(map[string]*client.Client, membersTotal)
	for i, c := range clients {
		ids[i] = c.MemberID()
		byID[c.MemberID()] = c
	}
	inviteStats := &trace.LatencyStats{}
	groups := workload.Fanout(ids, k)
	// Build each sub-group: creator joins, invites the rest.
	for gi, members := range groups {
		gname := fmt.Sprintf("breakout-%d", gi)
		creator := byID[members[0]]
		if err := creator.Join(gname); err != nil {
			return nil, err
		}
		for _, invitee := range members[1:] {
			t0 := time.Now()
			inviteID, err := creator.Invite(gname, invitee)
			if err != nil {
				return nil, err
			}
			if err := byID[invitee].ReplyInvite(inviteID, true); err != nil {
				return nil, err
			}
			inviteStats.Add(time.Since(t0))
		}
		if _, err := creator.RequestFloor(gname, floor.GroupDiscussion, ""); err != nil {
			return nil, err
		}
	}
	// Everyone chats in their breakout concurrently.
	var wg sync.WaitGroup
	errCh := make(chan error, membersTotal)
	for gi, members := range groups {
		gname := fmt.Sprintf("breakout-%d", gi)
		for _, id := range members {
			c := byID[id]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 3; j++ {
					if err := c.Chat(gname, "idea"); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
	}
	// Plus a direct-contact pair across groups, concurrently.
	if _, err := clients[0].RequestFloor("plenary", floor.DirectContact, ids[membersTotal-1]); err != nil {
		return nil, err
	}
	if err := clients[0].ChatPrivate("plenary", ids[membersTotal-1], "psst"); err != nil {
		return nil, err
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}
	// Isolation: boards of other breakouts must stay empty for
	// non-members; expected ops for members.
	violations := 0
	for gi, members := range groups {
		gname := fmt.Sprintf("breakout-%d", gi)
		want := int64(3 * len(members))
		inGroup := make(map[string]bool, len(members))
		for _, id := range members {
			inGroup[id] = true
		}
		for _, c := range clients {
			if inGroup[c.MemberID()] {
				if err := waitUntil(3*time.Second, func() bool { return c.Board(gname).Seq() == want }); err != nil {
					return nil, fmt.Errorf("breakout %d convergence: %w", gi, err)
				}
			} else if c.Board(gname).Seq() != 0 {
				violations++
			}
		}
	}
	// Private delivery.
	if err := waitUntil(3*time.Second, func() bool {
		return len(clients[membersTotal-1].PrivateMessages()) == 1
	}); err != nil {
		return nil, fmt.Errorf("private delivery: %w", err)
	}
	t := &Table{
		ID:     "E7",
		Title:  fmt.Sprintf("concurrent sub-groups (%d breakouts over %d members) + direct contact", k, membersTotal),
		Header: []string{"metric", "value"},
	}
	t.AddRow("invitations", inviteStats.N())
	t.AddRow("invite+accept p50", inviteStats.Percentile(50).Round(10*time.Microsecond))
	t.AddRow("invite+accept p95", inviteStats.Percentile(95).Round(10*time.Microsecond))
	t.AddRow("isolation violations", violations)
	t.AddRow("direct-contact deliveries", len(clients[membersTotal-1].PrivateMessages()))
	t.Note("sub-group traffic is invisible outside its membership; direct contact runs concurrently with group discussion, as the paper requires")
	return t, nil
}

// RunE8 measures server relay throughput in Free Access: N clients all
// chat simultaneously; every message fans out to all N members.
func RunE8(sizes []int) (*Table, error) {
	if len(sizes) == 0 {
		sizes = []int{2, 8, 32}
	}
	t := &Table{
		ID:     "E8",
		Title:  "server relay throughput (free-access chat storm)",
		Header: []string{"clients", "messages", "deliveries", "elapsed", "deliveries/s"},
	}
	for _, n := range sizes {
		lab, err := core.NewLab(core.Options{Seed: int64(n) * 3})
		if err != nil {
			return nil, err
		}
		clients := make([]*client.Client, 0, n)
		for i := 0; i < n; i++ {
			c, err := lab.NewClient(fmt.Sprintf("m%d", i), "participant", 2)
			if err != nil {
				lab.Close()
				return nil, err
			}
			if err := c.Join("class"); err != nil {
				lab.Close()
				return nil, err
			}
			clients = append(clients, c)
		}
		const perClient = 20
		start := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, n)
		for _, c := range clients {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < perClient; j++ {
					if err := c.Chat("class", "storm"); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			if err != nil {
				lab.Close()
				return nil, err
			}
		}
		total := int64(n * perClient)
		// Wait for full fan-out at every client.
		for _, c := range clients {
			if err := waitUntil(10*time.Second, func() bool { return c.Board("class").Seq() == total }); err != nil {
				lab.Close()
				return nil, fmt.Errorf("fan-out: %w", err)
			}
		}
		elapsed := time.Since(start)
		deliveries := total * int64(n)
		t.AddRow(n, total, deliveries, elapsed.Round(time.Millisecond),
			fmt.Sprintf("%.0f", float64(deliveries)/elapsed.Seconds()))
		lab.Close()
	}
	t.Note("the single centralized relay is the architecture of the paper; throughput grows with N until the relay saturates, then deliveries/s plateaus")
	return t, nil
}

// RunE10 exercises the BFCP-style ModeratedQueue policy on the live
// stack: n students queue, the chair approves them one at a time, and
// each approved student holds then releases the floor. It reports the
// approve→grant-event latency observed through the client subscription
// API and checks that approval order (reverse of request order here)
// overrides queue order.
func RunE10(sizes []int) (*Table, error) {
	if len(sizes) == 0 {
		sizes = []int{2, 8}
	}
	t := &Table{
		ID:     "E10",
		Title:  "moderated-queue: chair approvals over the live stack (approve → grant event)",
		Header: []string{"students", "approvals", "grant p50", "grant p95", "order"},
	}
	for _, n := range sizes {
		lab, err := core.NewLab(core.Options{Seed: int64(n) * 31})
		if err != nil {
			return nil, err
		}
		chair, err := lab.NewClient("chair", "chair", 5)
		if err != nil {
			lab.Close()
			return nil, err
		}
		if err := chair.Join("seminar"); err != nil {
			lab.Close()
			return nil, err
		}
		students := make([]*client.Client, 0, n)
		events := make([]<-chan client.Event, 0, n)
		for i := 0; i < n; i++ {
			s, err := lab.NewClient(fmt.Sprintf("s%d", i), "participant", 2)
			if err != nil {
				lab.Close()
				return nil, err
			}
			events = append(events, s.Subscribe(client.FloorEvents))
			if err := s.Join("seminar"); err != nil {
				lab.Close()
				return nil, err
			}
			students = append(students, s)
		}
		for _, s := range students {
			if dec, err := s.RequestFloor("seminar", floor.ModeratedQueue, ""); err != nil || dec.Granted {
				lab.Close()
				return nil, fmt.Errorf("student should queue, got %+v, %v", dec, err)
			}
		}
		stats := &trace.LatencyStats{}
		ordered := true
		// Approve in reverse request order: approval, not arrival,
		// decides who speaks.
		for i := n - 1; i >= 0; i-- {
			s := students[i]
			if _, err := s.ApproveFloor("seminar", s.MemberID()); err == nil {
				lab.Close()
				return nil, fmt.Errorf("non-chair approval must fail")
			}
			t0 := time.Now()
			if _, err := chair.ApproveFloor("seminar", s.MemberID()); err != nil {
				lab.Close()
				return nil, err
			}
			// Wait for the student's own grant event.
			granted := false
			deadline := time.After(5 * time.Second)
			for !granted {
				select {
				case ev := <-events[i]:
					if ev.Floor.Holder == s.MemberID() {
						granted = true
					}
				case <-deadline:
					lab.Close()
					return nil, fmt.Errorf("no grant event for %s", s.MemberID())
				}
			}
			stats.Add(time.Since(t0))
			if s.Holder("seminar") != s.MemberID() {
				ordered = false
			}
			if err := s.ReleaseFloor("seminar"); err != nil {
				lab.Close()
				return nil, err
			}
		}
		order := "approval-order"
		if !ordered {
			order = "VIOLATED"
		}
		t.AddRow(n, n,
			stats.Percentile(50).Round(10*time.Microsecond),
			stats.Percentile(95).Round(10*time.Microsecond),
			order)
		lab.Close()
	}
	t.Note("every grant is chair-approved (BFCP-style); latency includes the approve round trip plus the pushed grant event")
	return t, nil
}
