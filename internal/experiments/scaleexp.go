package experiments

import (
	"fmt"
	"sync"
	"time"

	"dmps/internal/client"
	"dmps/internal/core"
	"dmps/internal/floor"
	"dmps/internal/group"
	"dmps/internal/protocol"
)

// RunE11 measures the PR-2 data plane: encode-once broadcast fan-out on
// the live netsim stack, and multi-group arbitration throughput on the
// sharded controller. The encodes/op column is the load-bearing number —
// one protocol.Encode per broadcast, whatever the group size; the
// arbitration rows show aggregate request throughput staying flat (or
// climbing with available cores) as independent groups are added, where
// a single controller-wide mutex would serialize them.
func RunE11(sizes []int, groupCounts []int) (*Table, error) {
	if len(sizes) == 0 {
		sizes = []int{2, 8, 32}
	}
	if len(groupCounts) == 0 {
		groupCounts = []int{1, 4, 16}
	}
	t := &Table{
		ID:     "E11",
		Title:  "scalability: encode-once broadcast fan-out and sharded multi-group arbitration",
		Header: []string{"scenario", "scale", "ops", "elapsed", "ops/s", "encodes/op"},
	}
	for _, n := range sizes {
		row, err := broadcastRound(n)
		if err != nil {
			return nil, fmt.Errorf("E11 broadcast n=%d: %w", n, err)
		}
		t.AddRow(row...)
	}
	for _, g := range groupCounts {
		row, err := contentionRound(g)
		if err != nil {
			return nil, fmt.Errorf("E11 arbitration g=%d: %w", g, err)
		}
		t.AddRow(row...)
	}
	t.Note("broadcast rows deliver every op to all members over netsim; encodes/op ≈ 1 is the encode-once invariant. arbitration rows run one pinned worker per group on the sharded controller")
	return t, nil
}

// broadcastRound fans broadcasts out to an n-member group and waits for
// full delivery at every replica.
func broadcastRound(n int) ([]any, error) {
	lab, err := core.NewLab(core.Options{Seed: int64(n) * 13, ProbeInterval: time.Hour})
	if err != nil {
		return nil, err
	}
	defer lab.Close()
	clients := make([]*client.Client, 0, n)
	for i := 0; i < n; i++ {
		c, err := lab.NewClient(fmt.Sprintf("m%d", i), "participant", 2)
		if err != nil {
			return nil, err
		}
		if err := c.Join("class"); err != nil {
			return nil, err
		}
		clients = append(clients, c)
	}
	const ops = 200
	encBefore := protocol.EncodeCount()
	start := time.Now()
	for i := 0; i < ops; i++ {
		ev := protocol.MustNew(protocol.TChatEvent, protocol.SequencedBody{
			Seq: int64(i + 1), Author: "e11", Kind: "text", Data: "fanout",
		})
		ev.Group = "class"
		lab.Server.Broadcast("class", ev)
	}
	for _, c := range clients {
		c := c
		if err := waitUntil(20*time.Second, func() bool { return c.Board("class").Seq() == ops }); err != nil {
			return nil, fmt.Errorf("fan-out: %w", err)
		}
	}
	elapsed := time.Since(start)
	encodes := float64(protocol.EncodeCount()-encBefore) / float64(ops)
	return []any{
		"broadcast", fmt.Sprintf("%d members", n), ops, elapsed.Round(time.Millisecond),
		fmt.Sprintf("%.0f", float64(ops)/elapsed.Seconds()),
		fmt.Sprintf("%.2f", encodes),
	}, nil
}

// contentionRound drives one pinned worker per group against a single
// sharded Controller.
func contentionRound(g int) ([]any, error) {
	reg := group.NewRegistry()
	for i := 0; i < g; i++ {
		id := group.MemberID(fmt.Sprintf("m%d", i))
		if err := reg.Register(group.Member{ID: id, Name: string(id), Role: group.Chair, Priority: 5}); err != nil {
			return nil, err
		}
		if err := reg.CreateGroup(fmt.Sprintf("g%d", i), id); err != nil {
			return nil, err
		}
	}
	ctl := floor.NewController(reg, nil)
	const perWorker = 5000
	errCh := make(chan error, g)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		gid := fmt.Sprintf("g%d", i)
		mid := group.MemberID(fmt.Sprintf("m%d", i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				if _, err := ctl.Arbitrate(gid, mid, floor.FreeAccess, ""); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	ops := g * perWorker
	return []any{
		"arbitration", fmt.Sprintf("%d groups", g), ops, elapsed.Round(time.Millisecond),
		fmt.Sprintf("%.0f", float64(ops)/elapsed.Seconds()),
		"-",
	}, nil
}
