package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/clock"
	"dmps/internal/media"
	"dmps/internal/netsim"
	"dmps/internal/ocpn"
	"dmps/internal/presentation"
)

func TestLabEndToEndLecture(t *testing.T) {
	lab, err := NewLab(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()

	teacher, err := lab.NewClient("Teacher", "chair", 5)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := lab.NewClient("Alice", "participant", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := teacher.Join("class"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Join("class"); err != nil {
		t.Fatal(err)
	}
	if err := teacher.Chat("class", "hello class"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for alice.Board("class").Seq() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("chat never arrived")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestLabClientOnDelayedHost(t *testing.T) {
	lab, err := NewLab(Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	lab.Net.SetLink("farhost", netsim.Host(ServerAddr), netsim.LinkConfig{Delay: 20 * time.Millisecond})
	far, err := lab.NewClientOn("farhost", "Far", "participant", 2)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := far.Join("class"); err != nil {
		t.Fatal(err)
	}
	// Join is one round trip: ≥ 40ms over the delayed link.
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Errorf("join took %v, want ≥ ~40ms over the delayed link", elapsed)
	}
}

// TestLabSynchronizedPresentation is the end-to-end Figure-1 scenario on
// the live stack: the chair broadcasts a presentation; both clients sync
// clocks and play it under global-clock discipline; playout skew stays
// small.
func TestLabSynchronizedPresentation(t *testing.T) {
	lab, err := NewLab(Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	teacher, err := lab.NewClient("Teacher", "chair", 5)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := lab.NewClient("Alice", "participant", 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = teacher.Join("class")
	_ = alice.Join("class")

	tl := ocpn.Timeline{Items: []ocpn.ScheduledObject{
		{Object: media.Object{ID: "slide", Kind: media.Image, Duration: 15 * time.Millisecond}, Start: 0},
		{Object: media.Object{ID: "clip", Kind: media.Video, Duration: 15 * time.Millisecond, Rate: 30}, Start: 15 * time.Millisecond},
	}}
	for _, c := range []interface{ SyncClock() (time.Duration, error) }{teacher, alice} {
		if _, err := c.SyncClock(); err != nil {
			t.Fatal(err)
		}
	}
	startGlobal := lab.Server.Master().GlobalNow().Add(30 * time.Millisecond)
	if err := teacher.StartPresentation("class", presentation.ToWire(tl, startGlobal)); err != nil {
		t.Fatal(err)
	}
	// Both clients receive it and play.
	deadline := time.Now().Add(3 * time.Second)
	for alice.Presentation() == nil || teacher.Presentation() == nil {
		if time.Now().After(deadline) {
			t.Fatal("presentation never arrived")
		}
		time.Sleep(2 * time.Millisecond)
	}
	var meter media.SkewMeter
	var mu sync.Mutex
	var wg sync.WaitGroup
	players := []struct {
		name string
		play func() error
	}{
		{"teacher", func() error {
			body := teacher.Presentation()
			ptl, start, err := presentation.FromWire(*body)
			if err != nil {
				return err
			}
			p := presentation.Player{Site: "teacher", Estimator: teacher.Estimator()}
			recs, err := p.Play(context.Background(), ptl, start)
			mu.Lock()
			for _, r := range recs {
				meter.Add(r)
			}
			mu.Unlock()
			return err
		}},
		{"alice", func() error {
			body := alice.Presentation()
			ptl, start, err := presentation.FromWire(*body)
			if err != nil {
				return err
			}
			p := presentation.Player{Site: "alice", Estimator: alice.Estimator()}
			recs, err := p.Play(context.Background(), ptl, start)
			mu.Lock()
			for _, r := range recs {
				meter.Add(r)
			}
			mu.Unlock()
			return err
		}},
	}
	errs := make([]error, len(players))
	for i, p := range players {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = p.play()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", players[i].name, err)
		}
	}
	if meter.Len() != 4 {
		t.Fatalf("records = %d, want 4", meter.Len())
	}
	if skew := meter.MaxInterSiteSkew(); skew > 20*time.Millisecond {
		t.Errorf("inter-site skew = %v", skew)
	}
}

// TestLabPresentationWithDriftingClients injects skewed local clocks into
// the clients: without sync their naive playout would diverge by ±80ms;
// after SyncClock the monitor confirms schedule conformance and the
// inter-site skew stays bounded by the sync error.
func TestLabPresentationWithDriftingClients(t *testing.T) {
	lab, err := NewLab(Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	teacher, err := lab.NewClient("Teacher", "chair", 5)
	if err != nil {
		t.Fatal(err)
	}
	_ = teacher.Join("class")

	// Two skewed participants: one 80ms ahead, one 80ms behind.
	mkSkewed := func(name string, offset time.Duration) *client.Client {
		c, err := client.Dial(client.Config{
			Network:  lab.Net,
			Addr:     ServerAddr,
			Name:     name,
			Role:     "participant",
			Priority: 2,
			Clock:    clock.NewDrift(clock.Real{}, offset, 0),
			Timeout:  3 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		if err := c.Join("class"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.SyncClock(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	ahead := mkSkewed("Ahead", 80*time.Millisecond)
	behind := mkSkewed("Behind", -80*time.Millisecond)

	tl := ocpn.Timeline{Items: []ocpn.ScheduledObject{
		{Object: media.Object{ID: "a", Kind: media.Image, Duration: 15 * time.Millisecond}, Start: 0},
		{Object: media.Object{ID: "b", Kind: media.Video, Duration: 15 * time.Millisecond, Rate: 30}, Start: 15 * time.Millisecond},
	}}
	start := lab.Server.Master().GlobalNow().Add(40 * time.Millisecond)

	var meter media.SkewMeter
	var all []media.PlayoutRecord
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, site := range []struct {
		name string
		c    *client.Client
	}{{"ahead", ahead}, {"behind", behind}} {
		site := site
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := presentation.Player{Site: site.name, Estimator: site.c.Estimator()}
			recs, err := p.Play(context.Background(), tl, start)
			if err != nil {
				t.Errorf("%s: %v", site.name, err)
				return
			}
			mu.Lock()
			for _, r := range recs {
				meter.Add(r)
				all = append(all, r)
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	// NOTE: PlayedAt stamps come from each site's global-time estimate,
	// so residual skew reflects estimation error, not the raw ±80ms.
	if skew := meter.MaxInterSiteSkew(); skew > 30*time.Millisecond {
		t.Errorf("skew = %v despite sync (raw clock spread is 160ms)", skew)
	}
	// The conformance monitor agrees.
	net, err := ocpn.Compile(tl)
	if err != nil {
		t.Fatal(err)
	}
	mon := presentation.NewMonitor(net, start, 30*time.Millisecond)
	mon.ObserveAll(all)
	if !mon.Conformant() {
		t.Errorf("violations: %v", mon.Violations())
	}
	if missing := mon.Coverage(all, 2); len(missing) != 0 {
		t.Errorf("missing coverage: %v", missing)
	}
}
