// Package core assembles the full DMPS system — simulated network, DMPS
// server with its group administration, floor control, global clock, and
// any number of clients — into a single Lab object. The examples, the
// command-line tools and the experiment harness all build on it; it is
// the paper's "distributed multimedia presentation system" in one value.
package core

import (
	"fmt"
	"path/filepath"
	"time"

	"dmps/internal/client"
	"dmps/internal/cluster"
	"dmps/internal/netsim"
	"dmps/internal/protocol"
	"dmps/internal/resource"
	"dmps/internal/server"
)

// ServerAddr is the well-known simulated address of the lab server.
const ServerAddr = "dmps-server:4321"

// Options configure a Lab.
type Options struct {
	// Seed feeds the simulated network's jitter/loss RNG.
	Seed int64
	// Link is the default link config between every client and the
	// server (zero means instant delivery).
	Link netsim.LinkConfig
	// Thresholds are the α/β floor-control thresholds (defaults apply
	// when zero).
	Thresholds resource.Thresholds
	// ProbeInterval / ProbeTimeout tune the status lights (defaults:
	// 50ms / 150ms — fast enough for tests and examples).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// ClientTimeout bounds request/response exchanges (default 5s).
	ClientTimeout time.Duration
	// SendQueueCap bounds each session's outbound queue at the server
	// (default: the server's own default).
	SendQueueCap int
	// SlowPolicy is the server's slow-consumer policy.
	SlowPolicy server.SlowConsumerPolicy
	// LogCap bounds each group's retained event log at the server
	// (default: the server's own default); under pressure the log
	// compacts class-wise, and clients the retained suffix cannot
	// connect converge through a snapshot instead of a replay.
	LogCap int
	// CoalesceInterval batches queue-restatement pushes at the server
	// (default: one probe tick).
	CoalesceInterval time.Duration
	// SessionTTL bounds how long a disconnected member's session token
	// and directory entry outlive their last connection before the
	// server reaps them (default: the server's own default, one hour).
	SessionTTL time.Duration
}

// Lab is a fully assembled in-memory DMPS deployment.
type Lab struct {
	// Net is the simulated network (links, partitions, crashes).
	Net *netsim.Net
	// Server is the DMPS server.
	Server *server.Server
	// Monitor drives resource-based arbitration; set its vector to move
	// between the Normal/Degraded/Critical regimes.
	Monitor *resource.Monitor

	opts    Options
	clients []*client.Client
}

// NewLab builds and starts a DMPS deployment.
func NewLab(opts Options) (*Lab, error) {
	if opts.Thresholds == (resource.Thresholds{}) {
		opts.Thresholds = resource.DefaultThresholds()
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 50 * time.Millisecond
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 3 * opts.ProbeInterval
	}
	if opts.ClientTimeout <= 0 {
		opts.ClientTimeout = 5 * time.Second
	}
	net := netsim.New(opts.Seed)
	net.SetDefaultLink(opts.Link)
	mon, err := resource.New(resource.MinBound, opts.Thresholds)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	srv, err := server.New(server.Config{
		Network:          net,
		Addr:             ServerAddr,
		Monitor:          mon,
		ProbeInterval:    opts.ProbeInterval,
		ProbeTimeout:     opts.ProbeTimeout,
		SendQueueCap:     opts.SendQueueCap,
		SlowPolicy:       opts.SlowPolicy,
		LogCap:           opts.LogCap,
		CoalesceInterval: opts.CoalesceInterval,
		SessionTTL:       opts.SessionTTL,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	srv.Start()
	return &Lab{Net: net, Server: srv, Monitor: mon, opts: opts}, nil
}

// NewClient connects a client with the given identity. Role is "chair"
// or "participant".
func (l *Lab) NewClient(name, role string, priority int) (*client.Client, error) {
	c, err := client.Dial(client.Config{
		Network:  l.Net,
		Addr:     ServerAddr,
		Name:     name,
		Role:     role,
		Priority: priority,
		Timeout:  l.opts.ClientTimeout,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	l.clients = append(l.clients, c)
	return c, nil
}

// NewClientOn connects a client whose traffic traverses a named simulated
// host, so per-host link configs (delay, jitter, loss) apply.
func (l *Lab) NewClientOn(host, name, role string, priority int) (*client.Client, error) {
	c, err := client.Dial(client.Config{
		Network:  l.Net.From(host),
		Addr:     ServerAddr,
		Name:     name,
		Role:     role,
		Priority: priority,
		Timeout:  l.opts.ClientTimeout,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	l.clients = append(l.clients, c)
	return c, nil
}

// Close disconnects every client and stops the server.
func (l *Lab) Close() {
	for _, c := range l.clients {
		c.Close()
	}
	l.Server.Close()
}

// WirePresentation is a convenience re-export so facade users need not
// import protocol directly.
type WirePresentation = protocol.PresentBody

// RouterAddr is the well-known simulated address of the lab cluster's
// routing tier; NodeAddr derives each node's.
const RouterAddr = "dmps-router:4321"

// NodeAddr returns the simulated address of lab cluster node i.
func NodeAddr(i int) string { return fmt.Sprintf("dmps-node%d:4321", i) }

// ClusterOptions configure a StartCluster lab deployment: the base lab
// options apply to every node, and Nodes picks the node count.
type ClusterOptions struct {
	// Options configure each node (probe cadence, queue caps, log caps,
	// TTLs) and the simulated network, exactly as for NewLab.
	Options
	// Nodes is the number of group-partition node processes (default 2).
	Nodes int
	// ReplicationFactor is how many nodes hold each logged append
	// (default: the cluster plane's own default, 2 — primary plus one
	// ring successor).
	ReplicationFactor int
	// WALDir, when set, gives each node a write-ahead log under
	// WALDir/node<i>, so KillNode+RestartNode drills replay durable
	// state instead of starting empty.
	WALDir string
}

// Cluster is a fully assembled in-memory multi-process DMPS deployment:
// N group-partition nodes behind one router, all on the simulated
// network. It is the lab helper behind cluster experiments and tests;
// production deployments run the same pieces as real processes
// (cmd/dmps-server -cluster, cmd/dmps-router).
type Cluster struct {
	// Net is the simulated network shared by router, nodes and clients.
	Net *netsim.Net
	// Router is the routing tier clients dial.
	Router *cluster.Router
	// Nodes are the group-partition node servers, in ring order.
	Nodes []*server.Server
	// Monitors drive each node's resource-based arbitration, index-
	// aligned with Nodes.
	Monitors []*resource.Monitor

	addrs   []string
	opts    ClusterOptions
	clients []*client.Client
}

// StartCluster builds and starts an in-memory cluster: Nodes partition
// nodes (hash-assigned groups and member homes, successor replication,
// typed forwards) behind one router on the simulated network.
func StartCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 2
	}
	if opts.Thresholds == (resource.Thresholds{}) {
		opts.Thresholds = resource.DefaultThresholds()
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 50 * time.Millisecond
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 3 * opts.ProbeInterval
	}
	if opts.ClientTimeout <= 0 {
		opts.ClientTimeout = 5 * time.Second
	}
	net := netsim.New(opts.Seed)
	net.SetDefaultLink(opts.Link)
	addrs := make([]string, opts.Nodes)
	for i := range addrs {
		addrs[i] = NodeAddr(i)
	}
	c := &Cluster{Net: net, addrs: addrs, opts: opts}
	for i := range addrs {
		srv, mon, err := c.startNode(i)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("core: node %d: %w", i, err)
		}
		c.Nodes = append(c.Nodes, srv)
		c.Monitors = append(c.Monitors, mon)
	}
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Network: net.From(netsim.Host(RouterAddr)),
		Addr:    RouterAddr,
		Nodes:   addrs,
	})
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("core: %w", err)
	}
	router.Start()
	c.Router = router
	return c, nil
}

// startNode builds and starts cluster node i from the lab options. The
// WAL dir (when configured) is per-node and stable across restarts, so
// a restarted node replays the state its predecessor journalled.
func (c *Cluster) startNode(i int) (*server.Server, *resource.Monitor, error) {
	mon, err := resource.New(resource.MinBound, c.opts.Thresholds)
	if err != nil {
		return nil, nil, err
	}
	var walDir string
	if c.opts.WALDir != "" {
		walDir = filepath.Join(c.opts.WALDir, fmt.Sprintf("node%d", i))
	}
	srv, err := server.New(server.Config{
		Network:          c.Net,
		Addr:             c.addrs[i],
		Monitor:          mon,
		ProbeInterval:    c.opts.ProbeInterval,
		ProbeTimeout:     c.opts.ProbeTimeout,
		SendQueueCap:     c.opts.SendQueueCap,
		SlowPolicy:       c.opts.SlowPolicy,
		LogCap:           c.opts.LogCap,
		CoalesceInterval: c.opts.CoalesceInterval,
		SessionTTL:       c.opts.SessionTTL,
		WALDir:           walDir,
		Cluster: &server.ClusterConfig{
			Nodes:             c.addrs,
			Self:              i,
			ReplicationFactor: c.opts.ReplicationFactor,
			// Inter-node traffic originates at the node's own host so
			// per-host link configs apply.
			Network: c.Net.From(netsim.Host(c.addrs[i])),
		},
	})
	if err != nil {
		return nil, nil, err
	}
	srv.Start()
	return srv, mon, nil
}

// RestartNode brings a killed node i back at its original address with
// its original WAL dir — the node-replacement drill. The restarted
// process replays its write-ahead log (if ClusterOptions.WALDir is
// set), resumes at the journalled GSeq/CSeq cursors, and is ready for
// Router.Recover to migrate its partitions home.
func (c *Cluster) RestartNode(i int) error {
	if i < 0 || i >= len(c.Nodes) {
		return fmt.Errorf("core: no node %d", i)
	}
	if c.Nodes[i] != nil {
		c.Nodes[i].Close()
	}
	srv, mon, err := c.startNode(i)
	if err != nil {
		return fmt.Errorf("core: restart node %d: %w", i, err)
	}
	c.Nodes[i] = srv
	c.Monitors[i] = mon
	return nil
}

// NewClient connects a client through the router.
func (c *Cluster) NewClient(name, role string, priority int) (*client.Client, error) {
	return c.NewClientOn("client", name, role, priority)
}

// NewClientOn connects a client through the router from a named
// simulated host, so per-host link configs apply.
func (c *Cluster) NewClientOn(host, name, role string, priority int) (*client.Client, error) {
	cl, err := client.Dial(client.Config{
		Network:  c.Net.From(host),
		Addr:     RouterAddr,
		Name:     name,
		Role:     role,
		Priority: priority,
		Timeout:  c.opts.ClientTimeout,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c.clients = append(c.clients, cl)
	return cl, nil
}

// KillNode abruptly stops node i — the partition-handoff drill: its
// partitions fail over to the ring successor, which restores them from
// the replicated state, and clients converge through the router's
// node_moved push.
func (c *Cluster) KillNode(i int) {
	if i >= 0 && i < len(c.Nodes) && c.Nodes[i] != nil {
		c.Nodes[i].Close()
	}
}

// Close disconnects every client and stops the router and all nodes.
func (c *Cluster) Close() {
	for _, cl := range c.clients {
		cl.Close()
	}
	if c.Router != nil {
		c.Router.Close()
	}
	for _, n := range c.Nodes {
		if n != nil {
			n.Close()
		}
	}
}
