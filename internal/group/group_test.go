package group

import (
	"errors"
	"sync"
	"testing"
)

func reg(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	for _, m := range []Member{
		{ID: "teacher", Name: "Prof. Shih", Role: Chair, Priority: 5},
		{ID: "alice", Name: "Alice", Role: Participant, Priority: 2},
		{ID: "bob", Name: "Bob", Role: Participant, Priority: 2},
		{ID: "carol", Name: "Carol", Role: Participant, Priority: 1},
	} {
		if err := r.Register(m); err != nil {
			t.Fatalf("Register(%s): %v", m.ID, err)
		}
	}
	return r
}

func TestMemberValidate(t *testing.T) {
	good := Member{ID: "x", Role: Participant, Priority: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("good: %v", err)
	}
	for i, m := range []Member{
		{Role: Participant},                  // no ID
		{ID: "x", Role: Role(0)},             // bad role
		{ID: "x", Role: Chair, Priority: -1}, // negative priority
	} {
		if err := m.Validate(); !errors.Is(err, ErrInvalidMember) {
			t.Errorf("bad[%d]: %v", i, err)
		}
	}
}

func TestRegisterDuplicate(t *testing.T) {
	r := reg(t)
	err := r.Register(Member{ID: "alice", Role: Participant})
	if !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v", err)
	}
}

func TestCreateJoinLeave(t *testing.T) {
	r := reg(t)
	if err := r.CreateGroup("class", "teacher"); err != nil {
		t.Fatal(err)
	}
	// Chair joined automatically.
	if !r.IsMember("class", "teacher") {
		t.Error("chair should be a member")
	}
	if chair, _ := r.Chair("class"); chair != "teacher" {
		t.Errorf("chair = %q", chair)
	}
	if err := r.Join("class", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := r.Join("class", "bob"); err != nil {
		t.Fatal(err)
	}
	members, err := r.GroupMembers("class")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 3 || members[0].ID != "alice" || members[2].ID != "teacher" {
		t.Errorf("members = %v", members)
	}
	if err := r.Leave("class", "alice"); err != nil {
		t.Fatal(err)
	}
	if r.IsMember("class", "alice") {
		t.Error("alice left")
	}
	if err := r.Leave("class", "alice"); !errors.Is(err, ErrNotMember) {
		t.Errorf("double leave: %v", err)
	}
}

func TestJoinedGroupsRelation(t *testing.T) {
	r := reg(t)
	_ = r.CreateGroup("class", "teacher")
	_ = r.CreateGroup("breakout", "alice")
	_ = r.Join("class", "alice")
	got := r.JoinedGroups("alice")
	if len(got) != 2 || got[0] != "breakout" || got[1] != "class" {
		t.Errorf("JoinedGroups = %v", got)
	}
	if got := r.JoinedGroups("carol"); len(got) != 0 {
		t.Errorf("carol joined nothing: %v", got)
	}
}

func TestCreateGroupErrors(t *testing.T) {
	r := reg(t)
	if err := r.CreateGroup("g", "ghost"); !errors.Is(err, ErrUnknownMember) {
		t.Errorf("unknown chair: %v", err)
	}
	_ = r.CreateGroup("g", "teacher")
	if err := r.CreateGroup("g", "alice"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate group: %v", err)
	}
	if err := r.Join("nope", "alice"); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("unknown group: %v", err)
	}
	if err := r.Join("g", "ghost"); !errors.Is(err, ErrUnknownMember) {
		t.Errorf("unknown member: %v", err)
	}
}

func TestDeleteGroupCleansJoined(t *testing.T) {
	r := reg(t)
	_ = r.CreateGroup("g", "teacher")
	_ = r.Join("g", "alice")
	if err := r.DeleteGroup("g"); err != nil {
		t.Fatal(err)
	}
	if len(r.JoinedGroups("alice")) != 0 || len(r.JoinedGroups("teacher")) != 0 {
		t.Error("joined relation not cleaned")
	}
	if err := r.DeleteGroup("g"); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("double delete: %v", err)
	}
}

func TestUnregisterRemovesEverywhere(t *testing.T) {
	r := reg(t)
	_ = r.CreateGroup("g", "teacher")
	_ = r.Join("g", "alice")
	r.Unregister("alice")
	if r.IsMember("g", "alice") {
		t.Error("membership should be gone")
	}
	if _, err := r.Member("alice"); !errors.Is(err, ErrUnknownMember) {
		t.Errorf("directory entry should be gone: %v", err)
	}
}

func TestInvitationLifecycle(t *testing.T) {
	r := reg(t)
	_ = r.CreateGroup("breakout", "alice")
	inv, err := r.Invite("breakout", "alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if inv.Status != Pending {
		t.Errorf("status = %v", inv.Status)
	}
	pend := r.PendingInvites("bob")
	if len(pend) != 1 || pend[0].ID != inv.ID {
		t.Errorf("pending = %v", pend)
	}
	// Only the invitee can respond.
	if _, err := r.Respond(inv.ID, "carol", true); !errors.Is(err, ErrInvite) {
		t.Errorf("wrong responder: %v", err)
	}
	resolved, err := r.Respond(inv.ID, "bob", true)
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Status != Accepted {
		t.Errorf("status = %v", resolved.Status)
	}
	if !r.IsMember("breakout", "bob") {
		t.Error("accept should join")
	}
	// No double response.
	if _, err := r.Respond(inv.ID, "bob", false); !errors.Is(err, ErrInvite) {
		t.Errorf("double respond: %v", err)
	}
}

func TestInvitationDecline(t *testing.T) {
	r := reg(t)
	_ = r.CreateGroup("breakout", "alice")
	inv, _ := r.Invite("breakout", "alice", "carol")
	resolved, err := r.Respond(inv.ID, "carol", false)
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Status != Declined {
		t.Errorf("status = %v", resolved.Status)
	}
	if r.IsMember("breakout", "carol") {
		t.Error("decline must not join")
	}
	if got, _ := r.Invitation(inv.ID); got.Status != Declined {
		t.Errorf("stored status = %v", got.Status)
	}
}

func TestInviteErrors(t *testing.T) {
	r := reg(t)
	_ = r.CreateGroup("g", "teacher")
	if _, err := r.Invite("nope", "teacher", "alice"); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("unknown group: %v", err)
	}
	if _, err := r.Invite("g", "alice", "bob"); !errors.Is(err, ErrNotMember) {
		t.Errorf("non-member inviter: %v", err)
	}
	if _, err := r.Invite("g", "teacher", "ghost"); !errors.Is(err, ErrUnknownMember) {
		t.Errorf("unknown invitee: %v", err)
	}
	_ = r.Join("g", "alice")
	if _, err := r.Invite("g", "teacher", "alice"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("already member: %v", err)
	}
	if _, err := r.Respond(999, "alice", true); !errors.Is(err, ErrInvite) {
		t.Errorf("unknown invite: %v", err)
	}
}

func TestConcurrentJoins(t *testing.T) {
	r := reg(t)
	_ = r.CreateGroup("g", "teacher")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = r.Join("g", "alice")
				_ = r.Leave("g", "alice")
			}
		}()
	}
	wg.Wait()
	// Must end in a consistent state (member or not, but not corrupted).
	_ = r.IsMember("g", "alice")
	if !r.IsMember("g", "teacher") {
		t.Error("teacher membership corrupted")
	}
}

func TestEnumStrings(t *testing.T) {
	if Participant.String() != "participant" || Chair.String() != "chair" {
		t.Error("role strings")
	}
	if Pending.String() != "pending" || Accepted.String() != "accepted" || Declined.String() != "declined" {
		t.Error("status strings")
	}
	if Role(9).String() == "" || InviteStatus(9).String() == "" {
		t.Error("unknown enums should render")
	}
}

func TestMembersDirectory(t *testing.T) {
	r := reg(t)
	all := r.Members()
	if len(all) != 4 || all[0].ID != "alice" || all[3].ID != "teacher" {
		t.Errorf("Members = %v", all)
	}
	m, err := r.Member("bob")
	if err != nil || m.Name != "Bob" {
		t.Errorf("Member(bob) = %v, %v", m, err)
	}
}
