// Package group implements the DMPS server's group administration: the
// Member / Group / Member-Set structures of the paper's Z specification,
// the Joined-Groups relation, session chairs, and the invitation protocol
// of the Group Discussion floor mode ("a user can create a new group to
// invite others... user B can make a decision to accept or not; if yes,
// user B will be chosen as listen group of user A, and user A will be the
// session chair in his small group").
package group

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"dmps/internal/shard"
)

// MemberID identifies a participant.
type MemberID string

// Role distinguishes the session chair (the teacher in the distance-
// learning scenario) from ordinary participants.
type Role int

const (
	// Participant is an ordinary member (a student).
	Participant Role = iota + 1
	// Chair is a session chair (the teacher, or a sub-group creator).
	Chair
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Participant:
		return "participant"
	case Chair:
		return "chair"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Member is one participant. Priority follows the Z spec's INTEGER
// priority; the token-based floor modes require Priority ≥ 2.
type Member struct {
	ID       MemberID
	Name     string
	Role     Role
	Priority int
}

// Validate checks structural validity.
func (m Member) Validate() error {
	if m.ID == "" {
		return fmt.Errorf("%w: empty member id", ErrInvalidMember)
	}
	if m.Role != Participant && m.Role != Chair {
		return fmt.Errorf("%w: bad role %d", ErrInvalidMember, int(m.Role))
	}
	if m.Priority < 0 {
		return fmt.Errorf("%w: negative priority", ErrInvalidMember)
	}
	return nil
}

// Registry errors.
var (
	// ErrInvalidMember is returned for structurally invalid members.
	ErrInvalidMember = errors.New("group: invalid member")
	// ErrUnknownMember is returned when a member ID is not registered.
	ErrUnknownMember = errors.New("group: unknown member")
	// ErrUnknownGroup is returned when a group ID does not exist.
	ErrUnknownGroup = errors.New("group: unknown group")
	// ErrDuplicate is returned when creating an existing group or
	// registering an existing member.
	ErrDuplicate = errors.New("group: already exists")
	// ErrNotMember is returned when an operation requires membership the
	// subject does not have.
	ErrNotMember = errors.New("group: not a member")
	// ErrInvite is returned for invalid invitation transitions.
	ErrInvite = errors.New("group: invalid invitation")
)

// InviteStatus is an invitation's lifecycle state.
type InviteStatus int

const (
	// Pending means the invitee has not answered.
	Pending InviteStatus = iota + 1
	// Accepted means the invitee joined the group.
	Accepted
	// Declined means the invitee refused.
	Declined
)

// String implements fmt.Stringer.
func (s InviteStatus) String() string {
	switch s {
	case Pending:
		return "pending"
	case Accepted:
		return "accepted"
	case Declined:
		return "declined"
	default:
		return fmt.Sprintf("InviteStatus(%d)", int(s))
	}
}

// Invitation is one pending or resolved invitation.
type Invitation struct {
	ID     int64
	Group  string
	From   MemberID
	To     MemberID
	Status InviteStatus
}

// Registry is the server's group administration: the directory of members,
// the Group-Set, the Joined-Groups relation, and invitations. It is safe
// for concurrent use.
//
// Locking is split for scale: the member directory, the Joined-Groups
// relation and invitations live under one RWMutex (dirMu), while each
// group's membership set carries its own RWMutex behind a lock-striped
// map. Every mutating operation takes dirMu, so cross-structure updates
// (join touches both the group set and Joined-Groups) stay atomic; the
// hot read paths — IsMember, Chair, GroupMembers, run on every
// arbitration and broadcast — take only the target group's lock and
// therefore never contend across groups. Lock order is dirMu before a
// group lock; a group lock is never held while acquiring dirMu.
type Registry struct {
	dirMu      sync.RWMutex
	members    map[MemberID]Member
	joined     map[MemberID]map[string]bool
	invites    map[int64]*Invitation
	nextInvite int64

	groups *shard.Map[*groupState]
}

type groupState struct {
	mu      sync.RWMutex
	id      string
	chair   MemberID
	members map[MemberID]bool
	// idsSnap caches the sorted member-ID list between membership
	// changes; mutators nil it under mu. The broadcast fan-out reads it
	// on every logged append, so the snapshot trades one rebuild per
	// membership change for zero allocation per broadcast. The slice is
	// shared: readers must never mutate it.
	idsSnap []MemberID
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		members: make(map[MemberID]Member),
		groups:  shard.NewMap[*groupState](),
		joined:  make(map[MemberID]map[string]bool),
		invites: make(map[int64]*Invitation),
	}
}

// SanitizeName lowercases a display name and folds everything outside
// [a-z0-9] to '-' ("member" when nothing survives). It is the one
// normalization shared by member-ID minting at admission and the
// cluster's home-node placement hash: both must see the same string or
// a member's ID prefix would hash to a different node than their hello
// did.
func SanitizeName(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	name = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, name)
	if name == "" {
		name = "member"
	}
	return name
}

// Register adds a member to the directory.
func (r *Registry) Register(m Member) error {
	if err := m.Validate(); err != nil {
		return err
	}
	r.dirMu.Lock()
	defer r.dirMu.Unlock()
	if _, exists := r.members[m.ID]; exists {
		return fmt.Errorf("%w: member %q", ErrDuplicate, m.ID)
	}
	r.members[m.ID] = m
	r.joined[m.ID] = make(map[string]bool)
	return nil
}

// EnsureMember upserts a directory entry with a caller-chosen ID — the
// cluster's shadow registration: a group-partition node serving a
// member whose home (and ID mint) is another node installs the record
// the home node assigned, idempotently. An existing entry is refreshed
// in place (role or priority may have been stale) without touching the
// member's group memberships.
func (r *Registry) EnsureMember(m Member) error {
	if err := m.Validate(); err != nil {
		return err
	}
	r.dirMu.Lock()
	defer r.dirMu.Unlock()
	if _, exists := r.members[m.ID]; !exists {
		r.joined[m.ID] = make(map[string]bool)
	}
	r.members[m.ID] = m
	return nil
}

// Unregister removes a member everywhere (their groups included).
func (r *Registry) Unregister(id MemberID) {
	r.dirMu.Lock()
	defer r.dirMu.Unlock()
	for gid := range r.joined[id] {
		if g, ok := r.groups.Get(gid); ok {
			g.mu.Lock()
			delete(g.members, id)
			g.idsSnap = nil
			g.mu.Unlock()
		}
	}
	delete(r.joined, id)
	delete(r.members, id)
}

// Member returns the directory entry.
func (r *Registry) Member(id MemberID) (Member, error) {
	r.dirMu.RLock()
	defer r.dirMu.RUnlock()
	m, ok := r.members[id]
	if !ok {
		return Member{}, fmt.Errorf("%w: %q", ErrUnknownMember, id)
	}
	return m, nil
}

// Members lists the directory in ID order.
func (r *Registry) Members() []Member {
	r.dirMu.RLock()
	defer r.dirMu.RUnlock()
	out := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CreateGroup creates a group chaired by the given member, who joins
// automatically (the paper's sub-group creator becomes its session chair).
func (r *Registry) CreateGroup(id string, chair MemberID) error {
	r.dirMu.Lock()
	defer r.dirMu.Unlock()
	if _, ok := r.members[chair]; !ok {
		return fmt.Errorf("%w: chair %q", ErrUnknownMember, chair)
	}
	g := &groupState{id: id, chair: chair, members: map[MemberID]bool{chair: true}}
	if !r.groups.SetIfAbsent(id, g) {
		return fmt.Errorf("%w: group %q", ErrDuplicate, id)
	}
	r.joined[chair][id] = true
	return nil
}

// DeleteGroup removes a group and all memberships in it.
func (r *Registry) DeleteGroup(id string) error {
	r.dirMu.Lock()
	defer r.dirMu.Unlock()
	g, ok := r.groups.Get(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownGroup, id)
	}
	g.mu.Lock()
	for m := range g.members {
		delete(r.joined[m], id)
	}
	g.members = make(map[MemberID]bool)
	g.idsSnap = nil
	g.mu.Unlock()
	r.groups.Delete(id)
	return nil
}

// Join adds a member to a group.
func (r *Registry) Join(groupID string, member MemberID) error {
	r.dirMu.Lock()
	defer r.dirMu.Unlock()
	return r.joinLocked(groupID, member)
}

// joinLocked requires dirMu held for writing.
func (r *Registry) joinLocked(groupID string, member MemberID) error {
	g, ok := r.groups.Get(groupID)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownGroup, groupID)
	}
	if _, ok := r.members[member]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMember, member)
	}
	g.mu.Lock()
	g.members[member] = true
	g.idsSnap = nil
	g.mu.Unlock()
	r.joined[member][groupID] = true
	return nil
}

// Leave removes a member from a group. The chair leaving does not dissolve
// the group; the server may later re-chair or delete it.
func (r *Registry) Leave(groupID string, member MemberID) error {
	r.dirMu.Lock()
	defer r.dirMu.Unlock()
	g, ok := r.groups.Get(groupID)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownGroup, groupID)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.members[member] {
		return fmt.Errorf("%w: %q in %q", ErrNotMember, member, groupID)
	}
	delete(g.members, member)
	g.idsSnap = nil
	delete(r.joined[member], groupID)
	return nil
}

// IsMember reports the Joined-Groups test of the Z spec:
// G ∈ Joined-Groups(M). It is the hottest registry read (every
// arbitration and board post runs it) and takes only the group's own
// read lock.
func (r *Registry) IsMember(groupID string, member MemberID) bool {
	g, ok := r.groups.Get(groupID)
	if !ok {
		return false
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.members[member]
}

// JoinedGroups returns the groups a member has joined, sorted.
func (r *Registry) JoinedGroups(member MemberID) []string {
	r.dirMu.RLock()
	defer r.dirMu.RUnlock()
	var out []string
	for gid := range r.joined[member] {
		out = append(out, gid)
	}
	sort.Strings(out)
	return out
}

// GroupMembers returns a group's members, sorted by ID.
func (r *Registry) GroupMembers(groupID string) ([]Member, error) {
	g, ok := r.groups.Get(groupID)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGroup, groupID)
	}
	g.mu.RLock()
	ids := make([]MemberID, 0, len(g.members))
	for id := range g.members {
		ids = append(ids, id)
	}
	g.mu.RUnlock()
	// Resolve against the directory after releasing the group lock (lock
	// order forbids holding it while taking dirMu). A member unregistered
	// between the two snapshots is simply skipped.
	r.dirMu.RLock()
	out := make([]Member, 0, len(ids))
	for _, id := range ids {
		if m, ok := r.members[id]; ok {
			out = append(out, m)
		}
	}
	r.dirMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// GroupMemberIDs returns the group's member IDs, sorted. The slice is
// a shared snapshot rebuilt only when membership changes — the
// broadcast fan-out calls this once per logged append, so the steady
// state allocates nothing. Callers must treat it as immutable.
func (r *Registry) GroupMemberIDs(groupID string) ([]MemberID, error) {
	g, ok := r.groups.Get(groupID)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGroup, groupID)
	}
	g.mu.RLock()
	snap := g.idsSnap
	g.mu.RUnlock()
	if snap != nil {
		return snap, nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.idsSnap == nil {
		ids := make([]MemberID, 0, len(g.members))
		for id := range g.members {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		g.idsSnap = ids
	}
	return g.idsSnap, nil
}

// Chair returns the group's session chair.
func (r *Registry) Chair(groupID string) (MemberID, error) {
	g, ok := r.groups.Get(groupID)
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownGroup, groupID)
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.chair, nil
}

// Groups lists all group IDs, sorted.
func (r *Registry) Groups() []string {
	out := r.groups.Keys()
	sort.Strings(out)
	return out
}

// Invite creates an invitation from a group member to a directory member.
// The inviter must belong to the group.
func (r *Registry) Invite(groupID string, from, to MemberID) (Invitation, error) {
	return r.invite(groupID, from, to, true)
}

// InviteRemote creates an invitation to a member this registry does not
// hold a directory row for — the cluster's cross-partition path, where
// the invitee's directory lives on their home node. Existence is
// validated there, at delivery: the group owner must not fabricate a
// directory entry (it would be unreapable — no session ever refreshes
// it), and must not reject a member it simply cannot see.
func (r *Registry) InviteRemote(groupID string, from, to MemberID) (Invitation, error) {
	return r.invite(groupID, from, to, false)
}

func (r *Registry) invite(groupID string, from, to MemberID, checkInvitee bool) (Invitation, error) {
	r.dirMu.Lock()
	defer r.dirMu.Unlock()
	g, ok := r.groups.Get(groupID)
	if !ok {
		return Invitation{}, fmt.Errorf("%w: %q", ErrUnknownGroup, groupID)
	}
	g.mu.RLock()
	fromIn, toIn := g.members[from], g.members[to]
	g.mu.RUnlock()
	if !fromIn {
		return Invitation{}, fmt.Errorf("%w: inviter %q not in %q", ErrNotMember, from, groupID)
	}
	if _, ok := r.members[to]; !ok && checkInvitee {
		return Invitation{}, fmt.Errorf("%w: invitee %q", ErrUnknownMember, to)
	}
	if toIn {
		return Invitation{}, fmt.Errorf("%w: %q already in %q", ErrDuplicate, to, groupID)
	}
	r.nextInvite++
	inv := &Invitation{ID: r.nextInvite, Group: groupID, From: from, To: to, Status: Pending}
	r.invites[inv.ID] = inv
	return *inv, nil
}

// Respond resolves an invitation; accepting joins the invitee to the
// group. Only the invitee may respond, and only once.
func (r *Registry) Respond(inviteID int64, responder MemberID, accept bool) (Invitation, error) {
	r.dirMu.Lock()
	defer r.dirMu.Unlock()
	inv, ok := r.invites[inviteID]
	if !ok {
		return Invitation{}, fmt.Errorf("%w: id %d", ErrInvite, inviteID)
	}
	if inv.To != responder {
		return Invitation{}, fmt.Errorf("%w: %q is not the invitee", ErrInvite, responder)
	}
	if inv.Status != Pending {
		return Invitation{}, fmt.Errorf("%w: already %v", ErrInvite, inv.Status)
	}
	if !accept {
		inv.Status = Declined
		return *inv, nil
	}
	if err := r.joinLocked(inv.Group, inv.To); err != nil {
		return Invitation{}, err
	}
	inv.Status = Accepted
	return *inv, nil
}

// Invitation returns the current state of an invitation.
func (r *Registry) Invitation(id int64) (Invitation, error) {
	r.dirMu.RLock()
	defer r.dirMu.RUnlock()
	inv, ok := r.invites[id]
	if !ok {
		return Invitation{}, fmt.Errorf("%w: id %d", ErrInvite, id)
	}
	return *inv, nil
}

// PendingInvites lists pending invitations addressed to a member, sorted
// by ID.
func (r *Registry) PendingInvites(to MemberID) []Invitation {
	r.dirMu.RLock()
	defer r.dirMu.RUnlock()
	var out []Invitation
	for _, inv := range r.invites {
		if inv.To == to && inv.Status == Pending {
			out = append(out, *inv)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
