package workload

import (
	"testing"
	"time"
)

func TestArrivalsAscendingAndSeeded(t *testing.T) {
	a := Arrivals(1, 100, 10*time.Millisecond)
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("not ascending at %d", i)
		}
	}
	b := Arrivals(1, 100, 10*time.Millisecond)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
	c := Arrivals(2, 100, 10*time.Millisecond)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestArrivalsMeanRoughlyRight(t *testing.T) {
	a := Arrivals(7, 2000, 10*time.Millisecond)
	mean := a[len(a)-1] / time.Duration(len(a))
	if mean < 8*time.Millisecond || mean > 12*time.Millisecond {
		t.Errorf("empirical mean = %v, want ≈10ms", mean)
	}
}

func TestTalkSpurtsPositive(t *testing.T) {
	spurts := TalkSpurts(3, 50, 20*time.Millisecond, 5*time.Millisecond)
	if len(spurts) != 50 {
		t.Fatalf("len = %d", len(spurts))
	}
	for i, s := range spurts {
		if s.Hold <= 0 || s.Gap <= 0 {
			t.Fatalf("spurt %d non-positive: %+v", i, s)
		}
	}
}

func TestRoundRobinPasses(t *testing.T) {
	got := RoundRobinPasses([]string{"a", "b", "c"}, 7)
	want := []string{"a", "b", "c", "a", "b", "c", "a"}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %s", i, got[i])
		}
	}
	if RoundRobinPasses(nil, 5) != nil {
		t.Error("empty members")
	}
	if RoundRobinPasses([]string{"a"}, 0) != nil {
		t.Error("zero count")
	}
}

func TestFanout(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	groups := Fanout(members, 2)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 3 || len(groups[1]) != 2 {
		t.Errorf("sizes = %d/%d", len(groups[0]), len(groups[1]))
	}
	// Every member appears exactly once.
	seen := make(map[string]int)
	for _, g := range groups {
		for _, m := range g {
			seen[m]++
		}
	}
	for _, m := range members {
		if seen[m] != 1 {
			t.Errorf("%s appears %d times", m, seen[m])
		}
	}
	// k > len: clamp.
	if got := Fanout([]string{"a"}, 5); len(got) != 1 {
		t.Errorf("clamped fanout = %v", got)
	}
	if Fanout(nil, 3) != nil || Fanout(members, 0) != nil {
		t.Error("degenerate fanouts")
	}
}

// TestShardArrivalsPartition pins the multi-process determinism
// contract: for any shard count, the union of all shards' slots is
// exactly the single-process schedule (same global indices, same
// offsets), and the shares are pairwise disjoint — so N generator
// processes with the same seed drive one global op sequence.
func TestShardArrivalsPartition(t *testing.T) {
	const n = 41 // deliberately not a multiple of the shard count
	full := Arrivals(99, n, 3*time.Millisecond)
	for _, shards := range []int{1, 4} {
		seen := make(map[int]time.Duration)
		for s := 0; s < shards; s++ {
			for _, slot := range ShardArrivals(99, n, 3*time.Millisecond, shards, s) {
				if _, dup := seen[slot.Index]; dup {
					t.Fatalf("shards=%d: index %d assigned to two shards", shards, slot.Index)
				}
				seen[slot.Index] = slot.At
			}
		}
		if len(seen) != n {
			t.Fatalf("shards=%d: partition covers %d of %d ops", shards, len(seen), n)
		}
		for i, at := range full {
			if seen[i] != at {
				t.Fatalf("shards=%d: op %d fires at %v, single-process schedule says %v", shards, i, seen[i], at)
			}
		}
	}
	// shards=1 is literally the whole schedule in order.
	one := ShardArrivals(99, n, 3*time.Millisecond, 1, 0)
	if len(one) != n {
		t.Fatalf("shards=1 got %d slots, want %d", len(one), n)
	}
	for i, slot := range one {
		if slot.Index != i || slot.At != full[i] {
			t.Fatalf("shards=1 slot %d = %+v, want {%d %v}", i, slot, i, full[i])
		}
	}
}

// TestShardArrivalsBounds pins the degenerate inputs: an out-of-range
// shard gets no work, and shards<1 behaves as a single shard.
func TestShardArrivalsBounds(t *testing.T) {
	if got := ShardArrivals(7, 10, time.Millisecond, 4, 4); got != nil {
		t.Fatalf("shard == shards got %d slots, want none", len(got))
	}
	if got := ShardArrivals(7, 10, time.Millisecond, 4, -1); got != nil {
		t.Fatalf("negative shard got %d slots, want none", len(got))
	}
	if got := ShardArrivals(7, 10, time.Millisecond, 0, 0); len(got) != 10 {
		t.Fatalf("shards=0 got %d slots, want the full schedule", len(got))
	}
}
