package workload

import (
	"testing"
	"time"
)

func TestArrivalsAscendingAndSeeded(t *testing.T) {
	a := Arrivals(1, 100, 10*time.Millisecond)
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("not ascending at %d", i)
		}
	}
	b := Arrivals(1, 100, 10*time.Millisecond)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
	c := Arrivals(2, 100, 10*time.Millisecond)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestArrivalsMeanRoughlyRight(t *testing.T) {
	a := Arrivals(7, 2000, 10*time.Millisecond)
	mean := a[len(a)-1] / time.Duration(len(a))
	if mean < 8*time.Millisecond || mean > 12*time.Millisecond {
		t.Errorf("empirical mean = %v, want ≈10ms", mean)
	}
}

func TestTalkSpurtsPositive(t *testing.T) {
	spurts := TalkSpurts(3, 50, 20*time.Millisecond, 5*time.Millisecond)
	if len(spurts) != 50 {
		t.Fatalf("len = %d", len(spurts))
	}
	for i, s := range spurts {
		if s.Hold <= 0 || s.Gap <= 0 {
			t.Fatalf("spurt %d non-positive: %+v", i, s)
		}
	}
}

func TestRoundRobinPasses(t *testing.T) {
	got := RoundRobinPasses([]string{"a", "b", "c"}, 7)
	want := []string{"a", "b", "c", "a", "b", "c", "a"}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %s", i, got[i])
		}
	}
	if RoundRobinPasses(nil, 5) != nil {
		t.Error("empty members")
	}
	if RoundRobinPasses([]string{"a"}, 0) != nil {
		t.Error("zero count")
	}
}

func TestFanout(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	groups := Fanout(members, 2)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 3 || len(groups[1]) != 2 {
		t.Errorf("sizes = %d/%d", len(groups[0]), len(groups[1]))
	}
	// Every member appears exactly once.
	seen := make(map[string]int)
	for _, g := range groups {
		for _, m := range g {
			seen[m]++
		}
	}
	for _, m := range members {
		if seen[m] != 1 {
			t.Errorf("%s appears %d times", m, seen[m])
		}
	}
	// k > len: clamp.
	if got := Fanout([]string{"a"}, 5); len(got) != 1 {
		t.Errorf("clamped fanout = %v", got)
	}
	if Fanout(nil, 3) != nil || Fanout(members, 0) != nil {
		t.Error("degenerate fanouts")
	}
}
