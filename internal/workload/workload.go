// Package workload generates the scripted participant behaviour the
// experiments drive the floor control mechanism with: floor-request
// arrival processes, talk-spurt (hold/gap) sequences, and invitation
// fan-outs. All generators are seeded and deterministic (see the
// DESIGN.md substitution table: scripted behaviours stand in for human
// participants).
package workload

import (
	"math/rand"
	"time"
)

// Arrivals generates n request inter-arrival offsets with exponential
// spacing around mean (a Poisson arrival process), returning absolute
// offsets from zero, ascending.
func Arrivals(seed int64, n int, mean time.Duration) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, 0, n)
	var at time.Duration
	for i := 0; i < n; i++ {
		gap := time.Duration(rng.ExpFloat64() * float64(mean))
		at += gap
		out = append(out, at)
	}
	return out
}

// Slot is one operation of a sharded arrival schedule: the operation's
// index in the GLOBAL schedule plus its firing offset. Keeping the
// global index lets a generator shard decide what operation n means
// (which member acts, whether it is a probe) identically to a
// single-process run.
type Slot struct {
	// Index is the operation's position in the full n-op schedule.
	Index int
	// At is the operation's absolute offset from the schedule's start.
	At time.Duration
}

// ShardArrivals deterministically splits the n-op Arrivals schedule
// across shards generator processes and returns shard's slice: the
// slots whose global index ≡ shard (mod shards), offsets identical to
// the single-process schedule. Every shard derives the same global
// sequence from the same seed, the union of all shards is exactly
// Arrivals(seed, n, mean), and the shares are pairwise disjoint — the
// property that makes an N-process swarm one workload rather than N.
// A shard outside [0, shards) gets nothing; shards < 1 is treated as 1.
func ShardArrivals(seed int64, n int, mean time.Duration, shards, shard int) []Slot {
	if shards < 1 {
		shards = 1
	}
	if shard < 0 || shard >= shards {
		return nil
	}
	offsets := Arrivals(seed, n, mean)
	out := make([]Slot, 0, (n+shards-1)/shards)
	for i := shard; i < len(offsets); i += shards {
		out = append(out, Slot{Index: i, At: offsets[i]})
	}
	return out
}

// Spurt is one hold/release cycle of a speaker.
type Spurt struct {
	// Hold is how long the speaker keeps the floor.
	Hold time.Duration
	// Gap is the silence before the next request.
	Gap time.Duration
}

// TalkSpurts generates n exponential hold/gap cycles — the classic
// conversational model used for floor-holding time in the Equal Control
// experiments.
func TalkSpurts(seed int64, n int, meanHold, meanGap time.Duration) []Spurt {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Spurt, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Spurt{
			Hold: 1 + time.Duration(rng.ExpFloat64()*float64(meanHold)),
			Gap:  1 + time.Duration(rng.ExpFloat64()*float64(meanGap)),
		})
	}
	return out
}

// RoundRobinPasses produces the token-passing order for a fair
// equal-control session: each member passes to the next, count times in
// total.
func RoundRobinPasses(members []string, count int) []string {
	if len(members) == 0 || count <= 0 {
		return nil
	}
	out := make([]string, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, members[i%len(members)])
	}
	return out
}

// Fanout builds the invitation lists for k sub-groups over the member
// pool: members are dealt round-robin so sub-groups are near-equal sized.
// The first member of each sub-group is its creator.
func Fanout(members []string, k int) [][]string {
	if k <= 0 || len(members) == 0 {
		return nil
	}
	if k > len(members) {
		k = len(members)
	}
	out := make([][]string, k)
	for i, m := range members {
		out[i%k] = append(out[i%k], m)
	}
	return out
}
