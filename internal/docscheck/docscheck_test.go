// Package docscheck is the repository's doc-comment lint: an AST walk
// (standard library only, so it runs as a plain test in CI) that fails
// when an exported symbol of the public surface lacks a godoc comment.
// It covers the facade package and the packages whose types the facade
// re-exports — the API a user of this module actually reads.
package docscheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// surface lists the packages whose exported symbols must be documented:
// the facade and everything it re-exports types from.
var surface = []string{
	"../..", // package dmps (the facade)
	"../client",
	"../server",
	"../cluster",
	"../floor",
	"../protocol",
	"../grouplog",
	"../group",
	"../core",
	"../resource",
	"../whiteboard",
	"../metrics",
	"../swarm",
}

// TestExportedSymbolsDocumented walks every non-test file of the
// surface packages and reports exported declarations — functions,
// methods, types, consts, vars — that carry no doc comment. A grouped
// declaration is covered by its block comment; individual specs inside
// a documented block need none of their own.
func TestExportedSymbolsDocumented(t *testing.T) {
	for _, dir := range surface {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for path, file := range pkg.Files {
				checkFile(t, fset, path, file)
			}
		}
	}
}

func checkFile(t *testing.T, fset *token.FileSet, path string, file *ast.File) {
	t.Helper()
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		t.Errorf("%s:%d: exported %s has no doc comment", p.Filename, p.Line, what)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) > 0 {
				recv := receiverName(d.Recv.List[0].Type)
				if recv != "" && !ast.IsExported(recv) {
					continue // method on an unexported type
				}
				name = recv + "." + name
			}
			report(d.Pos(), "func "+name)
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			blockDocumented := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !blockDocumented && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					if blockDocumented || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(s.Pos(), "symbol "+n.Name)
							break
						}
					}
				}
			}
		}
	}
}

// receiverName unwraps a method receiver type expression to its named
// type.
func receiverName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.StarExpr:
		return receiverName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return receiverName(e.X)
	}
	return ""
}
