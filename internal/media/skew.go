package media

import (
	"sort"
	"time"
)

// PlayoutRecord is one unit's actual playout instant at a site.
type PlayoutRecord struct {
	Site      string
	ObjectID  string
	Seq       int
	MediaTime time.Duration
	PlayedAt  time.Time
}

// SkewMeter collects playout records across sites/streams and computes
// inter-media and inter-site synchronization skew — the quantity the
// paper's global clock is meant to bound. It is not safe for concurrent
// use; each experiment drives it from its event loop.
type SkewMeter struct {
	records []PlayoutRecord
}

// Add records one playout observation.
func (m *SkewMeter) Add(r PlayoutRecord) { m.records = append(m.records, r) }

// Len reports the number of observations.
func (m *SkewMeter) Len() int { return len(m.records) }

// MaxInterSiteSkew returns, over all (object, seq) unit identities played
// at 2+ sites, the maximum spread between the earliest and latest playout
// instants. This is the distributed-synchronization error: with a perfect
// global clock every site plays the same unit at the same global instant.
func (m *SkewMeter) MaxInterSiteSkew() time.Duration {
	type key struct {
		obj string
		seq int
	}
	groups := make(map[key][]time.Time)
	for _, r := range m.records {
		k := key{r.ObjectID, r.Seq}
		groups[k] = append(groups[k], r.PlayedAt)
	}
	var max time.Duration
	for _, times := range groups {
		if len(times) < 2 {
			continue
		}
		lo, hi := times[0], times[0]
		for _, t := range times[1:] {
			if t.Before(lo) {
				lo = t
			}
			if t.After(hi) {
				hi = t
			}
		}
		if d := hi.Sub(lo); d > max {
			max = d
		}
	}
	return max
}

// MaxInterMediaSkew returns, per site, the worst misalignment between two
// streams: for every pair of records at the same site with equal
// MediaTime, the playout-instant difference. This is the lip-sync error
// within one site.
func (m *SkewMeter) MaxInterMediaSkew() time.Duration {
	type key struct {
		site string
		mt   time.Duration
	}
	groups := make(map[key][]time.Time)
	for _, r := range m.records {
		k := key{r.Site, r.MediaTime}
		groups[k] = append(groups[k], r.PlayedAt)
	}
	var max time.Duration
	for _, times := range groups {
		if len(times) < 2 {
			continue
		}
		lo, hi := times[0], times[0]
		for _, t := range times[1:] {
			if t.Before(lo) {
				lo = t
			}
			if t.After(hi) {
				hi = t
			}
		}
		if d := hi.Sub(lo); d > max {
			max = d
		}
	}
	return max
}

// JitterP95 returns the 95th percentile of successive inter-playout gaps'
// deviation from the nominal unit interval, per object, worst over
// objects and sites. Smooth playout has near-zero jitter.
func (m *SkewMeter) JitterP95(nominal time.Duration) time.Duration {
	type key struct {
		site string
		obj  string
	}
	bySeq := make(map[key][]PlayoutRecord)
	for _, r := range m.records {
		k := key{r.Site, r.ObjectID}
		bySeq[k] = append(bySeq[k], r)
	}
	var deviations []time.Duration
	for _, recs := range bySeq {
		sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
		for i := 1; i < len(recs); i++ {
			gap := recs[i].PlayedAt.Sub(recs[i-1].PlayedAt)
			dev := gap - nominal
			if dev < 0 {
				dev = -dev
			}
			deviations = append(deviations, dev)
		}
	}
	if len(deviations) == 0 {
		return 0
	}
	sort.Slice(deviations, func(i, j int) bool { return deviations[i] < deviations[j] })
	idx := int(float64(len(deviations))*0.95) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(deviations) {
		idx = len(deviations) - 1
	}
	return deviations[idx]
}
