package media

import (
	"errors"
	"testing"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Text: "text", Image: "image", Audio: "audio",
		Video: "video", Annotation: "annotation", Control: "control",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
		if !k.Valid() {
			t.Errorf("%v should be valid", k)
		}
	}
	if Kind(0).Valid() || Kind(99).Valid() {
		t.Error("zero/unknown kinds must be invalid")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown String = %q", Kind(99).String())
	}
}

func TestKindContinuous(t *testing.T) {
	for _, k := range []Kind{Audio, Video, Annotation} {
		if !k.Continuous() {
			t.Errorf("%v should be continuous", k)
		}
	}
	for _, k := range []Kind{Text, Image, Control} {
		if k.Continuous() {
			t.Errorf("%v should be discrete", k)
		}
	}
}

func TestObjectValidate(t *testing.T) {
	good := Object{ID: "v1", Kind: Video, Duration: 10 * time.Second, Rate: 30}
	if err := good.Validate(); err != nil {
		t.Errorf("valid object rejected: %v", err)
	}
	bad := []Object{
		{Kind: Video, Duration: time.Second, Rate: 30},          // no ID
		{ID: "x", Kind: Kind(0), Duration: time.Second},         // bad kind
		{ID: "x", Kind: Text, Duration: -time.Second},           // negative duration
		{ID: "x", Kind: Audio, Duration: time.Second, Rate: 0},  // continuous, no rate
		{ID: "x", Kind: Video, Duration: time.Second, Rate: -5}, // negative rate
	}
	for i, o := range bad {
		if err := o.Validate(); !errors.Is(err, ErrInvalidObject) {
			t.Errorf("bad[%d]: err = %v, want ErrInvalidObject", i, err)
		}
	}
}

func TestObjectUnits(t *testing.T) {
	video := Object{ID: "v", Kind: Video, Duration: 2 * time.Second, Rate: 30}
	if got := video.Units(); got != 60 {
		t.Errorf("video units = %d, want 60", got)
	}
	text := Object{ID: "t", Kind: Text, Duration: 5 * time.Second}
	if got := text.Units(); got != 1 {
		t.Errorf("text units = %d, want 1", got)
	}
	tiny := Object{ID: "a", Kind: Audio, Duration: time.Millisecond, Rate: 10}
	if got := tiny.Units(); got != 1 {
		t.Errorf("tiny units = %d, want at least 1", got)
	}
}

func TestObjectUnitInterval(t *testing.T) {
	video := Object{ID: "v", Kind: Video, Duration: time.Second, Rate: 25}
	if got := video.UnitInterval(); got != 40*time.Millisecond {
		t.Errorf("interval = %v, want 40ms", got)
	}
	img := Object{ID: "i", Kind: Image, Duration: 3 * time.Second}
	if got := img.UnitInterval(); got != 3*time.Second {
		t.Errorf("discrete interval = %v", got)
	}
}

func TestSyntheticSourceProducesAll(t *testing.T) {
	obj := Object{ID: "v", Kind: Video, Duration: time.Second, Rate: 10, UnitBytes: 1400}
	src, err := NewSyntheticSource(obj)
	if err != nil {
		t.Fatal(err)
	}
	if src.Remaining() != 10 {
		t.Errorf("Remaining = %d", src.Remaining())
	}
	for i := 0; i < 10; i++ {
		u, err := src.Next()
		if err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if u.Seq != i || u.ObjectID != "v" || u.Kind != Video || u.Bytes != 1400 {
			t.Errorf("unit %d = %+v", i, u)
		}
		if want := time.Duration(i) * 100 * time.Millisecond; u.MediaTime != want {
			t.Errorf("unit %d MediaTime = %v, want %v", i, u.MediaTime, want)
		}
	}
	if _, err := src.Next(); !errors.Is(err, ErrExhausted) {
		t.Errorf("after exhaustion: %v", err)
	}
	src.Reset()
	if src.Remaining() != 10 {
		t.Error("Reset should rewind")
	}
}

func TestSyntheticSourceRejectsInvalid(t *testing.T) {
	if _, err := NewSyntheticSource(Object{}); !errors.Is(err, ErrInvalidObject) {
		t.Errorf("err = %v", err)
	}
}

func TestSkewMeterInterSite(t *testing.T) {
	var m SkewMeter
	t0 := time.Date(2001, 4, 16, 0, 0, 0, 0, time.UTC)
	m.Add(PlayoutRecord{Site: "a", ObjectID: "v", Seq: 0, PlayedAt: t0})
	m.Add(PlayoutRecord{Site: "b", ObjectID: "v", Seq: 0, PlayedAt: t0.Add(30 * time.Millisecond)})
	m.Add(PlayoutRecord{Site: "c", ObjectID: "v", Seq: 0, PlayedAt: t0.Add(10 * time.Millisecond)})
	m.Add(PlayoutRecord{Site: "a", ObjectID: "v", Seq: 1, PlayedAt: t0.Add(100 * time.Millisecond)})
	m.Add(PlayoutRecord{Site: "b", ObjectID: "v", Seq: 1, PlayedAt: t0.Add(105 * time.Millisecond)})
	if got := m.MaxInterSiteSkew(); got != 30*time.Millisecond {
		t.Errorf("inter-site skew = %v, want 30ms", got)
	}
	if m.Len() != 5 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestSkewMeterInterSiteSingleSite(t *testing.T) {
	var m SkewMeter
	t0 := time.Now()
	m.Add(PlayoutRecord{Site: "a", ObjectID: "v", Seq: 0, PlayedAt: t0})
	m.Add(PlayoutRecord{Site: "a", ObjectID: "v", Seq: 1, PlayedAt: t0.Add(time.Second)})
	if got := m.MaxInterSiteSkew(); got != 0 {
		t.Errorf("single site skew = %v, want 0", got)
	}
}

func TestSkewMeterInterMedia(t *testing.T) {
	var m SkewMeter
	t0 := time.Date(2001, 4, 16, 0, 0, 0, 0, time.UTC)
	// Audio and video units with the same media time at the same site,
	// played 15ms apart: lip-sync error.
	m.Add(PlayoutRecord{Site: "a", ObjectID: "aud", MediaTime: time.Second, PlayedAt: t0})
	m.Add(PlayoutRecord{Site: "a", ObjectID: "vid", MediaTime: time.Second, PlayedAt: t0.Add(15 * time.Millisecond)})
	// Different site: must not mix.
	m.Add(PlayoutRecord{Site: "b", ObjectID: "aud", MediaTime: time.Second, PlayedAt: t0.Add(500 * time.Millisecond)})
	if got := m.MaxInterMediaSkew(); got != 15*time.Millisecond {
		t.Errorf("inter-media skew = %v, want 15ms", got)
	}
}

func TestSkewMeterJitter(t *testing.T) {
	var m SkewMeter
	t0 := time.Date(2001, 4, 16, 0, 0, 0, 0, time.UTC)
	nominal := 100 * time.Millisecond
	// Units at 0, 100, 210, 300 ms: one gap deviates by 10ms, one by 10ms.
	at := []time.Duration{0, 100 * time.Millisecond, 210 * time.Millisecond, 300 * time.Millisecond}
	for i, d := range at {
		m.Add(PlayoutRecord{Site: "a", ObjectID: "v", Seq: i, PlayedAt: t0.Add(d)})
	}
	got := m.JitterP95(nominal)
	if got != 10*time.Millisecond {
		t.Errorf("jitter p95 = %v, want 10ms", got)
	}
	var empty SkewMeter
	if empty.JitterP95(nominal) != 0 {
		t.Error("empty jitter should be 0")
	}
}
