// Package media models the multimedia objects a DMPS presentation carries:
// typed objects with playout durations and unit rates, synthetic sources
// standing in for capture devices, and the playout-skew measurements used
// by the synchronization experiments.
package media

import (
	"errors"
	"fmt"
	"time"
)

// Kind classifies a media object.
type Kind int

const (
	// Text is a message-window text object.
	Text Kind = iota + 1
	// Image is a still image (slide).
	Image
	// Audio is a continuous audio stream.
	Audio
	// Video is a continuous video stream.
	Video
	// Annotation is a whiteboard/annotation stroke stream.
	Annotation
	// Control is a control signal (floor grants, clock ticks) carried on
	// media channels.
	Control
)

var kindNames = map[Kind]string{
	Text:       "text",
	Image:      "image",
	Audio:      "audio",
	Video:      "video",
	Annotation: "annotation",
	Control:    "control",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool { _, ok := kindNames[k]; return ok }

// Continuous reports whether the kind is a continuous stream (has a unit
// rate) rather than a discrete object.
func (k Kind) Continuous() bool { return k == Audio || k == Video || k == Annotation }

// Validation errors.
var (
	// ErrInvalidObject is returned for structurally invalid media objects.
	ErrInvalidObject = errors.New("media: invalid object")
	// ErrExhausted is returned by sources that have produced all units.
	ErrExhausted = errors.New("media: source exhausted")
)

// Object is one multimedia object scheduled by a presentation: its
// identity, kind, total playout duration, and (for continuous kinds) the
// unit rate.
type Object struct {
	ID       string
	Kind     Kind
	Name     string
	Duration time.Duration
	// Rate is units per second for continuous kinds; ignored otherwise.
	Rate float64
	// UnitBytes is the nominal payload size of one unit.
	UnitBytes int
}

// Validate checks structural validity.
func (o Object) Validate() error {
	if o.ID == "" {
		return fmt.Errorf("%w: empty id", ErrInvalidObject)
	}
	if !o.Kind.Valid() {
		return fmt.Errorf("%w: bad kind %d", ErrInvalidObject, int(o.Kind))
	}
	if o.Duration < 0 {
		return fmt.Errorf("%w: negative duration %v", ErrInvalidObject, o.Duration)
	}
	if o.Kind.Continuous() && o.Rate <= 0 {
		return fmt.Errorf("%w: continuous kind %v needs positive rate", ErrInvalidObject, o.Kind)
	}
	return nil
}

// Units reports how many units the object comprises: rate×duration for
// continuous kinds, 1 for discrete ones.
func (o Object) Units() int {
	if !o.Kind.Continuous() {
		return 1
	}
	n := int(o.Rate * o.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	return n
}

// UnitInterval is the media-time spacing between consecutive units.
func (o Object) UnitInterval() time.Duration {
	if !o.Kind.Continuous() || o.Rate <= 0 {
		return o.Duration
	}
	return time.Duration(float64(time.Second) / o.Rate)
}

// Unit is one transmissible piece of a media object.
type Unit struct {
	ObjectID string
	Kind     Kind
	Seq      int
	// MediaTime is the unit's presentation timestamp relative to the
	// object's start.
	MediaTime time.Duration
	Bytes     int
}

// Source produces the units of one object in order.
type Source interface {
	// Object describes what this source produces.
	Object() Object
	// Next returns the next unit, or ErrExhausted after the last.
	Next() (Unit, error)
	// Remaining reports how many units are still to come.
	Remaining() int
}

// SyntheticSource generates the declared number of units at the declared
// rate — the stand-in for a capture device or media file (DESIGN.md
// substitution table). It is not safe for concurrent use.
type SyntheticSource struct {
	obj  Object
	next int
	n    int
}

// NewSyntheticSource validates obj and returns a source for it.
func NewSyntheticSource(obj Object) (*SyntheticSource, error) {
	if err := obj.Validate(); err != nil {
		return nil, err
	}
	return &SyntheticSource{obj: obj, n: obj.Units()}, nil
}

// Object implements Source.
func (s *SyntheticSource) Object() Object { return s.obj }

// Remaining implements Source.
func (s *SyntheticSource) Remaining() int { return s.n - s.next }

// Next implements Source.
func (s *SyntheticSource) Next() (Unit, error) {
	if s.next >= s.n {
		return Unit{}, fmt.Errorf("%w: %s after %d units", ErrExhausted, s.obj.ID, s.n)
	}
	u := Unit{
		ObjectID:  s.obj.ID,
		Kind:      s.obj.Kind,
		Seq:       s.next,
		MediaTime: time.Duration(s.next) * s.obj.UnitInterval(),
		Bytes:     s.obj.UnitBytes,
	}
	s.next++
	return u, nil
}

// Reset rewinds the source to the first unit.
func (s *SyntheticSource) Reset() { s.next = 0 }

var _ Source = (*SyntheticSource)(nil)
