// Package xocpn implements the extended Object Composition Petri Net of
// Woo, Qazi & Ghafoor ("A Synchronous Framework for Communication of
// Pre-orchestrated Multimedia Information", IEEE Network 1994): OCPN plus
// channel-setup places that establish network channels, with the required
// QoS, ahead of the media places that use them.
//
// The extension is rendered two ways: (1) a ChannelPlan — the open/close
// timetable with a configurable setup lead, validated against a
// qos.Manager by replaying the plan in time order; and (2) a structural
// petri-net extension in which every object's first synchronization
// transition additionally requires a channel token produced by a setup
// transition, so the analysis tools can prove "no media starts before its
// channel exists".
package xocpn

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dmps/internal/media"
	"dmps/internal/ocpn"
	"dmps/internal/petri"
	"dmps/internal/qos"
)

// ErrPlan is returned when the channel plan cannot be admitted.
var ErrPlan = errors.New("xocpn: channel plan not admissible")

// kindOf converts a stored kind value back to media.Kind.
func kindOf(k int) media.Kind { return media.Kind(k) }

// XNet is an OCPN with channel-setup planning.
type XNet struct {
	// OCPN is the underlying presentation net.
	OCPN *ocpn.Net
	// Lead is how long before each object's start its channel opens.
	Lead time.Duration
}

// Extend wraps an OCPN with a channel-setup lead (negative leads are
// clamped to zero).
func Extend(net *ocpn.Net, lead time.Duration) *XNet {
	if lead < 0 {
		lead = 0
	}
	return &XNet{OCPN: net, Lead: lead}
}

// Plan computes the channel open/close timetable from the derived
// schedule: each object's channel opens Lead before its first segment and
// closes when its last segment ends.
func (x *XNet) Plan() []ChannelLifetime {
	sched := x.OCPN.DeriveSchedule()
	type window struct {
		start time.Duration
		end   time.Duration
		kind  int
	}
	windows := make(map[string]*window)
	for _, p := range x.OCPN.MediaPlaces() {
		segStart := sched.SegmentStart[string(p.ID)]
		segEnd := segStart + p.Duration
		w, ok := windows[p.Object.ID]
		if !ok {
			w = &window{start: segStart, end: segEnd, kind: int(p.Object.Kind)}
			windows[p.Object.ID] = w
			continue
		}
		if segStart < w.start {
			w.start = segStart
		}
		if segEnd > w.end {
			w.end = segEnd
		}
	}
	out := make([]ChannelLifetime, 0, len(windows))
	for id, w := range windows {
		open := w.start - x.Lead
		if open < 0 {
			open = 0
		}
		out = append(out, ChannelLifetime{
			ObjectID: id,
			Kind:     w.kind,
			Open:     open,
			Close:    w.end,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Open != out[j].Open {
			return out[i].Open < out[j].Open
		}
		return out[i].ObjectID < out[j].ObjectID
	})
	return out
}

// ChannelLifetime is one object's channel window.
type ChannelLifetime struct {
	ObjectID string
	Kind     int // media.Kind value
	Open     time.Duration
	Close    time.Duration
}

// AdmitReport summarizes replaying the plan against a qos.Manager.
type AdmitReport struct {
	// PeakChannels is the largest number of simultaneously open channels.
	PeakChannels int
	// PeakBandwidth is the largest committed bandwidth at any instant.
	PeakBandwidth float64
}

// Admit replays the channel plan in time order against mgr, opening and
// closing channels as the timetable dictates. It returns ErrPlan (wrapped
// with the failing object and dimension) if any open is denied — meaning
// the presentation cannot honour its QoS on the given link.
func (x *XNet) Admit(mgr *qos.Manager) (AdmitReport, error) {
	plan := x.Plan()
	type action struct {
		at    time.Duration
		open  bool
		entry ChannelLifetime
	}
	var actions []action
	for _, e := range plan {
		actions = append(actions, action{at: e.Open, open: true, entry: e})
		actions = append(actions, action{at: e.Close, open: false, entry: e})
	}
	sort.SliceStable(actions, func(i, j int) bool {
		if actions[i].at != actions[j].at {
			return actions[i].at < actions[j].at
		}
		// Closes before opens at the same instant, releasing capacity first.
		return !actions[i].open && actions[j].open
	})
	var report AdmitReport
	for _, a := range actions {
		if a.open {
			if _, err := mgr.Open(a.entry.ObjectID, kindOf(a.entry.Kind)); err != nil {
				return report, fmt.Errorf("%w: object %q at %v: %v", ErrPlan, a.entry.ObjectID, a.at, err)
			}
			if mgr.Admitted() > report.PeakChannels {
				report.PeakChannels = mgr.Admitted()
			}
			if bw := mgr.CommittedBandwidth(); bw > report.PeakBandwidth {
				report.PeakBandwidth = bw
			}
		} else {
			mgr.Close(a.entry.ObjectID)
		}
	}
	return report, nil
}

// BuildNet returns the structural XOCPN: a copy of the presentation net
// where each object's starting transition additionally consumes a channel
// token ch_<obj>, produced by a setup transition setup_<obj> from an
// initially-marked ready place net_<obj>. The returned marking includes
// the ready places, so reachability analysis can show the end place is
// reachable only through the setup transitions.
func (x *XNet) BuildNet() (*petri.Net, petri.Marking, error) {
	src := x.OCPN
	n := petri.New()
	// Copy places and transitions.
	for _, p := range src.Base.Places() {
		if err := n.AddPlace(p, src.Base.Place(p).Label); err != nil {
			return nil, nil, fmt.Errorf("xocpn: %w", err)
		}
	}
	for _, t := range src.Base.Transitions() {
		if err := n.AddTransition(t, src.Base.Transition(t).Label); err != nil {
			return nil, nil, fmt.Errorf("xocpn: %w", err)
		}
	}
	for _, t := range src.Base.Transitions() {
		for _, p := range src.Base.Input(t).Places() {
			if err := n.AddInput(p, t, src.Base.Input(t).Count(p)); err != nil {
				return nil, nil, fmt.Errorf("xocpn: %w", err)
			}
		}
		for _, p := range src.Base.Output(t).Places() {
			if err := n.AddOutput(t, p, src.Base.Output(t).Count(p)); err != nil {
				return nil, nil, fmt.Errorf("xocpn: %w", err)
			}
		}
	}
	marking := src.InitialMarking()
	// Channel structure per object: net_obj --setup_obj--> ch_obj --> startT.
	sched := src.DeriveSchedule()
	startTransition := make(map[string]petri.TransitionID)
	for _, p := range src.MediaPlaces() {
		if p.Segment != 0 {
			continue
		}
		at := sched.SegmentStart[string(p.ID)]
		for i, fireAt := range sched.FireAt {
			if fireAt == at {
				startTransition[p.Object.ID] = src.Transitions[i]
				break
			}
		}
	}
	ids := make([]string, 0, len(startTransition))
	for id := range startTransition {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		t := startTransition[id]
		ready := petri.PlaceID("net_" + id)
		ch := petri.PlaceID("ch_" + id)
		setup := petri.TransitionID("setup_" + id)
		if err := n.AddPlace(ready, "network ready"); err != nil {
			return nil, nil, fmt.Errorf("xocpn: %w", err)
		}
		if err := n.AddPlace(ch, "channel "+id); err != nil {
			return nil, nil, fmt.Errorf("xocpn: %w", err)
		}
		if err := n.AddTransition(setup, "open channel "+id); err != nil {
			return nil, nil, fmt.Errorf("xocpn: %w", err)
		}
		if err := n.AddInput(ready, setup, 1); err != nil {
			return nil, nil, fmt.Errorf("xocpn: %w", err)
		}
		if err := n.AddOutput(setup, ch, 1); err != nil {
			return nil, nil, fmt.Errorf("xocpn: %w", err)
		}
		if err := n.AddInput(ch, t, 1); err != nil {
			return nil, nil, fmt.Errorf("xocpn: %w", err)
		}
		marking.AddBag(petri.NewBag(ready))
	}
	return n, marking, nil
}
