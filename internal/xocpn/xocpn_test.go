package xocpn

import (
	"errors"
	"testing"
	"time"

	"math/rand"

	"dmps/internal/media"
	"dmps/internal/ocpn"
	"dmps/internal/petri"
	"dmps/internal/qos"
)

func obj(id string, kind media.Kind, dur time.Duration) media.Object {
	o := media.Object{ID: id, Kind: kind, Duration: dur, UnitBytes: 100}
	if kind.Continuous() {
		o.Rate = 10
	}
	return o
}

func compile(t *testing.T, tl ocpn.Timeline) *ocpn.Net {
	t.Helper()
	net, err := ocpn.Compile(tl)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func lectureNet(t *testing.T) *ocpn.Net {
	return compile(t, ocpn.Timeline{Items: []ocpn.ScheduledObject{
		{Object: obj("slide", media.Image, 10*time.Second), Start: 0},
		{Object: obj("narration", media.Audio, 10*time.Second), Start: 0},
		{Object: obj("clip", media.Video, 5*time.Second), Start: 10 * time.Second},
	}})
}

func TestPlanWindows(t *testing.T) {
	x := Extend(lectureNet(t), 2*time.Second)
	plan := x.Plan()
	if len(plan) != 3 {
		t.Fatalf("plan = %+v", plan)
	}
	byID := make(map[string]ChannelLifetime)
	for _, e := range plan {
		byID[e.ObjectID] = e
	}
	// slide starts at 0: open clamps to 0; closes at 10s.
	if e := byID["slide"]; e.Open != 0 || e.Close != 10*time.Second {
		t.Errorf("slide window = %+v", e)
	}
	// clip starts at 10s: opens at 8s (2s lead), closes at 15s.
	if e := byID["clip"]; e.Open != 8*time.Second || e.Close != 15*time.Second {
		t.Errorf("clip window = %+v", e)
	}
	// Plan is sorted by open time.
	for i := 1; i < len(plan); i++ {
		if plan[i].Open < plan[i-1].Open {
			t.Errorf("plan unsorted: %+v", plan)
		}
	}
}

func TestPlanMergesSegments(t *testing.T) {
	// "long" is split into segments by "mid"'s boundaries; the channel
	// window must still span the whole object.
	x := Extend(compile(t, ocpn.Timeline{Items: []ocpn.ScheduledObject{
		{Object: obj("long", media.Video, 10*time.Second), Start: 0},
		{Object: obj("mid", media.Audio, 4*time.Second), Start: 3 * time.Second},
	}}), 0)
	for _, e := range x.Plan() {
		if e.ObjectID == "long" {
			if e.Open != 0 || e.Close != 10*time.Second {
				t.Errorf("long window = %+v", e)
			}
		}
	}
}

func TestExtendClampsNegativeLead(t *testing.T) {
	x := Extend(lectureNet(t), -time.Second)
	if x.Lead != 0 {
		t.Errorf("Lead = %v", x.Lead)
	}
}

func TestAdmitSucceedsOnFastLink(t *testing.T) {
	x := Extend(lectureNet(t), time.Second)
	mgr := qos.NewManager(qos.LinkEstimate{Capacity: 10_000_000, Latency: 10 * time.Millisecond, Jitter: time.Millisecond})
	report, err := x.Admit(mgr)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if report.PeakChannels < 2 {
		t.Errorf("peak channels = %d, want >= 2 (slide+narration overlap)", report.PeakChannels)
	}
	if report.PeakBandwidth <= 0 {
		t.Errorf("peak bandwidth = %v", report.PeakBandwidth)
	}
	// All channels must be closed after the replay.
	if mgr.Admitted() != 0 {
		t.Errorf("channels left open: %d", mgr.Admitted())
	}
}

func TestAdmitFailsOnThinLink(t *testing.T) {
	x := Extend(lectureNet(t), time.Second)
	mgr := qos.NewManager(qos.LinkEstimate{Capacity: 100, Latency: 10 * time.Millisecond})
	if _, err := x.Admit(mgr); !errors.Is(err, ErrPlan) {
		t.Errorf("err = %v, want ErrPlan", err)
	}
}

func TestAdmitClosesBeforeOpensAtSameInstant(t *testing.T) {
	// a then b back to back, each needing the whole link: only valid if
	// the close at t=5s releases before the open at t=5s.
	x := Extend(compile(t, ocpn.Timeline{Items: []ocpn.ScheduledObject{
		{Object: obj("a", media.Video, 5*time.Second), Start: 0},
		{Object: obj("b", media.Video, 5*time.Second), Start: 5 * time.Second},
	}}), 0)
	mgr := qos.NewManager(qos.LinkEstimate{Capacity: 1_600_000, Latency: 10 * time.Millisecond, Jitter: time.Millisecond})
	report, err := x.Admit(mgr)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if report.PeakChannels != 1 {
		t.Errorf("peak = %d, want 1", report.PeakChannels)
	}
}

func TestAdmitLeadCausesOverlapDenial(t *testing.T) {
	// Same scenario but a 1s setup lead makes the windows overlap, which
	// the link cannot carry.
	x := Extend(compile(t, ocpn.Timeline{Items: []ocpn.ScheduledObject{
		{Object: obj("a", media.Video, 5*time.Second), Start: 0},
		{Object: obj("b", media.Video, 5*time.Second), Start: 5 * time.Second},
	}}), time.Second)
	mgr := qos.NewManager(qos.LinkEstimate{Capacity: 1_600_000, Latency: 10 * time.Millisecond, Jitter: time.Millisecond})
	if _, err := x.Admit(mgr); !errors.Is(err, ErrPlan) {
		t.Errorf("err = %v, want ErrPlan (lead forces overlap)", err)
	}
}

func TestBuildNetRequiresChannels(t *testing.T) {
	x := Extend(lectureNet(t), time.Second)
	net, marking, err := x.BuildNet()
	if err != nil {
		t.Fatal(err)
	}
	// With ready places marked, the extended net reaches the end.
	g, err := net.Reachability(marking, 100_000)
	if err != nil {
		t.Fatalf("reachability: %v", err)
	}
	reached := g.Reaches(func(m petriMarking) bool { return m.Tokens("p_end") > 0 })
	if !reached {
		t.Error("end unreachable with channel setup available")
	}
	// Remove one ready place: the object's start transition must block,
	// making the end unreachable.
	marking2 := marking.Clone()
	marking2.Set("net_clip", 0)
	g2, err := net.Reachability(marking2, 100_000)
	if err != nil {
		t.Fatalf("reachability2: %v", err)
	}
	if g2.Reaches(func(m petriMarking) bool { return m.Tokens("p_end") > 0 }) {
		t.Error("end reachable without clip's channel — setup place not enforced")
	}
}

// petriMarking aliases the petri marking type for test readability.
type petriMarking = petri.Marking

// TestQuickChannelWindowsCoverObjects: for random timelines, every
// object's channel window covers its full playout span with the setup
// lead (clamped at zero), and the plan is admissible on an infinite link.
func TestQuickChannelWindowsCoverObjects(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(5)
		var tl ocpn.Timeline
		for i := 0; i < n; i++ {
			kind := media.Video
			if i%2 == 1 {
				kind = media.Audio
			}
			tl.Items = append(tl.Items, ocpn.ScheduledObject{
				Object: obj(string(rune('a'+i)), kind, time.Duration(1+rng.Intn(20))*500*time.Millisecond),
				Start:  time.Duration(rng.Intn(10)) * 500 * time.Millisecond,
			})
		}
		net, err := ocpn.Compile(tl)
		if err != nil {
			t.Fatal(err)
		}
		lead := time.Duration(rng.Intn(3)) * time.Second
		x := Extend(net, lead)
		sched := net.DeriveSchedule()
		byID := make(map[string]ChannelLifetime)
		for _, e := range x.Plan() {
			byID[e.ObjectID] = e
		}
		// Normalize starts the way Compile does (earliest boundary = 0).
		min := tl.Items[0].Start
		for _, it := range tl.Items {
			if it.Start < min {
				min = it.Start
			}
		}
		for _, it := range tl.Items {
			w, ok := byID[it.Object.ID]
			if !ok {
				t.Fatalf("iter %d: no window for %s", iter, it.Object.ID)
			}
			objStart := sched.ObjectStart[it.Object.ID]
			wantOpen := objStart - lead
			if wantOpen < 0 {
				wantOpen = 0
			}
			if w.Open != wantOpen {
				t.Fatalf("iter %d: %s open %v, want %v", iter, it.Object.ID, w.Open, wantOpen)
			}
			if w.Close != objStart+it.Object.Duration {
				t.Fatalf("iter %d: %s close %v, want %v", iter, it.Object.ID, w.Close, objStart+it.Object.Duration)
			}
		}
		mgr := qos.NewManager(qos.LinkEstimate{Capacity: 1e12, Latency: time.Millisecond})
		if _, err := x.Admit(mgr); err != nil {
			t.Fatalf("iter %d: infinite link admission failed: %v", iter, err)
		}
		if mgr.Admitted() != 0 {
			t.Fatalf("iter %d: channels leaked", iter)
		}
	}
}
