package protocol

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"regexp"
	"testing"
)

// declaredTypes parses protocol.go and returns the names of every
// constant declared with type Type — the ground truth AllTypes (and the
// wire reference) must cover.
func declaredTypes(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "protocol.go", nil, 0)
	if err != nil {
		t.Fatalf("parse protocol.go: %v", err)
	}
	var names []string
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			ident, ok := vs.Type.(*ast.Ident)
			if !ok || ident.Name != "Type" {
				continue
			}
			for _, name := range vs.Names {
				names = append(names, name.Name)
			}
		}
	}
	return names
}

// TestAllTypesListsEveryDeclaredType keeps AllTypes honest: a new Type
// constant that is not added to the list would silently escape the
// documentation check below and every tool that ranges over AllTypes.
func TestAllTypesListsEveryDeclaredType(t *testing.T) {
	declared := declaredTypes(t)
	if len(declared) == 0 {
		t.Fatal("found no Type constants in protocol.go")
	}
	if len(declared) != len(AllTypes) {
		t.Fatalf("protocol.go declares %d Type constants, AllTypes lists %d", len(declared), len(AllTypes))
	}
	listed := make(map[Type]bool, len(AllTypes))
	for _, typ := range AllTypes {
		listed[typ] = true
	}
	if len(listed) != len(AllTypes) {
		t.Fatal("AllTypes contains duplicates")
	}
}

// TestProtocolDocCoversEveryMessageType fails when a wire message type
// has no entry in docs/PROTOCOL.md: the reference is generated-skeleton
// style — one "### `type`" heading per message — and this check is what
// keeps it complete as the protocol grows.
func TestProtocolDocCoversEveryMessageType(t *testing.T) {
	doc, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("read docs/PROTOCOL.md: %v", err)
	}
	for _, typ := range AllTypes {
		heading := regexp.MustCompile(fmt.Sprintf("(?m)^### .*`%s`", regexp.QuoteMeta(string(typ))))
		if !heading.Match(doc) {
			t.Errorf("docs/PROTOCOL.md has no heading documenting message type %q", typ)
		}
	}
	// The event classes are part of the wire contract too.
	for _, class := range AllClasses {
		if !regexp.MustCompile("`" + regexp.QuoteMeta(class) + "`").Match(doc) {
			t.Errorf("docs/PROTOCOL.md never mentions event class %q", class)
		}
	}
}
