// Binary wire framing (wire version 1). The handshake always speaks
// JSON; a client that sets HelloBody.WireVersion and gets it echoed in
// the welcome switches the rest of its session to these frames. A
// binary-negotiated endpoint still accepts JSON frames — the first byte
// discriminates (binMagic vs '{'), so retained log bytes, WAL records
// and replica stores can mix formats freely and DecodeAny reads either.
//
// Frame layout (the outer transport already delimits the frame, so no
// inner length prefix is needed; all lengths are uvarints that the
// decoder bounds against the remaining frame before use):
//
//	byte 0    binMagic (0xDF — invalid as leading JSON, so frames are
//	          self-describing)
//	byte 1    flags: bit0 = body is natively encoded (vs embedded JSON),
//	          bit1 = Message.State, bit2 = trace context present
//	          (wire version 2)
//	byte 2    type code: index into AllTypes (append-only — codes are
//	          wire-significant)
//	uvarint   Seq, GSeq, CSeq (three uvarints)
//	byte      class code: 0 none, 1+i = AllClasses[i], classEscape =
//	          length-prefixed class string follows
//	lp-string From, To, Group (uvarint length + bytes each)
//	trace     only when bit2 is set: uvarint TraceID, uvarint
//	          TraceParent, 1 byte TraceFlags — the causal trace context
//	          of wire version 2; senders set bit2 only on sessions that
//	          negotiated version ≥ 2
//	rest      body: native binary for the hot event types when bit0 is
//	          set, the body's JSON otherwise; empty = no body
//
// Hot types (SequencedBody, FloorEventBody, SuspendBody, ChatBody,
// AnnotateBody) get native body codecs; every other body rides as
// embedded JSON, which keeps the codec small where it doesn't pay.
// Decoding is zero-copy: envelope and native-body strings alias the
// frame buffer (via unsafe.String) and an embedded JSON body is a
// subslice — wire bytes are immutable once handed to a decoder.
package protocol

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"
	"unsafe"
)

// binMagic is the first byte of every binary frame. JSON frames start
// with '{' (0x7B), so one byte discriminates the two formats.
const binMagic = 0xDF

// Frame flag bits (byte 1).
const (
	flagNativeBody = 1 << 0 // body is natively encoded, not embedded JSON
	flagState      = 1 << 1 // Message.State
	flagTrace      = 1 << 2 // trace context follows the Group string (wire v2)
)

// classEscape marks a class string outside AllClasses, carried
// length-prefixed after the code byte.
const classEscape = 0xFF

// typeCodes maps a Type to its AllTypes index — the binary type code.
var typeCodes = func() map[Type]byte {
	m := make(map[Type]byte, len(AllTypes))
	for i, t := range AllTypes {
		m[t] = byte(i)
	}
	return m
}()

// classCodes maps a class to its 1-based AllClasses code.
var classCodes = func() map[string]byte {
	m := make(map[string]byte, len(AllClasses))
	for i, c := range AllClasses {
		m[c] = byte(1 + i)
	}
	return m
}()

// encScratch pools encode scratch buffers: a frame is built in pooled
// scratch and copied out at its exact size, so the steady-state encode
// path allocates once per message no matter how the frame grows.
var encScratch = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// EncodeBinary serializes a message as one binary frame. It counts
// against EncodeCount like Encode: the encode-once benchmarks gate the
// sum of both formats.
func EncodeBinary(m Message) ([]byte, error) {
	code, ok := typeCodes[m.Type]
	if !ok {
		return nil, fmt.Errorf("protocol: encode: unknown type %q", m.Type)
	}
	encodes.Add(1)
	bp := encScratch.Get().(*[]byte)
	b := (*bp)[:0]
	var flags byte
	if m.State {
		flags |= flagState
	}
	b = append(b, binMagic, flags, code)
	b = binary.AppendUvarint(b, uint64(m.Seq))
	b = binary.AppendUvarint(b, uint64(m.GSeq))
	b = binary.AppendUvarint(b, uint64(m.CSeq))
	if m.Class == "" {
		b = append(b, 0)
	} else if cc, ok := classCodes[m.Class]; ok {
		b = append(b, cc)
	} else {
		b = append(b, classEscape)
		b = appendLPString(b, m.Class)
	}
	b = appendLPString(b, m.From)
	b = appendLPString(b, m.To)
	b = appendLPString(b, m.Group)
	if m.TraceID != 0 {
		b[1] |= flagTrace
		b = binary.AppendUvarint(b, m.TraceID)
		b = binary.AppendUvarint(b, m.TraceParent)
		b = append(b, m.TraceFlags)
	}
	b, err := appendBody(b, m) // may flip flagNativeBody in b[1]
	if err != nil {
		*bp = b
		encScratch.Put(bp)
		return nil, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	*bp = b
	encScratch.Put(bp)
	return out, nil
}

// appendBody appends the body: the retained native form if the frame
// was decoded natively, a native encoding when the typed body object is
// at hand, and the body's JSON otherwise. It flips flagNativeBody in
// b[1] for the native cases.
func appendBody(b []byte, m Message) ([]byte, error) {
	if m.bodyBin != nil {
		// Re-encoding a natively-decoded frame: the body bytes are
		// already in wire form.
		b[1] |= flagNativeBody
		return append(b, m.bodyBin...), nil
	}
	if m.bodyObj != nil && hasNativeCodec(m.Type) {
		// Native encode only when the MESSAGE TYPE owns a codec — the
		// decoder picks its reader by type, so a native flag on any other
		// type (an ack that happens to carry a SequencedBody, say) would
		// be unreadable on the far side.
		if nb, ok := appendNativeBody(b, m.bodyObj); ok {
			nb[1] |= flagNativeBody
			return nb, nil
		}
	}
	return append(b, m.Body...), nil
}

// appendNativeBody natively encodes the typed bodies that have a binary
// codec, reporting ok == false for everything else (which then rides as
// embedded JSON).
func appendNativeBody(b []byte, body any) ([]byte, bool) {
	switch v := body.(type) {
	case SequencedBody:
		return appendSequenced(b, v), true
	case *SequencedBody:
		return appendSequenced(b, *v), true
	case FloorEventBody:
		return appendFloorEvent(b, v), true
	case *FloorEventBody:
		return appendFloorEvent(b, *v), true
	case SuspendBody:
		return appendSuspend(b, v), true
	case *SuspendBody:
		return appendSuspend(b, *v), true
	case ChatBody:
		return appendLPString(b, v.Text), true
	case *ChatBody:
		return appendLPString(b, v.Text), true
	case AnnotateBody:
		return appendLPString(appendLPString(b, v.Kind), v.Data), true
	case *AnnotateBody:
		return appendLPString(appendLPString(b, v.Kind), v.Data), true
	}
	return b, false
}

func appendSequenced(b []byte, v SequencedBody) []byte {
	b = binary.AppendUvarint(b, uint64(v.Seq))
	b = appendLPString(b, v.Author)
	b = appendLPString(b, v.Kind)
	b = appendLPString(b, v.Data)
	b = binary.AppendUvarint(b, uint64(len(v.More)))
	for _, m := range v.More {
		b = appendSequenced(b, m)
	}
	return b
}

func appendFloorEvent(b []byte, v FloorEventBody) []byte {
	b = appendLPString(b, v.Mode)
	b = appendLPString(b, v.Holder)
	b = appendLPString(b, v.Member)
	b = appendLPString(b, v.Event)
	b = binary.AppendUvarint(b, uint64(v.QueuePosition))
	return binary.AppendUvarint(b, uint64(v.QueueLen))
}

func appendSuspend(b []byte, v SuspendBody) []byte {
	b = appendLPString(b, v.Member)
	b = appendLPString(b, v.Level)
	b = binary.AppendUvarint(b, uint64(len(v.Suspended)))
	for _, s := range v.Suspended {
		b = appendLPString(b, s)
	}
	return b
}

func appendLPString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// DecodeAny dispatches on the first byte: binary frames to
// DecodeBinary, everything else to the JSON Decode. This is the decoder
// every binary-negotiated endpoint (and every reader of retained log,
// WAL or replica bytes) uses, since stored bytes may predate — or
// outlive — a format switch.
func DecodeAny(data []byte) (Message, error) {
	if len(data) > 0 && data[0] == binMagic {
		return DecodeBinary(data)
	}
	return Decode(data)
}

// IsBinaryFrame reports whether wire bytes are a binary frame (vs JSON).
func IsBinaryFrame(data []byte) bool {
	return len(data) > 0 && data[0] == binMagic
}

// FrameHasTrace reports whether a binary frame carries the wire-v2
// trace extension. JSON frames report false — peeking their trace
// fields would need a full decode, and the callers (fan-out sharing,
// enqueue stamping) only ever need the cheap binary check.
func FrameHasTrace(data []byte) bool {
	return len(data) > 1 && data[0] == binMagic && data[1]&flagTrace != 0
}

// FrameTrace peeks a binary frame's trace context without decoding the
// body: the envelope fields ahead of the extension are skipped with the
// same bounds-checked reader DecodeBinary uses, and nothing allocates.
// Frames without the extension — including every JSON frame — return
// the zero context, so the untraced fast path is two byte reads.
func FrameTrace(data []byte) (id, parent uint64, flags uint8) {
	if !FrameHasTrace(data) {
		return 0, 0, 0
	}
	r := &frameReader{data: data, off: 3}
	for i := 0; i < 3; i++ { // Seq, GSeq, CSeq
		if _, err := r.uvarint(); err != nil {
			return 0, 0, 0
		}
	}
	cc, err := r.byteAt()
	if err != nil {
		return 0, 0, 0
	}
	if cc == classEscape {
		if _, err := r.lpBytes(); err != nil {
			return 0, 0, 0
		}
	}
	if err := skipStrings(r, 3); err != nil { // From, To, Group
		return 0, 0, 0
	}
	if id, err = r.uvarint(); err != nil {
		return 0, 0, 0
	}
	if parent, err = r.uvarint(); err != nil {
		return 0, 0, 0
	}
	fl, err := r.byteAt()
	if err != nil {
		return 0, 0, 0
	}
	return id, parent, fl
}

// StripTrace re-encodes a binary frame without its trace extension —
// what the fan-out path hands a session that negotiated wire version 1,
// whose frame layout predates flagTrace (the extension would shift its
// body parse). Frames without the extension pass through untouched, so
// the untraced path pays two byte reads and no allocation. A frame that
// fails to decode also passes through: the session's own decoder
// surfaces the error instead of this path eating the event.
func StripTrace(wire []byte) []byte {
	if !FrameHasTrace(wire) {
		return wire
	}
	m, err := DecodeBinary(wire)
	if err != nil {
		return wire
	}
	m.TraceID, m.TraceParent, m.TraceFlags = 0, 0, 0
	out, err := EncodeBinary(m)
	if err != nil {
		return wire
	}
	return out
}

// frameReader walks a frame with bounds-checked reads: every length is
// validated against the remaining bytes before use, so a malformed or
// truncated frame errors without panicking or allocating ahead of its
// real size.
type frameReader struct {
	data []byte
	off  int
}

func (r *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", ErrDecode)
	}
	r.off += n
	return v, nil
}

func (r *frameReader) byteAt() (byte, error) {
	if r.off >= len(r.data) {
		return 0, fmt.Errorf("%w: truncated frame", ErrDecode)
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

// lpBytes reads a length-prefixed byte run as a zero-copy subslice.
func (r *frameReader) lpBytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.off) {
		return nil, fmt.Errorf("%w: length %d exceeds frame", ErrDecode, n)
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// lpString reads a length-prefixed string aliasing the frame buffer.
func (r *frameReader) lpString() (string, error) {
	b, err := r.lpBytes()
	if err != nil {
		return "", err
	}
	return zstring(b), nil
}

// zstring views bytes as a string without copying. Decoded messages
// alias their frame buffer; wire bytes are immutable once received, so
// the alias is safe for the life of the message.
func zstring(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// DecodeBinary parses one binary frame. The returned message aliases
// data (strings and body are subslices): callers must not mutate the
// buffer afterwards, which every transport already guarantees.
func DecodeBinary(data []byte) (Message, error) {
	if len(data) < 3 || data[0] != binMagic {
		return Message{}, fmt.Errorf("%w: not a binary frame", ErrDecode)
	}
	flags := data[1]
	code := int(data[2])
	if code >= len(AllTypes) {
		return Message{}, fmt.Errorf("%w: unknown type code %d", ErrDecode, code)
	}
	m := Message{Type: AllTypes[code], State: flags&flagState != 0}
	r := &frameReader{data: data, off: 3}
	var err error
	var u uint64
	if u, err = r.uvarint(); err != nil {
		return Message{}, err
	}
	m.Seq = int64(u)
	if u, err = r.uvarint(); err != nil {
		return Message{}, err
	}
	m.GSeq = int64(u)
	if u, err = r.uvarint(); err != nil {
		return Message{}, err
	}
	m.CSeq = int64(u)
	cc, err := r.byteAt()
	if err != nil {
		return Message{}, err
	}
	switch {
	case cc == 0:
	case cc == classEscape:
		if m.Class, err = r.lpString(); err != nil {
			return Message{}, err
		}
	case int(cc) <= len(AllClasses):
		m.Class = AllClasses[cc-1]
	default:
		return Message{}, fmt.Errorf("%w: unknown class code %d", ErrDecode, cc)
	}
	if m.From, err = r.lpString(); err != nil {
		return Message{}, err
	}
	if m.To, err = r.lpString(); err != nil {
		return Message{}, err
	}
	if m.Group, err = r.lpString(); err != nil {
		return Message{}, err
	}
	if flags&flagTrace != 0 {
		if m.TraceID, err = r.uvarint(); err != nil {
			return Message{}, err
		}
		if m.TraceParent, err = r.uvarint(); err != nil {
			return Message{}, err
		}
		if m.TraceFlags, err = r.byteAt(); err != nil {
			return Message{}, err
		}
	}
	body := data[r.off:]
	if flags&flagNativeBody != 0 {
		if len(body) == 0 {
			return Message{}, fmt.Errorf("%w: native-body flag on empty body", ErrDecode)
		}
		if !hasNativeCodec(m.Type) {
			return Message{}, fmt.Errorf("%w: native body on type %q", ErrDecode, m.Type)
		}
		if err := checkNativeBody(m.Type, body); err != nil {
			return Message{}, fmt.Errorf("%w: %s body: %v", ErrDecode, m.Type, err)
		}
		m.bodyBin = body
	} else if len(body) > 0 {
		if !json.Valid(body) {
			return Message{}, fmt.Errorf("%w: embedded body is not valid JSON", ErrDecode)
		}
		m.Body = json.RawMessage(body)
	}
	return m, nil
}

// hasNativeCodec reports whether a type's body has a native binary
// codec (the hot event/request types).
func hasNativeCodec(t Type) bool {
	switch t {
	case TChatEvent, TAnnotateEvent, TFloorEvent, TSuspend, TResume, TChat, TAnnotate:
		return true
	}
	return false
}

// checkNativeBody walks a native body without building anything: every
// length and count is bounds-checked and the walk must consume the body
// exactly, so a truncated or corrupt frame is rejected at the decode
// boundary (not later, at some Into call on another goroutine) and a
// hostile count can never size an allocation.
func checkNativeBody(t Type, body []byte) error {
	r := &frameReader{data: body}
	var err error
	switch t {
	case TChatEvent, TAnnotateEvent:
		err = skipSequenced(r)
	case TFloorEvent:
		err = skipStrings(r, 4)
		for i := 0; err == nil && i < 2; i++ {
			_, err = r.uvarint()
		}
	case TSuspend, TResume:
		if err = skipStrings(r, 2); err == nil {
			var n uint64
			if n, err = r.uvarint(); err == nil {
				if n > uint64(len(r.data)-r.off) {
					return fmt.Errorf("suspended count %d exceeds frame", n)
				}
				err = skipStrings(r, int(n))
			}
		}
	case TChat:
		err = skipStrings(r, 1)
	case TAnnotate:
		err = skipStrings(r, 2)
	}
	if err != nil {
		return err
	}
	if r.off != len(body) {
		return fmt.Errorf("%d trailing bytes", len(body)-r.off)
	}
	return nil
}

func skipStrings(r *frameReader, n int) error {
	for i := 0; i < n; i++ {
		if _, err := r.lpBytes(); err != nil {
			return err
		}
	}
	return nil
}

func skipSequenced(r *frameReader) error {
	if _, err := r.uvarint(); err != nil {
		return err
	}
	if err := skipStrings(r, 3); err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n > uint64(len(r.data)-r.off) {
		return fmt.Errorf("more count %d exceeds frame", n)
	}
	for i := uint64(0); i < n; i++ {
		if err := skipSequenced(r); err != nil {
			return err
		}
	}
	return nil
}

// intoNative decodes a natively-encoded body into out, which must be a
// pointer to the type's body struct — the same contract Into has for
// JSON bodies.
func intoNative(t Type, body []byte, out any) error {
	r := &frameReader{data: body}
	var err error
	switch t {
	case TChatEvent, TAnnotateEvent:
		v, ok := out.(*SequencedBody)
		if !ok {
			return fmt.Errorf("%w: %s: native body needs *SequencedBody", ErrBodyMismatch, t)
		}
		err = readSequenced(r, v)
	case TFloorEvent:
		v, ok := out.(*FloorEventBody)
		if !ok {
			return fmt.Errorf("%w: %s: native body needs *FloorEventBody", ErrBodyMismatch, t)
		}
		err = readFloorEvent(r, v)
	case TSuspend, TResume:
		v, ok := out.(*SuspendBody)
		if !ok {
			return fmt.Errorf("%w: %s: native body needs *SuspendBody", ErrBodyMismatch, t)
		}
		err = readSuspend(r, v)
	case TChat:
		v, ok := out.(*ChatBody)
		if !ok {
			return fmt.Errorf("%w: %s: native body needs *ChatBody", ErrBodyMismatch, t)
		}
		v.Text, err = r.lpString()
	case TAnnotate:
		v, ok := out.(*AnnotateBody)
		if !ok {
			return fmt.Errorf("%w: %s: native body needs *AnnotateBody", ErrBodyMismatch, t)
		}
		if v.Kind, err = r.lpString(); err == nil {
			v.Data, err = r.lpString()
		}
	default:
		return fmt.Errorf("%w: %s has no native codec", ErrBodyMismatch, t)
	}
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBodyMismatch, t, err)
	}
	return nil
}

func readSequenced(r *frameReader, v *SequencedBody) error {
	u, err := r.uvarint()
	if err != nil {
		return err
	}
	v.Seq = int64(u)
	if v.Author, err = r.lpString(); err != nil {
		return err
	}
	if v.Kind, err = r.lpString(); err != nil {
		return err
	}
	if v.Data, err = r.lpString(); err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	// Each More entry needs at least 4 bytes on the wire, so a count
	// beyond the remaining bytes is malformed — checked before the
	// allocation it would otherwise inflate.
	if n > uint64(len(r.data)-r.off) {
		return fmt.Errorf("more count %d exceeds frame", n)
	}
	v.More = make([]SequencedBody, n)
	for i := range v.More {
		if err := readSequenced(r, &v.More[i]); err != nil {
			return err
		}
	}
	return nil
}

func readFloorEvent(r *frameReader, v *FloorEventBody) error {
	var err error
	if v.Mode, err = r.lpString(); err != nil {
		return err
	}
	if v.Holder, err = r.lpString(); err != nil {
		return err
	}
	if v.Member, err = r.lpString(); err != nil {
		return err
	}
	if v.Event, err = r.lpString(); err != nil {
		return err
	}
	u, err := r.uvarint()
	if err != nil {
		return err
	}
	v.QueuePosition = int(int64(u))
	if u, err = r.uvarint(); err != nil {
		return err
	}
	v.QueueLen = int(int64(u))
	return nil
}

func readSuspend(r *frameReader, v *SuspendBody) error {
	var err error
	if v.Member, err = r.lpString(); err != nil {
		return err
	}
	if v.Level, err = r.lpString(); err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	if n > uint64(len(r.data)-r.off) {
		return fmt.Errorf("suspended count %d exceeds frame", n)
	}
	v.Suspended = make([]string, n)
	for i := range v.Suspended {
		if v.Suspended[i], err = r.lpString(); err != nil {
			return err
		}
	}
	return nil
}

// jsonBody materializes the JSON form of a natively-decoded body — the
// binary→JSON transcode step Encode needs when re-encoding a frame for
// a JSON-negotiated session.
func jsonBody(t Type, body []byte) (json.RawMessage, error) {
	var out any
	switch t {
	case TChatEvent, TAnnotateEvent:
		out = &SequencedBody{}
	case TFloorEvent:
		out = &FloorEventBody{}
	case TSuspend, TResume:
		out = &SuspendBody{}
	case TChat:
		out = &ChatBody{}
	case TAnnotate:
		out = &AnnotateBody{}
	default:
		return nil, fmt.Errorf("%w: %s has no native codec", ErrBodyMismatch, t)
	}
	if err := intoNative(t, body, out); err != nil {
		return nil, err
	}
	raw, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("protocol: transcode %s body: %w", t, err)
	}
	return raw, nil
}
