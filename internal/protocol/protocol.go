// Package protocol defines the DMPS wire protocol: a JSON message
// envelope with typed bodies, carried over the message-framing transport.
// All client↔server traffic — handshake, group administration, floor
// control requests, chat/whiteboard, clock synchronization, status
// probing and presentation control — uses these messages.
package protocol

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Type names a message. String values keep captures human-readable.
type Type string

// Message types. Requests flow client→server; events flow server→client;
// Ack/Err answer requests.
const (
	// THello opens a session: client introduces itself (HelloBody).
	THello Type = "hello"
	// TWelcome acknowledges THello (WelcomeBody).
	TWelcome Type = "welcome"
	// TJoin / TLeave manage group membership (GroupBody).
	TJoin  Type = "join"
	TLeave Type = "leave"
	// TCreateGroup creates a group chaired by the sender (GroupBody).
	TCreateGroup Type = "create_group"
	// TFloorRequest asks for the floor (FloorRequestBody); answered by
	// TAck (FloorDecisionBody) or TErr.
	TFloorRequest Type = "floor_request"
	// TFloorRelease gives up the Equal Control floor (GroupBody).
	TFloorRelease Type = "floor_release"
	// TTokenPass passes the Equal Control token (TokenPassBody).
	TTokenPass Type = "token_pass"
	// TFloorApprove lets the session chair clear a queued request in a
	// moderated mode (FloorApproveBody); answered by TAck
	// (FloorDecisionBody) or TErr.
	TFloorApprove Type = "floor_approve"
	// TFloorEvent notifies clients of floor state changes
	// (FloorEventBody).
	TFloorEvent Type = "floor_event"
	// TInvite asks the server to invite a member (InviteBody); TInviteEvent
	// notifies the invitee; TInviteReply answers an invitation.
	TInvite      Type = "invite"
	TInviteEvent Type = "invite_event"
	TInviteReply Type = "invite_reply"
	// TChat posts to the message window (ChatBody); broadcast as TChatEvent
	// (SequencedBody wrapping ChatBody).
	TChat      Type = "chat"
	TChatEvent Type = "chat_event"
	// TAnnotate posts a whiteboard operation (AnnotateBody); broadcast as
	// TAnnotateEvent.
	TAnnotate      Type = "annotate"
	TAnnotateEvent Type = "annotate_event"
	// TReplay asks for board operations after a sequence number
	// (ReplayBody); answered with a TSnapshot carrying the board suffix.
	TReplay Type = "replay"
	// TBackfill asks for the suffix of a group's event log — or, with
	// Group empty, of the sender's own member event log — after a
	// sequence number (BackfillBody). The server re-sends the retained
	// logged events (each stamped with its GSeq) or, when the ring has
	// wrapped past the requested position, one compact TSnapshot.
	TBackfill Type = "backfill"
	// TSnapshot carries a group's authoritative state as of a log
	// sequence number (SnapshotBody): the catch-up payload for late
	// joiners, explicit replays, and backfills past the ring.
	TSnapshot Type = "snapshot"
	// TModeSwitch sets a group's floor mode explicitly, optionally
	// pinning the policy so only the session chair may change it again
	// (ModeSwitchBody); broadcast to the group as a TFloorEvent with
	// Event "mode_switch".
	TModeSwitch Type = "mode_switch"
	// TClockSync requests the global time (ClockSyncBody both ways).
	TClockSync Type = "clock_sync"
	// TStatusProbe and TStatusReport implement the heartbeat that drives
	// the Figure-3 connection lights.
	TStatusProbe  Type = "status_probe"
	TStatusReport Type = "status_report"
	// TLights carries the current connection lights (LightsBody).
	TLights Type = "lights"
	// TSuspend and TResume carry Media-Suspend decisions (SuspendBody).
	TSuspend Type = "suspend"
	TResume  Type = "resume"
	// TPresent starts a synchronized presentation (PresentBody).
	TPresent Type = "present"
	// TMediaUnit streams one media unit (MediaUnitBody). Sent without a
	// Seq it is fire-and-forget (streaming); with a Seq the server
	// acks/denies it.
	TMediaUnit Type = "media_unit"
	// TAck acknowledges a request; TErr reports a failure (ErrBody).
	TAck Type = "ack"
	TErr Type = "err"
	// TBye closes the session gracefully.
	TBye Type = "bye"
)

// Codec errors.
var (
	// ErrDecode is returned for malformed wire bytes.
	ErrDecode = errors.New("protocol: decode failed")
	// ErrBodyMismatch is returned when a body does not match the type.
	ErrBodyMismatch = errors.New("protocol: body mismatch")
)

// Message is the wire envelope.
type Message struct {
	// Type discriminates the body.
	Type Type `json:"type"`
	// Seq correlates requests and replies (client-assigned, echoed by the
	// server in TAck/TErr).
	Seq int64 `json:"seq,omitempty"`
	// GSeq is the event-log sequence number stamped on logged state
	// broadcasts (floor events, suspend/resume, board operations, mode
	// switches, invitations): 1-based and dense per log, so a recipient
	// applies them strictly in order and a hole proves a drop happened —
	// the trigger for TBackfill. 0 on everything unlogged (replies,
	// probes, lights, media, private lines, presentation starts).
	GSeq int64 `json:"gseq,omitempty"`
	// From and To are member IDs ("" when implicit).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Group scopes the message to a group.
	Group string `json:"group,omitempty"`
	// Body is the type-specific payload.
	Body json.RawMessage `json:"body,omitempty"`
}

// HelloBody introduces a client. With Token set it resumes an existing
// session instead of opening a new one: the server re-binds the member
// identity (and any live stale session is displaced), after which the
// client converges through TBackfill without re-joining its groups.
type HelloBody struct {
	Name     string `json:"name"`
	Role     string `json:"role"` // "chair" or "participant"
	Priority int    `json:"priority"`
	Token    string `json:"token,omitempty"`
}

// WelcomeBody acknowledges the handshake.
type WelcomeBody struct {
	MemberID string `json:"member_id"`
	// ServerTimeNanos is the global clock at admission, for a first rough
	// sync.
	ServerTimeNanos int64 `json:"server_time_nanos"`
	// Token is the session-resume credential: presenting it in a later
	// THello reconnects as the same member.
	Token string `json:"token,omitempty"`
}

// GroupBody names a group.
type GroupBody struct {
	Group string `json:"group"`
}

// FloorRequestBody asks for a floor mode.
type FloorRequestBody struct {
	Mode   string `json:"mode"`             // floor.Mode string form
	Target string `json:"target,omitempty"` // direct-contact peer
}

// FloorDecisionBody reports an arbitration outcome.
type FloorDecisionBody struct {
	Granted       bool     `json:"granted"`
	Mode          string   `json:"mode"`
	Holder        string   `json:"holder,omitempty"`
	QueuePosition int      `json:"queue_position,omitempty"`
	Suspended     []string `json:"suspended,omitempty"`
	Level         string   `json:"level,omitempty"`
	Target        string   `json:"target,omitempty"`
	Reason        string   `json:"reason,omitempty"`
}

// TokenPassBody passes the token.
type TokenPassBody struct {
	To string `json:"to"`
}

// FloorApproveBody clears a queued member (chair → server).
type FloorApproveBody struct {
	Member string `json:"member"`
}

// FloorEventBody announces floor changes to a group.
type FloorEventBody struct {
	Mode   string `json:"mode"`
	Holder string `json:"holder,omitempty"`
	Member string `json:"member,omitempty"` // subject of the change
	// Event is the transition kind: "granted", "denied", "released",
	// "passed", "queued", "approved", "queue_position", "mode_switch"
	// (the group's floor mode changed; Mode is the new mode), or "queue"
	// (a full restatement of the pending queue after a transition
	// shifted it; Queue carries the order and clients pick out their own
	// slot — delivered to subscribers as a per-member "queue_position").
	Event string `json:"event"`
	// QueuePosition is the subject's 1-based queue slot for "queued",
	// "approved" and "queue_position" events.
	QueuePosition int `json:"queue_position,omitempty"`
	// Queue is the whole pending queue in order, for "queue" events.
	Queue []string `json:"queue,omitempty"`
}

// InviteBody requests an invitation.
type InviteBody struct {
	Group string `json:"group"`
	To    string `json:"to"`
}

// InviteEventBody notifies the invitee.
type InviteEventBody struct {
	InviteID int64  `json:"invite_id"`
	Group    string `json:"group"`
	From     string `json:"from"`
}

// InviteReplyBody answers an invitation.
type InviteReplyBody struct {
	InviteID int64 `json:"invite_id"`
	Accept   bool  `json:"accept"`
}

// ChatBody posts a message-window line.
type ChatBody struct {
	Text string `json:"text"`
}

// AnnotateBody posts a whiteboard operation.
type AnnotateBody struct {
	Kind string `json:"kind"` // "draw", "text", "clear"
	Data string `json:"data"`
}

// SequencedBody wraps a broadcast board operation with its server
// sequence number.
type SequencedBody struct {
	Seq    int64  `json:"seq"`
	Author string `json:"author"`
	Kind   string `json:"kind"`
	Data   string `json:"data"`
}

// ReplayBody requests board operations after a sequence number.
type ReplayBody struct {
	After int64 `json:"after"`
}

// BackfillBody asks for the suffix of an event log. Group names a group
// log; an empty Group means the sender's own member event log
// (invitations). After is the highest GSeq the sender has applied for
// that log; BoardSeq is its whiteboard replica's highest operation, so
// a snapshot fallback carries only the missing board suffix.
type BackfillBody struct {
	Group    string `json:"group,omitempty"`
	After    int64  `json:"after"`
	BoardSeq int64  `json:"board_seq,omitempty"`
}

// ModeSwitchBody sets a group's floor mode. Pin (session chair only)
// pins the group's policy: afterwards only the chair may switch modes —
// by TModeSwitch or by requesting a different mode's floor — until a
// later chair switch clears the pin.
type ModeSwitchBody struct {
	Mode string `json:"mode"`
	Pin  bool   `json:"pin,omitempty"`
}

// SnapshotBody is a group's authoritative state as of event-log
// sequence Seq — the compact catch-up a client applies when the log
// suffix it needs has left the ring (or when it joins late). For a
// member event log (Message.Group empty) only Seq and Invites are set.
type SnapshotBody struct {
	Seq       int64    `json:"seq"`
	Mode      string   `json:"mode,omitempty"`
	Holder    string   `json:"holder,omitempty"`
	Queue     []string `json:"queue,omitempty"`
	Suspended []string `json:"suspended,omitempty"`
	Level     string   `json:"level,omitempty"`
	Pinned    bool     `json:"pinned,omitempty"`
	// Board is the whiteboard suffix after the requester's reported
	// BoardSeq (the whole board for a late joiner).
	Board   []SequencedBody   `json:"board,omitempty"`
	Invites []InviteEventBody `json:"invites,omitempty"`
}

// ClockSyncBody carries one Cristian exchange. The client fills
// ClientSendNanos; the server echoes it and fills MasterNanos.
type ClockSyncBody struct {
	ClientSendNanos int64 `json:"client_send_nanos"`
	MasterNanos     int64 `json:"master_nanos,omitempty"`
}

// BackpressureBody is one member's outbound-queue snapshot at the
// server: how deep their delivery queue is and how many messages the
// slow-consumer policy has dropped.
type BackpressureBody struct {
	QueueDepth int   `json:"queue_depth"`
	QueueCap   int   `json:"queue_cap"`
	Drops      int64 `json:"drops,omitempty"`
}

// LightsBody reports connection lights: member → "green"/"red", plus
// each member's backpressure counters (the teacher's window can show a
// lagging student next to a disconnected one). Heads is the event-log
// digest — log key (group ID, or "~member" for the recipient's own
// invitation log) → head sequence number — that lets a client notice
// it is behind even on a quiet group: a head beyond its last applied
// GSeq means a logged event was dropped on its queue, and it asks
// TBackfill. The digest is filtered to the recipient's joined groups
// and own member log (event logs are group-private, like boards).
type LightsBody struct {
	Lights       map[string]string           `json:"lights"`
	Backpressure map[string]BackpressureBody `json:"backpressure,omitempty"`
	Heads        map[string]int64            `json:"heads,omitempty"`
}

// SuspendBody names a suspended/resumed member.
type SuspendBody struct {
	Member string `json:"member"`
	Level  string `json:"level,omitempty"`
}

// MediaUnitBody is one streamed media unit (a video frame, an audio
// packet) — the wire form of media.Unit.
type MediaUnitBody struct {
	Object         string `json:"object"`
	Kind           string `json:"kind"`
	Seq            int    `json:"seq"`
	MediaTimeNanos int64  `json:"media_time_nanos"`
	Bytes          int    `json:"bytes"`
}

// PresentObject describes one timeline item of a presentation start.
type PresentObject struct {
	ID            string  `json:"id"`
	Kind          string  `json:"kind"`
	StartNanos    int64   `json:"start_nanos"`
	DurationNanos int64   `json:"duration_nanos"`
	Rate          float64 `json:"rate,omitempty"`
}

// PresentBody starts a synchronized presentation at a global instant.
type PresentBody struct {
	// StartGlobalNanos is the global-clock instant of presentation t=0.
	StartGlobalNanos int64           `json:"start_global_nanos"`
	Objects          []PresentObject `json:"objects"`
}

// ErrBody reports a request failure.
type ErrBody struct {
	Code   string `json:"code"`
	Detail string `json:"detail,omitempty"`
}

// New builds a message with a marshalled body. A nil body leaves
// Message.Body empty.
func New(t Type, body any) (Message, error) {
	msg := Message{Type: t}
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return Message{}, fmt.Errorf("protocol: marshal %s body: %w", t, err)
		}
		msg.Body = raw
	}
	return msg, nil
}

// MustNew is New for bodies that cannot fail to marshal (all body types
// in this package); it panics otherwise, which indicates a programming
// error, not input data.
func MustNew(t Type, body any) Message {
	m, err := New(t, body)
	if err != nil {
		panic(err)
	}
	return m
}

// encodes counts Encode calls process-wide; the broadcast benchmarks read
// it to prove the encode-once fan-out invariant (one Encode per broadcast
// regardless of group size).
var encodes atomic.Int64

// EncodeCount returns the number of Encode calls since process start.
func EncodeCount() int64 { return encodes.Load() }

// Encode serializes a message for the wire.
func Encode(m Message) ([]byte, error) {
	encodes.Add(1)
	out, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("protocol: encode: %w", err)
	}
	return out, nil
}

// Decode parses wire bytes into a message.
func Decode(data []byte) (Message, error) {
	var m Message
	if err := json.Unmarshal(data, &m); err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	if m.Type == "" {
		return Message{}, fmt.Errorf("%w: missing type", ErrDecode)
	}
	return m, nil
}

// Into unmarshals the message body into out.
func (m Message) Into(out any) error {
	if len(m.Body) == 0 {
		return fmt.Errorf("%w: %s has no body", ErrBodyMismatch, m.Type)
	}
	if err := json.Unmarshal(m.Body, out); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBodyMismatch, m.Type, err)
	}
	return nil
}

// Nanos converts a time to the wire representation.
func Nanos(t time.Time) int64 { return t.UnixNano() }

// FromNanos converts the wire representation back to a time.
func FromNanos(n int64) time.Time { return time.Unix(0, n) }
