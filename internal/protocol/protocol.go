// Package protocol defines the DMPS wire protocol: a message envelope
// with typed bodies, carried over the message-framing transport. All
// client↔server traffic — handshake, group administration, floor
// control requests, chat/whiteboard, clock synchronization, status
// probing and presentation control — uses these messages. The envelope
// has two wire forms: the JSON encoding every session starts in
// (Encode/Decode), and the compact binary framing of binary.go
// (EncodeBinary/DecodeBinary) a session switches to when the handshake
// negotiates HelloBody.WireVersion. DecodeAny reads either.
package protocol

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Type names a message. String values keep captures human-readable.
type Type string

// Message types. Requests flow client→server; events flow server→client;
// Ack/Err answer requests.
const (
	// THello opens a session: client introduces itself (HelloBody).
	THello Type = "hello"
	// TWelcome acknowledges THello (WelcomeBody).
	TWelcome Type = "welcome"
	// TJoin / TLeave manage group membership (GroupBody).
	TJoin  Type = "join"
	TLeave Type = "leave"
	// TCreateGroup creates a group chaired by the sender (GroupBody).
	TCreateGroup Type = "create_group"
	// TFloorRequest asks for the floor (FloorRequestBody); answered by
	// TAck (FloorDecisionBody) or TErr.
	TFloorRequest Type = "floor_request"
	// TFloorRelease gives up the Equal Control floor (GroupBody).
	TFloorRelease Type = "floor_release"
	// TTokenPass passes the Equal Control token (TokenPassBody).
	TTokenPass Type = "token_pass"
	// TFloorApprove lets the session chair clear a queued request in a
	// moderated mode (FloorApproveBody); answered by TAck
	// (FloorDecisionBody) or TErr.
	TFloorApprove Type = "floor_approve"
	// TFloorEvent notifies clients of floor state changes
	// (FloorEventBody).
	TFloorEvent Type = "floor_event"
	// TInvite asks the server to invite a member (InviteBody); TInviteEvent
	// notifies the invitee; TInviteReply answers an invitation.
	TInvite      Type = "invite"
	TInviteEvent Type = "invite_event"
	TInviteReply Type = "invite_reply"
	// TChat posts to the message window (ChatBody); broadcast as TChatEvent
	// (SequencedBody wrapping ChatBody).
	TChat      Type = "chat"
	TChatEvent Type = "chat_event"
	// TAnnotate posts a whiteboard operation (AnnotateBody); broadcast as
	// TAnnotateEvent.
	TAnnotate      Type = "annotate"
	TAnnotateEvent Type = "annotate_event"
	// TReplay asks for board operations after a sequence number
	// (ReplayBody); answered with a TSnapshot carrying the board suffix.
	TReplay Type = "replay"
	// TBackfill asks for the suffix of a group's event log — or, with
	// Group empty, of the sender's own member event log — after a
	// sequence number (BackfillBody). The server re-sends the retained
	// logged events (each stamped with its GSeq) or, when the ring has
	// wrapped past the requested position, one compact TSnapshot.
	TBackfill Type = "backfill"
	// TSnapshot carries a group's authoritative state as of a log
	// sequence number (SnapshotBody): the catch-up payload for late
	// joiners, explicit replays, and backfills past the ring.
	TSnapshot Type = "snapshot"
	// TModeSwitch sets a group's floor mode explicitly, optionally
	// pinning the policy so only the session chair may change it again
	// (ModeSwitchBody); broadcast to the group as a TFloorEvent with
	// Event "mode_switch".
	TModeSwitch Type = "mode_switch"
	// TSubscribe replaces the session's event-class mask
	// (SubscribeBody): logged events of classes outside the mask are
	// filtered server-side, before they reach the session's delivery
	// queue. The mask can also be set at admission via HelloBody.Classes.
	TSubscribe Type = "subscribe"
	// TClockSync requests the global time (ClockSyncBody both ways).
	TClockSync Type = "clock_sync"
	// TStatusProbe and TStatusReport implement the heartbeat that drives
	// the Figure-3 connection lights.
	TStatusProbe  Type = "status_probe"
	TStatusReport Type = "status_report"
	// TLights carries the current connection lights (LightsBody).
	TLights Type = "lights"
	// TSuspend and TResume carry Media-Suspend decisions (SuspendBody).
	TSuspend Type = "suspend"
	TResume  Type = "resume"
	// TPresent starts a synchronized presentation (PresentBody).
	TPresent Type = "present"
	// TMediaUnit streams one media unit (MediaUnitBody). Sent without a
	// Seq it is fire-and-forget (streaming); with a Seq the server
	// acks/denies it.
	TMediaUnit Type = "media_unit"
	// TNodeHello opens a node-scoped session on a cluster node
	// (NodeHelloBody): the routing tier binds an already-admitted member
	// identity to a fresh connection, so a group-partition node can serve
	// a member whose home (directory entry, token, member log) lives on
	// another node. Answered by TWelcome; no session token is issued —
	// tokens belong to the home node.
	TNodeHello Type = "node_hello"
	// TForward carries a typed node-to-node forward (ForwardBody): the
	// inter-node plane for cross-partition state — member-directed
	// invitations routed to the invitee's home node, logged-event
	// replication to the partition's successor, and group-membership
	// replication for takeover. A connection whose first message is a
	// TForward is a peer link, not a client session.
	TForward Type = "forward"
	// TNodeMoved tells a client that one or more of its groups now live
	// on a different node (NodeMovedBody) — the routing tier pushes it
	// when a partition is handed off (a node died or the map was
	// rebalanced). The client converges exactly like a reconnect: one
	// TBackfill per moved group from its last applied sequence numbers.
	TNodeMoved Type = "node_moved"
	// TAck acknowledges a request; TErr reports a failure (ErrBody).
	TAck Type = "ack"
	TErr Type = "err"
	// TBye closes the session gracefully.
	TBye Type = "bye"
)

// AllTypes lists every wire message type, in protocol order. Tools and
// the documentation-completeness test range over it; a new Type constant
// must be added here (the protocol test cross-checks this list against
// the declared constants).
var AllTypes = []Type{
	THello, TWelcome, TJoin, TLeave, TCreateGroup,
	TFloorRequest, TFloorRelease, TTokenPass, TFloorApprove, TFloorEvent,
	TInvite, TInviteEvent, TInviteReply,
	TChat, TChatEvent, TAnnotate, TAnnotateEvent,
	TReplay, TBackfill, TSnapshot, TModeSwitch, TSubscribe,
	TClockSync, TStatusProbe, TStatusReport, TLights,
	TSuspend, TResume, TPresent, TMediaUnit,
	TNodeHello, TForward, TNodeMoved,
	TAck, TErr, TBye,
}

// Event classes partition the logged state stream so the server can
// filter per recipient: a session's class mask (HelloBody.Classes /
// TSubscribe) names the classes it wants pushed, and events of other
// classes are dropped before they reach its delivery queue. Each class
// carries its own dense per-log sequence (Message.CSeq), so filtering
// never punches holes in the sequence a client admits against.
const (
	// ClassFloor: floor events — grants, releases, passes, queueing,
	// approvals, queue restatements, mode switches (TFloorEvent).
	ClassFloor = "floor"
	// ClassSuspend: Media-Suspend and resume notices (TSuspend/TResume).
	ClassSuspend = "suspend"
	// ClassBoard: whiteboard and message-window operations
	// (TChatEvent/TAnnotateEvent).
	ClassBoard = "board"
	// ClassInvite: sub-group invitations on the member's private log
	// (TInviteEvent).
	ClassInvite = "invite"
	// ClassNone is the sentinel mask entry for "no logged pushes at
	// all": a mask containing it matches no class.
	ClassNone = "none"
)

// AllClasses lists the event classes of the logged state stream.
var AllClasses = []string{ClassFloor, ClassSuspend, ClassBoard, ClassInvite}

// ClassMask builds the canonical mask for a wire class list — the one
// rule shared by the server's filter and the client's local mirror: nil
// (admit every class) for an empty list, otherwise exactly the named
// classes, with the ClassNone sentinel contributing nothing (so a list
// of just ClassNone admits no class).
func ClassMask(classes []string) map[string]bool {
	if len(classes) == 0 {
		return nil
	}
	m := make(map[string]bool, len(classes))
	for _, c := range classes {
		if c != ClassNone {
			m[c] = true
		}
	}
	return m
}

// ClassOf maps a logged message type to its event class. Types outside
// the logged state stream report ok == false.
func ClassOf(t Type) (class string, ok bool) {
	switch t {
	case TFloorEvent:
		return ClassFloor, true
	case TSuspend, TResume:
		return ClassSuspend, true
	case TChatEvent, TAnnotateEvent:
		return ClassBoard, true
	case TInviteEvent:
		return ClassInvite, true
	default:
		return "", false
	}
}

// TraceSampled is the Message.TraceFlags bit asking every hop to
// record spans for this trace into its flight recorder and stage
// histograms. A trace context without it still propagates (slow-op
// detection keys off the context alone) but hops skip the per-span
// bookkeeping.
const TraceSampled uint8 = 1 << 0

// Sampled reports whether the message carries a sampled trace context:
// hops record named spans only for sampled traces, keeping the
// untraced hot path free of clock reads and allocations.
func (m Message) Sampled() bool {
	return m.TraceID != 0 && m.TraceFlags&TraceSampled != 0
}

// Codec errors.
var (
	// ErrDecode is returned for malformed wire bytes.
	ErrDecode = errors.New("protocol: decode failed")
	// ErrBodyMismatch is returned when a body does not match the type.
	ErrBodyMismatch = errors.New("protocol: body mismatch")
)

// Message is the wire envelope.
type Message struct {
	// Type discriminates the body.
	Type Type `json:"type"`
	// Seq correlates requests and replies (client-assigned, echoed by the
	// server in TAck/TErr).
	Seq int64 `json:"seq,omitempty"`
	// GSeq is the event-log sequence number stamped on logged state
	// broadcasts (floor events, suspend/resume, board operations, mode
	// switches, invitations): 1-based and dense per log at append time
	// (compaction may later retain a gapped subset). 0 on everything
	// unlogged (replies, probes, lights, media, private lines,
	// presentation starts).
	GSeq int64 `json:"gseq,omitempty"`
	// Class is the logged event's class (ClassFloor, ClassSuspend,
	// ClassBoard, ClassInvite) and CSeq its 1-based dense sequence
	// number within (log, class). Clients admit logged events strictly
	// in CSeq order per class: a duplicate is dropped, and a hole proves
	// the server dropped something on this recipient's queue — the
	// trigger for TBackfill. Per-class sequencing is what lets the
	// server filter whole classes per recipient without punching holes
	// in the stream a client admits against.
	Class string `json:"class,omitempty"`
	CSeq  int64  `json:"cseq,omitempty"`
	// State marks a state-bearing event: one that fully restates its
	// class's group state (floor events re-read mode/holder/queue at
	// append; suspend notices carry the whole suspended set). A client
	// may admit a state-bearing event ACROSS a hole — jumping its class
	// cursor forward — because everything the missed events did to that
	// class's state is restated here. Log compaction relies on the same
	// property: under ring pressure only each class's latest
	// state-bearing event (plus the board suffix) is retained.
	State bool `json:"state,omitempty"`
	// From and To are member IDs ("" when implicit).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Group scopes the message to a group.
	Group string `json:"group,omitempty"`
	// TraceID, TraceParent and TraceFlags carry the causal tracing
	// context: a nonzero TraceID names the op's trace, TraceParent is
	// the span context the sender was inside when it emitted this frame
	// (0 at the root), and TraceFlags carries TraceSampled. All three
	// are omitted from the wire — JSON omitempty, binary flagTrace —
	// whenever TraceID is zero, so an untraced message is byte-for-byte
	// what a pre-trace peer would have produced. On the JSON framing the
	// fields ride freely (JSON decoders ignore unknown fields, so every
	// older peer tolerates them); on the binary framing the flagTrace
	// extension shifts the body, so a sender must clear the fields
	// before encoding a binary frame for a session that negotiated
	// WireVersion < 2.
	TraceID     uint64 `json:"trace_id,omitempty"`
	TraceParent uint64 `json:"trace_parent,omitempty"`
	TraceFlags  uint8  `json:"trace_flags,omitempty"`
	// Body is the type-specific payload.
	Body json.RawMessage `json:"body,omitempty"`

	// bodyObj retains the typed body New marshalled, so EncodeBinary
	// can natively encode the hot types without re-parsing Body.
	bodyObj any
	// bodyBin holds the natively-encoded body of a decoded binary frame
	// (Body stays nil for those): Into decodes it directly, Encode
	// materializes the JSON form on demand, and EncodeBinary copies it
	// verbatim.
	bodyBin []byte
}

// HelloBody introduces a client. With Token set it resumes an existing
// session instead of opening a new one: the server re-binds the member
// identity (and any live stale session is displaced), after which the
// client converges through TBackfill without re-joining its groups.
type HelloBody struct {
	Name     string `json:"name"`
	Role     string `json:"role"` // "chair" or "participant"
	Priority int    `json:"priority"`
	Token    string `json:"token,omitempty"`
	// Classes is the session's initial event-class mask: the logged
	// event classes this client wants pushed (nil or empty means all;
	// ClassNone alone means none). TSubscribe replaces it later.
	Classes []string `json:"classes,omitempty"`
	// WireVersion asks to speak a newer wire framing after the
	// handshake: 0 (or absent — every pre-binary client) keeps the
	// session on JSON, 1 requests the binary framing of binary.go, 2
	// requests binary plus the trace-context frame extension (a sender
	// may stamp TraceID/TraceParent/TraceFlags onto its frames). The
	// server echoes the version it accepted in WelcomeBody.WireVersion
	// — never higher than asked — and both sides switch only after the
	// welcome; the handshake itself is always JSON.
	WireVersion int `json:"wire_version,omitempty"`
}

// SubscribeBody replaces the session's event-class mask: the server
// stops queuing logged events of classes outside it. Nil or empty means
// every class; a mask containing ClassNone matches none.
type SubscribeBody struct {
	Classes []string `json:"classes,omitempty"`
}

// WelcomeBody acknowledges the handshake.
type WelcomeBody struct {
	MemberID string `json:"member_id"`
	// ServerTimeNanos is the global clock at admission, for a first rough
	// sync.
	ServerTimeNanos int64 `json:"server_time_nanos"`
	// Token is the session-resume credential: presenting it in a later
	// THello reconnects as the same member.
	Token string `json:"token,omitempty"`
	// WireVersion is the wire framing the server accepted for the rest
	// of the session: 0 = JSON (also what a pre-binary server, which
	// never sets the field, answers), 1 = binary, 2 = binary with the
	// trace-context extension. Never higher than the version the hello
	// asked for.
	WireVersion int `json:"wire_version,omitempty"`
}

// GroupBody names a group.
type GroupBody struct {
	Group string `json:"group"`
}

// FloorRequestBody asks for a floor mode.
type FloorRequestBody struct {
	Mode   string `json:"mode"`             // floor.Mode string form
	Target string `json:"target,omitempty"` // direct-contact peer
}

// FloorDecisionBody reports an arbitration outcome.
type FloorDecisionBody struct {
	Granted       bool     `json:"granted"`
	Mode          string   `json:"mode"`
	Holder        string   `json:"holder,omitempty"`
	QueuePosition int      `json:"queue_position,omitempty"`
	Suspended     []string `json:"suspended,omitempty"`
	Level         string   `json:"level,omitempty"`
	Target        string   `json:"target,omitempty"`
	Reason        string   `json:"reason,omitempty"`
}

// TokenPassBody passes the token.
type TokenPassBody struct {
	To string `json:"to"`
}

// FloorApproveBody clears a queued member (chair → server).
type FloorApproveBody struct {
	Member string `json:"member"`
}

// FloorEventBody announces floor changes to a group.
type FloorEventBody struct {
	Mode   string `json:"mode"`
	Holder string `json:"holder,omitempty"`
	Member string `json:"member,omitempty"` // subject of the change
	// Event is the transition kind: "granted", "denied", "released",
	// "passed", "queued", "approved", "queue_position", "mode_switch"
	// (the group's floor mode changed; Mode is the new mode), or "queue"
	// (a coalesced restatement of the pending queue after transitions
	// shifted it).
	Event string `json:"event"`
	// QueuePosition is the recipient's own 1-based queue slot. Queue
	// slots are private: the logged (and backfilled) form of every floor
	// event carries 0, and the server personalizes the copy delivered to
	// a queued member — nobody learns another member's position, only
	// the public queue length.
	QueuePosition int `json:"queue_position,omitempty"`
	// QueueLen is the pending queue's length — the only queue shape
	// everyone sees.
	QueueLen int `json:"queue_len,omitempty"`
}

// InviteBody requests an invitation.
type InviteBody struct {
	Group string `json:"group"`
	To    string `json:"to"`
}

// InviteEventBody notifies the invitee.
type InviteEventBody struct {
	InviteID int64  `json:"invite_id"`
	Group    string `json:"group"`
	From     string `json:"from"`
}

// InviteReplyBody answers an invitation.
type InviteReplyBody struct {
	InviteID int64 `json:"invite_id"`
	Accept   bool  `json:"accept"`
}

// ChatBody posts a message-window line.
type ChatBody struct {
	Text string `json:"text"`
}

// AnnotateBody posts a whiteboard operation.
type AnnotateBody struct {
	Kind string `json:"kind"` // "draw", "text", "clear"
	Data string `json:"data"`
}

// SequencedBody wraps a broadcast board operation with its server
// sequence number. Under annotation storms the server coalesces
// contiguous same-author operations into one logged event: the first
// operation rides the top-level fields and the rest follow in More, in
// board order — one ring slot, one class sequence number and one
// fan-out for the whole burst. Recipients apply the top-level operation
// and then each entry of More exactly as if they had arrived singly.
type SequencedBody struct {
	Seq    int64  `json:"seq"`
	Author string `json:"author"`
	Kind   string `json:"kind"`
	Data   string `json:"data"`
	// More carries the rest of a coalesced burst (nil on singletons and
	// on private direct-contact lines, which never batch).
	More []SequencedBody `json:"more,omitempty"`
}

// ReplayBody requests board operations after a sequence number.
type ReplayBody struct {
	After int64 `json:"after"`
}

// BackfillBody asks for the suffix of an event log. Group names a group
// log; an empty Group means the sender's own member event log
// (invitations). Afters carries, per event class, the highest CSeq the
// sender has applied for that log; the server replays the retained
// events of the sender's subscribed classes past those positions, or
// falls back to one TSnapshot when a needed class no longer connects
// (its suffix was compacted away without a state-bearing entry to
// converge from). BoardSeq is the sender's whiteboard replica's highest
// operation, so a snapshot fallback carries only the missing board
// suffix.
type BackfillBody struct {
	Group    string           `json:"group,omitempty"`
	Afters   map[string]int64 `json:"afters,omitempty"`
	BoardSeq int64            `json:"board_seq,omitempty"`
}

// ModeSwitchBody sets a group's floor mode. Pin (session chair only)
// pins the group's policy: afterwards only the chair may switch modes —
// by TModeSwitch or by requesting a different mode's floor — until a
// later chair switch clears the pin.
type ModeSwitchBody struct {
	Mode string `json:"mode"`
	Pin  bool   `json:"pin,omitempty"`
}

// SnapshotBody is a group's authoritative state as of the event-log
// position in ClassSeqs — the compact catch-up a client applies when
// the log suffix it needs has been compacted away (or when it joins
// late). Queue slots stay private even here: the snapshot is built per
// recipient and carries only their own slot (QueuePos) next to the
// public QueueLen. For a member event log (Message.Group empty) only
// Seq, ClassSeqs and Invites are set.
type SnapshotBody struct {
	// Seq is the log's overall head (highest GSeq) at snapshot time;
	// ClassSeqs carries the per-class head CSeqs the recipient's class
	// cursors advance to.
	Seq       int64            `json:"seq"`
	ClassSeqs map[string]int64 `json:"class_seqs,omitempty"`
	Mode      string           `json:"mode,omitempty"`
	Holder    string           `json:"holder,omitempty"`
	QueuePos  int              `json:"queue_pos,omitempty"`
	QueueLen  int              `json:"queue_len,omitempty"`
	Suspended []string         `json:"suspended,omitempty"`
	Level     string           `json:"level,omitempty"`
	Pinned    bool             `json:"pinned,omitempty"`
	// Board is the whiteboard suffix after the requester's reported
	// BoardSeq (the whole board for a late joiner).
	Board   []SequencedBody   `json:"board,omitempty"`
	Invites []InviteEventBody `json:"invites,omitempty"`
}

// ClockSyncBody carries one Cristian exchange. The client fills
// ClientSendNanos; the server echoes it and fills MasterNanos.
type ClockSyncBody struct {
	ClientSendNanos int64 `json:"client_send_nanos"`
	MasterNanos     int64 `json:"master_nanos,omitempty"`
}

// BackpressureBody is one member's outbound-queue snapshot at the
// server: how deep their delivery queue is and how many messages the
// slow-consumer policy has dropped.
type BackpressureBody struct {
	QueueDepth int   `json:"queue_depth"`
	QueueCap   int   `json:"queue_cap"`
	Drops      int64 `json:"drops,omitempty"`
}

// LightsBody reports connection lights: member → "green"/"red", plus
// each member's backpressure counters (the teacher's window can show a
// lagging student next to a disconnected one). Heads is the event-log
// digest — log key (group ID, or "~member" for the recipient's own
// invitation log) → event class → head CSeq — that lets a client
// notice it is behind even on a quiet group: a head beyond its last
// applied CSeq for that class means a logged event was dropped on its
// queue, and it asks TBackfill. The digest is filtered to the
// recipient's joined groups, own member log and subscribed classes
// (event logs are group-private, like boards), and the whole lights
// push is skipped for a session when nothing in it changed since the
// last copy that session accepted.
type LightsBody struct {
	Lights       map[string]string           `json:"lights"`
	Backpressure map[string]BackpressureBody `json:"backpressure,omitempty"`
	Heads        map[string]map[string]int64 `json:"heads,omitempty"`
	// Origin identifies the shard this push covers: in a cluster each
	// node pushes the lights of exactly the members it homes, stamped
	// with its node index, and the client keeps one table per origin —
	// so a member's disappearance from their home node's next push
	// prunes them, while other nodes' entries are untouched. Empty on a
	// standalone server (whose push is the whole table).
	Origin string `json:"origin,omitempty"`
}

// SuspendBody names a suspended/resumed member. Suspended restates the
// group's whole suspended set as of the event (making every suspend
// notice state-bearing): a recipient that missed earlier transitions
// reconciles its believed set from it, both directions.
type SuspendBody struct {
	Member    string   `json:"member"`
	Level     string   `json:"level,omitempty"`
	Suspended []string `json:"suspended,omitempty"`
}

// MediaUnitBody is one streamed media unit (a video frame, an audio
// packet) — the wire form of media.Unit.
type MediaUnitBody struct {
	Object         string `json:"object"`
	Kind           string `json:"kind"`
	Seq            int    `json:"seq"`
	MediaTimeNanos int64  `json:"media_time_nanos"`
	Bytes          int    `json:"bytes"`
}

// PresentObject describes one timeline item of a presentation start.
type PresentObject struct {
	ID            string  `json:"id"`
	Kind          string  `json:"kind"`
	StartNanos    int64   `json:"start_nanos"`
	DurationNanos int64   `json:"duration_nanos"`
	Rate          float64 `json:"rate,omitempty"`
}

// PresentBody starts a synchronized presentation at a global instant.
type PresentBody struct {
	// StartGlobalNanos is the global-clock instant of presentation t=0.
	StartGlobalNanos int64           `json:"start_global_nanos"`
	Objects          []PresentObject `json:"objects"`
}

// ErrBody reports a request failure.
type ErrBody struct {
	Code   string `json:"code"`
	Detail string `json:"detail,omitempty"`
}

// CodeNodeMoved is the TErr code a cluster node answers with when asked
// to serve a group (or admit a member) it does not own: Detail carries
// the owning node's address, and a redirect-aware caller — the routing
// tier, or a directly-dialing client during its handshake — follows it.
const CodeNodeMoved = "node_moved"

// NodeHelloBody opens a node-scoped session: the routing tier presents
// an already-admitted member identity (assigned by the member's home
// node) and the node binds it to this connection without re-admission —
// same member ID on every node the session touches. Classes is the
// session's event-class mask, as in HelloBody.
type NodeHelloBody struct {
	MemberID string   `json:"member_id"`
	Name     string   `json:"name"`
	Role     string   `json:"role"`
	Priority int      `json:"priority"`
	Classes  []string `json:"classes,omitempty"`
	// WireVersion carries the client's negotiated wire framing to the
	// serving node, so a routed session speaks one format end to end
	// (the router relays frames verbatim).
	WireVersion int `json:"wire_version,omitempty"`
}

// NodeMemberInfo is one member record riding a node-to-node forward —
// the directory row a receiving node upserts before it can serve the
// member (shadow registration).
type NodeMemberInfo struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Role     string `json:"role"`
	Priority int    `json:"priority"`
}

// FloorReplicaBody is the floor-state blob replicated alongside logged
// floor/suspend events: everything the partition's successor needs to
// restore the group's arbitration state on takeover. Queue carries the
// member IDs in order — the canonical logged bytes redact them (queue
// slots are private), so takeover cannot be rebuilt from the wire
// events alone.
type FloorReplicaBody struct {
	Mode      string   `json:"mode"`
	Holder    string   `json:"holder,omitempty"`
	Queue     []string `json:"queue,omitempty"`
	Suspended []string `json:"suspended,omitempty"`
	Pinned    bool     `json:"pinned,omitempty"`
}

// Forward kinds: the typed node-to-node messages of the cluster plane.
const (
	// ForwardInvite delivers a member-directed state event (an
	// invitation) to the member's home node, which appends it to their
	// private event log and pushes it to their session.
	ForwardInvite = "invite"
	// ForwardReplica replicates one logged group event (the stamped wire
	// bytes, plus the floor blob for floor/suspend classes) to the
	// partition's successor node for takeover.
	ForwardReplica = "replica"
	// ForwardMembers replicates a group's membership roster (and chair)
	// to the successor, so a takeover can restore who belongs where.
	ForwardMembers = "members"
	// ForwardAck acknowledges an identified replication forward: the
	// receiver echoes ID back to From once the payload is durably applied
	// to its replica store. The sender's in-flight table clears the entry
	// (or resends it after a timeout) — replication factor R means a
	// logged append is only lost if R nodes die before any ack lands.
	ForwardAck = "ack"
	// ForwardMemberHome replicates a member's home-node state — the
	// directory row and the session-resume token — to the home's
	// successor list, so a resume (Client.Reconnect) survives home-node
	// death: the successor adopts the member the way it adopts groups.
	ForwardMemberHome = "member_home"
	// ForwardMemberDrop retracts a replicated member home after the home
	// node expires the session (reap), so a dead member cannot be
	// adopted back to life from a stale replica.
	ForwardMemberDrop = "member_drop"
	// ForwardMigrate asks a node to ship every partition it adopted from
	// the recovering node (Node/Addr) back to it — the coordinated
	// live-migration step of an epoch bump. The node answers on the same
	// connection with ForwardMigrated once every takeover package has
	// been shipped and the adopted state dropped.
	ForwardMigrate = "migrate"
	// ForwardMigrated is the reply to ForwardMigrate: Groups lists the
	// log keys (group IDs and "~member" keys) that were shipped back.
	ForwardMigrated = "migrated"
	// ForwardTakeover installs a complete partition package — roster,
	// floor blob, retained log events, board head — on the receiving
	// node, stamped with the epoch of the migration that shipped it. The
	// receiver installs it into live state when it owns the key natively,
	// and into its replica store otherwise; packages from a stale epoch
	// are discarded.
	ForwardTakeover = "takeover"
)

// ReplicaEventBody is one retained log event riding a takeover package:
// the stamped wire bytes plus the sequence coordinates needed to
// re-install them with AppendRaw, preserving GSeq/CSeq exactly. The
// wire bytes ride one of two fields — Wire embeds a JSON frame
// directly, WireB carries a binary frame base64-encoded (binary bytes
// are not valid JSON) — so peers on either side of the format switch
// parse the envelope; use SetWire/WireBytes, which route by format.
type ReplicaEventBody struct {
	GSeq  int64           `json:"gseq"`
	CSeq  int64           `json:"cseq"`
	Class string          `json:"class,omitempty"`
	State bool            `json:"state,omitempty"`
	Wire  json.RawMessage `json:"wire,omitempty"`
	WireB []byte          `json:"wire_b,omitempty"`
}

// SetWire stores stamped wire bytes in the field matching their format.
func (b *ReplicaEventBody) SetWire(wire []byte) {
	if IsBinaryFrame(wire) {
		b.Wire, b.WireB = nil, wire
	} else {
		b.Wire, b.WireB = wire, nil
	}
}

// WireBytes returns the stamped wire bytes, whichever field carried them.
func (b *ReplicaEventBody) WireBytes() []byte {
	if len(b.WireB) > 0 {
		return b.WireB
	}
	return b.Wire
}

// TakeoverBody is a complete partition package shipped by an
// epoch-versioned migration: everything a node needs to serve the key —
// roster and chair, the floor blob, the retained log suffix, and the
// board head. For a "~member" key, Member and Token carry the home-node
// state instead of the group fields. Epoch stamps the migration; a
// receiver discards packages older than the newest epoch it has
// installed for the key.
type TakeoverBody struct {
	Key       string             `json:"key"`
	Epoch     int64              `json:"epoch"`
	Chair     string             `json:"chair,omitempty"`
	Members   []NodeMemberInfo   `json:"members,omitempty"`
	Floor     *FloorReplicaBody  `json:"floor,omitempty"`
	Events    []ReplicaEventBody `json:"events,omitempty"`
	BoardHead int64              `json:"board_head,omitempty"`
	Member    *NodeMemberInfo    `json:"member,omitempty"`
	Token     string             `json:"token,omitempty"`
}

// ForwardBody is a typed node-to-node forward. Kind selects the shape:
// ForwardInvite carries To (the member) and Msg (the inner event);
// ForwardReplica carries Group, Msg (the logged wire bytes, sequence
// numbers already stamped) and optionally Floor; ForwardMembers carries
// Group, Members and Chair; ForwardAck carries ID and From;
// ForwardMemberHome carries Member and Token; ForwardMemberDrop carries
// To; ForwardMigrate carries Node and Addr; ForwardMigrated carries
// Groups; ForwardTakeover carries Takeover. Replicated kinds (replica,
// members, member_home, member_drop) additionally carry ID and From so
// the receiver can ack them.
type ForwardBody struct {
	Kind    string            `json:"kind"`
	Group   string            `json:"group,omitempty"`
	To      string            `json:"to,omitempty"`
	Chair   string            `json:"chair,omitempty"`
	Members []NodeMemberInfo  `json:"members,omitempty"`
	Floor   *FloorReplicaBody `json:"floor,omitempty"`
	// Msg embeds a JSON inner frame; MsgB carries a binary one
	// base64-encoded (binary bytes are not valid JSON inside the
	// TForward envelope). Use SetMsg/WireMsg, which route by format.
	Msg  json.RawMessage `json:"msg,omitempty"`
	MsgB []byte          `json:"msg_b,omitempty"`
	// ID identifies an acked replication forward (per-sender monotonic,
	// 0 = unacked fire-and-forget); From is the sender's peer address the
	// ack is sent back to.
	ID   int64  `json:"id,omitempty"`
	From string `json:"from,omitempty"`
	// Epoch stamps migration-coordination forwards with the partition-map
	// epoch they belong to.
	Epoch int64 `json:"epoch,omitempty"`
	// Member and Token carry a replicated member home (ForwardMemberHome).
	Member *NodeMemberInfo `json:"member,omitempty"`
	Token  string          `json:"token,omitempty"`
	// Node and Addr identify the recovering node of a ForwardMigrate;
	// Groups lists the shipped keys of a ForwardMigrated reply.
	Node   int      `json:"node,omitempty"`
	Addr   string   `json:"addr,omitempty"`
	Groups []string `json:"groups,omitempty"`
	// Takeover is the partition package of a ForwardTakeover.
	Takeover *TakeoverBody `json:"takeover,omitempty"`
}

// SetMsg stores inner wire bytes in the field matching their format.
func (b *ForwardBody) SetMsg(wire []byte) {
	if IsBinaryFrame(wire) {
		b.Msg, b.MsgB = nil, wire
	} else {
		b.Msg, b.MsgB = wire, nil
	}
}

// WireMsg returns the inner wire bytes, whichever field carried them.
func (b *ForwardBody) WireMsg() []byte {
	if len(b.MsgB) > 0 {
		return b.MsgB
	}
	return b.Msg
}

// NodeMovedBody names the groups whose partition moved to another node.
// Addr is the new owner (informational — a routed client keeps talking
// to the router, which already follows the rebalanced map). The client
// treats each moved group like a reconnect: one TBackfill from its last
// applied sequence numbers converges floor, suspensions and board.
// Origin, when set, is the dead node's lights shard (LightsBody.Origin
// form): that node homes members whose lights it alone reported, so the
// client flips that shard's entries red — the shard will push no more.
type NodeMovedBody struct {
	Groups []string `json:"groups,omitempty"`
	Addr   string   `json:"addr,omitempty"`
	Origin string   `json:"origin,omitempty"`
	// Epoch is the partition-map epoch the move belongs to, when the
	// push came from an epoch-versioned migration (0 on a plain
	// failover push). A client needs no epoch bookkeeping — backfill
	// converges either way — but tooling can order moves by it.
	Epoch int64 `json:"epoch,omitempty"`
}

// RequestGroup extracts the group a client request scopes to — the one
// rule the cluster's routing tier and a node's ownership gate share,
// so a request can never be routed by one key and gated by another.
// Most requests carry the group in the envelope; group administration
// scopes in the body, and a backfill names its log there (empty = the
// sender's member log, which is home-node state, not a group key).
func RequestGroup(m Message) string {
	if m.Group != "" {
		return m.Group
	}
	switch m.Type {
	case TJoin, TLeave, TCreateGroup:
		var body GroupBody
		if m.Into(&body) == nil {
			return body.Group
		}
	case TInvite:
		var body InviteBody
		if m.Into(&body) == nil {
			return body.Group
		}
	case TBackfill:
		var body BackfillBody
		if m.Into(&body) == nil {
			return body.Group
		}
	}
	return ""
}

// New builds a message with a marshalled body. A nil body leaves
// Message.Body empty. The typed body is retained alongside its JSON so
// a later EncodeBinary can natively encode the hot types without
// re-parsing.
func New(t Type, body any) (Message, error) {
	msg := Message{Type: t}
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return Message{}, fmt.Errorf("protocol: marshal %s body: %w", t, err)
		}
		msg.Body = raw
		msg.bodyObj = body
	}
	return msg, nil
}

// MustNew is New for bodies that cannot fail to marshal (all body types
// in this package); it panics otherwise, which indicates a programming
// error, not input data.
func MustNew(t Type, body any) Message {
	m, err := New(t, body)
	if err != nil {
		panic(err)
	}
	return m
}

// encodes counts Encode calls process-wide; the broadcast benchmarks read
// it to prove the encode-once fan-out invariant (one Encode per broadcast
// regardless of group size).
var encodes atomic.Int64

// EncodeCount returns the number of Encode calls since process start.
func EncodeCount() int64 { return encodes.Load() }

// Encode serializes a message as JSON. A message decoded from a binary
// frame with a natively-encoded body has its JSON body materialized
// here — the binary→JSON transcode a mixed-format deployment needs when
// replaying stored binary frames to a JSON-negotiated session.
func Encode(m Message) ([]byte, error) {
	encodes.Add(1)
	if len(m.Body) == 0 && m.bodyBin != nil {
		raw, err := jsonBody(m.Type, m.bodyBin)
		if err != nil {
			return nil, fmt.Errorf("protocol: encode: %w", err)
		}
		m.Body = raw
	}
	out, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("protocol: encode: %w", err)
	}
	return out, nil
}

// Decode parses wire bytes into a message.
func Decode(data []byte) (Message, error) {
	var m Message
	if err := json.Unmarshal(data, &m); err != nil {
		return Message{}, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	if m.Type == "" {
		return Message{}, fmt.Errorf("%w: missing type", ErrDecode)
	}
	return m, nil
}

// Into unmarshals the message body into out. A natively-encoded binary
// body decodes directly (out must be a pointer to the type's body
// struct, the same contract the JSON path enforces by shape).
func (m Message) Into(out any) error {
	if len(m.Body) == 0 {
		if m.bodyBin != nil {
			return intoNative(m.Type, m.bodyBin, out)
		}
		return fmt.Errorf("%w: %s has no body", ErrBodyMismatch, m.Type)
	}
	if err := json.Unmarshal(m.Body, out); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBodyMismatch, m.Type, err)
	}
	return nil
}

// Nanos converts a time to the wire representation.
func Nanos(t time.Time) int64 { return t.UnixNano() }

// FromNanos converts the wire representation back to a time.
func FromNanos(n int64) time.Time { return time.Unix(0, n) }
