package protocol

import (
	"errors"
	"testing"
	"time"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msg := MustNew(THello, HelloBody{Name: "Alice", Role: "participant", Priority: 2})
	msg.Seq = 7
	msg.From = "alice"
	msg.Group = "class"
	wire, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != THello || got.Seq != 7 || got.From != "alice" || got.Group != "class" {
		t.Errorf("envelope = %+v", got)
	}
	var body HelloBody
	if err := got.Into(&body); err != nil {
		t.Fatal(err)
	}
	if body.Name != "Alice" || body.Priority != 2 {
		t.Errorf("body = %+v", body)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("{not json")); !errors.Is(err, ErrDecode) {
		t.Errorf("garbage: %v", err)
	}
	if _, err := Decode([]byte(`{"seq":1}`)); !errors.Is(err, ErrDecode) {
		t.Errorf("missing type: %v", err)
	}
}

func TestIntoErrors(t *testing.T) {
	msg := Message{Type: TBye}
	var body HelloBody
	if err := msg.Into(&body); !errors.Is(err, ErrBodyMismatch) {
		t.Errorf("no body: %v", err)
	}
	bad := Message{Type: THello, Body: []byte(`{"priority":"high"}`)}
	if err := bad.Into(&body); !errors.Is(err, ErrBodyMismatch) {
		t.Errorf("wrong field type: %v", err)
	}
}

func TestNewNilBody(t *testing.T) {
	msg, err := New(TBye, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Body) != 0 {
		t.Errorf("body = %s", msg.Body)
	}
	wire, _ := Encode(msg)
	got, err := Decode(wire)
	if err != nil || got.Type != TBye {
		t.Errorf("round trip: %+v %v", got, err)
	}
}

func TestAllBodyTypesRoundTrip(t *testing.T) {
	cases := []struct {
		typ  Type
		body any
	}{
		{THello, HelloBody{Name: "n", Role: "chair", Priority: 5}},
		{TWelcome, WelcomeBody{MemberID: "m", ServerTimeNanos: 12345}},
		{TJoin, GroupBody{Group: "g"}},
		{TFloorRequest, FloorRequestBody{Mode: "equal-control", Target: "bob"}},
		{TAck, FloorDecisionBody{Granted: true, Mode: "free-access", Suspended: []string{"carol"}}},
		{TTokenPass, TokenPassBody{To: "bob"}},
		{TFloorEvent, FloorEventBody{Mode: "equal-control", Holder: "alice", Event: "granted"}},
		{TFloorEvent, FloorEventBody{Mode: "equal-control", Holder: "alice", Event: "queue", QueuePosition: 2, QueueLen: 3}},
		{TInvite, InviteBody{Group: "g", To: "bob"}},
		{TInviteEvent, InviteEventBody{InviteID: 3, Group: "g", From: "alice"}},
		{TInviteReply, InviteReplyBody{InviteID: 3, Accept: true}},
		{TChat, ChatBody{Text: "hello"}},
		{TAnnotate, AnnotateBody{Kind: "draw", Data: "stroke"}},
		{TChatEvent, SequencedBody{Seq: 9, Author: "a", Kind: "text", Data: "hi"}},
		{TReplay, ReplayBody{After: 4}},
		{TBackfill, BackfillBody{Group: "g", Afters: map[string]int64{ClassFloor: 17, ClassBoard: 4}, BoardSeq: 4}},
		{TSubscribe, SubscribeBody{Classes: []string{ClassFloor, ClassBoard}}},
		{TModeSwitch, ModeSwitchBody{Mode: "moderated-queue", Pin: true}},
		{TSnapshot, SnapshotBody{
			Seq: 21, ClassSeqs: map[string]int64{ClassFloor: 7, ClassBoard: 14},
			Mode: "equal-control", Holder: "alice",
			QueuePos: 1, QueueLen: 2, Suspended: []string{"carol"},
			Level: "degraded", Pinned: true,
			Board:   []SequencedBody{{Seq: 2, Author: "a", Kind: "text", Data: "hi"}},
			Invites: []InviteEventBody{{InviteID: 5, Group: "g", From: "alice"}},
		}},
		{TClockSync, ClockSyncBody{ClientSendNanos: 1, MasterNanos: 2}},
		{TLights, LightsBody{Lights: map[string]string{"alice": "green"}}},
		{TSuspend, SuspendBody{Member: "carol", Level: "degraded", Suspended: []string{"carol", "dave"}}},
		{TPresent, PresentBody{StartGlobalNanos: 99, Objects: []PresentObject{{ID: "v", Kind: "video", DurationNanos: 10}}}},
		{TErr, ErrBody{Code: "floor_busy", Detail: "position 2"}},
	}
	for _, c := range cases {
		msg := MustNew(c.typ, c.body)
		wire, err := Encode(msg)
		if err != nil {
			t.Fatalf("%s: %v", c.typ, err)
		}
		got, err := Decode(wire)
		if err != nil {
			t.Fatalf("%s decode: %v", c.typ, err)
		}
		if got.Type != c.typ {
			t.Errorf("type = %s, want %s", got.Type, c.typ)
		}
		if len(got.Body) == 0 {
			t.Errorf("%s: empty body", c.typ)
		}
	}
}

func TestNanosRoundTrip(t *testing.T) {
	now := time.Date(2001, 4, 16, 9, 30, 0, 123456789, time.UTC)
	if got := FromNanos(Nanos(now)); !got.Equal(now) {
		t.Errorf("round trip: %v vs %v", got, now)
	}
}

func TestNewRejectsUnmarshalableBody(t *testing.T) {
	if _, err := New(TChat, make(chan int)); err == nil {
		t.Error("channel body should fail to marshal")
	}
}

func TestMustNewPanicsOnBadBody(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on unmarshalable body")
		}
	}()
	MustNew(TChat, make(chan int))
}
