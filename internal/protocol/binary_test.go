package protocol

import (
	"bytes"
	"errors"
	"testing"
)

// sampleBody returns a representative body value for a type, nil for
// the body-less types. Round-trip tests range AllTypes through it so a
// new type cannot ship without binary coverage.
func sampleBody(t Type) any {
	switch t {
	case THello:
		return HelloBody{Name: "Alice", Role: "chair", Priority: 5, WireVersion: 1}
	case TWelcome:
		return WelcomeBody{MemberID: "m1", Token: "tok", WireVersion: 1}
	case TJoin, TLeave, TCreateGroup:
		return GroupBody{Group: "class"}
	case TFloorRequest:
		return FloorRequestBody{Mode: "lecture"}
	case TFloorEvent:
		return FloorEventBody{Mode: "lecture", Holder: "m1", Member: "m2", Event: "granted", QueuePosition: 2, QueueLen: 3}
	case TChat:
		return ChatBody{Text: "hello"}
	case TAnnotate:
		return AnnotateBody{Kind: "draw", Data: "x"}
	case TChatEvent, TAnnotateEvent:
		return SequencedBody{Seq: 9, Author: "m1", Kind: "text", Data: "hi",
			More: []SequencedBody{{Seq: 10, Author: "m1", Kind: "text", Data: "again"}}}
	case TSuspend, TResume:
		return SuspendBody{Member: "m2", Level: "minimal", Suspended: []string{"m2", "m3"}}
	case TAck:
		return SequencedBody{Seq: 1, Author: "m1", Kind: "text", Data: "hi"}
	case TErr:
		return ErrBody{Code: "no_floor", Detail: "nope"}
	default:
		return nil
	}
}

// TestBinaryRoundTripAllTypes drives every wire type through
// EncodeBinary → DecodeAny and checks the envelope survives intact and
// the body JSON-normalizes to the same bytes the JSON path produces.
func TestBinaryRoundTripAllTypes(t *testing.T) {
	for _, typ := range AllTypes {
		msg := MustNew(typ, sampleBody(typ))
		msg.Seq = 41
		msg.GSeq = 7
		msg.CSeq = 3
		msg.Class = ClassBoard
		msg.From = "m1"
		msg.To = "m2"
		msg.Group = "class"
		msg.State = true
		wire, err := EncodeBinary(msg)
		if err != nil {
			t.Fatalf("%s: encode: %v", typ, err)
		}
		if !IsBinaryFrame(wire) {
			t.Fatalf("%s: frame not recognized as binary", typ)
		}
		got, err := DecodeAny(wire)
		if err != nil {
			t.Fatalf("%s: decode: %v", typ, err)
		}
		if got.Type != typ || got.Seq != 41 || got.GSeq != 7 || got.CSeq != 3 ||
			got.Class != ClassBoard || got.From != "m1" || got.To != "m2" ||
			got.Group != "class" || !got.State {
			t.Fatalf("%s: envelope = %+v", typ, got)
		}
		// The JSON re-encode of the decoded frame must carry the same
		// body the JSON path would have: transcode is lossless.
		jsonWire, err := Encode(got)
		if err != nil {
			t.Fatalf("%s: transcode: %v", typ, err)
		}
		direct, err := Encode(msg)
		if err != nil {
			t.Fatalf("%s: json encode: %v", typ, err)
		}
		if !bytes.Equal(jsonWire, direct) {
			t.Fatalf("%s: transcode drift:\n bin→json: %s\n    json: %s", typ, jsonWire, direct)
		}
	}
}

// TestBinaryNativeBodiesInto checks the native codecs decode through
// Into identically to their JSON twins.
func TestBinaryNativeBodiesInto(t *testing.T) {
	ev := MustNew(TChatEvent, sampleBody(TChatEvent))
	ev.Group = "g"
	wire, err := EncodeBinary(ev)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(wire)
	if err != nil {
		t.Fatal(err)
	}
	var body SequencedBody
	if err := got.Into(&body); err != nil {
		t.Fatal(err)
	}
	want := sampleBody(TChatEvent).(SequencedBody)
	if body.Seq != want.Seq || body.Author != want.Author || body.Data != want.Data ||
		len(body.More) != 1 || body.More[0].Data != "again" {
		t.Fatalf("body = %+v", body)
	}
	// Wrong target type must error with ErrBodyMismatch, not panic.
	var wrong ChatBody
	if err := got.Into(&wrong); !errors.Is(err, ErrBodyMismatch) {
		t.Fatalf("wrong target: %v", err)
	}
}

// TestBinaryReencodeReusesNativeBody checks the bodyBin path: a
// natively-decoded frame re-encodes byte-identically without
// re-marshalling the body.
func TestBinaryReencodeReusesNativeBody(t *testing.T) {
	msg := MustNew(TFloorEvent, sampleBody(TFloorEvent))
	msg.Group = "g"
	msg.Class = ClassFloor
	wire, err := EncodeBinary(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(wire)
	if err != nil {
		t.Fatal(err)
	}
	again, err := EncodeBinary(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, again) {
		t.Fatalf("re-encode drift:\n was % x\n now % x", wire, again)
	}
}

// TestBinaryNonNativeCarrierStaysJSON pins the regression where an ack
// carrying a SequencedBody payload was flagged native: the decoder
// picks its reader by message type, so only types with their own codec
// may set the native flag.
func TestBinaryNonNativeCarrierStaysJSON(t *testing.T) {
	ack := MustNew(TAck, SequencedBody{Seq: 1, Author: "m1", Kind: "text", Data: "hi"})
	ack.Seq = 3
	wire, err := EncodeBinary(ack)
	if err != nil {
		t.Fatal(err)
	}
	if wire[1]&flagNativeBody != 0 {
		t.Fatal("ack frame flagged native")
	}
	got, err := DecodeAny(wire)
	if err != nil {
		t.Fatal(err)
	}
	var body SequencedBody
	if err := got.Into(&body); err != nil || body.Data != "hi" {
		t.Fatalf("body = %+v (%v)", body, err)
	}
}

// TestBinaryClassEscape covers class strings outside AllClasses, which
// ride length-prefixed behind the escape code.
func TestBinaryClassEscape(t *testing.T) {
	msg := MustNew(TChat, ChatBody{Text: "x"})
	msg.Class = "exotic"
	wire, err := EncodeBinary(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Class != "exotic" {
		t.Fatalf("class = %q", got.Class)
	}
}

// TestBinaryTruncation feeds the decoder every proper prefix of valid
// frames: each must error cleanly (never panic, never succeed).
func TestBinaryTruncation(t *testing.T) {
	for _, typ := range []Type{TChat, TChatEvent, TFloorEvent, TSuspend, TJoin, THello} {
		msg := MustNew(typ, sampleBody(typ))
		msg.Seq = 99
		msg.From = "member-with-a-name"
		msg.Group = "group"
		wire, err := EncodeBinary(msg)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(wire); n++ {
			got, err := DecodeBinary(wire[:n])
			if err == nil && (len(got.Body) > 0 || got.bodyBin != nil) {
				// The one decodable prefix is the cut at the body
				// boundary — indistinguishable from a body-less frame.
				// Anything that yields a body must have been the whole
				// frame.
				t.Fatalf("%s: prefix %d/%d decoded with body", typ, n, len(wire))
			}
		}
	}
}

// TestBinaryMalformed covers the corrupt-frame classes the fuzzer also
// explores: wrong magic, unknown codes, oversized lengths and counts.
// Every case must produce ErrDecode without panicking or allocating
// ahead of the frame's real size.
func TestBinaryMalformed(t *testing.T) {
	valid, err := EncodeBinary(MustNew(TChatEvent, sampleBody(TChatEvent)))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":                {},
		"short":                {binMagic, 0},
		"not binary":           {'{', '}'},
		"unknown type code":    {binMagic, 0, 0xF0, 0, 0, 0, 0, 0, 0, 0},
		"unknown class code":   {binMagic, 0, 0, 0, 0, 0, 0xB0, 0, 0, 0},
		"native flag no codec": {binMagic, flagNativeBody, typeCodes[TJoin], 0, 0, 0, 0, 0, 0, 0, 1},
		"native flag empty":    {binMagic, flagNativeBody, typeCodes[TChat], 0, 0, 0, 0, 0, 0, 0},
		"lp string past frame": {binMagic, 0, 0, 0, 0, 0, 0, 0xFF, 0x01, 'x'},
		"huge more count": append(append([]byte{binMagic, flagNativeBody, typeCodes[TChatEvent]},
			0, 0, 0, 0, 0, 0, 0), // envelope: seqs, class, from, to, group
			// native SequencedBody: seq 0, empty author/kind/data, then a
			// More count far past the remaining bytes.
			0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F),
		"truncated varint": {binMagic, 0, 0, 0x80},
	}
	for name, frame := range cases {
		msg, err := DecodeBinary(frame)
		if err == nil {
			t.Errorf("%s: decoded %+v", name, msg)
		} else if !errors.Is(err, ErrDecode) {
			t.Errorf("%s: err = %v, want ErrDecode", name, err)
		}
	}
	// And the valid frame still parses after all that.
	if _, err := DecodeBinary(valid); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeBinaryCountsEncodes pins the encode-once accounting: both
// formats bump the same counter the benchmarks gate.
func TestEncodeBinaryCountsEncodes(t *testing.T) {
	before := EncodeCount()
	if _, err := EncodeBinary(MustNew(TChat, ChatBody{Text: "x"})); err != nil {
		t.Fatal(err)
	}
	if _, err := Encode(MustNew(TChat, ChatBody{Text: "x"})); err != nil {
		t.Fatal(err)
	}
	if got := EncodeCount() - before; got != 2 {
		t.Fatalf("EncodeCount delta = %d, want 2", got)
	}
}

// TestDecodeAnyDispatch checks the one-byte format sniff both ways.
func TestDecodeAnyDispatch(t *testing.T) {
	msg := MustNew(TChat, ChatBody{Text: "x"})
	msg.Group = "g"
	bin, err := EncodeBinary(msg)
	if err != nil {
		t.Fatal(err)
	}
	js, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if IsBinaryFrame(js) {
		t.Fatal("JSON frame sniffed as binary")
	}
	for _, wire := range [][]byte{bin, js} {
		got, err := DecodeAny(wire)
		if err != nil {
			t.Fatal(err)
		}
		var body ChatBody
		if got.Type != TChat || got.Into(&body) != nil || body.Text != "x" {
			t.Fatalf("DecodeAny(% x) = %+v", wire[:3], got)
		}
	}
}

// FuzzDecodeBinary throws arbitrary bytes at the binary decoder. The
// invariant under fuzz: DecodeBinary never panics, and anything it
// accepts must survive a re-encode → re-decode round trip with the
// envelope intact (the decoder and encoder agree on the format).
func FuzzDecodeBinary(f *testing.F) {
	for _, typ := range AllTypes {
		msg := MustNew(typ, sampleBody(typ))
		msg.Seq = 12
		msg.Class = ClassFloor
		msg.From = "m1"
		msg.Group = "g"
		if wire, err := EncodeBinary(msg); err == nil {
			f.Add(wire)
		}
	}
	f.Add([]byte{binMagic})
	f.Add([]byte{binMagic, flagNativeBody | flagState, 14, 0x80, 0x01})
	f.Add([]byte(`{"type":"chat","body":{"text":"hi"}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeAny(data)
		if err != nil {
			return
		}
		if !IsBinaryFrame(data) {
			return
		}
		wire, err := EncodeBinary(msg)
		if err != nil {
			t.Fatalf("accepted frame failed re-encode: %v\n frame % x", err, data)
		}
		again, err := DecodeBinary(wire)
		if err != nil {
			t.Fatalf("re-encoded frame failed decode: %v\n frame % x", err, wire)
		}
		if again.Type != msg.Type || again.Seq != msg.Seq || again.GSeq != msg.GSeq ||
			again.CSeq != msg.CSeq || again.Class != msg.Class || again.From != msg.From ||
			again.To != msg.To || again.Group != msg.Group || again.State != msg.State {
			t.Fatalf("round-trip envelope drift:\n was %+v\n now %+v", msg, again)
		}
	})
}
