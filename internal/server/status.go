package server

import (
	"dmps/internal/protocol"
	"dmps/internal/resource"
)

// probeLoop periodically probes every session, recomputes the connection
// lights (Figure 3) and broadcasts them, and lifts Media-Suspend once the
// resource level returns to Normal.
func (s *Server) probeLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case <-s.cfg.Clock.After(s.cfg.ProbeInterval):
		}
		probe := protocol.MustNew(protocol.TStatusProbe, nil)
		s.mu.Lock()
		sessions := make([]*session, 0, len(s.sessions))
		for _, sess := range s.sessions {
			sessions = append(sessions, sess)
		}
		s.mu.Unlock()
		for _, sess := range sessions {
			sess.mu.Lock()
			alive := sess.alive
			sess.mu.Unlock()
			if alive {
				_ = sess.send(probe)
			}
		}
		s.broadcastLights()
		s.maybeReinstate()
	}
}

// Lights returns the current connection lights, member ID → light.
func (s *Server) Lights() map[string]Light {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Light, len(s.sessions))
	for id, sess := range s.sessions {
		out[string(id)] = sess.light(now, s.cfg.ProbeTimeout)
	}
	return out
}

// broadcastLights pushes the light table to every connected client — the
// teacher's window renders it as the per-student indicator row.
func (s *Server) broadcastLights() {
	lights := s.Lights()
	body := protocol.LightsBody{Lights: make(map[string]string, len(lights))}
	for id, l := range lights {
		body.Lights[id] = string(l)
	}
	msg := protocol.MustNew(protocol.TLights, body)
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.mu.Lock()
		alive := sess.alive
		sess.mu.Unlock()
		if alive {
			_ = sess.send(msg)
		}
	}
}

// maybeReinstate lifts suspensions in every group once resources are
// Normal again, broadcasting TResume for each reinstated member.
func (s *Server) maybeReinstate() {
	if s.cfg.Monitor == nil || s.cfg.Monitor.Level() != resource.Normal {
		return
	}
	for _, gid := range s.registry.Groups() {
		suspended := s.floorCtl.Suspended(gid)
		if len(suspended) == 0 {
			continue
		}
		s.floorCtl.Reinstate(gid)
		for _, m := range suspended {
			note := protocol.MustNew(protocol.TResume, protocol.SuspendBody{
				Member: string(m),
				Level:  resource.Normal.String(),
			})
			note.Group = gid
			s.broadcastGroup(gid, note)
		}
	}
}
