package server

import (
	"dmps/internal/protocol"
	"dmps/internal/resource"
	"dmps/internal/whiteboard"
)

// snapshotSessions copies the session table under one lock acquisition.
func (s *Server) snapshotSessions() []*session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	return out
}

// probeLoop periodically probes every session, recomputes the connection
// lights (Figure 3) and broadcasts them, and lifts Media-Suspend once the
// resource level returns to Normal.
func (s *Server) probeLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case <-s.cfg.Clock.After(s.cfg.ProbeInterval):
		}
		// One encode for the whole probe fan-out.
		wire, err := protocol.Encode(protocol.MustNew(protocol.TStatusProbe, nil))
		if err != nil {
			continue
		}
		for _, sess := range s.snapshotSessions() {
			sess.mu.Lock()
			alive := sess.alive
			sess.mu.Unlock()
			if alive {
				s.sendWire(sess, wire)
			}
		}
		s.broadcastLights()
		s.resyncSessions()
		s.maybeReinstate()
	}
}

// resyncSessions re-pushes authoritative state to sessions that dropped
// state-carrying events under backpressure, until the push fits their
// queue. Per marked group and class it sends the current floor state (a
// dropped grant would otherwise wedge a token group — floor state has
// no client-side catch-up path), re-sends the board's tail operation
// (behind replicas see a gap and ask replay; current replicas ignore
// the duplicate — this repairs tail-of-burst and truncated-replay drops
// that no later event would expose), and re-states the member's current
// suspension status. Dropped invitations are re-pushed from the
// registry's pending set.
func (s *Server) resyncSessions() {
	for _, sess := range s.snapshotSessions() {
		for gid, class := range sess.takeResync() {
			if failed := s.resyncGroupState(sess, gid, class); failed != 0 {
				sess.markResync(gid, failed)
			}
		}
		if sess.takeInviteResync() && !s.resyncInvites(sess) {
			sess.markInviteResync()
		}
	}
}

// resyncGroupState pushes the requested classes of one group's state to
// a session, returning the classes that did not fit the queue.
func (s *Server) resyncGroupState(sess *session, gid string, class resyncClass) resyncClass {
	var failed resyncClass
	if class&resyncFloor != 0 {
		holder, queue := s.floorCtl.HolderAndQueue(gid)
		pos := 0
		for i, m := range queue {
			if m == sess.member.ID {
				pos = i + 1
				break
			}
		}
		note := protocol.MustNew(protocol.TFloorEvent, protocol.FloorEventBody{
			Mode:          s.floorCtl.ModeOf(gid).String(),
			Holder:        string(holder),
			Member:        string(sess.member.ID),
			Event:         "resync",
			QueuePosition: pos,
		})
		note.Group = gid
		if !s.sendMsg(sess, note) {
			failed |= resyncFloor
		}
		// A concurrent arbitration between the snapshot and the enqueue
		// can slip its own broadcast in first, making the resync the
		// stale last word in the client's cache. Re-check and re-mark so
		// the next tick pushes the fresher state: staleness is bounded
		// by one probe interval instead of lasting until the next
		// unrelated floor event.
		if h2, q2 := s.floorCtl.HolderAndQueue(gid); h2 != holder || len(q2) != len(queue) {
			failed |= resyncFloor
		}
	}
	if class&resyncBoard != 0 {
		// Board tail nudge.
		gb := s.board(gid)
		gb.mu.Lock()
		tail := gb.board.Since(gb.board.Seq() - 1)
		gb.mu.Unlock()
		if len(tail) > 0 {
			op := tail[len(tail)-1]
			typ := protocol.TAnnotateEvent
			if op.Kind == whiteboard.Text {
				typ = protocol.TChatEvent
			}
			event := protocol.MustNew(typ, protocol.SequencedBody{
				Seq: op.Seq, Author: op.Author, Kind: op.Kind.String(), Data: op.Data,
			})
			event.Group = gid
			if !s.sendMsg(sess, event) {
				failed |= resyncBoard
			}
		}
	}
	if class&resyncSuspend != 0 {
		// The dropped notice could have concerned any member, so
		// re-state the group's whole suspended set (usually small —
		// Media-Suspend picks one victim per arbitration), plus this
		// member's own reinstatement when they are clear: a victim that
		// missed its TSuspend hears it, a bystander that missed
		// another's TSuspend hears it, and a reinstated member that
		// missed its own TResume hears that. A bystander's view of
		// someone ELSE's reinstatement is the one thing repaired lazily
		// (next suspension broadcast); media gating is server-side, so
		// that lag has no functional effect.
		level := resource.Normal
		if s.cfg.Monitor != nil {
			level = s.cfg.Monitor.Level()
		}
		selfSuspended := false
		for _, m := range s.floorCtl.Suspended(gid) {
			if m == sess.member.ID {
				selfSuspended = true
			}
			note := protocol.MustNew(protocol.TSuspend, protocol.SuspendBody{
				Member: string(m),
				Level:  level.String(),
			})
			note.Group = gid
			if !s.sendMsg(sess, note) {
				failed |= resyncSuspend
			}
		}
		if !selfSuspended && s.registry.IsMember(gid, sess.member.ID) {
			note := protocol.MustNew(protocol.TResume, protocol.SuspendBody{
				Member: string(sess.member.ID),
				Level:  level.String(),
			})
			note.Group = gid
			if !s.sendMsg(sess, note) {
				failed |= resyncSuspend
			}
		}
	}
	return failed
}

// resyncInvites re-pushes the member's pending invitations.
func (s *Server) resyncInvites(sess *session) bool {
	ok := true
	for _, inv := range s.registry.PendingInvites(sess.member.ID) {
		note := protocol.MustNew(protocol.TInviteEvent, protocol.InviteEventBody{
			InviteID: inv.ID, Group: inv.Group, From: string(inv.From),
		})
		ok = s.sendMsg(sess, note) && ok
	}
	return ok
}

// Lights returns the current connection lights, member ID → light.
func (s *Server) Lights() map[string]Light {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Light, len(s.sessions))
	for id, sess := range s.sessions {
		out[string(id)] = sess.light(now, s.cfg.ProbeTimeout)
	}
	return out
}

// broadcastLights pushes the light table — with each member's
// backpressure counters — to every connected client. The teacher's
// window renders it as the per-student indicator row; the counters make
// a slow consumer visible before its light ever turns red.
func (s *Server) broadcastLights() {
	now := s.cfg.Clock.Now()
	sessions := s.snapshotSessions()
	body := protocol.LightsBody{
		Lights:       make(map[string]string, len(sessions)),
		Backpressure: make(map[string]protocol.BackpressureBody, len(sessions)),
	}
	for _, sess := range sessions {
		id := string(sess.member.ID)
		body.Lights[id] = string(sess.light(now, s.cfg.ProbeTimeout))
		body.Backpressure[id] = protocol.BackpressureBody{
			QueueDepth: len(sess.queue),
			QueueCap:   cap(sess.queue),
			Drops:      sess.drops.Load(),
		}
	}
	wire, err := protocol.Encode(protocol.MustNew(protocol.TLights, body))
	if err != nil {
		return
	}
	for _, sess := range sessions {
		sess.mu.Lock()
		alive := sess.alive
		sess.mu.Unlock()
		if alive {
			s.sendWire(sess, wire)
		}
	}
}

// maybeReinstate lifts suspensions in every group once resources are
// Normal again, broadcasting TResume for each reinstated member.
func (s *Server) maybeReinstate() {
	if s.cfg.Monitor == nil || s.cfg.Monitor.Level() != resource.Normal {
		return
	}
	for _, gid := range s.registry.Groups() {
		suspended := s.floorCtl.Suspended(gid)
		if len(suspended) == 0 {
			continue
		}
		s.floorCtl.Reinstate(gid)
		for _, m := range suspended {
			note := protocol.MustNew(protocol.TResume, protocol.SuspendBody{
				Member: string(m),
				Level:  resource.Normal.String(),
			})
			note.Group = gid
			s.broadcastRepairable(gid, note)
		}
	}
}
