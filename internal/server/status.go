package server

import (
	"dmps/internal/grouplog"
	"dmps/internal/protocol"
	"dmps/internal/resource"
)

// snapshotSessions copies the session table under one lock acquisition.
func (s *Server) snapshotSessions() []*session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	return out
}

// probeLoop periodically probes every session, recomputes the connection
// lights (Figure 3) and broadcasts them, and lifts Media-Suspend once the
// resource level returns to Normal.
func (s *Server) probeLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case <-s.cfg.Clock.After(s.cfg.ProbeInterval):
		}
		// One encode for the whole probe fan-out.
		wire, err := protocol.Encode(protocol.MustNew(protocol.TStatusProbe, nil))
		if err != nil {
			continue
		}
		for _, sess := range s.snapshotSessions() {
			sess.mu.Lock()
			alive := sess.alive
			sess.mu.Unlock()
			if alive {
				s.sendWire(sess, wire)
			}
		}
		s.broadcastLights()
		s.maybeReinstate()
	}
}

// Lights returns the current connection lights, member ID → light.
func (s *Server) Lights() map[string]Light {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Light, len(s.sessions))
	for id, sess := range s.sessions {
		out[string(id)] = sess.light(now, s.cfg.ProbeTimeout)
	}
	return out
}

// broadcastLights pushes the light table — with each member's
// backpressure counters and the event-log heads digest — to every
// connected client. The teacher's window renders the lights as the
// per-student indicator row; the counters make a slow consumer visible
// before its light ever turns red; and the heads digest is the repair
// plane's quiet-tail nudge: a client comparing a log's head against its
// own last applied GSeq discovers drops that no later event would ever
// expose (a tail-of-burst board op, an invitation, a grant on a group
// that then went silent) and asks TBackfill.
//
// The digest is filtered per recipient — the logs of their joined
// groups plus their own member log — because event logs are
// group-private like the boards they carry: an unfiltered digest would
// leak every breakout group's existence and activity to every session.
// That costs one encode per recipient on this probe-tick path (the
// lights and backpressure tables are still built once); the hot
// broadcast path keeps its single encode.
func (s *Server) broadcastLights() {
	now := s.cfg.Clock.Now()
	sessions := s.snapshotSessions()
	lights := make(map[string]string, len(sessions))
	backpress := make(map[string]protocol.BackpressureBody, len(sessions))
	for _, sess := range sessions {
		id := string(sess.member.ID)
		lights[id] = string(sess.light(now, s.cfg.ProbeTimeout))
		backpress[id] = protocol.BackpressureBody{
			QueueDepth: len(sess.queue),
			QueueCap:   cap(sess.queue),
			Drops:      sess.drops.Load(),
		}
	}
	heads := s.logs.Heads()
	for _, sess := range sessions {
		sess.mu.Lock()
		alive := sess.alive
		sess.mu.Unlock()
		if !alive {
			continue
		}
		body := protocol.LightsBody{
			Lights:       lights,
			Backpressure: backpress,
			Heads:        s.headsFor(sess, heads),
		}
		s.sendMsg(sess, protocol.MustNew(protocol.TLights, body))
	}
}

// headsFor filters the heads digest to what one recipient may see: the
// logs of their joined groups and their own member event log.
func (s *Server) headsFor(sess *session, heads map[string]int64) map[string]int64 {
	if len(heads) == 0 {
		return nil
	}
	var out map[string]int64
	add := func(key string) {
		if h, ok := heads[key]; ok {
			if out == nil {
				out = make(map[string]int64)
			}
			out[key] = h
		}
	}
	for _, gid := range s.registry.JoinedGroups(sess.member.ID) {
		add(gid)
	}
	add(grouplog.MemberKey(string(sess.member.ID)))
	return out
}

// maybeReinstate lifts suspensions in every group once resources are
// Normal again, broadcasting TResume for each reinstated member.
func (s *Server) maybeReinstate() {
	if s.cfg.Monitor == nil || s.cfg.Monitor.Level() != resource.Normal {
		return
	}
	for _, gid := range s.registry.Groups() {
		suspended := s.floorCtl.Suspended(gid)
		if len(suspended) == 0 {
			continue
		}
		s.floorCtl.Reinstate(gid)
		for _, m := range suspended {
			note := protocol.MustNew(protocol.TResume, protocol.SuspendBody{
				Member: string(m),
				Level:  resource.Normal.String(),
			})
			note.Group = gid
			s.logBroadcast(gid, note)
		}
	}
}
