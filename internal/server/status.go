package server

import (
	"fmt"
	"maps"

	"dmps/internal/grouplog"
	"dmps/internal/protocol"
	"dmps/internal/resource"
)

// snapshotSessions copies the session table under one lock acquisition.
func (s *Server) snapshotSessions() []*session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	return out
}

// probeLoop periodically probes every session, recomputes the connection
// lights (Figure 3) and broadcasts them, lifts Media-Suspend once the
// resource level returns to Normal, and reaps members gone longer than
// the session TTL.
func (s *Server) probeLoop() {
	defer s.wg.Done()
	lastCkpt := s.cfg.Clock.Now()
	for {
		select {
		case <-s.closed:
			return
		case <-s.cfg.Clock.After(s.cfg.ProbeInterval):
		}
		// One encode for the whole probe fan-out.
		wire, err := protocol.Encode(protocol.MustNew(protocol.TStatusProbe, nil))
		if err != nil {
			continue
		}
		for _, sess := range s.snapshotSessions() {
			sess.mu.Lock()
			alive := sess.alive
			sess.mu.Unlock()
			if alive {
				s.sendWire(sess, wire)
			}
		}
		s.broadcastLights()
		s.maybeReinstate()
		now := s.cfg.Clock.Now()
		s.Reap(now)
		// The replication ack sweep rides the probe tick: overdue
		// in-flight forwards are resent with backoff until acked or
		// written off as lost.
		s.resendOverdue(now)
		if s.wal != nil && now.Sub(lastCkpt) >= s.cfg.WALCheckpointInterval {
			lastCkpt = now
			_ = s.Checkpoint()
		}
	}
}

// Lights returns the current connection lights, member ID → light.
func (s *Server) Lights() map[string]Light {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Light, len(s.sessions))
	for id, sess := range s.sessions {
		out[string(id)] = sess.light(now, s.cfg.ProbeTimeout)
	}
	return out
}

// broadcastLights pushes the light table — with each member's
// backpressure counters and the event-log heads digest — to every
// connected client whose copy is stale. The teacher's window renders
// the lights as the per-student indicator row; the counters make a slow
// consumer visible before its light ever turns red; and the heads
// digest is the repair plane's quiet-tail nudge: a client comparing a
// log's per-class head against its own last applied CSeq discovers
// drops that no later event would ever expose (a tail-of-burst board
// op, an invitation, a grant on a group that then went silent) and asks
// TBackfill.
//
// The digest is filtered per recipient — the logs of their joined
// groups plus their own member log, masked to their subscribed event
// classes — because event logs are group-private like the boards they
// carry: an unfiltered digest would leak every breakout group's
// existence and activity to every session. And the push itself is
// deduplicated per recipient: a session whose last accepted copy
// already matches the current lights, drop counters and digest is
// skipped outright — on a quiet server the probe tick re-encodes and
// re-sends nothing. Queue depth is deliberately not part of the
// comparison (it flutters with the probes themselves); it rides along
// whenever something meaningful changed.
func (s *Server) broadcastLights() {
	now := s.cfg.Clock.Now()
	sessions := s.snapshotSessions()
	lights := make(map[string]string, len(sessions))
	drops := make(map[string]int64, len(sessions))
	for _, sess := range sessions {
		// The lights and backpressure tables are sharded by home node: in
		// cluster mode each node names only the members it homes, so no
		// table anywhere grows with the whole fleet — a client merges the
		// per-node tables it receives. (Node-scoped sessions still receive
		// the push below: it carries the heads digest for the groups this
		// node owns.)
		if s.cluster != nil && !sess.homed {
			continue
		}
		id := string(sess.member.ID)
		lights[id] = string(sess.light(now, s.cfg.ProbeTimeout))
		drops[id] = sess.drops.Load()
	}
	heads := s.logs.ClassHeads()
	// Built lazily, once, when the first stale session needs it: a fully
	// quiet tick allocates nothing beyond the comparison inputs.
	var backpress map[string]protocol.BackpressureBody
	for _, sess := range sessions {
		sess.mu.Lock()
		alive := sess.alive
		sess.mu.Unlock()
		if !alive {
			continue
		}
		myHeads := s.headsFor(sess, heads)
		sess.mu.Lock()
		fresh := sess.lightsSent &&
			maps.Equal(sess.sentLights, lights) &&
			maps.Equal(sess.sentDrops, drops) &&
			headsEqual(sess.sentHeads, myHeads)
		sess.mu.Unlock()
		if fresh {
			continue
		}
		if backpress == nil {
			backpress = make(map[string]protocol.BackpressureBody, len(sessions))
			for _, other := range sessions {
				if s.cluster != nil && !other.homed {
					continue
				}
				backpress[string(other.member.ID)] = protocol.BackpressureBody{
					QueueDepth: len(other.queue),
					QueueCap:   cap(other.queue),
					Drops:      other.drops.Load(),
				}
			}
		}
		body := protocol.LightsBody{
			Lights:       lights,
			Backpressure: backpress,
			Heads:        myHeads,
		}
		if s.cluster != nil {
			// Stamp the shard so clients replace this node's entries
			// wholesale (pruning departed members) instead of merging
			// blindly across nodes.
			body.Origin = fmt.Sprintf("n%d", s.cluster.cfg.Self)
		}
		if s.sendMsg(sess, protocol.MustNew(protocol.TLights, body)) {
			sess.mu.Lock()
			sess.lightsSent = true
			sess.sentLights = lights
			sess.sentDrops = drops
			sess.sentHeads = myHeads
			sess.mu.Unlock()
		}
	}
}

// headsEqual compares two per-log, per-class head digests.
func headsEqual(a, b map[string]map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		if !maps.Equal(av, b[k]) {
			return false
		}
	}
	return true
}

// headsFor filters the heads digest to what one recipient may see: the
// logs of their joined groups and their own member event log, further
// masked to the event classes they subscribe to.
func (s *Server) headsFor(sess *session, heads map[string]map[string]int64) map[string]map[string]int64 {
	if len(heads) == 0 {
		return nil
	}
	var out map[string]map[string]int64
	add := func(key string) {
		hs, ok := heads[key]
		if !ok {
			return
		}
		var filtered map[string]int64
		for class, head := range hs {
			if !sess.wantsClass(class) {
				continue
			}
			if filtered == nil {
				filtered = make(map[string]int64, len(hs))
			}
			filtered[class] = head
		}
		if filtered != nil {
			if out == nil {
				out = make(map[string]map[string]int64)
			}
			out[key] = filtered
		}
	}
	for _, gid := range s.registry.JoinedGroups(sess.member.ID) {
		add(gid)
	}
	add(grouplog.MemberKey(string(sess.member.ID)))
	return out
}

// maybeReinstate lifts suspensions in every group once resources are
// Normal again, broadcasting TResume for each reinstated member (each
// notice restating the — by then empty — suspended set).
func (s *Server) maybeReinstate() {
	if s.cfg.Monitor == nil || s.cfg.Monitor.Level() != resource.Normal {
		return
	}
	for _, gid := range s.registry.Groups() {
		suspended := s.floorCtl.Suspended(gid)
		if len(suspended) == 0 {
			continue
		}
		s.floorCtl.Reinstate(gid)
		for _, m := range suspended {
			s.logSuspend(gid, protocol.TResume, string(m), resource.Normal, traceCtx{})
		}
	}
}
