package server

// Write-ahead durability for a node's live planes. When Config.WALDir
// is set, every logged append and every piece of non-log serving state
// — rosters, floor blobs, member homes and tokens, board heads, the ID
// counter — is journaled to an append-only segment store
// (grouplog.WAL) before the next accept, and New replays the journal
// before listening, so a restarted node resumes with the exact
// GSeq/CSeq cursors its clients hold: a pre-crash client Reconnects
// with its token and converges through ordinary backfill, no snapshot
// needed. Periodic checkpoints restate the full state into a fresh
// segment and truncate the old ones, bounding both replay time and
// disk. All hooks are no-ops when the WAL is off (s.wal == nil), so
// the standalone in-memory server pays nothing.

import (
	"encoding/json"
	"strings"

	"dmps/internal/floor"
	"dmps/internal/group"
	"dmps/internal/grouplog"
	"dmps/internal/protocol"
	"dmps/internal/whiteboard"
)

// walMemberData is the WALMember record payload: the directory row plus
// the session-resume token that must survive a restart.
type walMemberData struct {
	Info  protocol.NodeMemberInfo `json:"info"`
	Token string                  `json:"token,omitempty"`
}

// walGroupData is the WALGroup record payload: a group's roster and
// chair, restated wholesale on every membership change.
type walGroupData struct {
	Chair   string                    `json:"chair,omitempty"`
	Members []protocol.NodeMemberInfo `json:"members,omitempty"`
}

// walAppend journals one record, best-effort: a full disk must not
// take the live service down with it — replication to the R-1 peers
// still covers the state, which is the documented durability split.
func (s *Server) walAppend(rec grouplog.WALRecord) {
	if s.wal == nil {
		return
	}
	_ = s.wal.Append(rec)
}

// walEvent journals one logged append — the stamped canonical wire
// bytes plus their sequence coordinates, replayed via AppendRaw so the
// restarted log resumes at the same GSeq/CSeq. Called inside the log
// append's deliver callback (the WAL takes only its own lock).
func (s *Server) walEvent(key string, gseq, cseq int64, class string, state bool, wire []byte) {
	if s.wal == nil {
		return
	}
	rec := grouplog.WALRecord{
		Kind: grouplog.WALEvent, Key: key,
		GSeq: gseq, CSeq: cseq, Class: class, State: state,
	}
	rec.SetWire(wire)
	s.walAppend(rec)
}

// walFloor journals a group's current floor blob — the queue member
// identities the redacted wire bytes deliberately do not carry.
func (s *Server) walFloor(groupID string) {
	if s.wal == nil {
		return
	}
	s.walAppend(grouplog.WALRecord{
		Kind: grouplog.WALFloor, Key: groupID, Data: mustJSON(s.floorBlob(groupID)),
	})
}

// floorBlob snapshots a group's floor state in its replication form.
func (s *Server) floorBlob(groupID string) *protocol.FloorReplicaBody {
	mode, holder, queue, suspended, pinned := s.floorCtl.StateSnapshot(groupID)
	blob := &protocol.FloorReplicaBody{Mode: mode.String(), Holder: string(holder), Pinned: pinned}
	for _, m := range queue {
		blob.Queue = append(blob.Queue, string(m))
	}
	for _, m := range suspended {
		blob.Suspended = append(blob.Suspended, string(m))
	}
	return blob
}

// walGroupState journals a group's full non-log serving state: roster
// and chair, the floor blob, and the board head (so a restarted board
// never re-mints sequence numbers clients already applied).
func (s *Server) walGroupState(groupID string) {
	if s.wal == nil {
		return
	}
	data := walGroupData{}
	if members, err := s.registry.GroupMembers(groupID); err == nil {
		for _, m := range members {
			data.Members = append(data.Members, memberInfo(m))
		}
	}
	if chair, err := s.registry.Chair(groupID); err == nil {
		data.Chair = string(chair)
	}
	s.walAppend(grouplog.WALRecord{Kind: grouplog.WALGroup, Key: groupID, Data: mustJSON(data)})
	s.walFloor(groupID)
	gb := s.board(groupID)
	gb.mu.Lock()
	head := gb.board.Seq()
	gb.mu.Unlock()
	s.walAppend(grouplog.WALRecord{Kind: grouplog.WALBoardHead, Key: groupID, GSeq: head})
}

// walMemberHome journals a homed member's directory row and resume
// token — what lets the token resolve again after a restart.
func (s *Server) walMemberHome(m group.Member, token string) {
	if s.wal == nil {
		return
	}
	s.walAppend(grouplog.WALRecord{
		Kind: grouplog.WALMember, Key: string(m.ID),
		Data: mustJSON(walMemberData{Info: memberInfo(m), Token: token}),
	})
	s.walAppend(grouplog.WALRecord{Kind: grouplog.WALNextID, GSeq: s.nextID.Load()})
}

// walMemberDrop journals a member's expiry, so a replayed journal does
// not resurrect a session the reaper already revoked.
func (s *Server) walMemberDrop(id group.MemberID) {
	if s.wal == nil {
		return
	}
	s.walAppend(grouplog.WALRecord{Kind: grouplog.WALMemberDrop, Key: string(id)})
}

// mustJSON marshals a WAL payload; the payload shapes here cannot fail.
func mustJSON(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		return nil
	}
	return b
}

// applyBoardWire converges the board operations carried by one logged
// board-class event (a coalesced event carries a burst: the top-level
// op plus the rest in More). Converge, not Apply: the source is
// authoritative — this node's own journal or a replicated suffix — so
// a leading hole is history the retention window dropped, not loss.
func applyBoardWire(gb *groupBoard, wire []byte) {
	msg, err := protocol.DecodeAny(wire)
	if err != nil {
		return
	}
	var body protocol.SequencedBody
	if msg.Into(&body) != nil || body.Seq == 0 {
		return
	}
	ops := append([]protocol.SequencedBody{body}, body.More...)
	gb.mu.Lock()
	for _, op := range ops {
		if kind, ok := whiteboard.ParseOpKind(op.Kind); ok {
			_ = gb.board.Converge(whiteboard.Op{Seq: op.Seq, Author: op.Author, Kind: kind, Data: op.Data})
		}
	}
	gb.mu.Unlock()
}

// replayWAL installs every journaled record into the live planes, in
// write order — run by New before the listener accepts anyone, so the
// first client of the restarted process already sees the pre-crash
// GSeq/CSeq cursors, tokens and floor state.
func (s *Server) replayWAL(w *grouplog.WAL) error {
	return w.Replay(func(rec grouplog.WALRecord) error {
		switch rec.Kind {
		case grouplog.WALEvent:
			if rec.Key == "" || rec.GSeq <= 0 {
				return nil
			}
			s.logs.Get(rec.Key).AppendRaw(rec.GSeq, rec.CSeq, rec.Class, rec.State, rec.WireBytes())
			if rec.Class == protocol.ClassBoard && !strings.HasPrefix(rec.Key, "~") {
				applyBoardWire(s.board(rec.Key), rec.WireBytes())
			}
		case grouplog.WALGroup:
			var data walGroupData
			if rec.Key == "" || json.Unmarshal(rec.Data, &data) != nil {
				return nil
			}
			for _, m := range data.Members {
				_ = s.registry.EnsureMember(memberFromInfo(m))
				s.bumpNextID(m.ID)
			}
			if data.Chair != "" {
				if err := s.registry.CreateGroup(rec.Key, group.MemberID(data.Chair)); err != nil {
					_ = err // duplicate create on a later restatement
				}
				for _, m := range data.Members {
					_ = s.registry.Join(rec.Key, group.MemberID(m.ID))
				}
			}
		case grouplog.WALFloor:
			var blob protocol.FloorReplicaBody
			if rec.Key == "" || json.Unmarshal(rec.Data, &blob) != nil {
				return nil
			}
			mode, ok := floor.ParseMode(blob.Mode)
			if !ok {
				mode = floor.FreeAccess
			}
			queue := make([]group.MemberID, 0, len(blob.Queue))
			for _, m := range blob.Queue {
				queue = append(queue, group.MemberID(m))
			}
			suspended := make([]group.MemberID, 0, len(blob.Suspended))
			for _, m := range blob.Suspended {
				suspended = append(suspended, group.MemberID(m))
			}
			s.floorCtl.Restore(rec.Key, mode, group.MemberID(blob.Holder), queue, suspended, blob.Pinned)
		case grouplog.WALMember:
			var data walMemberData
			if json.Unmarshal(rec.Data, &data) != nil || data.Info.ID == "" {
				return nil
			}
			_ = s.registry.EnsureMember(memberFromInfo(data.Info))
			s.bumpNextID(data.Info.ID)
			if data.Token != "" {
				s.mu.Lock()
				s.tokens[data.Token] = group.MemberID(data.Info.ID)
				s.tokenOf[group.MemberID(data.Info.ID)] = data.Token
				s.mu.Unlock()
			}
		case grouplog.WALMemberDrop:
			if rec.Key == "" {
				return nil
			}
			id := group.MemberID(rec.Key)
			s.mu.Lock()
			if tok, ok := s.tokenOf[id]; ok {
				delete(s.tokens, tok)
				delete(s.tokenOf, id)
			}
			s.mu.Unlock()
			s.registry.Unregister(id)
			s.logs.Drop(grouplog.MemberKey(rec.Key))
		case grouplog.WALBoardHead:
			if rec.Key == "" {
				return nil
			}
			gb := s.board(rec.Key)
			gb.mu.Lock()
			gb.board.SkipTo(rec.GSeq)
			gb.mu.Unlock()
		case grouplog.WALNextID:
			for {
				cur := s.nextID.Load()
				if cur >= rec.GSeq || s.nextID.CompareAndSwap(cur, rec.GSeq) {
					break
				}
			}
		}
		return nil
	})
}

// Checkpoint restates the node's full serving state — the ID counter,
// every member home and token, every group's roster/floor/board head,
// and every log's retained window — into a fresh WAL segment, then
// truncates the older segments. The probe loop runs it on the
// WALCheckpointInterval cadence; tests call it directly. No-op (nil)
// when the WAL is off.
func (s *Server) Checkpoint() error {
	if s.wal == nil {
		return nil
	}
	var recs []grouplog.WALRecord
	recs = append(recs, grouplog.WALRecord{Kind: grouplog.WALNextID, GSeq: s.nextID.Load()})
	s.mu.Lock()
	tokens := make(map[group.MemberID]string, len(s.tokenOf))
	for id, tok := range s.tokenOf {
		tokens[id] = tok
	}
	s.mu.Unlock()
	for _, m := range s.registry.Members() {
		recs = append(recs, grouplog.WALRecord{
			Kind: grouplog.WALMember, Key: string(m.ID),
			Data: mustJSON(walMemberData{Info: memberInfo(m), Token: tokens[m.ID]}),
		})
	}
	for _, gid := range s.registry.Groups() {
		data := walGroupData{}
		if members, err := s.registry.GroupMembers(gid); err == nil {
			for _, m := range members {
				data.Members = append(data.Members, memberInfo(m))
			}
		}
		if chair, err := s.registry.Chair(gid); err == nil {
			data.Chair = string(chair)
		}
		recs = append(recs,
			grouplog.WALRecord{Kind: grouplog.WALGroup, Key: gid, Data: mustJSON(data)},
			grouplog.WALRecord{Kind: grouplog.WALFloor, Key: gid, Data: mustJSON(s.floorBlob(gid))},
		)
		gb := s.board(gid)
		gb.mu.Lock()
		head := gb.board.Seq()
		gb.mu.Unlock()
		recs = append(recs, grouplog.WALRecord{Kind: grouplog.WALBoardHead, Key: gid, GSeq: head})
	}
	for _, key := range s.logs.Keys() {
		lg, ok := s.logs.Peek(key)
		if !ok {
			continue
		}
		for _, e := range lg.Dump() {
			rec := grouplog.WALRecord{
				Kind: grouplog.WALEvent, Key: key,
				GSeq: e.GSeq, CSeq: e.CSeq, Class: e.Class, State: e.State,
			}
			rec.SetWire(e.Wire)
			recs = append(recs, rec)
		}
	}
	return s.wal.Checkpoint(recs)
}

// WALStats reports the segment store's occupancy (zero when off).
func (s *Server) WALStats() grouplog.WALStats {
	if s.wal == nil {
		return grouplog.WALStats{}
	}
	return s.wal.Stats()
}
