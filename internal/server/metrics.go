package server

import (
	"dmps/internal/cluster"
	"dmps/internal/metrics"
)

// RegisterMetrics wires the server's observability series into reg.
// Every series is a scrape-time read of a counter the server already
// maintains for its own purposes — the session table and its
// backpressure atomics, the coalescing planes' storm counters, the
// event-log plane's occupancy and compaction bookkeeping, and (in
// cluster mode) the forward pool and partition map — so enabling the
// endpoint adds nothing to the broadcast hot path and nothing is
// sampled twice.
//
// Session series are aggregated across members, not labelled per
// member: at fleet scale a per-member series set would make every
// scrape O(population) in exposition size, while the aggregate plus the
// existing per-member lights/backpressure push covers both audiences.
//
// Exported series:
//
//	dmps_sessions                        live sessions on this node
//	dmps_session_queue_depth             queued events across sessions
//	dmps_session_queue_cap               queue capacity across sessions
//	dmps_session_drops_total             slow-consumer drops
//	dmps_session_filtered_total          events skipped by class filters
//	dmps_coalesce_marked_total           queue restatements marked dirty
//	dmps_coalesce_logged_total           coalesced restatements logged
//	dmps_board_ops_total                 board ops accepted into batches
//	dmps_board_events_total              board batch events logged
//	dmps_grouplog_logs                   live event logs
//	dmps_grouplog_entries                retained entries across logs
//	dmps_grouplog_compactions_total      compaction runs
//	dmps_grouplog_evicted_total          entries dropped by compaction
//	dmps_groups                          groups in the registry
//	dmps_wire_bytes_total{dir}           client wire payload bytes, in/out
//	dmps_wire_flushes_total              session writer flushes
//	dmps_wire_msgs_per_flush             mean messages per writer flush
//	dmps_stage_seconds{stage}            per-stage latency of sampled ops
//	dmps_trace_spans_total               spans recorded by the trace plane
//	dmps_traces_total                    traces assembled by the sweeper
//	dmps_goroutines                      live goroutines
//	dmps_heap_bytes                      heap in use
//	dmps_gc_pause_seconds_total          cumulative GC pause time
//
// The trace plane also mounts its /debug/traces handler on the
// registry's extra-route table (served beside /metrics).
//
// With a WAL configured:
//
//	dmps_wal_segments                    live WAL segments
//	dmps_wal_bytes                       bytes across live WAL segments
//
// and, in cluster mode, dmps_cluster_forwards_total{peer},
// dmps_cluster_forward_drops_total{peer}, dmps_cluster_redials_total{peer},
// dmps_cluster_circuit_open{peer}, the replication-durability series
//
//	dmps_repl_ack_latency_seconds        append→last-ack round trip
//	dmps_repl_unacked                    in-flight (unacked) forwards
//	dmps_repl_resends_total              overdue forwards resent
//	dmps_repl_lost_total                 forwards written off after retries
//
// plus the shared partition-map series from cluster.RegisterMapMetrics
// (including dmps_cluster_map_epoch).
func (s *Server) RegisterMetrics(reg *metrics.Registry) {
	one := func(v float64) []metrics.Sample { return []metrics.Sample{{Value: v}} }
	// The tracing plane (dmps_stage_seconds{stage}, span/trace counters,
	// /debug/traces) and the runtime health gauges ride the same registry.
	s.plane.RegisterMetrics(reg)
	metrics.RegisterRuntime(reg)
	reg.GaugeFunc("dmps_sessions", "Live sessions on this node.", func() []metrics.Sample {
		s.mu.Lock()
		defer s.mu.Unlock()
		return one(float64(len(s.sessions)))
	})
	type sessTotals struct{ depth, capacity, drops, filtered float64 }
	totals := func() sessTotals {
		var t sessTotals
		for _, st := range s.SessionStats() {
			t.depth += float64(st.QueueDepth)
			t.capacity += float64(st.QueueCap)
			t.drops += float64(st.Drops)
			t.filtered += float64(st.Filtered)
		}
		return t
	}
	reg.GaugeFunc("dmps_session_queue_depth", "Events queued across all session send queues.", func() []metrics.Sample {
		return one(totals().depth)
	})
	reg.GaugeFunc("dmps_session_queue_cap", "Total send-queue capacity across sessions.", func() []metrics.Sample {
		return one(totals().capacity)
	})
	reg.CounterFunc("dmps_session_drops_total", "Events dropped on slow-consumer queues.", func() []metrics.Sample {
		return one(totals().drops)
	})
	reg.CounterFunc("dmps_session_filtered_total", "Events skipped by per-session class filters.", func() []metrics.Sample {
		return one(totals().filtered)
	})
	reg.CounterFunc("dmps_coalesce_marked_total", "Queue restatements marked dirty for coalescing.", func() []metrics.Sample {
		marked, _ := s.CoalesceStats()
		return one(float64(marked))
	})
	reg.CounterFunc("dmps_coalesce_logged_total", "Coalesced queue restatements actually logged.", func() []metrics.Sample {
		_, logged := s.CoalesceStats()
		return one(float64(logged))
	})
	reg.CounterFunc("dmps_board_ops_total", "Board operations accepted into batches.", func() []metrics.Sample {
		ops, _ := s.BoardStormStats()
		return one(float64(ops))
	})
	reg.CounterFunc("dmps_board_events_total", "Batched board events logged and fanned out.", func() []metrics.Sample {
		_, logged := s.BoardStormStats()
		return one(float64(logged))
	})
	reg.GaugeFunc("dmps_grouplog_logs", "Live per-key event logs.", func() []metrics.Sample {
		return one(float64(s.logs.Stats().Logs))
	})
	reg.GaugeFunc("dmps_grouplog_entries", "Retained entries across all event logs.", func() []metrics.Sample {
		return one(float64(s.logs.Stats().Entries))
	})
	reg.CounterFunc("dmps_grouplog_compactions_total", "Event-log compaction runs.", func() []metrics.Sample {
		return one(float64(s.logs.Stats().Compactions))
	})
	reg.CounterFunc("dmps_grouplog_evicted_total", "Event-log entries dropped by compaction.", func() []metrics.Sample {
		return one(float64(s.logs.Stats().Evicted))
	})
	reg.GaugeFunc("dmps_groups", "Groups in the registry.", func() []metrics.Sample {
		return one(float64(len(s.registry.Groups())))
	})
	reg.CounterFunc("dmps_wire_bytes_total", "Client wire payload bytes by direction.", func() []metrics.Sample {
		return []metrics.Sample{
			{LabelKey: "dir", LabelValue: "in", Value: float64(s.wireIn.Load())},
			{LabelKey: "dir", LabelValue: "out", Value: float64(s.wireOut.Load())},
		}
	})
	reg.CounterFunc("dmps_wire_flushes_total", "Session writer flushes (batched writes).", func() []metrics.Sample {
		return one(float64(s.wireFlushes.Load()))
	})
	reg.GaugeFunc("dmps_wire_msgs_per_flush", "Mean messages per session writer flush.", func() []metrics.Sample {
		flushes := s.wireFlushes.Load()
		if flushes == 0 {
			return one(0)
		}
		return one(float64(s.wireMsgsOut.Load()) / float64(flushes))
	})
	if s.wal != nil {
		reg.GaugeFunc("dmps_wal_segments", "Live write-ahead log segments.", func() []metrics.Sample {
			return one(float64(s.WALStats().Segments))
		})
		reg.GaugeFunc("dmps_wal_bytes", "Bytes across live write-ahead log segments.", func() []metrics.Sample {
			return one(float64(s.WALStats().Bytes))
		})
	}
	if s.cluster == nil {
		return
	}
	reg.RegisterHistogram("dmps_repl_ack_latency_seconds",
		"Replication forward append-to-last-ack round trip.", s.cluster.ackLatency)
	reg.GaugeFunc("dmps_repl_unacked", "In-flight (unacked) replication forwards.", func() []metrics.Sample {
		return one(float64(s.cluster.acks.Pending()))
	})
	reg.CounterFunc("dmps_repl_resends_total", "Overdue replication forwards resent.", func() []metrics.Sample {
		return one(float64(s.cluster.acks.Resends()))
	})
	reg.CounterFunc("dmps_repl_lost_total", "Replication forwards written off after exhausting retries.", func() []metrics.Sample {
		return one(float64(s.cluster.acks.Lost()))
	})
	peerSamples := func(pick func(cluster.PeerStats) int64) []metrics.Sample {
		stats := s.cluster.pool.PeerStats()
		out := make([]metrics.Sample, 0, len(stats))
		for addr, st := range stats {
			out = append(out, metrics.Sample{LabelKey: "peer", LabelValue: addr, Value: float64(pick(st))})
		}
		return out
	}
	reg.CounterFunc("dmps_cluster_forwards_total", "Replication forwards queued, by peer.", func() []metrics.Sample {
		return peerSamples(func(st cluster.PeerStats) int64 { return st.Sent })
	})
	reg.CounterFunc("dmps_cluster_forward_drops_total", "Replication forwards dropped, by peer.", func() []metrics.Sample {
		return peerSamples(func(st cluster.PeerStats) int64 { return st.Drops })
	})
	reg.CounterFunc("dmps_cluster_redials_total", "Peer link re-dial attempts, by peer.", func() []metrics.Sample {
		return peerSamples(func(st cluster.PeerStats) int64 { return st.Redials })
	})
	reg.GaugeFunc("dmps_cluster_circuit_open", "1 while the peer's dial circuit is open (cooling off), by peer.", func() []metrics.Sample {
		stats := s.cluster.pool.PeerStats()
		out := make([]metrics.Sample, 0, len(stats))
		for addr, st := range stats {
			v := 0.0
			if st.CircuitOpen {
				v = 1
			}
			out = append(out, metrics.Sample{LabelKey: "peer", LabelValue: addr, Value: v})
		}
		return out
	})
	cluster.RegisterMapMetrics(reg, s.cluster.topo)
}
