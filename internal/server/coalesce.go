package server

import (
	"dmps/internal/floor"
	"dmps/internal/protocol"
)

// markQueueRestate records that a floor transition shifted the group's
// pending queue, so queued members' slots need restating. The
// restatement itself is coalesced: the group is marked dirty and the
// next CoalesceInterval tick logs ONE "queue" event for it, whatever
// number of transitions landed in between — one ring slot and one
// fan-out per tick per churning group, instead of one per transition.
// The event content is re-read inside the log append (logFloorEvent),
// so a restatement can never carry a queue older than the transitions
// it stands for. A transition that left the queue empty needs no
// restatement: whatever emptied it (grants, releases, mode switches)
// cleared the members' slots through its own events.
func (s *Server) markQueueRestate(groupID string, mode floor.Mode) {
	if _, queue := s.floorCtl.HolderAndQueue(groupID); len(queue) == 0 {
		return
	}
	s.restateMarked.Add(1)
	s.coMu.Lock()
	if s.coDirty == nil {
		s.coDirty = make(map[string]floor.Mode)
	}
	s.coDirty[groupID] = mode
	s.coMu.Unlock()
}

// FlushQueueRestatements logs the pending coalesced "queue"
// restatements now — one per dirty group — and reports how many went
// out. The coalesce loop calls it every CoalesceInterval; tests and
// benchmarks call it directly for deterministic timing.
func (s *Server) FlushQueueRestatements() int {
	s.coMu.Lock()
	dirty := s.coDirty
	s.coDirty = nil
	s.coMu.Unlock()
	for gid, mode := range dirty {
		s.restateLogged.Add(1)
		s.logFloorEvent(gid, protocol.FloorEventBody{Mode: mode.String(), Event: "queue"}, traceCtx{})
	}
	return len(dirty)
}

// CoalesceStats reports the queue-restatement coalescing ratio: marked
// counts transitions that requested a restatement, logged counts the
// restatements actually logged. logged/marked is the amortized cost the
// queue-churn benchmark gates on — N transitions per tick must cost one
// logged event, not N.
func (s *Server) CoalesceStats() (marked, logged int64) {
	return s.restateMarked.Load(), s.restateLogged.Load()
}

// coalesceLoop flushes the dirty-queue set and the pending board
// batches every CoalesceInterval.
func (s *Server) coalesceLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case <-s.cfg.Clock.After(s.cfg.CoalesceInterval):
		}
		s.FlushQueueRestatements()
		s.FlushBoardBatches()
	}
}
