package server

import (
	"time"

	"dmps/internal/grouplog"
	"dmps/internal/protocol"
)

// Reap removes every member whose session has been silent for at least
// Config.SessionTTL as of now — whether it disconnected outright or
// just went dark (a crashed peer on a simulated network never closes
// anything; its silence is all the server ever sees). A live client is
// never silent: it answers every status probe, refreshing its
// last-seen time. For each reaped member the resume token stops
// resolving (a later token hello gets the typed "session_expired"
// rejection), the directory entry, memberships and private event log
// are dropped, any floor they held is released (promoting the next
// queued member) and any queue slot they occupied is vacated. It
// returns the reaped member IDs. The probe loop calls it every tick;
// tests call it directly with a chosen clock reading.
//
// Reaping is what bounds the server's state to its live population:
// without it, every member that ever connected would pin a token, a
// directory entry and a member log forever — the red light of Figure
// 3(c) is useful for minutes, not for the lifetime of a million-user
// deployment.
func (s *Server) Reap(now time.Time) []string {
	var victims []*session
	s.mu.Lock()
	for id, sess := range s.sessions {
		sess.mu.Lock()
		gone := now.Sub(sess.lastSeen) >= s.cfg.SessionTTL
		sess.mu.Unlock()
		if !gone {
			continue
		}
		victims = append(victims, sess)
		delete(s.sessions, id)
		if tok, ok := s.tokenOf[id]; ok {
			delete(s.tokens, tok)
			delete(s.tokenOf, id)
		}
	}
	s.mu.Unlock()

	out := make([]string, 0, len(victims))
	for _, sess := range victims {
		id := sess.member.ID
		// Tear the transport down (no-op if already gone); the session
		// is out of the table, so no new traffic can reach it.
		s.disconnect(sess)
		// Vacate floor state before the directory entry disappears, so
		// promotion still resolves the remaining members normally. All
		// groups, not just currently-joined ones: a queue slot (or even
		// the floor) deliberately survives a Leave, and a reaped ghost
		// left in a queue would be promoted to a floor nobody can ever
		// release.
		for _, gid := range s.registry.Groups() {
			holder, wasHolder, wasQueued := s.floorCtl.Evict(gid, id)
			if wasHolder {
				s.logFloorEvent(gid, protocol.FloorEventBody{
					Holder: string(holder),
					Member: string(id),
					Event:  "released",
				}, traceCtx{})
			}
			if wasHolder || wasQueued {
				s.markQueueRestate(gid, s.floorCtl.ModeOf(gid))
			}
		}
		s.registry.Unregister(id)
		s.logs.Drop(grouplog.MemberKey(string(id)))
		if sess.homed {
			// Only the member's home retracts their replicated state: a
			// node-scoped session expiring must not revoke the home's
			// journal entry or the successors' standby copy.
			s.walMemberDrop(id)
			s.replicateMemberDrop(id)
		}
		out = append(out, string(id))
	}
	return out
}
