package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"

	"dmps/internal/cluster"
	"dmps/internal/floor"
	"dmps/internal/group"
	"dmps/internal/grouplog"
	"dmps/internal/protocol"
	"dmps/internal/transport"
	"dmps/internal/whiteboard"
)

// ClusterConfig turns a server into one group-partition node of a
// multi-process cluster: the node serves only the groups (and homes
// only the members) the shared partition map assigns to Self, rejects
// the rest with a "node_moved" redirect, replicates every logged append
// of its partitions to the ring successor for takeover, and exchanges
// typed TForward messages with its peers for cross-partition state
// (invitations to a member's home node). A nil ClusterConfig on
// Config.Cluster is the ordinary standalone server.
type ClusterConfig struct {
	// Nodes lists every node address in ring order — identical on every
	// node and on the router.
	Nodes []string
	// Self is this node's index in Nodes.
	Self int
	// Network dials peer nodes (defaults to Config.Network). On netsim
	// pass the node's own host-pinned dialer so link configs apply.
	Network transport.Network
}

// clusterState is a node's runtime cluster machinery: the shared
// partition map, the pooled peer transport, the replica store holding
// partitions this node stands by for, and the set of partitions it has
// adopted after a failover.
type clusterState struct {
	cfg   ClusterConfig
	topo  *cluster.Map
	pool  *cluster.Pool
	store *cluster.ReplicaStore

	mu      sync.Mutex
	adopted map[string]bool
	// served mirrors adopted with lock-free reads for the append path:
	// replicateLogged runs inside a group's log lock, and taking mu
	// there would invert against adoption (which holds mu while
	// installing into log locks). Entries are stored only after a
	// takeover's restore completes.
	served sync.Map
}

// newClusterState validates and assembles a node's cluster machinery.
func newClusterState(cfg ClusterConfig, fallback transport.Network, replicaCap int) (*clusterState, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("server: ClusterConfig.Nodes is empty")
	}
	if cfg.Self < 0 || cfg.Self >= len(cfg.Nodes) {
		return nil, fmt.Errorf("server: ClusterConfig.Self %d out of range", cfg.Self)
	}
	if cfg.Network == nil {
		cfg.Network = fallback
	}
	return &clusterState{
		cfg:     cfg,
		topo:    cluster.NewMap(cfg.Nodes),
		pool:    cluster.NewPool(cfg.Network),
		store:   cluster.NewReplicaStore(replicaCap),
		adopted: make(map[string]bool),
	}, nil
}

// ReplicaHead reports the highest replicated GSeq this node holds for a
// group it stands by for — what tests wait on before killing the owner.
func (s *Server) ReplicaHead(groupID string) int64 {
	if s.cluster == nil {
		return 0
	}
	return s.cluster.store.Head(groupID)
}

// homesMember reports whether this node is the member's home — the
// owner of their directory entry, session token and private event log.
// Standalone servers home everyone.
func (s *Server) homesMember(id group.MemberID) bool {
	if s.cluster == nil {
		return true
	}
	return s.cluster.topo.Primary(cluster.HomeKey(string(id))) == s.cluster.cfg.Self
}

// ownerAddr names the node currently assigned a partition key (primary
// assignment; the router layers liveness on top).
func (s *Server) ownerAddr(key string) string {
	return s.cluster.cfg.Nodes[s.cluster.topo.Primary(key)]
}

// servesGroup reports whether this node serves a group's partition:
// natively (the map's primary), by adoption (a takeover already ran),
// or by adopting now — the routing tier sent us traffic for a partition
// we hold a replica of, which is exactly the failover signal. A node
// with neither claim answers node_moved.
func (s *Server) servesGroup(groupID string) bool {
	if s.cluster == nil {
		return true
	}
	if s.cluster.topo.Primary(groupID) == s.cluster.cfg.Self {
		return true
	}
	s.cluster.mu.Lock()
	defer s.cluster.mu.Unlock()
	if s.cluster.adopted[groupID] {
		return true
	}
	if !s.cluster.store.Has(groupID) {
		return false
	}
	// Holding a replica is necessary but not sufficient: stray traffic
	// (a directly-dialing client, a stale route) must not split a
	// partition whose primary is alive. Probe with a fresh dial — on the
	// failover path the primary is down and the dial fails fast; while
	// it is up, the redirect below sends the caller where it belongs.
	if probe, err := s.cluster.cfg.Network.Dial(s.ownerAddr(groupID)); err == nil {
		_ = probe.Close()
		return false
	}
	s.adoptLocked(groupID)
	return true
}

// servesGroupFast is the append-path form of servesGroup: primary
// ownership or a completed adoption, with no locks the log append could
// deadlock against — and no adoption side effect.
func (s *Server) servesGroupFast(groupID string) bool {
	if s.cluster.topo.Primary(groupID) == s.cluster.cfg.Self {
		return true
	}
	_, ok := s.cluster.served.Load(groupID)
	return ok
}

// adoptLocked takes over a group partition from its replica package:
// membership is restored into the registry, the floor state (mode,
// holder, queue, suspensions, pin) into the controller, the logged
// suffix into the log plane with its original sequence numbers, and the
// board ops into the authoritative board. Clients then converge through
// their ordinary backfill path — the restored log replays with the same
// CSeqs their cursors expect, so a handoff looks exactly like a
// reconnect, with zero duplicate grants (the holder is restored, never
// re-granted). Requires s.cluster.mu.
func (s *Server) adoptLocked(groupID string) {
	rep, ok := s.cluster.store.Take(groupID)
	if !ok {
		return
	}
	s.cluster.adopted[groupID] = true
	defer s.cluster.served.Store(groupID, true)
	chair := group.MemberID(rep.Chair)
	for _, m := range rep.Members {
		_ = s.registry.EnsureMember(memberFromInfo(m))
	}
	if chair != "" {
		if err := s.registry.CreateGroup(groupID, chair); err != nil && !errors.Is(err, group.ErrDuplicate) {
			// Without a chair record the group cannot be rebuilt; serve
			// what the floor/log restore below still provides.
			_ = err
		}
		for _, m := range rep.Members {
			_ = s.registry.Join(groupID, group.MemberID(m.ID))
		}
	}
	if rep.Floor != nil {
		mode, ok := floor.ParseMode(rep.Floor.Mode)
		if !ok {
			mode = floor.FreeAccess
		}
		queue := make([]group.MemberID, 0, len(rep.Floor.Queue))
		for _, m := range rep.Floor.Queue {
			queue = append(queue, group.MemberID(m))
		}
		suspended := make([]group.MemberID, 0, len(rep.Floor.Suspended))
		for _, m := range rep.Floor.Suspended {
			suspended = append(suspended, group.MemberID(m))
		}
		s.floorCtl.Restore(groupID, mode, group.MemberID(rep.Floor.Holder), queue, suspended, rep.Floor.Pinned)
	}
	lg := s.logs.Get(groupID)
	gb := s.board(groupID)
	for _, ev := range rep.Events {
		lg.AppendRaw(ev.GSeq, ev.CSeq, ev.Class, ev.State, ev.Wire)
		if ev.Class != protocol.ClassBoard {
			continue
		}
		var msg protocol.Message
		if json.Unmarshal(ev.Wire, &msg) != nil {
			continue
		}
		var body protocol.SequencedBody
		if msg.Into(&body) != nil || body.Seq == 0 {
			continue
		}
		// A coalesced event carries a burst: the top-level op plus the
		// rest in More. Converge (not Apply): the replicated suffix is
		// authoritative but may start past history the retention window
		// dropped — a leading hole must not reject the retained tail.
		ops := append([]protocol.SequencedBody{body}, body.More...)
		gb.mu.Lock()
		for _, op := range ops {
			if kind, ok := whiteboard.ParseOpKind(op.Kind); ok {
				_ = gb.board.Converge(whiteboard.Op{Seq: op.Seq, Author: op.Author, Kind: kind, Data: op.Data})
			}
		}
		gb.mu.Unlock()
	}
	// Never re-mint board sequence numbers clients already applied: even
	// if the retained suffix missed tail ops (a trimmed window, a
	// dropped best-effort forward), minting resumes past the owner's
	// known head.
	gb.mu.Lock()
	gb.board.SkipTo(rep.BoardHead)
	gb.mu.Unlock()
}

// memberFromInfo converts a replicated directory row back to a Member.
func memberFromInfo(m protocol.NodeMemberInfo) group.Member {
	role := group.Participant
	if strings.EqualFold(m.Role, "chair") {
		role = group.Chair
	}
	return group.Member{ID: group.MemberID(m.ID), Name: m.Name, Role: role, Priority: m.Priority}
}

// memberInfo converts a directory row to its replication form.
func memberInfo(m group.Member) protocol.NodeMemberInfo {
	return protocol.NodeMemberInfo{ID: string(m.ID), Name: m.Name, Role: m.Role.String(), Priority: m.Priority}
}

// successorAddr names the peer this node replicates its partitions to:
// the ring successor of Self ("" outside cluster mode or in a
// single-node ring).
func (s *Server) successorAddr() string {
	if s.cluster == nil || len(s.cluster.cfg.Nodes) < 2 {
		return ""
	}
	return s.cluster.cfg.Nodes[s.cluster.topo.Successor(s.cluster.cfg.Self)]
}

// replicateLogged ships one logged append (the stamped fan-out bytes,
// verbatim) to the ring successor, with the floor-state blob attached
// for the classes whose takeover state the redacted wire bytes cannot
// carry (queue membership is private on the wire). It runs inside the
// log append's deliver callback — the pool enqueue never blocks — so
// the replica stream observes exactly the log's order. The envelope is
// built with cluster.WrapForward (plain json.Marshal, reusing the
// already-encoded event bytes), keeping the encode-once invariant of
// the per-recipient hot path intact.
func (s *Server) replicateLogged(groupID, class string, wire []byte) {
	succ := s.successorAddr()
	if succ == "" || !s.servesGroupFast(groupID) {
		return
	}
	fwd := protocol.ForwardBody{Kind: protocol.ForwardReplica, Group: groupID, Msg: wire}
	if class == protocol.ClassFloor || class == protocol.ClassSuspend {
		mode, holder, queue, suspended, pinned := s.floorCtl.StateSnapshot(groupID)
		blob := &protocol.FloorReplicaBody{
			Mode: mode.String(), Holder: string(holder), Pinned: pinned,
		}
		for _, m := range queue {
			blob.Queue = append(blob.Queue, string(m))
		}
		for _, m := range suspended {
			blob.Suspended = append(blob.Suspended, string(m))
		}
		fwd.Floor = blob
	}
	s.cluster.pool.Send(succ, cluster.WrapForward(fwd))
}

// replicateMembers ships a group's membership roster and chair to the
// ring successor after a membership change, so a takeover can restore
// who belongs where. No-op outside cluster mode.
func (s *Server) replicateMembers(groupID string) {
	if s.cluster == nil {
		return
	}
	succ := s.successorAddr()
	if succ == "" || !s.servesGroup(groupID) {
		return
	}
	members, err := s.registry.GroupMembers(groupID)
	if err != nil {
		return
	}
	chair, _ := s.registry.Chair(groupID)
	fwd := protocol.ForwardBody{Kind: protocol.ForwardMembers, Group: groupID, Chair: string(chair)}
	for _, m := range members {
		fwd.Members = append(fwd.Members, memberInfo(m))
	}
	s.cluster.pool.Send(succ, cluster.WrapForward(fwd))
}

// deliverMemberEvent routes a member-directed state event (an
// invitation) to wherever the member's private event log lives: the
// local log plane when this node homes them, a typed ForwardInvite to
// their home node otherwise. The home node appends it there — same
// sequence discipline, same backfill — so invitations work across
// partitions.
func (s *Server) deliverMemberEvent(id group.MemberID, msg protocol.Message) {
	if s.homesMember(id) {
		s.logSendTo(id, msg)
		return
	}
	wire, err := protocol.Encode(msg)
	if err != nil {
		return
	}
	fwd := protocol.ForwardBody{Kind: protocol.ForwardInvite, To: string(id), Msg: wire}
	s.cluster.pool.Send(s.ownerAddr(cluster.HomeKey(string(id))), cluster.WrapForward(fwd))
}

// peerLoop serves one inter-node link: a connection whose first message
// was a TForward processes forwards until the peer hangs up. Peer links
// carry no session and get no replies — forwards are one-way by design.
// The connection is tracked so Close can sever it (it is not in the
// session table).
func (s *Server) peerLoop(conn transport.Conn, first protocol.Message) {
	s.mu.Lock()
	if s.peerLinks == nil {
		s.peerLinks = make(map[transport.Conn]bool)
	}
	s.peerLinks[conn] = true
	s.mu.Unlock()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.peerLinks, conn)
		s.mu.Unlock()
	}()
	s.handleForward(first)
	for {
		wire, err := conn.Recv()
		if err != nil {
			return
		}
		msg, err := protocol.Decode(wire)
		if err != nil || msg.Type != protocol.TForward {
			continue
		}
		s.handleForward(msg)
	}
}

// handleForward applies one typed node-to-node forward.
func (s *Server) handleForward(msg protocol.Message) {
	if s.cluster == nil {
		return
	}
	var body protocol.ForwardBody
	if msg.Into(&body) != nil {
		return
	}
	switch body.Kind {
	case protocol.ForwardReplica:
		if body.Group != "" && len(body.Msg) > 0 {
			s.cluster.store.ApplyEvent(body.Group, body.Msg, body.Floor)
		}
	case protocol.ForwardMembers:
		if body.Group != "" {
			s.cluster.store.ApplyMembers(body.Group, body.Chair, body.Members)
		}
	case protocol.ForwardInvite:
		if body.To == "" || len(body.Msg) == 0 {
			return
		}
		inner, err := protocol.Decode(body.Msg)
		if err != nil {
			return
		}
		// This node is authoritative for the members it homes: every
		// live member's hello came here, so an unknown ID names a member
		// that does not exist (or was reaped). Drop the forward rather
		// than fabricate a ghost directory row and a member log nobody
		// will ever read — the group owner's invite record stays pending
		// and undeliverable, the documented best-effort shape of
		// cross-partition invitations to bad IDs.
		if _, err := s.registry.Member(group.MemberID(body.To)); err != nil {
			return
		}
		s.logSendTo(group.MemberID(body.To), inner)
	}
}

// clusterGroupGate rejects a group-scoped request for a partition this
// node does not serve, answering the typed node_moved redirect whose
// detail is the owning node's address. It reports whether the request
// was intercepted.
func (s *Server) clusterGroupGate(sess *session, msg protocol.Message) bool {
	if s.cluster == nil {
		return false
	}
	gid := protocol.RequestGroup(msg)
	if gid == "" || s.servesGroup(gid) {
		return false
	}
	s.replyErr(sess, msg.Seq, protocol.CodeNodeMoved, errors.New(s.ownerAddr(gid)))
	return true
}

// MemberLogKeyOf is a small test hook: the member-log key a member's
// invitations land under (re-exported so cluster tests outside this
// package need not import grouplog).
func MemberLogKeyOf(memberID string) string { return grouplog.MemberKey(memberID) }
