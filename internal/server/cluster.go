package server

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"dmps/internal/cluster"
	"dmps/internal/floor"
	"dmps/internal/group"
	"dmps/internal/grouplog"
	"dmps/internal/metrics"
	"dmps/internal/protocol"
	"dmps/internal/trace"
	"dmps/internal/transport"
)

// DefaultReplicationFactor is the cluster's copy count when the config
// does not choose one: the owner plus one ring successor — the PR-5
// topology, now with acks.
const DefaultReplicationFactor = 2

// ClusterConfig turns a server into one group-partition node of a
// multi-process cluster: the node serves only the groups (and homes
// only the members) the shared partition map assigns to Self, rejects
// the rest with a "node_moved" redirect, replicates every logged append
// of its partitions to R-1 ring successors for takeover (each forward
// tracked until acked), and exchanges typed TForward messages with its
// peers for cross-partition state (invitations to a member's home
// node, epoch-versioned migration). A nil ClusterConfig on
// Config.Cluster is the ordinary standalone server.
type ClusterConfig struct {
	// Nodes lists every node address in ring order — identical on every
	// node and on the router.
	Nodes []string
	// Self is this node's index in Nodes.
	Self int
	// ReplicationFactor is the number of copies of every logged append
	// (the owner plus ReplicationFactor-1 ring successors). It clamps
	// to len(Nodes); <= 0 means DefaultReplicationFactor. A grant is
	// only as lost as ReplicationFactor simultaneous deaths.
	ReplicationFactor int
	// Network dials peer nodes (defaults to Config.Network). On netsim
	// pass the node's own host-pinned dialer so link configs apply.
	Network transport.Network
}

// clusterState is a node's runtime cluster machinery: the shared
// partition map, the pooled peer transport, the replica store holding
// partitions this node stands by for, the in-flight ack table for the
// replication stream, and the partitions/member homes it has adopted
// after a failover.
type clusterState struct {
	cfg        ClusterConfig
	topo       *cluster.Map
	pool       *cluster.Pool
	store      *cluster.ReplicaStore
	acks       *cluster.AckTable
	ackLatency *metrics.Histogram

	mu      sync.Mutex
	adopted map[string]bool
	// adoptedMembers tracks member IDs whose home this node adopted
	// after their home node died (resume-time adoption).
	adoptedMembers map[string]bool
	// migrating marks keys mid-handoff to a recovering node: the gate
	// answers node_moved for them until the migration completes, so no
	// append can land between the takeover dump and the epoch bump.
	migrating map[string]bool
	// served mirrors adopted with lock-free reads for the append path:
	// replicateLogged runs inside a group's log lock, and taking mu
	// there would invert against adoption (which holds mu while
	// installing into log locks). Entries are stored only after a
	// takeover's restore completes.
	served sync.Map
	// homes mirrors adoptedMembers with lock-free reads, for the same
	// reason (member-log appends replicate inside the log lock).
	homes sync.Map
}

// newClusterState validates and assembles a node's cluster machinery.
func newClusterState(cfg ClusterConfig, fallback transport.Network, replicaCap int) (*clusterState, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("server: ClusterConfig.Nodes is empty")
	}
	if cfg.Self < 0 || cfg.Self >= len(cfg.Nodes) {
		return nil, fmt.Errorf("server: ClusterConfig.Self %d out of range", cfg.Self)
	}
	if cfg.Network == nil {
		cfg.Network = fallback
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = DefaultReplicationFactor
	}
	if cfg.ReplicationFactor > len(cfg.Nodes) {
		cfg.ReplicationFactor = len(cfg.Nodes)
	}
	cs := &clusterState{
		cfg:            cfg,
		topo:           cluster.NewMap(cfg.Nodes),
		pool:           cluster.NewPool(cfg.Network),
		store:          cluster.NewReplicaStore(replicaCap),
		adopted:        make(map[string]bool),
		adoptedMembers: make(map[string]bool),
		migrating:      make(map[string]bool),
		ackLatency:     metrics.NewHistogram(nil),
	}
	cs.acks = cluster.NewAckTable(func(sec float64) { cs.ackLatency.Observe(sec) })
	return cs, nil
}

// selfAddr is this node's own peer address — what receivers ack back to.
func (c *clusterState) selfAddr() string { return c.cfg.Nodes[c.cfg.Self] }

// replicaPeers lists the R-1 ring successors this node replicates its
// partitions to (empty outside cluster mode or in a single-node ring).
func (c *clusterState) replicaPeers() []string {
	idxs := c.topo.Successors(c.cfg.Self, c.cfg.ReplicationFactor-1)
	out := make([]string, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, c.cfg.Nodes[i])
	}
	return out
}

// ReplicaHead reports the highest replicated GSeq this node holds for a
// group it stands by for — what tests wait on before killing the owner.
func (s *Server) ReplicaHead(groupID string) int64 {
	if s.cluster == nil {
		return 0
	}
	return s.cluster.store.Head(groupID)
}

// ReplicationPending reports the number of in-flight (unacked)
// replication forwards — what tests drain to zero before a kill proves
// every copy landed.
func (s *Server) ReplicationPending() int {
	if s.cluster == nil {
		return 0
	}
	return s.cluster.acks.Pending()
}

// homesMember reports whether this node is the member's home — the
// owner of their directory entry, session token and private event log —
// natively or by adoption. Standalone servers home everyone.
func (s *Server) homesMember(id group.MemberID) bool {
	if s.cluster == nil {
		return true
	}
	if s.cluster.topo.Primary(cluster.HomeKey(string(id))) == s.cluster.cfg.Self {
		return true
	}
	_, ok := s.cluster.homes.Load(string(id))
	return ok
}

// ownerAddr names the node currently assigned a partition key (primary
// assignment; the router layers liveness on top).
func (s *Server) ownerAddr(key string) string {
	return s.cluster.cfg.Nodes[s.cluster.topo.Primary(key)]
}

// servesGroup reports whether this node serves a group's partition:
// natively (the map's primary), by adoption (a takeover already ran),
// or by adopting now — the routing tier sent us traffic for a partition
// we hold a replica of, which is exactly the failover signal. A node
// with neither claim — or one mid-migration of the key back to its
// recovering primary — answers node_moved.
func (s *Server) servesGroup(groupID string) bool {
	if s.cluster == nil {
		return true
	}
	primary := s.cluster.topo.Primary(groupID) == s.cluster.cfg.Self
	s.cluster.mu.Lock()
	defer s.cluster.mu.Unlock()
	if s.cluster.migrating[groupID] {
		return false
	}
	if primary {
		return true
	}
	if s.cluster.adopted[groupID] {
		return true
	}
	if !s.cluster.store.Has(groupID) {
		return false
	}
	// Holding a replica is necessary but not sufficient: stray traffic
	// (a directly-dialing client, a stale route) must not split a
	// partition whose primary is alive. Probe with a fresh dial — on the
	// failover path the primary is down and the dial fails fast; while
	// it is up, the redirect below sends the caller where it belongs.
	if probe, err := s.cluster.cfg.Network.Dial(s.ownerAddr(groupID)); err == nil {
		_ = probe.Close()
		return false
	}
	s.adoptLocked(groupID)
	return true
}

// servesGroupFast is the append-path form of servesGroup: primary
// ownership or a completed adoption, with no locks the log append could
// deadlock against — and no adoption side effect.
func (s *Server) servesGroupFast(groupID string) bool {
	if s.cluster.topo.Primary(groupID) == s.cluster.cfg.Self {
		return true
	}
	_, ok := s.cluster.served.Load(groupID)
	return ok
}

// adoptLocked takes over a group partition from its replica package.
// Requires s.cluster.mu.
func (s *Server) adoptLocked(groupID string) {
	rep, ok := s.cluster.store.Take(groupID)
	if !ok {
		return
	}
	s.cluster.adopted[groupID] = true
	s.installGroupReplica(groupID, rep)
}

// installGroupReplica restores a partition package into the live
// planes: membership into the registry, the floor state (mode, holder,
// queue, suspensions, pin) into the controller, the logged suffix into
// the log plane with its original sequence numbers, and the board ops
// into the authoritative board. Clients then converge through their
// ordinary backfill path — the restored log replays with the same CSeqs
// their cursors expect, so a handoff looks exactly like a reconnect,
// with zero duplicate grants (the holder is restored, never
// re-granted). Shared by failover adoption and migration takeover.
func (s *Server) installGroupReplica(groupID string, rep cluster.GroupReplica) {
	defer s.cluster.served.Store(groupID, true)
	chair := group.MemberID(rep.Chair)
	for _, m := range rep.Members {
		_ = s.registry.EnsureMember(memberFromInfo(m))
	}
	if chair != "" {
		if err := s.registry.CreateGroup(groupID, chair); err != nil && !errors.Is(err, group.ErrDuplicate) {
			// Without a chair record the group cannot be rebuilt; serve
			// what the floor/log restore below still provides.
			_ = err
		}
		for _, m := range rep.Members {
			_ = s.registry.Join(groupID, group.MemberID(m.ID))
		}
	}
	if rep.Floor != nil {
		mode, ok := floor.ParseMode(rep.Floor.Mode)
		if !ok {
			mode = floor.FreeAccess
		}
		queue := make([]group.MemberID, 0, len(rep.Floor.Queue))
		for _, m := range rep.Floor.Queue {
			queue = append(queue, group.MemberID(m))
		}
		suspended := make([]group.MemberID, 0, len(rep.Floor.Suspended))
		for _, m := range rep.Floor.Suspended {
			suspended = append(suspended, group.MemberID(m))
		}
		s.floorCtl.Restore(groupID, mode, group.MemberID(rep.Floor.Holder), queue, suspended, rep.Floor.Pinned)
	}
	lg := s.logs.Get(groupID)
	gb := s.board(groupID)
	for _, ev := range rep.Events {
		lg.AppendRaw(ev.GSeq, ev.CSeq, ev.Class, ev.State, ev.Wire)
		s.walEvent(groupID, ev.GSeq, ev.CSeq, ev.Class, ev.State, ev.Wire)
		if ev.Class == protocol.ClassBoard {
			applyBoardWire(gb, ev.Wire)
		}
	}
	// Never re-mint board sequence numbers clients already applied: even
	// if the retained suffix missed tail ops (a trimmed window, a
	// dropped best-effort forward), minting resumes past the owner's
	// known head.
	gb.mu.Lock()
	gb.board.SkipTo(rep.BoardHead)
	gb.mu.Unlock()
	// The adopted partition is part of this node's serving state now:
	// journal its roster, floor blob and board head so a restart of THIS
	// process resumes serving it too.
	s.walGroupState(groupID)
}

// adoptMemberLocked takes over a member's replicated home: the
// directory row is restored, the resume token installed, the member's
// private event log replayed from its replica, and the ID counter
// bumped past the adopted ID so this node can never re-mint it.
// Requires s.cluster.mu.
func (s *Server) adoptMemberLocked(mh cluster.MemberHome) {
	id := mh.Info.ID
	if _, ok := s.cluster.store.TakeMember(id); !ok {
		// Already adopted by a racing resume; fall through only when the
		// store still held the record.
		if _, adopted := s.cluster.homes.Load(id); adopted {
			return
		}
	}
	s.cluster.adoptedMembers[id] = true
	_ = s.registry.EnsureMember(memberFromInfo(mh.Info))
	s.bumpNextID(id)
	if mh.Token != "" {
		s.mu.Lock()
		s.tokens[mh.Token] = group.MemberID(id)
		s.tokenOf[group.MemberID(id)] = mh.Token
		s.mu.Unlock()
	}
	if rep, ok := s.cluster.store.Take(grouplog.MemberKey(id)); ok {
		lg := s.logs.Get(grouplog.MemberKey(id))
		for _, ev := range rep.Events {
			lg.AppendRaw(ev.GSeq, ev.CSeq, ev.Class, ev.State, ev.Wire)
			s.walEvent(grouplog.MemberKey(id), ev.GSeq, ev.CSeq, ev.Class, ev.State, ev.Wire)
		}
	}
	s.cluster.homes.Store(id, true)
}

// adoptResume resolves a resume token this node never minted: when the
// replica store holds the member's replicated home AND their home node
// is genuinely unreachable, this node adopts them — directory row,
// token, private event log — and the resume proceeds as if it had been
// minted here. When the home is alive the caller must redirect there
// instead (second return); any other miss is an ordinary expiry.
func (s *Server) adoptResume(token string) (group.MemberID, string, bool) {
	if s.cluster == nil {
		return "", "", false
	}
	mh, found := s.cluster.store.MemberByToken(token)
	if !found {
		return "", "", false
	}
	home := s.cluster.topo.Primary(cluster.HomeKey(mh.Info.ID))
	if home != s.cluster.cfg.Self {
		if probe, err := s.cluster.cfg.Network.Dial(s.cluster.cfg.Nodes[home]); err == nil {
			_ = probe.Close()
			return "", s.cluster.cfg.Nodes[home], false
		}
	}
	s.cluster.mu.Lock()
	s.adoptMemberLocked(mh)
	s.cluster.mu.Unlock()
	// The member homes here now: journal the claim and replicate it to
	// THIS node's successors, so the adoption itself is durable.
	s.walMemberHome(memberFromInfo(mh.Info), mh.Token)
	s.replicateMemberHome(memberFromInfo(mh.Info), mh.Token)
	return group.MemberID(mh.Info.ID), "", true
}

// bumpNextID advances the member-ID counter past the numeric suffix of
// an installed member ID ("alice#7" → at least 7), so adoption, WAL
// replay and migration can never lead to re-minting an ID clients
// already hold.
func (s *Server) bumpNextID(memberID string) {
	i := strings.LastIndexByte(memberID, '#')
	if i < 0 {
		return
	}
	n, err := strconv.ParseInt(memberID[i+1:], 10, 64)
	if err != nil {
		return
	}
	for {
		cur := s.nextID.Load()
		if cur >= n || s.nextID.CompareAndSwap(cur, n) {
			return
		}
	}
}

// memberFromInfo converts a replicated directory row back to a Member.
func memberFromInfo(m protocol.NodeMemberInfo) group.Member {
	role := group.Participant
	if strings.EqualFold(m.Role, "chair") {
		role = group.Chair
	}
	return group.Member{ID: group.MemberID(m.ID), Name: m.Name, Role: role, Priority: m.Priority}
}

// memberInfo converts a directory row to its replication form.
func memberInfo(m group.Member) protocol.NodeMemberInfo {
	return protocol.NodeMemberInfo{ID: string(m.ID), Name: m.Name, Role: m.Role.String(), Priority: m.Priority}
}

// replicateTracked assigns the forward an ID, registers it in the
// in-flight ack table against every replica peer, and ships it. The
// receivers ack by ID; the probe loop resends overdue entries with
// backoff. Only the ack table's own lock is taken, so this is safe
// inside a log-append deliver callback.
func (s *Server) replicateTracked(fwd protocol.ForwardBody) {
	s.replicateTraced(fwd, 0, 0)
}

// replicateTraced is replicateTracked carrying a sampled trace context:
// the forward envelope is stamped with it (so the replica records its
// apply span under the same trace), and the ack table learns the trace
// ID (so the full-ack round trip becomes this node's repl_ack span).
func (s *Server) replicateTraced(fwd protocol.ForwardBody, tid uint64, tflags uint8) {
	peers := s.cluster.replicaPeers()
	if len(peers) == 0 {
		return
	}
	fwd.ID = s.cluster.acks.NextID()
	fwd.From = s.cluster.selfAddr()
	wire := cluster.WrapForwardTrace(fwd, tid, tflags)
	if wire == nil {
		return
	}
	s.cluster.acks.Track(fwd.ID, peers, wire)
	if tid != 0 {
		s.cluster.acks.TrackTrace(fwd.ID, tid)
	}
	for _, peer := range peers {
		s.cluster.pool.Send(peer, wire)
	}
}

// resendOverdue runs one ack-table sweep, resending overdue forwards
// over the pool. The probe loop calls it each tick.
func (s *Server) resendOverdue(now time.Time) {
	if s.cluster == nil {
		return
	}
	for _, r := range s.cluster.acks.Due(now) {
		s.cluster.pool.Send(r.Peer, r.Wire)
	}
}

// replicateLogged ships one logged append (the stamped fan-out bytes,
// verbatim) to the R-1 replica peers, with the floor-state blob
// attached for the classes whose takeover state the redacted wire bytes
// cannot carry (queue membership is private on the wire). The key is a
// group ID or a "~member" log key — member logs replicate exactly like
// group logs, which is what lets a resume survive home-node death. It
// runs inside the log append's deliver callback — the pool enqueue
// never blocks — so the replica stream observes exactly the log's
// order. The envelope is built with cluster.WrapForward (plain
// json.Marshal, reusing the already-encoded event bytes), keeping the
// encode-once invariant of the per-recipient hot path intact.
func (s *Server) replicateLogged(key, class string, wire []byte) {
	if s.cluster == nil {
		return
	}
	if strings.HasPrefix(key, "~") {
		if !s.homesMember(group.MemberID(key[1:])) {
			return
		}
	} else if !s.servesGroupFast(key) {
		return
	}
	fwd := protocol.ForwardBody{Kind: protocol.ForwardReplica, Group: key}
	fwd.SetMsg(wire)
	if class == protocol.ClassFloor || class == protocol.ClassSuspend {
		mode, holder, queue, suspended, pinned := s.floorCtl.StateSnapshot(key)
		blob := &protocol.FloorReplicaBody{
			Mode: mode.String(), Holder: string(holder), Pinned: pinned,
		}
		for _, m := range queue {
			blob.Queue = append(blob.Queue, string(m))
		}
		for _, m := range suspended {
			blob.Suspended = append(blob.Suspended, string(m))
		}
		fwd.Floor = blob
	}
	// The logged bytes carry the operation's trace context when sampled
	// (a cheap frame peek otherwise): replication rides the same trace.
	tid, _, tflags := protocol.FrameTrace(wire)
	if tflags&protocol.TraceSampled == 0 {
		tid = 0
	}
	s.replicateTraced(fwd, tid, tflags)
}

// replicateMembers durably records a group's membership roster and
// chair after a membership change: journaled to the WAL (when on), and
// shipped to the replica peers so a takeover can restore who belongs
// where. The replication half is a no-op outside cluster mode.
func (s *Server) replicateMembers(groupID string) {
	s.walGroupState(groupID)
	if s.cluster == nil {
		return
	}
	if !s.servesGroup(groupID) {
		return
	}
	members, err := s.registry.GroupMembers(groupID)
	if err != nil {
		return
	}
	chair, _ := s.registry.Chair(groupID)
	fwd := protocol.ForwardBody{Kind: protocol.ForwardMembers, Group: groupID, Chair: string(chair)}
	for _, m := range members {
		fwd.Members = append(fwd.Members, memberInfo(m))
	}
	s.replicateTracked(fwd)
}

// replicateMemberHome ships a member's home-node state — directory row
// and resume token — to the replica peers, so a resume presented after
// this node's death can be adopted by a successor instead of expiring.
// Called whenever a homed member's token is minted or their directory
// row changes. No-op outside cluster mode.
func (s *Server) replicateMemberHome(m group.Member, token string) {
	if s.cluster == nil {
		return
	}
	info := memberInfo(m)
	s.replicateTracked(protocol.ForwardBody{
		Kind: protocol.ForwardMemberHome, Member: &info, Token: token,
	})
}

// replicateMemberDrop retracts a member's replicated home after the
// home node expires the session, so a dead member cannot be adopted
// back to life from a stale replica. No-op outside cluster mode.
func (s *Server) replicateMemberDrop(id group.MemberID) {
	if s.cluster == nil {
		return
	}
	s.replicateTracked(protocol.ForwardBody{Kind: protocol.ForwardMemberDrop, To: string(id)})
}

// deliverMemberEvent routes a member-directed state event (an
// invitation) to wherever the member's private event log lives: the
// local log plane when this node homes them, a typed ForwardInvite to
// their home node otherwise. The home node appends it there — same
// sequence discipline, same backfill — so invitations work across
// partitions.
func (s *Server) deliverMemberEvent(id group.MemberID, msg protocol.Message) {
	if s.homesMember(id) {
		s.logSendTo(id, msg)
		return
	}
	wire, err := s.encodeCanonical(msg)
	if err != nil {
		return
	}
	fwd := protocol.ForwardBody{Kind: protocol.ForwardInvite, To: string(id)}
	fwd.SetMsg(wire)
	s.cluster.pool.Send(s.ownerAddr(cluster.HomeKey(string(id))), cluster.WrapForward(fwd))
}

// peerLoop serves one inter-node link: a connection whose first message
// was a TForward processes forwards until the peer hangs up. Most
// forwards are one-way (acks for the replicated kinds travel back over
// the receiver's own pool, to the sender's listen address); the
// migration-coordination kinds reply on this connection. The accept
// path already tracks the connection in the server's conn table, so
// Close severs it (it is not in the session table).
func (s *Server) peerLoop(conn transport.Conn, first protocol.Message) {
	defer func() { _ = conn.Close() }()
	s.handleForward(conn, first)
	for {
		wire, err := conn.Recv()
		if err != nil {
			return
		}
		msg, err := protocol.Decode(wire)
		if err != nil || msg.Type != protocol.TForward {
			continue
		}
		s.handleForward(conn, msg)
	}
}

// ackForward acknowledges an identified replication forward back to its
// sender, over this node's own pool (the inbound peer link is a one-way
// writer on the sender's side).
func (s *Server) ackForward(body protocol.ForwardBody) {
	if body.ID == 0 || body.From == "" {
		return
	}
	s.cluster.pool.Send(body.From, cluster.WrapForward(protocol.ForwardBody{
		Kind: protocol.ForwardAck, ID: body.ID, From: s.cluster.selfAddr(),
	}))
}

// handleForward applies one typed node-to-node forward. conn is the
// inbound peer link, used only by the migration kinds that reply in
// place.
func (s *Server) handleForward(conn transport.Conn, msg protocol.Message) {
	if s.cluster == nil {
		return
	}
	var body protocol.ForwardBody
	if msg.Into(&body) != nil {
		return
	}
	switch body.Kind {
	case protocol.ForwardReplica:
		if body.Group != "" && len(body.WireMsg()) > 0 {
			// A sampled replication forward records the replica's own
			// apply+ack span — the third process of an owner-routed op.
			var t0 time.Time
			sampled := msg.Sampled()
			if sampled {
				t0 = time.Now()
			}
			s.cluster.store.ApplyEvent(body.Group, body.WireMsg(), body.Floor)
			s.ackForward(body)
			if sampled {
				s.plane.Span(msg.TraceID, msg.TraceParent, trace.StageReplAck, t0)
			}
		}
	case protocol.ForwardMembers:
		if body.Group != "" {
			s.cluster.store.ApplyMembers(body.Group, body.Chair, body.Members)
			s.ackForward(body)
		}
	case protocol.ForwardMemberHome:
		if body.Member != nil {
			s.cluster.store.ApplyMemberHome(*body.Member, body.Token)
			s.ackForward(body)
		}
	case protocol.ForwardMemberDrop:
		if body.To != "" {
			s.cluster.store.DropMemberHome(body.To)
			s.ackForward(body)
		}
	case protocol.ForwardAck:
		if body.From != "" {
			s.cluster.acks.Ack(body.From, body.ID)
		}
	case protocol.ForwardTakeover:
		if body.Takeover != nil {
			s.installTakeover(*body.Takeover)
		}
	case protocol.ForwardMigrated:
		// The shipping side's barrier: every ForwardTakeover on this
		// connection precedes it (in-order transport), so acking here
		// certifies the packages are installed.
		if body.ID != 0 {
			_ = conn.Send(cluster.WrapForward(protocol.ForwardBody{
				Kind: protocol.ForwardAck, ID: body.ID, From: s.cluster.selfAddr(),
			}))
		}
	case protocol.ForwardMigrate:
		s.runMigration(conn, body)
	case protocol.ForwardInvite:
		if body.To == "" || len(body.WireMsg()) == 0 {
			return
		}
		inner, err := protocol.DecodeAny(body.WireMsg())
		if err != nil {
			return
		}
		// This node is authoritative for the members it homes: every
		// live member's hello came here, so an unknown ID names a member
		// that does not exist (or was reaped). Drop the forward rather
		// than fabricate a ghost directory row and a member log nobody
		// will ever read — the group owner's invite record stays pending
		// and undeliverable, the documented best-effort shape of
		// cross-partition invitations to bad IDs.
		if _, err := s.registry.Member(group.MemberID(body.To)); err != nil {
			return
		}
		s.logSendTo(group.MemberID(body.To), inner)
	}
}

// clusterGroupGate rejects a group-scoped request for a partition this
// node does not serve, answering the typed node_moved redirect whose
// detail is the owning node's address. It reports whether the request
// was intercepted.
func (s *Server) clusterGroupGate(sess *session, msg protocol.Message) bool {
	if s.cluster == nil {
		return false
	}
	gid := protocol.RequestGroup(msg)
	if gid == "" || s.servesGroup(gid) {
		return false
	}
	s.replyErr(sess, msg.Seq, protocol.CodeNodeMoved, errors.New(s.ownerAddr(gid)))
	return true
}

// MemberLogKeyOf is a small test hook: the member-log key a member's
// invitations land under (re-exported so cluster tests outside this
// package need not import grouplog).
func MemberLogKeyOf(memberID string) string { return grouplog.MemberKey(memberID) }
