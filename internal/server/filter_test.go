package server

import (
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/floor"
	"dmps/internal/protocol"
)

// tapDial dials a client with an OnEvent tap and an optional event-class
// mask, against the given lab.
func tapDial(t *testing.T, l *lab, name string, classes []string) (*client.Client, *eventTap) {
	t.Helper()
	tap := newEventTap()
	c, err := client.Dial(client.Config{
		Network:      l.net,
		Addr:         "server:1",
		Name:         name,
		Role:         "participant",
		Priority:     2,
		Timeout:      2 * time.Second,
		EventClasses: classes,
		OnEvent:      tap.observe,
	})
	if err != nil {
		t.Fatalf("Dial(%s): %v", name, err)
	}
	t.Cleanup(c.Close)
	return c, tap
}

// TestClassMaskFiltersServerSide is the filtering acceptance test: a
// member whose event-class mask excludes floor events must have zero
// floor-class bytes enqueued to its session under floor churn — the
// filter runs server-side, counted per session — while classes it does
// subscribe to keep flowing, their per-class sequencing untroubled by
// the holes the filtered class would otherwise leave.
func TestClassMaskFiltersServerSide(t *testing.T) {
	l := newLab(t)
	quiet, tap := tapDial(t, l, "quiet", []string{protocol.ClassBoard})
	noisy := l.dial("noisy", "participant", 2)
	for _, c := range []*client.Client{quiet, noisy} {
		if err := c.Join("class"); err != nil {
			t.Fatal(err)
		}
	}

	// Floor churn: every cycle logs floor-class events to the group.
	for i := 0; i < 10; i++ {
		if _, err := noisy.RequestFloor("class", floor.EqualControl, ""); err != nil {
			t.Fatal(err)
		}
		if err := noisy.ReleaseFloor("class"); err != nil {
			t.Fatal(err)
		}
	}
	// A board line after the churn is the ordering fence: once it
	// arrives, every floor event that was going to reach the quiet
	// member already would have. (The sender holds the floor for the
	// line — Equal Control gates the message window on it.)
	if _, err := noisy.RequestFloor("class", floor.EqualControl, ""); err != nil {
		t.Fatal(err)
	}
	if err := noisy.Chat("class", "fence"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "board event through the mask", func() bool {
		return quiet.Board("class").Seq() == 1
	})

	if got := tap.typeCount(protocol.TFloorEvent); got != 0 {
		t.Errorf("masked member received %d floor events, want 0", got)
	}
	stats := l.srv.SessionStats()[quiet.MemberID()]
	if stats.Filtered == 0 {
		t.Error("no events counted as filtered: the mask did not run server-side")
	}
	if stats.Drops != 0 {
		t.Errorf("filtered events must not count as drops (got %d)", stats.Drops)
	}
	// The noisy member, unmasked, saw the same churn as floor events.
	waitFor(t, "unmasked member sees floor events", func() bool {
		return noisy.Holder("class") == noisy.MemberID()
	})
}

// TestQueueSlotsArePrivate: queue positions are per-recipient. The
// subject of a queueing (and each queued member on a restatement) gets
// their own slot; everyone else's copy carries only the queue length.
func TestQueueSlotsArePrivate(t *testing.T) {
	l := newLab(t)
	holder := l.dial("holder", "participant", 2)
	queued, queuedTap := tapDial(t, l, "queued", nil)
	bystander, tap := tapDial(t, l, "bystander", nil)
	for _, c := range []*client.Client{holder, queued, bystander} {
		if err := c.Join("class"); err != nil {
			t.Fatal(err)
		}
	}
	if dec, err := holder.RequestFloor("class", floor.EqualControl, ""); err != nil || !dec.Granted {
		t.Fatalf("grant: %+v %v", dec, err)
	}
	if dec, err := queued.RequestFloor("class", floor.EqualControl, ""); err != nil || dec.QueuePosition != 1 {
		t.Fatalf("queue: %+v %v", dec, err)
	}
	// Force a restatement through the coalescer as well.
	l.srv.FlushQueueRestatements()

	// The queued member learns its own slot from the personalized push.
	waitFor(t, "queued member's own slot", func() bool {
		return queued.QueuePosition("class") == 1
	})
	sawOwnSlot := false
	for _, ev := range queuedTap.floorEvents() {
		if ev.Member == queued.MemberID() && ev.QueuePosition == 1 {
			sawOwnSlot = true
		}
	}
	if !sawOwnSlot {
		t.Error("queued member never received its own queue position")
	}

	// The bystander hears that queueing happened — member name, queue
	// length — but never anyone's slot.
	waitFor(t, "bystander sees the queueing", func() bool {
		for _, ev := range tap.floorEvents() {
			if ev.Event == "queued" && ev.Member == queued.MemberID() {
				return true
			}
		}
		return false
	})
	for _, ev := range tap.floorEvents() {
		if ev.Member != bystander.MemberID() && ev.QueuePosition != 0 {
			t.Errorf("bystander received %s event for %q with queue position %d", ev.Event, ev.Member, ev.QueuePosition)
		}
	}

	// Snapshots are personalized the same way: a late joiner's snapshot
	// names the queue length, not the members in it.
	late, lateTap := tapDial(t, l, "late", nil)
	if err := late.Join("class"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "late joiner snapshot", func() bool {
		return lateTap.typeCount(protocol.TSnapshot) > 0
	})
	for _, snap := range lateTap.snapshots() {
		if snap.QueuePos != 0 {
			t.Errorf("late joiner snapshot carries a queue slot %d", snap.QueuePos)
		}
		if snap.Mode != "" && snap.QueueLen != 1 {
			t.Errorf("late joiner snapshot QueueLen = %d, want 1", snap.QueueLen)
		}
	}
}

// TestLightsDigestQuietServer is the probe-tick hygiene regression
// test: once every session has accepted a lights push and nothing
// changes — no light transitions, no log head movement, no new drops —
// the probe tick must stop sending (and re-encoding) lights digests
// entirely.
func TestLightsDigestQuietServer(t *testing.T) {
	l := newLab(t)
	a, tapA := tapDial(t, l, "a", nil)
	b, tapB := tapDial(t, l, "b", nil)
	for _, c := range []*client.Client{a, b} {
		if err := c.Join("class"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "first lights push", func() bool {
		return tapA.typeCount(protocol.TLights) > 0 && tapB.typeCount(protocol.TLights) > 0
	})
	// Let the join-time transitions drain, then measure a quiet window
	// spanning many probe ticks (interval 20ms).
	time.Sleep(100 * time.Millisecond)
	beforeA, beforeB := tapA.typeCount(protocol.TLights), tapB.typeCount(protocol.TLights)
	time.Sleep(300 * time.Millisecond)
	if gotA, gotB := tapA.typeCount(protocol.TLights)-beforeA, tapB.typeCount(protocol.TLights)-beforeB; gotA != 0 || gotB != 0 {
		t.Errorf("quiet server still pushed lights digests: %d to a, %d to b", gotA, gotB)
	}
	// A state change wakes the push back up.
	if _, err := a.RequestFloor("class", floor.EqualControl, ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "digest resumes after head movement", func() bool {
		return tapB.typeCount(protocol.TLights) > beforeB
	})
}

// floorEvents and snapshots extend eventTap with typed views; guarded
// by the same mutex.
func (tap *eventTap) floorEvents() []protocol.FloorEventBody {
	tap.mu.Lock()
	defer tap.mu.Unlock()
	out := make([]protocol.FloorEventBody, len(tap.floors))
	copy(out, tap.floors)
	return out
}

func (tap *eventTap) snapshots() []protocol.SnapshotBody {
	tap.mu.Lock()
	defer tap.mu.Unlock()
	out := make([]protocol.SnapshotBody, len(tap.snaps))
	copy(out, tap.snaps)
	return out
}
