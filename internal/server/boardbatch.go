package server

import (
	"dmps/internal/protocol"
	"dmps/internal/whiteboard"
)

// boardBatchMax bounds a coalesced board event: a storm longer than
// this flushes mid-tick, keeping any single logged message (and the
// burst a catching-up client applies at once) small.
const boardBatchMax = 64

// enqueueBoardOp routes one authoritative board operation into the
// coalescing plane. The idle path pays nothing: when no batch is open
// and the last logged board event is at least a CoalesceInterval old,
// the operation logs immediately (leading-edge flush) — a lone chat
// line is broadcast inline, exactly as before batching. Only ops
// arriving within an interval of the last logged event accumulate,
// going out as one logged event per tick; a different author or a
// different wire type (chat vs annotate) flushes the open batch first,
// so attribution, typing and ordering survive verbatim, and
// boardBatchMax bounds any single event. The operation is already
// appended to the board; only the logged broadcast defers, by at most
// one tick, and only under storm. Requires gb.mu — the same lock that
// serialized append+broadcast before batching, so log order still
// equals board order.
func (s *Server) enqueueBoardOp(groupID string, gb *groupBoard, op whiteboard.Op, kind string, typ protocol.Type) {
	s.boardOps.Add(1)
	now := s.cfg.Clock.Now()
	if len(gb.pend) > 0 && (gb.pend[0].Author != op.Author || gb.pendType != typ) {
		s.flushBoardLocked(groupID, gb)
	}
	body := protocol.SequencedBody{Seq: op.Seq, Author: op.Author, Kind: kind, Data: op.Data}
	if len(gb.pend) == 0 && now.Sub(gb.lastLog) >= s.cfg.CoalesceInterval {
		gb.lastLog = now
		s.logBoardEvent(groupID, typ, body)
		return
	}
	gb.pendType = typ
	gb.pend = append(gb.pend, body)
	if len(gb.pend) >= boardBatchMax {
		s.flushBoardLocked(groupID, gb)
	}
}

// flushBoardLocked logs the group's pending board batch as one event:
// the first operation rides the top-level body, the rest follow in
// More. Requires gb.mu.
func (s *Server) flushBoardLocked(groupID string, gb *groupBoard) {
	if len(gb.pend) == 0 {
		return
	}
	body := gb.pend[0]
	if len(gb.pend) > 1 {
		body.More = append([]protocol.SequencedBody(nil), gb.pend[1:]...)
	}
	gb.pend = gb.pend[:0]
	gb.lastLog = s.cfg.Clock.Now()
	s.logBoardEvent(groupID, gb.pendType, body)
}

// logBoardEvent broadcasts one (possibly batched) board event through
// the log plane, counting it for the storm ratio.
func (s *Server) logBoardEvent(groupID string, typ protocol.Type, body protocol.SequencedBody) {
	s.boardEvents.Add(1)
	event := protocol.MustNew(typ, body)
	event.Group = groupID
	s.logBroadcast(groupID, event)
}

// FlushBoardBatches logs every group's pending board batch now and
// reports how many events went out. The coalesce loop calls it every
// CoalesceInterval; tests and benchmarks call it directly for
// deterministic timing.
func (s *Server) FlushBoardBatches() int {
	s.mu.Lock()
	boards := make(map[string]*groupBoard, len(s.boards))
	for gid, gb := range s.boards {
		boards[gid] = gb
	}
	s.mu.Unlock()
	flushed := 0
	for gid, gb := range boards {
		gb.mu.Lock()
		if len(gb.pend) > 0 {
			s.flushBoardLocked(gid, gb)
			flushed++
		}
		gb.mu.Unlock()
	}
	return flushed
}

// BoardStormStats reports the board-op coalescing ratio: ops counts
// operations appended to boards, logged counts the coalesced events
// actually logged. logged/ops is what BenchmarkBoardStorm gates —
// an annotation storm must cost one ring slot and one fan-out per
// batch, not per stroke.
func (s *Server) BoardStormStats() (ops, logged int64) {
	return s.boardOps.Load(), s.boardEvents.Load()
}
