package server

import (
	"errors"
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/floor"
	"dmps/internal/group"
	"dmps/internal/netsim"
	"dmps/internal/protocol"
)

// TestCompactedReconnectSkipsSnapshot is the compaction acceptance
// test: a member that reconnects after missing far more floor churn
// than the log's capacity must converge through a short compacted
// suffix — the class's latest state-bearing restatement — with zero
// TSnapshot. Before compaction, anything past the ring was an
// unconditional full snapshot.
func TestCompactedReconnectSkipsSnapshot(t *testing.T) {
	const logCap = 8
	n := netsim.New(33)
	srv, err := New(Config{
		Network:       n,
		Addr:          "server:1",
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  60 * time.Millisecond,
		LogCap:        logCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Close)

	tap := newEventTap()
	roamer, err := client.Dial(client.Config{
		Network: n.From("roamhost"), Addr: "server:1",
		Name: "roamer", Role: "participant", Priority: 2,
		Timeout: 2 * time.Second,
		OnEvent: tap.observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(roamer.Close)
	writer, err := client.Dial(client.Config{
		Network: n.From("writehost"), Addr: "server:1",
		Name: "writer", Role: "participant", Priority: 2,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(writer.Close)
	for _, c := range []*client.Client{writer, roamer} {
		if err := c.Join("class"); err != nil {
			t.Fatal(err)
		}
	}
	// Board content before the gap, so the roamer's board cursor is
	// non-trivial and must connect across the churn.
	if _, err := writer.RequestFloor("class", floor.EqualControl, ""); err != nil {
		t.Fatal(err)
	}
	if err := writer.Chat("class", "before the gap"); err != nil {
		t.Fatal(err)
	}
	if err := writer.ReleaseFloor("class"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pre-drop board", func() bool {
		return roamer.Board("class").Seq() == 1
	})

	if !roamer.Drop() {
		t.Fatal("drop failed")
	}
	// Far more floor churn than the log retains verbatim. Every floor
	// event is a state-bearing restatement, so compaction keeps just the
	// newest one — the anchor the roamer will converge from.
	const cycles = 5 * logCap
	for i := 0; i < cycles; i++ {
		if _, err := writer.RequestFloor("class", floor.EqualControl, ""); err != nil {
			t.Fatal(err)
		}
		if err := writer.ReleaseFloor("class"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := writer.RequestFloor("class", floor.EqualControl, ""); err != nil {
		t.Fatal(err)
	}

	snapshotsBefore := tap.typeCount(protocol.TSnapshot)
	if err := roamer.Reconnect(); err != nil {
		t.Fatalf("Reconnect: %v", err)
	}
	waitFor(t, "floor convergence via compacted suffix", func() bool {
		return roamer.Holder("class") == writer.MemberID()
	})
	if got := tap.typeCount(protocol.TSnapshot) - snapshotsBefore; got != 0 {
		t.Errorf("reconnect fell back to %d TSnapshot(s); the compacted suffix should have converged it", got)
	}
	// The board replica is intact and still connected.
	if seq := roamer.Board("class").Seq(); seq != 1 {
		t.Errorf("board seq = %d after reconnect, want 1", seq)
	}
}

// TestReapExpiresSessions is the expiry acceptance test: a member gone
// past SessionTTL is reaped — directory entry gone, floor released and
// the next queued member promoted, token resume rejected with the typed
// session_expired error.
func TestReapExpiresSessions(t *testing.T) {
	n := netsim.New(34)
	srv, err := New(Config{
		Network:       n,
		Addr:          "server:1",
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  30 * time.Millisecond,
		SessionTTL:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Close)

	ghost, err := client.Dial(client.Config{
		Network: n.From("ghosthost"), Addr: "server:1",
		Name: "ghost", Role: "participant", Priority: 2,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ghost.Close)
	heir, err := client.Dial(client.Config{
		Network: n.From("heirhost"), Addr: "server:1",
		Name: "heir", Role: "participant", Priority: 2,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(heir.Close)
	for _, c := range []*client.Client{ghost, heir} {
		if err := c.Join("class"); err != nil {
			t.Fatal(err)
		}
	}
	// The ghost holds the floor; the heir queues behind it.
	if dec, err := ghost.RequestFloor("class", floor.EqualControl, ""); err != nil || !dec.Granted {
		t.Fatalf("ghost grant: %+v %v", dec, err)
	}
	if dec, err := heir.RequestFloor("class", floor.EqualControl, ""); err != nil || dec.QueuePosition != 1 {
		t.Fatalf("heir queue: %+v %v", dec, err)
	}
	ghostID := ghost.MemberID()

	if !ghost.Drop() {
		t.Fatal("drop failed")
	}
	// The probe loop reaps once the TTL elapses.
	waitFor(t, "directory entry reaped", func() bool {
		_, err := srv.Registry().Member(group.MemberID(ghostID))
		return err != nil
	})
	// The held floor was released to the queued heir.
	waitFor(t, "heir promoted after reap", func() bool {
		return heir.Holder("class") == heir.MemberID()
	})
	if lights := srv.Lights(); lights[ghostID] != "" {
		t.Errorf("reaped member still in the lights table: %q", lights[ghostID])
	}
	// The token no longer resumes: typed rejection.
	err = ghost.Reconnect()
	if !errors.Is(err, client.ErrSessionExpired) {
		t.Fatalf("Reconnect after reap = %v, want ErrSessionExpired", err)
	}
}
