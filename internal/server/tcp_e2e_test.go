package server

import (
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/floor"
	"dmps/internal/transport"
)

// TestEndToEndOverRealTCP runs the full lecture flow over actual
// loopback sockets — the same code path cmd/dmps-server and
// cmd/dmps-client use — proving the stack is not netsim-only.
func TestEndToEndOverRealTCP(t *testing.T) {
	srv, err := New(Config{
		Network:       transport.TCP{},
		Addr:          "127.0.0.1:0",
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()

	dial := func(name, role string, priority int) *client.Client {
		c, err := client.Dial(client.Config{
			Network:  transport.TCP{},
			Addr:     srv.Addr(),
			Name:     name,
			Role:     role,
			Priority: priority,
			Timeout:  3 * time.Second,
		})
		if err != nil {
			t.Fatalf("Dial(%s): %v", name, err)
		}
		t.Cleanup(c.Close)
		return c
	}
	teacher := dial("Teacher", "chair", 5)
	student := dial("Student", "participant", 2)

	if err := teacher.Join("tcp-class"); err != nil {
		t.Fatal(err)
	}
	if err := student.Join("tcp-class"); err != nil {
		t.Fatal(err)
	}
	if _, err := teacher.RequestFloor("tcp-class", floor.EqualControl, ""); err != nil {
		t.Fatal(err)
	}
	if err := teacher.Chat("tcp-class", "over real sockets"); err != nil {
		t.Fatal(err)
	}
	if err := student.Chat("tcp-class", "should be muted"); err == nil {
		t.Error("equal control must mute the student over TCP too")
	}
	waitFor(t, "chat over TCP", func() bool {
		return student.Board("tcp-class").Seq() == 1
	})
	// Clock sync across the socket.
	offset, err := student.SyncClock()
	if err != nil {
		t.Fatal(err)
	}
	if offset < -time.Second || offset > time.Second {
		t.Errorf("loopback offset = %v", offset)
	}
	// Graceful goodbye turns the light red.
	id := student.MemberID()
	student.Close()
	waitFor(t, "red light over TCP", func() bool {
		return srv.Lights()[id] == Red
	})
}

// TestReconnectResumeOverRealTCP is the reconnect-resume e2e on real
// loopback sockets: a student whose connection dies abruptly resumes
// with the session token and converges on everything missed — board,
// floor, invitation — through TBackfill, with the same member identity
// and without re-joining any group.
func TestReconnectResumeOverRealTCP(t *testing.T) {
	srv, err := New(Config{
		Network:       transport.TCP{},
		Addr:          "127.0.0.1:0",
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()

	dial := func(name, role string, priority int) *client.Client {
		c, err := client.Dial(client.Config{
			Network:  transport.TCP{},
			Addr:     srv.Addr(),
			Name:     name,
			Role:     role,
			Priority: priority,
			Timeout:  3 * time.Second,
		})
		if err != nil {
			t.Fatalf("Dial(%s): %v", name, err)
		}
		t.Cleanup(c.Close)
		return c
	}
	teacher := dial("Teacher", "chair", 5)
	student := dial("Student", "participant", 2)
	for _, c := range []*client.Client{teacher, student} {
		if err := c.Join("resume-class"); err != nil {
			t.Fatal(err)
		}
	}
	events := student.Subscribe(client.FloorEvents)
	if err := teacher.Chat("resume-class", "before the crash"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pre-crash chat", func() bool {
		return student.Board("resume-class").Seq() == 1
	})
	id := student.MemberID()

	// The student's machine dies mid-session (no goodbye). Over TCP the
	// server sees the reset and marks the session red.
	student.Drop()
	waitFor(t, "red light after crash", func() bool {
		return srv.Lights()[id] == Red
	})
	// Meanwhile: more board history, a floor grant, and an invitation.
	if err := teacher.Chat("resume-class", "while you were away"); err != nil {
		t.Fatal(err)
	}
	if _, err := teacher.RequestFloor("resume-class", floor.EqualControl, ""); err != nil {
		t.Fatal(err)
	}
	if err := teacher.Join("resume-breakout"); err != nil {
		t.Fatal(err)
	}
	if _, err := teacher.Invite("resume-breakout", id); err != nil {
		t.Fatal(err)
	}

	if err := student.Reconnect(); err != nil {
		t.Fatalf("Reconnect over TCP: %v", err)
	}
	if got := student.MemberID(); got != id {
		t.Fatalf("member identity changed across reconnect: %q → %q", id, got)
	}
	waitFor(t, "board resume over TCP", func() bool {
		return student.Board("resume-class").Seq() == 2
	})
	waitFor(t, "floor resume over TCP", func() bool {
		return student.Holder("resume-class") == teacher.MemberID()
	})
	waitFor(t, "invitation resume over TCP", func() bool {
		return len(student.PendingInvites()) == 1
	})
	waitFor(t, "green light after resume", func() bool {
		return srv.Lights()[id] == Green
	})

	// The pre-crash subscription still delivers: release the floor and
	// the student — without re-subscribing — sees the transition.
	if err := teacher.ReleaseFloor("resume-class"); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(3 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("subscription closed across reconnect")
			}
			if ev.Floor.Event == "released" {
				return
			}
		case <-deadline:
			t.Fatal("released event never crossed the reconnect")
		}
	}
}
