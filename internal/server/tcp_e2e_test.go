package server

import (
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/floor"
	"dmps/internal/transport"
)

// TestEndToEndOverRealTCP runs the full lecture flow over actual
// loopback sockets — the same code path cmd/dmps-server and
// cmd/dmps-client use — proving the stack is not netsim-only.
func TestEndToEndOverRealTCP(t *testing.T) {
	srv, err := New(Config{
		Network:       transport.TCP{},
		Addr:          "127.0.0.1:0",
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()

	dial := func(name, role string, priority int) *client.Client {
		c, err := client.Dial(client.Config{
			Network:  transport.TCP{},
			Addr:     srv.Addr(),
			Name:     name,
			Role:     role,
			Priority: priority,
			Timeout:  3 * time.Second,
		})
		if err != nil {
			t.Fatalf("Dial(%s): %v", name, err)
		}
		t.Cleanup(c.Close)
		return c
	}
	teacher := dial("Teacher", "chair", 5)
	student := dial("Student", "participant", 2)

	if err := teacher.Join("tcp-class"); err != nil {
		t.Fatal(err)
	}
	if err := student.Join("tcp-class"); err != nil {
		t.Fatal(err)
	}
	if _, err := teacher.RequestFloor("tcp-class", floor.EqualControl, ""); err != nil {
		t.Fatal(err)
	}
	if err := teacher.Chat("tcp-class", "over real sockets"); err != nil {
		t.Fatal(err)
	}
	if err := student.Chat("tcp-class", "should be muted"); err == nil {
		t.Error("equal control must mute the student over TCP too")
	}
	waitFor(t, "chat over TCP", func() bool {
		return student.Board("tcp-class").Seq() == 1
	})
	// Clock sync across the socket.
	offset, err := student.SyncClock()
	if err != nil {
		t.Fatal(err)
	}
	if offset < -time.Second || offset > time.Second {
		t.Errorf("loopback offset = %v", offset)
	}
	// Graceful goodbye turns the light red.
	id := student.MemberID()
	student.Close()
	waitFor(t, "red light over TCP", func() bool {
		return srv.Lights()[id] == Red
	})
}
