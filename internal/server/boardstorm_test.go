package server

import (
	"fmt"
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/netsim"
)

// TestBoardStormCoalesces drives an annotation storm and asserts the
// logged-event ratio: contiguous same-author operations batch into one
// logged event per flush, an author change splits the batch (ordering
// and attribution survive verbatim), and every replica still converges
// to the full board.
func TestBoardStormCoalesces(t *testing.T) {
	n := netsim.New(9)
	srv, err := New(Config{
		Network:       n,
		Addr:          "server:1",
		ProbeInterval: 20 * time.Millisecond,
		// A long coalesce interval: the test flushes deterministically.
		CoalesceInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Close)

	dial := func(name string) *client.Client {
		c, err := client.Dial(client.Config{
			Network: n.From(name + "host"), Addr: "server:1",
			Name: name, Role: "participant", Priority: 2,
			Timeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		if err := c.Join("studio"); err != nil {
			t.Fatal(err)
		}
		return c
	}
	artist, viewer := dial("artist"), dial("viewer")

	const storm = 40
	for i := 0; i < storm; i++ {
		if err := artist.Annotate("studio", "draw", fmt.Sprintf("stroke %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// One stroke by the other author splits the run.
	if err := viewer.Annotate("studio", "draw", "interjection"); err != nil {
		t.Fatal(err)
	}
	srv.FlushBoardBatches()

	ops, logged := srv.BoardStormStats()
	if ops != storm+1 {
		t.Fatalf("ops = %d, want %d", ops, storm+1)
	}
	// The storm coalesces: the first stroke logs inline (leading edge —
	// an idle board pays no batching latency), the remaining 39 ride one
	// batched event flushed by the author change, and the interjection a
	// third via the explicit flush. The ratio is the satellite's point.
	if logged > 3 {
		t.Errorf("logged %d board events for %d ops; the storm should coalesce into ≤ 3", logged, ops)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if viewer.Board("studio").Seq() == int64(storm+1) && artist.Board("studio").Seq() == int64(storm+1) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := viewer.Board("studio").Seq(); got != int64(storm+1) {
		t.Fatalf("viewer board at %d, want %d — coalesced events must apply like singles", got, storm+1)
	}
	// Order and attribution survive: the interjection is the last op.
	ops2 := viewer.Board("studio").Since(0)
	last := ops2[len(ops2)-1]
	if last.Author != viewer.MemberID() || last.Data != "interjection" {
		t.Errorf("last op = %+v, want the viewer's interjection in order", last)
	}
}
