package server

import (
	"errors"
	"testing"
	"time"

	"dmps/internal/client"
	"dmps/internal/netsim"
)

// TestReconnectExpiredMidResume is the regression test for the
// reap-races-the-resume window: the session token resolves when the
// resume handshake first checks it, and a Reap revokes it before the
// install-time re-check. The client's Reconnect must surface the typed
// ErrSessionExpired — not a generic handshake failure, and never a
// welcome followed by a dead connection (the re-check runs before the
// welcome is written).
func TestReconnectExpiredMidResume(t *testing.T) {
	n := netsim.New(5)
	srv, err := New(Config{
		Network:       n,
		Addr:          "server:1",
		ProbeInterval: 20 * time.Millisecond,
		SessionTTL:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Close)

	cl, err := client.Dial(client.Config{
		Network: n.From("host"), Addr: "server:1",
		Name: "racer", Role: "participant", Priority: 2,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.Join("class"); err != nil {
		t.Fatal(err)
	}
	cl.Drop()

	// Fire the reap exactly inside the race window: after the resume
	// hello's token resolved, before the re-check that installs the
	// session.
	testResumeRaceHook = func() {
		srv.Reap(srv.cfg.Clock.Now().Add(2 * time.Hour))
	}
	t.Cleanup(func() { testResumeRaceHook = nil })

	err = cl.Reconnect()
	if !errors.Is(err, client.ErrSessionExpired) {
		t.Fatalf("Reconnect with mid-resume reap = %v, want ErrSessionExpired", err)
	}
}
